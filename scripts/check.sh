#!/usr/bin/env bash
# Instrumented test run: builds the suite with AddressSanitizer +
# UndefinedBehaviorSanitizer and runs ctest. A clean pass means the
# degenerate-input and chaos-soak tests exercised the pipeline without
# heap errors or UB. Usage:
#
#   scripts/check.sh                  # address,undefined (default)
#   HAWC_SANITIZE=thread scripts/check.sh
#   scripts/check.sh -R chaos_soak    # extra args forwarded to ctest
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
sanitize="${HAWC_SANITIZE:-address,undefined}"
build_dir="${repo_root}/build-sanitize"

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHAWC_SANITIZE="${sanitize}"
cmake --build "${build_dir}" -j "$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" "$@"
