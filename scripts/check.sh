#!/usr/bin/env bash
# Instrumented verification pipeline. By default runs ten phases:
#
#   1. AddressSanitizer + UndefinedBehaviorSanitizer over the full suite
#      (degenerate-input and chaos-soak tests under heap/UB checking)
#   2. ThreadSanitizer over the concurrency tests (the thread-pool
#      contract, cross-thread-count determinism sweeps, parallel soak,
#      the telemetry registry/span suite, and the multi-writer event log)
#   3. A bench-snapshot smoke run (the perf harness still builds, runs,
#      and emits parseable JSON)
#   4. The telemetry overhead gate on an unsanitized Release build
#      (tracing a clean frame must cost <= 2%; the bench exits nonzero
#      past the budget)
#   5. The golden-corpus parity gate (Release build): fp32-vs-int8 and
#      1-vs-N-thread replays over data/golden must show zero divergences
#   6. The static-analysis gate (scripts/lint.sh): analyzer self-test,
#      hawc_analyze rule catalogue, header self-sufficiency, HAWC_WERROR
#      build, and clang-tidy when installed
#   7. The fleet chaos gate (Release build): the multi-pole soak test and
#      the fleet_service example, proving fault isolation, staleness
#      bounds, and watchdog recovery outside the sanitized builds too
#   8. The perf-regression gate (Release build): bench_snapshot threads_1
#      numbers vs the checked-in ceilings in bench/perf_floor.json
#      (scripts/perf_gate.sh; HAWC_PERF_TOLERANCE scales the budget)
#   9. The flight-recorder drill (Release build): the fault-injected
#      eight-pole postmortem example must dump a bundle that replays
#      bit-exactly and complete an SLO alert fire/resolve cycle, and
#      bench_obs_overhead must show the obs stack costing <= 2% on
#      clean frames
#  10. The corpus-container drill (Release build): pack both golden
#      corpora into chunked compressed "HWCC" containers, verify them
#      frame-for-frame bit-exact against the envelope originals, and
#      unpack one back to a byte-identical envelope file
#
# Setting HAWC_SANITIZE runs a single sanitizer configuration over the
# full suite instead (any -fsanitize= value works):
#
#   scripts/check.sh                  # all ten phases
#   HAWC_SANITIZE=thread scripts/check.sh
#   HAWC_SANITIZE=address,undefined scripts/check.sh -R chaos_soak
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

run_suite() {  # run_suite <sanitizer> <build_dir> [ctest args...]
  local sanitize="$1" build_dir="$2"
  shift 2
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DHAWC_SANITIZE="${sanitize}"
  cmake --build "${build_dir}" -j "$(nproc)"
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" "$@"
}

if [[ -n "${HAWC_SANITIZE:-}" ]]; then
  run_suite "${HAWC_SANITIZE}" "${repo_root}/build-sanitize" "$@"
  exit 0
fi

echo "== phase 1/10: address,undefined over the full suite =="
run_suite "address,undefined" "${repo_root}/build-sanitize" "$@"

echo "== phase 2/10: thread sanitizer over the concurrency tests =="
run_suite "thread" "${repo_root}/build-tsan" -R '^(thread_pool|determinism|telemetry|parity|container|fleet[a-z_]*|obs[a-z_]*)\.'

echo "== phase 3/10: bench snapshot smoke =="
smoke_build="${repo_root}/build-sanitize"
cmake --build "${smoke_build}" --target bench_snapshot -j "$(nproc)"
"${smoke_build}/bench/bench_snapshot" 1 2 > /tmp/hawc_bench_smoke.json
python3 -m json.tool /tmp/hawc_bench_smoke.json >/dev/null
echo "bench snapshot smoke OK"

echo "== phase 4/10: telemetry overhead gate (Release, <= 2%) =="
perf_build="${repo_root}/build"
cmake -B "${perf_build}" -S "${repo_root}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${perf_build}" --target bench_telemetry_overhead -j "$(nproc)"
"${perf_build}/bench/bench_telemetry_overhead"
echo "telemetry overhead gate OK"

echo "== phase 5/10: golden-corpus parity gate =="
cmake --build "${perf_build}" --target parity_checker -j "$(nproc)"
"${perf_build}/examples/parity_checker" check "${repo_root}/data/golden"
echo "parity gate OK"

echo "== phase 6/10: static-analysis gate =="
"${repo_root}/scripts/lint.sh" --self-test
"${repo_root}/scripts/lint.sh"
echo "static-analysis gate OK"

echo "== phase 7/10: fleet chaos gate (Release) =="
cmake --build "${perf_build}" --target test_fleet fleet_service -j "$(nproc)"
"${perf_build}/tests/test_fleet" --gtest_filter='fleet_chaos.*:fleet.*'
"${perf_build}/examples/fleet_service" 300 > /tmp/hawc_fleet_service.txt
grep -q "Staleness bound (10 ticks) holds: yes" /tmp/hawc_fleet_service.txt
echo "fleet chaos gate OK"

echo "== phase 8/10: perf-regression gate (Release) =="
cmake --build "${perf_build}" --target bench_snapshot -j "$(nproc)"
"${perf_build}/bench/bench_snapshot" 1 > /tmp/hawc_bench_perf.json
"${repo_root}/scripts/perf_gate.sh" /tmp/hawc_bench_perf.json

echo "== phase 9/10: flight-recorder drill + obs overhead gate (Release) =="
cmake --build "${perf_build}" --target pole_postmortem bench_obs_overhead -j "$(nproc)"
"${perf_build}/examples/pole_postmortem" 240 /tmp/hawc_postmortem_drill.hawcpm \
  > /tmp/hawc_pole_postmortem.txt
grep -q "postmortem replay: bit-exact" /tmp/hawc_pole_postmortem.txt
grep -q "Alert poles_excluded: fired and resolved" /tmp/hawc_pole_postmortem.txt
"${perf_build}/bench/bench_obs_overhead"
echo "flight-recorder drill OK"

echo "== phase 10/10: corpus-container pack/verify drill (Release) =="
cmake --build "${perf_build}" --target parity_checker -j "$(nproc)"
for corpus in clean degraded; do
  "${perf_build}/examples/parity_checker" pack \
    "${repo_root}/data/golden/${corpus}.frames" "/tmp/hawc_${corpus}.hwcc" --chunk 4
  "${perf_build}/examples/parity_checker" verify \
    "/tmp/hawc_${corpus}.hwcc" "${repo_root}/data/golden/${corpus}.frames"
done
"${perf_build}/examples/parity_checker" unpack /tmp/hawc_clean.hwcc /tmp/hawc_clean_rt.frames
cmp "${repo_root}/data/golden/clean.frames" /tmp/hawc_clean_rt.frames
echo "corpus-container drill OK"
