#!/usr/bin/env bash
# Static-analysis gate (check.sh phase 6; CI job `static-analysis`).
#
# Phases, cheap first:
#   1. Banned-pattern scan — project rules grep can enforce:
#        raw-rng              rand()/srand()/std::random_device outside
#                             common/rng (replays must be deterministic)
#        naked-new            naked new/delete expressions (RAII only)
#        mutex-in-lockfree    std::mutex in a file whose banner claims
#                             lock-free behaviour
#        double-seconds       duration<double>/duration<float> timing
#                             outside common/timer.hpp
#        wallclock-in-replay  any clock read inside src/replay — a wall
#                             clock there would break bit-exact replay
#        sleep-in-fleet       blocking sleeps inside src/fleet — the fleet
#                             runs on tick virtual time; a sleep on a pool
#                             lane stalls every pole sharing it
#        simd-outside-kernels raw SIMD intrinsics (x86 _mm*/__m*/immintrin,
#                             NEON v*_s8/int8x16_t/arm_neon.h) outside
#                             src/nn/kernels/ — vector code lives behind
#                             the dispatch table so every routine keeps a
#                             scalar fallback and new ISAs land in one place
#        raw-logging          std::cout/cerr/clog and printf-family calls
#                             in src/ outside src/obs/ — library code
#                             reports through events, metrics, and spans,
#                             never straight to stdio (bounded snprintf
#                             into a caller buffer stays legal)
#      A hit is waived only by an inline `lint:allow(<rule>): <reason>`
#      comment on the same line (the reason is mandatory by convention;
#      DESIGN.md §11).
#   2. Header self-sufficiency — every src/**/*.hpp must compile as a
#      standalone translation unit (no include-order debt).
#   3. HAWC_WERROR build — the hardened warning set as errors over
#      src/tests/bench/examples (see CMakeLists.txt).
#   4. clang-tidy over src/ TUs against the exported compile database,
#      config in .clang-tidy (skipped with a notice when not installed;
#      the CI static-analysis job always runs it).
#
# Usage:
#   scripts/lint.sh                 # full gate (exit nonzero on any finding)
#   scripts/lint.sh --self-test     # run the custom linters against the
#                                   # tests/lint fixtures (registered as the
#                                   # `lint.self_test` ctest)
#   scripts/lint.sh --no-build      # phases 1+2 only (fast dev loop)
#   HAWC_LINT_CMAKE_ARGS="-DCMAKE_CXX_COMPILER_LAUNCHER=ccache" ...  # CI
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="${HAWC_LINT_JOBS:-$(nproc)}"
build_dir="${HAWC_LINT_BUILD_DIR:-${repo_root}/build-lint}"
cxx="${CXX:-g++}"
violations=0

note() { printf '%s\n' "$*"; }

# --- phase 1 machinery: banned patterns ------------------------------------

# scan_rule <rule> <extended-regex> <file...>
# Greps the comment-stripped content of each file (so prose about a pattern
# does not trip the scan), then re-reads the raw line to honour
# `lint:allow(<rule>)` waivers. Prints one line per violation.
scan_rule() {
    local rule="$1" ere="$2"
    shift 2
    local f hits line_no raw
    for f in "$@"; do
        hits="$(sed 's|//.*||' "${f}" | grep -nE "${ere}" | cut -d: -f1 || true)"
        [[ -z "${hits}" ]] && continue
        while IFS= read -r line_no; do
            raw="$(sed -n "${line_no}p" "${f}")"
            if [[ "${raw}" == *"lint:allow(${rule})"* ]]; then
                continue
            fi
            note "lint[${rule}] ${f}:${line_no}: ${raw#"${raw%%[![:space:]]*}"}"
            violations=$((violations + 1))
        done <<< "${hits}"
    done
}

# Files whose banner/comments claim lock-freedom; only these are in scope
# for the mutex-in-lockfree rule.
claims_lockfree() {
    local f
    for f in "$@"; do
        if grep -qiE 'lock[-_]free' "${f}"; then
            printf '%s\n' "${f}"
        fi
    done
}

ere_raw_rng='std::random_device|(^|[^[:alnum:]_])s?rand[[:space:]]*\('
ere_naked_new='(^|[^[:alnum:]_.])new[[:space:]]+[[:alnum:]_:]|(^|[^[:alnum:]_])delete([[:space:]]*\[[[:space:]]*\])?[[:space:]]+[[:alnum:]_*]'
ere_mutex='std::(recursive_|shared_|timed_)?mutex'
ere_double_seconds='duration<[[:space:]]*(double|float)'
ere_wallclock='system_clock|high_resolution_clock|steady_clock|gettimeofday|clock_gettime|localtime|gmtime|(^|[^[:alnum:]_:])time[[:space:]]*\('
ere_sleep='sleep_for|sleep_until|(^|[^[:alnum:]_])usleep[[:space:]]*\(|(^|[^[:alnum:]_])nanosleep[[:space:]]*\(|(^|[^[:alnum:]_])sleep[[:space:]]*\('
ere_simd='_mm(256|512)?_[a-z0-9_]+|__m(128|256|512)|[[:alpha:]]*mmintrin\.h|arm_neon\.h|(^|[^[:alnum:]_])v[a-z][a-z0-9_]*_[sufp](8|16|32|64)|(^|[^[:alnum:]_])(u?int|float|poly)(8|16|32|64)x(2|4|8|16)(x[2-4])?_t'
ere_raw_logging='std::(cout|cerr|clog)|(^|[^[:alnum:]_])(printf|fprintf|vprintf|vfprintf|puts|fputs)[[:space:]]*\('

phase_banned_patterns() {
    note "== lint phase 1: banned-pattern scan =="
    local all=() lockfree=()
    mapfile -t all < <(find src bench tests examples \
        \( -name '*.cpp' -o -name '*.hpp' \) -not -path 'tests/lint/*' | sort)

    scan_rule raw-rng "${ere_raw_rng}" \
        $(printf '%s\n' "${all[@]}" | grep -v '^src/common/rng\.')
    scan_rule naked-new "${ere_naked_new}" "${all[@]}"
    mapfile -t lockfree < <(claims_lockfree "${all[@]}")
    if [[ ${#lockfree[@]} -gt 0 ]]; then
        scan_rule mutex-in-lockfree "${ere_mutex}" "${lockfree[@]}"
    fi
    scan_rule double-seconds "${ere_double_seconds}" \
        $(printf '%s\n' "${all[@]}" | grep -v '^src/common/timer\.hpp$')
    scan_rule wallclock-in-replay "${ere_wallclock}" \
        $(printf '%s\n' "${all[@]}" | grep '^src/replay/' || true)
    scan_rule sleep-in-fleet "${ere_sleep}" \
        $(printf '%s\n' "${all[@]}" | grep '^src/fleet/' || true)
    scan_rule simd-outside-kernels "${ere_simd}" \
        $(printf '%s\n' "${all[@]}" | grep -v '^src/nn/kernels/')
    scan_rule raw-logging "${ere_raw_logging}" \
        $(printf '%s\n' "${all[@]}" | grep '^src/' | grep -v '^src/obs/' || true)

    if [[ ${violations} -eq 0 ]]; then
        note "banned-pattern scan clean (${#all[@]} files)"
    fi
}

# --- phase 2 machinery: header self-sufficiency ----------------------------

# check_header <include-spec> <include-dir>
# Compiles `#include "<include-spec>"` as its own TU. Returns nonzero (and
# prints the compiler output) when the header is not self-sufficient.
check_header() {
    local spec="$1" incdir="$2"
    local tu err
    tu="$(mktemp /tmp/hawc_lint_hdr_XXXXXX.cpp)"
    err="${tu%.cpp}.err"
    printf '#include "%s"\nint main() { return 0; }\n' "${spec}" > "${tu}"
    if ! "${cxx}" -std=c++20 -fsyntax-only -Wall -Wextra -Wpedantic \
        -I "${incdir}" "${tu}" 2> "${err}"; then
        note "lint[header-self-sufficiency] ${spec} does not compile standalone:"
        sed 's/^/    /' "${err}"
        rm -f "${tu}" "${err}"
        return 1
    fi
    rm -f "${tu}" "${err}"
}

phase_headers() {
    note "== lint phase 2: header self-sufficiency =="
    local h count=0
    while IFS= read -r h; do
        if ! check_header "${h#src/}" "${repo_root}/src"; then
            violations=$((violations + 1))
        fi
        count=$((count + 1))
    done < <(find src -name '*.hpp' | sort)
    note "checked ${count} public headers"
}

# --- phase 3: hardened-warnings build --------------------------------------

phase_werror() {
    note "== lint phase 3: HAWC_WERROR build (warnings are errors) =="
    # shellcheck disable=SC2086  # HAWC_LINT_CMAKE_ARGS is intentionally split
    cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_BUILD_TYPE=Release -DHAWC_WERROR=ON ${HAWC_LINT_CMAKE_ARGS:-}
    cmake --build "${build_dir}" -j "${jobs}"
    note "HAWC_WERROR build clean"
}

# --- phase 4: clang-tidy ---------------------------------------------------

phase_tidy() {
    note "== lint phase 4: clang-tidy =="
    if ! command -v clang-tidy >/dev/null 2>&1; then
        note "clang-tidy not installed; skipping (the CI static-analysis job runs it)"
        return 0
    fi
    if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
        note "no compile database in ${build_dir}; run without --no-build first" >&2
        violations=$((violations + 1))
        return 0
    fi
    local tidy_files
    mapfile -t tidy_files < <(find src -name '*.cpp' | sort)
    # WarningsAsErrors: '*' in .clang-tidy turns any diagnostic into a
    # nonzero exit; --quiet keeps warm-ccache CI logs readable.
    if ! clang-tidy --quiet -p "${build_dir}" "${tidy_files[@]}"; then
        violations=$((violations + 1))
    fi
}

# --- self-test over tests/lint fixtures ------------------------------------

# expect_hits <expected> <rule> <ere> <file...>
expect_hits() {
    local expected="$1" rule="$2"
    shift 2
    local before="${violations}" got
    scan_rule "${rule}" "$@" > /dev/null
    got=$((violations - before))
    violations="${before}"
    if [[ "${got}" -lt "${expected}" ]]; then
        note "self-test FAIL: rule ${rule} found ${got} violation(s) in $*, expected >= ${expected}"
        return 1
    fi
    if [[ "${expected}" -eq 0 && "${got}" -ne 0 ]]; then
        note "self-test FAIL: rule ${rule} flagged clean fixture $* (${got} hits)"
        return 1
    fi
}

self_test() {
    note "== lint self-test over tests/lint fixtures =="
    local fx="tests/lint" failures=0

    expect_hits 1 raw-rng "${ere_raw_rng}" "${fx}/bad/raw_rng.cpp" || failures=$((failures + 1))
    expect_hits 2 naked-new "${ere_naked_new}" "${fx}/bad/naked_new.cpp" || failures=$((failures + 1))
    expect_hits 1 mutex-in-lockfree "${ere_mutex}" \
        $(claims_lockfree "${fx}/bad/mutex_lockfree.cpp") || failures=$((failures + 1))
    expect_hits 1 double-seconds "${ere_double_seconds}" "${fx}/bad/double_seconds.cpp" \
        || failures=$((failures + 1))
    expect_hits 1 wallclock-in-replay "${ere_wallclock}" "${fx}/bad/replay/wallclock.cpp" \
        || failures=$((failures + 1))
    expect_hits 2 sleep-in-fleet "${ere_sleep}" "${fx}/bad/fleet/blocking_sleep.cpp" \
        || failures=$((failures + 1))
    expect_hits 5 simd-outside-kernels "${ere_simd}" "${fx}/bad/simd_intrinsics.cpp" \
        || failures=$((failures + 1))
    expect_hits 7 raw-logging "${ere_raw_logging}" "${fx}/bad/raw_logging.cpp" \
        || failures=$((failures + 1))

    # The lock-free claim detector itself.
    if [[ -z "$(claims_lockfree "${fx}/bad/mutex_lockfree.cpp")" ]]; then
        note "self-test FAIL: claims_lockfree missed the fixture banner"
        failures=$((failures + 1))
    fi

    # Clean fixtures: near-miss spellings and a waived hit must pass every rule.
    local clean_files=("${fx}/clean/clean_snippets.cpp" "${fx}/clean/waived_mutex.cpp"
                       "${fx}/clean/waived_sleep.cpp")
    expect_hits 0 raw-rng "${ere_raw_rng}" "${clean_files[@]}" || failures=$((failures + 1))
    expect_hits 0 naked-new "${ere_naked_new}" "${clean_files[@]}" || failures=$((failures + 1))
    expect_hits 0 double-seconds "${ere_double_seconds}" "${clean_files[@]}" \
        || failures=$((failures + 1))
    expect_hits 0 sleep-in-fleet "${ere_sleep}" "${clean_files[@]}" || failures=$((failures + 1))
    expect_hits 0 simd-outside-kernels "${ere_simd}" "${clean_files[@]}" \
        || failures=$((failures + 1))
    expect_hits 0 raw-logging "${ere_raw_logging}" "${clean_files[@]}" \
        || failures=$((failures + 1))
    local claiming
    claiming="$(claims_lockfree "${clean_files[@]}")"
    if [[ -n "${claiming}" ]]; then
        expect_hits 0 mutex-in-lockfree "${ere_mutex}" ${claiming} || failures=$((failures + 1))
    fi

    # Header self-sufficiency: the broken fixture must fail, the clean pass.
    if check_header "bad/header_missing_include.hpp" "${fx}" > /dev/null 2>&1; then
        note "self-test FAIL: header check passed a non-self-sufficient header"
        failures=$((failures + 1))
    fi
    if ! check_header "clean/clean_header.hpp" "${fx}"; then
        note "self-test FAIL: header check rejected a self-sufficient header"
        failures=$((failures + 1))
    fi

    if [[ ${failures} -gt 0 ]]; then
        note "lint self-test: ${failures} failure(s)"
        exit 1
    fi
    note "lint self-test OK"
}

# --- driver ----------------------------------------------------------------

mode="full"
case "${1:-}" in
    --self-test) mode="self-test" ;;
    --no-build) mode="no-build" ;;
    "") ;;
    *)
        note "usage: scripts/lint.sh [--self-test|--no-build]" >&2
        exit 2
        ;;
esac

if [[ "${mode}" == "self-test" ]]; then
    self_test
    exit 0
fi

phase_banned_patterns
phase_headers
if [[ "${mode}" == "full" ]]; then
    phase_werror
    phase_tidy
fi

if [[ ${violations} -gt 0 ]]; then
    note "lint: ${violations} violation(s)"
    exit 1
fi
note "lint: clean"
