#!/usr/bin/env bash
# Static-analysis gate (check.sh phase 6; CI job `static-analysis`).
#
# Phases, cheap first:
#   1. hawc_analyze — the in-repo token-aware analyzer (tools/hawc_analyze).
#      It lexes every TU (comments, strings, raw strings, #if 0 regions and
#      line splices handled properly — a banned spelling inside a string or
#      comment never trips a rule) and runs the full rule catalogue: the
#      eight banned-pattern rules (raw-rng, naked-new, mutex-in-lockfree,
#      double-seconds, wallclock-in-replay, sleep-in-fleet,
#      simd-outside-kernels, raw-logging) plus the semantic families —
#      layer-dag / include-cycle (module DAG from src/CMakeLists.txt's
#      hawc_module table), replay-determinism (wall clocks, getenv,
#      unordered-container iteration inside src/sim and the include closure
#      of src/replay), lock-order / lock-across-parallel (inter-mutex
#      acquisition graph), throw-in-noexcept / throw-in-destructor, and
#      waiver-without-reason. See `hawc_analyze --list-rules` and
#      DESIGN.md §16. A hit is waived only by an inline
#      `lint:allow(<rule>): <reason>` comment on the same line (the reason
#      is mandatory — enforced by waiver-without-reason; DESIGN.md §11).
#      Accepted findings live in tools/hawc_analyze/baseline.txt.
#   2. Header self-sufficiency — every .hpp under src/, tools/ and bench/
#      must compile as a standalone translation unit (no include-order debt).
#   3. HAWC_WERROR build — the hardened warning set as errors over
#      src/tests/bench/examples (see CMakeLists.txt).
#   4. clang-tidy over src/ TUs against the exported compile database,
#      config in .clang-tidy (skipped with a notice when not installed;
#      the CI static-analysis job always runs it).
#
# Usage:
#   scripts/lint.sh                 # full gate (exit nonzero on any finding)
#   scripts/lint.sh --self-test     # run the analyzer's fixture self-test
#                                   # plus the header-check fixtures
#                                   # (registered as the `lint.self_test`
#                                   # ctest; `analyze.self_test` pins the
#                                   # analyzer rules on their own)
#   scripts/lint.sh --no-build      # phases 1+2 only (fast dev loop)
#   HAWC_ANALYZE_BIN=... scripts/lint.sh   # use a prebuilt analyzer (ctest
#                                   # passes the CMake target; otherwise the
#                                   # script bootstraps one with $CXX — the
#                                   # analyzer is standalone-compilable)
#   HAWC_LINT_CMAKE_ARGS="-DCMAKE_CXX_COMPILER_LAUNCHER=ccache" ...  # CI
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

jobs="${HAWC_LINT_JOBS:-$(nproc)}"
build_dir="${HAWC_LINT_BUILD_DIR:-${repo_root}/build-lint}"
cxx="${CXX:-g++}"
violations=0

note() { printf '%s\n' "$*"; }

# --- phase 1 machinery: the hawc_analyze binary ----------------------------

# Echoes a usable analyzer binary, preferring (in order) HAWC_ANALYZE_BIN,
# a prebuilt CMake binary that is newer than every analyzer source, and
# finally a bootstrap build into ${build_dir}. Bootstrap works because the
# analyzer is deliberately standalone-compilable (no deps beyond libstdc++).
analyzer_bin() {
    if [[ -n "${HAWC_ANALYZE_BIN:-}" ]]; then
        printf '%s\n' "${HAWC_ANALYZE_BIN}"
        return
    fi
    local candidate
    for candidate in "${build_dir}/tools/hawc_analyze/hawc_analyze" \
                     "${repo_root}/build/tools/hawc_analyze/hawc_analyze"; do
        if [[ -x "${candidate}" ]] && \
           [[ -z "$(find tools/hawc_analyze \( -name '*.cpp' -o -name '*.hpp' \) \
                    -newer "${candidate}" -print -quit)" ]]; then
            printf '%s\n' "${candidate}"
            return
        fi
    done
    local out="${build_dir}/hawc_analyze-bootstrap"
    mkdir -p "${build_dir}"
    if [[ ! -x "${out}" ]] || \
       [[ -n "$(find tools/hawc_analyze \( -name '*.cpp' -o -name '*.hpp' \) \
                -newer "${out}" -print -quit)" ]]; then
        note "bootstrapping hawc_analyze with ${cxx} (no fresh prebuilt binary)" >&2
        "${cxx}" -std=c++20 -O1 tools/hawc_analyze/*.cpp -o "${out}" >&2
    fi
    printf '%s\n' "${out}"
}

phase_analyze() {
    note "== lint phase 1: hawc_analyze (token-aware rule catalogue) =="
    local bin db_args=()
    bin="$(analyzer_bin)"
    if [[ -f "${build_dir}/compile_commands.json" ]]; then
        db_args=(--compile-db "${build_dir}/compile_commands.json")
    fi
    if ! "${bin}" --root "${repo_root}" "${db_args[@]}"; then
        violations=$((violations + 1))
    fi
}

# --- phase 2 machinery: header self-sufficiency ----------------------------

# check_header <include-spec> <include-dir...>
# Compiles `#include "<include-spec>"` as its own TU. Returns nonzero (and
# prints the compiler output) when the header is not self-sufficient.
check_header() {
    local spec="$1"
    shift
    local inc=()
    local d
    for d in "$@"; do inc+=(-I "${d}"); done
    local tu err
    tu="$(mktemp /tmp/hawc_lint_hdr_XXXXXX.cpp)"
    err="${tu%.cpp}.err"
    printf '#include "%s"\nint main() { return 0; }\n' "${spec}" > "${tu}"
    if ! "${cxx}" -std=c++20 -fsyntax-only -Wall -Wextra -Wpedantic \
        "${inc[@]}" "${tu}" 2> "${err}"; then
        note "lint[header-self-sufficiency] ${spec} does not compile standalone:"
        sed 's/^/    /' "${err}"
        rm -f "${tu}" "${err}"
        return 1
    fi
    rm -f "${tu}" "${err}"
}

phase_headers() {
    note "== lint phase 2: header self-sufficiency =="
    local h count=0
    while IFS= read -r h; do
        if ! check_header "${h#src/}" "${repo_root}/src"; then
            violations=$((violations + 1))
        fi
        count=$((count + 1))
    done < <(find src -name '*.hpp' | sort)
    # bench/ headers sit on top of src/; tools/ headers include siblings by
    # bare name, so each compiles against its own directory.
    while IFS= read -r h; do
        if ! check_header "${h#bench/}" "${repo_root}/bench" "${repo_root}/src"; then
            violations=$((violations + 1))
        fi
        count=$((count + 1))
    done < <(find bench -name '*.hpp' 2>/dev/null | sort)
    while IFS= read -r h; do
        if ! check_header "$(basename "${h}")" "$(dirname "${repo_root}/${h}")"; then
            violations=$((violations + 1))
        fi
        count=$((count + 1))
    done < <(find tools -name '*.hpp' 2>/dev/null | sort)
    note "checked ${count} public headers"
}

# --- phase 3: hardened-warnings build --------------------------------------

phase_werror() {
    note "== lint phase 3: HAWC_WERROR build (warnings are errors) =="
    # shellcheck disable=SC2086  # HAWC_LINT_CMAKE_ARGS is intentionally split
    cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_BUILD_TYPE=Release -DHAWC_WERROR=ON ${HAWC_LINT_CMAKE_ARGS:-}
    cmake --build "${build_dir}" -j "${jobs}"
    note "HAWC_WERROR build clean"
}

# --- phase 4: clang-tidy ---------------------------------------------------

phase_tidy() {
    note "== lint phase 4: clang-tidy =="
    if ! command -v clang-tidy >/dev/null 2>&1; then
        note "clang-tidy not installed; skipping (the CI static-analysis job runs it)"
        return 0
    fi
    if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
        note "no compile database in ${build_dir}; run without --no-build first" >&2
        violations=$((violations + 1))
        return 0
    fi
    local tidy_files
    mapfile -t tidy_files < <(find src -name '*.cpp' | sort)
    # WarningsAsErrors: '*' in .clang-tidy turns any diagnostic into a
    # nonzero exit; --quiet keeps warm-ccache CI logs readable.
    if ! clang-tidy --quiet -p "${build_dir}" "${tidy_files[@]}"; then
        violations=$((violations + 1))
    fi
}

# --- self-test over tests/lint fixtures ------------------------------------

self_test() {
    note "== lint self-test over tests/lint fixtures =="
    local failures=0 bin
    bin="$(analyzer_bin)"

    # The analyzer's own self-test: exact expect<->finding match over
    # tree_bad/, zero active findings over tree_clean/, every rule in the
    # catalogue exercised, baseline round-trip.
    if ! "${bin}" --self-test "${repo_root}/tests/lint"; then
        failures=$((failures + 1))
    fi

    # Header self-sufficiency: the broken fixture must fail, the clean pass.
    local fx="tests/lint"
    if check_header "bad/header_missing_include.hpp" "${fx}" > /dev/null 2>&1; then
        note "self-test FAIL: header check passed a non-self-sufficient header"
        failures=$((failures + 1))
    fi
    if ! check_header "clean/clean_header.hpp" "${fx}"; then
        note "self-test FAIL: header check rejected a self-sufficient header"
        failures=$((failures + 1))
    fi

    if [[ ${failures} -gt 0 ]]; then
        note "lint self-test: ${failures} failure(s)"
        exit 1
    fi
    note "lint self-test OK"
}

# --- driver ----------------------------------------------------------------

mode="full"
case "${1:-}" in
    --self-test) mode="self-test" ;;
    --no-build) mode="no-build" ;;
    "") ;;
    *)
        note "usage: scripts/lint.sh [--self-test|--no-build]" >&2
        exit 2
        ;;
esac

if [[ "${mode}" == "self-test" ]]; then
    self_test
    exit 0
fi

phase_analyze
phase_headers
if [[ "${mode}" == "full" ]]; then
    phase_werror
    phase_tidy
fi

if [[ ${violations} -gt 0 ]]; then
    note "lint: ${violations} violation(s)"
    exit 1
fi
note "lint: clean"
