#!/usr/bin/env bash
# Diff-only clang-format gate: checks C++ files changed relative to a base
# revision (default: HEAD, i.e. uncommitted work; CI passes origin/main).
# Deliberately never reformats the whole tree — the .clang-format config
# documents the style, but only files you touch must satisfy it, so the
# gate cannot generate bulk churn in unrelated code.
#
#   scripts/format_check.sh              # changed vs HEAD (staged+unstaged)
#   scripts/format_check.sh origin/main  # changed vs a base ref
#   scripts/format_check.sh --fix [ref]  # rewrite instead of checking
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

fix=0
if [[ "${1:-}" == "--fix" ]]; then
    fix=1
    shift
fi
base="${1:-HEAD}"

if ! command -v clang-format >/dev/null 2>&1; then
    echo "format_check: clang-format not installed; skipping (CI runs it)" >&2
    exit 0
fi

mapfile -t files < <(git diff --name-only --diff-filter=ACMR "${base}" -- \
    '*.cpp' '*.hpp' | grep -v '^tests/lint/' || true)
if [[ ${#files[@]} -eq 0 ]]; then
    echo "format_check: no changed C++ files vs ${base}"
    exit 0
fi

if [[ ${fix} -eq 1 ]]; then
    clang-format -i "${files[@]}"
    echo "format_check: reformatted ${#files[@]} file(s)"
    exit 0
fi

status=0
for f in "${files[@]}"; do
    if ! clang-format --dry-run --Werror "${f}" 2>/dev/null; then
        echo "format_check: ${f} needs formatting (run scripts/format_check.sh --fix ${base})"
        status=1
    fi
done
[[ ${status} -eq 0 ]] && echo "format_check: ${#files[@]} changed file(s) clean"
exit "${status}"
