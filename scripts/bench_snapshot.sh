#!/usr/bin/env bash
# Regenerate BENCH_PR9.json: build the Release tree, run the perf
# snapshot over the hot kernels (including the int8 conv/dense kernels,
# the SIMD kernel-layer GEMMs, the fleet occupancy read path, the obs
# event pipeline, and the corpus-container codec / pack / stream-decode
# path) at 1 and 4 pool lanes, gate the threads_1 numbers against the
# ceilings — and the container throughputs against the floors — in
# bench/perf_floor.json, then run the kernel micro-benchmarks and the
# Table II inference-speed bench (their text reports land next to the
# build's bench binaries).
#
#   scripts/bench_snapshot.sh [build_dir] [output_json]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
output="${2:-$repo_root/BENCH_PR9.json}"

cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build_dir" -j "$(nproc)" \
  --target bench_snapshot bench_kernels bench_table2_inference_speed >/dev/null

"$build_dir/bench/bench_snapshot" 1 4 > "$output"
echo "wrote $output"

"$repo_root/scripts/perf_gate.sh" "$output"

"$build_dir/bench/bench_kernels" --benchmark_min_time=0.2 \
  | tee "$build_dir/bench/bench_kernels.txt"
"$build_dir/bench/bench_table2_inference_speed" \
  | tee "$build_dir/bench/table2_inference_speed.txt"
echo "kernel + Table II reports under $build_dir/bench/"
