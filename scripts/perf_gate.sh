#!/usr/bin/env bash
# Perf-regression gate: compare the current.threads_1 block of a
# bench_snapshot JSON against the checked-in ceilings in
# bench/perf_floor.json — and the corpus_container block against its
# throughput floors — and fail loudly on any metric out of budget.
#
#   scripts/perf_gate.sh [snapshot_json] [floor_json]
#
# HAWC_PERF_TOLERANCE scales every ceiling (default 1.35): CI containers
# are noisy shared 1-core boxes, so the gate flags real regressions (2x
# slowdowns from a broken kernel or a dropped dispatch tier), not
# scheduler jitter. Run with HAWC_PERF_TOLERANCE=1.0 on a quiet box to
# hold the line exactly.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
snapshot="${1:-$repo_root/BENCH_PR9.json}"
floor="${2:-$repo_root/bench/perf_floor.json}"
tolerance="${HAWC_PERF_TOLERANCE:-1.35}"

python3 - "$snapshot" "$floor" "$tolerance" <<'PYEOF'
import json
import sys

snapshot_path, floor_path, tolerance = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(snapshot_path) as f:
    snapshot = json.load(f)
with open(floor_path) as f:
    floor = json.load(f)

current = snapshot["current"]["threads_1"]
isa = snapshot.get("kernel_isa", "unknown")
failures = []
print(f"perf gate: {snapshot_path} (kernel_isa={isa}) vs {floor_path} "
      f"x{tolerance:g} tolerance")
for metric, spec in floor["ceilings"].items():
    if metric not in current:
        failures.append(f"  {metric}: missing from snapshot threads_1 block")
        continue
    measured = float(current[metric])
    budget = float(spec["max_us"]) * tolerance
    verdict = "ok" if measured <= budget else "FAIL"
    print(f"  [{verdict}] {metric}: {measured:.2f}us (budget {budget:.2f}us"
          f" = {spec['max_us']:g} x {tolerance:g})")
    if measured > budget:
        failures.append(
            f"  {metric}: {measured:.2f}us > {budget:.2f}us — {spec['why']}")

container = snapshot.get("corpus_container", {})
for metric, spec in floor.get("floors", {}).items():
    if metric not in container:
        failures.append(f"  {metric}: missing from snapshot corpus_container block")
        continue
    measured = float(container[metric])
    budget = float(spec["min_mbps"]) / tolerance
    verdict = "ok" if measured >= budget else "FAIL"
    print(f"  [{verdict}] {metric}: {measured:.1f}MB/s (floor {budget:.1f}MB/s"
          f" = {spec['min_mbps']:g} / {tolerance:g})")
    if measured < budget:
        failures.append(
            f"  {metric}: {measured:.1f}MB/s < {budget:.1f}MB/s — {spec['why']}")

if failures:
    print("\nPERF GATE FAILED — kernel-layer regression(s):", file=sys.stderr)
    for line in failures:
        print(line, file=sys.stderr)
    print("(raise HAWC_PERF_TOLERANCE only for a provably noisy box; "
          "fix the kernel otherwise)", file=sys.stderr)
    sys.exit(1)
print("perf gate OK")
PYEOF
