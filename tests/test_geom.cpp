// Tests for vec3 and aabb.

#include <gtest/gtest.h>

#include <sstream>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace hawc {
namespace {

TEST(vec3, arithmetic) {
    const vec3 a{1.0, 2.0, 3.0};
    const vec3 b{-1.0, 0.5, 2.0};
    EXPECT_EQ(a + b, (vec3{0.0, 2.5, 5.0}));
    EXPECT_EQ(a - b, (vec3{2.0, 1.5, 1.0}));
    EXPECT_EQ(a * 2.0, (vec3{2.0, 4.0, 6.0}));
    EXPECT_EQ(2.0 * a, a * 2.0);
    EXPECT_EQ(a / 2.0, (vec3{0.5, 1.0, 1.5}));
    EXPECT_EQ(-a, (vec3{-1.0, -2.0, -3.0}));
}

TEST(vec3, compound_assignment) {
    vec3 v{1.0, 1.0, 1.0};
    v += vec3{1.0, 2.0, 3.0};
    EXPECT_EQ(v, (vec3{2.0, 3.0, 4.0}));
    v -= vec3{1.0, 1.0, 1.0};
    EXPECT_EQ(v, (vec3{1.0, 2.0, 3.0}));
    v *= 3.0;
    EXPECT_EQ(v, (vec3{3.0, 6.0, 9.0}));
}

TEST(vec3, dot_and_cross) {
    const vec3 x{1.0, 0.0, 0.0};
    const vec3 y{0.0, 1.0, 0.0};
    EXPECT_DOUBLE_EQ(x.dot(y), 0.0);
    EXPECT_EQ(x.cross(y), (vec3{0.0, 0.0, 1.0}));
    EXPECT_EQ(y.cross(x), (vec3{0.0, 0.0, -1.0}));
    EXPECT_DOUBLE_EQ((vec3{3.0, 4.0, 0.0}).norm(), 5.0);
}

TEST(vec3, normalized) {
    const vec3 v{0.0, 3.0, 4.0};
    const vec3 n = v.normalized();
    EXPECT_NEAR(n.norm(), 1.0, 1e-12);
    EXPECT_NEAR(n.y, 0.6, 1e-12);
    // Zero vector stays zero.
    EXPECT_EQ((vec3{}).normalized(), vec3{});
}

TEST(vec3, distances) {
    const vec3 a{0.0, 0.0, 0.0};
    const vec3 b{1.0, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(a.distance_to(b), 3.0);
    EXPECT_DOUBLE_EQ(a.distance_sq_to(b), 9.0);
}

TEST(vec3, lerp_endpoints_and_middle) {
    const vec3 a{0.0, 0.0, 0.0};
    const vec3 b{2.0, 4.0, 6.0};
    EXPECT_EQ(lerp(a, b, 0.0), a);
    EXPECT_EQ(lerp(a, b, 1.0), b);
    EXPECT_EQ(lerp(a, b, 0.5), (vec3{1.0, 2.0, 3.0}));
}

TEST(vec3, stream_output) {
    std::ostringstream out;
    out << vec3{1.0, -2.0, 3.5};
    EXPECT_EQ(out.str(), "(1, -2, 3.5)");
}

TEST(aabb, default_is_empty) {
    const aabb box;
    EXPECT_TRUE(box.empty());
    EXPECT_FALSE(box.contains({0.0, 0.0, 0.0}));
    EXPECT_EQ(box.size(), vec3{});
}

TEST(aabb, expand_points) {
    aabb box;
    box.expand({1.0, 2.0, 3.0});
    EXPECT_FALSE(box.empty());
    EXPECT_TRUE(box.contains({1.0, 2.0, 3.0}));
    box.expand({-1.0, 0.0, 5.0});
    EXPECT_EQ(box.lo, (vec3{-1.0, 0.0, 3.0}));
    EXPECT_EQ(box.hi, (vec3{1.0, 2.0, 5.0}));
    EXPECT_EQ(box.center(), (vec3{0.0, 1.0, 4.0}));
    EXPECT_EQ(box.size(), (vec3{2.0, 2.0, 2.0}));
}

TEST(aabb, contains_boundary) {
    const aabb box{{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}};
    EXPECT_TRUE(box.contains({0.0, 0.0, 0.0}));
    EXPECT_TRUE(box.contains({1.0, 1.0, 1.0}));
    EXPECT_FALSE(box.contains({1.0001, 0.5, 0.5}));
}

TEST(aabb, intersects) {
    const aabb a{{0.0, 0.0, 0.0}, {2.0, 2.0, 2.0}};
    const aabb b{{1.0, 1.0, 1.0}, {3.0, 3.0, 3.0}};
    const aabb c{{5.0, 5.0, 5.0}, {6.0, 6.0, 6.0}};
    EXPECT_TRUE(a.intersects(b));
    EXPECT_TRUE(b.intersects(a));
    EXPECT_FALSE(a.intersects(c));
    EXPECT_FALSE(aabb{}.intersects(a));
}

TEST(aabb, expand_with_box) {
    aabb a{{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}};
    a.expand(aabb{{2.0, -1.0, 0.5}, {3.0, 0.5, 2.0}});
    EXPECT_EQ(a.lo, (vec3{0.0, -1.0, 0.0}));
    EXPECT_EQ(a.hi, (vec3{3.0, 1.0, 2.0}));
    // Expanding with an empty box is a no-op.
    const aabb before = a;
    a.expand(aabb{});
    EXPECT_EQ(a.lo, before.lo);
    EXPECT_EQ(a.hi, before.hi);
}

TEST(aabb, distance_sq) {
    const aabb box{{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}};
    EXPECT_DOUBLE_EQ(box.distance_sq({0.5, 0.5, 0.5}), 0.0);  // inside
    EXPECT_DOUBLE_EQ(box.distance_sq({2.0, 0.5, 0.5}), 1.0);  // off one face
    EXPECT_DOUBLE_EQ(box.distance_sq({2.0, 2.0, 0.5}), 2.0);  // off an edge
    EXPECT_DOUBLE_EQ(box.distance_sq({2.0, 2.0, 2.0}), 3.0);  // off a corner
}

}  // namespace
}  // namespace hawc
