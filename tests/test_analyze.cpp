// Unit tests for the hawc_analyze core: the C++-aware lexer's hard cases
// (raw strings, line splices, non-nesting block comments, #if 0 regions),
// the module-layer table, and the graph/lock rule families over synthetic
// in-memory trees. The fixture trees under tests/lint/ are pinned
// end-to-end by the analyze.self_test ctest; these tests isolate the
// pieces so a regression points at the exact layer that broke.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "lexer.hpp"

namespace ha = hawc::analyze;

namespace {

ha::lexed_file lexed(const char* path, std::string_view src) {
    return ha::lex(src, path);
}

bool has_ident(const ha::lexed_file& f, std::string_view name) {
    return std::any_of(f.tokens.begin(), f.tokens.end(),
                       [&](const ha::token& t) { return ha::is_ident(t, name); });
}

std::vector<ha::finding> findings_for_rule(const std::vector<ha::finding>& all,
                                           std::string_view rule) {
    std::vector<ha::finding> out;
    for (const auto& f : all) {
        if (f.rule == rule) out.push_back(f);
    }
    return out;
}

// Build a ready-to-run analysis_input over in-memory files, with the
// miniature module table the fixture trees also use.
ha::analysis_input make_input(std::vector<ha::lexed_file> files) {
    ha::analysis_input in;
    in.root = ".";
    in.files = std::move(files);
    in.module_deps = ha::parse_module_table(
        "hawc_module(common)\n"
        "hawc_module(geom common)\n"
        "hawc_module(telemetry common)\n"
        "hawc_module(sim geom)\n"
        "hawc_module(nn common telemetry)\n"
        "hawc_module(counting nn telemetry)\n"
        "hawc_module(runtime counting telemetry)\n"
        "hawc_module(replay runtime)\n"
        "hawc_module(obs replay)\n"
        "hawc_module(fleet obs)\n");
    in.module_closure = ha::module_transitive_closure(in.module_deps);
    return in;
}

// --- lexer ------------------------------------------------------------------

TEST(Lexer, EmitsCodeTokensAndCombinedPuncts) {
    auto f = lexed("src/common/x.cpp", "int a = b->c + ns::d;\n");
    ASSERT_FALSE(f.tokens.empty());
    EXPECT_TRUE(has_ident(f, "int"));
    EXPECT_TRUE(std::any_of(f.tokens.begin(), f.tokens.end(),
                            [](const ha::token& t) { return ha::is_punct(t, "->"); }));
    EXPECT_TRUE(std::any_of(f.tokens.begin(), f.tokens.end(),
                            [](const ha::token& t) { return ha::is_punct(t, "::"); }));
    EXPECT_EQ(f.line_count, 2);  // the trailing newline opens (empty) line 2
}

TEST(Lexer, StringAndCommentContentsNeverBecomeTokens) {
    auto f = lexed("src/common/x.cpp",
                   "// prose about rand() and new PoleBoard\n"
                   "/* std::cout << x; */\n"
                   "const char* s = \"srand(42) printf(\\\"%d\\\")\";\n");
    EXPECT_FALSE(has_ident(f, "rand"));
    EXPECT_FALSE(has_ident(f, "srand"));
    EXPECT_FALSE(has_ident(f, "printf"));
    EXPECT_FALSE(has_ident(f, "cout"));
    // The literal itself is one token whose text excludes the quotes.
    auto strings = std::count_if(f.tokens.begin(), f.tokens.end(), [](const ha::token& t) {
        return t.kind == ha::token_kind::string_lit;
    });
    EXPECT_EQ(strings, 1);
}

TEST(Lexer, RawStringSwallowsBannedSpellingsUpToMatchingDelimiter) {
    auto f = lexed("src/common/x.cpp",
                   "auto s = R\"doc(\n"
                   "  auto* p = new PoleBoard(); )\" not the end\n"
                   "  srand(42);\n"
                   ")doc\";\n"
                   "int after = 1;\n");
    EXPECT_FALSE(has_ident(f, "srand"));
    EXPECT_FALSE(has_ident(f, "PoleBoard"));
    EXPECT_TRUE(has_ident(f, "after"));
    // Line attribution survives the multi-line literal.
    auto it = std::find_if(f.tokens.begin(), f.tokens.end(),
                           [](const ha::token& t) { return ha::is_ident(t, "after"); });
    ASSERT_NE(it, f.tokens.end());
    EXPECT_EQ(it->line, 5);
}

TEST(Lexer, LineSplicesJoinTokensButKeepPhysicalLines) {
    auto f = lexed("src/common/x.cpp",
                   "int spli\\\nce_victim = 0;\n"
                   "int next = 1;\n");
    EXPECT_TRUE(has_ident(f, "splice_victim"));
    EXPECT_FALSE(has_ident(f, "ce_victim"));
    auto it = std::find_if(f.tokens.begin(), f.tokens.end(),
                           [](const ha::token& t) { return ha::is_ident(t, "next"); });
    ASSERT_NE(it, f.tokens.end());
    EXPECT_EQ(it->line, 3);  // the splice consumed line 2's start, not its count
}

TEST(Lexer, BlockCommentsDoNotNest) {
    // The first */ ends the comment per the standard; "int live" must appear.
    auto f = lexed("src/common/x.cpp", "/* outer /* inner */ int live = 1;\n");
    EXPECT_TRUE(has_ident(f, "live"));
    EXPECT_FALSE(has_ident(f, "outer"));
}

TEST(Lexer, If0RegionsAreDeadIncludingNestedConditionals) {
    auto f = lexed("src/common/x.cpp",
                   "#if 0\n"
                   "int dead = rand();\n"
                   "#if 1\n"
                   "int nested_dead = 2;\n"
                   "#endif\n"
                   "int also_dead = 3;\n"
                   "#endif\n"
                   "int live = 4;\n");
    EXPECT_FALSE(has_ident(f, "dead"));
    EXPECT_FALSE(has_ident(f, "nested_dead"));
    EXPECT_FALSE(has_ident(f, "also_dead"));
    EXPECT_FALSE(has_ident(f, "rand"));
    EXPECT_TRUE(has_ident(f, "live"));
}

TEST(Lexer, PreprocessorLinesAreSingleTokens) {
    auto f = lexed("src/common/x.cpp",
                   "#include \"geom/left.hpp\"\n"
                   "#define WIDE 1\n"
                   "int x = WIDE;\n");
    auto pps = std::count_if(f.tokens.begin(), f.tokens.end(), [](const ha::token& t) {
        return t.kind == ha::token_kind::pp_directive;
    });
    EXPECT_EQ(pps, 2);
    EXPECT_TRUE(has_ident(f, "WIDE"));  // the use site, not the definition
}

TEST(Lexer, WaiversExpectationsAndClaims) {
    auto f = lexed("src/common/x.cpp",
                   "int a = 1;  // lint:allow(raw-rng): seeded fixture\n"
                   "int b = 2;  // lint:allow(naked-new)\n"
                   "int c = 3;  // lint:expect(raw-logging)\n"
                   "// this registry is lock-free on the record path\n");
    ASSERT_EQ(f.waivers.size(), 2u);
    EXPECT_EQ(f.waivers[0].rule, "raw-rng");
    EXPECT_TRUE(f.waivers[0].has_reason);
    EXPECT_EQ(f.waivers[0].line, 1);
    EXPECT_EQ(f.waivers[1].rule, "naked-new");
    EXPECT_FALSE(f.waivers[1].has_reason);
    ASSERT_EQ(f.expects.size(), 1u);
    EXPECT_EQ(f.expects[0].rule, "raw-logging");
    EXPECT_EQ(f.expects[0].line, 3);
    EXPECT_TRUE(f.claims_lockfree);
}

TEST(Lexer, DeadlockFreeProseIsNotALockFreeClaim) {
    auto f = lexed("src/common/x.cpp", "// deadlock-free by construction\n");
    EXPECT_FALSE(f.claims_lockfree);
    auto g = lexed("src/common/y.cpp", "// a LOCK-FREE ring buffer\n");
    EXPECT_TRUE(g.claims_lockfree);
}

// --- module table -----------------------------------------------------------

TEST(ModuleTable, ParsesDeclarationsAndComputesClosure) {
    auto deps = ha::parse_module_table(
        "# comment\n"
        "hawc_module(common)\n"
        "hawc_module(geom common)\n"
        "hawc_module(sim geom)\n");
    ASSERT_EQ(deps.size(), 3u);
    EXPECT_TRUE(deps.at("common").empty());
    ASSERT_EQ(deps.at("sim").size(), 1u);
    EXPECT_EQ(deps.at("sim")[0], "geom");

    auto closure = ha::module_transitive_closure(deps);
    EXPECT_TRUE(closure.at("sim").count("geom"));
    EXPECT_TRUE(closure.at("sim").count("common"));  // transitive
    EXPECT_FALSE(closure.at("geom").count("sim"));   // no upward edge
}

// --- graph rules ------------------------------------------------------------

TEST(GraphRules, UpwardIncludeViolatesLayerDag) {
    auto in = make_input({
        lexed("src/common/bad.hpp", "#include \"fleet/pole.hpp\"\n"),
        lexed("src/fleet/pole.hpp", "int pole();\n"),
    });
    std::vector<ha::finding> out;
    ha::run_graph_rules(in, out);
    auto hits = findings_for_rule(out, "layer-dag");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].file, "src/common/bad.hpp");
}

TEST(GraphRules, DeclaredDependencyIncludeIsAllowed) {
    auto in = make_input({
        lexed("src/sim/scene.cpp", "#include \"geom/shape.hpp\"\n"),
        lexed("src/geom/shape.hpp", "int shape();\n"),
    });
    std::vector<ha::finding> out;
    ha::run_graph_rules(in, out);
    EXPECT_TRUE(findings_for_rule(out, "layer-dag").empty());
}

TEST(GraphRules, ThreeFileIncludeCycleIsReportedOnce) {
    auto in = make_input({
        lexed("src/geom/a.hpp", "#include \"geom/b.hpp\"\n"),
        lexed("src/geom/b.hpp", "#include \"geom/c.hpp\"\n"),
        lexed("src/geom/c.hpp", "#include \"geom/a.hpp\"\n"),
    });
    std::vector<ha::finding> out;
    ha::run_graph_rules(in, out);
    auto hits = findings_for_rule(out, "include-cycle");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].file, "src/geom/a.hpp");  // lexicographically-first member
    EXPECT_NE(hits[0].message.find("b.hpp"), std::string::npos);
}

TEST(GraphRules, DiamondIncludesAreNotACycle) {
    auto in = make_input({
        lexed("src/geom/top.hpp", "#include \"geom/l.hpp\"\n#include \"geom/r.hpp\"\n"),
        lexed("src/geom/l.hpp", "#include \"common/base.hpp\"\n"),
        lexed("src/geom/r.hpp", "#include \"common/base.hpp\"\n"),
        lexed("src/common/base.hpp", "int base();\n"),
    });
    std::vector<ha::finding> out;
    ha::run_graph_rules(in, out);
    EXPECT_TRUE(findings_for_rule(out, "include-cycle").empty());
}

TEST(GraphRules, ReplayClosurePullsWallClockFindingIntoScope) {
    const char* clock_hpp =
        "#include <chrono>\n"
        "inline auto stamp() { return std::chrono::system_clock::now(); }\n";
    {
        // Reachable from src/replay: the header's wall clock is a finding.
        auto in = make_input({
            lexed("src/replay/entry.cpp", "#include \"telemetry/clock.hpp\"\n"),
            lexed("src/telemetry/clock.hpp", clock_hpp),
        });
        std::vector<ha::finding> out;
        ha::run_graph_rules(in, out);
        auto hits = findings_for_rule(out, "replay-determinism");
        ASSERT_EQ(hits.size(), 1u);
        EXPECT_EQ(hits[0].file, "src/telemetry/clock.hpp");
    }
    {
        // The same header outside the closure is nobody's business.
        auto in = make_input({
            lexed("src/telemetry/clock.hpp", clock_hpp),
        });
        std::vector<ha::finding> out;
        ha::run_graph_rules(in, out);
        EXPECT_TRUE(findings_for_rule(out, "replay-determinism").empty());
    }
}

TEST(GraphRules, UnorderedIterationInSimIsNondeterministic) {
    auto in = make_input({
        lexed("src/sim/scene.cpp",
              "#include <unordered_map>\n"
              "std::unordered_map<int, int> heights;\n"
              "int sum() {\n"
              "  int t = 0;\n"
              "  for (const auto& kv : heights) t += kv.second;\n"
              "  return t;\n"
              "}\n"),
    });
    std::vector<ha::finding> out;
    ha::run_graph_rules(in, out);
    auto hits = findings_for_rule(out, "replay-determinism");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 5);
}

TEST(GraphRules, SteadyClockInSimIsAllowed) {
    auto in = make_input({
        lexed("src/sim/tick.cpp",
              "#include <chrono>\n"
              "auto t() { return std::chrono::steady_clock::now(); }\n"),
    });
    std::vector<ha::finding> out;
    ha::run_graph_rules(in, out);
    EXPECT_TRUE(findings_for_rule(out, "replay-determinism").empty());
}

// --- lock rules -------------------------------------------------------------

TEST(LockRules, ThreeMutexCycleReportsEveryEdge) {
    auto in = make_input({
        lexed("src/counting/locks.cpp",
              "#include <mutex>\n"
              "std::mutex a; std::mutex b; std::mutex c;\n"
              "void ab() { std::lock_guard ga{a}; std::lock_guard gb{b}; }\n"
              "void bc() { std::lock_guard gb{b}; std::lock_guard gc{c}; }\n"
              "void ca() { std::lock_guard gc{c}; std::lock_guard ga{a}; }\n"),
    });
    std::vector<ha::finding> out;
    ha::run_lock_rules(in, out);
    auto hits = findings_for_rule(out, "lock-order");
    EXPECT_EQ(hits.size(), 3u);  // a->b, b->c, c->a all sit on the cycle
}

TEST(LockRules, ConsistentOrderAndScopedLockGroupsAreClean) {
    auto in = make_input({
        lexed("src/counting/locks.cpp",
              "#include <mutex>\n"
              "std::mutex a; std::mutex b;\n"
              "void one() { std::lock_guard ga{a}; std::lock_guard gb{b}; }\n"
              "void two() { std::lock_guard ga{a}; std::lock_guard gb{b}; }\n"
              "void both() { std::scoped_lock g{b, a}; }\n"
              "void seq() { { std::lock_guard gb{b}; } std::lock_guard ga{a}; }\n"),
    });
    std::vector<ha::finding> out;
    ha::run_lock_rules(in, out);
    EXPECT_TRUE(findings_for_rule(out, "lock-order").empty());
}

TEST(LockRules, HoldingAcrossParallelForIsFlagged) {
    auto in = make_input({
        lexed("src/runtime/flush.cpp",
              "#include <mutex>\n"
              "std::mutex m;\n"
              "void f(pool& p) {\n"
              "  std::lock_guard g{m};\n"
              "  p.parallel_for(0, 8, 1, [](int) {});\n"
              "}\n"
              "void ok(pool& p) {\n"
              "  { std::lock_guard g{m}; }\n"
              "  p.parallel_for(0, 8, 1, [](int) {});\n"
              "}\n"),
    });
    std::vector<ha::finding> out;
    ha::run_lock_rules(in, out);
    auto hits = findings_for_rule(out, "lock-across-parallel");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0].line, 5);
}

// --- end-to-end over the on-disk fixture trees ------------------------------

TEST(AnalyzeDriver, CleanFixtureTreeHasNoActiveFindingsButConsumesWaivers) {
    ha::analysis_options opts;
    opts.root = std::string(HAWC_LINT_FIXTURES) + "/tree_clean";
    auto r = ha::analyze(opts);
    EXPECT_TRUE(r.errors.empty());
    EXPECT_EQ(r.active, 0u);
    EXPECT_GT(r.waived, 0u);
    EXPECT_GT(r.files_analyzed, 0u);
}

TEST(AnalyzeDriver, BadFixtureTreeMatchesItsExpectMarkersExactly) {
    ha::analysis_options opts;
    opts.root = std::string(HAWC_LINT_FIXTURES) + "/tree_bad";
    auto r = ha::analyze(opts);
    EXPECT_TRUE(r.errors.empty());
    std::set<std::string> expected, actual;
    for (const auto& e : r.expects) {
        expected.insert(e.file + ":" + std::to_string(e.line) + ":" + e.rule);
    }
    for (const auto& f : r.findings) {
        if (!f.waived && !f.baselined) {
            actual.insert(f.file + ":" + std::to_string(f.line) + ":" + f.rule);
        }
    }
    EXPECT_EQ(expected, actual);
    EXPECT_EQ(r.active, expected.size());
}

}  // namespace
