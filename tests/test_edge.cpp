// Tests for the edge-device cost models and host latency measurement.

#include <gtest/gtest.h>

#include "classifiers/hawc_model.hpp"
#include "classifiers/pointnet_model.hpp"
#include "edge/device_model.hpp"
#include "edge/measure.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pooling.hpp"

namespace hawc {
namespace {

layer_info conv_info(std::size_t macs) {
    layer_info li;
    li.kind = op_kind::convolution;
    li.macs_per_sample = macs;
    return li;
}

layer_info dense_info(std::size_t macs) {
    layer_info li;
    li.kind = op_kind::dense;
    li.macs_per_sample = macs;
    return li;
}

TEST(device_model, more_macs_cost_more) {
    const auto jetson = device_profile::jetson_nano();
    const std::vector<layer_info> small{conv_info(100000)};
    const std::vector<layer_info> large{conv_info(10000000)};
    EXPECT_LT(predict_fp32_latency_ms(jetson, small), predict_fp32_latency_ms(jetson, large));
}

TEST(device_model, coral_fp32_slower_than_jetson) {
    // No accelerator for fp32 on the Coral: CPU fallback dominates.
    const std::vector<layer_info> net{conv_info(5000000), dense_info(500000)};
    EXPECT_GT(predict_fp32_latency_ms(device_profile::coral_dev_board(), net),
              predict_fp32_latency_ms(device_profile::jetson_nano(), net));
}

TEST(device_model, coral_int8_conv_fast_dense_slow) {
    const auto coral = device_profile::coral_dev_board();
    std::vector<q_op_info> conv_heavy{{op_kind::convolution, 5000000}};
    std::vector<q_op_info> dense_heavy{{op_kind::dense, 50000},
                                       {op_kind::dense, 50000},
                                       {op_kind::dense, 50000},
                                       {op_kind::dense, 50000}};
    // 5M conv MACs run faster than 200k dense MACs on the TPU model.
    EXPECT_LT(predict_int8_latency_ms(coral, conv_heavy),
              predict_int8_latency_ms(coral, dense_heavy));
}

TEST(device_model, coral_dense_int8_slower_than_fp32_paper_effect) {
    // The paper's Table II: the dense-only AutoEncoder got SLOWER after
    // quantization on the Coral. The cost model reproduces that.
    const auto coral = device_profile::coral_dev_board();
    const std::vector<layer_info> fp32_net{dense_info(12000), dense_info(6000),
                                           dense_info(3000), dense_info(1500)};
    const std::vector<q_op_info> int8_net{{op_kind::dense, 12000},
                                          {op_kind::dense, 6000},
                                          {op_kind::dense, 3000},
                                          {op_kind::dense, 1500}};
    EXPECT_GT(predict_int8_latency_ms(coral, int8_net),
              predict_fp32_latency_ms(coral, fp32_net));
}

TEST(device_model, jetson_int8_speedup_modest) {
    const auto jetson = device_profile::jetson_nano();
    const std::vector<layer_info> fp32_net{conv_info(2000000)};
    const std::vector<q_op_info> int8_net{{op_kind::convolution, 2000000}};
    const double fp32 = predict_fp32_latency_ms(jetson, fp32_net);
    const double int8 = predict_int8_latency_ms(jetson, int8_net);
    EXPECT_LT(int8, fp32);
    EXPECT_GT(int8, fp32 / 4.0);  // not a TPU-style cliff
}

TEST(device_model, hawc_vs_pointnet_ordering) {
    // HAWC is a far smaller network: it must be predicted faster than
    // paper-scale PointNet on both devices and precisions.
    rng r{1};
    object_pool pool;
    point_cloud dummy;
    for (int i = 0; i < 50; ++i) dummy.push_back({20.0, 0.0, -2.0});
    pool.add_cloud(dummy);

    hawc_config hc;
    hc.features.upsample.target_points = 324;
    hc.features.projection.target_points = 324;
    hawc_model hawc{hc, pool, r};

    pointnet_model pointnet{pointnet_config::paper_scale(), pool, r};

    const auto hawc_layers = hawc.network().summarize({18, 18, 7});
    const auto pn_layers = pointnet.network().summarize({324, 1, 3});

    for (const auto& device :
         {device_profile::jetson_nano(), device_profile::coral_dev_board()}) {
        EXPECT_LT(predict_fp32_latency_ms(device, hawc_layers),
                  predict_fp32_latency_ms(device, pn_layers))
            << device.name;
    }
}

TEST(measure, fp32_latency_positive_and_stable) {
    rng r{2};
    sequential net;
    net.emplace<conv2d>(3, 8, 3, padding::same, r);
    net.emplace<relu>();
    net.emplace<flatten>();
    net.emplace<dense>(8 * 8 * 8, 2, r);
    tensor sample{{1, 8, 8, 3}};
    const auto lat = measure_fp32_latency(net, sample, 10, 2);
    EXPECT_GT(lat.mean_ms, 0.0);
    EXPECT_EQ(lat.iterations, 10u);
}

TEST(measure, int8_latency_positive) {
    rng r{3};
    sequential net;
    net.emplace<dense>(16, 8, r);
    net.emplace<relu>();
    net.emplace<dense>(8, 2, r);
    std::vector<tensor> calibration;
    for (int i = 0; i < 4; ++i) {
        tensor t{{1, 16}};
        for (std::size_t j = 0; j < t.size(); ++j) t[j] = static_cast<float>(r.normal());
        calibration.push_back(t);
    }
    const quantized_model q = quantize_model(net, calibration);
    tensor sample{{1, 16}};
    const auto lat = measure_int8_latency(q, sample, 10, 2);
    EXPECT_GT(lat.mean_ms, 0.0);
}

}  // namespace
}  // namespace hawc
