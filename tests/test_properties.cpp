// Property-based tests: invariants that must hold across randomized
// inputs, swept with parameterized gtest over seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>

#include "clustering/adaptive_eps.hpp"
#include "clustering/dbscan.hpp"
#include "common/rng.hpp"
#include "counting/crowd_counter.hpp"
#include "features/pipeline.hpp"
#include "features/upsampling.hpp"
#include "pointcloud/kd_tree.hpp"
#include "quant/q_types.hpp"

namespace hawc {
namespace {

point_cloud blob_cloud(rng& r, std::size_t blobs, std::size_t per_blob, double spread) {
    point_cloud cloud;
    for (std::size_t b = 0; b < blobs; ++b) {
        const vec3 center{r.uniform(-10.0, 10.0), r.uniform(-10.0, 10.0),
                          r.uniform(-2.0, 2.0)};
        for (std::size_t i = 0; i < per_blob; ++i) {
            cloud.push_back(center + vec3{r.normal(0.0, spread), r.normal(0.0, spread),
                                          r.normal(0.0, spread)});
        }
    }
    return cloud;
}

class seeded_property : public ::testing::TestWithParam<std::uint64_t> {};

// --- DBSCAN invariants ---

TEST_P(seeded_property, dbscan_core_point_invariants) {
    rng r{GetParam()};
    const point_cloud cloud = blob_cloud(r, 3, 50, 0.2);
    dbscan_config cfg;
    cfg.eps = 0.5;
    cfg.min_points = 5;
    cfg.metric = cluster_metric{1.0};
    const cluster_result result = dbscan(cloud, cfg);

    const kd_tree tree{cloud};
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        const std::size_t neighbors = tree.count_within(cloud[i], cfg.eps);
        if (result.labels[i] == noise_label) {
            // A noise point cannot itself be a core point.
            EXPECT_LT(neighbors, cfg.min_points) << "noise point " << i << " is core";
        }
    }
    // Every cluster contains at least one core point.
    std::vector<bool> has_core(result.cluster_count, false);
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        if (result.labels[i] != noise_label &&
            tree.count_within(cloud[i], cfg.eps) >= cfg.min_points) {
            has_core[static_cast<std::size_t>(result.labels[i])] = true;
        }
    }
    for (std::size_t c = 0; c < result.cluster_count; ++c) {
        EXPECT_TRUE(has_core[c]) << "cluster " << c << " has no core point";
    }
}

TEST_P(seeded_property, dbscan_deterministic) {
    rng r{GetParam()};
    const point_cloud cloud = blob_cloud(r, 2, 40, 0.3);
    dbscan_config cfg;
    cfg.eps = 0.6;
    const cluster_result a = dbscan(cloud, cfg);
    const cluster_result b = dbscan(cloud, cfg);
    EXPECT_EQ(a.labels, b.labels);
}

TEST_P(seeded_property, dbscan_translation_invariant) {
    rng r{GetParam()};
    const point_cloud cloud = blob_cloud(r, 2, 40, 0.25);
    const point_cloud moved = cloud.translated({100.0, -50.0, 5.0});
    dbscan_config cfg;
    cfg.eps = 0.6;
    cfg.metric = cluster_metric{1.0};
    const cluster_result a = dbscan(cloud, cfg);
    const cluster_result b = dbscan(moved, cfg);
    EXPECT_EQ(a.cluster_count, b.cluster_count);
    EXPECT_EQ(a.labels, b.labels);
}

// --- Adaptive eps ---

TEST_P(seeded_property, adaptive_eps_scales_with_geometry) {
    rng r{GetParam()};
    const point_cloud cloud = blob_cloud(r, 3, 60, 0.15);
    point_cloud doubled;
    for (const auto& p : cloud) doubled.push_back(p * 2.0);

    adaptive_eps_config cfg;
    cfg.metric = cluster_metric{1.0};
    cfg.min_eps = 1e-4;
    cfg.max_eps = 100.0;
    const double eps1 = adaptive_epsilon(cloud, cfg);
    const double eps2 = adaptive_epsilon(doubled, cfg);
    // Distances scale linearly, so the elbow should roughly double.
    EXPECT_NEAR(eps2 / eps1, 2.0, 0.8);
}

TEST_P(seeded_property, knn_curve_is_monotone) {
    rng r{GetParam()};
    const point_cloud cloud = blob_cloud(r, 2, 80, 0.4);
    const auto curve = knn_distance_curve(cloud, 4, cluster_metric{1.0});
    EXPECT_TRUE(std::is_sorted(curve.begin(), curve.end()));
    for (double d : curve) EXPECT_GE(d, 0.0);
}

// --- KD-tree with clustered (non-uniform) data ---

TEST_P(seeded_property, kd_tree_knn_on_clustered_data) {
    rng r{GetParam() + 100};
    const point_cloud cloud = blob_cloud(r, 4, 60, 0.1);
    const kd_tree tree{cloud};
    for (int trial = 0; trial < 10; ++trial) {
        const vec3 q = cloud[r.uniform_index(cloud.size())];
        const auto got = tree.nearest(q, 6);
        // Brute-force reference.
        std::vector<double> all;
        for (const auto& p : cloud) all.push_back(p.distance_to(q));
        std::sort(all.begin(), all.end());
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_NEAR(got[i].distance, all[i], 1e-9);
        }
    }
}

// --- Quantization round trips ---

TEST_P(seeded_property, quant_roundtrip_error_bounded) {
    rng r{GetParam() + 200};
    const float lo = static_cast<float>(r.uniform(-10.0, -0.1));
    const float hi = static_cast<float>(r.uniform(0.1, 10.0));
    const auto params = quant_params::from_range(lo, hi);
    for (int i = 0; i < 200; ++i) {
        const float v = static_cast<float>(r.uniform(lo, hi));
        const float back = params.dequantize(params.quantize(v));
        EXPECT_LE(std::abs(back - v), params.scale * 0.5f + 1e-6f);
    }
}

TEST_P(seeded_property, quantize_is_monotone) {
    rng r{GetParam() + 300};
    const auto params = quant_params::from_range(-5.0f, 5.0f);
    float previous = -6.0f;
    for (float v = -6.0f; v <= 6.0f; v += 0.37f) {
        EXPECT_GE(params.quantize(v), params.quantize(previous));
        previous = v;
    }
}

// --- Up-sampling ---

TEST_P(seeded_property, upsample_always_hits_target) {
    rng r{GetParam() + 400};
    object_pool pool;
    pool.add_cloud(blob_cloud(r, 2, 100, 1.0));
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = 1 + r.uniform_index(600);
        point_cloud cluster = blob_cloud(r, 1, n, 0.2);
        upsample_config cfg;
        cfg.target_points = 324;
        const point_cloud out = upsample_cluster(cluster, cfg, pool, r);
        EXPECT_EQ(out.size(), 324u);
    }
}

// --- Multiplicity estimation ---

TEST_P(seeded_property, multiplicity_never_zero_and_monotone_in_area) {
    rng r{GetParam() + 500};
    multiplicity_config cfg;
    std::size_t previous = 1;
    for (double width : {0.5, 1.5, 2.5, 4.0, 6.0}) {
        point_cloud cluster;
        for (int i = 0; i < 400; ++i) {
            cluster.push_back({20.0 + r.uniform(0.0, width), r.uniform(0.0, width), -2.0});
        }
        const std::size_t k = estimate_multiplicity(cluster, cfg);
        EXPECT_GE(k, 1u);
        EXPECT_GE(k + 1, previous);  // non-decreasing (allow estimator jitter of 1)
        previous = k;
    }
}

// --- Degenerate inputs: empty, single-point, and all-identical clouds ---
//
// Sensor faults (stuck beams, truncated frames) produce exactly these
// shapes, so the clustering and feature stages must stay well-defined on
// them rather than assume a healthy capture.

TEST(degenerate_input, adaptive_dbscan_empty_cloud) {
    const adaptive_clustering_result result = adaptive_dbscan(point_cloud{});
    EXPECT_EQ(result.clusters.cluster_count, 0u);
    EXPECT_TRUE(result.clusters.labels.empty());
}

TEST(degenerate_input, adaptive_dbscan_single_point) {
    const point_cloud cloud{{{20.0, 0.0, -1.0}}};
    const adaptive_clustering_result result = adaptive_dbscan(cloud);
    EXPECT_EQ(result.clusters.cluster_count, 0u);
    ASSERT_EQ(result.clusters.labels.size(), 1u);
    EXPECT_EQ(result.clusters.labels[0], noise_label);
}

TEST(degenerate_input, adaptive_dbscan_all_identical_points) {
    // A stuck beam re-reporting one return: the k-NN curve is all zeros,
    // so eps selection has no elbow to find. This must not read out of
    // bounds or produce a non-finite eps (regression for the duplicate-
    // flood path in adaptive_epsilon).
    for (std::size_t n : {2u, 5u, 64u, 500u}) {
        point_cloud cloud;
        for (std::size_t i = 0; i < n; ++i) cloud.push_back({20.0, 0.0, -1.0});
        const adaptive_clustering_result result = adaptive_dbscan(cloud);
        EXPECT_TRUE(std::isfinite(result.chosen_eps)) << "n=" << n;
        adaptive_eps_config cfg;
        EXPECT_GE(result.chosen_eps, cfg.min_eps) << "n=" << n;
        EXPECT_LE(result.chosen_eps, cfg.max_eps) << "n=" << n;
        // Identical points are mutual eps-neighbours: one cluster (or all
        // noise when n is below min_points), never a crash.
        if (n >= cfg.min_points) {
            EXPECT_EQ(result.clusters.cluster_count, 1u) << "n=" << n;
        }
    }
}

TEST(degenerate_input, adaptive_epsilon_mostly_duplicates) {
    // Enough duplicates to push the zero-distance prefix past the elbow
    // search band, with a few genuine points behind it.
    point_cloud cloud;
    for (int i = 0; i < 300; ++i) cloud.push_back({20.0, 0.0, -1.0});
    rng r{7};
    for (int i = 0; i < 10; ++i) {
        cloud.push_back({20.0 + r.uniform(-1.0, 1.0), r.uniform(-1.0, 1.0), -1.0});
    }
    const double eps = adaptive_epsilon(cloud);
    adaptive_eps_config cfg;
    EXPECT_TRUE(std::isfinite(eps));
    EXPECT_GE(eps, cfg.min_eps);
    EXPECT_LE(eps, cfg.max_eps);
}

TEST(degenerate_input, feature_extractor_empty_cluster) {
    rng r{11};
    object_pool pool;
    pool.add_cloud(blob_cloud(r, 2, 100, 0.5));
    cnn_feature_extractor extractor{cnn_feature_config{}, pool};
    const tensor t = extractor.extract(point_cloud{}, r);
    ASSERT_GT(t.size(), 0u);
    for (std::size_t i = 0; i < t.size(); ++i) EXPECT_TRUE(std::isfinite(t[i]));
}

TEST(degenerate_input, feature_extractor_single_point) {
    rng r{12};
    object_pool pool;
    pool.add_cloud(blob_cloud(r, 2, 100, 0.5));
    cnn_feature_extractor extractor{cnn_feature_config{}, pool};
    const tensor t = extractor.extract(point_cloud{{{20.0, 0.0, -1.0}}}, r);
    ASSERT_GT(t.size(), 0u);
    for (std::size_t i = 0; i < t.size(); ++i) EXPECT_TRUE(std::isfinite(t[i]));
}

TEST(degenerate_input, feature_extractor_identical_points) {
    rng r{13};
    object_pool pool;
    pool.add_cloud(blob_cloud(r, 2, 100, 0.5));
    cnn_feature_extractor extractor{cnn_feature_config{}, pool};
    point_cloud cluster;
    for (int i = 0; i < 40; ++i) cluster.push_back({20.0, 0.0, -1.0});
    const tensor t = extractor.extract(cluster, r);
    ASSERT_GT(t.size(), 0u);
    for (std::size_t i = 0; i < t.size(); ++i) EXPECT_TRUE(std::isfinite(t[i]));
}

// --- Rotation invariances used by augmentation ---

TEST_P(seeded_property, rotation_preserves_centroid_and_z) {
    rng r{GetParam() + 600};
    const point_cloud cloud = blob_cloud(r, 1, 80, 0.5);
    const vec3 c = cloud.centroid();
    const point_cloud rotated = cloud.rotated_z(c, r.uniform(0.0, 2.0 * std::numbers::pi));
    const vec3 c2 = rotated.centroid();
    EXPECT_NEAR(c.x, c2.x, 1e-9);
    EXPECT_NEAR(c.y, c2.y, 1e-9);
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        EXPECT_DOUBLE_EQ(cloud[i].z, rotated[i].z);
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, seeded_property,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace hawc
