// Tests for up-sampling, height features, projections, slice features,
// and the CNN feature pipeline.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/rng.hpp"
#include "features/cluster_dataset.hpp"
#include "features/height_features.hpp"
#include "features/pipeline.hpp"
#include "features/projection.hpp"
#include "features/slice_features.hpp"
#include "features/upsampling.hpp"

namespace hawc {
namespace {

point_cloud synthetic_person_cluster(rng& r, const vec3& feet, std::size_t points = 60) {
    // A vertical scatter approximating a person: points along 0.1..1.7 m
    // above the feet within a 0.25 m radius column.
    point_cloud cloud;
    for (std::size_t i = 0; i < points; ++i) {
        cloud.push_back(feet + vec3{r.normal(0.0, 0.15), r.normal(0.0, 0.12),
                                    r.uniform(0.1, 1.7)});
    }
    return cloud;
}

object_pool make_pool(rng& r) {
    object_pool pool;
    point_cloud scatter;
    for (int i = 0; i < 500; ++i) {
        scatter.push_back({r.uniform(12.0, 35.0), r.uniform(-2.5, 2.5), r.uniform(-2.6, -1.0)});
    }
    pool.add_cloud(scatter);
    return pool;
}

TEST(upsampling, next_perfect_square) {
    EXPECT_EQ(next_perfect_square(0), 0u);
    EXPECT_EQ(next_perfect_square(1), 1u);
    EXPECT_EQ(next_perfect_square(2), 4u);
    EXPECT_EQ(next_perfect_square(16), 16u);
    EXPECT_EQ(next_perfect_square(17), 25u);
    EXPECT_EQ(next_perfect_square(300), 324u);
}

TEST(upsampling, compute_target_points) {
    const std::size_t sizes[] = {10, 50, 300};
    EXPECT_EQ(compute_target_points(sizes), 324u);
    EXPECT_THROW(compute_target_points({}), invalid_argument_error);
}

TEST(upsampling, pads_to_target_with_pool_points) {
    rng r{1};
    const object_pool pool = make_pool(r);
    const point_cloud cluster = synthetic_person_cluster(r, {20.0, 0.0, -3.0});
    upsample_config cfg;
    cfg.target_points = 100;
    const point_cloud padded = upsample_cluster(cluster, cfg, pool, r);
    ASSERT_EQ(padded.size(), 100u);
    // Original points come first, unchanged.
    for (std::size_t i = 0; i < cluster.size(); ++i) EXPECT_EQ(padded[i], cluster[i]);
}

TEST(upsampling, downsamples_oversized_cluster) {
    rng r{2};
    const object_pool pool = make_pool(r);
    const point_cloud cluster = synthetic_person_cluster(r, {20.0, 0.0, -3.0}, 200);
    upsample_config cfg;
    cfg.target_points = 64;
    const point_cloud reduced = upsample_cluster(cluster, cfg, pool, r);
    EXPECT_EQ(reduced.size(), 64u);
    // Every point must come from the original cluster.
    for (const auto& p : reduced) {
        bool found = false;
        for (const auto& q : cluster) {
            if (p == q) {
                found = true;
                break;
            }
        }
        EXPECT_TRUE(found);
    }
}

TEST(upsampling, gaussian_mode_scatters_around_centroid) {
    rng r{3};
    const object_pool pool = make_pool(r);
    const point_cloud cluster = synthetic_person_cluster(r, {20.0, 0.0, -3.0}, 10);
    upsample_config cfg;
    cfg.target_points = 400;
    cfg.method = sampling_method::gaussian;
    cfg.gaussian_sigma = 3.0;
    const point_cloud padded = upsample_cluster(cluster, cfg, pool, r);
    EXPECT_EQ(padded.size(), 400u);
    // Padded points should be spread with roughly the configured sigma.
    running_stats xs;
    for (std::size_t i = 10; i < padded.size(); ++i) xs.add(padded[i].x);
    EXPECT_NEAR(xs.stddev(), 3.0, 0.5);
}

TEST(upsampling, empty_pool_rejected) {
    object_pool pool;
    rng r{4};
    EXPECT_THROW(pool.sample(5, r), invalid_argument_error);
}

TEST(upsampling, pool_samples_come_from_added_clouds) {
    object_pool pool;
    point_cloud source{{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}}};
    pool.add_cloud(source);
    EXPECT_EQ(pool.size(), 2u);
    rng r{5};
    const point_cloud sampled = pool.sample(20, r);
    for (const auto& p : sampled) {
        EXPECT_TRUE(p == source[0] || p == source[1]);
    }
}

TEST(height_features, vertical_column_has_high_sigma) {
    // Points stacked vertically: neighbours span z heavily.
    point_cloud column;
    for (int i = 0; i < 20; ++i) column.push_back({0.0, 0.0, 0.1 * i});
    // Points on a flat plane: sigma ~ 0.
    point_cloud plane;
    for (int i = 0; i < 20; ++i) plane.push_back({0.1 * i, 0.0, 0.0});

    const auto column_sigma = height_variation(column, 4);
    const auto plane_sigma = height_variation(plane, 4);
    double column_mean = 0.0;
    double plane_mean = 0.0;
    for (double s : column_sigma) column_mean += s;
    for (double s : plane_sigma) plane_mean += s;
    EXPECT_GT(column_mean / 20.0, 10.0 * (plane_mean / 20.0 + 1e-12));
}

TEST(height_features, tiny_clouds_are_zero) {
    point_cloud single{{{1.0, 1.0, 1.0}}};
    const auto sigma = height_variation(single, 4);
    ASSERT_EQ(sigma.size(), 1u);
    EXPECT_DOUBLE_EQ(sigma[0], 0.0);
}

TEST(height_features, query_against_reference) {
    point_cloud reference;
    for (int i = 0; i < 10; ++i) reference.push_back({0.0, 0.0, 0.2 * i});
    point_cloud query{{{0.0, 0.0, 0.5}}};
    const auto sigma = height_variation(query, reference, 4);
    ASSERT_EQ(sigma.size(), 1u);
    EXPECT_GT(sigma[0], 0.1);
}

TEST(projection, channel_counts) {
    EXPECT_EQ(projection_channels(projection_method::hap), 7u);
    EXPECT_EQ(projection_channels(projection_method::three_view), 6u);
    EXPECT_EQ(projection_channels(projection_method::bev), 1u);
    EXPECT_EQ(projection_channels(projection_method::range_view), 2u);
    EXPECT_EQ(projection_channels(projection_method::density_aware), 2u);
}

TEST(projection, names) {
    EXPECT_STREQ(to_string(projection_method::hap), "HAP");
    EXPECT_STREQ(to_string(projection_method::bev), "BEV");
}

class projection_shape_test : public ::testing::TestWithParam<projection_method> {};

TEST_P(projection_shape_test, output_shape_correct) {
    rng r{6};
    point_cloud cluster = synthetic_person_cluster(r, {20.0, 0.0, -3.0}, 100);
    projection_config cfg;
    cfg.method = GetParam();
    cfg.target_points = 100;
    const tensor out = project_cluster(cluster, cluster.centroid(), cfg);
    ASSERT_EQ(out.rank(), 4u);
    EXPECT_EQ(out.dim(0), 1u);
    EXPECT_EQ(out.dim(1), 10u);
    EXPECT_EQ(out.dim(2), 10u);
    EXPECT_EQ(out.dim(3), projection_channels(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(all_methods, projection_shape_test,
                         ::testing::Values(projection_method::hap,
                                           projection_method::three_view,
                                           projection_method::bev,
                                           projection_method::range_view,
                                           projection_method::density_aware));

TEST(projection, views_are_normalized) {
    rng r{7};
    point_cloud cluster = synthetic_person_cluster(r, {30.0, 1.0, -3.0}, 144);
    projection_config cfg;
    cfg.target_points = 144;
    const tensor out = project_cluster(cluster, cluster.centroid(), cfg);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_GE(out[i], -1.5f);
        EXPECT_LE(out[i], 1.5f);
    }
}

TEST(projection, rejects_non_square_target) {
    rng r{8};
    point_cloud cluster = synthetic_person_cluster(r, {20.0, 0.0, -3.0}, 50);
    projection_config cfg;
    cfg.target_points = 50;  // not a perfect square
    EXPECT_THROW(project_cluster(cluster, cluster.centroid(), cfg), invalid_argument_error);
}

TEST(projection, rejects_wrong_size_for_views) {
    rng r{9};
    point_cloud cluster = synthetic_person_cluster(r, {20.0, 0.0, -3.0}, 50);
    projection_config cfg;
    cfg.target_points = 100;  // cluster not up-sampled
    EXPECT_THROW(project_cluster(cluster, cluster.centroid(), cfg), invalid_argument_error);
}

TEST(projection, sigma_span_must_align) {
    rng r{10};
    point_cloud cluster = synthetic_person_cluster(r, {20.0, 0.0, -3.0}, 100);
    projection_config cfg;
    cfg.target_points = 100;
    const std::vector<double> wrong_sigma(50, 0.0);
    EXPECT_THROW(project_cluster(cluster, cluster.centroid(), cfg, wrong_sigma),
                 invalid_argument_error);
}

TEST(projection, bev_counts_points) {
    // All points in the same cell: one cell holds the full count.
    point_cloud cluster;
    for (int i = 0; i < 16; ++i) cluster.push_back({20.0, 0.0, -2.0});
    projection_config cfg;
    cfg.method = projection_method::bev;
    cfg.target_points = 16;
    const tensor out = project_cluster(cluster, {20.0, 0.0, -2.0}, cfg);
    float total = 0.0f;
    float peak = 0.0f;
    for (std::size_t i = 0; i < out.size(); ++i) {
        total += out[i];
        peak = std::max(peak, out[i]);
    }
    EXPECT_FLOAT_EQ(total, 16.0f);
    EXPECT_FLOAT_EQ(peak, 16.0f);
}

TEST(projection, translation_invariance_of_views) {
    // Same cluster shape at two walkway positions produces identical
    // HAP tensors when anchored at the respective centroids (up to the
    // z channel, which is ground-relative and thus also identical).
    rng r{11};
    const point_cloud base = synthetic_person_cluster(r, {15.0, -1.0, -3.0}, 100);
    const point_cloud moved = base.translated({7.0, 2.0, 0.0});
    projection_config cfg;
    cfg.target_points = 100;
    const tensor a = project_cluster(base, base.centroid(), cfg);
    const tensor b = project_cluster(moved, moved.centroid(), cfg);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-5f);
}

TEST(slice_features, feature_count_matches_config) {
    slice_feature_config cfg;
    rng r{12};
    const point_cloud cluster = synthetic_person_cluster(r, {20.0, 0.0, -3.0});
    const tensor f = slice_features(cluster, cfg);
    EXPECT_EQ(f.size(), cfg.feature_count());
    EXPECT_EQ(f.dim(0), 1u);

    slice_feature_config with_globals = cfg;
    with_globals.include_global_aggregates = true;
    EXPECT_EQ(slice_features(cluster, with_globals).size(), cfg.feature_count() + 4);
}

TEST(slice_features, empty_cluster_is_zero) {
    const tensor f = slice_features(point_cloud{});
    for (std::size_t i = 0; i < f.size(); ++i) EXPECT_EQ(f[i], 0.0f);
}

TEST(slice_features, tall_cluster_fills_high_slices) {
    slice_feature_config cfg;
    point_cloud tall;
    for (int i = 0; i < 50; ++i) tall.push_back({20.0, 0.0, -3.0 + 0.034 * i});  // up to 1.7
    point_cloud squat;
    for (int i = 0; i < 50; ++i) squat.push_back({20.0, 0.0, -3.0 + 0.008 * i});  // up to 0.4
    const tensor tall_f = slice_features(tall, cfg);
    const tensor squat_f = slice_features(squat, cfg);
    // Count feature of the slice covering 1.4-1.6 m (slice 7, feature 0).
    const std::size_t high_slice_count_index = 7 * 5;
    EXPECT_GT(tall_f[high_slice_count_index], 0.0f);
    EXPECT_FLOAT_EQ(squat_f[high_slice_count_index], 0.0f);
}

TEST(slice_features, circularity_distinguishes_shapes) {
    slice_feature_config cfg;
    rng r{13};
    // Circular cross-section at slice 2 (0.4-0.6 m).
    point_cloud circular;
    for (int i = 0; i < 100; ++i) {
        const double a = r.uniform(0.0, 6.283);
        circular.push_back({20.0 + 0.3 * std::cos(a), 0.3 * std::sin(a), -2.5});
    }
    // Elongated line at the same height.
    point_cloud elongated;
    for (int i = 0; i < 100; ++i) {
        elongated.push_back({20.0 + r.uniform(-1.0, 1.0), 0.02 * r.normal(), -2.5});
    }
    const std::size_t slice = 2;
    const std::size_t circularity_index = slice * 5 + 4;
    const tensor cf = slice_features(circular, cfg);
    const tensor ef = slice_features(elongated, cfg);
    EXPECT_GT(cf[circularity_index], 0.5f);
    EXPECT_LT(ef[circularity_index], 0.1f);
}

TEST(pipeline, extract_shape_matches_config) {
    rng r{14};
    cnn_feature_config cfg;
    cfg.upsample.target_points = 169;
    cfg.projection.target_points = 169;
    cnn_feature_extractor extractor{cfg, make_pool(r)};
    EXPECT_EQ(extractor.sample_shape(), (std::vector<std::size_t>{13, 13, 7}));

    const point_cloud cluster = synthetic_person_cluster(r, {20.0, 0.0, -3.0}, 40);
    const tensor out = extractor.extract(cluster, r);
    EXPECT_EQ(out.shape(), (std::vector<std::size_t>{1, 13, 13, 7}));
}

TEST(pipeline, sigma_zero_on_padding) {
    rng r{15};
    cnn_feature_config cfg;
    cfg.upsample.target_points = 400;
    cfg.projection.target_points = 400;
    cnn_feature_extractor extractor{cfg, make_pool(r)};
    // A tiny cluster: nearly all pixels are padding, whose sigma channel
    // (channel 2 of the top view) must be exactly zero.
    const point_cloud cluster = synthetic_person_cluster(r, {20.0, 0.0, -3.0}, 10);
    const tensor out = extractor.extract(cluster, r);
    std::size_t zero_sigma = 0;
    for (std::size_t h = 0; h < 20; ++h) {
        for (std::size_t w = 0; w < 20; ++w) {
            if (out.at(0, h, w, 2) == 0.0f) ++zero_sigma;
        }
    }
    EXPECT_GE(zero_sigma, 385u);
}

TEST(cluster_dataset_type, add_and_count) {
    cluster_dataset data;
    data.add(point_cloud{{{1.0, 0.0, 0.0}}}, label_human);
    data.add(point_cloud{{{2.0, 0.0, 0.0}}}, label_object);
    data.add(point_cloud{{{3.0, 0.0, 0.0}}}, label_human);
    EXPECT_EQ(data.size(), 3u);
    EXPECT_EQ(data.count_label(label_human), 2u);
    EXPECT_EQ(data.count_label(label_object), 1u);
}


TEST(projection, range_view_encodes_depth) {
    // Points at a known range: the RV depth channel must carry ~that range.
    point_cloud cluster;
    for (int i = 0; i < 25; ++i) cluster.push_back({20.0, 0.0, -2.0});
    projection_config cfg;
    cfg.method = projection_method::range_view;
    cfg.target_points = 25;
    const tensor out = project_cluster(cluster, {20.0, 0.0, -2.0}, cfg);
    float max_depth = 0.0f;
    float total_count = 0.0f;
    for (std::size_t h = 0; h < 5; ++h) {
        for (std::size_t w = 0; w < 5; ++w) {
            max_depth = std::max(max_depth, out.at(0, h, w, 0));
            total_count += out.at(0, h, w, 1);
        }
    }
    EXPECT_NEAR(max_depth, std::hypot(20.0, 2.0), 0.2);
    EXPECT_FLOAT_EQ(total_count, 25.0f);
}

TEST(projection, density_aware_mean_height) {
    // A column of points 1 m above ground in one cell: DA channel 1 must
    // report that mean height.
    point_cloud cluster;
    for (int i = 0; i < 16; ++i) cluster.push_back({20.0, 0.0, -2.0});
    projection_config cfg;
    cfg.method = projection_method::density_aware;
    cfg.target_points = 16;
    const tensor out = project_cluster(cluster, {20.0, 0.0, -2.0}, cfg);
    float best_height = 0.0f;
    for (std::size_t i = 0; i < out.size(); i += 2) {
        if (out[i] > 0.0f) best_height = out[i + 1];
    }
    EXPECT_NEAR(best_height, 1.0f, 1e-5f);
}

TEST(projection, deterministic_given_same_input) {
    rng r{44};
    const point_cloud cluster = synthetic_person_cluster(r, {22.0, 0.5, -3.0}, 100);
    projection_config cfg;
    cfg.target_points = 100;
    const tensor a = project_cluster(cluster, cluster.centroid(), cfg);
    const tensor b = project_cluster(cluster, cluster.centroid(), cfg);
    EXPECT_EQ(a, b);
}

TEST(projection, xy_clamp_limits_magnitudes) {
    // Points 20 m from the anchor clamp to +-1 after normalization.
    point_cloud cluster;
    for (int i = 0; i < 9; ++i) cluster.push_back({40.0, 8.0, -2.0});
    projection_config cfg;
    cfg.target_points = 9;
    const tensor out = project_cluster(cluster, {20.0, 0.0, -2.0}, cfg);
    for (std::size_t h = 0; h < 3; ++h) {
        for (std::size_t w = 0; w < 3; ++w) {
            EXPECT_FLOAT_EQ(out.at(0, h, w, 0), 1.0f);  // x channel clamped
            EXPECT_FLOAT_EQ(out.at(0, h, w, 1), 1.0f);  // y channel clamped
        }
    }
}

TEST(pipeline, three_view_shape) {
    rng r{45};
    cnn_feature_config cfg;
    cfg.upsample.target_points = 100;
    cfg.projection.target_points = 100;
    cfg.projection.method = projection_method::three_view;
    cnn_feature_extractor extractor{cfg, make_pool(r)};
    EXPECT_EQ(extractor.sample_shape(), (std::vector<std::size_t>{10, 10, 6}));
    const tensor out = extractor.extract(synthetic_person_cluster(r, {20.0, 0.0, -3.0}, 30), r);
    EXPECT_EQ(out.dim(3), 6u);
}

}  // namespace
}  // namespace hawc
