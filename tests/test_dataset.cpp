// Tests for dataset builders and the capture pipeline.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "dataset/builders.hpp"

namespace hawc {
namespace {

/// Small configs keep these tests fast; the builders are the same code
/// paths the benches use at full size.
single_person_dataset_config small_config() {
    single_person_dataset_config cfg;
    cfg.human_samples = 30;
    cfg.object_samples = 30;
    return cfg;
}

TEST(capture_pipeline, single_person_scene_produces_clusters) {
    rng r{1};
    const capture_config cfg;
    const scene s = make_single_person_scene(r);
    const capture cap = run_capture(s, cfg, r);
    EXPECT_FALSE(cap.raw.empty());
    EXPECT_FALSE(cap.ingested.empty());
    EXPECT_GE(cap.clusters.size(), 1u);
    EXPECT_GT(cap.chosen_eps, 0.0);
    for (const auto& cluster : cap.clusters) {
        EXPECT_GE(cluster.size(), cfg.min_cluster_points);
    }
}

TEST(capture_pipeline, ingested_points_inside_roi) {
    rng r{2};
    const capture_config cfg;
    const scene s = make_crowd_scene(r, 3, 2);
    const capture cap = run_capture(s, cfg, r);
    for (const auto& p : cap.ingested) {
        EXPECT_GE(p.x, cfg.roi.x_min_m);
        EXPECT_LE(p.x, cfg.roi.x_max_m);
        EXPECT_GE(p.z, cfg.ground.z_min_m);
    }
}

TEST(capture_pipeline, process_cloud_equivalent_to_run_capture_backend) {
    rng r{3};
    const capture_config cfg;
    const scene s = make_single_person_scene(r);
    const scanner sensor{cfg.sensor};
    rng scan_rng{77};
    const auto scan_data = sensor.scan(s.primitives(), scan_rng, cfg.scan);
    const capture cap = process_cloud(scan_data.to_cloud(), cfg);
    EXPECT_FALSE(cap.clusters.empty());
}

TEST(capture_pipeline, visible_human_count_respects_threshold) {
    rng r{4};
    const capture_config cfg;
    const scene s = make_crowd_scene(r, 4, 0);
    const scanner sensor{cfg.sensor};
    const auto scan_data = sensor.scan(s.primitives(), r, cfg.scan);
    const std::size_t lenient = visible_human_count(s, scan_data, cfg, 1);
    const std::size_t strict = visible_human_count(s, scan_data, cfg, 1000);
    EXPECT_LE(strict, lenient);
    EXPECT_LE(lenient, 4u);
    EXPECT_EQ(strict, 0u);
}

TEST(single_person_dataset_builder, deterministic_given_seed) {
    const auto a = build_single_person_dataset(small_config());
    const auto b = build_single_person_dataset(small_config());
    ASSERT_EQ(a.train.size(), b.train.size());
    ASSERT_EQ(a.test.size(), b.test.size());
    EXPECT_EQ(a.target_points, b.target_points);
    for (std::size_t i = 0; i < a.train.size(); ++i) {
        EXPECT_EQ(a.train.labels[i], b.train.labels[i]);
        EXPECT_EQ(a.train.clusters[i].size(), b.train.clusters[i].size());
    }
}

TEST(single_person_dataset_builder, different_seed_differs) {
    auto cfg = small_config();
    cfg.seed = 4321;
    const auto a = build_single_person_dataset(small_config());
    const auto b = build_single_person_dataset(cfg);
    // Same sizes of request but different content (first cluster point).
    ASSERT_FALSE(a.train.clusters.empty());
    ASSERT_FALSE(b.train.clusters.empty());
    EXPECT_NE(a.train.clusters[0].centroid(), b.train.clusters[0].centroid());
}

TEST(single_person_dataset_builder, split_and_balance) {
    const auto ds = build_single_person_dataset(small_config());
    // Both classes present in both splits.
    EXPECT_GT(ds.train.count_label(label_human), 0u);
    EXPECT_GT(ds.train.count_label(label_object), 0u);
    EXPECT_GT(ds.test.count_label(label_human), 0u);
    EXPECT_GT(ds.test.count_label(label_object), 0u);
    // Roughly 80:20.
    const double total = static_cast<double>(ds.train.size() + ds.test.size());
    EXPECT_NEAR(static_cast<double>(ds.test.size()) / total, 0.2, 0.08);
}

TEST(single_person_dataset_builder, target_is_perfect_square_covering_max) {
    const auto ds = build_single_person_dataset(small_config());
    const auto root = static_cast<std::size_t>(
        std::llround(std::sqrt(static_cast<double>(ds.target_points))));
    EXPECT_EQ(root * root, ds.target_points);
    for (const auto& cluster : ds.train.clusters) {
        EXPECT_LE(cluster.size(), ds.target_points);
    }
}

TEST(single_person_dataset_builder, pool_populated) {
    const auto ds = build_single_person_dataset(small_config());
    EXPECT_GT(ds.pool.size(), 100u);
}

TEST(crowd_dataset_builder, sizes_and_ground_truth_bounds) {
    crowd_dataset_config cfg;
    cfg.scenes = 12;
    cfg.max_people = 5;
    const auto samples = build_crowd_dataset(cfg);
    ASSERT_EQ(samples.size(), 12u);
    for (const auto& s : samples) {
        EXPECT_LE(s.ground_truth, 5u);
        EXPECT_FALSE(s.raw.empty());
    }
}

TEST(crowd_dataset_builder, deterministic) {
    crowd_dataset_config cfg;
    cfg.scenes = 5;
    const auto a = build_crowd_dataset(cfg);
    const auto b = build_crowd_dataset(cfg);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].ground_truth, b[i].ground_truth);
        EXPECT_EQ(a[i].raw.size(), b[i].raw.size());
    }
}

TEST(density_scene_builder, offsets_within_range_and_gt) {
    rng r{5};
    std::vector<point_cloud> humans;
    std::vector<point_cloud> objects;
    for (int i = 0; i < 5; ++i) {
        point_cloud h;
        for (int j = 0; j < 30; ++j) {
            h.push_back({20.0 + 0.01 * j, 0.0, -2.0 + 0.05 * j});
        }
        humans.push_back(h);
        point_cloud o;
        for (int j = 0; j < 20; ++j) o.push_back({25.0, 1.0, -2.5 + 0.01 * j});
        objects.push_back(o);
    }
    density_scene_config cfg;
    cfg.pedestrians = 30;
    const density_scene scene = build_density_scene(cfg, humans, objects, r);
    EXPECT_EQ(scene.ground_truth, 30u);
    EXPECT_EQ(scene.x_offsets.size(), 30u);
    for (double d : scene.x_offsets) {
        EXPECT_GE(d, -cfg.offset_range_m);
        EXPECT_LE(d, cfg.offset_range_m);
    }
    // Cloud contains pedestrians plus pedestrians/2 objects worth of points.
    EXPECT_EQ(scene.cloud.size(), 30u * 30 + 15u * 20);
}

TEST(density_scene_builder, requires_donors) {
    rng r{6};
    density_scene_config cfg;
    EXPECT_THROW(build_density_scene(cfg, {}, {}, r), invalid_argument_error);
}

TEST(density_levels, names_match_paper_bands) {
    EXPECT_STREQ(density_level_name(20), "Low");
    EXPECT_STREQ(density_level_name(90), "Low");
    EXPECT_STREQ(density_level_name(100), "Moderate");
    EXPECT_STREQ(density_level_name(150), "Moderate");
    EXPECT_STREQ(density_level_name(200), "High");
    EXPECT_STREQ(density_level_name(250), "High");
}

}  // namespace
}  // namespace hawc
