// Tests for the neural-network library: tensor mechanics, numerical
// gradient checks for every layer, loss functions, optimizers, the
// training loop, and serialization.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/batch_norm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"

namespace hawc {
namespace {

tensor random_tensor(std::vector<std::size_t> shape, rng& r, double scale = 1.0) {
    tensor t{std::move(shape)};
    for (std::size_t i = 0; i < t.size(); ++i) {
        t[i] = static_cast<float>(r.normal(0.0, scale));
    }
    return t;
}

/// Scalar objective: weighted sum of the layer output (weights fixed by
/// a seeded rng so the gradient is non-trivial).
double objective(const tensor& out, const tensor& weights) {
    double sum = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) {
        sum += static_cast<double>(out[i]) * static_cast<double>(weights[i]);
    }
    return sum;
}

/// Check dL/dinput (and parameter gradients) of a layer against central
/// finite differences.
void check_layer_gradients(layer& l, const tensor& input, bool training = true,
                           double tolerance = 2e-2) {
    rng r{4242};
    tensor out = l.forward(input, training);
    const tensor obj_weights = random_tensor(out.shape(), r);

    // Analytic gradients.
    for (auto* p : l.parameters()) p->grad.zero();
    tensor grad_out{out.shape()};
    for (std::size_t i = 0; i < out.size(); ++i) grad_out[i] = obj_weights[i];
    const tensor grad_in = l.backward(grad_out);

    // Numerical input gradient (spot-check a subset for speed).
    tensor probe = input;
    const float h = 1e-2f;
    const std::size_t stride = std::max<std::size_t>(1, input.size() / 24);
    for (std::size_t i = 0; i < input.size(); i += stride) {
        const float saved = probe[i];
        probe[i] = saved + h;
        const double up = objective(l.forward(probe, training), obj_weights);
        probe[i] = saved - h;
        const double down = objective(l.forward(probe, training), obj_weights);
        probe[i] = saved;
        const double numeric = (up - down) / (2.0 * static_cast<double>(h));
        EXPECT_NEAR(grad_in[i], numeric, tolerance * std::max(1.0, std::abs(numeric)))
            << "input grad mismatch at " << i;
    }

    // Numerical parameter gradients. Re-run forward/backward to restore
    // caches after probing.
    (void)l.forward(input, training);
    for (auto* p : l.parameters()) p->grad.zero();
    (void)l.backward(grad_out);
    for (auto* p : l.parameters()) {
        const std::size_t pstride = std::max<std::size_t>(1, p->value.size() / 16);
        for (std::size_t i = 0; i < p->value.size(); i += pstride) {
            const float saved = p->value[i];
            p->value[i] = saved + h;
            const double up = objective(l.forward(input, training), obj_weights);
            p->value[i] = saved - h;
            const double down = objective(l.forward(input, training), obj_weights);
            p->value[i] = saved;
            const double numeric = (up - down) / (2.0 * static_cast<double>(h));
            EXPECT_NEAR(p->grad[i], numeric, tolerance * std::max(1.0, std::abs(numeric)))
                << "param grad mismatch at " << i;
        }
    }
}

TEST(tensor, shape_and_indexing) {
    tensor t{{2, 3, 4, 5}};
    EXPECT_EQ(t.size(), 2u * 3u * 4u * 5u);
    EXPECT_EQ(t.rank(), 4u);
    t.at(1, 2, 3, 4) = 7.0f;
    EXPECT_EQ(t[t.size() - 1], 7.0f);
    EXPECT_EQ(t.batch(), 2u);
    EXPECT_EQ(t.sample_size(), 60u);
}

TEST(tensor, fill_and_zero) {
    tensor t{{4}};
    t.fill(2.5f);
    EXPECT_EQ(t[3], 2.5f);
    t.zero();
    EXPECT_EQ(t[0], 0.0f);
}

TEST(tensor, reshape_preserves_data) {
    tensor t{{2, 6}};
    for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(i);
    const tensor r = t.reshaped({2, 2, 3, 1});
    EXPECT_EQ(r[7], 7.0f);
    EXPECT_THROW(t.reshaped({5}), invalid_argument_error);
}

TEST(tensor, stack_and_slice_roundtrip) {
    rng r{1};
    std::vector<tensor> samples;
    for (int i = 0; i < 3; ++i) samples.push_back(random_tensor({1, 2, 2, 2}, r));
    const tensor batch = tensor::stack(samples);
    EXPECT_EQ(batch.dim(0), 3u);
    for (std::size_t n = 0; n < 3; ++n) {
        EXPECT_EQ(batch.slice_sample(n), samples[n]);
    }
    EXPECT_THROW(batch.slice_sample(3), invalid_argument_error);
}

TEST(tensor, stack_rejects_mismatched) {
    std::vector<tensor> samples;
    samples.emplace_back(std::vector<std::size_t>{1, 2});
    samples.emplace_back(std::vector<std::size_t>{1, 3});
    EXPECT_THROW(tensor::stack(samples), invalid_argument_error);
}

TEST(gradients, dense_layer) {
    rng r{2};
    dense layer{6, 4, r};
    check_layer_gradients(layer, random_tensor({3, 6}, r));
}

TEST(gradients, conv2d_same_padding) {
    rng r{3};
    conv2d layer{2, 3, 3, padding::same, r};
    check_layer_gradients(layer, random_tensor({2, 5, 5, 2}, r));
}

TEST(gradients, conv2d_valid_padding) {
    rng r{4};
    conv2d layer{2, 2, 3, padding::valid, r};
    check_layer_gradients(layer, random_tensor({2, 6, 6, 2}, r));
}

TEST(gradients, conv2d_1x1) {
    rng r{5};
    conv2d layer{3, 4, 1, padding::valid, r};
    check_layer_gradients(layer, random_tensor({2, 7, 1, 3}, r));
}

TEST(gradients, relu_layer) {
    rng r{6};
    relu layer;
    // Keep values away from the kink for finite differences.
    tensor input = random_tensor({2, 10}, r);
    for (std::size_t i = 0; i < input.size(); ++i) {
        if (std::abs(input[i]) < 0.1f) input[i] += 0.3f;
    }
    check_layer_gradients(layer, input);
}

TEST(gradients, max_pool) {
    rng r{7};
    max_pool2d layer{2};
    // Spread values so the argmax is stable under probing.
    tensor input{{1, 4, 4, 2}};
    for (std::size_t i = 0; i < input.size(); ++i) {
        input[i] = static_cast<float>(i % 7) + 0.001f * static_cast<float>(i);
    }
    check_layer_gradients(layer, input);
}

TEST(gradients, global_max_pool) {
    rng r{8};
    global_max_pool layer;
    tensor input{{2, 5, 1, 3}};
    for (std::size_t i = 0; i < input.size(); ++i) {
        input[i] = static_cast<float>((i * 37) % 11) + 0.001f * static_cast<float>(i);
    }
    check_layer_gradients(layer, input);
}

TEST(gradients, batch_norm_training_mode) {
    rng r{9};
    batch_norm layer{3};
    check_layer_gradients(layer, random_tensor({4, 2, 2, 3}, r), /*training=*/true, 5e-2);
}

TEST(gradients, flatten_passthrough) {
    rng r{10};
    flatten layer;
    check_layer_gradients(layer, random_tensor({2, 3, 3, 2}, r));
}

TEST(batch_norm, normalizes_batch_statistics) {
    rng r{11};
    batch_norm layer{2};
    const tensor input = random_tensor({16, 4, 4, 2}, r, 3.0);
    const tensor out = layer.forward(input, /*training=*/true);
    // Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
    for (std::size_t c = 0; c < 2; ++c) {
        double mean = 0.0;
        const std::size_t rows = out.size() / 2;
        for (std::size_t i = 0; i < rows; ++i) mean += static_cast<double>(out[i * 2 + c]);
        mean /= static_cast<double>(rows);
        EXPECT_NEAR(mean, 0.0, 1e-4);
    }
}

TEST(batch_norm, eval_uses_running_stats) {
    rng r{12};
    batch_norm layer{2};
    for (int i = 0; i < 50; ++i) {
        (void)layer.forward(random_tensor({8, 2, 2, 2}, r, 2.0), true);
    }
    // Eval on a constant input: output should be deterministic and
    // driven by running statistics, not the batch itself.
    tensor constant{{4, 2, 2, 2}};
    constant.fill(1.0f);
    const tensor a = layer.forward(constant, false);
    const tensor b = layer.forward(constant, false);
    EXPECT_EQ(a, b);
}

TEST(loss, softmax_rows_sum_to_one) {
    rng r{13};
    const tensor logits = random_tensor({5, 4}, r, 3.0);
    const tensor probs = softmax(logits);
    for (std::size_t n = 0; n < 5; ++n) {
        double sum = 0.0;
        for (std::size_t k = 0; k < 4; ++k) sum += static_cast<double>(probs.at(n, k));
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(loss, cross_entropy_perfect_prediction) {
    tensor logits{{1, 2}};
    logits.at(0, 0) = -20.0f;
    logits.at(0, 1) = 20.0f;
    const std::uint8_t label[] = {1};
    const auto result = softmax_cross_entropy(logits, label);
    EXPECT_NEAR(result.loss, 0.0, 1e-4);
    EXPECT_EQ(result.correct, 1u);
}

TEST(loss, cross_entropy_gradient_numerically) {
    rng r{14};
    tensor logits = random_tensor({3, 4}, r);
    const std::uint8_t labels[] = {0, 2, 3};
    const auto result = softmax_cross_entropy(logits, labels);
    const float h = 1e-3f;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        tensor probe = logits;
        probe[i] += h;
        const double up = softmax_cross_entropy(probe, labels).loss;
        probe[i] -= 2 * h;
        const double down = softmax_cross_entropy(probe, labels).loss;
        const double numeric = (up - down) / (2.0 * static_cast<double>(h));
        EXPECT_NEAR(result.grad_logits[i], numeric, 1e-3);
    }
}

TEST(loss, cross_entropy_rejects_bad_labels) {
    tensor logits{{1, 2}};
    const std::uint8_t label[] = {5};
    EXPECT_THROW(softmax_cross_entropy(logits, label), invalid_argument_error);
}

TEST(loss, mse_value_and_gradient) {
    tensor pred{{1, 2}};
    pred[0] = 1.0f;
    pred[1] = 3.0f;
    tensor target{{1, 2}};
    target[0] = 0.0f;
    target[1] = 1.0f;
    const auto result = mean_squared_error(pred, target);
    EXPECT_NEAR(result.loss, (1.0 + 4.0) / 2.0, 1e-6);
    EXPECT_NEAR(result.grad[0], 2.0f * 1.0f / 2.0f, 1e-6);
}

TEST(optimizer, adam_minimizes_quadratic) {
    // Minimize (w - 3)^2 through the parameter/gradient interface.
    parameter w{{1}};
    w.value[0] = 0.0f;
    adam opt{adam_config{0.1, 0.9, 0.999, 1e-8}};
    opt.attach({&w});
    for (int i = 0; i < 200; ++i) {
        w.grad[0] = 2.0f * (w.value[0] - 3.0f);
        opt.step();
    }
    EXPECT_NEAR(w.value[0], 3.0f, 1e-2);
}

TEST(optimizer, sgd_with_momentum_minimizes) {
    parameter w{{1}};
    w.value[0] = 10.0f;
    sgd opt{sgd_config{0.05, 0.9}};
    opt.attach({&w});
    for (int i = 0; i < 300; ++i) {
        w.grad[0] = 2.0f * (w.value[0] + 1.0f);
        opt.step();
    }
    EXPECT_NEAR(w.value[0], -1.0f, 5e-2);
}

TEST(optimizer, step_zeroes_gradients) {
    parameter w{{2}};
    adam opt;
    opt.attach({&w});
    w.grad.fill(1.0f);
    opt.step();
    EXPECT_EQ(w.grad[0], 0.0f);
}

sequential tiny_mlp(rng& r) {
    sequential net;
    net.emplace<dense>(2, 16, r);
    net.emplace<relu>();
    net.emplace<dense>(16, 2, r);
    return net;
}

labelled_dataset xor_dataset(rng& r, std::size_t n) {
    labelled_dataset data;
    for (std::size_t i = 0; i < n; ++i) {
        const bool a = r.chance(0.5);
        const bool b = r.chance(0.5);
        tensor x{{1, 2}};
        x[0] = a ? 1.0f : -1.0f;
        x[1] = b ? 1.0f : -1.0f;
        data.samples.push_back(x);
        data.labels.push_back(static_cast<std::uint8_t>(a != b));
    }
    return data;
}

TEST(trainer, learns_xor) {
    rng r{15};
    sequential net = tiny_mlp(r);
    const labelled_dataset train = xor_dataset(r, 256);
    const labelled_dataset test = xor_dataset(r, 64);
    train_config cfg;
    cfg.epochs = 40;
    cfg.batch_size = 16;
    const auto reports = train_classifier(net, train, &test, cfg, r);
    EXPECT_GT(reports.back().test_accuracy, 0.95);
    EXPECT_LT(reports.back().train_loss, reports.front().train_loss);
}

TEST(trainer, evaluate_confusion_counts) {
    rng r{16};
    sequential net = tiny_mlp(r);
    const labelled_dataset data = xor_dataset(r, 100);
    const eval_metrics m = evaluate(net, data);
    EXPECT_EQ(m.true_positive + m.true_negative + m.false_positive + m.false_negative, 100u);
    EXPECT_GE(m.accuracy, 0.0);
    EXPECT_LE(m.accuracy, 1.0);
}

TEST(trainer, stratified_fraction_keeps_both_classes) {
    rng r{17};
    const labelled_dataset data = xor_dataset(r, 200);
    const labelled_dataset tiny = data.stratified_fraction(0.01, r);
    bool has0 = false;
    bool has1 = false;
    for (auto l : tiny.labels) (l == 0 ? has0 : has1) = true;
    EXPECT_TRUE(has0);
    EXPECT_TRUE(has1);
    EXPECT_LT(tiny.size(), 10u);
}

TEST(trainer, stratified_fraction_full_is_identity_sized) {
    rng r{18};
    const labelled_dataset data = xor_dataset(r, 100);
    EXPECT_EQ(data.stratified_fraction(1.0, r).size(), 100u);
    EXPECT_THROW(data.stratified_fraction(0.0, r), invalid_argument_error);
}

TEST(trainer, lr_decay_applies) {
    rng r{19};
    sequential net = tiny_mlp(r);
    const labelled_dataset train = xor_dataset(r, 64);
    train_config cfg;
    cfg.epochs = 6;
    cfg.lr_decay_factor = 0.1;
    cfg.lr_decay_period = 2;
    // Just exercise the path; convergence covered elsewhere.
    const auto reports = train_classifier(net, train, nullptr, cfg, r);
    EXPECT_EQ(reports.size(), 6u);
}

TEST(sequential, forward_range_composes) {
    rng r{20};
    sequential net = tiny_mlp(r);
    const tensor x = random_tensor({2, 2}, r);
    const tensor full = net.forward(x, false);
    const tensor mid = net.forward_range(x, 0, 2, false);
    const tensor tail = net.forward_range(mid, 2, net.layer_count(), false);
    EXPECT_EQ(full, tail);
}

TEST(sequential, parameter_count_matches_layers) {
    rng r{21};
    sequential net = tiny_mlp(r);
    EXPECT_EQ(net.parameter_count(), 2u * 16 + 16 + 16 * 2 + 2);
    EXPECT_EQ(net.parameters().size(), 4u);  // two dense layers x (W, b)
    EXPECT_EQ(net.parameters_range(0, 1).size(), 2u);
}

TEST(sequential, summarize_reports_macs) {
    rng r{22};
    sequential net;
    net.emplace<conv2d>(3, 8, 3, padding::same, r);
    net.emplace<relu>();
    net.emplace<flatten>();
    net.emplace<dense>(8 * 6 * 6, 2, r);
    const auto infos = net.summarize({6, 6, 3});
    ASSERT_EQ(infos.size(), 4u);
    EXPECT_EQ(infos[0].macs_per_sample, 6u * 6 * 8 * 3 * 3 * 3);
    EXPECT_EQ(infos[3].macs_per_sample, 8u * 36 * 2);
    EXPECT_GT(net.macs_per_sample({6, 6, 3}), 0u);
}

TEST(sequential, save_load_roundtrip) {
    rng r{23};
    sequential net;
    net.emplace<conv2d>(2, 4, 3, padding::same, r);
    net.emplace<batch_norm>(4);
    net.emplace<relu>();
    net.emplace<flatten>();
    net.emplace<dense>(4 * 4 * 4, 2, r);

    const tensor x = random_tensor({1, 4, 4, 2}, r);
    (void)net.forward(x, true);  // move BN running stats off default
    const tensor before = net.forward(x, false);

    std::stringstream buffer;
    net.save(buffer);

    rng r2{999};
    sequential copy;
    copy.emplace<conv2d>(2, 4, 3, padding::same, r2);
    copy.emplace<batch_norm>(4);
    copy.emplace<relu>();
    copy.emplace<flatten>();
    copy.emplace<dense>(4 * 4 * 4, 2, r2);
    copy.load(buffer);

    const tensor after = copy.forward(x, false);
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) EXPECT_FLOAT_EQ(before[i], after[i]);
}

TEST(sequential, load_rejects_architecture_mismatch) {
    rng r{24};
    sequential net = tiny_mlp(r);
    std::stringstream buffer;
    net.save(buffer);

    sequential other;
    other.emplace<dense>(3, 2, r);
    EXPECT_THROW(other.load(buffer), io_error);
}

TEST(sequential, load_rejects_garbage) {
    sequential net;
    rng r{25};
    net.emplace<dense>(2, 2, r);
    std::istringstream garbage{"definitely not a model"};
    EXPECT_THROW(net.load(garbage), io_error);
}

}  // namespace
}  // namespace hawc
