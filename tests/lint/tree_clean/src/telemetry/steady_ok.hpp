#pragma once

// steady_clock is the sanctioned time source outside src/replay: it is
// monotonic and feeds deadlines, not recorded outputs, so the
// replay-determinism rule must leave it alone even though this header
// is include-reachable from src/replay. Never compiled.
#include <chrono>

inline long fixture_elapsed_ticks() {
    return static_cast<long>(
        std::chrono::steady_clock::now().time_since_epoch().count());
}
