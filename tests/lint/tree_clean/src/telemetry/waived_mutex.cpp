// Claims lock-free recording (like telemetry/metrics.hpp) but carries a
// properly-waived registration mutex: the scanner must honour the
// lint:allow escape hatch. Never compiled.
#include <mutex>

struct mostly_lockfree_registry {
    // Registration only; record() touches preallocated atomics.
    std::mutex init_mutex_;  // lint:allow(mutex-in-lockfree): registration path only
};
