// Legal locking shapes the lock-order rule must accept: the same
// a-before-b order in two functions (consistent order, no cycle), a
// scoped_lock taking both atomically (deadlock-free by construction,
// so no intra-group edge), and guards that release at scope exit
// before the next acquisition. This code locks freely but never in a
// cyclic order. Never compiled.
#include <mutex>

namespace fixture {

std::mutex order_a;
std::mutex order_b;
int guarded = 0;

void first_path() {
    std::lock_guard ga{order_a};
    std::lock_guard gb{order_b};  // same a -> b order as second_path
    ++guarded;
}

void second_path() {
    std::lock_guard ga{order_a};
    std::lock_guard gb{order_b};
    --guarded;
}

void both_at_once() {
    std::scoped_lock both{order_b, order_a};  // group-atomic: no b -> a edge
    ++guarded;
}

void sequential_scopes() {
    {
        std::lock_guard gb{order_b};
        ++guarded;
    }  // order_b released here...
    std::lock_guard ga{order_a};  // ...so this is not a b -> a edge
    ++guarded;
}

}  // namespace fixture
