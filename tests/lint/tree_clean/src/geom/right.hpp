#pragma once

// Right edge of the diamond include fixture.
#include "common/base.hpp"

inline int fixture_right() { return fixture_base_value() + 2; }
