#pragma once

// Top of the diamond: common/base.hpp is reachable along two paths but
// there is no back-edge, so the include graph is acyclic and the
// include-cycle rule must report nothing. Never compiled.
#include "geom/left.hpp"
#include "geom/right.hpp"

inline int fixture_diamond() { return fixture_left() + fixture_right(); }
