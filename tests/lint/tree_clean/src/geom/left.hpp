#pragma once

// Left edge of the diamond include fixture.
#include "common/base.hpp"

inline int fixture_left() { return fixture_base_value() + 1; }
