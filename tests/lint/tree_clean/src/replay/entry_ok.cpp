// Replay entry that pulls only the monotonic clock header into its
// closure: steady_clock outside src/replay is legal, so the
// replay-determinism rule must stay quiet for the whole closure. Never
// compiled.
#include "telemetry/steady_ok.hpp"

long fixture_replay_ok() { return fixture_elapsed_ticks(); }
