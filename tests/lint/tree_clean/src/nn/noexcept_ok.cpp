// Legal throw shapes the throw audit must accept: a destructor
// explicitly marked noexcept(false) may throw; a noexcept function may
// throw inside a try block that catches everything locally; and the
// noexcept *operator* in an expression is not a specifier. Never
// compiled.
#include <stdexcept>

struct loud_closer {
    bool fail = false;
    ~loud_closer() noexcept(false) {
        if (fail) {
            throw std::runtime_error{"close failed"};  // noexcept(false): allowed
        }
    }
};

inline int guarded_parse(int v) noexcept {
    try {
        if (v < 0) {
            throw std::runtime_error{"negative"};  // caught below, never escapes
        }
        return v;
    } catch (const std::exception&) {
        return 0;
    }
}

inline bool probe() {
    // noexcept operator in an expression context, not a function specifier.
    return noexcept(guarded_parse(1));
}
