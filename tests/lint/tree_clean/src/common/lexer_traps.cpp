// Lexer traps: every banned spelling below sits inside a string
// literal, a comment, or an #if 0 region — contexts a token-aware
// analyzer must skip and a line-regex would flag. Zero findings
// expected from this file. Never compiled.
#include <string>

// Prose traps: rand() and std::system_clock::now() and naked new int[4]
// in a comment must not trip anything.

/* Block-comment trap spanning lines:
   std::cout << "hello";
   std::this_thread::sleep_for(1s);
*/

inline std::string doc_snippet() {
    // Raw string holding exactly the code the rules ban.
    return R"doc(
        std::cout << "count=" << n << std::endl;
        auto* p = new PoleBoard();
        srand(42);
        __m256 v = _mm256_setzero_ps();
    )doc";
}

inline std::string escaped_snippet() {
    // Ordinary literal with escapes; contains rand( and printf( text.
    return "call rand() then printf(\"%d\", x) \\ done";
}

#if 0
// Dead region: nothing here may be tokenised.
#include <arm_neon.h>
void dead() noexcept {
    auto now = std::chrono::system_clock::now();
    int8x16_t lanes = vdupq_n_s8(0);
    throw now;
}
#if 1
std::mutex nested_dead_mutex;  // nested conditional inside the dead region
#endif
#endif

// Line-splice trap: the identifier below is "splice_victim" after
// splicing; the lexer must join it and must not misattribute lines.
inline int spli\
ce_victim() {
    return 1;
}
