// Near-miss spellings every rule must ignore: identifiers containing
// "new"/"delete"/"rand", RAII allocation via make_unique, and prose in
// comments about new objects or deleted copies. Never compiled.
#include <memory>

struct renewal {};

// make_unique is the sanctioned spelling; there is no naked new here.
inline std::unique_ptr<renewal> fresh() { return std::make_unique<renewal>(); }

struct widget {
    widget(const widget&) = delete;  // deleted copy, not a delete-expression
    int delete_count = 0;
    int brand_new_value = 0;
    double operand = 0.0;  // contains "rand" mid-identifier
};

// Near-misses for simd-outside-kernels: no _mm prefix, single-underscore
// m256, a v*_ identifier without a lane-type suffix, and plain int8_t.
struct vector_stats {
    int summ_256 = 0;
    int matrix_m256 = 0;
    double vmax_speed = 0.0;
    signed char narrow = 0;  // int8_t spelled out; int8x16_t would trip
};

// Near-misses for raw-logging: bounded formatting into a buffer is the
// sanctioned spelling (no stream, no stdout), and identifiers merely
// containing the banned names must not trip.
#include <cstdio>
inline int format_count(char* buf, std::size_t n, int count) {
    return std::snprintf(buf, n, "count=%d", count);  // not printf()
}
struct logging_stats {
    int sprintf_like_calls = 0;  // identifier, not a call
    int outputs = 0;             // contains "puts" mid-identifier
};
