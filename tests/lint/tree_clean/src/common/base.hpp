#pragma once

// Shared bottom of the diamond include fixture: reached twice via
// geom/left.hpp and geom/right.hpp, which is fine — a diamond is not a
// cycle and include-cycle must stay quiet. Never compiled.
inline int fixture_base_value() { return 3; }
