// Near-miss spellings for the sleep-in-fleet rule, plus one
// properly-waived hit: identifiers merely containing "sleep" and prose
// about sleeping must not trip the scanner. Never compiled.
#include <chrono>
#include <thread>

// A pole that was asleep is woken by its resume tick, never by a timer.
struct sleepy_pole_stats {
    int sleep_ticks_total = 0;  // counts quarantine ticks, no blocking
};

int ticks_asleep(const sleepy_pole_stats& s) { return s.sleep_ticks_total; }

void calibration_only_pause() {
    // Bench warm-up outside any pole's hot path; scheduling noise is the
    // point of the measurement here.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // lint:allow(sleep-in-fleet): bench warm-up fixture, not a fleet hot path
}
