// Deliberately violates naked-new: ownership must be RAII-managed
// (std::unique_ptr / std::vector). Never compiled.
int leak_prone() {
    int* block = new int[16];
    delete[] block;
    return 0;
}
