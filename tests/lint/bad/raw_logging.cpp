// Lint fixture: raw logging in library code. Inside src/ (outside
// src/obs/) every one of these lines must trip the raw-logging rule —
// diagnostics belong in the structured event log, metrics, or spans,
// not on stdout where nothing collects, rate-limits, or timestamps
// them. Never compiled.
#include <cstdio>
#include <iostream>

inline void bad_logging(int frames) {
    std::cout << "frames: " << frames << "\n";
    std::cerr << "something went wrong\n";
    std::clog << "debugging note\n";
    printf("frames=%d\n", frames);
    std::fprintf(stderr, "dropped frame %d\n", frames);
    fputs("done\n", stdout);
    puts("really done");
}
