#pragma once

// Deliberately not self-sufficient: uses std::vector without including
// <vector>, so compiling this header as its own translation unit fails.
inline int first_of_three() { return std::vector<int>{1, 2, 3}.front(); }
