// Deliberately violates naked-new: ownership must be RAII-managed
// (std::unique_ptr / std::vector). Never compiled.
int leak_prone() {
    int* block = new int[16];  // lint:expect(naked-new)
    delete[] block;  // lint:expect(naked-new)
    return 0;
}
