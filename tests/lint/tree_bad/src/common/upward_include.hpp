#pragma once

// Deliberately violates the module-layer DAG: common is the bottom
// layer, fleet the top, so this include points straight up the stack —
// the exact edge the layer-dag rule must reject (acceptance criterion
// for DESIGN.md §16). Never compiled.
#include "fleet/pole.hpp"  // lint:expect(layer-dag)

inline int bottom_layer_peeking_up() { return fixture_pole_id(); }
