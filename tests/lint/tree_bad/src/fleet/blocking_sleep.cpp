// Deliberately violates sleep-in-fleet: the fleet runs on tick virtual
// time over shared thread_pool lanes, so a blocking sleep anywhere in
// src/fleet stalls every pole multiplexed onto that lane (and makes the
// backoff schedule wall-clock-dependent, breaking replay determinism).
// Never compiled.
#include <chrono>
#include <thread>

void wait_for_backoff() {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));  // lint:expect(sleep-in-fleet)
}

void wait_until_resume() {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(1);
    std::this_thread::sleep_until(deadline);  // lint:expect(sleep-in-fleet)
}
