#pragma once

// Top-of-stack header the upward-include fixture points at. Clean by
// itself. Never compiled.
inline int fixture_pole_id() { return 7; }
