// A waiver with no reason: the lint:allow below does suppress its
// sleep-in-fleet hit (waivers always work), but the waiver-without-reason
// rule flags the missing justification — every waiver documents why
// (DESIGN.md §11). Never compiled.
#include <chrono>
#include <thread>

void fixture_undocumented_pause() {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // lint:allow(sleep-in-fleet) lint:expect(waiver-without-reason)
}
