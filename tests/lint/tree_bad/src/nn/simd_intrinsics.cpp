// Raw SIMD in application code: the simd-outside-kernels rule must flag
// the intrinsics header include, the x86 vector type and _mm256 calls,
// and the NEON type/intrinsic line. Vector code belongs behind the
// dispatch table in src/nn/kernels/ so every routine keeps a scalar
// fallback and new ISAs land in one place. Never compiled.
#include <immintrin.h>  // lint:expect(simd-outside-kernels)

inline void sum8(const float* a, const float* b, float* out) {
    __m256 va = _mm256_loadu_ps(a);  // lint:expect(simd-outside-kernels)
    __m256 vb = _mm256_loadu_ps(b);  // lint:expect(simd-outside-kernels)
    _mm256_storeu_ps(out, _mm256_add_ps(va, vb));  // lint:expect(simd-outside-kernels)
}

inline unsigned first_lane_nonneg(int16x8_t v) {  // lint:expect(simd-outside-kernels)
    return vgetq_lane_s16(v, 0) >= 0 ? 1u : 0u;  // lint:expect(simd-outside-kernels)
}
