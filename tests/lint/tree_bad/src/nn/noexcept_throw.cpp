// Throw paths where no exception may leave: a throw-expression inside a
// noexcept function, a throw inside a destructor (noexcept by default),
// and a call into the annotated throwing-helper allowlist (HAWC_REQUIRE
// / throw_*) from a destructor. Any of these escaping calls
// std::terminate. Never compiled.
#include <stdexcept>

int parse_fixture(int v) noexcept {
    if (v < 0) {
        throw std::runtime_error{"negative"};  // lint:expect(throw-in-noexcept)
    }
    return v;
}

struct closer {
    bool fail = false;
    ~closer() {
        if (fail) {
            throw std::runtime_error{"close failed"};  // lint:expect(throw-in-destructor)
        }
    }
};

struct flusher {
    bool ok = false;
    ~flusher() {
        HAWC_REQUIRE(ok, "flush failed");  // lint:expect(throw-in-destructor)
    }
};
