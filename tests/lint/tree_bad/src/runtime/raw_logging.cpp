// Lint fixture: raw logging in library code. Inside src/ (outside
// src/obs/) every one of these lines must trip the raw-logging rule —
// diagnostics belong in the structured event log, metrics, or spans,
// not on stdout where nothing collects, rate-limits, or timestamps
// them. Never compiled.
#include <cstdio>
#include <iostream>

inline void bad_logging(int frames) {
    std::cout << "frames: " << frames << "\n";  // lint:expect(raw-logging)
    std::cerr << "something went wrong\n";  // lint:expect(raw-logging)
    std::clog << "debugging note\n";  // lint:expect(raw-logging)
    printf("frames=%d\n", frames);  // lint:expect(raw-logging)
    std::fprintf(stderr, "dropped frame %d\n", frames);  // lint:expect(raw-logging)
    fputs("done\n", stdout);  // lint:expect(raw-logging)
    puts("really done");  // lint:expect(raw-logging)
}
