// Deliberately violates double-seconds: elapsed-time arithmetic must go
// through common/timer.hpp, not ad-hoc duration<double>. Never compiled.
#include <chrono>

double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();  // lint:expect(double-seconds)
}
