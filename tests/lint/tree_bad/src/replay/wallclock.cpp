// Deliberately violates wallclock-in-replay: a wall-clock read anywhere
// in src/replay would leak host time into recorded artifacts and break
// bit-exact replay. Never compiled.
#include <chrono>

long stamp() {
    return std::chrono::system_clock::now().time_since_epoch().count();  // lint:expect(wallclock-in-replay)
}
