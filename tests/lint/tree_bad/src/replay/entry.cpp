// Replay entry point for the determinism-closure fixture: this file is
// itself clean, but it pulls telemetry/clock_source.hpp into the
// replay include closure, which puts that header in scope for the
// replay-determinism rule. Never compiled.
#include "telemetry/clock_source.hpp"

int fixture_replay_entry() { return fixture_stamp(); }
