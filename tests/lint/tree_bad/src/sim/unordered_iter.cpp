// Determinism violations inside src/sim (scene generation feeds
// recorded corpora, so all of sim is in the replay-determinism scope):
// a range-for over an unordered container leaks hash order into
// whatever consumes it, and time() reads host state. Never compiled.
#include <ctime>
#include <unordered_map>

struct fixture_scene {
    std::unordered_map<int, int> actor_heights;

    int sum_heights() const {
        int total = 0;
        for (const auto& kv : actor_heights) {  // lint:expect(replay-determinism)
            total += kv.second;
        }
        return total;
    }

    long seed_from_host() const {
        return static_cast<long>(std::time(nullptr));  // lint:expect(replay-determinism)
    }
};
