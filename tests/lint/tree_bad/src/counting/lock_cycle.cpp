// Deliberate three-mutex lock-order cycle: take_ab orders a before b,
// take_bc orders b before c, take_ca orders c before a — together an
// ABBA-style deadlock shape the lock-order rule must report on every
// edge of the cycle. Never compiled.
#include <mutex>

namespace fixture {

std::mutex mu_a;
std::mutex mu_b;
std::mutex mu_c;
int shared_count = 0;

void take_ab() {
    std::lock_guard ga{mu_a};
    std::lock_guard gb{mu_b};  // lint:expect(lock-order)
    ++shared_count;
}

void take_bc() {
    std::lock_guard gb{mu_b};
    std::lock_guard gc{mu_c};  // lint:expect(lock-order)
    ++shared_count;
}

void take_ca() {
    std::lock_guard gc{mu_c};
    std::lock_guard ga{mu_a};  // lint:expect(lock-order)
    ++shared_count;
}

}  // namespace fixture
