// Deliberately holds a mutex across a thread-pool fan-out: every lane
// the parallel_for blocks on shares the pool with other poles, so a
// lock held here can stall or deadlock all of them. Never compiled.
#include <cstddef>
#include <mutex>

struct fixture_pool {
    template <typename Fn>
    void parallel_for(std::size_t, std::size_t, std::size_t, Fn&&) {}
    template <typename Fn>
    void submit(Fn&&) {}
};

std::mutex board_mutex;

void flush_all(fixture_pool& pool) {
    std::lock_guard hold{board_mutex};
    pool.parallel_for(0, 8, 1, [](std::size_t, std::size_t, std::size_t) {});  // lint:expect(lock-across-parallel)
}

void enqueue_flush(fixture_pool& pool) {
    std::unique_lock hold{board_mutex};
    pool.submit([] {});  // lint:expect(lock-across-parallel)
}
