// Deliberately violates raw-rng: all randomness must flow through
// common/rng so corpus replays stay deterministic. Never compiled.
#include <cstdlib>
#include <random>

int bad_entropy() {
    std::random_device rd;  // lint:expect(raw-rng)
    return static_cast<int>(rd());
}
