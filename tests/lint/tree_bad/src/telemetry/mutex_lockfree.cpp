// A "lock-free" counter whose hot path takes a std::mutex — exactly the
// contradiction the mutex-in-lockfree rule exists to catch. Never compiled.
#include <mutex>

struct fake_lockfree_counter {
    void add() {
        std::lock_guard lock{m_};
        ++n_;
    }
    std::mutex m_;  // lint:expect(mutex-in-lockfree)
    long n_ = 0;
};
