#pragma once

// A wall-clock read that is fine for live telemetry but poisonous once
// the header is include-reachable from src/replay: the
// replay-determinism rule must flag it because entry.cpp pulls this
// file into the replay closure. Never compiled.
#include <chrono>

inline int fixture_stamp() {
    return static_cast<int>(
        std::chrono::system_clock::now().time_since_epoch().count());  // lint:expect(replay-determinism)
}
