#pragma once

// The return edge of the include cycle. The cycle is reported at
// cycle_a.hpp (the lexicographically-first member), so no marker here.
// Never compiled.
#include "geom/cycle_a.hpp"

inline int fixture_cycle_b() { return 2; }
