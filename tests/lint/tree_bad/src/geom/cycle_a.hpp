#pragma once

// Half of a deliberate include cycle (cycle_a -> cycle_b -> cycle_a);
// the include-cycle rule reports the cycle once, at the
// lexicographically-first file's edge. Never compiled.
#include "geom/cycle_b.hpp"  // lint:expect(include-cycle)

inline int fixture_cycle_a() { return 1; }
