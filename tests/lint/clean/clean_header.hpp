#pragma once

// Self-sufficient: every name it uses comes from its own includes.
#include <cstddef>
#include <vector>

inline std::size_t count_three() { return std::vector<int>{1, 2, 3}.size(); }
