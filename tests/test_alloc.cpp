// Allocation accounting for the hot KD-tree queries. This binary replaces
// the global operator new/delete with counting wrappers, so it must stay
// a dedicated executable: the *_into queries are required to perform ZERO
// heap allocations at steady state (after the caller's reused buffers
// reach their plateau capacity), which is what lets DBSCAN phase 1, the
// k-NN elbow curve and the HAP sigma pass issue millions of queries
// without serializing on the allocator.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.hpp"
#include "pointcloud/kd_tree.hpp"

namespace {

std::atomic<std::uint64_t> g_news{0};

}  // namespace

void* operator new(std::size_t size) {
    g_news.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size)) return p;
    throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
    g_news.fetch_add(1, std::memory_order_relaxed);
    const std::size_t a = static_cast<std::size_t>(align);
    if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
    throw std::bad_alloc{};
}

void* operator new[](std::size_t size, std::align_val_t align) {
    return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace hawc {
namespace {

point_cloud seeded_cloud(std::size_t n, std::uint64_t seed) {
    rng r{seed};
    point_cloud cloud;
    for (std::size_t i = 0; i < n; ++i) {
        cloud.push_back({r.uniform(-10.0, 10.0), r.uniform(-10.0, 10.0),
                         r.uniform(-3.0, 0.0)});
    }
    return cloud;
}

TEST(kd_alloc, nearest_into_is_allocation_free_at_steady_state) {
    const point_cloud cloud = seeded_cloud(4000, 7);
    const kd_tree tree{cloud};
    std::vector<neighbor> out;

    // Warm-up: let `out` grow to its plateau capacity.
    for (std::size_t i = 0; i < 64; ++i) tree.nearest_into(cloud[i], 9, out);

    const std::uint64_t before = g_news.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < cloud.size(); ++i) tree.nearest_into(cloud[i], 9, out);
    const std::uint64_t after = g_news.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u) << (after - before) << " allocations in "
                                  << cloud.size() << " k-NN queries";
}

TEST(kd_alloc, large_k_nearest_into_is_allocation_free_at_steady_state) {
    // k > 16 takes the caller-storage heap instead of the inline one;
    // it must also stop allocating once the buffer has grown.
    const point_cloud cloud = seeded_cloud(4000, 8);
    const kd_tree tree{cloud};
    std::vector<neighbor> out;
    for (std::size_t i = 0; i < 64; ++i) tree.nearest_into(cloud[i], 48, out);

    const std::uint64_t before = g_news.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < 1000; ++i) tree.nearest_into(cloud[i], 48, out);
    const std::uint64_t after = g_news.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u);
}

TEST(kd_alloc, radius_search_into_is_allocation_free_at_steady_state) {
    const point_cloud cloud = seeded_cloud(4000, 9);
    const kd_tree tree{cloud};
    // Warm-up over the full query set: result counts vary per query, so
    // the buffer plateaus only once it has seen the largest one.
    std::vector<std::size_t> found;
    for (std::size_t i = 0; i < cloud.size(); ++i) tree.radius_search_into(cloud[i], 1.5, found);

    const std::uint64_t before = g_news.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        tree.radius_search_into(cloud[i], 1.5, found);
    }
    const std::uint64_t after = g_news.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u) << (after - before) << " allocations in "
                                  << cloud.size() << " radius queries";
}

TEST(kd_alloc, count_within_never_allocates) {
    const point_cloud cloud = seeded_cloud(4000, 10);
    const kd_tree tree{cloud};
    const std::uint64_t before = g_news.load(std::memory_order_relaxed);
    std::size_t total = 0;
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        total += tree.count_within(cloud[i], 1.0);
    }
    const std::uint64_t after = g_news.load(std::memory_order_relaxed);
    EXPECT_GT(total, 0u);
    EXPECT_EQ(after - before, 0u);
}

}  // namespace
}  // namespace hawc
