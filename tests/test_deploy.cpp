// Tests for the pole thermal simulation (Figure 10 substitution).

#include <gtest/gtest.h>

#include <cmath>

#include "deploy/thermal.hpp"

namespace hawc {
namespace {

TEST(thermal, sample_cadence_matches_config) {
    thermal_config cfg;
    cfg.days = 2.0;
    const thermal_series series = simulate_pole_temperature(cfg);
    // ~2500 samples per day at a 1.7-minute interval.
    const double per_day = static_cast<double>(series.samples.size()) / 2.0;
    EXPECT_NEAR(per_day, 24.0 * 60.0 / 1.7, 30.0);
}

TEST(thermal, deterministic_given_seed) {
    thermal_config cfg;
    cfg.days = 1.0;
    const auto a = simulate_pole_temperature(cfg);
    const auto b = simulate_pole_temperature(cfg);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    EXPECT_DOUBLE_EQ(a.samples.back().pole_c, b.samples.back().pole_c);
}

TEST(thermal, pole_statistics_in_paper_regime) {
    // The paper reports max 57.81, min 21.00, mean 41.95 over the window.
    const thermal_series series = simulate_pole_temperature();
    const running_stats stats = series.pole_stats();
    EXPECT_NEAR(stats.max(), 57.8, 5.0);
    EXPECT_NEAR(stats.min(), 21.0, 6.0);
    EXPECT_NEAR(stats.mean(), 42.0, 4.0);
}

TEST(thermal, pole_hotter_than_weather_on_average) {
    const thermal_series series = simulate_pole_temperature();
    EXPECT_GT(series.pole_stats().mean(), series.weather_stats().mean());
}

TEST(thermal, peak_offset_larger_than_night_offset) {
    // Paper: ~10 degC hotter at peak heat, < 5 degC in cool periods.
    const thermal_series series = simulate_pole_temperature();
    const double peak = series.mean_peak_offset_c();
    const double night = series.mean_night_offset_c();
    EXPECT_GT(peak, night);
    EXPECT_NEAR(peak, 10.0, 4.0);
    EXPECT_LT(night, 5.0);
    EXPECT_GT(night, 0.0);
}

TEST(thermal, exceeds_coral_limit_occasionally) {
    // The deployment observation: the enclosure exceeds the Coral's
    // 50 degC recommended maximum during summer peaks, yet not always.
    const thermal_series series = simulate_pole_temperature();
    const double above = series.fraction_above(50.0);
    EXPECT_GT(above, 0.0);
    EXPECT_LT(above, 0.5);
}

TEST(thermal, diurnal_cycle_visible) {
    thermal_config cfg;
    cfg.days = 3.0;
    const thermal_series series = simulate_pole_temperature(cfg);
    // Afternoon samples hotter than pre-dawn samples on average.
    running_stats afternoon;
    running_stats predawn;
    for (const auto& s : series.samples) {
        const double hour = std::fmod(s.time_hours, 24.0);
        if (hour >= 14.0 && hour <= 17.0) afternoon.add(s.pole_c);
        if (hour >= 3.0 && hour <= 5.0) predawn.add(s.pole_c);
    }
    EXPECT_GT(afternoon.mean(), predawn.mean() + 5.0);
}

TEST(thermal, fraction_above_bounds) {
    const thermal_series series = simulate_pole_temperature();
    EXPECT_DOUBLE_EQ(series.fraction_above(-100.0), 1.0);
    EXPECT_DOUBLE_EQ(series.fraction_above(200.0), 0.0);
}

}  // namespace
}  // namespace hawc
