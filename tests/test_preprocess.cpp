// Tests for ROI cropping and ground segmentation.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "preprocess/ingest.hpp"

namespace hawc {
namespace {

TEST(roi, crops_outside_x_range) {
    point_cloud raw{{{5.0, 0.0, -1.0}, {20.0, 0.0, -1.0}, {40.0, 0.0, -1.0}}};
    const point_cloud cropped = crop_roi(raw);
    ASSERT_EQ(cropped.size(), 1u);
    EXPECT_DOUBLE_EQ(cropped[0].x, 20.0);
}

TEST(roi, crops_outside_y_range) {
    point_cloud raw{{{20.0, -3.0, -1.0}, {20.0, 0.0, -1.0}, {20.0, 3.0, -1.0}}};
    EXPECT_EQ(crop_roi(raw).size(), 1u);
}

TEST(roi, boundary_points_kept) {
    const roi_config roi;
    point_cloud raw{{{roi.x_min_m, roi.y_min_m, roi.z_min_m},
                     {roi.x_max_m, roi.y_max_m, roi.z_max_m}}};
    EXPECT_EQ(crop_roi(raw, roi).size(), 2u);
}

TEST(roi, custom_config) {
    roi_config roi;
    roi.x_min_m = 0.0;
    roi.x_max_m = 100.0;
    roi.y_min_m = -50.0;
    roi.y_max_m = 50.0;
    point_cloud raw{{{50.0, 20.0, -1.0}}};
    EXPECT_EQ(crop_roi(raw, roi).size(), 1u);
}

TEST(ground_filter, removes_low_points) {
    // The paper's rule: ground noise extends ~0.4 m above the ground at
    // z = -3, so everything below z = -2.6 is dropped.
    point_cloud cloud{{{20.0, 0.0, -2.9}, {20.0, 0.0, -2.61}, {20.0, 0.0, -2.6},
                       {20.0, 0.0, -1.0}}};
    const point_cloud filtered = remove_ground(cloud);
    ASSERT_EQ(filtered.size(), 2u);
    EXPECT_DOUBLE_EQ(filtered[0].z, -2.6);
}

TEST(ground_filter, custom_threshold) {
    ground_filter_config cfg;
    cfg.z_min_m = -1.0;
    point_cloud cloud{{{20.0, 0.0, -2.0}, {20.0, 0.0, -0.5}}};
    EXPECT_EQ(remove_ground(cloud, cfg).size(), 1u);
}

TEST(ingest, composition_of_crop_and_ground) {
    point_cloud raw;
    raw.push_back({20.0, 0.0, -2.9});   // ground noise inside ROI
    raw.push_back({20.0, 0.0, -1.5});   // valid
    raw.push_back({50.0, 0.0, -1.5});   // outside ROI
    raw.push_back({20.0, 4.0, -1.5});   // outside walkway width
    const point_cloud result = ingest(raw);
    ASSERT_EQ(result.size(), 1u);
    EXPECT_DOUBLE_EQ(result[0].z, -1.5);
}

TEST(sanitize, drop_non_finite_removes_nan_and_inf) {
    constexpr double nan = std::numeric_limits<double>::quiet_NaN();
    constexpr double inf = std::numeric_limits<double>::infinity();
    point_cloud raw{{{20.0, 0.0, -1.0},
                     {nan, 0.0, -1.0},
                     {20.0, inf, -1.0},
                     {20.0, 0.0, -inf},
                     {nan, nan, nan},
                     {21.0, 1.0, -1.5}}};
    const point_cloud clean = drop_non_finite(raw);
    ASSERT_EQ(clean.size(), 2u);
    EXPECT_DOUBLE_EQ(clean[0].x, 20.0);
    EXPECT_DOUBLE_EQ(clean[1].x, 21.0);
}

TEST(sanitize, drop_non_finite_keeps_finite_cloud_intact) {
    point_cloud raw{{{20.0, 0.0, -1.0}, {21.0, 1.0, -2.0}}};
    EXPECT_EQ(drop_non_finite(raw).size(), 2u);
}

TEST(roi, non_finite_points_never_pass_crop) {
    // Regression: a NaN coordinate must not leak through the ROI crop into
    // clustering, where it would poison every distance computation.
    constexpr double nan = std::numeric_limits<double>::quiet_NaN();
    constexpr double inf = std::numeric_limits<double>::infinity();
    point_cloud raw{{{nan, 0.0, -1.0}, {20.0, nan, -1.0}, {20.0, 0.0, nan},
                     {inf, 0.0, -1.0}, {20.0, 0.0, -1.0}}};
    const point_cloud cropped = crop_roi(raw);
    ASSERT_EQ(cropped.size(), 1u);
    EXPECT_TRUE(std::isfinite(cropped[0].x));
}

TEST(ingest, non_finite_points_filtered_end_to_end) {
    constexpr double nan = std::numeric_limits<double>::quiet_NaN();
    point_cloud raw;
    raw.push_back({20.0, 0.0, -1.5});  // valid
    raw.push_back({20.0, 0.0, nan});   // poisoned z
    raw.push_back({nan, nan, nan});    // fully poisoned
    const point_cloud result = ingest(raw);
    ASSERT_EQ(result.size(), 1u);
    EXPECT_DOUBLE_EQ(result[0].x, 20.0);
}

TEST(ingest, empty_input) {
    EXPECT_TRUE(ingest(point_cloud{}).empty());
}

TEST(ingest, all_filtered) {
    point_cloud raw{{{1.0, 0.0, -1.0}, {20.0, 0.0, -2.99}}};
    EXPECT_TRUE(ingest(raw).empty());
}

}  // namespace
}  // namespace hawc
