// Tests for point_cloud, KD-tree (validated against brute force), and IO.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "pointcloud/cloud_io.hpp"
#include "pointcloud/kd_tree.hpp"
#include "pointcloud/point_cloud.hpp"

namespace hawc {
namespace {

point_cloud random_cloud(std::size_t n, rng& r, double extent = 10.0) {
    point_cloud cloud;
    cloud.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        cloud.push_back({r.uniform(-extent, extent), r.uniform(-extent, extent),
                         r.uniform(-extent, extent)});
    }
    return cloud;
}

TEST(point_cloud, basic_container_ops) {
    point_cloud c;
    EXPECT_TRUE(c.empty());
    c.push_back({1.0, 2.0, 3.0});
    c.push_back({4.0, 5.0, 6.0});
    EXPECT_EQ(c.size(), 2u);
    EXPECT_EQ(c[1], (vec3{4.0, 5.0, 6.0}));
    c.clear();
    EXPECT_TRUE(c.empty());
}

TEST(point_cloud, append) {
    point_cloud a{{{1.0, 0.0, 0.0}}};
    point_cloud b{{{2.0, 0.0, 0.0}, {3.0, 0.0, 0.0}}};
    a.append(b);
    EXPECT_EQ(a.size(), 3u);
    EXPECT_EQ(a[2].x, 3.0);
}

TEST(point_cloud, centroid_and_bounds) {
    point_cloud c{{{0.0, 0.0, 0.0}, {2.0, 4.0, 6.0}}};
    EXPECT_EQ(c.centroid(), (vec3{1.0, 2.0, 3.0}));
    const aabb box = c.bounds();
    EXPECT_EQ(box.lo, (vec3{0.0, 0.0, 0.0}));
    EXPECT_EQ(box.hi, (vec3{2.0, 4.0, 6.0}));
    EXPECT_EQ(point_cloud{}.centroid(), vec3{});
    EXPECT_TRUE(point_cloud{}.bounds().empty());
}

TEST(point_cloud, filtered) {
    point_cloud c{{{0.0, 0.0, -1.0}, {0.0, 0.0, 1.0}, {0.0, 0.0, 2.0}}};
    const point_cloud positive = c.filtered([](const vec3& p) { return p.z > 0.0; });
    EXPECT_EQ(positive.size(), 2u);
}

TEST(point_cloud, translated) {
    point_cloud c{{{1.0, 1.0, 1.0}}};
    const point_cloud moved = c.translated({1.0, -1.0, 0.5});
    EXPECT_EQ(moved[0], (vec3{2.0, 0.0, 1.5}));
}

TEST(point_cloud, rotated_z_quarter_turn) {
    point_cloud c{{{1.0, 0.0, 5.0}}};
    const point_cloud rotated = c.rotated_z({0.0, 0.0, 0.0}, std::numbers::pi / 2);
    EXPECT_NEAR(rotated[0].x, 0.0, 1e-12);
    EXPECT_NEAR(rotated[0].y, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(rotated[0].z, 5.0);  // z untouched
}

TEST(point_cloud, rotation_preserves_pairwise_distances) {
    rng r{3};
    const point_cloud c = random_cloud(40, r);
    const point_cloud rotated = c.rotated_z({1.0, 2.0, 0.0}, 1.234);
    for (std::size_t i = 0; i < c.size(); ++i) {
        for (std::size_t j = i + 1; j < c.size(); j += 7) {
            EXPECT_NEAR(c[i].distance_to(c[j]), rotated[i].distance_to(rotated[j]), 1e-9);
        }
    }
}

TEST(point_cloud, subset) {
    point_cloud c{{{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}, {2.0, 0.0, 0.0}}};
    const std::size_t indices[] = {2, 0};
    const point_cloud s = c.subset(indices);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_EQ(s[0].x, 2.0);
    EXPECT_EQ(s[1].x, 0.0);
}

TEST(cloud_io, roundtrip) {
    rng r{5};
    const point_cloud original = random_cloud(50, r);
    std::stringstream buffer;
    write_xyz(buffer, original);
    const point_cloud loaded = read_xyz(buffer);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_NEAR(loaded[i].x, original[i].x, 1e-4);
        EXPECT_NEAR(loaded[i].z, original[i].z, 1e-4);
    }
}

TEST(cloud_io, skips_comments_and_blank_lines) {
    std::istringstream in{"# header\n\n1 2 3\n# mid\n4 5 6\n"};
    const point_cloud c = read_xyz(in);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[1], (vec3{4.0, 5.0, 6.0}));
}

TEST(cloud_io, rejects_malformed_line) {
    std::istringstream in{"1 2 3\nnot a point\n"};
    EXPECT_THROW(read_xyz(in), io_error);
}

TEST(cloud_io, missing_file_throws) {
    EXPECT_THROW(read_xyz_file("/nonexistent/path/cloud.xyz"), io_error);
}

// --- KD-tree, validated against brute force ---

std::vector<neighbor> brute_force_nearest(const point_cloud& cloud, const vec3& q,
                                          std::size_t k) {
    std::vector<neighbor> all;
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        all.push_back({i, cloud[i].distance_to(q)});
    }
    std::sort(all.begin(), all.end(),
              [](const neighbor& a, const neighbor& b) { return a.distance < b.distance; });
    all.resize(std::min(k, all.size()));
    return all;
}

class kd_tree_random_test : public ::testing::TestWithParam<std::size_t> {};

TEST_P(kd_tree_random_test, nearest_matches_brute_force) {
    rng r{GetParam()};
    const point_cloud cloud = random_cloud(200 + GetParam() * 37, r);
    const kd_tree tree{cloud};
    for (int trial = 0; trial < 20; ++trial) {
        const vec3 q{r.uniform(-12.0, 12.0), r.uniform(-12.0, 12.0), r.uniform(-12.0, 12.0)};
        const std::size_t k = 1 + r.uniform_index(8);
        const auto got = tree.nearest(q, k);
        const auto want = brute_force_nearest(cloud, q, k);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            EXPECT_NEAR(got[i].distance, want[i].distance, 1e-9);
        }
    }
}

TEST_P(kd_tree_random_test, radius_matches_brute_force) {
    rng r{GetParam() + 1000};
    const point_cloud cloud = random_cloud(300, r);
    const kd_tree tree{cloud};
    for (int trial = 0; trial < 20; ++trial) {
        const vec3 q{r.uniform(-12.0, 12.0), r.uniform(-12.0, 12.0), r.uniform(-12.0, 12.0)};
        const double radius = r.uniform(0.5, 6.0);
        auto got = tree.radius_search(q, radius);
        std::sort(got.begin(), got.end());
        std::vector<std::size_t> want;
        for (std::size_t i = 0; i < cloud.size(); ++i) {
            if (cloud[i].distance_to(q) <= radius) want.push_back(i);
        }
        EXPECT_EQ(got, want);
        EXPECT_EQ(tree.count_within(q, radius), want.size());
    }
}

INSTANTIATE_TEST_SUITE_P(seeds, kd_tree_random_test, ::testing::Values(1, 2, 3, 4, 5));

TEST(kd_tree, self_query_returns_self_first) {
    rng r{77};
    const point_cloud cloud = random_cloud(100, r);
    const kd_tree tree{cloud};
    const auto nb = tree.nearest(cloud[42], 1);
    ASSERT_EQ(nb.size(), 1u);
    EXPECT_EQ(nb[0].index, 42u);
    EXPECT_NEAR(nb[0].distance, 0.0, 1e-12);
}

TEST(kd_tree, k_larger_than_cloud) {
    point_cloud cloud{{{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}}};
    const kd_tree tree{cloud};
    EXPECT_EQ(tree.nearest({0.0, 0.0, 0.0}, 10).size(), 2u);
}

TEST(kd_tree, empty_cloud) {
    const kd_tree tree{point_cloud{}};
    EXPECT_TRUE(tree.nearest({0.0, 0.0, 0.0}, 3).empty());
    EXPECT_TRUE(tree.radius_search({0.0, 0.0, 0.0}, 1.0).empty());
    EXPECT_EQ(tree.count_within({0.0, 0.0, 0.0}, 1.0), 0u);
}

TEST(kd_tree, duplicate_points) {
    point_cloud cloud;
    for (int i = 0; i < 50; ++i) cloud.push_back({1.0, 1.0, 1.0});
    const kd_tree tree{cloud};
    EXPECT_EQ(tree.radius_search({1.0, 1.0, 1.0}, 0.1).size(), 50u);
    EXPECT_EQ(tree.nearest({1.0, 1.0, 1.0}, 7).size(), 7u);
}

TEST(kd_tree, zero_radius_finds_exact_matches) {
    point_cloud cloud{{{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}}};
    const kd_tree tree{cloud};
    EXPECT_EQ(tree.radius_search({1.0, 0.0, 0.0}, 0.0).size(), 1u);
    EXPECT_TRUE(tree.radius_search({0.5, 0.0, 0.0}, -1.0).empty());
}

}  // namespace
}  // namespace hawc
