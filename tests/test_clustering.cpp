// Tests for DBSCAN, adaptive eps selection, hierarchical clustering,
// k-means, and the Gaussian mixture.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "clustering/adaptive_eps.hpp"
#include "clustering/dbscan.hpp"
#include "clustering/gmm.hpp"
#include "clustering/hierarchical.hpp"
#include "clustering/kmeans.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace hawc {
namespace {

/// Two tight gaussian blobs plus scattered far-away noise.
point_cloud two_blobs_with_noise(rng& r, std::size_t per_blob = 60, std::size_t noise = 8) {
    point_cloud cloud;
    const vec3 centers[] = {{0.0, 0.0, 0.0}, {5.0, 0.0, 0.0}};
    for (const auto& c : centers) {
        for (std::size_t i = 0; i < per_blob; ++i) {
            cloud.push_back(c + vec3{r.normal(0.0, 0.15), r.normal(0.0, 0.15),
                                     r.normal(0.0, 0.15)});
        }
    }
    for (std::size_t i = 0; i < noise; ++i) {
        cloud.push_back({r.uniform(-30.0, 30.0), r.uniform(15.0, 40.0), r.uniform(5.0, 9.0)});
    }
    return cloud;
}

cluster_metric identity_metric() { return cluster_metric{1.0}; }

TEST(dbscan, separates_two_blobs) {
    rng r{1};
    const point_cloud cloud = two_blobs_with_noise(r);
    dbscan_config cfg;
    cfg.eps = 0.6;
    cfg.min_points = 5;
    cfg.metric = identity_metric();
    const cluster_result result = dbscan(cloud, cfg);
    EXPECT_EQ(result.cluster_count, 2u);
    // Points of the same blob share a label.
    EXPECT_EQ(result.labels[0], result.labels[30]);
    EXPECT_NE(result.labels[0], result.labels[80]);
}

TEST(dbscan, noise_points_labelled_noise) {
    rng r{2};
    const point_cloud cloud = two_blobs_with_noise(r, 60, 10);
    dbscan_config cfg;
    cfg.eps = 0.6;
    cfg.metric = identity_metric();
    const cluster_result result = dbscan(cloud, cfg);
    EXPECT_EQ(result.noise_count(), 10u);
    for (std::size_t i = 120; i < 130; ++i) EXPECT_EQ(result.labels[i], noise_label);
}

TEST(dbscan, labels_are_contiguous_and_valid) {
    rng r{3};
    const point_cloud cloud = two_blobs_with_noise(r);
    dbscan_config cfg;
    cfg.eps = 0.5;
    cfg.metric = identity_metric();
    const cluster_result result = dbscan(cloud, cfg);
    std::set<int> labels;
    for (int label : result.labels) {
        EXPECT_GE(label, noise_label);
        EXPECT_LT(label, static_cast<int>(result.cluster_count));
        if (label != noise_label) labels.insert(label);
    }
    EXPECT_EQ(labels.size(), result.cluster_count);
}

TEST(dbscan, tiny_eps_all_noise) {
    rng r{4};
    const point_cloud cloud = two_blobs_with_noise(r);
    dbscan_config cfg;
    cfg.eps = 1e-6;
    cfg.metric = identity_metric();
    const cluster_result result = dbscan(cloud, cfg);
    EXPECT_EQ(result.cluster_count, 0u);
    EXPECT_EQ(result.noise_count(), cloud.size());
}

TEST(dbscan, huge_eps_single_cluster) {
    rng r{5};
    const point_cloud cloud = two_blobs_with_noise(r, 60, 0);
    dbscan_config cfg;
    cfg.eps = 100.0;
    cfg.metric = identity_metric();
    EXPECT_EQ(dbscan(cloud, cfg).cluster_count, 1u);
}

TEST(dbscan, empty_cloud) {
    const cluster_result result = dbscan(point_cloud{}, dbscan_config{});
    EXPECT_EQ(result.cluster_count, 0u);
    EXPECT_TRUE(result.labels.empty());
}

TEST(dbscan, rejects_bad_config) {
    point_cloud cloud{{{0.0, 0.0, 0.0}}};
    dbscan_config cfg;
    cfg.eps = -1.0;
    EXPECT_THROW(dbscan(cloud, cfg), invalid_argument_error);
    cfg.eps = 1.0;
    cfg.min_points = 0;
    EXPECT_THROW(dbscan(cloud, cfg), invalid_argument_error);
}

TEST(dbscan, metric_z_weight_bridges_vertical_gaps) {
    // Two stacked rings 0.5 apart vertically: with full z weight and a
    // small eps they split; with the LiDAR metric they merge.
    point_cloud cloud;
    for (int i = 0; i < 30; ++i) {
        cloud.push_back({0.1 * i, 0.0, 0.0});
        cloud.push_back({0.1 * i, 0.0, 0.5});
    }
    dbscan_config split;
    split.eps = 0.3;
    split.metric = identity_metric();
    EXPECT_EQ(dbscan(cloud, split).cluster_count, 2u);

    dbscan_config merged;
    merged.eps = 0.3;
    merged.metric = cluster_metric{0.15};
    EXPECT_EQ(dbscan(cloud, merged).cluster_count, 1u);
}

TEST(cluster_result, extract_clusters) {
    point_cloud cloud{{{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}, {2.0, 0.0, 0.0}}};
    cluster_result result;
    result.labels = {0, noise_label, 1};
    result.cluster_count = 2;
    const auto clusters = result.extract_clusters(cloud);
    ASSERT_EQ(clusters.size(), 2u);
    EXPECT_EQ(clusters[0].size(), 1u);
    EXPECT_EQ(clusters[1][0].x, 2.0);
    EXPECT_EQ(result.cluster_sizes(), (std::vector<std::size_t>{1, 1}));
}

TEST(knee, locates_sharp_elbow) {
    // Flat at 0.1 then jumps to 1.0: the knee is the last small value.
    const std::vector<double> curve{0.1, 0.1, 0.1, 0.1, 0.1, 1.0, 1.1, 1.2};
    EXPECT_EQ(knee_index(curve), 4u);
}

TEST(knee, requires_two_samples) {
    EXPECT_THROW(knee_index(std::vector<double>{0.1}), invalid_argument_error);
}

TEST(adaptive_eps, knn_curve_sorted_ascending) {
    rng r{6};
    const point_cloud cloud = two_blobs_with_noise(r);
    const auto curve = knn_distance_curve(cloud, 4, identity_metric());
    ASSERT_EQ(curve.size(), cloud.size());
    EXPECT_TRUE(std::is_sorted(curve.begin(), curve.end()));
}

TEST(adaptive_eps, epsilon_within_clamp) {
    rng r{7};
    const point_cloud cloud = two_blobs_with_noise(r);
    adaptive_eps_config cfg;
    cfg.metric = identity_metric();
    const double eps = adaptive_epsilon(cloud, cfg);
    EXPECT_GE(eps, cfg.min_eps);
    EXPECT_LE(eps, cfg.max_eps);
}

TEST(adaptive_eps, tiny_cloud_returns_min) {
    point_cloud cloud{{{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}}};
    adaptive_eps_config cfg;
    EXPECT_DOUBLE_EQ(adaptive_epsilon(cloud, cfg), cfg.min_eps);
}

TEST(adaptive_eps, full_pipeline_clusters_blobs) {
    rng r{8};
    const point_cloud cloud = two_blobs_with_noise(r, 80, 6);
    adaptive_eps_config cfg;
    cfg.metric = identity_metric();
    const auto result = adaptive_dbscan(cloud, cfg);
    EXPECT_GE(result.clusters.cluster_count, 2u);
    EXPECT_GT(result.chosen_eps, 0.0);
    // The two blobs must not be merged (they are 5 m apart).
    EXPECT_NE(result.clusters.labels[0], result.clusters.labels[90]);
}

TEST(adaptive_eps, denser_cloud_gets_smaller_eps) {
    rng r{9};
    point_cloud dense;
    point_cloud sparse;
    for (int i = 0; i < 150; ++i) {
        dense.push_back({r.normal(0.0, 0.1), r.normal(0.0, 0.1), 0.0});
        sparse.push_back({r.normal(0.0, 1.0), r.normal(0.0, 1.0), 0.0});
    }
    adaptive_eps_config cfg;
    cfg.metric = identity_metric();
    EXPECT_LT(adaptive_epsilon(dense, cfg), adaptive_epsilon(sparse, cfg));
}

TEST(hierarchical, single_linkage_merges_chains) {
    // A chain of points 0.4 apart and an isolated point far away.
    point_cloud cloud;
    for (int i = 0; i < 10; ++i) cloud.push_back({0.4 * i, 0.0, 0.0});
    cloud.push_back({100.0, 0.0, 0.0});
    hierarchical_config cfg;
    cfg.link = linkage::single;
    cfg.cut_distance = 0.5;
    cfg.metric = identity_metric();
    const cluster_result result = hierarchical_cluster(cloud, cfg);
    EXPECT_EQ(result.cluster_count, 2u);
    EXPECT_EQ(result.labels[0], result.labels[9]);
    EXPECT_NE(result.labels[0], result.labels[10]);
}

TEST(hierarchical, complete_linkage_caps_diameter) {
    // Same chain: complete linkage at 0.5 fragments it because the chain
    // diameter (3.6) far exceeds the cut.
    point_cloud cloud;
    for (int i = 0; i < 10; ++i) cloud.push_back({0.4 * i, 0.0, 0.0});
    hierarchical_config cfg;
    cfg.link = linkage::complete;
    cfg.cut_distance = 0.5;
    cfg.metric = identity_metric();
    const cluster_result result = hierarchical_cluster(cloud, cfg);
    EXPECT_GT(result.cluster_count, 2u);
}

TEST(hierarchical, cut_k_exact_count) {
    rng r{10};
    const point_cloud cloud = two_blobs_with_noise(r, 40, 0);
    hierarchical_config cfg;
    cfg.link = linkage::average;
    cfg.metric = identity_metric();
    for (std::size_t k : {1u, 2u, 5u}) {
        const cluster_result result = hierarchical_cluster_k(cloud, k, cfg);
        EXPECT_EQ(result.cluster_count, k);
        EXPECT_EQ(result.noise_count(), 0u);
    }
}

TEST(hierarchical, dendrogram_has_n_minus_1_merges) {
    rng r{11};
    const point_cloud cloud = two_blobs_with_noise(r, 20, 0);
    hierarchical_config cfg;
    cfg.metric = identity_metric();
    EXPECT_EQ(build_dendrogram(cloud, cfg).size(), cloud.size() - 1);
}

TEST(hierarchical, rejects_oversized_cloud) {
    hierarchical_config cfg;
    cfg.max_points = 10;
    point_cloud cloud;
    for (int i = 0; i < 20; ++i) cloud.push_back({static_cast<double>(i), 0.0, 0.0});
    EXPECT_THROW(build_dendrogram(cloud, cfg), invalid_argument_error);
}

TEST(kmeans, finds_blob_centroids) {
    rng r{12};
    const point_cloud cloud = two_blobs_with_noise(r, 80, 0);
    kmeans_config cfg;
    cfg.k = 2;
    cfg.metric = identity_metric();
    const kmeans_result result = kmeans(cloud, cfg, r);
    ASSERT_EQ(result.centroids.size(), 2u);
    std::vector<double> xs{result.centroids[0].x, result.centroids[1].x};
    std::sort(xs.begin(), xs.end());
    EXPECT_NEAR(xs[0], 0.0, 0.3);
    EXPECT_NEAR(xs[1], 5.0, 0.3);
}

TEST(kmeans, inertia_decreases_with_k) {
    rng r{13};
    const point_cloud cloud = two_blobs_with_noise(r, 60, 4);
    kmeans_config cfg;
    cfg.metric = identity_metric();
    double last = 1e300;
    for (std::size_t k = 1; k <= 4; ++k) {
        cfg.k = k;
        rng local{99};
        const double inertia = kmeans(cloud, cfg, local).inertia;
        EXPECT_LE(inertia, last * 1.05);  // allow tiny local-minimum slack
        last = inertia;
    }
}

TEST(kmeans, elbow_selects_two_for_two_blobs) {
    rng r{14};
    const point_cloud cloud = two_blobs_with_noise(r, 100, 0);
    kmeans_config cfg;
    cfg.metric = identity_metric();
    EXPECT_EQ(kmeans_elbow_k(cloud, 6, cfg, r), 2u);
}

TEST(kmeans, k_capped_by_cloud_size) {
    point_cloud cloud{{{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}}};
    kmeans_config cfg;
    cfg.k = 10;
    rng r{15};
    const auto result = kmeans(cloud, cfg, r);
    EXPECT_EQ(result.centroids.size(), 2u);
}

TEST(gmm, recovers_two_components) {
    rng r{16};
    const point_cloud cloud = two_blobs_with_noise(r, 120, 0);
    gmm_config cfg;
    cfg.components = 2;
    cfg.metric = identity_metric();
    const gmm_result result = gmm_cluster(cloud, cfg, r);
    ASSERT_EQ(result.components.size(), 2u);
    std::vector<double> xs{result.components[0].mean.x, result.components[1].mean.x};
    std::sort(xs.begin(), xs.end());
    EXPECT_NEAR(xs[0], 0.0, 0.4);
    EXPECT_NEAR(xs[1], 5.0, 0.4);
    EXPECT_NEAR(result.components[0].weight + result.components[1].weight, 1.0, 1e-6);
}

TEST(gmm, hard_assignment_separates_blobs) {
    rng r{17};
    const point_cloud cloud = two_blobs_with_noise(r, 60, 0);
    gmm_config cfg;
    cfg.components = 2;
    cfg.metric = identity_metric();
    const gmm_result result = gmm_cluster(cloud, cfg, r);
    EXPECT_EQ(result.clusters.labels[0], result.clusters.labels[30]);
    EXPECT_NE(result.clusters.labels[0], result.clusters.labels[80]);
}

TEST(gmm, variance_floor_enforced) {
    point_cloud cloud;
    for (int i = 0; i < 30; ++i) cloud.push_back({1.0, 2.0, 3.0});  // degenerate
    gmm_config cfg;
    cfg.components = 1;
    rng r{18};
    const gmm_result result = gmm_cluster(cloud, cfg, r);
    EXPECT_GE(result.components[0].variance.x, cfg.min_variance);
}

}  // namespace
}  // namespace hawc
