// End-to-end integration tests: simulator -> dataset -> training ->
// quantization -> crowd counting, at reduced scale.

#include <gtest/gtest.h>

#include <memory>

#include "classifiers/hawc_model.hpp"
#include "classifiers/quantized_classifier.hpp"
#include "counting/crowd_counter.hpp"

namespace hawc {
namespace {

hawc_config model_config(const single_person_dataset& ds) {
    hawc_config cfg;
    cfg.features.upsample.target_points = ds.target_points;
    cfg.features.projection.target_points = ds.target_points;
    cfg.training.epochs = 24;
    cfg.training.lr_decay_factor = 0.3;
    cfg.training.lr_decay_period = 10;
    return cfg;
}

struct fixture {
    single_person_dataset ds;
    crowd_dataset_config crowd_cfg;
    std::vector<crowd_sample> crowd;
    std::unique_ptr<hawc_model> model;  // trained once, shared by tests

    fixture() {
        single_person_dataset_config cfg;
        cfg.human_samples = 250;
        cfg.object_samples = 250;
        cfg.capture.min_cluster_points = 20;
        ds = build_single_person_dataset(cfg);

        crowd_cfg.scenes = 10;
        crowd_cfg.max_people = 4;
        crowd = build_crowd_dataset(crowd_cfg);

        rng r{1};
        model = std::make_unique<hawc_model>(model_config(ds), ds.pool, r);
        model->train(ds.train, nullptr, r);
    }
};

fixture& shared_fixture() {
    static fixture f;
    return f;
}

TEST(integration, dataset_is_learnable_by_hawc) {
    auto& f = shared_fixture();
    rng r{1};
    const auto metrics = f.model->evaluate(f.ds.test, r);
    EXPECT_GT(metrics.accuracy, 0.75);
}

TEST(integration, end_to_end_crowd_counting) {
    auto& f = shared_fixture();
    rng r{2};
    const crowd_counter counter{f.crowd_cfg.capture, *f.model};
    const auto eval = counter.evaluate(f.crowd, r);
    // Small training budget: just require counting to be clearly better
    // than a trivial always-zero counter.
    double zero_mae = 0.0;
    for (const auto& s : f.crowd) zero_mae += static_cast<double>(s.ground_truth);
    zero_mae /= static_cast<double>(f.crowd.size());
    EXPECT_LT(eval.metrics.mae, zero_mae);
    EXPECT_GT(eval.mean_latency_ms, 0.0);
}

TEST(integration, quantized_pipeline_end_to_end) {
    auto& f = shared_fixture();
    rng r{3};
    auto q = f.model->quantize(f.ds.train, r);
    const auto& extractor = f.model->extractor();
    quantized_classifier int8{std::move(q),
                              [&extractor](const point_cloud& c, rng& rr) {
                                  return extractor.extract(c, rr);
                              },
                              "HAWC-int8"};
    const auto fp = f.model->evaluate(f.ds.test, r);
    const auto qm = int8.evaluate(f.ds.test, r);
    EXPECT_NEAR(qm.accuracy, fp.accuracy, 0.1);

    const crowd_counter counter{f.crowd_cfg.capture, int8};
    const auto eval = counter.evaluate(f.crowd, r);
    EXPECT_LE(eval.metrics.mae, 4.0);
}

TEST(integration, adaptive_beats_bad_fixed_eps) {
    auto& f = shared_fixture();
    rng r{4};
    crowd_counter adaptive{f.crowd_cfg.capture, *f.model};
    crowd_counter fixed_tiny{f.crowd_cfg.capture, *f.model};
    fixed_tiny.set_clusterer(make_fixed_eps_clusterer(0.02, f.crowd_cfg.capture));

    const auto a = adaptive.evaluate(f.crowd, r);
    const auto t = fixed_tiny.evaluate(f.crowd, r);
    // eps far below point spacing destroys clusters; adaptive must win.
    EXPECT_LE(a.metrics.mae, t.metrics.mae);
}

}  // namespace
}  // namespace hawc
