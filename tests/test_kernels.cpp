// Parity and dispatch tests for the SIMD kernel layer
// (src/nn/kernels/). Every tier registered in this process must be
// bit-exact against the unpacked scalar references — for the int8 GEMM
// because integer accumulation is exact, for fp32 because the tiers pin
// the per-element summation order and never contract multiply-add, and
// for fused requantization against quant_params::quantize itself, the
// canonical rounding contract the tiers replicate.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/kernels/kernels.hpp"
#include "nn/sequential.hpp"
#include "quant/calibrate.hpp"
#include "quant/q_model.hpp"
#include "quant/q_types.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"

namespace hawc {
namespace {

using kernels::packed_qweights;
using kernels::q_block;

/// Random int8 weights biased toward the extremes so near-saturation
/// products (127*127, -128*127) show up in every shape.
std::vector<std::int8_t> random_weights(std::size_t count, rng& r) {
    std::vector<std::int8_t> w(count);
    for (auto& v : w) {
        const double roll = r.uniform(0.0, 1.0);
        if (roll < 0.15) {
            v = 127;
        } else if (roll < 0.3) {
            v = -128;
        } else {
            v = static_cast<std::int8_t>(r.uniform(-128.0, 128.0));
        }
    }
    return w;
}

/// int16 activations in the (x - zero_point) range the quant path feeds
/// the kernels: [-255, 255], extremes included.
std::vector<std::int16_t> random_activations(std::size_t rows, std::size_t k,
                                             std::size_t stride, rng& r) {
    std::vector<std::int16_t> a(rows * stride, 0);
    for (std::size_t m = 0; m < rows; ++m) {
        for (std::size_t i = 0; i < k; ++i) {
            const double roll = r.uniform(0.0, 1.0);
            std::int16_t v;
            if (roll < 0.1) {
                v = 255;
            } else if (roll < 0.2) {
                v = -255;
            } else {
                v = static_cast<std::int16_t>(r.uniform(-256.0, 256.0));
            }
            a[m * stride + i] = v;
        }
    }
    return a;
}

// Ragged K (odd, pair padding) and ragged N (every distance from a
// q_block boundary) both appear in this sweep.
struct gemm_shape {
    std::size_t m, k, n;
};

const gemm_shape kShapes[] = {
    {1, 1, 1},  {1, 2, 8},   {3, 7, 5},   {4, 8, 16},  {5, 9, 17},
    {2, 63, 16}, {8, 512, 98}, {6, 31, 24}, {7, 16, 9},  {4, 10, 7},
};

TEST(kernel_dispatch, scalar_always_registered_and_last) {
    const auto& tiers = kernels::registered_kernels();
    ASSERT_FALSE(tiers.empty());
    EXPECT_EQ(tiers.back()->tier, kernels::isa_tier::scalar);
    EXPECT_STREQ(tiers.back()->name, "scalar");
    for (const auto* t : tiers) {
        ASSERT_NE(t->qgemm, nullptr);
        ASSERT_NE(t->sgemm, nullptr);
        ASSERT_NE(t->requant, nullptr);
        EXPECT_EQ(kernels::find_kernels(t->name), t);
        EXPECT_STREQ(kernels::isa_name(t->tier), t->name);
    }
    EXPECT_EQ(kernels::find_kernels("not-an-isa"), nullptr);
}

TEST(kernel_dispatch, forcing_hook_overrides_selection) {
    const kernels::kernel_ops* scalar = kernels::find_kernels("scalar");
    kernels::set_active_kernels_for_testing(scalar);
    EXPECT_EQ(&kernels::active_kernels(), scalar);
    kernels::set_active_kernels_for_testing(nullptr);
    EXPECT_EQ(&kernels::active_kernels(), kernels::registered_kernels().front());
}

TEST(kernel_dispatch, isa_gauges_report_active_tier) {
    telemetry::metrics_registry reg;
    kernels::record_isa_gauges(reg);
    const std::string text = telemetry::to_prometheus(reg);
    const std::string expected = std::string{"hawc_kernel_isa{isa=\""} +
                                 kernels::active_kernels().name + "\"} 1";
    EXPECT_NE(text.find(expected), std::string::npos) << text;
    EXPECT_NE(text.find("hawc_kernel_isa_tier"), std::string::npos);
}

TEST(pack_qweights, pads_ragged_columns_and_odd_k_with_zeros) {
    rng r{7};
    const std::size_t k = 5, n = 11;  // odd k, ragged n
    const auto w = random_weights(k * n, r);
    const packed_qweights packed = kernels::pack_qweights(w.data(), k, n);
    EXPECT_EQ(packed.padded_n(), 2 * q_block);
    EXPECT_EQ(packed.k_pairs(), 3u);
    EXPECT_EQ(packed.data.size(), packed.col_blocks() * packed.k_pairs() * 2 * q_block);
    for (std::size_t b = 0; b < packed.col_blocks(); ++b) {
        for (std::size_t p = 0; p < packed.k_pairs(); ++p) {
            for (std::size_t j = 0; j < q_block; ++j) {
                const std::size_t col = b * q_block + j;
                const std::int16_t* pair =
                    packed.data.data() + (b * packed.k_pairs() + p) * 2 * q_block + 2 * j;
                const std::int16_t want0 =
                    col < n ? static_cast<std::int16_t>(w[(2 * p) * n + col]) : 0;
                const std::int16_t want1 = (col < n && 2 * p + 1 < k)
                                               ? static_cast<std::int16_t>(w[(2 * p + 1) * n + col])
                                               : 0;
                EXPECT_EQ(pair[0], want0) << "b=" << b << " p=" << p << " j=" << j;
                EXPECT_EQ(pair[1], want1) << "b=" << b << " p=" << p << " j=" << j;
            }
        }
    }
}

TEST(kernel_parity, qgemm_every_tier_bit_exact_vs_unpacked_reference) {
    rng r{21};
    for (const auto& shape : kShapes) {
        const std::size_t stride = kernels::q_row_stride(shape.k);
        const auto w = random_weights(shape.k * shape.n, r);
        const auto a = random_activations(shape.m, shape.k, stride, r);
        const packed_qweights packed = kernels::pack_qweights(w.data(), shape.k, shape.n);
        const std::size_t pn = packed.padded_n();

        std::vector<std::int32_t> want(shape.m * pn, 0);
        kernels::reference::qgemm(a.data(), stride, shape.k, w.data(), shape.n, want.data(),
                                  pn, shape.m);

        for (const auto* tier : kernels::registered_kernels()) {
            std::vector<std::int32_t> got(shape.m * pn, 0);
            tier->qgemm(a.data(), stride, packed, got.data(), shape.m);
            for (std::size_t m = 0; m < shape.m; ++m) {
                for (std::size_t j = 0; j < shape.n; ++j) {
                    ASSERT_EQ(got[m * pn + j], want[m * pn + j])
                        << tier->name << " m=" << shape.m << " k=" << shape.k
                        << " n=" << shape.n << " at (" << m << "," << j << ")";
                }
            }
        }
    }
}

TEST(kernel_parity, qgemm_accumulates_into_caller_values) {
    rng r{22};
    const std::size_t k = 9, n = 10, stride = kernels::q_row_stride(k);
    const auto w = random_weights(k * n, r);
    const auto a = random_activations(2, k, stride, r);
    const packed_qweights packed = kernels::pack_qweights(w.data(), k, n);
    const std::size_t pn = packed.padded_n();
    for (const auto* tier : kernels::registered_kernels()) {
        std::vector<std::int32_t> once(2 * pn, 0), twice(2 * pn, 0);
        tier->qgemm(a.data(), stride, packed, once.data(), 2);
        tier->qgemm(a.data(), stride, packed, twice.data(), 2);
        tier->qgemm(a.data(), stride, packed, twice.data(), 2);
        for (std::size_t i = 0; i < once.size(); ++i) {
            ASSERT_EQ(twice[i], 2 * once[i]) << tier->name << " at " << i;
        }
    }
}

TEST(kernel_parity, sgemm_every_tier_bit_exact_vs_reference) {
    rng r{23};
    for (const auto& shape : kShapes) {
        std::vector<float> a(shape.m * shape.k), w(shape.k * shape.n), bias(shape.n);
        for (auto& v : a) v = static_cast<float>(r.normal(0.0, 1.0));
        for (auto& v : w) v = static_cast<float>(r.normal(0.0, 1.0));
        for (auto& v : bias) v = static_cast<float>(r.normal(0.0, 1.0));

        std::vector<float> want(shape.m * shape.n);
        for (std::size_t m = 0; m < shape.m; ++m) {
            for (std::size_t j = 0; j < shape.n; ++j) want[m * shape.n + j] = bias[j];
        }
        kernels::reference::sgemm(a.data(), shape.k, w.data(), shape.n, want.data(), shape.m);

        for (const auto* tier : kernels::registered_kernels()) {
            std::vector<float> got(shape.m * shape.n);
            for (std::size_t m = 0; m < shape.m; ++m) {
                for (std::size_t j = 0; j < shape.n; ++j) got[m * shape.n + j] = bias[j];
            }
            tier->sgemm(a.data(), shape.k, w.data(), shape.n, got.data(), shape.m);
            // Bit-exact, not tolerance-banded: the fp32 kernel contract
            // pins the per-element summation order across tiers.
            ASSERT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(float)), 0)
                << tier->name << " m=" << shape.m << " k=" << shape.k << " n=" << shape.n;
        }
    }
}

/// Oracle for the fused requant contract, built from the canonical
/// quant_params::quantize the tiers replicate.
void requant_oracle(const std::int32_t* acc, std::size_t n, float in_scale,
                    const float* ws, const float* bias, const quant_params& out_q,
                    bool relu, std::int8_t* out) {
    for (std::size_t j = 0; j < n; ++j) {
        float real = static_cast<float>(acc[j]) * in_scale * ws[j] + bias[j];
        if (relu && real < 0.0f) real = 0.0f;
        out[j] = out_q.quantize(real);
    }
}

TEST(kernel_parity, requant_every_tier_matches_quantize_contract) {
    rng r{31};
    const quant_params out_q = quant_params::from_range(-4.0f, 4.0f);
    for (const std::size_t n : {1u, 7u, 8u, 9u, 16u, 98u}) {
        for (const bool relu : {false, true}) {
            std::vector<std::int32_t> acc(n);
            std::vector<float> ws(n), bias(n);
            for (auto& v : acc) {
                v = static_cast<std::int32_t>(r.uniform(-2000000.0, 2000000.0));
            }
            for (auto& v : ws) v = static_cast<float>(r.uniform(0.0001, 0.01));
            for (auto& v : bias) v = static_cast<float>(r.normal(0.0, 1.0));
            std::vector<std::int8_t> want(n), got(n);
            requant_oracle(acc.data(), n, 0.05f, ws.data(), bias.data(), out_q, relu,
                           want.data());
            for (const auto* tier : kernels::registered_kernels()) {
                std::fill(got.begin(), got.end(), std::int8_t{42});
                tier->requant(acc.data(), n, 0.05f, ws.data(), bias.data(), out_q.scale,
                              out_q.zero_point, relu, got.data());
                ASSERT_EQ(std::memcmp(got.data(), want.data(), n), 0)
                    << tier->name << " n=" << n << " relu=" << relu;
            }
        }
    }
}

TEST(kernel_parity, requant_rounding_saturation_and_nonfinite_edges) {
    // Drive `real` to exact values through acc=0 / ws=1 / bias=x, and the
    // quantized value q = real/scale + zp to exact values with scale=1,
    // zp=0: half-ties must round away from zero, out-of-range must
    // saturate, NaN must map to the zero-point code and infinities to the
    // endpoints — in the vector body, not just the scalar tail, hence 16
    // lanes.
    const float inf = std::numeric_limits<float>::infinity();
    const float qnan = std::numeric_limits<float>::quiet_NaN();
    const std::vector<float> reals = {0.5f,    -0.5f,   2.5f,  -2.5f,     126.5f, -127.5f,
                                      127.49f, -128.5f, 200.0f, -200.0f,  0.49999997f,
                                      -0.49999997f,     qnan,  inf,      -inf,    8388609.0f};
    const std::size_t n = reals.size();
    const std::vector<std::int32_t> acc(n, 0);
    const std::vector<float> ws(n, 1.0f);
    quant_params out_q;  // scale 1, zero_point 0
    for (const std::int32_t zp : {0, -5}) {
        out_q.zero_point = zp;
        std::vector<std::int8_t> want(n), got(n);
        requant_oracle(acc.data(), n, 1.0f, ws.data(), reals.data(), out_q, false,
                       want.data());
        for (const auto* tier : kernels::registered_kernels()) {
            tier->requant(acc.data(), n, 1.0f, ws.data(), reals.data(), out_q.scale,
                          out_q.zero_point, false, got.data());
            for (std::size_t j = 0; j < n; ++j) {
                ASSERT_EQ(got[j], want[j])
                    << tier->name << " real=" << reals[j] << " zp=" << zp;
            }
        }
    }
}

TEST(kernel_parity, forced_tiers_produce_identical_model_outputs) {
    // End-to-end: calibrate a small conv+dense model once, then run the
    // int8 forward under every registered tier. int8 activations are
    // bit-exact across tiers, so the dequantized logits must match
    // exactly too.
    rng r{77};
    sequential model;
    model.emplace<conv2d>(3, 8, 3, padding::same, r);
    model.emplace<relu>();
    model.emplace<flatten>();
    model.emplace<dense>(8 * 6 * 6, 4, r);

    std::vector<tensor> calib;
    for (int i = 0; i < 4; ++i) {
        tensor t{{1, 6, 6, 3}};
        for (std::size_t j = 0; j < t.size(); ++j) {
            t[j] = static_cast<float>(r.normal(0.0, 1.0));
        }
        calib.push_back(std::move(t));
    }
    const quantized_model q = quantize_model(model, calib);

    const tensor& sample = calib.front();
    kernels::set_active_kernels_for_testing(kernels::find_kernels("scalar"));
    const tensor want = q.forward(sample);
    for (const auto* tier : kernels::registered_kernels()) {
        kernels::set_active_kernels_for_testing(tier);
        const tensor got = q.forward(sample);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(got[i], want[i]) << tier->name << " logit " << i;
        }
    }
    kernels::set_active_kernels_for_testing(nullptr);
}

}  // namespace
}  // namespace hawc
