// Tests for the record/replay + parity subsystem: the checksummed binary
// envelope, corpus and model serialization round trips (bit-exact),
// corruption detection, deterministic recording/replaying, and the
// differential parity checker's ability to both pass identical pairs and
// flag genuinely divergent ones.

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <sstream>
#include <string_view>

#include "common/thread_pool.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "quant/calibrate.hpp"
#include "replay/binary_io.hpp"
#include "replay/corpus_set.hpp"
#include "replay/frame_format.hpp"
#include "replay/model_io.hpp"
#include "replay/parity_checker.hpp"
#include "replay/replay_driver.hpp"

namespace hawc::replay {
namespace {

// A small sensor keeps recording fast; clusters still form.
capture_config test_capture() {
    capture_config config;
    config.sensor.channels = 16;
    config.sensor.azimuth_steps = 512;
    config.min_cluster_points = 8;
    return config;
}

record_config test_record(std::uint64_t seed = 77, std::size_t frames = 4) {
    record_config config;
    config.name = "test";
    config.seed = seed;
    config.frames = frames;
    config.max_people = 4;
    config.capture = test_capture();
    return config;
}

/// Deterministic stand-in classifier: human iff the cluster has at least
/// `min_points` points. Thread-safe and rng-free, so parity across any
/// pair of identical thresholds is exact by construction.
class size_threshold_classifier final : public human_classifier {
public:
    explicit size_threshold_classifier(std::size_t min_points) : min_points_{min_points} {}
    bool is_human(const point_cloud& cluster, rng&) const override {
        return cluster.size() >= min_points_;
    }
    std::string name() const override { return "size-threshold"; }
    bool thread_safe() const override { return true; }

private:
    std::size_t min_points_;
};

// ---- binary envelope -----------------------------------------------------

TEST(binary_envelope, round_trips) {
    byte_writer payload;
    payload.u32(0xdeadbeef);
    payload.str("hello");
    payload.f64(1.5);
    std::ostringstream out;
    write_envelope(out, 0x41424344, 3, payload);

    std::istringstream in{out.str()};
    const envelope env = read_envelope(in, 0x41424344, 3, "test");
    EXPECT_EQ(env.version, 3);
    byte_reader reader{env.payload};
    EXPECT_EQ(reader.u32(), 0xdeadbeefu);
    EXPECT_EQ(reader.str(), "hello");
    EXPECT_EQ(reader.f64(), 1.5);
    reader.expect_exhausted("test");
}

TEST(binary_envelope, rejects_bad_magic) {
    byte_writer payload;
    payload.u32(7);
    std::ostringstream out;
    write_envelope(out, 0x11111111, 1, payload);
    std::istringstream in{out.str()};
    EXPECT_THROW(read_envelope(in, 0x22222222, 1, "test"), io_error);
}

TEST(binary_envelope, rejects_future_version) {
    byte_writer payload;
    payload.u32(7);
    std::ostringstream out;
    write_envelope(out, 0x11111111, 5, payload);
    std::istringstream in{out.str()};
    EXPECT_THROW(read_envelope(in, 0x11111111, 4, "test"), io_error);
}

TEST(binary_envelope, rejects_corrupted_payload) {
    byte_writer payload;
    payload.str("precious data");
    std::ostringstream out;
    write_envelope(out, 0x11111111, 1, payload);
    std::string bytes = out.str();
    bytes[bytes.size() - 3] ^= 0x40;  // flip a payload bit
    std::istringstream in{bytes};
    EXPECT_THROW(read_envelope(in, 0x11111111, 1, "test"), io_error);
}

TEST(binary_envelope, rejects_truncation) {
    byte_writer payload;
    for (int i = 0; i < 64; ++i) payload.u32(i);
    std::ostringstream out;
    write_envelope(out, 0x11111111, 1, payload);
    const std::string bytes = out.str();
    for (const std::size_t keep : {std::size_t{3}, std::size_t{10}, bytes.size() - 5}) {
        std::istringstream in{bytes.substr(0, keep)};
        EXPECT_THROW(read_envelope(in, 0x11111111, 1, "test"), io_error) << keep;
    }
}

TEST(byte_reader, bounds_checked) {
    byte_writer payload;
    payload.u16(9);
    byte_reader reader{payload.bytes()};
    EXPECT_EQ(reader.u16(), 9);
    EXPECT_THROW(reader.u32(), io_error);
}

// Regression: read_envelope used to read the flags field and drop it on
// the floor, so an artifact carrying a future feature bit was misparsed
// as its flagless layout instead of failing the load. Unknown bits must
// be a clean io_error.
TEST(binary_envelope, rejects_unknown_flag_bits) {
    byte_writer payload;
    payload.str("future format");
    std::ostringstream out;
    write_envelope(out, 0x11111111, 1, payload);
    std::string bytes = out.str();
    // Envelope layout: u32 magic | u16 version | u16 flags | ... — patch
    // an undefined flag bit directly into the header.
    for (const std::uint16_t flags : {std::uint16_t{0x0002}, std::uint16_t{0x8000},
                                      std::uint16_t{0xfffe}}) {
        std::string bad = bytes;
        std::memcpy(bad.data() + 6, &flags, sizeof(flags));
        std::istringstream in{bad};
        EXPECT_THROW(read_envelope(in, 0x11111111, 1, "test"), io_error) << flags;
    }
}

TEST(binary_envelope, compressed_payload_round_trips_and_shrinks) {
    byte_writer payload;
    for (int i = 0; i < 200; ++i) payload.str("the same string every time");
    std::ostringstream plain_out;
    write_envelope(plain_out, 0x11111111, 1, payload);
    std::ostringstream packed_out;
    write_envelope_compressed(packed_out, 0x11111111, 1, payload);
    EXPECT_LT(packed_out.str().size(), plain_out.str().size() / 2);

    std::istringstream in{packed_out.str()};
    const envelope env = read_envelope(in, 0x11111111, 1, "test");
    EXPECT_EQ(env.payload, payload.bytes());  // transparent decompression
}

TEST(binary_envelope, compressed_empty_payload_round_trips) {
    const byte_writer payload;
    std::ostringstream out;
    write_envelope_compressed(out, 0x11111111, 1, payload);
    std::istringstream in{out.str()};
    EXPECT_TRUE(read_envelope(in, 0x11111111, 1, "test").payload.empty());
}

TEST(binary_envelope, corrupted_compressed_payload_fails_cleanly) {
    byte_writer payload;
    for (int i = 0; i < 50; ++i) payload.str("compressible compressible");
    std::ostringstream out;
    write_envelope_compressed(out, 0x11111111, 1, payload);
    const std::string bytes = out.str();
    // Any flip inside the stored (compressed) payload trips the checksum.
    for (std::size_t i = 24; i < bytes.size(); i += 7) {
        std::string bad = bytes;
        bad[i] = static_cast<char>(bad[i] ^ 0x10);
        std::istringstream in{bad};
        EXPECT_THROW(read_envelope(in, 0x11111111, 1, "test"), io_error) << i;
    }
}

TEST(binary_envelope, implausible_uncompressed_size_fails_before_allocating) {
    byte_writer payload;
    payload.str("small");
    std::ostringstream out;
    write_envelope_compressed(out, 0x11111111, 1, payload);
    std::string bytes = out.str();
    // Patch the leading u64 uncompressed size (payload offset 24) to an
    // absurd value and re-checksum so only the size check can fire — the
    // reader must reject it without attempting a huge allocation.
    const std::uint64_t absurd = ~std::uint64_t{0};
    std::memcpy(bytes.data() + 24, &absurd, sizeof(absurd));
    const std::uint64_t sum = fnv1a64(bytes.data() + 24, bytes.size() - 24);
    std::memcpy(bytes.data() + 16, &sum, sizeof(sum));
    std::istringstream in{bytes};
    EXPECT_THROW(read_envelope(in, 0x11111111, 1, "test"), io_error);
}

// Regression: byte_writer::str used to truncate the u32 length prefix of
// a >4 GiB string silently while raw() appended every byte — a
// self-inconsistent payload. Now it throws before writing anything. The
// oversized string_view is a length without a readable buffer behind it;
// str() must fail before touching the bytes.
TEST(byte_writer, rejects_strings_overflowing_length_prefix) {
    byte_writer payload;
    const char byte = 'x';
    const std::string_view huge{&byte,
                                std::size_t{1} + std::numeric_limits<std::uint32_t>::max()};
    EXPECT_THROW(payload.str(huge), io_error);
    EXPECT_TRUE(payload.bytes().empty()) << "failed str() must not half-write";
}

TEST(byte_reader, rejects_string_length_beyond_payload_without_allocating) {
    byte_writer payload;
    payload.u32(0xffffffffu);  // claims a 4 GiB string...
    payload.raw("abc", 3);     // ...backed by three bytes
    byte_reader reader{payload.bytes()};
    EXPECT_THROW(reader.str(), io_error);
}

// ---- frame corpus --------------------------------------------------------

TEST(frame_corpus, record_is_deterministic) {
    const frame_corpus a = record_corpus(test_record());
    const frame_corpus b = record_corpus(test_record());
    EXPECT_EQ(a, b);
    const frame_corpus c = record_corpus(test_record(/*seed=*/78));
    EXPECT_NE(a, c);
}

TEST(frame_corpus, round_trips_bit_exactly) {
    const frame_corpus corpus = record_corpus(test_record());
    ASSERT_EQ(corpus.size(), 4u);
    EXPECT_GT(corpus.total_points(), 0u);

    std::ostringstream out;
    save_corpus(out, corpus);
    std::istringstream in{out.str()};
    const frame_corpus loaded = load_corpus(in);
    EXPECT_EQ(loaded, corpus);  // bit-exact, including every coordinate
}

TEST(frame_corpus, corrupted_file_fails_cleanly) {
    const frame_corpus corpus = record_corpus(test_record());
    std::ostringstream out;
    save_corpus(out, corpus);
    std::string bytes = out.str();
    bytes[bytes.size() / 2] ^= 0x01;
    std::istringstream in{bytes};
    EXPECT_THROW(load_corpus(in), io_error);
}

// ---- multi-pole corpus sets ---------------------------------------------

TEST(corpus_set, round_trips_bit_exactly) {
    pole_corpus_set set = record_corpus_set(test_record(/*seed=*/91, /*frames=*/2),
                                            {"p0", "p1", "p2"});
    ASSERT_EQ(set.pole_count(), 3u);
    EXPECT_EQ(set.total_frames(), 6u);

    std::ostringstream out;
    save_corpus_set(out, set);
    std::istringstream in{out.str()};
    const pole_corpus_set loaded = load_corpus_set(in);
    EXPECT_EQ(loaded, set);
}

TEST(corpus_set, poles_get_distinct_seeds_and_names) {
    const pole_corpus_set set =
        record_corpus_set(test_record(/*seed=*/91, /*frames=*/2), {"east", "west"});
    EXPECT_EQ(set.poles[0].pole_id, "east");
    EXPECT_EQ(set.poles[1].pole_id, "west");
    EXPECT_NE(set.poles[0].corpus.base_seed, set.poles[1].corpus.base_seed);
    EXPECT_NE(set.poles[0].corpus.name, set.poles[1].corpus.name);
    EXPECT_NE(set.poles[0].corpus.frames, set.poles[1].corpus.frames)
        << "poles must not replay the same scenes";

    // Deterministic from the base config alone.
    const pole_corpus_set again =
        record_corpus_set(test_record(/*seed=*/91, /*frames=*/2), {"east", "west"});
    EXPECT_EQ(again, set);
}

TEST(corpus_set, corrupted_stream_fails_cleanly) {
    const pole_corpus_set set =
        record_corpus_set(test_record(/*seed=*/91, /*frames=*/2), {"p0", "p1"});
    std::ostringstream out;
    save_corpus_set(out, set);
    std::string bytes = out.str();
    bytes[bytes.size() / 2] ^= 0x01;
    std::istringstream in{bytes};
    EXPECT_THROW(load_corpus_set(in), io_error);
}

TEST(frame_corpus, fault_injected_recording_differs) {
    record_config faulty = test_record();
    faulty.inject_faults = true;
    faulty.faults.beam_dropout_prob = 0.5;
    const frame_corpus clean = record_corpus(test_record());
    const frame_corpus degraded = record_corpus(faulty);
    EXPECT_NE(clean, degraded);
}

TEST(frame_seed_fn, order_independent_and_distinct) {
    const std::uint64_t s3 = frame_seed(42, 3);
    EXPECT_EQ(frame_seed(42, 3), s3);  // pure function of (base, index)
    EXPECT_NE(frame_seed(42, 3), frame_seed(42, 4));
    EXPECT_NE(frame_seed(42, 3), frame_seed(43, 3));
}

// ---- model serialization -------------------------------------------------

sequential make_net(rng& r) {
    sequential net;
    net.emplace<dense>(6, 10, r);
    net.emplace<relu>();
    net.emplace<dense>(10, 2, r);
    return net;
}

tensor make_input(rng& r) {
    tensor t{{1, 6}};
    for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(r.normal());
    return t;
}

TEST(model_io, weights_round_trip_bit_exactly) {
    rng r{5};
    sequential net = make_net(r);
    std::ostringstream out;
    save_weights(out, net);

    rng r2{99};  // different init, overwritten by load
    sequential restored = make_net(r2);
    std::istringstream in{out.str()};
    load_weights(in, restored);

    rng probe{1};
    for (int i = 0; i < 5; ++i) {
        const tensor x = make_input(probe);
        EXPECT_EQ(restored.infer(x), net.infer(x));
    }
}

TEST(model_io, weights_reject_architecture_mismatch) {
    rng r{5};
    sequential net = make_net(r);
    std::ostringstream out;
    save_weights(out, net);

    sequential other;
    other.emplace<dense>(6, 4, r);
    std::istringstream in{out.str()};
    EXPECT_THROW(load_weights(in, other), io_error);
}

TEST(model_io, quantized_round_trip_bit_exactly) {
    rng r{6};
    sequential net = make_net(r);
    std::vector<tensor> calibration;
    for (int i = 0; i < 8; ++i) calibration.push_back(make_input(r));
    const quantized_model q = quantize_model(net, calibration);

    std::ostringstream out;
    save_quantized(out, q);
    std::istringstream in{out.str()};
    const quantized_model loaded = load_quantized(in);

    ASSERT_EQ(loaded.op_count(), q.op_count());
    rng probe{2};
    for (int i = 0; i < 5; ++i) {
        const tensor x = make_input(probe);
        EXPECT_EQ(loaded.forward(x), q.forward(x));  // int8 math is exact
    }
}

TEST(model_io, quantized_rejects_inconsistent_op) {
    rng r{6};
    sequential net = make_net(r);
    std::vector<tensor> calibration{make_input(r)};
    const quantized_model q = quantize_model(net, calibration);
    std::ostringstream out;
    save_quantized(out, q);
    std::string bytes = out.str();
    // Corrupt a byte: either the checksum or (if it survived) an op field
    // consistency check must reject the load — never UB.
    bytes[40] ^= 0x08;
    std::istringstream in{bytes};
    EXPECT_THROW(load_quantized(in), io_error);
}

TEST(model_io, object_pool_round_trips_bit_exactly) {
    rng r{7};
    point_cloud points;
    for (int i = 0; i < 50; ++i) {
        points.push_back({r.normal(), r.normal(), r.normal()});
    }
    object_pool pool;
    pool.add_cloud(points);

    std::ostringstream out;
    save_object_pool(out, pool);
    std::istringstream in{out.str()};
    const object_pool loaded = load_object_pool(in);
    ASSERT_EQ(loaded.points().size(), pool.points().size());
    for (std::size_t i = 0; i < pool.points().size(); ++i) {
        EXPECT_EQ(loaded.points()[i], pool.points()[i]);
    }
}

// ---- replay + parity -----------------------------------------------------

TEST(replay, deterministic_across_runs) {
    const frame_corpus corpus = record_corpus(test_record());
    const size_threshold_classifier classifier{10};
    supervisor_config config;
    config.capture = test_capture();
    config.eps_selection_deadline_ms = 0;
    config.classification_deadline_ms = 0;
    config.frame_deadline_ms = 0;

    frame_supervisor a{config, classifier};
    frame_supervisor b{config, classifier};
    const replay_result ra = replay_corpus(a, corpus);
    const replay_result rb = replay_corpus(b, corpus);
    ASSERT_EQ(ra.reports.size(), corpus.size());
    EXPECT_EQ(ra.total_count, rb.total_count);
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        EXPECT_EQ(ra.reports[i].count, rb.reports[i].count);
        EXPECT_EQ(ra.reports[i].chosen_eps, rb.reports[i].chosen_eps);
    }
    EXPECT_EQ(ra.frames_ok + ra.frames_degraded + ra.frames_dropped, corpus.size());
}

TEST(parity, identical_pair_has_zero_divergences) {
    const frame_corpus corpus = record_corpus(test_record());
    const size_threshold_classifier a{10};
    const size_threshold_classifier b{10};
    supervisor_config config;
    config.capture = test_capture();

    telemetry::metrics_registry metrics;
    const parity_report report =
        check_count_parity("same_vs_same", corpus, config, a, b, &metrics);
    EXPECT_TRUE(report.passed()) << report.summary();
    EXPECT_EQ(report.frames, corpus.size());
    EXPECT_EQ(metrics.find_counter("hawc_parity_divergences_total")->value(), 0u);
    EXPECT_EQ(metrics.find_counter("hawc_parity_frames_compared_total")->value(),
              corpus.size());
}

TEST(parity, detects_divergent_pair) {
    const frame_corpus corpus = record_corpus(test_record(/*seed=*/123, /*frames=*/6));
    // Thresholds straddling typical cluster sizes: the pair must disagree
    // on at least one frame's count.
    const size_threshold_classifier lenient{8};
    const size_threshold_classifier strict{200};
    supervisor_config config;
    config.capture = test_capture();

    telemetry::metrics_registry metrics;
    const parity_report report =
        check_count_parity("lenient_vs_strict", corpus, config, lenient, strict, &metrics);
    EXPECT_FALSE(report.passed());
    EXPECT_GT(metrics.find_counter("hawc_parity_divergences_total")->value(), 0u);
    EXPECT_GT(
        metrics.find_counter("hawc_parity_lenient_vs_strict_divergences_total")->value(),
        0u);
}

TEST(parity, thread_sweep_is_bit_identical) {
    const frame_corpus corpus = record_corpus(test_record());
    const size_threshold_classifier classifier{10};
    supervisor_config config;
    config.capture = test_capture();

    const std::size_t original = global_pool().thread_count();
    parity_config parity;
    parity.thread_counts = {1, 2, 5};
    const parity_report report = check_thread_parity(corpus, config, classifier, parity);
    set_global_thread_count(original);
    EXPECT_TRUE(report.passed()) << report.summary();
    EXPECT_EQ(report.comparisons, corpus.size() * 2);  // two candidate counts
    EXPECT_EQ(global_pool().thread_count(), original);
}

TEST(parity, ladder_divergence_respects_budget) {
    const frame_corpus corpus = record_corpus(test_record());
    const size_threshold_classifier classifier{10};

    parity_config loose;
    loose.ladder_max_count_delta = 1000;  // nothing can exceed this
    const parity_report report = check_ladder_divergence(
        corpus, test_capture(), classifier, /*fixed_eps=*/0.35, loose);
    EXPECT_TRUE(report.passed()) << report.summary();
    EXPECT_EQ(report.comparisons, corpus.size());
}

}  // namespace
}  // namespace hawc::replay
