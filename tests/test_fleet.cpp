// Tests for the fleet fault-domain runtime: the lossy pole-link
// transport, the seqlock occupancy board, the pole watchdog state
// machine (quarantine -> backoff -> probation -> live), the fleet
// degradation ladder, replay parity of healthy poles against solo
// supervisors, and the multi-pole chaos soak.
//
// Determinism discipline: every test zeroes the supervisor's wall-clock
// deadlines (tick virtual time only) and drives per-frame rng streams
// from frame_seed, the same contract the replay parity harness pins.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "fleet/fleet_manager.hpp"
#include "runtime/fault_injection.hpp"
#include "telemetry/export.hpp"

namespace hawc {
namespace {

// Cheap deterministic classifier (no CNN training in unit tests):
// humans are tall-ish, compact clusters. Stateless, so physically safe
// to share across poles even though thread_safe() stays false (which
// keeps cluster classification sequential — required for parity).
class extent_classifier final : public human_classifier {
public:
    bool is_human(const point_cloud& cluster, rng&) const override {
        if (cluster.empty()) return false;
        const vec3 extent = cluster.bounds().size();
        return extent.z > 0.7 && std::max(extent.x, extent.y) < 2.5;
    }
    std::string name() const override { return "ExtentGate"; }
};

// Synthetic pole capture: ground plane plus person-sized blobs.
point_cloud synth_frame(rng& r, std::size_t people) {
    point_cloud cloud;
    for (int i = 0; i < 220; ++i) {
        cloud.push_back({r.uniform(10.0, 36.0), r.uniform(-3.0, 3.0),
                         -3.0 + std::abs(r.normal(0.0, 0.05))});
    }
    for (std::size_t p = 0; p < people; ++p) {
        const double fx = r.uniform(14.0, 33.0);
        const double fy = r.uniform(-2.0, 2.0);
        const double height = r.uniform(1.5, 1.9);
        for (int i = 0; i < 100; ++i) {
            cloud.push_back({fx + r.normal(0.0, 0.12), fy + r.normal(0.0, 0.12),
                             -2.9 + r.uniform() * height});
        }
    }
    return cloud;
}

// Supervisor config for virtual-time tests: wall-clock watchdogs off so
// results are bit-exact on any machine, any load.
supervisor_config det_config() {
    supervisor_config cfg;
    cfg.eps_selection_deadline_ms = 0.0;
    cfg.classification_deadline_ms = 0.0;
    cfg.frame_deadline_ms = 0.0;
    return cfg;
}

// An in-memory corpus whose frames come from synth_frame — cheap enough
// for soaks, deterministic from base_seed alone.
replay::frame_corpus synth_corpus(std::uint64_t base_seed, std::size_t frames) {
    replay::frame_corpus corpus;
    corpus.name = "synth";
    corpus.base_seed = base_seed;
    rng r{base_seed ^ 0xc0ffeeull};
    for (std::size_t i = 0; i < frames; ++i) {
        replay::frame_record rec;
        const auto people = static_cast<std::size_t>(r.uniform_index(4));
        rec.ground_truth = static_cast<std::uint32_t>(people);
        rec.cloud = synth_frame(r, people);
        corpus.frames.push_back(std::move(rec));
    }
    return corpus;
}

fleet::link_message corpus_message(const replay::frame_corpus& corpus,
                                   std::size_t frame) {
    fleet::link_message msg;
    msg.frame_index = frame;
    msg.ground_truth = corpus.frames[frame].ground_truth;
    msg.cloud = corpus.frames[frame].cloud;
    return msg;
}

// Two appends: GCC 12's -Wrestrict false-positives on
// operator+(const char*, std::string&&) at -O3 (see supervisor.cpp).
std::string pole_name(std::size_t i) {
    std::string id = "p";
    id += std::to_string(i);
    return id;
}

fleet::link_message tiny_message(std::uint64_t index) {
    fleet::link_message msg;
    msg.frame_index = index;
    msg.cloud.push_back({20.0, 0.0, -1.5});
    return msg;
}

// --- pole_link transport ---

TEST(fleet_link, clean_link_delivers_in_order) {
    fleet::pole_link link{{}, 1};
    for (std::uint64_t i = 0; i < 10; ++i) link.send(tiny_message(i));
    const auto out = link.receive();
    ASSERT_EQ(out.size(), 10u);
    for (std::uint64_t i = 0; i < 10; ++i) {
        EXPECT_EQ(out[i].frame_index, i);
        EXPECT_TRUE(fleet::verify_checksum(out[i]));
    }
    EXPECT_EQ(link.stats().sent, 10u);
    EXPECT_EQ(link.stats().delivered, 10u);
    EXPECT_EQ(link.stats().dropped, 0u);
}

TEST(fleet_link, identically_seeded_links_misbehave_identically) {
    fleet::link_fault_config faults;
    faults.drop_prob = 0.3;
    faults.delay_prob = 0.3;
    faults.reorder_prob = 0.3;
    faults.duplicate_prob = 0.2;
    faults.corrupt_prob = 0.2;

    fleet::pole_link a{faults, 77};
    fleet::pole_link b{faults, 77};
    std::vector<std::uint64_t> seq_a;
    std::vector<std::uint64_t> seq_b;
    for (std::uint64_t i = 0; i < 50; ++i) {
        a.send(tiny_message(i));
        b.send(tiny_message(i));
        for (const auto& m : a.receive()) seq_a.push_back(m.frame_index);
        for (const auto& m : b.receive()) seq_b.push_back(m.frame_index);
    }
    EXPECT_EQ(seq_a, seq_b);
    EXPECT_EQ(a.stats().dropped, b.stats().dropped);
    EXPECT_EQ(a.stats().corrupted, b.stats().corrupted);
    EXPECT_GT(a.stats().dropped, 0u);
}

TEST(fleet_link, corruption_is_caught_by_checksum) {
    fleet::link_fault_config faults;
    faults.corrupt_prob = 1.0;
    fleet::pole_link link{faults, 5};
    for (std::uint64_t i = 0; i < 8; ++i) link.send(tiny_message(i));
    // An empty cloud corrupts via the checksum itself.
    fleet::link_message empty;
    empty.frame_index = 99;
    link.send(empty);

    const auto out = link.receive();
    ASSERT_EQ(out.size(), 9u);
    for (const auto& m : out) {
        EXPECT_FALSE(fleet::verify_checksum(m)) << "frame " << m.frame_index;
    }
    EXPECT_EQ(link.stats().corrupted, 9u);
}

TEST(fleet_link, delayed_messages_arrive_after_their_ticks) {
    fleet::link_fault_config faults;
    faults.delay_prob = 1.0;
    faults.delay_ticks_max = 2;
    fleet::pole_link link{faults, 3};
    for (std::uint64_t i = 0; i < 6; ++i) link.send(tiny_message(i));

    EXPECT_TRUE(link.receive().empty());  // everything held at least 1 tick
    std::size_t total = 0;
    for (int tick = 0; tick < 3 && total < 6; ++tick) total += link.receive().size();
    EXPECT_EQ(total, 6u);
    EXPECT_EQ(link.stats().delayed, 6u);
}

TEST(fleet_link, message_checksum_covers_every_field) {
    fleet::link_message msg = tiny_message(4);
    const std::uint64_t base = fleet::message_checksum(msg);
    fleet::link_message changed = msg;
    changed.frame_index = 5;
    EXPECT_NE(fleet::message_checksum(changed), base);
    changed = msg;
    changed.ground_truth = 3;
    EXPECT_NE(fleet::message_checksum(changed), base);
    changed = msg;
    changed.cloud[0].z += 1e-9;
    EXPECT_NE(fleet::message_checksum(changed), base);
}

// --- occupancy board (seqlock) ---

fleet::occupancy_snapshot sample_snapshot(std::uint64_t tick, std::size_t poles,
                                          std::uint64_t count) {
    fleet::occupancy_snapshot snap;
    snap.tick = tick;
    snap.poles.resize(poles);
    for (auto& p : snap.poles) {
        p.count = count;
        p.epoch = 1;
        p.updated_tick = tick;
        p.rung = fleet::pole_rung::live;
        snap.aggregate += count;
        ++snap.included;
    }
    return snap;
}

TEST(fleet_occupancy, publish_read_roundtrip) {
    fleet::occupancy_board board{4};
    const auto snap = sample_snapshot(7, 3, 5);
    board.publish(snap);
    const auto got = board.read();
    EXPECT_EQ(got.tick, 7u);
    EXPECT_EQ(got.version, 1u);
    EXPECT_EQ(got.aggregate, 15u);
    EXPECT_EQ(got.included, 3u);
    ASSERT_EQ(got.poles.size(), 3u);
    EXPECT_EQ(got.poles[1].count, 5u);
    EXPECT_EQ(got.poles[1].rung, fleet::pole_rung::live);
    EXPECT_EQ(board.version(), 1u);
}

TEST(fleet_occupancy, staleness_bound_is_checked_per_included_pole) {
    auto snap = sample_snapshot(20, 2, 3);
    snap.poles[1].updated_tick = 10;
    EXPECT_TRUE(snap.within_staleness(20, 10));
    EXPECT_FALSE(snap.within_staleness(21, 10));
    // An excluded pole may be arbitrarily old without violating the bound.
    snap.poles[1].rung = fleet::pole_rung::excluded;
    snap.poles[0].updated_tick = 40;
    EXPECT_TRUE(snap.within_staleness(40, 10));
    // A timestamp from the future is bogus, never "fresh".
    EXPECT_FALSE(snap.within_staleness(39, 10));
}

TEST(fleet_occupancy, reader_serves_from_cache_until_next_publish) {
    fleet::occupancy_board board{2};
    board.publish(sample_snapshot(1, 2, 4));
    fleet::occupancy_reader reader{board};
    EXPECT_EQ(reader.snapshot().tick, 1u);
    EXPECT_EQ(reader.snapshot().tick, 1u);
    EXPECT_EQ(reader.refreshes(), 1u);
    EXPECT_EQ(reader.cache_hits(), 1u);

    board.publish(sample_snapshot(2, 2, 6));
    EXPECT_EQ(reader.snapshot().tick, 2u);
    EXPECT_EQ(reader.refreshes(), 2u);
}

// TSan target: one writer hammering the board while readers take
// snapshots. Every slot of a published snapshot carries the same count,
// so any mixed (torn) snapshot is detectable by value.
TEST(fleet_occupancy, concurrent_readers_never_see_torn_snapshots) {
    fleet::occupancy_board board{8};
    board.publish(sample_snapshot(1, 8, 1));

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> torn{0};
    std::vector<std::thread> readers;
    readers.reserve(3);
    for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&] {
            while (!stop.load(std::memory_order_relaxed)) {
                const auto snap = board.read();
                std::uint64_t sum = 0;
                for (const auto& p : snap.poles) {
                    if (p.count != snap.poles[0].count) torn.fetch_add(1);
                    sum += p.count;
                }
                if (sum != snap.aggregate) torn.fetch_add(1);
            }
        });
    }
    for (std::uint64_t tick = 2; tick < 2000; ++tick) {
        board.publish(sample_snapshot(tick, 8, tick));
    }
    stop.store(true);
    for (auto& r : readers) r.join();
    EXPECT_EQ(torn.load(), 0u);
    EXPECT_EQ(board.version(), 1999u);
}

// --- pole watchdog state machine ---

fleet::watchdog_config fast_watchdog() {
    fleet::watchdog_config wd;
    wd.max_consecutive_dropped = 3;
    wd.max_checksum_failures = 2;
    wd.backoff_base_ticks = 4;
    wd.backoff_cap_ticks = 64;
    wd.backoff_jitter_fraction = 0.0;  // exact backoff arithmetic
    wd.probation_recovery_streak = 2;
    return wd;
}

TEST(fleet_watchdog, dead_frames_quarantine_then_backoff_then_recover) {
    const extent_classifier classifier;
    fleet::pole_runtime pole{"p0", 42,        det_config(), {},
                             fast_watchdog(), classifier,   nullptr, 8};
    rng frames{9};

    std::uint64_t tick = 0;
    // Establish a good baseline frame.
    fleet::link_message good;
    good.frame_index = 0;
    good.cloud = synth_frame(frames, 2);
    pole.submit(good);
    pole.run_tick(++tick, 4);
    ASSERT_EQ(pole.state(), fleet::pole_state::live);
    ASSERT_TRUE(pole.has_good_count());
    const std::uint64_t epoch_before = pole.supervisor().health().epoch;

    // Three empty (truncated -> dropped) frames trip the watchdog.
    for (std::uint64_t i = 1; i <= 3; ++i) {
        fleet::link_message dead;
        dead.frame_index = i;
        pole.submit(dead);
        pole.run_tick(++tick, 4);
    }
    ASSERT_EQ(pole.state(), fleet::pole_state::quarantined);
    EXPECT_EQ(pole.stats().quarantines, 1u);
    EXPECT_EQ(pole.resume_tick(), tick + 4);  // base backoff, attempt 0

    // Arrivals while quarantined are rejected, not buffered.
    fleet::link_message during;
    during.frame_index = 90;
    during.cloud = synth_frame(frames, 1);
    pole.submit(during);
    pole.run_tick(++tick, 4);
    EXPECT_EQ(pole.state(), fleet::pole_state::quarantined);
    EXPECT_GE(pole.stats().rejected_quarantined, 1u);

    // Idle out the backoff; the expiry tick restarts into probation.
    while (pole.state() == fleet::pole_state::quarantined) pole.run_tick(++tick, 4);
    EXPECT_EQ(pole.state(), fleet::pole_state::probation);
    EXPECT_EQ(pole.stats().restarts, 1u);
    // The restart bumped the supervisor's health epoch (and wiped its
    // carry-forward state).
    EXPECT_GT(pole.supervisor().health().epoch, epoch_before);
    EXPECT_EQ(pole.supervisor().health().frames_total, 0u);

    // A recovery streak of good frames promotes back to live.
    for (std::uint64_t i = 100; i < 102; ++i) {
        fleet::link_message msg;
        msg.frame_index = i;
        msg.cloud = synth_frame(frames, 1);
        pole.submit(msg);
        pole.run_tick(++tick, 4);
    }
    EXPECT_EQ(pole.state(), fleet::pole_state::live);
    EXPECT_EQ(pole.backoff_attempt(), 0u);  // recovery cleared the escalation
}

TEST(fleet_watchdog, backoff_escalates_exponentially_and_caps) {
    const extent_classifier classifier;
    auto wd = fast_watchdog();
    wd.probation_recovery_streak = 1;
    fleet::pole_runtime pole{"p0", 43, det_config(), {}, wd, classifier, nullptr, 8};

    std::uint64_t tick = 0;
    std::uint64_t next_frame = 0;
    std::vector<std::uint64_t> backoffs;
    for (int round = 0; round < 6; ++round) {
        // Kill the pole: dropped frames until quarantine.
        while (pole.state() != fleet::pole_state::quarantined) {
            fleet::link_message dead;
            dead.frame_index = next_frame++;
            pole.submit(dead);
            pole.run_tick(++tick, 4);
        }
        backoffs.push_back(pole.resume_tick() - tick);
        // Ride out the quarantine; probation begins at expiry. A drop in
        // probation re-quarantines immediately, which is how rounds > 0
        // escalate without a full dropped streak.
        while (pole.state() == fleet::pole_state::quarantined) pole.run_tick(++tick, 4);
    }
    // attempt never reset (no good frames): 4, 8, 16, 32, 64, 64-capped.
    const std::vector<std::uint64_t> expected{4, 8, 16, 32, 64, 64};
    EXPECT_EQ(backoffs, expected);
}

TEST(fleet_watchdog, backoff_jitter_is_bounded_and_deterministic) {
    const extent_classifier classifier;
    auto wd = fast_watchdog();
    wd.backoff_jitter_fraction = 0.5;

    auto run_one = [&](std::uint64_t seed) {
        fleet::pole_runtime pole{"p0", seed,      det_config(), {}, wd,
                                 classifier, nullptr, 8};
        std::uint64_t tick = 0;
        std::uint64_t frame = 0;
        while (pole.state() != fleet::pole_state::quarantined) {
            fleet::link_message dead;
            dead.frame_index = frame++;
            pole.submit(dead);
            pole.run_tick(++tick, 4);
        }
        return pole.resume_tick() - tick;
    };

    const std::uint64_t d1 = run_one(1234);
    const std::uint64_t d2 = run_one(1234);
    EXPECT_EQ(d1, d2);  // same seed, same jitter
    EXPECT_GE(d1, 4u);  // base backoff...
    EXPECT_LE(d1, 6u);  // ...plus at most 50% jitter
}

TEST(fleet_watchdog, probation_flap_requarantines_with_escalated_backoff) {
    const extent_classifier classifier;
    fleet::pole_runtime pole{"p0", 44,        det_config(), {},
                             fast_watchdog(), classifier,   nullptr, 8};
    rng frames{10};

    std::uint64_t tick = 0;
    std::uint64_t frame = 0;
    while (pole.state() != fleet::pole_state::quarantined) {
        fleet::link_message dead;
        dead.frame_index = frame++;
        pole.submit(dead);
        pole.run_tick(++tick, 4);
    }
    while (pole.state() == fleet::pole_state::quarantined) pole.run_tick(++tick, 4);
    ASSERT_EQ(pole.state(), fleet::pole_state::probation);

    // One good frame (progress, but streak needs 2)...
    fleet::link_message good;
    good.frame_index = frame++;
    good.cloud = synth_frame(frames, 1);
    pole.submit(good);
    pole.run_tick(++tick, 4);
    ASSERT_EQ(pole.state(), fleet::pole_state::probation);

    // ...then a dead frame: a flap, back to quarantine with attempt 1.
    fleet::link_message dead;
    dead.frame_index = frame++;
    pole.submit(dead);
    pole.run_tick(++tick, 4);
    EXPECT_EQ(pole.state(), fleet::pole_state::quarantined);
    EXPECT_EQ(pole.stats().quarantines, 2u);
    EXPECT_EQ(pole.resume_tick() - tick, 8u);  // base << 1: escalated
}

TEST(fleet_watchdog, hung_pole_is_quarantined_after_silent_ticks) {
    const extent_classifier classifier;
    auto wd = fast_watchdog();
    wd.max_silent_ticks = 3;
    fleet::pole_runtime pole{"p0", 45, det_config(), {}, wd, classifier, nullptr, 8};

    std::uint64_t tick = 0;
    for (int i = 0; i < 4 && pole.state() == fleet::pole_state::live; ++i) {
        pole.run_tick(++tick, 4);  // nothing ever arrives
    }
    EXPECT_EQ(pole.state(), fleet::pole_state::quarantined);
}

TEST(fleet_watchdog, checksum_failure_streak_quarantines) {
    const extent_classifier classifier;
    fleet::link_fault_config corrupting;
    corrupting.corrupt_prob = 1.0;
    fleet::pole_runtime pole{"p0", 46,        det_config(), corrupting,
                             fast_watchdog(), classifier,   nullptr, 8};
    rng frames{11};

    std::uint64_t tick = 0;
    for (std::uint64_t i = 0; i < 2; ++i) {
        fleet::link_message msg;
        msg.frame_index = i;
        msg.cloud = synth_frame(frames, 1);
        pole.submit(msg);
        pole.run_tick(++tick, 4);
    }
    EXPECT_EQ(pole.state(), fleet::pole_state::quarantined);
    EXPECT_EQ(pole.stats().checksum_failures, 2u);
    EXPECT_EQ(pole.stats().processed, 0u);  // nothing corrupted reached the pipeline
}

TEST(fleet_watchdog, link_duplicates_are_suppressed_once_processed) {
    const extent_classifier classifier;
    fleet::link_fault_config duplicating;
    duplicating.duplicate_prob = 1.0;
    fleet::pole_runtime pole{"p0", 47,        det_config(), duplicating,
                             fast_watchdog(), classifier,   nullptr, 8};
    rng frames{12};

    std::uint64_t tick = 0;
    for (std::uint64_t i = 0; i < 5; ++i) {
        fleet::link_message msg;
        msg.frame_index = i;
        msg.cloud = synth_frame(frames, 1);
        pole.submit(msg);
        pole.run_tick(++tick, 8);
    }
    EXPECT_EQ(pole.stats().processed, 5u);
    EXPECT_EQ(pole.stats().duplicates_dropped, 5u);
    EXPECT_EQ(pole.supervisor().health().frames_total, 5u);
}

// --- fleet manager: ladder, parity, backpressure ---

TEST(fleet, ladder_walks_live_stale_excluded_as_a_pole_goes_quiet) {
    const extent_classifier classifier;
    std::vector<fleet::pole_setup> setups(2);
    for (std::size_t i = 0; i < 2; ++i) {
        setups[i].pole_id = pole_name(i);
        setups[i].seed = 100 + i;
        setups[i].supervisor = det_config();
        setups[i].primary = &classifier;
    }
    fleet::fleet_config cfg;
    cfg.stale_after_ticks = 2;
    cfg.exclude_after_ticks = 5;
    fleet::fleet_manager fleet{cfg, setups};

    const auto c0 = synth_corpus(100, 20);
    const auto c1 = synth_corpus(101, 20);
    // Warm both poles up.
    for (std::size_t f = 0; f < 4; ++f) {
        fleet.submit(0, corpus_message(c0, f));
        fleet.submit(1, corpus_message(c1, f));
        fleet.tick();
    }
    EXPECT_EQ(fleet.rung(0), fleet::pole_rung::live);
    EXPECT_EQ(fleet.rung(1), fleet::pole_rung::live);
    const std::uint64_t count1 = fleet.pole(1).last_good_count();

    // Pole 1 goes quiet; pole 0 keeps streaming.
    std::vector<fleet::pole_rung> rung1_seq;
    for (std::size_t f = 4; f < 14; ++f) {
        fleet.submit(0, corpus_message(c0, f));
        fleet.tick();
        rung1_seq.push_back(fleet.rung(1));
        const auto snap = fleet.snapshot();
        // The aggregate always reconciles with the included poles, and
        // the staleness bound holds every tick.
        std::uint64_t sum = 0;
        for (const auto& p : snap.poles) {
            if (p.rung != fleet::pole_rung::excluded) sum += p.count;
        }
        EXPECT_EQ(snap.aggregate, sum);
        EXPECT_TRUE(snap.within_staleness(snap.tick, cfg.exclude_after_ticks));
        if (fleet.rung(1) == fleet::pole_rung::stale_count) {
            EXPECT_EQ(snap.poles[1].count, count1);  // serving the last good count
        }
    }
    // The quiet pole walked live -> stale_count -> excluded, in order.
    EXPECT_EQ(rung1_seq.front(), fleet::pole_rung::live);
    EXPECT_TRUE(std::find(rung1_seq.begin(), rung1_seq.end(),
                          fleet::pole_rung::stale_count) != rung1_seq.end());
    EXPECT_EQ(rung1_seq.back(), fleet::pole_rung::excluded);
    EXPECT_EQ(fleet.rung(0), fleet::pole_rung::live);
}

TEST(fleet, healthy_poles_bit_identical_to_solo_replay) {
    const extent_classifier classifier;
    const std::size_t frames = 30;

    replay::pole_corpus_set set;
    set.name = "parity";
    for (std::size_t i = 0; i < 3; ++i) {
        replay::pole_corpus pc;
        pc.pole_id = pole_name(i);
        pc.corpus = synth_corpus(500 + i, frames);
        set.poles.push_back(std::move(pc));
    }

    // Pole 1 suffers a nasty link and a flaky classifier (its own
    // wrapper: flaky_classifier is not thread_safe, and poles run
    // concurrently). Poles 0 and 2 are healthy.
    const flaky_classifier flaky{classifier, 0.3, 999};
    std::vector<fleet::pole_setup> setups(3);
    for (std::size_t i = 0; i < 3; ++i) {
        setups[i].pole_id = set.poles[i].pole_id;
        setups[i].seed = set.poles[i].corpus.base_seed;
        setups[i].supervisor = det_config();
        setups[i].primary = &classifier;
    }
    setups[1].primary = &flaky;
    setups[1].fallback = &classifier;
    setups[1].link.drop_prob = 0.3;
    setups[1].link.delay_prob = 0.3;
    setups[1].link.corrupt_prob = 0.2;

    fleet::fleet_manager fleet{{}, setups};
    fleet.pole(0).set_record_history(true);
    fleet.pole(2).set_record_history(true);
    const auto result = replay_corpus_set(fleet, set, 8);
    EXPECT_EQ(result.frames_submitted, 3 * frames);

    for (const std::size_t pole : {std::size_t{0}, std::size_t{2}}) {
        frame_supervisor solo{det_config(), classifier};
        const replay::replay_result baseline =
            replay::replay_corpus(solo, set.poles[pole].corpus);
        const auto& history = fleet.pole(pole).history();
        ASSERT_EQ(history.size(), frames) << "pole " << pole;
        for (std::size_t f = 0; f < frames; ++f) {
            EXPECT_EQ(history[f].frame_index, f);
            EXPECT_EQ(history[f].count, baseline.reports[f].count)
                << "pole " << pole << " frame " << f;
            EXPECT_EQ(history[f].status, baseline.reports[f].status)
                << "pole " << pole << " frame " << f;
        }
        EXPECT_EQ(fleet.pole(pole).stats().processed, frames);
    }
}

TEST(fleet, tick_results_identical_across_thread_counts) {
    const extent_classifier classifier;
    const std::size_t frames = 12;

    auto run_fleet = [&](std::size_t threads) {
        set_global_thread_count(threads);
        std::vector<fleet::pole_setup> setups(4);
        for (std::size_t i = 0; i < 4; ++i) {
            setups[i].pole_id = pole_name(i);
            setups[i].seed = 700 + i;
            setups[i].supervisor = det_config();
            setups[i].primary = &classifier;
        }
        setups[2].link.drop_prob = 0.4;
        fleet::fleet_manager fleet{{}, setups};
        std::vector<replay::frame_corpus> corpora;
        for (std::size_t i = 0; i < 4; ++i) corpora.push_back(synth_corpus(700 + i, frames));
        std::vector<std::uint64_t> aggregates;
        for (std::size_t f = 0; f < frames; ++f) {
            for (std::size_t i = 0; i < 4; ++i) fleet.submit(i, corpus_message(corpora[i], f));
            fleet.tick();
            aggregates.push_back(fleet.snapshot().aggregate);
        }
        return aggregates;
    };

    const auto solo_lane = run_fleet(1);
    const auto four_lanes = run_fleet(4);
    EXPECT_EQ(solo_lane, four_lanes);
    set_global_thread_count(4);
}

TEST(fleet, backpressure_probe_halves_budget_and_inbox_overflow_sheds) {
    const extent_classifier classifier;
    std::vector<fleet::pole_setup> setups(1);
    setups[0].pole_id = "p0";
    setups[0].seed = 800;
    setups[0].supervisor = det_config();
    setups[0].primary = &classifier;

    fleet::fleet_config cfg;
    cfg.frames_per_tick = 2;
    cfg.max_inbox = 2;
    cfg.shed_at_utilization = 0.9;
    fleet::fleet_manager fleet{cfg, setups};
    fleet.set_backpressure_probe([] { return 1.0; });  // saturated pool

    const auto corpus = synth_corpus(800, 20);
    // Submit 4 frames per tick into budget 1 (halved from 2) and inbox 2:
    // overflow must shed the oldest, not block or corrupt.
    for (std::size_t f = 0; f + 4 <= 20; f += 4) {
        for (std::size_t k = 0; k < 4; ++k) fleet.submit(0, corpus_message(corpus, f + k));
        fleet.tick();
    }
    EXPECT_EQ(fleet.shed_ticks(), 5u);
    EXPECT_GT(fleet.pole(0).stats().shed_inbox_overflow, 0u);
    EXPECT_GT(fleet.pole(0).stats().processed, 0u);
    EXPECT_EQ(fleet.metrics().find_counter("hawc_fleet_shed_ticks_total")->value(), 5u);
    EXPECT_GT(fleet.metrics().find_counter("hawc_fleet_frames_shed_total")->value(), 0u);
}

TEST(fleet, per_pole_metrics_are_labeled_and_scrapeable) {
    const extent_classifier classifier;
    std::vector<fleet::pole_setup> setups(2);
    for (std::size_t i = 0; i < 2; ++i) {
        setups[i].pole_id = pole_name(i);
        setups[i].seed = 900 + i;
        setups[i].supervisor = det_config();
        setups[i].primary = &classifier;
    }
    fleet::fleet_manager fleet{{}, setups};
    const auto corpus0 = synth_corpus(900, 3);
    for (std::size_t f = 0; f < 3; ++f) {
        fleet.submit(0, corpus_message(corpus0, f));
        fleet.tick();
    }

    const std::string prom = telemetry::to_prometheus(fleet.metrics());
    EXPECT_NE(prom.find("hawc_pole_frames_total{pole=\"p0\"} 3"), std::string::npos);
    EXPECT_NE(prom.find("hawc_pole_frames_total{pole=\"p1\"} 0"), std::string::npos);
    // One TYPE line per family, not per series.
    std::size_t type_lines = 0;
    std::size_t pos = 0;
    while ((pos = prom.find("# TYPE hawc_pole_frames_total ", pos)) != std::string::npos) {
        ++type_lines;
        ++pos;
    }
    EXPECT_EQ(type_lines, 1u);
}

// --- chaos soak: the acceptance gate ---
//
// Eight poles, 10k+ frames, with link, sensor, and classifier faults all
// firing at once on a subset of poles. Healthy poles must stay
// bit-identical to their solo baselines, the staleness bound must hold
// on every published snapshot, and quarantined poles must recover via
// backoff without the fleet restarting.

TEST(fleet_chaos, multi_pole_soak_isolates_fault_domains) {
    const extent_classifier classifier;
    const std::size_t poles = 8;
    const std::size_t frames = 1300;  // 8 x 1300 = 10400 submitted frames

    std::vector<replay::frame_corpus> corpora;
    corpora.reserve(poles);
    for (std::size_t i = 0; i < poles; ++i) corpora.push_back(synth_corpus(3000 + i, frames));

    // Per-pole flaky wrappers (not thread_safe -> never shared).
    const flaky_classifier flaky5{classifier, 0.1, 55};
    const flaky_classifier flaky7{classifier, 0.2, 77};

    std::vector<fleet::pole_setup> setups(poles);
    for (std::size_t i = 0; i < poles; ++i) {
        setups[i].pole_id = pole_name(i);
        setups[i].seed = 3000 + i;
        setups[i].supervisor = det_config();
        setups[i].primary = &classifier;
    }
    // Poles 0, 1: healthy baselines. Pole 2: lossy link. Pole 3:
    // corrupting link. Pole 4: sensor dies for a stretch (empty frames).
    // Pole 5: flaky classifier with fp32-style fallback. Pole 6:
    // reordering, duplicating link. Pole 7: everything at once.
    setups[2].link.drop_prob = 0.15;
    setups[2].link.delay_prob = 0.2;
    setups[3].link.corrupt_prob = 0.2;
    setups[5].primary = &flaky5;
    setups[5].fallback = &classifier;
    setups[6].link.reorder_prob = 0.3;
    setups[6].link.duplicate_prob = 0.3;
    setups[7].primary = &flaky7;
    setups[7].fallback = &classifier;
    setups[7].link.drop_prob = 0.1;
    setups[7].link.delay_prob = 0.1;
    setups[7].link.corrupt_prob = 0.1;
    setups[7].link.reorder_prob = 0.1;
    setups[7].link.duplicate_prob = 0.1;

    fleet::fleet_config cfg;
    fleet::fleet_manager fleet{cfg, setups};
    fleet.pole(0).set_record_history(true);
    fleet.pole(1).set_record_history(true);

    rng sensor_chaos{31337};
    std::uint64_t staleness_violations = 0;
    std::uint64_t aggregate_mismatches = 0;
    for (std::size_t f = 0; f < frames; ++f) {
        for (std::size_t i = 0; i < poles; ++i) {
            fleet::link_message msg = corpus_message(corpora[i], f);
            // Pole 4's sensor: dead between frames 400 and 520, and
            // randomly truncated 10% of the time otherwise.
            if (i == 4) {
                if (f >= 400 && f < 520) {
                    msg.cloud.clear();
                } else if (sensor_chaos.chance(0.1)) {
                    point_cloud stub;
                    for (std::size_t k = 0; k < 8; ++k) stub.push_back(msg.cloud[k]);
                    msg.cloud = stub;
                }
            }
            fleet.submit(i, std::move(msg));
        }
        fleet.tick();

        const auto snap = fleet.snapshot();
        if (!snap.within_staleness(snap.tick, cfg.exclude_after_ticks)) {
            ++staleness_violations;
        }
        std::uint64_t sum = 0;
        std::uint32_t included = 0;
        for (const auto& p : snap.poles) {
            if (p.rung != fleet::pole_rung::excluded) {
                sum += p.count;
                ++included;
            }
        }
        if (sum != snap.aggregate || included != snap.included) ++aggregate_mismatches;
    }
    for (int i = 0; i < 8; ++i) fleet.tick();  // drain

    EXPECT_EQ(staleness_violations, 0u);
    EXPECT_EQ(aggregate_mismatches, 0u);

    // Healthy poles: bit-identical to their solo replay baselines.
    for (const std::size_t pole : {std::size_t{0}, std::size_t{1}}) {
        frame_supervisor solo{det_config(), classifier};
        const replay::replay_result baseline = replay::replay_corpus(solo, corpora[pole]);
        const auto& history = fleet.pole(pole).history();
        ASSERT_EQ(history.size(), frames) << "pole " << pole;
        std::uint64_t mismatches = 0;
        for (std::size_t f = 0; f < frames; ++f) {
            if (history[f].count != baseline.reports[f].count ||
                history[f].status != baseline.reports[f].status) {
                ++mismatches;
            }
        }
        EXPECT_EQ(mismatches, 0u) << "pole " << pole;
        EXPECT_EQ(fleet.pole(pole).stats().restarts, 0u);
    }

    // The dead-sensor pole was quarantined and recovered via backoff —
    // without the fleet restarting (healthy poles processed everything).
    EXPECT_GE(fleet.pole(4).stats().quarantines, 1u);
    EXPECT_GE(fleet.pole(4).stats().restarts, 1u);
    EXPECT_NE(fleet.pole(4).state(), fleet::pole_state::quarantined);
    EXPECT_GT(fleet.pole(4).supervisor().health().epoch, 0u);

    // The corrupting link never got a corrupted payload into a pipeline:
    // every rejection was by checksum, and corrupted == rejected.
    EXPECT_GT(fleet.pole(3).stats().checksum_failures, 0u);
    EXPECT_EQ(fleet.pole(3).stats().checksum_failures, fleet.pole(3).link().corrupted);

    // Every supervisor's books balance, fleet-wide.
    for (std::size_t i = 0; i < poles; ++i) {
        EXPECT_TRUE(fleet.pole(i).supervisor().health().accounted()) << "pole " << i;
    }

    // The board published once per tick.
    EXPECT_EQ(fleet.board().version(), fleet.current_tick());
}

}  // namespace
}  // namespace hawc
