// Tests for the telemetry subsystem: registry exactness under concurrent
// writers, histogram quantile estimation, span nesting and ring bounding,
// exporter golden strings, and the supervisor's per-frame span tree. The
// suite name is "telemetry" so check.sh runs it under TSan alongside the
// thread_pool and determinism suites.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "runtime/supervisor.hpp"
#include "telemetry/telemetry.hpp"

namespace hawc {
namespace {

using telemetry::no_span;
using telemetry::span_record;

// Cheap deterministic classifier (mirrors test_runtime): humans are
// tall-ish, compact clusters.
class extent_classifier final : public human_classifier {
public:
    bool is_human(const point_cloud& cluster, rng&) const override {
        if (cluster.empty()) return false;
        const vec3 extent = cluster.bounds().size();
        return extent.z > 0.7 && std::max(extent.x, extent.y) < 2.5;
    }
    std::string name() const override { return "ExtentGate"; }
};

// Synthetic pole capture: ground plane plus person-sized blobs.
point_cloud synth_frame(rng& r, std::size_t people) {
    point_cloud cloud;
    for (int i = 0; i < 400; ++i) {
        cloud.push_back({r.uniform(10.0, 36.0), r.uniform(-3.0, 3.0),
                         -3.0 + std::abs(r.normal(0.0, 0.05))});
    }
    for (std::size_t p = 0; p < people; ++p) {
        const double fx = r.uniform(14.0, 33.0);
        const double fy = r.uniform(-2.0, 2.0);
        const double height = r.uniform(1.5, 1.9);
        for (int i = 0; i < 120; ++i) {
            cloud.push_back({fx + r.normal(0.0, 0.12), fy + r.normal(0.0, 0.12),
                             -2.9 + r.uniform() * height});
        }
    }
    return cloud;
}

std::vector<span_record> spans_named(const std::vector<span_record>& spans,
                                     const std::string& name) {
    std::vector<span_record> out;
    for (const auto& s : spans) {
        if (name == s.name) out.push_back(s);
    }
    return out;
}

// --- Registry primitives ---

TEST(telemetry, counters_and_gauges_are_exact_under_concurrent_writers) {
    telemetry::metrics_registry reg;
    telemetry::counter& c = reg.make_counter("events_total");
    telemetry::gauge& g = reg.make_gauge("accumulated");
    telemetry::latency_histogram& h =
        reg.make_histogram("lat_ms", telemetry::latency_histogram::default_latency_bounds_ms());

    constexpr std::size_t threads = 8;
    constexpr std::size_t per_thread = 10000;
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
        pool.emplace_back([&] {
            for (std::size_t i = 0; i < per_thread; ++i) {
                c.add(1);
                g.add(1.0);
                h.record(1.0);  // integral sample: the CAS sum stays exact
            }
        });
    }
    for (auto& th : pool) th.join();

    EXPECT_EQ(c.value(), threads * per_thread);
    EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(threads * per_thread));
    EXPECT_EQ(h.count(), threads * per_thread);
    EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(threads * per_thread));
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 1.0);
}

TEST(telemetry, histogram_quantiles_interpolate_and_clamp_to_observed_range) {
    telemetry::latency_histogram h{{1.0, 10.0, 100.0}};
    for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));  // 1..100 ms

    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    // 1 sample <= 1, 9 in (1,10], 90 in (10,100]: the p50/p95 ranks land
    // in the wide (10,100] bucket, interpolated linearly.
    EXPECT_NEAR(h.quantile(0.50), 50.0, 5.0);
    EXPECT_NEAR(h.quantile(0.95), 95.0, 5.0);
    // Quantiles never escape the observed range.
    EXPECT_GE(h.quantile(0.0), 1.0);
    EXPECT_LE(h.quantile(1.0), 100.0);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(telemetry, registry_is_idempotent_per_name_and_rejects_type_collisions) {
    telemetry::metrics_registry reg;
    telemetry::counter& a = reg.make_counter("x_total", "first");
    telemetry::counter& b = reg.make_counter("x_total", "second registration ignored");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(reg.metric_count(), 1u);

    EXPECT_THROW(reg.make_gauge("x_total"), invalid_argument_error);
    EXPECT_THROW(reg.make_histogram("x_total", {1.0}), invalid_argument_error);

    EXPECT_EQ(reg.find_counter("x_total"), &a);
    EXPECT_EQ(reg.find_gauge("x_total"), nullptr);
    EXPECT_EQ(reg.find_counter("absent"), nullptr);

    // Histogram bounds are validated at registration.
    EXPECT_THROW(reg.make_histogram("bad", {}), invalid_argument_error);
    EXPECT_THROW(reg.make_histogram("bad", {5.0, 1.0}), invalid_argument_error);
}

// --- Spans ---

TEST(telemetry, scoped_spans_nest_and_record_on_destruction) {
    telemetry::trace_sink sink{16};
    telemetry::tracer tr{&sink};
    tr.begin_frame(42);
    {
        telemetry::scoped_span outer{&tr, "outer"};
        ASSERT_TRUE(outer.active());
        {
            telemetry::scoped_span inner{&tr, "inner", outer.id()};
            ASSERT_TRUE(inner.active());
            EXPECT_NE(inner.id(), outer.id());
        }
        // inner recorded first (it finished first)...
        EXPECT_EQ(sink.recorded(), 1u);
    }
    // ...then outer.
    const auto spans = sink.snapshot();
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_STREQ(spans[0].name, "inner");
    EXPECT_STREQ(spans[1].name, "outer");
    EXPECT_EQ(spans[0].parent, spans[1].id);
    EXPECT_EQ(spans[1].parent, no_span);
    EXPECT_EQ(spans[0].frame, 42u);
    EXPECT_GE(spans[0].end_ns, spans[0].start_ns);
    // The child opened after and closed before its parent.
    EXPECT_GE(spans[0].start_ns, spans[1].start_ns);
    EXPECT_LE(spans[0].end_ns, spans[1].end_ns);
}

TEST(telemetry, trace_ring_keeps_newest_spans_oldest_first) {
    telemetry::trace_sink sink{4};
    telemetry::tracer tr{&sink};
    for (int i = 0; i < 6; ++i) telemetry::scoped_span span{&tr, "s"};

    EXPECT_EQ(sink.recorded(), 6u);
    const auto spans = sink.snapshot();
    ASSERT_EQ(spans.size(), 4u);
    // Ids are handed out 1..6; the ring keeps the newest four in order.
    for (std::size_t i = 0; i < spans.size(); ++i) {
        EXPECT_EQ(spans[i].id, static_cast<telemetry::span_id>(3 + i));
    }

    sink.clear();
    EXPECT_TRUE(sink.snapshot().empty());
    EXPECT_EQ(sink.recorded(), 0u);
}

TEST(telemetry, spans_are_inert_without_a_sink) {
    telemetry::tracer tr;  // no sink
    telemetry::scoped_span span{&tr, "noop"};
    EXPECT_FALSE(span.active());
    span.finish();  // idempotent, no crash

    telemetry_handle inert;  // default handle: no metrics, no tracer
    EXPECT_FALSE(inert.tracing());
    telemetry::scoped_span via_handle{inert, "noop"};
    EXPECT_FALSE(via_handle.active());
}

// --- Supervisor span tree ---

TEST(telemetry, supervisor_emits_complete_span_tree_per_frame) {
    const extent_classifier classifier;
    supervisor_config cfg;
    frame_supervisor supervisor{cfg, classifier};
    telemetry::trace_sink sink;
    supervisor.set_trace_sink(&sink);

    rng r{42};
    const point_cloud raw = synth_frame(r, 3);
    const frame_report report = supervisor.process(raw, r);
    ASSERT_NE(report.status, frame_status::dropped);

    const auto spans = sink.snapshot();
    const auto frames = spans_named(spans, "frame");
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].parent, no_span);
    EXPECT_EQ(frames[0].frame, 1u);
    EXPECT_EQ(frames[0].code, static_cast<std::uint8_t>(report.status));

    for (const char* stage : {"ingest", "eps_selection", "dbscan", "classify"}) {
        const auto stage_spans = spans_named(spans, stage);
        ASSERT_EQ(stage_spans.size(), 1u) << stage;
        EXPECT_EQ(stage_spans[0].parent, frames[0].id) << stage;
        EXPECT_GE(stage_spans[0].start_ns, frames[0].start_ns) << stage;
        EXPECT_LE(stage_spans[0].end_ns, frames[0].end_ns) << stage;
    }

    // One classify_cluster span per examined cluster, all under classify.
    const auto classify = spans_named(spans, "classify");
    const auto per_cluster = spans_named(spans, "classify_cluster");
    EXPECT_EQ(per_cluster.size(), report.cluster_count);
    for (const auto& s : per_cluster) EXPECT_EQ(s.parent, classify[0].id);

    // A second frame gets a fresh frame number.
    (void)supervisor.process(raw, r);
    const auto frames2 = spans_named(sink.snapshot(), "frame");
    ASSERT_EQ(frames2.size(), 2u);
    EXPECT_EQ(frames2[1].frame, 2u);
}

TEST(telemetry, supervisor_traces_dropped_frames_with_status_code) {
    const extent_classifier classifier;
    supervisor_config cfg;
    frame_supervisor supervisor{cfg, classifier};
    telemetry::trace_sink sink;
    supervisor.set_trace_sink(&sink);

    rng r{1};
    point_cloud tiny;  // below min_raw_points -> dropped at ingest
    for (int i = 0; i < 5; ++i) tiny.push_back({1.0, 1.0, static_cast<double>(i)});
    const frame_report report = supervisor.process(tiny, r);
    ASSERT_EQ(report.status, frame_status::dropped);

    const auto spans = sink.snapshot();
    const auto frames = spans_named(spans, "frame");
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].code, static_cast<std::uint8_t>(frame_status::dropped));
    // The truncated frame still traces its ingest attempt, and nothing
    // downstream of the drop.
    EXPECT_EQ(spans_named(spans, "ingest").size(), 1u);
    EXPECT_TRUE(spans_named(spans, "dbscan").empty());
    EXPECT_TRUE(spans_named(spans, "classify_cluster").empty());
}

TEST(telemetry, supervisor_without_sink_records_metrics_only) {
    const extent_classifier classifier;
    supervisor_config cfg;
    frame_supervisor supervisor{cfg, classifier};

    rng r{42};
    (void)supervisor.process(synth_frame(r, 2), r);
    EXPECT_EQ(supervisor.metrics().find_counter("hawc_frames_total")->value(), 1u);
}

// --- Exporters ---

TEST(telemetry, prometheus_exposition_golden_string) {
    telemetry::metrics_registry reg;
    reg.make_counter("requests_total", "Total requests").add(3);
    reg.make_gauge("queue_depth", "Items waiting").set(2.5);
    telemetry::latency_histogram& h = reg.make_histogram("lat_ms", {1.0, 10.0}, "Latency");
    h.record(0.5);
    h.record(5.0);
    h.record(20.0);

    const std::string expected =
        "# HELP requests_total Total requests\n"
        "# TYPE requests_total counter\n"
        "requests_total 3\n"
        "# HELP queue_depth Items waiting\n"
        "# TYPE queue_depth gauge\n"
        "queue_depth 2.5\n"
        "# HELP lat_ms Latency\n"
        "# TYPE lat_ms histogram\n"
        "lat_ms_bucket{le=\"1\"} 1\n"
        "lat_ms_bucket{le=\"10\"} 2\n"
        "lat_ms_bucket{le=\"+Inf\"} 3\n"
        "lat_ms_sum 25.5\n"
        "lat_ms_count 3\n";
    EXPECT_EQ(telemetry::to_prometheus(reg), expected);
}

TEST(telemetry, json_snapshot_golden_string) {
    telemetry::metrics_registry reg;
    reg.make_counter("requests_total").add(3);
    reg.make_gauge("queue_depth").set(2.5);
    telemetry::latency_histogram& h = reg.make_histogram("lat_ms", {1.0, 10.0});
    h.record(0.5);
    h.record(5.0);
    h.record(20.0);

    // p50: rank 1.5 falls in (1,10] with one prior sample -> 5.5;
    // p95/p99: ranks 2.85/2.97 interpolate the overflow bucket toward
    // the observed max of 20 -> 18.5 / 19.7.
    const std::string expected =
        "{\n"
        "  \"counters\": {\n"
        "    \"requests_total\": 3\n"
        "  },\n"
        "  \"gauges\": {\n"
        "    \"queue_depth\": 2.5\n"
        "  },\n"
        "  \"histograms\": {\n"
        "    \"lat_ms\": {\"count\": 3, \"sum\": 25.5, \"min\": 0.5, \"max\": 20, "
        "\"p50\": 5.5, \"p95\": 18.5, \"p99\": 19.7, \"buckets\": "
        "[{\"le\": 1, \"count\": 1}, {\"le\": 10, \"count\": 2}, "
        "{\"le\": \"+Inf\", \"count\": 3}]}\n"
        "  }\n"
        "}\n";
    EXPECT_EQ(telemetry::to_json(reg), expected);
}

TEST(telemetry, labeled_name_composes_and_rejects_delimiters) {
    EXPECT_EQ(telemetry::labeled_name("hawc_pole_frames_total", "pole", "p3"),
              "hawc_pole_frames_total@pole=p3");
    EXPECT_THROW(telemetry::labeled_name("", "pole", "p3"), error);
    EXPECT_THROW(telemetry::labeled_name("a@b", "pole", "p3"), error);
    EXPECT_THROW(telemetry::labeled_name("ok", "po=le", "p3"), error);
    // '@' delimits segments, so values may not contain it either.
    EXPECT_THROW(telemetry::labeled_name("ok", "pole", "p@3"), error);
}

TEST(telemetry, labeled_name_composes_multiple_pairs) {
    const telemetry::metric_label labels[] = {
        {"version", "0.8.0"}, {"isa", "avx2"}, {"sanitizer", "none"}};
    EXPECT_EQ(telemetry::labeled_name("hawc_build_info", labels),
              "hawc_build_info@version=0.8.0@isa=avx2@sanitizer=none");
    EXPECT_EQ(telemetry::labeled_name("bare", std::span<const telemetry::metric_label>{}),
              "bare");
    const telemetry::metric_label bad[] = {{"isa", "av@x2"}};
    EXPECT_THROW(telemetry::labeled_name("hawc_build_info", bad), error);
}

TEST(telemetry, prometheus_renders_multi_label_series) {
    telemetry::metrics_registry reg;
    const telemetry::metric_label labels[] = {
        {"version", "0.8.0"}, {"compiler", "gcc-12"}, {"isa", "avx2"}};
    reg.make_gauge(telemetry::labeled_name("build_info", labels), "Build identity")
        .set(1.0);
    const std::string expected =
        "# HELP build_info Build identity\n"
        "# TYPE build_info gauge\n"
        "build_info{version=\"0.8.0\",compiler=\"gcc-12\",isa=\"avx2\"} 1\n";
    EXPECT_EQ(telemetry::to_prometheus(reg), expected);
}

// Exposition format 0.0.4: HELP text must escape backslash and newline,
// or a multi-line help string corrupts the scrape.
TEST(telemetry, prometheus_escapes_help_text) {
    telemetry::metrics_registry reg;
    reg.make_counter("odd_total", "line one\nline two \\ backslash").add(1);
    const std::string expected =
        "# HELP odd_total line one\\nline two \\\\ backslash\n"
        "# TYPE odd_total counter\n"
        "odd_total 1\n";
    EXPECT_EQ(telemetry::to_prometheus(reg), expected);
}

TEST(telemetry, prometheus_renders_label_suffix_as_label_with_escaping) {
    telemetry::metrics_registry reg;
    // Two series of one family, registered out of order, plus a value
    // that needs every escape (quote, backslash, newline).
    reg.make_counter(telemetry::labeled_name("pole_frames_total", "pole", "p1"),
                     "Frames per pole")
        .add(7);
    reg.make_counter(telemetry::labeled_name("pole_frames_total", "pole", "p\"\\\n0"),
                     "Frames per pole")
        .add(3);
    telemetry::latency_histogram& h = reg.make_histogram(
        telemetry::labeled_name("pole_lat_ms", "pole", "p1"), {1.0}, "Latency per pole");
    h.record(0.5);

    const std::string expected =
        "# HELP pole_frames_total Frames per pole\n"
        "# TYPE pole_frames_total counter\n"
        "pole_frames_total{pole=\"p1\"} 7\n"
        "pole_frames_total{pole=\"p\\\"\\\\\\n0\"} 3\n"
        "# HELP pole_lat_ms Latency per pole\n"
        "# TYPE pole_lat_ms histogram\n"
        "pole_lat_ms_bucket{pole=\"p1\",le=\"1\"} 1\n"
        "pole_lat_ms_bucket{pole=\"p1\",le=\"+Inf\"} 1\n"
        "pole_lat_ms_sum{pole=\"p1\"} 0.5\n"
        "pole_lat_ms_count{pole=\"p1\"} 1\n";
    EXPECT_EQ(telemetry::to_prometheus(reg), expected);
}

TEST(telemetry, json_export_keeps_composed_names_verbatim) {
    telemetry::metrics_registry reg;
    reg.make_counter(telemetry::labeled_name("pole_frames_total", "pole", "p0")).add(2);
    const std::string json = telemetry::to_json(reg);
    EXPECT_NE(json.find("\"pole_frames_total@pole=p0\": 2"), std::string::npos);
}

TEST(telemetry, chrome_trace_export_normalizes_timestamps) {
    span_record a;
    a.id = 1;
    a.name = "frame";
    a.frame = 7;
    a.start_ns = 1'000'000;
    a.end_ns = 3'500'000;
    a.tid = 9;
    a.code = 1;
    span_record b;
    b.id = 2;
    b.parent = 1;
    b.name = "ingest";
    b.frame = 7;
    b.start_ns = 1'200'000;
    b.end_ns = 1'700'000;
    b.tid = 9;
    const std::vector<span_record> spans{a, b};

    const std::string trace = telemetry::to_chrome_trace(spans);
    EXPECT_NE(trace.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
    // Earliest span starts at ts 0; durations are microseconds.
    EXPECT_NE(trace.find("\"name\": \"frame\", \"cat\": \"pipeline\", \"ph\": \"X\", "
                         "\"pid\": 1, \"tid\": 9, \"ts\": 0.000, \"dur\": 2500.000"),
              std::string::npos);
    EXPECT_NE(trace.find("\"ts\": 200.000, \"dur\": 500.000"), std::string::npos);
    EXPECT_NE(trace.find("\"args\": {\"span\": 2, \"parent\": 1, \"frame\": 7, \"code\": 0}"),
              std::string::npos);

    EXPECT_EQ(telemetry::to_chrome_trace({}), "{\"displayTimeUnit\": \"ms\", "
                                              "\"traceEvents\": []}\n");
}

TEST(telemetry, pool_gauges_reflect_the_global_pool) {
    telemetry::metrics_registry reg;
    telemetry::record_pool_gauges(reg, global_pool());
    ASSERT_NE(reg.find_gauge("hawc_pool_lanes"), nullptr);
    EXPECT_DOUBLE_EQ(reg.find_gauge("hawc_pool_lanes")->value(),
                     static_cast<double>(global_pool().thread_count()));
    EXPECT_GE(reg.find_gauge("hawc_pool_utilization")->value(), 0.0);
    EXPECT_LE(reg.find_gauge("hawc_pool_utilization")->value(), 1.0);

    // A forced fan-out bumps the cumulative dispatch gauge.
    const double before = reg.find_gauge("hawc_pool_jobs_dispatched")->value();
    std::atomic<int> sum{0};
    global_pool().parallel_for(0, 1024, 1, [&](std::size_t lo, std::size_t hi, std::size_t) {
        sum.fetch_add(static_cast<int>(hi - lo), std::memory_order_relaxed);
    });
    telemetry::record_pool_gauges(reg, global_pool());
    EXPECT_EQ(sum.load(), 1024);
    if (global_pool().thread_count() > 1) {
        EXPECT_GT(reg.find_gauge("hawc_pool_jobs_dispatched")->value(), before);
    }
}

// --- Health view migration ---

TEST(telemetry, health_view_agrees_with_the_registry) {
    const extent_classifier classifier;
    supervisor_config cfg;
    frame_supervisor supervisor{cfg, classifier};

    rng r{42};
    for (int i = 0; i < 3; ++i) (void)supervisor.process(synth_frame(r, 2), r);
    point_cloud tiny;
    for (int i = 0; i < 5; ++i) tiny.push_back({1.0, 1.0, static_cast<double>(i)});
    (void)supervisor.process(tiny, r);

    const health_counters h = supervisor.health();
    EXPECT_TRUE(h.accounted());
    EXPECT_EQ(h.frames_total, 4u);
    EXPECT_EQ(h.frames_dropped, 1u);
    EXPECT_EQ(h.truncated_frames, 1u);

    const telemetry::metrics_registry& reg = supervisor.metrics();
    EXPECT_EQ(h.frames_total, reg.find_counter("hawc_frames_total")->value());
    EXPECT_EQ(h.frames_ok, reg.find_counter("hawc_frames_ok_total")->value());
    EXPECT_EQ(h.frames_degraded, reg.find_counter("hawc_frames_degraded_total")->value());
    EXPECT_EQ(h.frames_dropped, reg.find_counter("hawc_frames_dropped_total")->value());
    EXPECT_EQ(h.truncated_frames, reg.find_counter("hawc_frames_truncated_total")->value());

    // The registry histogram and the legacy running_stats saw the same
    // frames.
    const telemetry::latency_histogram* frame_ms = reg.find_histogram("hawc_frame_ms");
    ASSERT_NE(frame_ms, nullptr);
    EXPECT_EQ(frame_ms->count(), h.frame_ms.count());
    EXPECT_NEAR(frame_ms->mean(), h.frame_ms.mean(), 1e-9);

    supervisor.reset_health();
    EXPECT_EQ(supervisor.health().frames_total, 0u);
    EXPECT_EQ(reg.find_counter("hawc_frames_total")->value(), 0u);
    EXPECT_EQ(supervisor.health().frame_ms.count(), 0u);
}

TEST(telemetry, health_counters_to_json_round_trips_the_counters) {
    health_counters h;
    h.frames_total = 10;
    h.frames_ok = 7;
    h.frames_degraded = 2;
    h.frames_dropped = 1;
    h.stale_counts_served = 1;
    h.frame_ms.add(2.0);
    h.frame_ms.add(4.0);

    const std::string json = h.to_json();
    EXPECT_NE(json.find("\"frames_total\":10"), std::string::npos);
    EXPECT_NE(json.find("\"frames_ok\":7"), std::string::npos);
    EXPECT_NE(json.find("\"frames_degraded\":2"), std::string::npos);
    EXPECT_NE(json.find("\"frames_dropped\":1"), std::string::npos);
    EXPECT_NE(json.find("\"stale_counts_served\":1"), std::string::npos);
    EXPECT_NE(json.find("\"latency_ms\""), std::string::npos);
    EXPECT_NE(json.find("\"frame\":{\"count\":2,\"mean\":3.000000"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace hawc
