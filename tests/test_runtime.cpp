// Tests for the fault-tolerant streaming runtime: the frame supervisor's
// degradation ladder, the sensor fault injector, degenerate inputs, and
// the 10k-frame chaos soak.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/supervisor.hpp"

namespace hawc {
namespace {

// Cheap deterministic classifier so runtime tests don't train a CNN:
// humans are tall-ish, compact clusters.
class extent_classifier final : public human_classifier {
public:
    bool is_human(const point_cloud& cluster, rng&) const override {
        if (cluster.empty()) return false;
        const vec3 extent = cluster.bounds().size();
        return extent.z > 0.7 && std::max(extent.x, extent.y) < 2.5;
    }
    std::string name() const override { return "ExtentGate"; }
};

class throwing_classifier final : public human_classifier {
public:
    bool is_human(const point_cloud&, rng&) const override {
        throw data_integrity_error{"primary classifier fault"};
    }
    std::string name() const override { return "AlwaysThrow"; }
};

// A synthetic pole capture: ground returns across the scan area plus
// person-sized blobs on the walkway. Much cheaper than a full beam-cast
// scan, with the same operative structure (ground at z = -3, people 12-35
// m out, ~120 returns per person).
point_cloud synth_frame(rng& r, std::size_t people) {
    point_cloud cloud;
    for (int i = 0; i < 400; ++i) {
        cloud.push_back({r.uniform(10.0, 36.0), r.uniform(-3.0, 3.0),
                         -3.0 + std::abs(r.normal(0.0, 0.05))});
    }
    for (std::size_t p = 0; p < people; ++p) {
        const double fx = r.uniform(14.0, 33.0);
        const double fy = r.uniform(-2.0, 2.0);
        const double height = r.uniform(1.5, 1.9);
        for (int i = 0; i < 120; ++i) {
            cloud.push_back({fx + r.normal(0.0, 0.12), fy + r.normal(0.0, 0.12),
                             -2.9 + r.uniform() * height});
        }
    }
    return cloud;
}

// --- Supervisor happy path ---

TEST(supervisor, clean_frames_stay_ok) {
    const extent_classifier classifier;
    frame_supervisor sup{{}, classifier};
    rng r{11};
    for (int i = 0; i < 20; ++i) {
        const frame_report report = sup.process(synth_frame(r, 1 + i % 3), r);
        EXPECT_EQ(report.status, frame_status::ok) << "frame " << i;
        EXPECT_TRUE(report.failures.empty());
        EXPECT_FALSE(report.used_fixed_eps);
        EXPECT_GE(report.count, 1u);
    }
    EXPECT_EQ(sup.health().frames_ok, 20u);
    EXPECT_EQ(sup.health().frames_total, 20u);
    EXPECT_TRUE(sup.health().accounted());
}

TEST(supervisor, empty_walkway_counts_zero_without_degrading) {
    const extent_classifier classifier;
    frame_supervisor sup{{}, classifier};
    rng r{12};
    const frame_report report = sup.process(synth_frame(r, 0), r);
    EXPECT_EQ(report.status, frame_status::ok);
    EXPECT_EQ(report.count, 0u);
}

// --- Degenerate inputs never escape the supervisor ---

TEST(supervisor, degenerate_inputs_never_throw) {
    const extent_classifier classifier;
    supervisor_config cfg;
    cfg.dedupe_points = false;  // let the identical points reach clustering
    frame_supervisor sup{cfg, classifier};
    rng r{13};

    point_cloud identical;
    for (int i = 0; i < 64; ++i) identical.push_back({20.0, 0.0, -1.5});
    point_cloud single{{{20.0, 0.0, -1.5}}};
    point_cloud poisoned = synth_frame(r, 1);
    poisoned.push_back({std::numeric_limits<double>::quiet_NaN(), 0.0, -1.5});

    const std::vector<const point_cloud*> clouds{&identical, &single, &poisoned};
    for (const point_cloud* cloud : clouds) {
        EXPECT_NO_THROW({
            const frame_report report = sup.process(*cloud, r);
            (void)report;
        });
    }
    EXPECT_NO_THROW(sup.process(point_cloud{}, r));
    EXPECT_TRUE(sup.health().accounted());
}

// --- Rung 1: fixed-eps fallback ---

TEST(supervisor, degenerate_elbow_falls_back_to_fixed_eps) {
    const extent_classifier classifier;
    supervisor_config cfg;
    cfg.dedupe_points = false;  // keep the duplicates that degenerate the elbow
    frame_supervisor sup{cfg, classifier};
    rng r{14};

    point_cloud identical;
    for (int i = 0; i < 64; ++i) identical.push_back({20.0, 0.0, -1.5});
    const frame_report report = sup.process(identical, r);

    EXPECT_TRUE(report.used_fixed_eps);
    EXPECT_EQ(report.status, frame_status::degraded);
    EXPECT_DOUBLE_EQ(report.chosen_eps, cfg.fallback_eps);
    EXPECT_EQ(sup.health().fixed_eps_fallbacks, 1u);
    ASSERT_FALSE(report.failures.empty());
    EXPECT_EQ(report.failures.back().kind, failure_kind::degenerate_elbow);
}

TEST(supervisor, eps_selection_deadline_forces_fixed_eps) {
    const extent_classifier classifier;
    supervisor_config cfg;
    cfg.eps_selection_deadline_ms = 1e-7;  // always over budget
    frame_supervisor sup{cfg, classifier};
    rng r{15};

    const frame_report report = sup.process(synth_frame(r, 2), r);
    EXPECT_TRUE(report.used_fixed_eps);
    EXPECT_EQ(report.status, frame_status::degraded);
    ASSERT_FALSE(report.failures.empty());
    EXPECT_EQ(report.failures.back().kind, failure_kind::stage_deadline);
    EXPECT_EQ(report.failures.back().stage, pipeline_stage::clustering);
}

// --- Rung 2: float-model fallback ---

TEST(supervisor, classifier_fault_rescued_by_fallback) {
    const throwing_classifier primary;
    const extent_classifier fallback;
    frame_supervisor sup{{}, primary, &fallback};
    rng r{16};

    const frame_report report = sup.process(synth_frame(r, 2), r);
    EXPECT_EQ(report.status, frame_status::degraded);
    EXPECT_TRUE(report.used_float_fallback);
    EXPECT_GE(report.count, 1u) << "fallback model should still see the people";
    EXPECT_GE(sup.health().float_model_fallbacks, 1u);
}

TEST(supervisor, classifier_fault_without_fallback_drops_frame) {
    const throwing_classifier primary;
    frame_supervisor sup{{}, primary};
    rng r{17};

    const frame_report report = sup.process(synth_frame(r, 2), r);
    EXPECT_EQ(report.status, frame_status::dropped);
    EXPECT_EQ(report.count, 0u);  // nothing to carry forward yet
    EXPECT_EQ(sup.health().frames_dropped, 1u);
}

// --- Rung 3: bounded stale-count carry-forward ---

TEST(supervisor, stale_count_served_with_cap) {
    const extent_classifier classifier;
    supervisor_config cfg;
    cfg.max_stale_frames = 3;
    frame_supervisor sup{cfg, classifier};
    rng r{18};

    const frame_report good = sup.process(synth_frame(r, 2), r);
    ASSERT_EQ(good.status, frame_status::ok);
    ASSERT_GE(good.count, 1u);

    point_cloud dead;  // total sensor outage: nothing arrives
    for (int i = 0; i < 3; ++i) {
        const frame_report stale = sup.process(dead, r);
        EXPECT_EQ(stale.status, frame_status::dropped);
        EXPECT_TRUE(stale.served_stale);
        EXPECT_EQ(stale.count, good.count) << "stale frame " << i;
    }
    const frame_report exhausted = sup.process(dead, r);
    EXPECT_EQ(exhausted.status, frame_status::dropped);
    EXPECT_FALSE(exhausted.served_stale);
    EXPECT_EQ(exhausted.count, 0u);
    EXPECT_EQ(sup.health().stale_counts_served, 3u);
    EXPECT_EQ(sup.health().stale_cap_exhausted, 1u);

    // Recovery resets the staleness budget.
    const frame_report recovered = sup.process(synth_frame(r, 1), r);
    EXPECT_EQ(recovered.status, frame_status::ok);
    const frame_report stale_again = sup.process(dead, r);
    EXPECT_TRUE(stale_again.served_stale);
    EXPECT_EQ(stale_again.count, recovered.count);
}

TEST(supervisor, health_epoch_makes_progress_monotonic_across_restarts) {
    const extent_classifier classifier;
    frame_supervisor sup{{}, classifier};
    rng r{19};

    sup.process(synth_frame(r, 1), r);
    sup.process(synth_frame(r, 2), r);
    const health_counters before = sup.health();
    EXPECT_EQ(before.epoch, 0u);
    EXPECT_EQ(before.frames_total, 2u);

    // A watchdog restart wipes the counters but bumps the epoch, so the
    // (epoch, frames_total) pair never moves backwards.
    sup.restart();
    const health_counters after = sup.health();
    EXPECT_EQ(after.epoch, 1u);
    EXPECT_EQ(after.frames_total, 0u);
    EXPECT_TRUE(progressed(before, after));
    EXPECT_FALSE(progressed(after, before));

    sup.process(synth_frame(r, 1), r);
    const health_counters resumed = sup.health();
    EXPECT_TRUE(progressed(after, resumed));
    EXPECT_TRUE(progressed(resumed, resumed));  // ties are not regressions

    // The restart also wiped the stale-count carry-forward: a dead frame
    // right after restart has nothing stale to serve... once the new
    // epoch's good count exists again, it does.
    frame_supervisor fresh{{}, classifier};
    fresh.process(synth_frame(r, 2), r);
    fresh.restart();
    const frame_report dead = fresh.process(point_cloud{}, r);
    EXPECT_FALSE(dead.served_stale);
    EXPECT_EQ(dead.count, 0u);
    EXPECT_EQ(fresh.health().epoch, 1u);

    // to_json carries the epoch for fleet-side monotonic checks.
    EXPECT_NE(fresh.health().to_json().find("\"epoch\":1"), std::string::npos);
}

TEST(supervisor, recovery_streak_hysteresis_drains_budget_while_flapping) {
    const extent_classifier classifier;
    supervisor_config cfg;
    cfg.max_stale_frames = 2;
    cfg.recovery_streak_frames = 2;  // one good frame is not a recovery
    frame_supervisor sup{cfg, classifier};
    rng r{20};
    point_cloud dead;

    ASSERT_EQ(sup.process(synth_frame(r, 2), r).status, frame_status::ok);

    // Alternating dead/good frames never build a 2-frame good streak, so
    // the staleness budget keeps draining instead of refilling.
    EXPECT_TRUE(sup.process(dead, r).served_stale);                       // 1 of 2
    EXPECT_EQ(sup.process(synth_frame(r, 1), r).status, frame_status::ok);
    EXPECT_TRUE(sup.process(dead, r).served_stale);                       // 2 of 2
    EXPECT_EQ(sup.process(synth_frame(r, 1), r).status, frame_status::ok);
    const frame_report exhausted = sup.process(dead, r);
    EXPECT_FALSE(exhausted.served_stale) << "flapping must not refill the budget";
    EXPECT_EQ(sup.health().stale_cap_exhausted, 1u);

    // Two consecutive good frames are a genuine recovery: budget refills.
    sup.process(synth_frame(r, 1), r);
    sup.process(synth_frame(r, 1), r);
    EXPECT_TRUE(sup.process(dead, r).served_stale);

    // The default config keeps the legacy single-frame refill.
    supervisor_config legacy;
    EXPECT_EQ(legacy.recovery_streak_frames, 1u);
}

// --- Watchdog: classification budget ---

TEST(supervisor, classification_deadline_truncates_cluster_loop) {
    const extent_classifier classifier;
    supervisor_config cfg;
    cfg.classification_deadline_ms = 1e-7;  // expires before the first cluster
    frame_supervisor sup{cfg, classifier};
    rng r{19};

    const frame_report report = sup.process(synth_frame(r, 3), r);
    EXPECT_EQ(report.status, frame_status::degraded);
    EXPECT_GE(sup.health().classification_truncations, 1u);
}

// --- Sanitization paths ---

TEST(supervisor, non_finite_points_degrade_but_still_count) {
    const extent_classifier classifier;
    frame_supervisor sup{{}, classifier};
    rng r{20};

    point_cloud frame = synth_frame(r, 2);
    const std::size_t clean_size = frame.size();
    for (int i = 0; i < 25; ++i) {
        frame.push_back({std::numeric_limits<double>::quiet_NaN(), 0.0,
                         std::numeric_limits<double>::infinity()});
    }
    const frame_report report = sup.process(frame, r);
    EXPECT_EQ(report.status, frame_status::degraded);
    EXPECT_GE(report.count, 1u);
    EXPECT_EQ(sup.health().non_finite_points_dropped, frame.size() - clean_size);
}

TEST(supervisor, duplicate_flood_detected_and_deduped) {
    const extent_classifier classifier;
    frame_supervisor sup{{}, classifier};
    rng base{21};
    point_cloud frame = synth_frame(base, 1);
    // A stuck beam re-reports one in-ROI return many times.
    const vec3 stuck{20.0, 0.5, -1.8};
    for (int i = 0; i < 300; ++i) frame.push_back(stuck);

    const frame_report report = sup.process(frame, base);
    EXPECT_EQ(report.status, frame_status::degraded);
    EXPECT_GE(sup.health().duplicate_points_dropped, 299u);
    ASSERT_FALSE(report.failures.empty());
    EXPECT_EQ(report.failures.front().kind, failure_kind::duplicate_points);
}

TEST(supervisor, below_ground_returns_flag_implausible_geometry) {
    const extent_classifier classifier;
    frame_supervisor sup{{}, classifier};
    rng r{22};
    point_cloud frame = synth_frame(r, 1);
    for (int i = 0; i < 40; ++i) {
        frame.push_back({r.uniform(12.0, 35.0), r.uniform(-2.0, 2.0), -4.5});
    }
    const frame_report report = sup.process(frame, r);
    EXPECT_EQ(report.status, frame_status::degraded);
    ASSERT_FALSE(report.failures.empty());
    EXPECT_EQ(report.failures.front().kind, failure_kind::implausible_geometry);
}

// --- Fault injector ---

TEST(fault_injection, each_kind_has_its_signature) {
    rng r{23};
    rng frame_rng{24};
    const point_cloud clean = synth_frame(frame_rng, 2);
    fault_injector injector;

    const point_cloud dropped = injector.apply(fault_kind::beam_dropout, clean, r);
    EXPECT_LT(dropped.size(), clean.size());

    const point_cloud jittered = injector.apply(fault_kind::range_jitter, clean, r);
    ASSERT_EQ(jittered.size(), clean.size());
    std::size_t moved = 0;
    for (std::size_t i = 0; i < clean.size(); ++i) {
        if (jittered[i].distance_to(clean[i]) > 1e-12) ++moved;
    }
    EXPECT_GT(moved, clean.size() / 2);

    const point_cloud poisoned = injector.apply(fault_kind::non_finite, clean, r);
    std::size_t non_finite = 0;
    for (const auto& p : poisoned) {
        if (!std::isfinite(p.x) || !std::isfinite(p.y) || !std::isfinite(p.z)) ++non_finite;
    }
    EXPECT_GT(non_finite, 0u);

    const point_cloud truncated = injector.apply(fault_kind::truncated_frame, clean, r);
    EXPECT_LE(truncated.size(), clean.size() / 10);

    const point_cloud duplicated = injector.apply(fault_kind::duplicate_points, clean, r);
    EXPECT_GT(duplicated.size(), clean.size());

    for (std::size_t k = 0; k < fault_kind_count; ++k) {
        EXPECT_EQ(injector.injected(static_cast<fault_kind>(k)), 1u);
    }
    EXPECT_EQ(injector.total_injected(), fault_kind_count);
}

TEST(fault_injection, flaky_classifier_throws_at_configured_rate) {
    const extent_classifier inner;
    const flaky_classifier flaky{inner, 0.5, 99};
    rng r{25};
    const point_cloud cluster{{{20.0, 0.0, -2.0}, {20.0, 0.0, -1.0}}};
    std::size_t threw = 0;
    for (int i = 0; i < 200; ++i) {
        try {
            (void)flaky.is_human(cluster, r);
        } catch (const data_integrity_error&) {
            ++threw;
        }
    }
    EXPECT_EQ(threw, flaky.faults_raised());
    EXPECT_GT(threw, 50u);
    EXPECT_LT(threw, 150u);
}

// --- Chaos soak: 10k fault-injected frames, fixed seed ---
//
// Asserts the headline robustness contract: zero exceptions escape the
// supervisor, every frame is accounted ok/degraded/dropped, every
// degradation rung fires, and every fault kind provokes at least one
// recorded ladder reaction.

TEST(chaos_soak, ten_thousand_injected_frames) {
    const extent_classifier model;
    // Primary occasionally faults like a corrupted quantized model would;
    // the fp32 stand-in rescues those clusters.
    const flaky_classifier primary{model, 0.02, 4242};

    supervisor_config cfg;
    // Chaos posture: tight eps ceiling so noise-flooded frames pin the
    // elbow and exercise the fixed-eps rung.
    cfg.capture.clustering.max_eps = 0.8;
    cfg.max_stale_frames = 4;
    frame_supervisor sup{cfg, primary, &model};

    fault_injection_config fcfg;
    fault_injector injector{fcfg};

    rng scene_rng{31};
    rng fault_rng{32};
    rng pipeline_rng{33};

    constexpr std::size_t frames = 10000;
    std::array<std::uint64_t, fault_kind_count> fault_frames{};
    std::array<std::uint64_t, fault_kind_count> ladder_reactions{};
    std::uint64_t clean_frames = 0;
    std::uint64_t clean_not_ok = 0;
    std::uint64_t escaped_exceptions = 0;

    for (std::size_t i = 0; i < frames; ++i) {
        const point_cloud base = synth_frame(scene_rng, scene_rng.uniform_index(5));
        const bool inject = (i % 2) == 1;
        const auto kind = static_cast<fault_kind>((i / 2) % fault_kind_count);
        const point_cloud frame = inject ? injector.apply(kind, base, fault_rng) : base;

        frame_report report;
        try {
            report = sup.process(frame, pipeline_rng);
        } catch (...) {
            ++escaped_exceptions;
            continue;
        }

        if (inject) {
            ++fault_frames[static_cast<std::size_t>(kind)];
            if (report.status != frame_status::ok || !report.failures.empty()) {
                ++ladder_reactions[static_cast<std::size_t>(kind)];
            }
        } else {
            ++clean_frames;
            if (report.status != frame_status::ok) ++clean_not_ok;
        }
    }

    EXPECT_EQ(escaped_exceptions, 0u);

    const health_counters& health = sup.health();
    EXPECT_EQ(health.frames_total, frames);
    EXPECT_TRUE(health.accounted())
        << "ok " << health.frames_ok << " + degraded " << health.frames_degraded
        << " + dropped " << health.frames_dropped << " != " << health.frames_total;

    // Every rung of the ladder fired.
    EXPECT_GT(health.fixed_eps_fallbacks, 0u);
    EXPECT_GT(health.float_model_fallbacks, 0u);
    EXPECT_GT(health.stale_counts_served, 0u);

    // Every fault kind provoked at least one recorded reaction.
    for (std::size_t k = 0; k < fault_kind_count; ++k) {
        EXPECT_GT(fault_frames[k], 900u);  // schedule sanity
        EXPECT_GT(ladder_reactions[k], 0u)
            << "no ladder reaction to " << to_string(static_cast<fault_kind>(k));
    }

    // Clean frames overwhelmingly stay on the full-quality path. The flaky
    // primary degrades a few percent of them by design.
    EXPECT_GT(clean_frames, 4900u);
    EXPECT_LT(static_cast<double>(clean_not_ok), 0.2 * static_cast<double>(clean_frames));

    // The counters tell a coherent story for postmortems.
    EXPECT_GT(health.non_finite_points_dropped, 0u);
    EXPECT_GT(health.duplicate_points_dropped, 0u);
    EXPECT_GT(health.truncated_frames, 0u);
    EXPECT_FALSE(health.summary().empty());
}

}  // namespace
}  // namespace hawc
