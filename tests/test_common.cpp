// Tests for the common substrate: RNG, statistics, tables, errors.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

namespace hawc {
namespace {

TEST(rng, deterministic_given_seed) {
    rng a{123};
    rng b{123};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(rng, different_seeds_diverge) {
    rng a{1};
    rng b{2};
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a() == b()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(rng, uniform_in_unit_interval) {
    rng r{7};
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(rng, uniform_range_respects_bounds) {
    rng r{9};
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(rng, uniform_index_unbiased_small_n) {
    rng r{11};
    int counts[5] = {0};
    for (int i = 0; i < 50000; ++i) ++counts[r.uniform_index(5)];
    for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(rng, normal_moments) {
    rng r{13};
    running_stats s;
    for (int i = 0; i < 20000; ++i) s.add(r.normal());
    EXPECT_NEAR(s.mean(), 0.0, 0.03);
    EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(rng, normal_with_params) {
    rng r{17};
    running_stats s;
    for (int i = 0; i < 20000; ++i) s.add(r.normal(5.0, 2.0));
    EXPECT_NEAR(s.mean(), 5.0, 0.1);
    EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(rng, chance_frequency) {
    rng r{19};
    int hits = 0;
    for (int i = 0; i < 10000; ++i) {
        if (r.chance(0.3)) ++hits;
    }
    EXPECT_NEAR(hits, 3000, 200);
}

TEST(rng, fork_produces_independent_stream) {
    rng a{23};
    rng child = a.fork();
    EXPECT_NE(a(), child());
}

TEST(running_stats, matches_direct_computation) {
    const double values[] = {1.0, 2.5, -3.0, 7.25, 0.0, 4.5};
    running_stats s;
    double sum = 0.0;
    for (double v : values) {
        s.add(v);
        sum += v;
    }
    const double mean = sum / 6.0;
    double var = 0.0;
    for (double v : values) var += (v - mean) * (v - mean);
    var /= 5.0;  // sample variance
    EXPECT_DOUBLE_EQ(s.mean(), mean);
    EXPECT_NEAR(s.variance(), var, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.25);
    EXPECT_EQ(s.count(), 6u);
}

TEST(running_stats, empty_is_zero) {
    running_stats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(running_stats, merge_equals_combined) {
    rng r{29};
    running_stats all;
    running_stats a;
    running_stats b;
    for (int i = 0; i < 500; ++i) {
        const double v = r.normal(2.0, 3.0);
        all.add(v);
        (i % 2 == 0 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.count(), all.count());
}

TEST(histogram, bins_and_clamping) {
    histogram h{0.0, 10.0, 10};
    h.add(0.5);   // bin 0
    h.add(9.99);  // bin 9
    h.add(-5.0);  // clamps to bin 0
    h.add(42.0);  // clamps to bin 9
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.count(9), 2u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(histogram, mode_bin) {
    histogram h{0.0, 3.0, 3};
    h.add(0.1);
    h.add(1.5);
    h.add(1.6);
    EXPECT_EQ(h.mode_bin(), 1u);
    EXPECT_NEAR(h.bin_center(1), 1.5, 1e-12);
}

TEST(histogram, rejects_bad_config) {
    EXPECT_THROW(histogram(1.0, 1.0, 4), invalid_argument_error);
    EXPECT_THROW(histogram(0.0, 1.0, 0), invalid_argument_error);
}

TEST(percentile, interpolates) {
    std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(percentile, rejects_empty_and_bad_p) {
    EXPECT_THROW(percentile({}, 50.0), invalid_argument_error);
    EXPECT_THROW(percentile({1.0}, 101.0), invalid_argument_error);
}

TEST(text_table, renders_aligned) {
    text_table t{{"a", "long-header"}};
    t.add_row({"xx", "1"});
    std::ostringstream out;
    t.print(out);
    const std::string s = out.str();
    EXPECT_NE(s.find("long-header"), std::string::npos);
    EXPECT_NE(s.find("xx"), std::string::npos);
    EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(text_table, rejects_wrong_arity) {
    text_table t{{"a", "b"}};
    EXPECT_THROW(t.add_row({"only-one"}), invalid_argument_error);
}

TEST(text_table, number_formatting) {
    EXPECT_EQ(text_table::num(3.14159, 2), "3.14");
    EXPECT_EQ(text_table::pm(1.5, 0.25, 2), "1.50 +/- 0.25");
}

TEST(stopwatch, measures_elapsed_time) {
    stopwatch sw;
    volatile double x = 0.0;
    for (int i = 0; i < 100000; ++i) x = x + std::sqrt(static_cast<double>(i));
    EXPECT_GT(sw.elapsed_ms(), 0.0);
}

TEST(latency_recorder, accumulates) {
    latency_recorder rec;
    rec.add_ms(1.0);
    rec.add_ms(3.0);
    EXPECT_DOUBLE_EQ(rec.mean_ms(), 2.0);
    EXPECT_EQ(rec.count(), 2u);
}

TEST(latency_recorder, tracks_min_and_max) {
    latency_recorder rec;
    EXPECT_DOUBLE_EQ(rec.min_ms(), 0.0);  // empty recorder reports zeros
    EXPECT_DOUBLE_EQ(rec.max_ms(), 0.0);
    rec.add_ms(5.0);
    rec.add_ms(1.0);
    rec.add_ms(3.0);
    EXPECT_DOUBLE_EQ(rec.min_ms(), 1.0);
    EXPECT_DOUBLE_EQ(rec.max_ms(), 5.0);
}

TEST(latency_recorder, single_sample_stddev_is_zero) {
    // running_stats guards the n-1 variance divisor, so one sample (or
    // none) reports stddev 0 instead of NaN/garbage.
    latency_recorder rec;
    EXPECT_DOUBLE_EQ(rec.stddev_ms(), 0.0);
    rec.add_ms(7.0);
    EXPECT_DOUBLE_EQ(rec.stddev_ms(), 0.0);
    rec.add_ms(9.0);
    EXPECT_GT(rec.stddev_ms(), 0.0);
    EXPECT_TRUE(std::isfinite(rec.stddev_ms()));
}

TEST(error, require_macro_throws_with_context) {
    try {
        HAWC_REQUIRE(1 == 2, "numbers disagree");
        FAIL() << "should have thrown";
    } catch (const invalid_argument_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("numbers disagree"), std::string::npos);
        EXPECT_NE(what.find("1 == 2"), std::string::npos);
    }
}

TEST(error, hierarchy) {
    EXPECT_THROW(throw io_error{"x"}, error);
    EXPECT_THROW(throw not_ready_error{"x"}, error);
}

}  // namespace
}  // namespace hawc
