// Tests for the scene simulation: human/object models, scene builders,
// and traffic schedules.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "sim/scene.hpp"
#include "sim/trajectory.hpp"

namespace hawc {
namespace {

aabb body_bounds(const std::vector<scene_primitive>& prims) {
    aabb box;
    for (const auto& p : prims) box.expand(shape_bounds(p.geometry));
    return box;
}

TEST(human_model, height_matches_parameter) {
    human_params p;
    p.height_m = 1.80;
    const auto body = make_human(p, {10.0, 0.0, -3.0}, 1);
    const aabb box = body_bounds(body);
    // Top of the head ~ stature; allow for the head sphere radius.
    EXPECT_NEAR(box.hi.z, -3.0 + 1.80, 0.15);
    EXPECT_NEAR(box.lo.z, -3.0, 0.15);
}

TEST(human_model, composed_of_six_parts) {
    const auto body = make_human(human_params{}, {0.0, 0.0, 0.0}, 3);
    EXPECT_EQ(body.size(), 6u);  // 2 legs, torso, 2 arms, head
    for (const auto& part : body) EXPECT_EQ(part.entity_id, 3);
}

TEST(human_model, height_distribution_clamps) {
    rng r{1};
    height_distribution dist;
    for (int i = 0; i < 2000; ++i) {
        const double h = dist.sample(r);
        EXPECT_GE(h, dist.min_m);
        EXPECT_LE(h, dist.max_m);
    }
}

TEST(human_model, sampled_params_plausible) {
    rng r{2};
    for (int i = 0; i < 100; ++i) {
        const human_params p = sample_human_params(r);
        EXPECT_GT(p.shoulder_width_m, 0.25);
        EXPECT_LT(p.shoulder_width_m, 0.60);
        EXPECT_GE(p.stride_phase, 0.0);
        EXPECT_LT(p.stride_phase, 1.0);
        EXPECT_GT(p.reflectivity, 0.0);
        EXPECT_LE(p.reflectivity, 1.0);
    }
}

TEST(object_models, every_kind_builds) {
    rng r{3};
    for (const auto kind : all_object_kinds) {
        const auto prims = make_object(kind, {15.0, 0.0, -3.0}, 9, r);
        EXPECT_FALSE(prims.empty()) << to_string(kind);
        for (const auto& p : prims) EXPECT_EQ(p.entity_id, 9);
        const aabb box = body_bounds(prims);
        EXPECT_FALSE(box.empty());
        // All objects sit on or near the ground.
        EXPECT_LT(box.lo.z, -2.0);
    }
}

TEST(object_models, kind_names_unique) {
    std::set<std::string> names;
    for (const auto kind : all_object_kinds) names.insert(to_string(kind));
    EXPECT_EQ(names.size(), std::size(all_object_kinds));
}

TEST(object_models, sampler_covers_kinds) {
    rng r{4};
    std::set<object_kind> seen;
    for (int i = 0; i < 500; ++i) seen.insert(sample_object_kind(r));
    EXPECT_EQ(seen.size(), std::size(all_object_kinds));
}

TEST(scene, add_human_and_object_registry) {
    scene s;
    rng r{5};
    const int h = s.add_human(human_params{}, {14.0, 1.0, -3.0});
    const int o = s.add_object(object_kind::trash_bin, {20.0, -1.0, -3.0}, r);
    EXPECT_NE(h, o);
    EXPECT_EQ(s.human_count(), 1u);
    EXPECT_EQ(s.object_count(), 1u);
    EXPECT_EQ(s.entities()[0].kind, entity_kind::human);
    EXPECT_EQ(s.entities()[1].kind, entity_kind::object);
    EXPECT_FALSE(s.primitives().empty());
}

TEST(scene, walkway_positions_inside_bounds) {
    rng r{6};
    const walkway_config walkway;
    for (int i = 0; i < 500; ++i) {
        const vec3 p = sample_walkway_position(r, walkway);
        EXPECT_GE(p.x, walkway.x_min_m);
        EXPECT_LE(p.x, walkway.x_max_m);
        EXPECT_GE(p.y, -walkway.y_half_width_m);
        EXPECT_LE(p.y, walkway.y_half_width_m);
        EXPECT_DOUBLE_EQ(p.z, walkway.ground_z());
    }
}

TEST(scene, single_person_scene_has_one_human) {
    rng r{7};
    const scene s = make_single_person_scene(r);
    EXPECT_EQ(s.human_count(), 1u);
}

TEST(scene, object_scene_has_no_humans) {
    rng r{8};
    const scene s = make_object_scene(r, 4);
    EXPECT_EQ(s.human_count(), 0u);
    EXPECT_EQ(s.object_count(), 4u);
}

TEST(scene, crowd_scene_counts) {
    rng r{9};
    const scene s = make_crowd_scene(r, 5, 3);
    EXPECT_EQ(s.human_count(), 5u);
    EXPECT_EQ(s.object_count(), 3u);
}

TEST(scene, crowd_scene_respects_separation_at_low_density) {
    rng r{10};
    const scene s = make_crowd_scene(r, 6, 0, walkway_config{}, 0.9);
    const auto& entities = s.entities();
    for (std::size_t i = 0; i < entities.size(); ++i) {
        for (std::size_t j = i + 1; j < entities.size(); ++j) {
            const double dx = entities[i].ground_position.x - entities[j].ground_position.x;
            const double dy = entities[i].ground_position.y - entities[j].ground_position.y;
            EXPECT_GE(std::hypot(dx, dy), 0.9 * 0.999);
        }
    }
}

TEST(trajectory, schedule_counts_bounded_by_arrivals) {
    rng r{11};
    const traffic_schedule schedule{r, 300.0, 12.0};
    // Counts at any instant cannot exceed total walks.
    const std::size_t total = schedule.walks().size();
    EXPECT_GT(total, 0u);
    for (double t = 0.0; t < 300.0; t += 10.0) {
        EXPECT_LE(schedule.count_at(t), total);
    }
}

TEST(trajectory, scene_at_matches_count) {
    rng r{12};
    const traffic_schedule schedule{r, 120.0, 20.0};
    rng scene_rng{13};
    for (double t = 5.0; t < 120.0; t += 17.0) {
        const scene s = schedule.scene_at(t, scene_rng);
        EXPECT_EQ(s.human_count(), schedule.count_at(t));
    }
}

TEST(trajectory, walkers_cross_the_walkway) {
    rng r{14};
    const walkway_config walkway;
    const traffic_schedule schedule{r, 600.0, 6.0, walkway};
    for (const auto& walk : schedule.walks()) {
        const vec3 start = walk.position_at(walk.enter_time_s);
        const vec3 end = walk.position_at(walk.exit_time_s);
        EXPECT_NEAR(std::abs(start.y), walkway.y_half_width_m, 1e-9);
        EXPECT_NEAR(std::abs(end.y), walkway.y_half_width_m, 1e-6);
        EXPECT_LT(start.y * end.y, 0.0);  // opposite sides
    }
}

TEST(trajectory, zero_rate_produces_no_walks) {
    rng r{15};
    const traffic_schedule schedule{r, 100.0, 0.0};
    EXPECT_TRUE(schedule.walks().empty());
    EXPECT_EQ(schedule.count_at(50.0), 0u);
}

}  // namespace
}  // namespace hawc
