// Tests for the chunked compressed corpus container (replay/container)
// and its byte codec (replay/codec): codec identity on empty / tiny /
// incompressible / highly-redundant / adversarial inputs, bounds-checked
// decoding of corrupted and truncated token streams (clean io_error,
// never UB), bit-exact container round trips for corpora and pole corpus
// sets, random access through the chunk index, the LRU streaming bound
// (a sequential walk decodes each chunk exactly once), an exhaustive
// single-byte corruption + truncation sweep over a whole container file,
// and replay parity: a packed corpus replays bit-identically to its
// envelope original, solo and through a fleet.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "fleet/fleet_manager.hpp"
#include "replay/codec.hpp"
#include "replay/container.hpp"
#include "replay/corpus_set.hpp"
#include "replay/replay_driver.hpp"

namespace hawc::replay {
namespace {

// ---- helpers -------------------------------------------------------------

std::vector<char> to_bytes(const std::string& s) {
    return std::vector<char>(s.begin(), s.end());
}

/// Compress + decompress, asserting the identity.
void expect_codec_identity(const std::vector<char>& input) {
    const std::vector<char> packed = lz_compress(input.data(), input.size());
    ASSERT_LE(packed.size(), lz_max_compressed_size(input.size()));
    const std::vector<char> unpacked =
        lz_decompress(packed.data(), packed.size(), input.size());
    EXPECT_EQ(unpacked, input);
}

// Synthetic pole capture in round_to_recorded (float32) precision, so
// container round trips are exact identities like envelope ones.
point_cloud synth_frame(rng& r, std::size_t people) {
    point_cloud cloud;
    for (int i = 0; i < 180; ++i) {
        cloud.push_back({r.uniform(10.0, 36.0), r.uniform(-3.0, 3.0),
                         -3.0 + std::abs(r.normal(0.0, 0.05))});
    }
    for (std::size_t p = 0; p < people; ++p) {
        const double fx = r.uniform(14.0, 33.0);
        const double fy = r.uniform(-2.0, 2.0);
        const double height = r.uniform(1.5, 1.9);
        for (int i = 0; i < 90; ++i) {
            cloud.push_back({fx + r.normal(0.0, 0.12), fy + r.normal(0.0, 0.12),
                             -2.9 + r.uniform() * height});
        }
    }
    return round_to_recorded(cloud);
}

frame_corpus synth_corpus(std::uint64_t base_seed, std::size_t frames) {
    frame_corpus corpus;
    corpus.name = "synth";
    corpus.base_seed = base_seed;
    rng r{base_seed ^ 0xc0ffeeull};
    for (std::size_t i = 0; i < frames; ++i) {
        frame_record rec;
        const auto people = static_cast<std::size_t>(r.uniform_index(4));
        rec.ground_truth = static_cast<std::uint32_t>(people);
        rec.cloud = synth_frame(r, people);
        corpus.frames.push_back(std::move(rec));
    }
    return corpus;
}

pole_corpus_set synth_set(std::size_t poles, std::size_t frames) {
    pole_corpus_set set;
    set.name = "synth-set";
    for (std::size_t i = 0; i < poles; ++i) {
        pole_corpus pc;
        // Two appends: GCC 12's -Wrestrict false-positives on
        // operator+(const char*, std::string&&) at -O3.
        pc.pole_id = "p";
        pc.pole_id += std::to_string(i);
        pc.corpus = synth_corpus(900 + i, frames);
        set.poles.push_back(std::move(pc));
    }
    return set;
}

class extent_classifier final : public human_classifier {
public:
    bool is_human(const point_cloud& cluster, rng&) const override {
        if (cluster.empty()) return false;
        const vec3 extent = cluster.bounds().size();
        return extent.z > 0.7 && std::max(extent.x, extent.y) < 2.5;
    }
    std::string name() const override { return "ExtentGate"; }
};

supervisor_config det_config() {
    supervisor_config cfg;
    cfg.eps_selection_deadline_ms = 0.0;
    cfg.classification_deadline_ms = 0.0;
    cfg.frame_deadline_ms = 0.0;
    return cfg;
}

// ---- codec: identity -----------------------------------------------------

TEST(codec, empty_input_round_trips) { expect_codec_identity({}); }

TEST(codec, inputs_below_min_match_round_trip) {
    for (const char* s : {"a", "ab", "abc", "abcd", "abcde"}) {
        expect_codec_identity(to_bytes(s));
    }
}

TEST(codec, redundant_input_compresses_and_round_trips) {
    std::string text;
    for (int i = 0; i < 400; ++i) text += "the pole counted a crowd; ";
    const std::vector<char> input = to_bytes(text);
    const std::vector<char> packed = lz_compress(input.data(), input.size());
    EXPECT_LT(packed.size(), input.size() / 4) << "repetitive text should shrink >4x";
    EXPECT_EQ(lz_decompress(packed.data(), packed.size(), input.size()), input);
}

TEST(codec, rle_style_runs_round_trip) {
    // Long single-byte and two-byte runs exercise the overlapping-match
    // (offset < match length) decode path.
    for (const std::size_t n : {std::size_t{5}, std::size_t{64}, std::size_t{100000}}) {
        expect_codec_identity(std::vector<char>(n, 'x'));
        std::vector<char> alt;
        for (std::size_t i = 0; i < n; ++i) alt.push_back(i % 2 ? 'a' : 'b');
        expect_codec_identity(alt);
    }
}

TEST(codec, incompressible_input_round_trips_within_bound) {
    rng r{123};
    std::vector<char> noise;
    for (int i = 0; i < 300000; ++i) {
        noise.push_back(static_cast<char>(r.uniform_index(256)));
    }
    const std::vector<char> packed = lz_compress(noise.data(), noise.size());
    ASSERT_LE(packed.size(), lz_max_compressed_size(noise.size()));
    EXPECT_EQ(lz_decompress(packed.data(), packed.size(), noise.size()), noise);
}

TEST(codec, property_random_structured_inputs_round_trip) {
    // Fuzz-ish sweep: random mixtures of literal noise, repeated blocks
    // and long-range copies — the shapes the match finder must handle.
    rng r{20260809};
    for (int iter = 0; iter < 60; ++iter) {
        std::vector<char> input;
        const std::size_t pieces = 1 + r.uniform_index(12);
        for (std::size_t p = 0; p < pieces; ++p) {
            switch (r.uniform_index(3)) {
                case 0: {  // noise
                    const std::size_t n = r.uniform_index(2000);
                    for (std::size_t i = 0; i < n; ++i) {
                        input.push_back(static_cast<char>(r.uniform_index(256)));
                    }
                    break;
                }
                case 1: {  // byte run
                    const std::size_t n = r.uniform_index(5000);
                    input.insert(input.end(), n, static_cast<char>(r.uniform_index(256)));
                    break;
                }
                default: {  // copy of an earlier window (long-range match)
                    if (input.empty()) break;
                    const std::size_t start = r.uniform_index(input.size());
                    const std::size_t len =
                        std::min(input.size() - start, 1 + r.uniform_index(4000));
                    std::vector<char> copy(input.begin() + static_cast<std::ptrdiff_t>(start),
                                           input.begin() +
                                               static_cast<std::ptrdiff_t>(start + len));
                    input.insert(input.end(), copy.begin(), copy.end());
                    break;
                }
            }
        }
        expect_codec_identity(input);
    }
}

// ---- codec: bounds-checked decode ----------------------------------------

TEST(codec, decompress_rejects_wrong_output_size) {
    const std::vector<char> input = to_bytes("abcdefgh abcdefgh abcdefgh abcdefgh!");
    const std::vector<char> packed = lz_compress(input.data(), input.size());
    EXPECT_THROW(lz_decompress(packed.data(), packed.size(), input.size() - 1), io_error);
    EXPECT_THROW(lz_decompress(packed.data(), packed.size(), input.size() + 1), io_error);
    EXPECT_THROW(lz_decompress(packed.data(), packed.size(), 0), io_error);
}

TEST(codec, decompress_survives_arbitrary_corruption) {
    // Every single-byte flip and every truncation of a real token stream
    // must either throw io_error or produce exactly dst_size bytes —
    // never scribble out of bounds (the ASan/UBSan phase would flag it).
    std::string text;
    for (int i = 0; i < 40; ++i) text += "pole " + std::to_string(i % 7) + " count; ";
    const std::vector<char> input = to_bytes(text);
    std::vector<char> packed = lz_compress(input.data(), input.size());

    std::vector<char> out(input.size());
    for (std::size_t i = 0; i < packed.size(); ++i) {
        for (const char flip : {char(0xff), char(0x01), char(0x80)}) {
            std::vector<char> bad = packed;
            bad[i] = static_cast<char>(bad[i] ^ flip);
            try {
                lz_decompress_into(bad.data(), bad.size(), out.data(), out.size());
            } catch (const io_error&) {
                // clean rejection is the expected common case
            }
        }
    }
    for (std::size_t keep = 0; keep < packed.size(); ++keep) {
        try {
            lz_decompress_into(packed.data(), keep, out.data(), out.size());
            // One benign truncation exists: when the input ends on a
            // match, the stream carries a redundant empty terminal token,
            // and dropping it still decodes completely. A "successful"
            // truncated decode must therefore be byte-identical to the
            // original — anything else is a decoder bug.
            EXPECT_EQ(out, input) << "truncated stream of " << keep
                                  << " bytes decoded to different data";
        } catch (const io_error&) {
            // clean rejection: the expected outcome at almost every length
        }
    }
}

TEST(codec, decompress_rejects_adversarial_streams) {
    std::vector<char> out(64);
    // Token demanding literals the input does not carry.
    const std::vector<char> hungry = {char(0xf0), char(0xff)};
    EXPECT_THROW(lz_decompress_into(hungry.data(), hungry.size(), out.data(), out.size()),
                 io_error);
    // Match referencing before the start of the output (offset too big).
    const std::vector<char> back = {char(0x14), 'a', char(0x50), char(0x00), char(0x00)};
    EXPECT_THROW(lz_decompress_into(back.data(), back.size(), out.data(), out.size()),
                 io_error);
    // Zero offset (self-copy) is always invalid.
    const std::vector<char> zero = {char(0x14), 'a', char(0x00), char(0x00), char(0x00)};
    EXPECT_THROW(lz_decompress_into(zero.data(), zero.size(), out.data(), out.size()),
                 io_error);
    // Random garbage, many seeds: any outcome but UB.
    rng r{77};
    for (int iter = 0; iter < 200; ++iter) {
        std::vector<char> junk;
        const std::size_t n = 1 + r.uniform_index(64);
        for (std::size_t i = 0; i < n; ++i) {
            junk.push_back(static_cast<char>(r.uniform_index(256)));
        }
        try {
            lz_decompress_into(junk.data(), junk.size(), out.data(), out.size());
        } catch (const io_error&) {
        }
    }
}

// ---- container: round trips ----------------------------------------------

TEST(container, corpus_round_trips_bit_exactly_across_chunk_sizes) {
    const frame_corpus corpus = synth_corpus(41, 9);
    for (const std::size_t frames_per_chunk : {std::size_t{1}, std::size_t{2},
                                               std::size_t{4}, std::size_t{64}}) {
        std::ostringstream out;
        pack_corpus(out, corpus, {.frames_per_chunk = frames_per_chunk});
        std::istringstream in{out.str()};
        container_reader reader{in};
        EXPECT_EQ(reader.kind(), container_kind::corpus);
        EXPECT_EQ(reader.title(), corpus.name);
        ASSERT_EQ(reader.stream_count(), 1u);
        EXPECT_EQ(reader.frame_count(0), corpus.size());
        const std::size_t expect_chunks =
            (corpus.size() + frames_per_chunk - 1) / frames_per_chunk;
        EXPECT_EQ(reader.chunks().size(), expect_chunks) << frames_per_chunk;
        EXPECT_EQ(unpack_corpus(reader), corpus) << frames_per_chunk;
    }
}

TEST(container, corpus_set_round_trips_bit_exactly) {
    const pole_corpus_set set = synth_set(3, 7);
    std::ostringstream out;
    pack_corpus_set(out, set, {.frames_per_chunk = 3});
    std::istringstream in{out.str()};
    container_reader reader{in};
    EXPECT_EQ(reader.kind(), container_kind::corpus_set);
    ASSERT_EQ(reader.stream_count(), set.pole_count());
    for (std::uint32_t s = 0; s < set.pole_count(); ++s) {
        EXPECT_EQ(reader.stream(s).pole_id, set.poles[s].pole_id);
        EXPECT_EQ(reader.stream(s).base_seed, set.poles[s].corpus.base_seed);
    }
    EXPECT_EQ(unpack_corpus_set(reader), set);
}

TEST(container, empty_corpus_round_trips) {
    frame_corpus corpus;
    corpus.name = "empty";
    corpus.base_seed = 5;
    std::ostringstream out;
    pack_corpus(out, corpus);
    std::istringstream in{out.str()};
    container_reader reader{in};
    EXPECT_EQ(reader.frame_count(0), 0u);
    EXPECT_EQ(reader.chunks().size(), 0u);
    EXPECT_EQ(unpack_corpus(reader), corpus);
}

TEST(container, random_access_serves_any_frame) {
    const frame_corpus corpus = synth_corpus(43, 10);
    std::ostringstream out;
    pack_corpus(out, corpus, {.frames_per_chunk = 3});
    std::istringstream in{out.str()};
    container_reader reader{in};
    // Deliberately cache-hostile order: alternate ends, then re-read.
    const std::size_t order[] = {9, 0, 5, 2, 8, 1, 9, 0, 4, 6, 3, 7};
    for (const std::size_t i : order) {
        EXPECT_EQ(reader.frame(0, i), corpus.frames[i]) << i;
    }
    EXPECT_THROW(reader.frame(0, corpus.size()), io_error);
    EXPECT_THROW(reader.frame(1, 0), invalid_argument_error);
}

TEST(container, sequential_walk_decodes_each_chunk_once) {
    const frame_corpus corpus = synth_corpus(47, 12);
    std::ostringstream out;
    pack_corpus(out, corpus, {.frames_per_chunk = 3});
    std::istringstream in{out.str()};
    container_reader reader{in};
    ASSERT_EQ(reader.chunks().size(), 4u);
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        EXPECT_EQ(reader.frame(0, i), corpus.frames[i]);
        EXPECT_EQ(reader.cached_chunk_count(), 1u) << "streaming bound violated at " << i;
    }
    EXPECT_EQ(reader.chunks_decoded(), 4u) << "sequential walk should decode each chunk once";
}

TEST(container, lru_cache_capacity_bounds_residency) {
    const pole_corpus_set set = synth_set(3, 6);
    std::ostringstream out;
    pack_corpus_set(out, set, {.frames_per_chunk = 2});
    std::istringstream in{out.str()};
    container_reader reader{in, {.cached_chunks = 3}};
    // Round-robin across 3 streams: with capacity == stream count each
    // stream's hot chunk stays resident, so every chunk decodes once.
    for (std::size_t f = 0; f < 6; ++f) {
        for (std::uint32_t s = 0; s < 3; ++s) {
            EXPECT_EQ(reader.frame(s, f), set.poles[s].corpus.frames[f]);
        }
        EXPECT_LE(reader.cached_chunk_count(), 3u);
    }
    EXPECT_EQ(reader.chunks_decoded(), reader.chunks().size());
}

TEST(container, incompressible_chunks_are_stored_raw_and_compression_can_be_disabled) {
    const frame_corpus corpus = synth_corpus(53, 4);  // float noise: incompressible
    std::ostringstream packed_out;
    pack_corpus(packed_out, corpus);
    std::ostringstream raw_out;
    pack_corpus(raw_out, corpus, {.compress = false});
    // The codec can only ever shrink the file: raw fallback means the
    // compressed container is never larger than the uncompressed one.
    EXPECT_LE(packed_out.str().size(), raw_out.str().size());
    std::istringstream in{raw_out.str()};
    container_reader reader{in};
    for (const chunk_entry& chunk : reader.chunks()) {
        EXPECT_EQ(chunk.codec, chunk_codec::raw);
        EXPECT_EQ(chunk.stored_size, chunk.uncompressed_size);
    }
    EXPECT_EQ(unpack_corpus(reader), corpus);
}

TEST(container, writer_enforces_protocol) {
    std::ostringstream out;
    container_writer writer{out, container_kind::corpus, "t"};
    EXPECT_THROW(writer.append(0, frame_record{}), invalid_argument_error);  // no stream
    const std::uint32_t s = writer.add_stream("", "t", 1);
    writer.append(s, frame_record{});
    writer.finalize();
    EXPECT_TRUE(writer.finalized());
    EXPECT_THROW(writer.append(s, frame_record{}), invalid_argument_error);  // finalized
    EXPECT_THROW(writer.finalize(), invalid_argument_error);  // double finalize
}

// ---- container: corruption sweep -----------------------------------------

TEST(container, every_single_byte_flip_is_detected) {
    const frame_corpus corpus = synth_corpus(59, 3);
    std::ostringstream out;
    pack_corpus(out, corpus, {.frames_per_chunk = 2});
    const std::string bytes = out.str();

    // Every byte of the file is covered by a validation: header fields,
    // chunk checksums, the index checksum, or the footer's exact-fit and
    // magic checks. Flipping any one byte must surface as io_error — at
    // open or at the frame read that touches the poisoned chunk.
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        std::string bad = bytes;
        bad[i] = static_cast<char>(bad[i] ^ 0xff);
        std::istringstream in{bad};
        EXPECT_THROW(
            {
                container_reader reader{in};
                for (std::uint32_t s = 0; s < reader.stream_count(); ++s) {
                    for (std::uint64_t f = 0; f < reader.frame_count(s); ++f) {
                        (void)reader.frame(s, f);
                    }
                }
            },
            io_error)
            << "byte " << i << " of " << bytes.size();
    }
}

TEST(container, every_truncation_is_detected) {
    const frame_corpus corpus = synth_corpus(61, 3);
    std::ostringstream out;
    pack_corpus(out, corpus, {.frames_per_chunk = 2});
    const std::string bytes = out.str();
    for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
        std::istringstream in{bytes.substr(0, keep)};
        EXPECT_THROW(
            {
                container_reader reader{in};
                for (std::uint64_t f = 0; f < reader.frame_count(0); ++f) {
                    (void)reader.frame(0, f);
                }
            },
            io_error)
            << "kept " << keep << " of " << bytes.size();
    }
}

TEST(container, rejects_header_tampering) {
    const frame_corpus corpus = synth_corpus(67, 2);
    std::ostringstream out;
    pack_corpus(out, corpus);
    const std::string bytes = out.str();

    auto patched = [&](std::size_t offset, std::uint16_t value) {
        std::string bad = bytes;
        std::memcpy(bad.data() + offset, &value, sizeof(value));
        return bad;
    };
    {  // future version
        std::istringstream in{patched(4, container_version + 1)};
        EXPECT_THROW(container_reader{in}, io_error);
    }
    {  // unknown header flags
        std::istringstream in{patched(6, 0x0001)};
        EXPECT_THROW(container_reader{in}, io_error);
    }
    {  // an envelope is not a container
        std::istringstream in{std::string{"HWFR then some junk that is long enough....."}};
        EXPECT_THROW(container_reader{in}, io_error);
    }
}

// ---- container: replay parity --------------------------------------------

TEST(container, replay_container_matches_replay_corpus_bit_for_bit) {
    const frame_corpus corpus = synth_corpus(71, 8);
    const extent_classifier classifier;

    frame_supervisor baseline_sup{det_config(), classifier};
    const replay_result baseline = replay_corpus(baseline_sup, corpus);

    std::ostringstream out;
    pack_corpus(out, corpus, {.frames_per_chunk = 3});
    std::istringstream in{out.str()};
    container_reader reader{in};
    frame_supervisor packed_sup{det_config(), classifier};
    const replay_result packed = replay_container(packed_sup, reader);

    ASSERT_EQ(packed.reports.size(), baseline.reports.size());
    for (std::size_t i = 0; i < baseline.reports.size(); ++i) {
        EXPECT_EQ(packed.reports[i].count, baseline.reports[i].count) << i;
        EXPECT_EQ(packed.reports[i].status, baseline.reports[i].status) << i;
    }
    EXPECT_EQ(packed.total_count, baseline.total_count);
    EXPECT_EQ(packed.absolute_count_error, baseline.absolute_count_error);
}

TEST(container, fleet_replay_from_container_matches_materialized_set) {
    const pole_corpus_set set = synth_set(3, 10);
    const extent_classifier classifier;

    auto make_fleet = [&]() {
        std::vector<fleet::pole_setup> setups(set.pole_count());
        for (std::size_t i = 0; i < set.pole_count(); ++i) {
            setups[i].pole_id = set.poles[i].pole_id;
            setups[i].seed = set.poles[i].corpus.base_seed;
            setups[i].supervisor = det_config();
            setups[i].primary = &classifier;
        }
        auto fleet = std::make_unique<fleet::fleet_manager>(fleet::fleet_config{}, setups);
        for (std::size_t i = 0; i < set.pole_count(); ++i) {
            fleet->pole(i).set_record_history(true);
        }
        return fleet;
    };

    auto baseline_fleet = make_fleet();
    const auto baseline = replay_corpus_set(*baseline_fleet, set, 8);

    std::ostringstream out;
    pack_corpus_set(out, set, {.frames_per_chunk = 4});
    std::istringstream in{out.str()};
    container_reader reader{in};
    auto packed_fleet = make_fleet();
    const auto packed = fleet::replay_container_set(*packed_fleet, reader, 8);

    EXPECT_EQ(packed.ticks, baseline.ticks);
    EXPECT_EQ(packed.frames_submitted, baseline.frames_submitted);
    // Round-robin streaming widened the cache to one chunk per pole.
    EXPECT_EQ(reader.cache_capacity(), set.pole_count());
    EXPECT_EQ(reader.chunks_decoded(), reader.chunks().size());
    for (std::size_t p = 0; p < set.pole_count(); ++p) {
        const auto& want = baseline_fleet->pole(p).history();
        const auto& got = packed_fleet->pole(p).history();
        ASSERT_EQ(got.size(), want.size()) << "pole " << p;
        for (std::size_t f = 0; f < want.size(); ++f) {
            EXPECT_EQ(got[f].count, want[f].count) << "pole " << p << " frame " << f;
            EXPECT_EQ(got[f].status, want[f].status) << "pole " << p << " frame " << f;
        }
    }
    EXPECT_EQ(baseline_fleet->snapshot().aggregate, packed_fleet->snapshot().aggregate);
}

TEST(container, fleet_replay_rejects_mismatched_containers) {
    const pole_corpus_set set = synth_set(2, 3);
    const extent_classifier classifier;
    std::vector<fleet::pole_setup> setups(2);
    for (std::size_t i = 0; i < 2; ++i) {
        setups[i].pole_id = set.poles[i].pole_id;
        setups[i].seed = set.poles[i].corpus.base_seed;
        setups[i].supervisor = det_config();
        setups[i].primary = &classifier;
    }
    fleet::fleet_manager fleet{{}, setups};

    {  // a plain corpus container is not a corpus set
        std::ostringstream out;
        pack_corpus(out, set.poles[0].corpus);
        std::istringstream in{out.str()};
        container_reader reader{in};
        EXPECT_THROW(fleet::replay_container_set(fleet, reader), invalid_argument_error);
    }
    {  // stream seeds must match the fleet's pole seeds
        pole_corpus_set reseeded = set;
        reseeded.poles[1].corpus.base_seed ^= 1;
        std::ostringstream out;
        pack_corpus_set(out, reseeded);
        std::istringstream in{out.str()};
        container_reader reader{in};
        EXPECT_THROW(fleet::replay_container_set(fleet, reader), invalid_argument_error);
    }
}

}  // namespace
}  // namespace hawc::replay
