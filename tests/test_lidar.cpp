// Tests for primitives (ray intersection), the sensor model, and scanner.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "lidar/primitives.hpp"
#include "lidar/scanner.hpp"
#include "lidar/sensor_model.hpp"

namespace hawc {
namespace {

constexpr double tol = 1e-9;

TEST(primitives, sphere_head_on) {
    const ray r{{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}};
    const sphere s{{5.0, 0.0, 0.0}, 1.0};
    const auto t = intersect(r, s);
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 4.0, tol);
}

TEST(primitives, sphere_miss) {
    const ray r{{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}};
    EXPECT_FALSE(intersect(r, sphere{{5.0, 3.0, 0.0}, 1.0}).has_value());
}

TEST(primitives, sphere_from_inside) {
    const ray r{{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}};
    const auto t = intersect(r, sphere{{0.0, 0.0, 0.0}, 2.0});
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 2.0, tol);
}

TEST(primitives, sphere_behind_ray) {
    const ray r{{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}};
    EXPECT_FALSE(intersect(r, sphere{{-5.0, 0.0, 0.0}, 1.0}).has_value());
}

TEST(primitives, box_head_on_and_miss) {
    const ray r{{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}};
    const box b{{{2.0, -1.0, -1.0}, {3.0, 1.0, 1.0}}};
    const auto t = intersect(r, b);
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 2.0, tol);
    const ray miss{{0.0, 5.0, 0.0}, {1.0, 0.0, 0.0}};
    EXPECT_FALSE(intersect(miss, b).has_value());
}

TEST(primitives, box_axis_parallel_inside_slab) {
    // Ray parallel to y within the box's y-extent.
    const ray r{{2.5, -5.0, 0.0}, {0.0, 1.0, 0.0}};
    const box b{{{2.0, -1.0, -1.0}, {3.0, 1.0, 1.0}}};
    const auto t = intersect(r, b);
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 4.0, tol);
}

TEST(primitives, capsule_cylinder_body) {
    const capsule c{{5.0, 0.0, -1.0}, {5.0, 0.0, 1.0}, 0.5};
    const ray r{{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}};
    const auto t = intersect(r, c);
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 4.5, tol);
}

TEST(primitives, capsule_end_cap) {
    const capsule c{{5.0, 0.0, 0.0}, {5.0, 0.0, 3.0}, 0.5};
    // Ray aimed below the segment start: must hit the spherical cap.
    const ray r{{0.0, 0.0, -0.4}, vec3{1.0, 0.0, 0.0}};
    const auto t = intersect(r, c);
    ASSERT_TRUE(t.has_value());
    const vec3 hit = r.at(*t);
    EXPECT_NEAR(hit.distance_to({5.0, 0.0, 0.0}), 0.5, 1e-6);
}

TEST(primitives, degenerate_capsule_is_sphere) {
    const capsule c{{5.0, 0.0, 0.0}, {5.0, 0.0, 0.0}, 1.0};
    const ray r{{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}};
    const auto t = intersect(r, c);
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 4.0, tol);
}

TEST(primitives, vertical_cylinder_side) {
    const vertical_cylinder c{{5.0, 0.0, -1.0}, 2.0, 0.5};
    const ray r{{0.0, 0.0, 0.0}, {1.0, 0.0, 0.0}};
    const auto t = intersect(r, c);
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 4.5, tol);
}

TEST(primitives, vertical_cylinder_height_limits) {
    const vertical_cylinder c{{5.0, 0.0, 0.0}, 1.0, 0.5};
    // Ray passes above the cylinder.
    const ray r{{0.0, 0.0, 2.0}, {1.0, 0.0, 0.0}};
    EXPECT_FALSE(intersect(r, c).has_value());
}

TEST(primitives, vertical_cylinder_top_disk) {
    const vertical_cylinder c{{5.0, 0.0, 0.0}, 1.0, 0.5};
    const ray down{{5.0, 0.0, 5.0}, {0.0, 0.0, -1.0}};
    const auto t = intersect(down, c);
    ASSERT_TRUE(t.has_value());
    EXPECT_NEAR(*t, 4.0, tol);
}

TEST(primitives, hit_point_lies_on_surface_property) {
    rng r{99};
    for (int trial = 0; trial < 200; ++trial) {
        const sphere s{{r.uniform(-5.0, 5.0), r.uniform(-5.0, 5.0), r.uniform(-5.0, 5.0)},
                       r.uniform(0.2, 2.0)};
        const vec3 dir =
            vec3{r.normal(), r.normal(), r.normal()}.normalized();
        const ray beam{{r.uniform(-20.0, -10.0), 0.0, 0.0}, dir};
        if (const auto t = intersect(beam, s)) {
            EXPECT_NEAR(beam.at(*t).distance_to(s.center), s.radius, 1e-6);
        }
    }
}

TEST(primitives, shape_bounds_contain_hits) {
    rng r{123};
    const shape shapes[] = {
        sphere{{1.0, 2.0, 3.0}, 0.7},
        capsule{{0.0, 0.0, 0.0}, {1.0, 1.0, 1.0}, 0.3},
        box{{{-1.0, -1.0, -1.0}, {1.0, 1.0, 1.0}}},
        vertical_cylinder{{2.0, 2.0, 0.0}, 1.5, 0.4},
    };
    for (const auto& s : shapes) {
        const aabb bounds = shape_bounds(s);
        for (int trial = 0; trial < 100; ++trial) {
            const vec3 dir = vec3{r.normal(), r.normal(), r.normal()}.normalized();
            const ray beam{{r.uniform(-8.0, 8.0), r.uniform(-8.0, 8.0), r.uniform(-8.0, 8.0)},
                           dir};
            if (const auto t = intersect(beam, s)) {
                const vec3 hit = beam.at(*t);
                EXPECT_LE(bounds.distance_sq(hit), 1e-9);
            }
        }
    }
}

TEST(sensor_model, beam_count_and_directions) {
    sensor_config cfg;
    cfg.channels = 8;
    cfg.azimuth_steps = 16;
    const beam_table table{cfg};
    EXPECT_EQ(table.size(), 8u * 16u);
    for (const auto& b : table.beams()) {
        EXPECT_NEAR(b.direction.norm(), 1.0, 1e-12);
        EXPECT_LT(b.channel, 8u);
        EXPECT_LT(b.azimuth_step, 16u);
    }
}

TEST(sensor_model, elevation_band_respected) {
    sensor_config cfg;
    cfg.channels = 16;
    cfg.azimuth_steps = 4;
    cfg.vertical_fov_deg = 20.0;
    cfg.vertical_center_deg = -10.0;
    const beam_table table{cfg};
    for (const auto& b : table.beams()) {
        const double elevation_deg = std::asin(b.direction.z) * 180.0 / std::numbers::pi;
        EXPECT_GE(elevation_deg, -20.0 - 1e-9);
        EXPECT_LE(elevation_deg, 0.0 + 1e-9);
    }
}

TEST(sensor_model, azimuth_sector_respected) {
    sensor_config cfg;
    cfg.azimuth_start_deg = -45.0;
    cfg.azimuth_fov_deg = 90.0;
    cfg.channels = 4;
    cfg.azimuth_steps = 32;
    const beam_table table{cfg};
    for (const auto& b : table.beams()) {
        const double azimuth_deg =
            std::atan2(b.direction.y, b.direction.x) * 180.0 / std::numbers::pi;
        EXPECT_GE(azimuth_deg, -45.0 - 1e-9);
        EXPECT_LE(azimuth_deg, 45.0 + 1e-9);
    }
}

TEST(sensor_model, rejects_degenerate_configs) {
    sensor_config cfg;
    cfg.channels = 1;
    EXPECT_THROW(beam_table{cfg}, invalid_argument_error);
}

TEST(sensor_model, return_probability_decreases_with_range) {
    const sensor_config cfg;
    const double near = return_probability(cfg, 10.0, 0.8);
    const double mid = return_probability(cfg, 25.0, 0.8);
    const double far = return_probability(cfg, 45.0, 0.8);
    EXPECT_GT(near, mid);
    EXPECT_GT(mid, far);
    EXPECT_GE(far, 0.0);
    EXPECT_LE(near, 1.0);
}

TEST(sensor_model, return_probability_scales_with_reflectivity) {
    const sensor_config cfg;
    EXPECT_GT(return_probability(cfg, 20.0, 0.9), return_probability(cfg, 20.0, 0.3));
}

TEST(scanner, ground_returns_at_mount_height) {
    sensor_config cfg;
    cfg.channels = 8;
    cfg.azimuth_steps = 64;
    cfg.range_noise_sigma_m = 0.0;
    const scanner s{cfg};
    rng r{1};
    scan_options opts;
    opts.ground_noise_sigma_m = 0.0;
    const auto result = s.scan({}, r, opts);
    ASSERT_FALSE(result.returns.empty());
    for (const auto& ret : result.returns) {
        EXPECT_EQ(ret.entity_id, ground_entity_id);
        EXPECT_NEAR(ret.position.z, -cfg.mount_height_m, 1e-6);
    }
}

TEST(scanner, no_ground_when_disabled) {
    sensor_config cfg;
    cfg.channels = 8;
    cfg.azimuth_steps = 32;
    const scanner s{cfg};
    rng r{2};
    scan_options opts;
    opts.include_ground = false;
    EXPECT_TRUE(s.scan({}, r, opts).returns.empty());
}

TEST(scanner, entity_attribution_and_occlusion) {
    sensor_config cfg;
    cfg.channels = 32;
    cfg.azimuth_steps = 256;
    cfg.range_noise_sigma_m = 0.0;
    const scanner s{cfg};
    rng r{3};

    // A wall in front of a sphere: the sphere must receive no returns.
    std::vector<scene_primitive> scene;
    scene.push_back({box{{{10.0, -3.0, -3.0}, {10.2, 3.0, 3.0}}}, 1, 1.0});
    scene.push_back({sphere{{20.0, 0.0, 0.0}, 1.0}, 2, 1.0});

    scan_options opts;
    opts.include_ground = false;
    const auto result = s.scan(scene, r, opts);
    ASSERT_FALSE(result.returns.empty());
    for (const auto& ret : result.returns) EXPECT_EQ(ret.entity_id, 1);
    EXPECT_TRUE(result.entity_cloud(2).empty());
    EXPECT_FALSE(result.entity_cloud(1).empty());
}

TEST(scanner, deterministic_given_seed) {
    const scanner s{sensor_config{}};
    std::vector<scene_primitive> scene;
    scene.push_back({sphere{{20.0, 0.0, -1.0}, 0.8}, 7, 0.9});
    rng r1{42};
    rng r2{42};
    const auto a = s.scan(scene, r1);
    const auto b = s.scan(scene, r2);
    ASSERT_EQ(a.returns.size(), b.returns.size());
    for (std::size_t i = 0; i < a.returns.size(); ++i) {
        EXPECT_EQ(a.returns[i].position, b.returns[i].position);
    }
}

TEST(scanner, far_targets_return_fewer_points) {
    sensor_config cfg;
    cfg.range_noise_sigma_m = 0.0;
    const scanner s{cfg};
    scan_options opts;
    opts.include_ground = false;

    auto count_for = [&](double distance) {
        std::vector<scene_primitive> scene;
        scene.push_back({sphere{{distance, 0.0, -1.5}, 0.5}, 1, 0.8});
        rng r{11};
        return s.scan(scene, r, opts).returns.size();
    };
    // Angular shrinkage plus dropout: returns fall sharply with range.
    EXPECT_GT(count_for(13.0), 2 * count_for(30.0));
}

TEST(scan_result, to_cloud_matches_returns) {
    scan_result result;
    result.returns.push_back({{1.0, 2.0, 3.0}, 3.7, 5, 0});
    result.returns.push_back({{4.0, 5.0, 6.0}, 8.8, 6, 1});
    const point_cloud cloud = result.to_cloud();
    ASSERT_EQ(cloud.size(), 2u);
    EXPECT_EQ(cloud[0], (vec3{1.0, 2.0, 3.0}));
}

}  // namespace
}  // namespace hawc
