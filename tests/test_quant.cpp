// Tests for int8 post-training quantization: parameter math, calibration,
// and fp32-vs-int8 agreement of full model conversions.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "nn/activations.hpp"
#include "nn/batch_norm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pooling.hpp"
#include "nn/sequential.hpp"
#include "quant/calibrate.hpp"
#include "quant/q_model.hpp"
#include "quant/q_types.hpp"

namespace hawc {
namespace {

tensor random_tensor(std::vector<std::size_t> shape, rng& r, double scale = 1.0) {
    tensor t{std::move(shape)};
    for (std::size_t i = 0; i < t.size(); ++i) {
        t[i] = static_cast<float>(r.normal(0.0, scale));
    }
    return t;
}

TEST(quant_params, from_range_covers_zero) {
    const auto p = quant_params::from_range(0.5f, 2.0f);  // lo pushed to 0
    EXPECT_EQ(p.quantize(0.0f), p.zero_point);
    EXPECT_NEAR(p.dequantize(p.quantize(2.0f)), 2.0f, p.scale);
}

TEST(quant_params, symmetric_range) {
    const auto p = quant_params::from_range(-1.0f, 1.0f);
    EXPECT_NEAR(p.dequantize(p.quantize(0.7f)), 0.7f, p.scale);
    EXPECT_NEAR(p.dequantize(p.quantize(-0.7f)), -0.7f, p.scale);
}

TEST(quant_params, clamps_out_of_range) {
    const auto p = quant_params::from_range(-1.0f, 1.0f);
    EXPECT_EQ(p.quantize(100.0f), 127);
    EXPECT_EQ(p.quantize(-100.0f), -128);
}

TEST(quant_params, quantization_error_bounded_by_scale) {
    rng r{1};
    const auto p = quant_params::from_range(-3.0f, 5.0f);
    for (int i = 0; i < 500; ++i) {
        const float v = static_cast<float>(r.uniform(-3.0, 5.0));
        EXPECT_LE(std::abs(p.dequantize(p.quantize(v)) - v), p.scale * 0.5f + 1e-6f);
    }
}

TEST(quant_params, degenerate_range) {
    const auto p = quant_params::from_range(0.0f, 0.0f);
    EXPECT_GT(p.scale, 0.0f);
    EXPECT_EQ(p.quantize(0.0f), p.zero_point);
}

TEST(range_observer, tracks_min_max) {
    range_observer obs;
    tensor t{{3}};
    t[0] = -2.0f;
    t[1] = 0.5f;
    t[2] = 7.0f;
    obs.observe(t);
    EXPECT_FLOAT_EQ(obs.lo, -2.0f);
    EXPECT_FLOAT_EQ(obs.hi, 7.0f);
    tensor t2{{1}};
    t2[0] = -5.0f;
    obs.observe(t2);
    EXPECT_FLOAT_EQ(obs.lo, -5.0f);
}

TEST(q_tensor, roundtrip) {
    rng r{2};
    const tensor original = random_tensor({2, 3}, r, 2.0);
    const auto params = quant_params::from_range(-6.0f, 6.0f);
    const q_tensor q = quantize_tensor(original, params);
    const tensor back = dequantize_tensor(q);
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_NEAR(back[i], original[i], params.scale);
    }
}

/// Build, calibrate, and compare a conv net's int8 path to fp32.
TEST(quantize_model, conv_net_agreement) {
    rng r{3};
    sequential net;
    net.emplace<conv2d>(3, 8, 3, padding::same, r);
    net.emplace<batch_norm>(8);
    net.emplace<relu>();
    net.emplace<max_pool2d>(2);
    net.emplace<conv2d>(8, 12, 3, padding::same, r);
    net.emplace<batch_norm>(12);
    net.emplace<relu>();
    net.emplace<flatten>();
    net.emplace<dense>(12 * 4 * 4, 16, r);
    net.emplace<relu>();
    net.emplace<dense>(16, 2, r);

    // Put BN stats somewhere realistic.
    for (int i = 0; i < 20; ++i) (void)net.forward(random_tensor({8, 8, 8, 3}, r), true);

    std::vector<tensor> calibration;
    for (int i = 0; i < 32; ++i) calibration.push_back(random_tensor({1, 8, 8, 3}, r));
    const quantized_model q = quantize_model(net, calibration);

    // Argmax agreement on fresh inputs.
    std::size_t agree = 0;
    const std::size_t trials = 60;
    for (std::size_t i = 0; i < trials; ++i) {
        const tensor x = random_tensor({1, 8, 8, 3}, r);
        const tensor fp = net.forward(x, false);
        const tensor qo = q.forward(x);
        const bool fp_pos = fp.at(0, 1) > fp.at(0, 0);
        const bool q_pos = qo.at(0, 1) > qo.at(0, 0);
        if (fp_pos == q_pos) ++agree;
        // Logits stay in the same ballpark.
        EXPECT_NEAR(qo.at(0, 0), fp.at(0, 0), 0.6f + 0.3f * std::abs(fp.at(0, 0)));
    }
    EXPECT_GE(agree, trials * 9 / 10);
}

TEST(quantize_model, pointnet_style_net) {
    rng r{4};
    sequential net;
    net.emplace<conv2d>(3, 16, 1, padding::valid, r);
    net.emplace<batch_norm>(16);
    net.emplace<relu>();
    net.emplace<conv2d>(16, 32, 1, padding::valid, r);
    net.emplace<batch_norm>(32);
    net.emplace<relu>();
    net.emplace<global_max_pool>();
    net.emplace<flatten>();
    net.emplace<dense>(32, 2, r);
    for (int i = 0; i < 10; ++i) (void)net.forward(random_tensor({4, 20, 1, 3}, r), true);

    std::vector<tensor> calibration;
    for (int i = 0; i < 16; ++i) calibration.push_back(random_tensor({1, 20, 1, 3}, r));
    const quantized_model q = quantize_model(net, calibration);

    std::size_t agree = 0;
    for (int i = 0; i < 40; ++i) {
        const tensor x = random_tensor({1, 20, 1, 3}, r);
        const tensor fp = net.forward(x, false);
        const tensor qo = q.forward(x);
        if ((fp.at(0, 1) > fp.at(0, 0)) == (qo.at(0, 1) > qo.at(0, 0))) ++agree;
    }
    EXPECT_GE(agree, 34);
}

TEST(quantize_model, dense_only_net) {
    rng r{5};
    sequential net;
    net.emplace<dense>(10, 24, r);
    net.emplace<relu>();
    net.emplace<dense>(24, 8, r);
    net.emplace<relu>();
    net.emplace<dense>(8, 2, r);

    std::vector<tensor> calibration;
    for (int i = 0; i < 16; ++i) calibration.push_back(random_tensor({1, 10}, r));
    const quantized_model q = quantize_model(net, calibration);
    EXPECT_EQ(q.op_count(), 3u);

    std::size_t agree = 0;
    for (int i = 0; i < 40; ++i) {
        const tensor x = random_tensor({1, 10}, r);
        const tensor fp = net.forward(x, false);
        const tensor qo = q.forward(x);
        if ((fp.at(0, 1) > fp.at(0, 0)) == (qo.at(0, 1) > qo.at(0, 0))) ++agree;
    }
    EXPECT_GE(agree, 36);
}

TEST(quantize_model, batched_inference) {
    rng r{6};
    sequential net;
    net.emplace<dense>(4, 6, r);
    net.emplace<relu>();
    net.emplace<dense>(6, 2, r);
    std::vector<tensor> calibration{random_tensor({1, 4}, r), random_tensor({1, 4}, r)};
    const quantized_model q = quantize_model(net, calibration);
    const tensor batch = random_tensor({5, 4}, r);
    const tensor out = q.forward(batch);
    EXPECT_EQ(out.dim(0), 5u);
    EXPECT_EQ(out.dim(1), 2u);
}

TEST(quantize_model, op_infos_track_shapes) {
    rng r{7};
    sequential net;
    net.emplace<conv2d>(2, 4, 3, padding::same, r);
    net.emplace<relu>();
    net.emplace<max_pool2d>(2);
    net.emplace<flatten>();
    net.emplace<dense>(4 * 3 * 3, 2, r);
    std::vector<tensor> calibration{random_tensor({1, 6, 6, 2}, r)};
    const quantized_model q = quantize_model(net, calibration);
    const auto infos = q.op_infos({6, 6, 2});
    ASSERT_EQ(infos.size(), 4u);  // conv(+relu), pool, flatten, dense
    EXPECT_EQ(infos[0].kind, op_kind::convolution);
    EXPECT_EQ(infos[0].macs, 6u * 6 * 4 * 3 * 3 * 2);
    EXPECT_EQ(infos[3].kind, op_kind::dense);
    EXPECT_EQ(infos[3].macs, 36u * 2);
}

TEST(quantize_model, relu_fusion_clamps_negative) {
    rng r{8};
    sequential net;
    net.emplace<dense>(2, 4, r);
    net.emplace<relu>();
    net.emplace<dense>(4, 2, r);
    std::vector<tensor> calibration;
    for (int i = 0; i < 8; ++i) calibration.push_back(random_tensor({1, 2}, r));
    const quantized_model q = quantize_model(net, calibration);
    EXPECT_EQ(q.op_count(), 2u);  // relu fused into the first dense
    const auto& op = std::get<q_dense_op>(q.op_at(0));
    EXPECT_TRUE(op.fused_relu);
}

TEST(quantize_model, rejects_empty_calibration) {
    rng r{9};
    sequential net;
    net.emplace<dense>(2, 2, r);
    EXPECT_THROW(quantize_model(net, {}), invalid_argument_error);
}

TEST(range_observer, skips_non_finite_values) {
    range_observer obs;
    tensor t{{1, 6}};
    t[0] = 1.5f;
    t[1] = std::numeric_limits<float>::quiet_NaN();
    t[2] = -2.0f;
    t[3] = std::numeric_limits<float>::infinity();
    t[4] = -std::numeric_limits<float>::infinity();
    t[5] = 0.5f;
    obs.observe(t);
    EXPECT_FLOAT_EQ(obs.lo, -2.0f);
    EXPECT_FLOAT_EQ(obs.hi, 1.5f);
    const quant_params p = obs.params();
    EXPECT_TRUE(std::isfinite(p.scale));
    EXPECT_GT(p.scale, 0.0f);
}

TEST(range_observer, all_non_finite_yields_usable_params) {
    range_observer obs;
    tensor t{{1, 2}};
    t[0] = std::numeric_limits<float>::quiet_NaN();
    t[1] = std::numeric_limits<float>::infinity();
    obs.observe(t);
    // Nothing finite was seen: params degrade to the degenerate-range
    // default rather than a NaN scale.
    const quant_params p = obs.params();
    EXPECT_TRUE(std::isfinite(p.scale));
    EXPECT_GT(p.scale, 0.0f);
}

TEST(quant_params, non_finite_inputs_quantize_deterministically) {
    const quant_params p = quant_params::from_range(-1.0f, 3.0f);
    EXPECT_EQ(p.quantize(std::numeric_limits<float>::quiet_NaN()),
              static_cast<std::int8_t>(p.zero_point));
    EXPECT_EQ(p.quantize(std::numeric_limits<float>::infinity()), 127);
    EXPECT_EQ(p.quantize(-std::numeric_limits<float>::infinity()), -128);
}

TEST(quant_params, from_range_survives_non_finite_bounds) {
    const quant_params p =
        quant_params::from_range(std::numeric_limits<float>::quiet_NaN(),
                                 std::numeric_limits<float>::infinity());
    EXPECT_TRUE(std::isfinite(p.scale));
    EXPECT_GT(p.scale, 0.0f);
    EXPECT_EQ(p.quantize(0.0f), p.zero_point);
}

TEST(quantize_model, nan_calibration_sample_does_not_poison_model) {
    rng r{21};
    sequential net;
    net.emplace<dense>(4, 6, r);
    net.emplace<relu>();
    net.emplace<dense>(6, 2, r);

    std::vector<tensor> calibration;
    for (int i = 0; i < 8; ++i) calibration.push_back(random_tensor({1, 4}, r));
    // One poisoned sample: a NaN and an Inf land in the input observer and
    // every activation observer downstream.
    calibration.push_back(random_tensor({1, 4}, r));
    calibration.back()[0] = std::numeric_limits<float>::quiet_NaN();
    calibration.back()[2] = std::numeric_limits<float>::infinity();

    const quantized_model q = quantize_model(net, calibration);
    const tensor out = q.forward(random_tensor({1, 4}, r));
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_TRUE(std::isfinite(out[i])) << "logit " << i << " is non-finite";
    }
}

TEST(quantize_model, dense_rows_identical_across_thread_counts) {
    rng r{22};
    sequential net;
    net.emplace<dense>(32, 48, r);
    net.emplace<relu>();
    net.emplace<dense>(48, 2, r);
    std::vector<tensor> calibration;
    for (int i = 0; i < 8; ++i) calibration.push_back(random_tensor({1, 32}, r));
    const quantized_model q = quantize_model(net, calibration);
    const tensor batch = random_tensor({7, 32}, r);

    const std::size_t original = global_pool().thread_count();
    set_global_thread_count(1);
    const tensor reference = q.forward(batch);
    for (std::size_t threads : {2u, 3u, 5u, 8u}) {
        set_global_thread_count(threads);
        EXPECT_EQ(q.forward(batch), reference) << "at " << threads << " threads";
    }
    set_global_thread_count(original);
}

TEST(quantize_model, conv_relu_without_batch_norm_fuses) {
    rng r{23};
    sequential net;
    net.emplace<conv2d>(2, 4, 3, padding::same, r);
    net.emplace<relu>();  // no batch_norm between conv and relu
    net.emplace<flatten>();
    net.emplace<dense>(4 * 4 * 4, 2, r);  // trailing dense, no relu after

    std::vector<tensor> calibration;
    for (int i = 0; i < 8; ++i) calibration.push_back(random_tensor({1, 4, 4, 2}, r));
    const quantized_model q = quantize_model(net, calibration);

    ASSERT_EQ(q.op_count(), 3u);  // conv(+relu), flatten, dense
    const auto& conv_op = std::get<q_conv_op>(q.op_at(0));
    EXPECT_TRUE(conv_op.fused_relu);
    const auto& dense_op = std::get<q_dense_op>(q.op_at(2));
    EXPECT_FALSE(dense_op.fused_relu);

    // The grouping still computes the right thing: fused conv+relu output
    // matches fp32 argmax on most fresh inputs.
    std::size_t agree = 0;
    for (int i = 0; i < 40; ++i) {
        const tensor x = random_tensor({1, 4, 4, 2}, r);
        const tensor fp = net.forward(x, false);
        const tensor qo = q.forward(x);
        if ((fp.at(0, 1) > fp.at(0, 0)) == (qo.at(0, 1) > qo.at(0, 0))) ++agree;
    }
    EXPECT_GE(agree, 34);
}

TEST(quantize_model, rejects_unsupported_layer) {
    rng r{24};
    sequential net;
    net.emplace<dense>(4, 4, r);
    net.emplace<batch_norm>(4);   // bn after dense is fine (folded)...
    net.emplace<relu>();
    net.emplace<batch_norm>(4);   // ...but a standalone bn has no home
    std::vector<tensor> calibration{random_tensor({1, 4}, r)};
    EXPECT_THROW(quantize_model(net, calibration), invalid_argument_error);
}

TEST(quantize_model, weight_scales_per_channel) {
    rng r{10};
    sequential net;
    net.emplace<dense>(4, 3, r);
    // Blow up one output channel's weights: its scale must be larger.
    auto* fc = dynamic_cast<dense*>(&net.layer_at(0));
    ASSERT_NE(fc, nullptr);
    for (std::size_t i = 0; i < 4; ++i) fc->weights().value[i * 3 + 1] *= 50.0f;

    std::vector<tensor> calibration{random_tensor({1, 4}, r)};
    const quantized_model q = quantize_model(net, calibration);
    const auto& op = std::get<q_dense_op>(q.op_at(0));
    EXPECT_GT(op.weight_scales[1], op.weight_scales[0] * 10.0f);
    EXPECT_GT(op.weight_scales[1], op.weight_scales[2] * 10.0f);
}

// saturate_to_int8 is the single rounding point of the quantization stack
// (quantize_tensor and the int32-accumulator requantize in q_model). Pin
// the contract — half-away-from-zero, saturating — so a refactor to
// std::rint (round-to-even) or a truncating cast cannot slip in silently.
TEST(quant_params, rounding_is_half_away_from_zero) {
    quant_params p;  // scale 1, zero_point 0: quantize(x) == round(x)
    EXPECT_EQ(p.quantize(0.5f), 1);    // round-to-even would give 0
    EXPECT_EQ(p.quantize(1.5f), 2);
    EXPECT_EQ(p.quantize(2.5f), 3);    // round-to-even would give 2
    EXPECT_EQ(p.quantize(-0.5f), -1);  // truncation would give 0
    EXPECT_EQ(p.quantize(-2.5f), -3);
    EXPECT_EQ(p.quantize(0.49f), 0);
    EXPECT_EQ(p.quantize(-0.49f), 0);
}

TEST(quant_params, saturates_at_int8_endpoints) {
    quant_params p;
    EXPECT_EQ(p.quantize(127.4f), 127);
    EXPECT_EQ(p.quantize(127.5f), 127);  // would round to 128: saturates
    EXPECT_EQ(p.quantize(1000.0f), 127);
    EXPECT_EQ(p.quantize(-128.4f), -128);
    EXPECT_EQ(p.quantize(-1000.0f), -128);
    // Magnitudes past int32 range must still saturate, not overflow.
    EXPECT_EQ(saturate_to_int8(3.0e9f), 127);
    EXPECT_EQ(saturate_to_int8(-3.0e9f), -128);
}

TEST(quantize_model, dense_requantize_rounding_pinned) {
    // Hand-built 1x1 dense op with unit scales so every value is exactly
    // representable: acc = q_in * w, real = acc + bias. bias = 0.5 parks
    // `real` on the rounding boundary of the int32 -> int8 requantize.
    q_dense_op op;
    op.in_features = 1;
    op.out_features = 1;
    op.weights = {1};
    op.weight_scales = {1.0f};
    op.bias = {0.5f};

    quantized_model model;
    model.set_input_params(quant_params{});  // scale 1, zero_point 0
    model.add_op(op);

    tensor in{{1, 1}};
    in[0] = 2.0f;  // acc = 2, real = 2.5 -> half away from zero -> 3
    EXPECT_EQ(model.forward(in)[0], 3.0f);
    in[0] = -3.0f;  // real = -2.5 -> -3, not -2
    EXPECT_EQ(model.forward(in)[0], -3.0f);
    in[0] = 200.0f;  // input saturates to 127, real = 127.5 -> stays 127
    EXPECT_EQ(model.forward(in)[0], 127.0f);
}

}  // namespace
}  // namespace hawc
