// Tests for the observability layer: the structured event log (ring,
// severity floor, deterministic per-kind rate limiting, multi-writer
// conservation under TSan), the black-box flight recorder and its
// checksummed postmortem bundles (save/load round-trip, corruption
// detection, bit-exact replay through replay_driver), the SLO alert
// engine (grammar, burn-rate windows, hysteresis), build-info metrics,
// and the full quarantine drill on an 8-pole fleet.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <thread>

#include "common/error.hpp"
#include "fleet/fleet_manager.hpp"
#include "obs/build_info.hpp"
#include "obs/event_log.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/postmortem.hpp"
#include "obs/slo.hpp"
#include "replay/frame_format.hpp"
#include "replay/replay_driver.hpp"
#include "telemetry/export.hpp"

namespace hawc {
namespace {

using telemetry::event;
using telemetry::event_kind;
using telemetry::event_severity;
using telemetry::make_event;

// Same deterministic pipeline helpers as test_fleet.cpp: an extent-gate
// classifier, synthetic frames, and zeroed wall-clock deadlines.
class extent_classifier final : public human_classifier {
public:
    bool is_human(const point_cloud& cluster, rng&) const override {
        if (cluster.empty()) return false;
        const vec3 extent = cluster.bounds().size();
        return extent.z > 0.7 && std::max(extent.x, extent.y) < 2.5;
    }
    std::string name() const override { return "ExtentGate"; }
};

point_cloud synth_frame(rng& r, std::size_t people) {
    point_cloud cloud;
    for (int i = 0; i < 220; ++i) {
        cloud.push_back({r.uniform(10.0, 36.0), r.uniform(-3.0, 3.0),
                         -3.0 + std::abs(r.normal(0.0, 0.05))});
    }
    for (std::size_t p = 0; p < people; ++p) {
        const double fx = r.uniform(14.0, 33.0);
        const double fy = r.uniform(-2.0, 2.0);
        const double height = r.uniform(1.5, 1.9);
        for (int i = 0; i < 100; ++i) {
            cloud.push_back({fx + r.normal(0.0, 0.12), fy + r.normal(0.0, 0.12),
                             -2.9 + r.uniform() * height});
        }
    }
    return cloud;
}

supervisor_config det_config() {
    supervisor_config cfg;
    cfg.eps_selection_deadline_ms = 0.0;
    cfg.classification_deadline_ms = 0.0;
    cfg.frame_deadline_ms = 0.0;
    return cfg;
}

// Frames pre-rounded to the recorded float32 precision: the flight
// recorder's bit-exactness contract (like the PR4 corpus one) holds when
// the pole processed exactly what the bundle will store.
replay::frame_corpus synth_corpus(std::uint64_t base_seed, std::size_t frames) {
    replay::frame_corpus corpus;
    corpus.name = "synth";
    corpus.base_seed = base_seed;
    rng r{base_seed ^ 0xc0ffeeull};
    for (std::size_t i = 0; i < frames; ++i) {
        replay::frame_record rec;
        const auto people = static_cast<std::size_t>(r.uniform_index(4));
        rec.ground_truth = static_cast<std::uint32_t>(people);
        rec.cloud = replay::round_to_recorded(synth_frame(r, people));
        corpus.frames.push_back(std::move(rec));
    }
    return corpus;
}

fleet::link_message corpus_message(const replay::frame_corpus& corpus,
                                   std::size_t frame) {
    fleet::link_message msg;
    msg.frame_index = frame;
    msg.ground_truth = corpus.frames[frame].ground_truth;
    msg.cloud = corpus.frames[frame].cloud;
    return msg;
}

std::filesystem::path temp_path(const char* stem) {
    return std::filesystem::temp_directory_path() / (std::string{stem} + ".hawcpm");
}

// --- structured event log ---

TEST(obs_events, publish_retains_in_order_with_payload) {
    obs::event_log log{{.capacity = 8, .burst = 0.0}};

    event ev = make_event(event_kind::stage_failure, event_severity::warning, "elbow");
    ev.frame = 7;
    ev.tick = 3;
    ev.set_pole("p2");
    ev.add_field("eps", 0.35);
    EXPECT_TRUE(log.publish(ev));
    EXPECT_TRUE(log.publish(make_event(event_kind::frame_dropped, event_severity::error)));

    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, event_kind::stage_failure);
    EXPECT_EQ(events[0].frame, 7u);
    EXPECT_EQ(events[0].pole_view(), "p2");
    EXPECT_EQ(events[0].what_view(), "elbow");
    EXPECT_DOUBLE_EQ(events[0].field_or("eps", -1.0), 0.35);
    EXPECT_DOUBLE_EQ(events[0].field_or("missing", -1.0), -1.0);
    EXPECT_EQ(events[1].kind, event_kind::frame_dropped);
    EXPECT_EQ(log.published(), 2u);
    EXPECT_EQ(log.suppressed(), 0u);
}

TEST(obs_events, ring_overwrites_oldest) {
    obs::event_log log{{.capacity = 4, .burst = 0.0}};
    for (std::uint64_t i = 0; i < 6; ++i) {
        event ev = make_event(event_kind::isa_dispatch, event_severity::info);
        ev.frame = i;
        log.publish(ev);
    }
    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 4u);
    for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].frame, i + 2);

    const auto last = log.tail(2);
    ASSERT_EQ(last.size(), 2u);
    EXPECT_EQ(last[0].frame, 4u);
    EXPECT_EQ(last[1].frame, 5u);
}

TEST(obs_events, severity_floor_filters_without_counting_suppression) {
    obs::event_log log{{.capacity = 8, .burst = 0.0,
                        .min_severity = event_severity::warning}};
    EXPECT_FALSE(log.publish(make_event(event_kind::isa_dispatch, event_severity::info)));
    EXPECT_TRUE(
        log.publish(make_event(event_kind::stage_failure, event_severity::warning)));
    EXPECT_EQ(log.published(), 1u);
    EXPECT_EQ(log.suppressed(), 0u);  // floored events were never admitted
}

TEST(obs_events, truncation_clips_long_strings) {
    event ev = make_event(event_kind::alert_firing, event_severity::error,
                          "this-detail-is-much-longer-than-the-what-buffer-holds");
    ev.set_pole("pole-with-a-very-long-name");
    EXPECT_EQ(ev.what_view().size(), telemetry::event_what_capacity - 1);
    EXPECT_EQ(ev.pole_view().size(), telemetry::event_pole_capacity - 1);
    for (int i = 0; i < 10; ++i) ev.add_field("k", 1.0);
    EXPECT_EQ(ev.field_count, telemetry::event_max_fields);
}

TEST(obs_events, metrics_mirror_accepted_and_suppressed) {
    telemetry::metrics_registry reg;
    obs::event_log log{{.capacity = 8, .tokens_per_tick = 1.0, .burst = 2.0}};
    log.bind_metrics(reg);

    for (int i = 0; i < 5; ++i) {
        log.publish(make_event(event_kind::frame_dropped, event_severity::error));
    }
    const auto* accepted =
        reg.find_counter(telemetry::labeled_name("hawc_events_total", "kind",
                                                 to_string(event_kind::frame_dropped)));
    const auto* suppressed = reg.find_counter(
        telemetry::labeled_name("hawc_events_suppressed_total", "kind",
                                to_string(event_kind::frame_dropped)));
    const auto* by_severity = reg.find_counter(
        telemetry::labeled_name("hawc_events_severity_total", "severity",
                                to_string(event_severity::error)));
    ASSERT_NE(accepted, nullptr);
    ASSERT_NE(suppressed, nullptr);
    ASSERT_NE(by_severity, nullptr);
    EXPECT_EQ(accepted->value(), 2u);  // burst of 2
    EXPECT_EQ(suppressed->value(), 3u);
    EXPECT_EQ(by_severity->value(), 2u);
}

TEST(obs_events, json_lines_render_and_escape) {
    event ev = make_event(event_kind::pole_quarantined, event_severity::error,
                          "say \"hi\"\n");
    ev.tick = 12;
    ev.frame = 34;
    ev.set_pole("p7");
    ev.add_field("attempt", 2.0);
    EXPECT_EQ(obs::to_json_line(ev),
              "{\"tick\":12,\"frame\":34,\"kind\":\"pole_quarantined\","
              "\"severity\":\"error\",\"pole\":\"p7\",\"what\":\"say \\\"hi\\\"\\n\","
              "\"fields\":{\"attempt\":2}}");

    const std::vector<event> events{ev, ev};
    const std::string lines = obs::to_json_lines(events);
    EXPECT_EQ(std::count(lines.begin(), lines.end(), '\n'), 2);
}

TEST(obs_events, tagging_sink_stamps_pole_and_tick) {
    obs::event_log log{{.capacity = 8, .burst = 0.0}};
    telemetry::tagging_event_sink tagger;
    tagger.set_target(&log);
    tagger.set_pole("p3");
    tagger.set_tick(41);

    EXPECT_TRUE(tagger.publish(make_event(event_kind::pole_restarted, event_severity::info)));
    // An already-attributed pole id is preserved, only the tick is stamped.
    event pre = make_event(event_kind::link_corruption, event_severity::warning);
    pre.set_pole("other");
    EXPECT_TRUE(tagger.publish(pre));

    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].pole_view(), "p3");
    EXPECT_EQ(events[0].tick, 41u);
    EXPECT_EQ(events[1].pole_view(), "other");
    EXPECT_EQ(events[1].tick, 41u);
}

// The TSan-exact soak: many writers hammer one log; every attempt must
// be accounted as published or suppressed (conservation), and the ring
// must stay structurally intact.
TEST(obs_events, multi_writer_conservation_under_contention) {
    obs::event_log log{{.capacity = 64, .tokens_per_tick = 8.0, .burst = 32.0}};
    constexpr int writers = 8;
    constexpr int per_writer = 2000;

    std::vector<std::thread> threads;
    std::vector<std::uint64_t> accepted(writers, 0);
    threads.reserve(writers);
    for (int w = 0; w < writers; ++w) {
        threads.emplace_back([&log, &accepted, w] {
            const auto kind = static_cast<event_kind>(w % telemetry::event_kind_count);
            for (int i = 0; i < per_writer; ++i) {
                event ev = make_event(kind, event_severity::info);
                ev.frame = static_cast<std::uint64_t>(i);
                if (log.publish(ev)) ++accepted[static_cast<std::size_t>(w)];
            }
        });
    }
    for (auto& t : threads) t.join();

    std::uint64_t accepted_total = 0;
    for (const auto a : accepted) accepted_total += a;
    EXPECT_EQ(log.published(), accepted_total);
    EXPECT_EQ(log.published() + log.suppressed(),
              static_cast<std::uint64_t>(writers) * per_writer);
    EXPECT_LE(log.snapshot().size(), 64u);
    for (const auto& ev : log.snapshot()) {
        EXPECT_LT(static_cast<std::size_t>(ev.kind), telemetry::event_kind_count);
    }
}

// --- rate limiter determinism ---

// The same single-threaded schedule of publishes and tick refills must
// make identical accept/suppress decisions on every run: admission is a
// pure function of the virtual clock.
TEST(obs_rate_limit, decisions_are_deterministic) {
    const auto run = [] {
        obs::event_log log{{.capacity = 256, .tokens_per_tick = 2.0, .burst = 4.0}};
        std::string decisions;
        std::uint64_t tick = 0;
        for (int round = 0; round < 20; ++round) {
            for (int i = 0; i < 7; ++i) {
                decisions += log.publish(make_event(event_kind::frame_dropped,
                                                    event_severity::error))
                                 ? 'A'
                                 : 's';
            }
            log.advance_tick(++tick);
        }
        return decisions;
    };
    const std::string first = run();
    EXPECT_EQ(first, run());
    EXPECT_EQ(first.substr(0, 7), "AAAAsss");  // burst of 4, then suppressed
    // Steady state: 2 tokens refill per tick against 7 attempts.
    EXPECT_EQ(first.substr(first.size() - 7), "AAsssss");
}

TEST(obs_rate_limit, refill_is_capped_at_burst) {
    obs::event_log log{{.capacity = 64, .tokens_per_tick = 100.0, .burst = 3.0}};
    for (std::uint64_t t = 1; t <= 5; ++t) log.advance_tick(t);  // refills clamp
    int accepted = 0;
    for (int i = 0; i < 10; ++i) {
        if (log.publish(make_event(event_kind::stage_failure, event_severity::warning))) {
            ++accepted;
        }
    }
    EXPECT_EQ(accepted, 3);
    EXPECT_EQ(log.last_tick(), 5u);
}

TEST(obs_rate_limit, nonpositive_burst_disables_limiting) {
    obs::event_log log{{.capacity = 16, .tokens_per_tick = 0.0, .burst = 0.0}};
    for (int i = 0; i < 200; ++i) {
        EXPECT_TRUE(log.publish(make_event(event_kind::frame_dropped,
                                           event_severity::error)));
    }
    EXPECT_EQ(log.suppressed(), 0u);
}

TEST(obs_rate_limit, per_kind_buckets_are_independent) {
    obs::event_log log{{.capacity = 64, .tokens_per_tick = 0.0, .burst = 2.0}};
    EXPECT_TRUE(log.publish(make_event(event_kind::frame_dropped, event_severity::error)));
    EXPECT_TRUE(log.publish(make_event(event_kind::frame_dropped, event_severity::error)));
    EXPECT_FALSE(log.publish(make_event(event_kind::frame_dropped, event_severity::error)));
    // A different kind draws from its own bucket.
    EXPECT_TRUE(
        log.publish(make_event(event_kind::link_corruption, event_severity::warning)));
    EXPECT_EQ(log.suppressed_of(event_kind::frame_dropped), 1u);
    EXPECT_EQ(log.suppressed_of(event_kind::link_corruption), 0u);
}

// --- SLO rule grammar ---

TEST(obs_slo, parses_full_rule_and_roundtrips) {
    const auto rules = obs::parse_slo_rules(
        "# fleet drop budget\n"
        "alert drop_ratio if ratio(hawc_dropped/hawc_frames) > 0.05 "
        "window 4/16 for 2 resolve 3 severity critical\n"
        "\n"
        "alert p99_latency if p99(hawc_frame_ms) > 50 severity warning\n");
    ASSERT_EQ(rules.size(), 2u);

    const obs::slo_rule& drop = rules[0];
    EXPECT_EQ(drop.name, "drop_ratio");
    EXPECT_EQ(drop.signal, obs::slo_signal::ratio);
    EXPECT_EQ(drop.metric, "hawc_dropped");
    EXPECT_EQ(drop.denominator, "hawc_frames");
    EXPECT_EQ(drop.cmp, obs::slo_comparison::above);
    EXPECT_DOUBLE_EQ(drop.threshold, 0.05);
    EXPECT_EQ(drop.short_window, 4u);
    EXPECT_EQ(drop.long_window, 16u);
    EXPECT_EQ(drop.fire_after, 2u);
    EXPECT_EQ(drop.resolve_after, 3u);
    EXPECT_EQ(drop.severity, event_severity::critical);

    EXPECT_EQ(rules[1].signal, obs::slo_signal::quantile);
    EXPECT_DOUBLE_EQ(rules[1].quantile, 0.99);

    // Canonical rendering re-parses to the same rule.
    const auto reparsed = obs::parse_slo_rules(obs::to_string(drop));
    ASSERT_EQ(reparsed.size(), 1u);
    EXPECT_EQ(obs::to_string(reparsed[0]), obs::to_string(drop));
}

TEST(obs_slo, parser_rejects_malformed_lines_with_line_numbers) {
    const char* bad[] = {
        "alert x p99(m) > 1",                        // missing 'if'
        "alert x if p99(m) >= 1",                    // bad comparison
        "alert x if p99(m) > fast",                  // non-numeric threshold
        "alert x if p42(m) > 1",                     // unknown signal
        "alert x if ratio(m) > 1",                   // ratio without denominator
        "alert x if value(m) > 1 window 8/4",        // short > long
        "alert x if value(m) > 1 for",               // option missing value
        "alert x if value(m) > 1 severity loud",     // unknown severity
        "alert x@y if value(m) > 1",                 // label-unsafe name
    };
    for (const char* line : bad) {
        EXPECT_THROW(obs::parse_slo_rules(line), error) << line;
    }
    try {
        obs::parse_slo_rules("# fine\nalert ok if value(m) > 1\nbroken");
    } catch (const error& e) {
        EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos);
    }
}

TEST(obs_slo, default_fleet_rules_parse_and_name_fleet_metrics) {
    const auto rules = fleet::default_fleet_slo_rules();
    ASSERT_EQ(rules.size(), 4u);
    for (const auto& rule : rules) {
        EXPECT_NE(rule.metric.find("hawc_fleet_"), std::string::npos) << rule.name;
    }
}

// --- SLO engine ---

TEST(obs_slo, value_rule_fires_and_resolves_with_hysteresis) {
    telemetry::metrics_registry reg;
    auto& gauge = reg.make_gauge("hawc_fleet_excluded_poles", "");
    obs::event_log log{{.capacity = 32, .burst = 0.0}};
    obs::slo_engine engine{
        reg, reg,
        obs::parse_slo_rules(
            "alert excluded if value(hawc_fleet_excluded_poles) > 0 "
            "for 2 resolve 3 severity error"),
        &log};

    std::uint64_t tick = 0;
    gauge.set(2.0);
    engine.evaluate(++tick);  // breach 1 of 2: not yet firing
    EXPECT_FALSE(engine.find("excluded")->firing);
    engine.evaluate(++tick);  // breach 2 of 2: fires
    ASSERT_TRUE(engine.find("excluded")->firing);
    EXPECT_EQ(engine.find("excluded")->fired_count, 1u);
    EXPECT_FALSE(engine.summary().healthy());
    EXPECT_EQ(engine.summary().worst, event_severity::error);

    gauge.set(0.0);
    engine.evaluate(++tick);
    engine.evaluate(++tick);
    EXPECT_TRUE(engine.find("excluded")->firing);  // 2 clean < resolve 3
    engine.evaluate(++tick);
    EXPECT_FALSE(engine.find("excluded")->firing);
    EXPECT_EQ(engine.find("excluded")->resolved_count, 1u);
    EXPECT_TRUE(engine.summary().healthy());

    // Transitions surfaced as events and metrics.
    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, event_kind::alert_firing);
    EXPECT_EQ(events[0].what_view(), "excluded");
    EXPECT_EQ(events[1].kind, event_kind::alert_resolved);
    const auto* fired = reg.find_counter(
        telemetry::labeled_name("hawc_alerts_fired_total", "alert", "excluded"));
    ASSERT_NE(fired, nullptr);
    EXPECT_EQ(fired->value(), 1u);
    const auto* firing_gauge = reg.find_gauge(
        telemetry::labeled_name("hawc_alert_firing", "alert", "excluded"));
    ASSERT_NE(firing_gauge, nullptr);
    EXPECT_DOUBLE_EQ(firing_gauge->value(), 0.0);
}

TEST(obs_slo, ratio_rule_requires_both_burn_windows) {
    telemetry::metrics_registry reg;
    auto& dropped = reg.make_counter("drops", "");
    auto& frames = reg.make_counter("frames", "");
    obs::slo_engine engine{
        reg, reg,
        obs::parse_slo_rules("alert burn if ratio(drops/frames) > 0.5 window 2/6")};

    std::uint64_t tick = 0;
    // Warm-up: clean traffic long enough to fill the long window.
    for (int i = 0; i < 8; ++i) {
        frames.add(10);
        engine.evaluate(++tick);
    }
    EXPECT_FALSE(engine.find("burn")->firing);

    // A short spike breaches the 2-eval window but not the 6-eval one.
    dropped.add(15);
    frames.add(10);
    engine.evaluate(++tick);
    EXPECT_TRUE(engine.find("burn")->last_value > 0.5);  // short burn high
    EXPECT_FALSE(engine.find("burn")->firing);           // long window vetoes

    // Sustained drops breach both windows.
    for (int i = 0; i < 6; ++i) {
        dropped.add(9);
        frames.add(10);
        engine.evaluate(++tick);
    }
    EXPECT_TRUE(engine.find("burn")->firing);
}

TEST(obs_slo, rate_rule_warms_up_before_firing) {
    telemetry::metrics_registry reg;
    auto& quarantines = reg.make_counter("q", "");
    obs::slo_engine engine{reg, reg,
                           obs::parse_slo_rules("alert q if rate(q) > 0.5 window 2/4")};
    std::uint64_t tick = 0;
    quarantines.add(100);  // huge pre-existing total
    engine.evaluate(++tick);
    EXPECT_FALSE(engine.find("q")->firing);  // one sample: no delta yet

    for (int i = 0; i < 5; ++i) {
        quarantines.add(2);  // 2 per eval > 0.5
        engine.evaluate(++tick);
    }
    EXPECT_TRUE(engine.find("q")->firing);
    EXPECT_DOUBLE_EQ(engine.find("q")->last_value, 2.0);
}

TEST(obs_slo, quantile_and_missing_metric_rules) {
    telemetry::metrics_registry reg;
    auto& hist = reg.make_histogram("lat_ms", {1.0, 5.0, 25.0, 100.0}, "");
    obs::slo_engine engine{
        reg, reg,
        obs::parse_slo_rules("alert slow if p99(lat_ms) > 20\n"
                             "alert ghost if value(no_such_metric) > 0")};
    std::uint64_t tick = 0;
    engine.evaluate(++tick);  // empty histogram: no breach
    EXPECT_FALSE(engine.find("slow")->firing);

    for (int i = 0; i < 100; ++i) hist.record(80.0);
    engine.evaluate(++tick);
    EXPECT_TRUE(engine.find("slow")->firing);
    // A rule over an absent metric never fires (and never crashes).
    EXPECT_FALSE(engine.find("ghost")->firing);
    EXPECT_EQ(engine.evaluations(), 2u);
}

TEST(obs_slo, below_comparison_and_render) {
    telemetry::metrics_registry reg;
    auto& gauge = reg.make_gauge("included", "");
    obs::slo_engine engine{
        reg, reg, obs::parse_slo_rules("alert low if value(included) < 3 severity info")};
    gauge.set(1.0);
    engine.evaluate(1);
    EXPECT_TRUE(engine.find("low")->firing);
    const obs::health_summary sum = engine.summary();
    EXPECT_EQ(sum.render(), "1/1 firing (worst info): low");
    gauge.set(5.0);
    engine.evaluate(2);
    EXPECT_EQ(engine.summary().render(), "healthy (1 rules)");
}

// --- build info ---

TEST(obs_build_info, registers_constant_gauge_with_identity_labels) {
    telemetry::metrics_registry reg;
    obs::event_log log{{.capacity = 8, .burst = 0.0}};
    obs::register_build_info(reg, &log);

    const obs::build_info info = obs::current_build_info();
    EXPECT_FALSE(info.version.empty());
    EXPECT_FALSE(info.compiler.empty());
    EXPECT_FALSE(info.isa.empty());
    EXPECT_FALSE(info.sanitizer.empty());

    const std::string prom = telemetry::to_prometheus(reg);
    EXPECT_NE(prom.find("hawc_build_info{"), std::string::npos);
    EXPECT_NE(prom.find("version=\"" + info.version + "\""), std::string::npos);
    EXPECT_NE(prom.find("compiler=\"" + info.compiler + "\""), std::string::npos);
    EXPECT_NE(prom.find("isa=\"" + info.isa + "\""), std::string::npos);
    EXPECT_NE(prom.find("sanitizer=\"" + info.sanitizer + "\""), std::string::npos);

    const auto events = log.snapshot();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, event_kind::isa_dispatch);
    EXPECT_EQ(events[0].what_view(), info.isa);

    // Idempotent re-registration.
    obs::register_build_info(reg);
}

// --- flight recorder + postmortem bundles ---

TEST(obs_recorder, ring_is_bounded_and_bundle_roundtrips) {
    const extent_classifier classifier;
    frame_supervisor sup{det_config(), classifier, nullptr};
    const replay::frame_corpus corpus = synth_corpus(77, 12);

    obs::flight_recorder rec{{.frame_capacity = 8}, "p0", corpus.base_seed};
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        const supervisor_carry before = sup.carry();
        rng random{replay::frame_seed(corpus.base_seed, i)};
        const frame_report report = sup.process(corpus.frames[i].cloud, random);
        rec.record(i, corpus.frames[i].ground_truth, corpus.frames[i].cloud, before,
                   report);
    }
    EXPECT_EQ(rec.frames_recorded(), 12u);
    EXPECT_EQ(rec.ring_size(), 8u);

    ASSERT_TRUE(rec.trigger_dump(obs::dump_trigger::manual, 99));
    auto dumps = rec.take_dumps();
    ASSERT_EQ(dumps.size(), 1u);
    EXPECT_EQ(rec.pending_dumps(), 0u);
    const obs::postmortem_bundle& bundle = dumps[0];
    EXPECT_EQ(bundle.pole_id, "p0");
    EXPECT_EQ(bundle.trigger, obs::dump_trigger::manual);
    EXPECT_EQ(bundle.tick, 99u);
    ASSERT_EQ(bundle.frames.size(), 8u);
    EXPECT_EQ(bundle.frames.front().frame_index, 4u);  // oldest retained

    std::stringstream stream;
    obs::save_postmortem(stream, bundle);
    const obs::postmortem_bundle loaded = obs::load_postmortem(stream);
    EXPECT_EQ(loaded, bundle);
}

TEST(obs_recorder, corrupted_bundle_is_rejected) {
    obs::flight_recorder rec{{.frame_capacity = 4}, "p1", 5};
    obs::postmortem_bundle bundle;
    bundle.pole_id = "p1";
    bundle.base_seed = 5;
    obs::recorded_frame frame;
    frame.frame_index = 3;
    frame.cloud.push_back({20.0, 0.0, -1.5});
    bundle.frames.push_back(frame);
    bundle.events_jsonl = "{\"kind\":\"frame_dropped\"}\n";

    std::stringstream good;
    obs::save_postmortem(good, bundle);
    std::string bytes = good.str();
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
    std::stringstream bad{bytes};
    EXPECT_THROW(obs::load_postmortem(bad), io_error);

    std::stringstream truncated{good.str().substr(0, good.str().size() - 3)};
    EXPECT_THROW(obs::load_postmortem(truncated), io_error);
}

TEST(obs_recorder, pending_dump_cap_drops_excess) {
    obs::flight_recorder rec{{.frame_capacity = 2, .max_pending_dumps = 2}, "p2", 9};
    EXPECT_FALSE(rec.trigger_dump(obs::dump_trigger::manual, 1));  // empty ring

    frame_report report;
    rec.record(0, 0, point_cloud{}, {}, report);
    EXPECT_TRUE(rec.trigger_dump(obs::dump_trigger::manual, 2));
    EXPECT_TRUE(rec.trigger_dump(obs::dump_trigger::manual, 3));
    EXPECT_FALSE(rec.trigger_dump(obs::dump_trigger::manual, 4));  // cap hit
    EXPECT_EQ(rec.dumps_produced(), 2u);
    EXPECT_EQ(rec.dumps_dropped(), 1u);
}

TEST(obs_recorder, deadline_storm_auto_dumps_after_streak) {
    obs::flight_recorder rec{{.frame_capacity = 8, .deadline_storm_threshold = 3},
                             "p3", 11};
    frame_report overrun;
    overrun.failures.push_back(
        {pipeline_stage::frame, failure_kind::stage_deadline, "synthetic"});

    EXPECT_FALSE(rec.record(0, 0, point_cloud{}, {}, overrun));
    EXPECT_FALSE(rec.record(1, 0, point_cloud{}, {}, overrun));
    EXPECT_TRUE(rec.record(2, 0, point_cloud{}, {}, overrun));  // streak of 3
    ASSERT_EQ(rec.pending_dumps(), 1u);
    EXPECT_EQ(rec.take_dumps()[0].trigger, obs::dump_trigger::deadline_storm);

    // A clean frame resets the streak.
    frame_report clean;
    EXPECT_FALSE(rec.record(3, 0, point_cloud{}, {}, overrun));
    EXPECT_FALSE(rec.record(4, 0, point_cloud{}, {}, clean));
    EXPECT_FALSE(rec.record(5, 0, point_cloud{}, {}, overrun));
    EXPECT_FALSE(rec.record(6, 0, point_cloud{}, {}, overrun));
}

// The core black-box property: a recorded window replays bit-exactly
// through the standard replay driver, including a window whose carry was
// mid-ladder (stale counts being served) when recording began.
TEST(obs_recorder, postmortem_replays_bit_exact_mid_ladder) {
    const extent_classifier classifier;
    supervisor_config cfg = det_config();
    cfg.max_stale_frames = 3;
    frame_supervisor live{cfg, classifier, nullptr};
    const replay::frame_corpus corpus = synth_corpus(123, 6);

    obs::flight_recorder rec{{.frame_capacity = 4}, "px", corpus.base_seed};
    std::vector<std::pair<std::uint64_t, frame_status>> observed;
    // Interleave good frames and dead (empty -> dropped/stale) frames so
    // the ladder is mid-flight when the retained window starts.
    const std::vector<int> schedule{0, -1, 1, -1, -1, 2, 3, -1, 4};
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const supervisor_carry before = live.carry();
        rng random{replay::frame_seed(corpus.base_seed, i)};
        point_cloud cloud;
        std::uint32_t gt = 0;
        if (schedule[i] >= 0) {
            cloud = corpus.frames[static_cast<std::size_t>(schedule[i])].cloud;
            gt = corpus.frames[static_cast<std::size_t>(schedule[i])].ground_truth;
        }
        const frame_report report = live.process(cloud, random);
        rec.record(i, gt, cloud, before, report);
        observed.emplace_back(report.count, report.status);
    }
    ASSERT_TRUE(rec.trigger_dump(obs::dump_trigger::manual, 1));
    const obs::postmortem_bundle bundle = rec.take_dumps()[0];
    ASSERT_EQ(bundle.frames.size(), 4u);

    frame_supervisor fresh{cfg, classifier, nullptr};
    const obs::postmortem_replay_result replayed = obs::replay_postmortem(bundle, fresh);
    EXPECT_TRUE(replayed.bit_exact);
    EXPECT_EQ(replayed.matches, 4u);
    EXPECT_TRUE(replayed.divergent.empty());

    // Tampered outcomes are detected as divergence.
    obs::postmortem_bundle tampered = bundle;
    tampered.frames[2].count += 1;
    frame_supervisor fresh2{cfg, classifier, nullptr};
    const auto diverged = obs::replay_postmortem(tampered, fresh2);
    EXPECT_FALSE(diverged.bit_exact);
    ASSERT_EQ(diverged.divergent.size(), 1u);
    EXPECT_EQ(diverged.divergent[0], 2u);
}

// --- the full drill: 8-pole fleet, forced quarantine, alert lifecycle ---

TEST(obs_drill, fleet_quarantine_produces_replayable_bundle_and_alert_cycle) {
    const extent_classifier classifier;
    std::vector<replay::frame_corpus> corpora;
    std::vector<fleet::pole_setup> setups;
    fleet::watchdog_config wd;
    wd.max_consecutive_dropped = 3;
    wd.backoff_base_ticks = 4;
    wd.backoff_cap_ticks = 16;
    wd.backoff_jitter_fraction = 0.0;
    wd.probation_recovery_streak = 2;
    for (std::size_t i = 0; i < 8; ++i) {
        corpora.push_back(synth_corpus(1000 + i, 40));
        fleet::pole_setup setup;
        setup.pole_id = "pole-" + std::to_string(i);
        setup.seed = 1000 + i;
        setup.supervisor = det_config();
        setup.supervisor.max_stale_frames = 2;
        setup.watchdog = wd;
        setup.primary = &classifier;
        setups.push_back(std::move(setup));
    }

    fleet::fleet_config cfg;
    cfg.stale_after_ticks = 3;
    cfg.exclude_after_ticks = 6;
    fleet::fleet_manager fleet{cfg, setups};
    fleet.set_backpressure_probe([] { return 0.0; });

    obs::event_log log{{.capacity = 512, .tokens_per_tick = 16.0, .burst = 64.0}};
    log.bind_metrics(fleet.metrics());
    fleet.attach_observability(log);
    fleet.enable_flight_recorders({.frame_capacity = 8});
    // Drill-tuned rules (the defaults use hour-scale burn windows; this
    // soak is ~80 ticks): exclusion must fire during the incident and
    // resolve through its hysteresis after recovery.
    fleet.install_slo(obs::parse_slo_rules(
        "alert poles_excluded if value(hawc_fleet_excluded_poles) > 0 "
        "for 2 resolve 4 severity error\n"
        "alert fleet_meltdown if "
        "ratio(hawc_fleet_frames_dropped_total/hawc_fleet_frames_total) > 0.9 "
        "window 4/8 severity critical\n"));
    ASSERT_NE(fleet.slo(), nullptr);

    // Phase 1: healthy traffic everywhere.
    std::size_t frame = 0;
    for (; frame < 6; ++frame) {
        for (std::size_t p = 0; p < 8; ++p) {
            fleet.submit(p, corpus_message(corpora[p], frame));
        }
        fleet.tick();
    }
    EXPECT_TRUE(fleet.fleet_health().healthy());

    // Phase 2: pole 3's sensor dies — empty frames until the watchdog
    // quarantines it and it ages into exclusion; the alert must fire.
    const std::size_t victim = 3;
    bool fired = false;
    for (; frame < 26; ++frame) {
        for (std::size_t p = 0; p < 8; ++p) {
            if (p == victim) {
                fleet::link_message dead;
                dead.frame_index = frame;
                fleet.submit(p, std::move(dead));
            } else {
                fleet.submit(p, corpus_message(corpora[p], frame % corpora[p].size()));
            }
        }
        fleet.tick();
        fired = fired || fleet.slo()->find("poles_excluded")->firing;
    }
    EXPECT_GE(fleet.pole(victim).stats().quarantines, 1u);
    EXPECT_TRUE(fired);
    EXPECT_FALSE(fleet.fleet_health().healthy());

    // The quarantine dumped a postmortem bundle; it replays bit-exactly
    // through the replay driver against a fresh supervisor.
    const auto bundles = fleet.collect_postmortems();
    ASSERT_FALSE(bundles.empty());
    EXPECT_EQ(bundles.front().pole_id, "pole-3");
    EXPECT_EQ(bundles.front().trigger, obs::dump_trigger::quarantine);
    EXPECT_FALSE(bundles.front().events_jsonl.empty());

    const auto path = temp_path("drill_bundle_");
    obs::save_postmortem_file(path, bundles.front());
    const obs::postmortem_bundle reloaded = obs::load_postmortem_file(path);
    std::filesystem::remove(path);
    EXPECT_EQ(reloaded, bundles.front());

    supervisor_config victim_cfg = det_config();
    victim_cfg.max_stale_frames = 2;
    frame_supervisor fresh{victim_cfg, classifier, nullptr};
    const auto replayed = obs::replay_postmortem(reloaded, fresh);
    EXPECT_TRUE(replayed.bit_exact) << replayed.divergent.size() << " divergent frames";

    // Phase 3: the sensor comes back; the pole recovers and the alert
    // resolves through its hysteresis.
    bool resolved = false;
    for (; frame < 80 && !resolved; ++frame) {
        for (std::size_t p = 0; p < 8; ++p) {
            fleet.submit(p, corpus_message(corpora[p], frame % corpora[p].size()));
        }
        fleet.tick();
        const auto* state = fleet.slo()->find("poles_excluded");
        resolved = state->fired_count > 0 && state->resolved_count > 0 && !state->firing;
    }
    EXPECT_TRUE(resolved);
    EXPECT_TRUE(fleet.fleet_health().healthy());

    // The alert can resolve while the victim is still in probation (a
    // probation pole serves fresh counts); keep the traffic flowing until
    // it finishes its recovery streak and goes live.
    for (int extra = 0;
         extra < 60 && fleet.pole(victim).state() != fleet::pole_state::live;
         ++extra, ++frame) {
        for (std::size_t p = 0; p < 8; ++p) {
            fleet.submit(p, corpus_message(corpora[p], frame % corpora[p].size()));
        }
        fleet.tick();
    }
    EXPECT_EQ(fleet.pole(victim).state(), fleet::pole_state::live);

    // The event log tells the whole story: quarantine, restart, alert
    // firing, alert resolved.
    const auto events = log.snapshot();
    const auto has_kind = [&events](event_kind kind) {
        return std::any_of(events.begin(), events.end(),
                           [kind](const event& ev) { return ev.kind == kind; });
    };
    EXPECT_TRUE(has_kind(event_kind::pole_quarantined));
    EXPECT_TRUE(has_kind(event_kind::pole_restarted));
    EXPECT_TRUE(has_kind(event_kind::pole_recovered));
    EXPECT_TRUE(has_kind(event_kind::recorder_dump));
    EXPECT_TRUE(has_kind(event_kind::alert_firing));
    EXPECT_TRUE(has_kind(event_kind::alert_resolved));

    // And the fleet-level rollup metrics saw the incident.
    const auto* quarantines = fleet.metrics().find_counter("hawc_fleet_quarantines_total");
    ASSERT_NE(quarantines, nullptr);
    EXPECT_GE(quarantines->value(), 1u);
}

}  // namespace
}  // namespace hawc
