// Tests for the crowd-counting pipeline and its metrics, using mock
// classifiers so the pipeline mechanics are isolated from model quality.

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "counting/crowd_counter.hpp"

namespace hawc {
namespace {

/// Classifier that always answers the same.
class constant_classifier final : public human_classifier {
public:
    explicit constant_classifier(bool answer) : answer_{answer} {}
    bool is_human(const point_cloud&, rng&) const override { return answer_; }
    std::string name() const override { return answer_ ? "AlwaysHuman" : "NeverHuman"; }

private:
    bool answer_;
};

/// Classifier keying on cluster height: a stand-in with real signal.
class height_classifier final : public human_classifier {
public:
    bool is_human(const point_cloud& cluster, rng&) const override {
        const aabb box = cluster.bounds();
        const double height = box.size().z;
        return height > 1.0 && height < 2.2;
    }
    std::string name() const override { return "HeightRule"; }
};

TEST(counting_metrics, accumulator_math) {
    counting_accumulator acc;
    acc.add(5.0, 3.0);   // error +2
    acc.add(1.0, 2.0);   // error -1
    const counting_metrics m = acc.metrics();
    EXPECT_DOUBLE_EQ(m.mae, 1.5);
    EXPECT_DOUBLE_EQ(m.mse, 2.5);
    EXPECT_EQ(m.samples, 2u);
    EXPECT_DOUBLE_EQ(m.total_predicted, 6.0);
    EXPECT_DOUBLE_EQ(m.total_ground_truth, 5.0);
    EXPECT_NEAR(m.accuracy(), 1.0 - 1.0 / 5.0, 1e-12);
}

TEST(counting_metrics, empty_accumulator) {
    const counting_metrics m = counting_accumulator{}.metrics();
    EXPECT_DOUBLE_EQ(m.mae, 0.0);
    EXPECT_DOUBLE_EQ(m.mse, 0.0);
    EXPECT_EQ(m.samples, 0u);
    EXPECT_DOUBLE_EQ(m.accuracy(), 0.0);
}

TEST(counting_metrics, perfect_predictions) {
    counting_accumulator acc;
    for (int i = 0; i < 10; ++i) acc.add(i, i);
    const counting_metrics m = acc.metrics();
    EXPECT_DOUBLE_EQ(m.mae, 0.0);
    EXPECT_DOUBLE_EQ(m.mse, 0.0);
    EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
}

crowd_sample make_sample(std::size_t people, std::uint64_t seed) {
    crowd_dataset_config cfg;
    cfg.scenes = 1;
    cfg.max_people = 0;  // unused below
    rng r{seed};
    const scene s = make_crowd_scene(r, people, 1);
    const scanner sensor{cfg.capture.sensor};
    const auto scan_data = sensor.scan(s.primitives(), r, cfg.capture.scan);
    crowd_sample sample;
    sample.raw = scan_data.to_cloud();
    sample.ground_truth = visible_human_count(s, scan_data, cfg.capture);
    return sample;
}

TEST(crowd_counter_test, never_human_counts_zero) {
    const capture_config cfg;
    constant_classifier never{false};
    const crowd_counter counter{cfg, never};
    rng r{1};
    const auto sample = make_sample(3, 11);
    const count_result result = counter.count(sample.raw, r);
    EXPECT_EQ(result.count, 0u);
    EXPECT_GT(result.cluster_count, 0u);
}

TEST(crowd_counter_test, always_human_counts_all_clusters) {
    const capture_config cfg;
    constant_classifier always{true};
    const crowd_counter counter{cfg, always};
    rng r{2};
    const auto sample = make_sample(3, 12);
    const count_result result = counter.count(sample.raw, r);
    EXPECT_EQ(result.count, result.cluster_count);
}

TEST(crowd_counter_test, height_rule_tracks_ground_truth) {
    const capture_config cfg;
    height_classifier rule;
    const crowd_counter counter{cfg, rule};
    rng r{3};
    counting_accumulator acc;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        const auto sample = make_sample(seed % 5, 100 + seed);
        const auto result = counter.count(sample.raw, r);
        acc.add(static_cast<double>(result.count),
                static_cast<double>(sample.ground_truth));
    }
    EXPECT_LT(acc.metrics().mae, 1.5);
}

TEST(crowd_counter_test, empty_capture_counts_zero) {
    const capture_config cfg;
    constant_classifier always{true};
    const crowd_counter counter{cfg, always};
    rng r{4};
    const count_result result = counter.count(point_cloud{}, r);
    EXPECT_EQ(result.count, 0u);
    EXPECT_EQ(result.cluster_count, 0u);
}

TEST(crowd_counter_test, stage_times_populated) {
    const capture_config cfg;
    constant_classifier always{true};
    const crowd_counter counter{cfg, always};
    rng r{5};
    const auto sample = make_sample(2, 21);
    const count_result result = counter.count(sample.raw, r);
    EXPECT_GE(result.times.ingest_ms, 0.0);
    EXPECT_GT(result.times.clustering_ms, 0.0);
    EXPECT_GE(result.times.total_ms(),
              result.times.clustering_ms + result.times.classification_ms);
}

TEST(crowd_counter_test, evaluate_aggregates) {
    const capture_config cfg;
    height_classifier rule;
    const crowd_counter counter{cfg, rule};
    std::vector<crowd_sample> samples;
    for (std::uint64_t seed = 0; seed < 5; ++seed) samples.push_back(make_sample(2, 40 + seed));
    rng r{6};
    const auto eval = counter.evaluate(samples, r);
    EXPECT_EQ(eval.metrics.samples, 5u);
    EXPECT_GT(eval.mean_latency_ms, 0.0);
    EXPECT_THROW(counter.evaluate({}, r), invalid_argument_error);
}

TEST(crowd_counter_test, name_appends_cc) {
    const capture_config cfg;
    constant_classifier always{true};
    const crowd_counter counter{cfg, always};
    EXPECT_EQ(counter.name(), "AlwaysHuman-CC");
}

TEST(crowd_counter_test, fixed_eps_clusterer_plugs_in) {
    const capture_config cfg;
    constant_classifier always{true};
    crowd_counter counter{cfg, always};
    counter.set_clusterer(make_fixed_eps_clusterer(0.3, cfg));
    rng r{7};
    const auto sample = make_sample(3, 31);
    const count_result result = counter.count(sample.raw, r);
    EXPECT_GT(result.cluster_count, 0u);
}

TEST(crowd_counter_test, hierarchical_clusterer_overcounts) {
    // The paper's observation: a diameter-capped hierarchical cut
    // fragments targets and overcounts relative to adaptive DBSCAN.
    const capture_config cfg;
    constant_classifier always{true};
    crowd_counter adaptive{cfg, always};
    crowd_counter hierarchical{cfg, always};
    hierarchical.set_clusterer(make_hierarchical_clusterer(0.4, cfg));
    rng r{8};
    const auto sample = make_sample(4, 55);
    const auto a = adaptive.count(sample.raw, r);
    const auto h = hierarchical.count(sample.raw, r);
    EXPECT_GE(h.cluster_count, a.cluster_count);
}

TEST(crowd_counter_test, hierarchical_clusterer_subsamples_large_clouds) {
    const capture_config cfg;
    constant_classifier always{true};
    crowd_counter counter{cfg, always};
    counter.set_clusterer(make_hierarchical_clusterer(0.4, cfg));
    // Build an oversized cloud (> max_points) inside the ROI.
    point_cloud big;
    rng r{9};
    for (int i = 0; i < 9000; ++i) {
        big.push_back({r.uniform(12.0, 35.0), r.uniform(-2.5, 2.5), r.uniform(-2.0, -0.5)});
    }
    const count_result result = counter.count(big, r);  // must not throw
    EXPECT_GE(result.cluster_count, 0u);
}


TEST(multiplicity, single_person_cluster_counts_one) {
    rng r{20};
    point_cloud person;
    for (int i = 0; i < 60; ++i) {
        person.push_back({20.0 + r.normal(0.0, 0.15), r.normal(0.0, 0.12),
                          -3.0 + r.uniform(0.2, 1.7)});
    }
    EXPECT_EQ(estimate_multiplicity(person, multiplicity_config{}), 1u);
}

TEST(multiplicity, merged_pair_counts_two) {
    rng r{21};
    point_cloud pair;
    for (int i = 0; i < 60; ++i) {
        pair.push_back({20.0 + r.normal(0.0, 0.15), r.normal(0.0, 0.12),
                        -3.0 + r.uniform(0.2, 1.7)});
        pair.push_back({20.9 + r.normal(0.0, 0.15), 0.4 + r.normal(0.0, 0.12),
                        -3.0 + r.uniform(0.2, 1.7)});
    }
    const std::size_t k = estimate_multiplicity(pair, multiplicity_config{});
    EXPECT_GE(k, 2u);
    EXPECT_LE(k, 4u);  // these synthetic bodies are wider than LiDAR donors
}

TEST(multiplicity, disabled_returns_one) {
    rng r{22};
    point_cloud wide;
    for (int i = 0; i < 200; ++i) {
        wide.push_back({15.0 + r.uniform(0.0, 4.0), r.uniform(-2.0, 2.0), -2.0});
    }
    multiplicity_config cfg;
    cfg.enabled = false;
    EXPECT_EQ(estimate_multiplicity(wide, cfg), 1u);
    cfg.enabled = true;
    EXPECT_GT(estimate_multiplicity(wide, cfg), 3u);
}

TEST(multiplicity, clamped_by_max) {
    rng r{23};
    point_cloud huge;
    for (int i = 0; i < 3000; ++i) {
        huge.push_back({10.0 + r.uniform(0.0, 20.0), r.uniform(-8.0, 8.0), -2.0});
    }
    multiplicity_config cfg;
    cfg.max_per_cluster = 5;
    EXPECT_EQ(estimate_multiplicity(huge, cfg), 5u);
}

TEST(multiplicity, empty_cluster_is_one) {
    EXPECT_EQ(estimate_multiplicity(point_cloud{}, multiplicity_config{}), 1u);
}

}  // namespace
}  // namespace hawc
