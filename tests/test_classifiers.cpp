// Tests for the classifier implementations on small synthetic cluster
// sets: trainability, the uniform interface, quantized wrappers, the
// feature scaler, and OC-SVM behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "classifiers/autoencoder_model.hpp"
#include "classifiers/feature_scaler.hpp"
#include "classifiers/hawc_model.hpp"
#include "classifiers/ocsvm_model.hpp"
#include "classifiers/pointnet_model.hpp"
#include "classifiers/quantized_classifier.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"

namespace hawc {
namespace {

/// Easy synthetic task: "humans" are tall columns, "objects" are flat
/// ground blobs. Every classifier should separate these.
point_cloud tall_cluster(rng& r, std::size_t n = 50) {
    point_cloud cloud;
    const double x = r.uniform(14.0, 30.0);
    const double y = r.uniform(-2.0, 2.0);
    for (std::size_t i = 0; i < n; ++i) {
        cloud.push_back({x + r.normal(0.0, 0.12), y + r.normal(0.0, 0.12),
                         -3.0 + r.uniform(0.2, 1.7)});
    }
    return cloud;
}

point_cloud flat_cluster(rng& r, std::size_t n = 50) {
    point_cloud cloud;
    const double x = r.uniform(14.0, 30.0);
    const double y = r.uniform(-2.0, 2.0);
    for (std::size_t i = 0; i < n; ++i) {
        cloud.push_back({x + r.normal(0.0, 0.5), y + r.normal(0.0, 0.5),
                         -3.0 + r.uniform(0.2, 0.5)});
    }
    return cloud;
}

struct toy_data {
    cluster_dataset train;
    cluster_dataset test;
    object_pool pool;
};

toy_data make_toy(rng& r, std::size_t per_class = 60) {
    toy_data data;
    for (std::size_t i = 0; i < per_class; ++i) {
        data.train.add(tall_cluster(r), label_human);
        data.train.add(flat_cluster(r), label_object);
    }
    for (std::size_t i = 0; i < per_class / 3; ++i) {
        data.test.add(tall_cluster(r), label_human);
        data.test.add(flat_cluster(r), label_object);
    }
    for (std::size_t i = 0; i < 20; ++i) data.pool.add_cloud(flat_cluster(r));
    return data;
}

hawc_config small_hawc_config() {
    hawc_config cfg;
    cfg.features.upsample.target_points = 64;
    cfg.features.projection.target_points = 64;
    cfg.training.epochs = 6;
    return cfg;
}

TEST(hawc_model_test, learns_toy_task) {
    rng r{1};
    toy_data data = make_toy(r);
    hawc_model model{small_hawc_config(), data.pool, r};
    model.train(data.train, nullptr, r);
    const auto m = model.evaluate(data.test, r);
    EXPECT_GT(m.accuracy, 0.9);
    EXPECT_GT(m.f1, 0.9);
}

TEST(hawc_model_test, parameter_count_near_paper) {
    rng r{2};
    object_pool pool;
    pool.add_cloud(flat_cluster(r));
    hawc_config cfg;
    cfg.features.upsample.target_points = 324;  // the paper's N'_max
    cfg.features.projection.target_points = 324;
    hawc_model model{cfg, pool, r};
    // Paper reports 62,114 parameters for its 3-conv + 2-FC network.
    EXPECT_NEAR(static_cast<double>(model.parameter_count()), 62114.0, 4000.0);
}

TEST(hawc_model_test, classifier_interface) {
    rng r{3};
    toy_data data = make_toy(r, 40);
    hawc_model model{small_hawc_config(), data.pool, r};
    model.train(data.train, nullptr, r);
    EXPECT_EQ(model.name(), "HAWC");
    const human_classifier& iface = model;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.test.size(); ++i) {
        if (iface.is_human(data.test.clusters[i], r) ==
            (data.test.labels[i] == label_human)) {
            ++correct;
        }
    }
    EXPECT_GT(static_cast<double>(correct) / static_cast<double>(data.test.size()), 0.85);
}

TEST(hawc_model_test, save_load_roundtrip) {
    rng r{4};
    toy_data data = make_toy(r, 30);
    hawc_model model{small_hawc_config(), data.pool, r};
    model.train(data.train, nullptr, r);

    const auto path = std::filesystem::temp_directory_path() / "hawc_test_model.bin";
    model.save(path);

    rng r2{5};
    hawc_model loaded{small_hawc_config(), data.pool, r2};
    loaded.load(path);
    // Same predictions after reload (fixed rng for up-sampling noise).
    for (std::size_t i = 0; i < 10 && i < data.test.size(); ++i) {
        rng ra{100 + i};
        rng rb{100 + i};
        EXPECT_EQ(model.is_human(data.test.clusters[i], ra),
                  loaded.is_human(data.test.clusters[i], rb));
    }
    std::filesystem::remove(path);
}

TEST(hawc_model_test, quantized_wrapper_agrees) {
    rng r{6};
    toy_data data = make_toy(r, 50);
    hawc_model model{small_hawc_config(), data.pool, r};
    model.train(data.train, nullptr, r);

    auto q = model.quantize(data.train, r, 40);
    const auto& extractor = model.extractor();
    quantized_classifier int8{std::move(q),
                              [&extractor](const point_cloud& c, rng& rr) {
                                  return extractor.extract(c, rr);
                              },
                              "HAWC-int8"};
    const auto fp_metrics = model.evaluate(data.test, r);
    const auto q_metrics = int8.evaluate(data.test, r);
    EXPECT_NEAR(q_metrics.accuracy, fp_metrics.accuracy, 0.1);
    EXPECT_EQ(int8.name(), "HAWC-int8");
}

TEST(pointnet_model_test, learns_toy_task) {
    rng r{7};
    toy_data data = make_toy(r);
    pointnet_config cfg;
    cfg.upsample.target_points = 64;
    cfg.training.epochs = 8;
    pointnet_model model{cfg, data.pool, r};
    model.train(data.train, nullptr, r);
    EXPECT_GT(model.evaluate(data.test, r).accuracy, 0.85);
    EXPECT_EQ(model.name(), "PointNet");
}

TEST(pointnet_model_test, paper_scale_parameter_count) {
    rng r{8};
    object_pool pool;
    pool.add_cloud(flat_cluster(r));
    pointnet_model model{pointnet_config::paper_scale(), pool, r};
    // Original PointNet classification network: ~748k parameters.
    EXPECT_NEAR(static_cast<double>(model.parameter_count()), 748000.0, 80000.0);
}

TEST(pointnet_model_test, featurize_shape) {
    rng r{9};
    object_pool pool;
    pool.add_cloud(flat_cluster(r));
    pointnet_config cfg;
    cfg.upsample.target_points = 128;
    pointnet_model model{cfg, pool, r};
    const tensor t = model.featurize_cluster(tall_cluster(r), r);
    EXPECT_EQ(t.shape(), (std::vector<std::size_t>{1, 128, 1, 3}));
    EXPECT_EQ(model.sample_shape(), (std::vector<std::size_t>{128, 1, 3}));
}

TEST(autoencoder_model_test, learns_toy_task) {
    rng r{10};
    toy_data data = make_toy(r);
    autoencoder_config cfg;
    cfg.head_training.epochs = 25;
    autoencoder_model model{cfg, r};
    model.train(data.train, nullptr, r);
    EXPECT_GT(model.evaluate(data.test).accuracy, 0.8);
    EXPECT_EQ(model.name(), "AutoEncoder");
}

TEST(autoencoder_model_test, featurize_before_training_throws) {
    rng r{11};
    autoencoder_model model{autoencoder_config{}, r};
    EXPECT_THROW(model.featurize_cluster(tall_cluster(r)), invalid_argument_error);
}

TEST(autoencoder_model_test, quantizes) {
    rng r{12};
    toy_data data = make_toy(r, 40);
    autoencoder_model model{autoencoder_config{}, r};
    model.train(data.train, nullptr, r);
    auto q = model.quantize(data.train, r, 30);
    EXPECT_GT(q.op_count(), 3u);
    // Quantized path produces sane logits on a test cluster.
    const tensor logits = q.forward(model.featurize_cluster(data.test.clusters[0]));
    EXPECT_EQ(logits.dim(1), 2u);
}

TEST(ocsvm_model_test, accepts_humans_rejects_outliers) {
    rng r{13};
    toy_data data = make_toy(r);
    ocsvm_model model;
    model.train(data.train);
    EXPECT_TRUE(model.trained());
    EXPECT_GT(model.support_vector_count(), 0u);

    // Training-distribution humans score higher than flat clusters.
    double human_score = 0.0;
    double object_score = 0.0;
    for (int i = 0; i < 20; ++i) {
        human_score += model.decision_value(tall_cluster(r));
        object_score += model.decision_value(flat_cluster(r));
    }
    EXPECT_GT(human_score, object_score);
    const auto m = model.evaluate(data.test);
    EXPECT_GT(m.accuracy, 0.6);
}

TEST(ocsvm_model_test, untrained_throws) {
    ocsvm_model model;
    rng r{14};
    EXPECT_THROW(model.decision_value(tall_cluster(r)), invalid_argument_error);
}

TEST(ocsvm_model_test, requires_positive_samples) {
    cluster_dataset only_objects;
    rng r{15};
    only_objects.add(flat_cluster(r), label_object);
    ocsvm_model model;
    EXPECT_THROW(model.train(only_objects), invalid_argument_error);
}

TEST(ocsvm_model_test, nu_bounds_support_fraction) {
    rng r{16};
    toy_data data = make_toy(r, 100);
    ocsvm_config cfg;
    cfg.nu = 0.05;
    ocsvm_model model{cfg};
    model.train(data.train);
    // With nu = 0.05 at least ~nu fraction are support vectors.
    EXPECT_GE(model.support_vector_count(), 5u);
}

TEST(feature_scaler_test, standardizes) {
    std::vector<tensor> features;
    rng r{17};
    for (int i = 0; i < 200; ++i) {
        tensor t{{1, 2}};
        t[0] = static_cast<float>(r.normal(10.0, 4.0));
        t[1] = static_cast<float>(r.normal(-3.0, 0.5));
        features.push_back(t);
    }
    feature_scaler scaler;
    scaler.fit(features);
    running_stats s0;
    running_stats s1;
    for (const auto& f : features) {
        const tensor t = scaler.transform(f);
        s0.add(t[0]);
        s1.add(t[1]);
    }
    EXPECT_NEAR(s0.mean(), 0.0, 0.05);
    EXPECT_NEAR(s0.stddev(), 1.0, 0.05);
    EXPECT_NEAR(s1.mean(), 0.0, 0.05);
}

TEST(feature_scaler_test, rejects_misuse) {
    feature_scaler scaler;
    tensor t{{1, 2}};
    EXPECT_THROW(scaler.transform(t), invalid_argument_error);
    EXPECT_THROW(scaler.fit({}), invalid_argument_error);
}

}  // namespace
}  // namespace hawc
