// Determinism tests for the parallel frame engine: parallel_for's
// partitioning contract, and byte-identical results across thread counts
// for every kernel that fans out over the global pool (DBSCAN, the k-NN
// elbow curve, height variation, CNN inference, end-to-end counting and
// the fault-injected supervisor soak).

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "classifiers/hawc_model.hpp"
#include "clustering/adaptive_eps.hpp"
#include "clustering/dbscan.hpp"
#include "common/thread_pool.hpp"
#include "counting/crowd_counter.hpp"
#include "features/height_features.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/supervisor.hpp"

namespace hawc {
namespace {

/// Thread counts every determinism sweep must agree across. Always
/// includes more lanes than this container has cores, so oversubscribed
/// scheduling is exercised too.
std::vector<std::size_t> sweep_counts() {
    std::vector<std::size_t> counts{1, 2, 4};
    const std::size_t hw = std::thread::hardware_concurrency();
    if (hw > 4) counts.push_back(hw);
    return counts;
}

/// Restores the global pool to the default sizing when a sweep ends.
struct pool_guard {
    ~pool_guard() {
        std::size_t hw = std::thread::hardware_concurrency();
        set_global_thread_count(hw == 0 ? 1 : hw);
    }
};

/// Cheap deterministic classifier for the soak (mirrors the runtime
/// tests): humans are tall-ish, compact clusters.
class extent_classifier_for_soak final : public human_classifier {
public:
    bool is_human(const point_cloud& cluster, rng&) const override {
        if (cluster.empty()) return false;
        const vec3 extent = cluster.bounds().size();
        return extent.z > 0.7 && std::max(extent.x, extent.y) < 2.5;
    }
    std::string name() const override { return "ExtentGate"; }
};

/// Ground plane plus person-sized blobs, as in the runtime tests.
point_cloud synth_frame(rng& r, std::size_t people) {
    point_cloud cloud;
    for (int i = 0; i < 600; ++i) {
        cloud.push_back({r.uniform(10.0, 36.0), r.uniform(-3.0, 3.0),
                         -3.0 + std::abs(r.normal(0.0, 0.05))});
    }
    for (std::size_t p = 0; p < people; ++p) {
        const double fx = r.uniform(14.0, 33.0);
        const double fy = r.uniform(-2.0, 2.0);
        const double height = r.uniform(1.5, 1.9);
        for (int i = 0; i < 120; ++i) {
            cloud.push_back({fx + r.normal(0.0, 0.12), fy + r.normal(0.0, 0.12),
                             -2.9 + r.uniform() * height});
        }
    }
    return cloud;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }
std::uint32_t bits(float v) { return std::bit_cast<std::uint32_t>(v); }

// --- parallel_for partitioning contract ---

TEST(thread_pool, covers_every_index_exactly_once) {
    pool_guard guard;
    for (std::size_t threads : sweep_counts()) {
        set_global_thread_count(threads);
        std::vector<int> hits(1000, 0);
        global_pool().parallel_for(0, hits.size(), 7,
                                   [&](std::size_t lo, std::size_t hi, std::size_t) {
                                       for (std::size_t i = lo; i < hi; ++i) ++hits[i];
                                   });
        for (std::size_t i = 0; i < hits.size(); ++i) {
            ASSERT_EQ(hits[i], 1) << "index " << i << " at " << threads << " threads";
        }
    }
}

TEST(thread_pool, chunk_boundaries_depend_only_on_range_and_pool_size) {
    pool_guard guard;
    set_global_thread_count(4);
    for (int run = 0; run < 2; ++run) {
        std::vector<std::pair<std::size_t, std::size_t>> chunks(global_pool().max_slots(),
                                                               {0, 0});
        global_pool().parallel_for(10, 1010, 50,
                                   [&](std::size_t lo, std::size_t hi, std::size_t slot) {
                                       chunks[slot] = {lo, hi};
                                   });
        // Contiguous, ordered by slot, covering [10, 1010), each >= grain.
        std::size_t expect_lo = 10;
        for (const auto& [lo, hi] : chunks) {
            ASSERT_EQ(lo, expect_lo);
            ASSERT_GE(hi - lo, 50u);
            expect_lo = hi;
        }
        ASSERT_EQ(expect_lo, 1010u);
    }
}

TEST(thread_pool, small_ranges_respect_grain) {
    pool_guard guard;
    set_global_thread_count(8);
    std::size_t chunks_seen = 0;
    global_pool().parallel_for(0, 10, 64, [&](std::size_t lo, std::size_t hi, std::size_t) {
        if (lo == 0 && hi == 10) ++chunks_seen;
    });
    EXPECT_EQ(chunks_seen, 1u);  // one chunk: the range is below one grain
}

TEST(thread_pool, propagates_exceptions_from_workers) {
    pool_guard guard;
    set_global_thread_count(4);
    EXPECT_THROW(global_pool().parallel_for(
                     0, 1000, 1,
                     [&](std::size_t lo, std::size_t, std::size_t) {
                         if (lo > 0) throw std::runtime_error{"worker chunk failed"};
                     }),
                 std::runtime_error);
    // The pool survives the exception and keeps scheduling.
    std::vector<int> hits(100, 0);
    global_pool().parallel_for(0, hits.size(), 1,
                               [&](std::size_t lo, std::size_t hi, std::size_t) {
                                   for (std::size_t i = lo; i < hi; ++i) ++hits[i];
                               });
    for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(thread_pool, nested_regions_run_inline) {
    pool_guard guard;
    set_global_thread_count(4);
    std::vector<int> hits(64, 0);
    global_pool().parallel_for(0, 4, 1, [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t outer = lo; outer < hi; ++outer) {
            // Two nested regions in sequence: the second must stay inline
            // too (a naive flag reset after the first would re-enter the
            // pool and deadlock — count_one does exactly this pattern).
            for (int half = 0; half < 2; ++half) {
                global_pool().parallel_for(
                    0, 8, 1,
                    [&, outer, half](std::size_t ilo, std::size_t ihi, std::size_t slot) {
                        EXPECT_EQ(slot, 0u);  // inner region sees a single chunk
                        for (std::size_t i = ilo; i < ihi; ++i) {
                            ++hits[outer * 16 + half * 8 + i];
                        }
                    });
            }
        }
    });
    for (int h : hits) EXPECT_EQ(h, 1);
}

// --- Kernel determinism across thread counts ---

TEST(determinism, dbscan_labels_identical_for_every_thread_count) {
    pool_guard guard;
    rng scene{101};
    const point_cloud cloud = synth_frame(scene, 6);
    dbscan_config cfg;
    cfg.eps = 0.3;
    cfg.min_points = 5;

    set_global_thread_count(1);
    const cluster_result reference = dbscan(cloud, cfg);
    for (std::size_t threads : sweep_counts()) {
        set_global_thread_count(threads);
        const cluster_result got = dbscan(cloud, cfg);
        ASSERT_EQ(got.labels, reference.labels) << "at " << threads << " threads";
        ASSERT_EQ(got.cluster_count, reference.cluster_count);
    }
}

TEST(determinism, knn_curve_and_adaptive_eps_identical) {
    pool_guard guard;
    rng scene{102};
    const point_cloud cloud = synth_frame(scene, 5);
    const adaptive_eps_config cfg;

    set_global_thread_count(1);
    const std::vector<double> ref_curve = knn_distance_curve(cloud, cfg.k, cfg.metric);
    const double ref_eps = adaptive_epsilon(cloud, cfg);
    for (std::size_t threads : sweep_counts()) {
        set_global_thread_count(threads);
        const std::vector<double> curve = knn_distance_curve(cloud, cfg.k, cfg.metric);
        ASSERT_EQ(curve.size(), ref_curve.size());
        for (std::size_t i = 0; i < curve.size(); ++i) {
            ASSERT_EQ(bits(curve[i]), bits(ref_curve[i]))
                << "curve[" << i << "] at " << threads << " threads";
        }
        ASSERT_EQ(bits(adaptive_epsilon(cloud, cfg)), bits(ref_eps));
    }
}

TEST(determinism, height_variation_identical) {
    pool_guard guard;
    rng scene{103};
    const point_cloud cloud = synth_frame(scene, 4);

    set_global_thread_count(1);
    const std::vector<double> reference = height_variation(cloud, 8);
    for (std::size_t threads : sweep_counts()) {
        set_global_thread_count(threads);
        const std::vector<double> got = height_variation(cloud, 8);
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(bits(got[i]), bits(reference[i]))
                << "sigma[" << i << "] at " << threads << " threads";
        }
    }
}

// Shared HAWC model (random initialization; determinism needs no
// training) over a small object pool.
hawc_model& shared_model() {
    static hawc_model model = [] {
        rng pool_rng{104};
        object_pool pool;
        pool.add_cloud(synth_frame(pool_rng, 3));
        rng init{105};
        return hawc_model{hawc_config{}, std::move(pool), init};
    }();
    return model;
}

TEST(determinism, hawc_logits_identical) {
    pool_guard guard;
    hawc_model& model = shared_model();

    rng scene{106};
    point_cloud person;
    for (int i = 0; i < 140; ++i) {
        person.push_back({20.0 + scene.normal(0.0, 0.12), scene.normal(0.0, 0.12),
                          -2.9 + scene.uniform() * 1.7});
    }

    set_global_thread_count(1);
    rng ref_rng{107};
    const tensor reference = model.network().infer(model.extractor().extract(person, ref_rng));
    for (std::size_t threads : sweep_counts()) {
        set_global_thread_count(threads);
        rng r{107};
        const tensor got = model.network().infer(model.extractor().extract(person, r));
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t i = 0; i < got.size(); ++i) {
            ASSERT_EQ(bits(got.data()[i]), bits(reference.data()[i]))
                << "logit " << i << " at " << threads << " threads";
        }
    }
}

TEST(determinism, end_to_end_count_identical) {
    pool_guard guard;
    hawc_model& model = shared_model();
    capture_config capture;
    capture.min_cluster_points = 20;
    const crowd_counter counter{capture, model};

    rng scene{108};
    const point_cloud raw = synth_frame(scene, 5);

    set_global_thread_count(1);
    rng ref_rng{109};
    const count_result reference = counter.count(raw, ref_rng);
    for (std::size_t threads : sweep_counts()) {
        set_global_thread_count(threads);
        rng r{109};
        const count_result got = counter.count(raw, r);
        ASSERT_EQ(got.count, reference.count) << "at " << threads << " threads";
        ASSERT_EQ(got.cluster_count, reference.cluster_count);
    }
}

// --- Chaos soak under the pool ---
//
// A shortened rerun of the runtime chaos soak at several pool sizes: the
// per-frame outcomes must not depend on the thread count (the flaky
// classifier keeps the sequential counting path; the parallel clustering
// kernels underneath must be invisible), and the degradation ladder must
// still fire.

TEST(determinism, chaos_soak_outcomes_identical_and_ladder_fires) {
    pool_guard guard;
    constexpr std::size_t frames = 1200;

    struct outcome {
        frame_status status;
        std::size_t count;
        bool fixed_eps;
        bool float_fallback;
    };

    const auto soak = [&] {
        const extent_classifier_for_soak model;
        const flaky_classifier primary{model, 0.02, 4242};
        supervisor_config cfg;
        cfg.capture.clustering.max_eps = 0.8;
        cfg.max_stale_frames = 4;
        // Determinism across runs: timing-based rungs must not flap, so
        // the cooperative deadlines are disabled for this sweep.
        cfg.eps_selection_deadline_ms = 0.0;
        cfg.classification_deadline_ms = 0.0;
        cfg.frame_deadline_ms = 0.0;
        frame_supervisor sup{cfg, primary, &model};

        fault_injector injector{fault_injection_config{}};
        rng scene_rng{31};
        rng fault_rng{32};
        rng pipeline_rng{33};

        std::vector<outcome> outcomes;
        outcomes.reserve(frames);
        for (std::size_t i = 0; i < frames; ++i) {
            const point_cloud base = synth_frame(scene_rng, scene_rng.uniform_index(5));
            const auto kind = static_cast<fault_kind>((i / 2) % fault_kind_count);
            const point_cloud frame =
                (i % 2) == 1 ? injector.apply(kind, base, fault_rng) : base;
            const frame_report report = sup.process(frame, pipeline_rng);
            outcomes.push_back({report.status, report.count, report.used_fixed_eps,
                                report.used_float_fallback});
        }
        const health_counters& health = sup.health();
        EXPECT_TRUE(health.accounted());
        EXPECT_GT(health.fixed_eps_fallbacks, 0u);
        EXPECT_GT(health.float_model_fallbacks, 0u);
        EXPECT_GT(health.stale_counts_served, 0u);
        return outcomes;
    };

    set_global_thread_count(1);
    const std::vector<outcome> reference = soak();
    for (std::size_t threads : sweep_counts()) {
        set_global_thread_count(threads);
        const std::vector<outcome> got = soak();
        ASSERT_EQ(got.size(), reference.size());
        for (std::size_t i = 0; i < frames; ++i) {
            ASSERT_EQ(got[i].status, reference[i].status)
                << "frame " << i << " at " << threads << " threads";
            ASSERT_EQ(got[i].count, reference[i].count) << "frame " << i;
            ASSERT_EQ(got[i].fixed_eps, reference[i].fixed_eps) << "frame " << i;
            ASSERT_EQ(got[i].float_fallback, reference[i].float_fallback) << "frame " << i;
        }
    }
}

}  // namespace
}  // namespace hawc
