file(REMOVE_RECURSE
  "CMakeFiles/test_classifiers.dir/test_classifiers.cpp.o"
  "CMakeFiles/test_classifiers.dir/test_classifiers.cpp.o.d"
  "test_classifiers"
  "test_classifiers.pdb"
  "test_classifiers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
