file(REMOVE_RECURSE
  "CMakeFiles/test_deploy.dir/test_deploy.cpp.o"
  "CMakeFiles/test_deploy.dir/test_deploy.cpp.o.d"
  "test_deploy"
  "test_deploy.pdb"
  "test_deploy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
