# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_pointcloud[1]_include.cmake")
include("/root/repo/build/tests/test_lidar[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_preprocess[1]_include.cmake")
include("/root/repo/build/tests/test_clustering[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_quant[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_classifiers[1]_include.cmake")
include("/root/repo/build/tests/test_dataset[1]_include.cmake")
include("/root/repo/build/tests/test_counting[1]_include.cmake")
include("/root/repo/build/tests/test_edge[1]_include.cmake")
include("/root/repo/build/tests/test_deploy[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
