file(REMOVE_RECURSE
  "../examples/dataset_tools"
  "../examples/dataset_tools.pdb"
  "CMakeFiles/dataset_tools.dir/dataset_tools.cpp.o"
  "CMakeFiles/dataset_tools.dir/dataset_tools.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
