# Empty dependencies file for dataset_tools.
# This may be replaced when dependencies are built.
