file(REMOVE_RECURSE
  "../examples/campus_walkway"
  "../examples/campus_walkway.pdb"
  "CMakeFiles/campus_walkway.dir/campus_walkway.cpp.o"
  "CMakeFiles/campus_walkway.dir/campus_walkway.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_walkway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
