# Empty dependencies file for campus_walkway.
# This may be replaced when dependencies are built.
