
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/campus_walkway.cpp" "examples_build/CMakeFiles/campus_walkway.dir/campus_walkway.cpp.o" "gcc" "examples_build/CMakeFiles/campus_walkway.dir/campus_walkway.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hawc_counting.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_edge.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_deploy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_lidar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_preprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_classifiers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_pointcloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
