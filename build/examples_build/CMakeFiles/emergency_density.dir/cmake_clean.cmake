file(REMOVE_RECURSE
  "../examples/emergency_density"
  "../examples/emergency_density.pdb"
  "CMakeFiles/emergency_density.dir/emergency_density.cpp.o"
  "CMakeFiles/emergency_density.dir/emergency_density.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emergency_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
