# Empty compiler generated dependencies file for emergency_density.
# This may be replaced when dependencies are built.
