file(REMOVE_RECURSE
  "../examples/edge_deployment"
  "../examples/edge_deployment.pdb"
  "CMakeFiles/edge_deployment.dir/edge_deployment.cpp.o"
  "CMakeFiles/edge_deployment.dir/edge_deployment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
