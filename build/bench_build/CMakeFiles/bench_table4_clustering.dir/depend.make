# Empty dependencies file for bench_table4_clustering.
# This may be replaced when dependencies are built.
