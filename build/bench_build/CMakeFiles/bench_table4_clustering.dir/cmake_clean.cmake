file(REMOVE_RECURSE
  "../bench/bench_table4_clustering"
  "../bench/bench_table4_clustering.pdb"
  "CMakeFiles/bench_table4_clustering.dir/bench_table4_clustering.cpp.o"
  "CMakeFiles/bench_table4_clustering.dir/bench_table4_clustering.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
