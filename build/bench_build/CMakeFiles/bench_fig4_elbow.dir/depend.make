# Empty dependencies file for bench_fig4_elbow.
# This may be replaced when dependencies are built.
