file(REMOVE_RECURSE
  "../bench/bench_fig4_elbow"
  "../bench/bench_fig4_elbow.pdb"
  "CMakeFiles/bench_fig4_elbow.dir/bench_fig4_elbow.cpp.o"
  "CMakeFiles/bench_fig4_elbow.dir/bench_fig4_elbow.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_elbow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
