file(REMOVE_RECURSE
  "../bench/bench_table3_upsampling"
  "../bench/bench_table3_upsampling.pdb"
  "CMakeFiles/bench_table3_upsampling.dir/bench_table3_upsampling.cpp.o"
  "CMakeFiles/bench_table3_upsampling.dir/bench_table3_upsampling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_upsampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
