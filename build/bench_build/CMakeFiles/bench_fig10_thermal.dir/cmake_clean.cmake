file(REMOVE_RECURSE
  "../bench/bench_fig10_thermal"
  "../bench/bench_fig10_thermal.pdb"
  "CMakeFiles/bench_fig10_thermal.dir/bench_fig10_thermal.cpp.o"
  "CMakeFiles/bench_fig10_thermal.dir/bench_fig10_thermal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
