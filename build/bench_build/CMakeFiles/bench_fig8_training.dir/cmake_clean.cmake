file(REMOVE_RECURSE
  "../bench/bench_fig8_training"
  "../bench/bench_fig8_training.pdb"
  "CMakeFiles/bench_fig8_training.dir/bench_fig8_training.cpp.o"
  "CMakeFiles/bench_fig8_training.dir/bench_fig8_training.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
