file(REMOVE_RECURSE
  "../bench/bench_fig6_histograms"
  "../bench/bench_fig6_histograms.pdb"
  "CMakeFiles/bench_fig6_histograms.dir/bench_fig6_histograms.cpp.o"
  "CMakeFiles/bench_fig6_histograms.dir/bench_fig6_histograms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
