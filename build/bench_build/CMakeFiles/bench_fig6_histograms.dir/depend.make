# Empty dependencies file for bench_fig6_histograms.
# This may be replaced when dependencies are built.
