# Empty dependencies file for bench_ablation_hawc.
# This may be replaced when dependencies are built.
