file(REMOVE_RECURSE
  "../bench/bench_ablation_hawc"
  "../bench/bench_ablation_hawc.pdb"
  "CMakeFiles/bench_ablation_hawc.dir/bench_ablation_hawc.cpp.o"
  "CMakeFiles/bench_ablation_hawc.dir/bench_ablation_hawc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hawc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
