file(REMOVE_RECURSE
  "../bench/bench_table2_inference_speed"
  "../bench/bench_table2_inference_speed.pdb"
  "CMakeFiles/bench_table2_inference_speed.dir/bench_table2_inference_speed.cpp.o"
  "CMakeFiles/bench_table2_inference_speed.dir/bench_table2_inference_speed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_inference_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
