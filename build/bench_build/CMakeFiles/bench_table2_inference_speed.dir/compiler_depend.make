# Empty compiler generated dependencies file for bench_table2_inference_speed.
# This may be replaced when dependencies are built.
