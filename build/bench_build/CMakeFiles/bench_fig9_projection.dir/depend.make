# Empty dependencies file for bench_fig9_projection.
# This may be replaced when dependencies are built.
