file(REMOVE_RECURSE
  "../bench/bench_fig9_projection"
  "../bench/bench_fig9_projection.pdb"
  "CMakeFiles/bench_fig9_projection.dir/bench_fig9_projection.cpp.o"
  "CMakeFiles/bench_fig9_projection.dir/bench_fig9_projection.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
