# Empty dependencies file for hawc_bench_common.
# This may be replaced when dependencies are built.
