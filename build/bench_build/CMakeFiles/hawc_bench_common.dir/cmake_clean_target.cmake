file(REMOVE_RECURSE
  "libhawc_bench_common.a"
)
