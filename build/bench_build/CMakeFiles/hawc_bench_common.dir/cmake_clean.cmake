file(REMOVE_RECURSE
  "CMakeFiles/hawc_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/hawc_bench_common.dir/bench_common.cpp.o.d"
  "libhawc_bench_common.a"
  "libhawc_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawc_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
