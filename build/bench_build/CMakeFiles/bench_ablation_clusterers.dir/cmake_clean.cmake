file(REMOVE_RECURSE
  "../bench/bench_ablation_clusterers"
  "../bench/bench_ablation_clusterers.pdb"
  "CMakeFiles/bench_ablation_clusterers.dir/bench_ablation_clusterers.cpp.o"
  "CMakeFiles/bench_ablation_clusterers.dir/bench_ablation_clusterers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_clusterers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
