# Empty compiler generated dependencies file for bench_ablation_clusterers.
# This may be replaced when dependencies are built.
