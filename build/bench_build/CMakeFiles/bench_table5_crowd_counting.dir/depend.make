# Empty dependencies file for bench_table5_crowd_counting.
# This may be replaced when dependencies are built.
