file(REMOVE_RECURSE
  "../bench/bench_table5_crowd_counting"
  "../bench/bench_table5_crowd_counting.pdb"
  "CMakeFiles/bench_table5_crowd_counting.dir/bench_table5_crowd_counting.cpp.o"
  "CMakeFiles/bench_table5_crowd_counting.dir/bench_table5_crowd_counting.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_crowd_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
