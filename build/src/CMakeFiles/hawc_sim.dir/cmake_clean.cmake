file(REMOVE_RECURSE
  "CMakeFiles/hawc_sim.dir/sim/human_model.cpp.o"
  "CMakeFiles/hawc_sim.dir/sim/human_model.cpp.o.d"
  "CMakeFiles/hawc_sim.dir/sim/object_models.cpp.o"
  "CMakeFiles/hawc_sim.dir/sim/object_models.cpp.o.d"
  "CMakeFiles/hawc_sim.dir/sim/scene.cpp.o"
  "CMakeFiles/hawc_sim.dir/sim/scene.cpp.o.d"
  "CMakeFiles/hawc_sim.dir/sim/trajectory.cpp.o"
  "CMakeFiles/hawc_sim.dir/sim/trajectory.cpp.o.d"
  "libhawc_sim.a"
  "libhawc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
