file(REMOVE_RECURSE
  "libhawc_sim.a"
)
