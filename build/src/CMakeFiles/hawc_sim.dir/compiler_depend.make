# Empty compiler generated dependencies file for hawc_sim.
# This may be replaced when dependencies are built.
