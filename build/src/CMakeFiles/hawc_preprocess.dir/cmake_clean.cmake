file(REMOVE_RECURSE
  "CMakeFiles/hawc_preprocess.dir/preprocess/ingest.cpp.o"
  "CMakeFiles/hawc_preprocess.dir/preprocess/ingest.cpp.o.d"
  "libhawc_preprocess.a"
  "libhawc_preprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawc_preprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
