file(REMOVE_RECURSE
  "libhawc_preprocess.a"
)
