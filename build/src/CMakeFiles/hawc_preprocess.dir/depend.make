# Empty dependencies file for hawc_preprocess.
# This may be replaced when dependencies are built.
