file(REMOVE_RECURSE
  "CMakeFiles/hawc_counting.dir/counting/crowd_counter.cpp.o"
  "CMakeFiles/hawc_counting.dir/counting/crowd_counter.cpp.o.d"
  "libhawc_counting.a"
  "libhawc_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawc_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
