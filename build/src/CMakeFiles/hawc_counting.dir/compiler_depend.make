# Empty compiler generated dependencies file for hawc_counting.
# This may be replaced when dependencies are built.
