file(REMOVE_RECURSE
  "libhawc_counting.a"
)
