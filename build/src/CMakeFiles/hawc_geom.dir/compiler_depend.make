# Empty compiler generated dependencies file for hawc_geom.
# This may be replaced when dependencies are built.
