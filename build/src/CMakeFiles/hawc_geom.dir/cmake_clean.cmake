file(REMOVE_RECURSE
  "CMakeFiles/hawc_geom.dir/geom/vec3.cpp.o"
  "CMakeFiles/hawc_geom.dir/geom/vec3.cpp.o.d"
  "libhawc_geom.a"
  "libhawc_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawc_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
