file(REMOVE_RECURSE
  "libhawc_geom.a"
)
