# Empty compiler generated dependencies file for hawc_common.
# This may be replaced when dependencies are built.
