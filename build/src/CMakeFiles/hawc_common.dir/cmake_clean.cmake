file(REMOVE_RECURSE
  "CMakeFiles/hawc_common.dir/common/error.cpp.o"
  "CMakeFiles/hawc_common.dir/common/error.cpp.o.d"
  "CMakeFiles/hawc_common.dir/common/rng.cpp.o"
  "CMakeFiles/hawc_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/hawc_common.dir/common/stats.cpp.o"
  "CMakeFiles/hawc_common.dir/common/stats.cpp.o.d"
  "CMakeFiles/hawc_common.dir/common/table.cpp.o"
  "CMakeFiles/hawc_common.dir/common/table.cpp.o.d"
  "libhawc_common.a"
  "libhawc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
