file(REMOVE_RECURSE
  "libhawc_common.a"
)
