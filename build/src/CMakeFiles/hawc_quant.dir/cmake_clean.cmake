file(REMOVE_RECURSE
  "CMakeFiles/hawc_quant.dir/quant/calibrate.cpp.o"
  "CMakeFiles/hawc_quant.dir/quant/calibrate.cpp.o.d"
  "CMakeFiles/hawc_quant.dir/quant/q_model.cpp.o"
  "CMakeFiles/hawc_quant.dir/quant/q_model.cpp.o.d"
  "CMakeFiles/hawc_quant.dir/quant/q_types.cpp.o"
  "CMakeFiles/hawc_quant.dir/quant/q_types.cpp.o.d"
  "libhawc_quant.a"
  "libhawc_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawc_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
