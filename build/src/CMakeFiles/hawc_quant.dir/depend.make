# Empty dependencies file for hawc_quant.
# This may be replaced when dependencies are built.
