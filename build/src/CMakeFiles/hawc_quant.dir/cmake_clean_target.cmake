file(REMOVE_RECURSE
  "libhawc_quant.a"
)
