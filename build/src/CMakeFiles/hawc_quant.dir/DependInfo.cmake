
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/calibrate.cpp" "src/CMakeFiles/hawc_quant.dir/quant/calibrate.cpp.o" "gcc" "src/CMakeFiles/hawc_quant.dir/quant/calibrate.cpp.o.d"
  "/root/repo/src/quant/q_model.cpp" "src/CMakeFiles/hawc_quant.dir/quant/q_model.cpp.o" "gcc" "src/CMakeFiles/hawc_quant.dir/quant/q_model.cpp.o.d"
  "/root/repo/src/quant/q_types.cpp" "src/CMakeFiles/hawc_quant.dir/quant/q_types.cpp.o" "gcc" "src/CMakeFiles/hawc_quant.dir/quant/q_types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hawc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
