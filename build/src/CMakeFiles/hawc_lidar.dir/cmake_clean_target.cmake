file(REMOVE_RECURSE
  "libhawc_lidar.a"
)
