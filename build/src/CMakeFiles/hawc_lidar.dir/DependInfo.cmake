
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lidar/primitives.cpp" "src/CMakeFiles/hawc_lidar.dir/lidar/primitives.cpp.o" "gcc" "src/CMakeFiles/hawc_lidar.dir/lidar/primitives.cpp.o.d"
  "/root/repo/src/lidar/scanner.cpp" "src/CMakeFiles/hawc_lidar.dir/lidar/scanner.cpp.o" "gcc" "src/CMakeFiles/hawc_lidar.dir/lidar/scanner.cpp.o.d"
  "/root/repo/src/lidar/sensor_model.cpp" "src/CMakeFiles/hawc_lidar.dir/lidar/sensor_model.cpp.o" "gcc" "src/CMakeFiles/hawc_lidar.dir/lidar/sensor_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hawc_pointcloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
