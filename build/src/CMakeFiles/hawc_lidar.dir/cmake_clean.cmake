file(REMOVE_RECURSE
  "CMakeFiles/hawc_lidar.dir/lidar/primitives.cpp.o"
  "CMakeFiles/hawc_lidar.dir/lidar/primitives.cpp.o.d"
  "CMakeFiles/hawc_lidar.dir/lidar/scanner.cpp.o"
  "CMakeFiles/hawc_lidar.dir/lidar/scanner.cpp.o.d"
  "CMakeFiles/hawc_lidar.dir/lidar/sensor_model.cpp.o"
  "CMakeFiles/hawc_lidar.dir/lidar/sensor_model.cpp.o.d"
  "libhawc_lidar.a"
  "libhawc_lidar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawc_lidar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
