# Empty dependencies file for hawc_lidar.
# This may be replaced when dependencies are built.
