file(REMOVE_RECURSE
  "libhawc_nn.a"
)
