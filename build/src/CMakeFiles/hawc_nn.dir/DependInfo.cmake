
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/CMakeFiles/hawc_nn.dir/nn/activations.cpp.o" "gcc" "src/CMakeFiles/hawc_nn.dir/nn/activations.cpp.o.d"
  "/root/repo/src/nn/batch_norm.cpp" "src/CMakeFiles/hawc_nn.dir/nn/batch_norm.cpp.o" "gcc" "src/CMakeFiles/hawc_nn.dir/nn/batch_norm.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/CMakeFiles/hawc_nn.dir/nn/conv2d.cpp.o" "gcc" "src/CMakeFiles/hawc_nn.dir/nn/conv2d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/CMakeFiles/hawc_nn.dir/nn/dense.cpp.o" "gcc" "src/CMakeFiles/hawc_nn.dir/nn/dense.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/CMakeFiles/hawc_nn.dir/nn/loss.cpp.o" "gcc" "src/CMakeFiles/hawc_nn.dir/nn/loss.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/CMakeFiles/hawc_nn.dir/nn/optimizer.cpp.o" "gcc" "src/CMakeFiles/hawc_nn.dir/nn/optimizer.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/CMakeFiles/hawc_nn.dir/nn/pooling.cpp.o" "gcc" "src/CMakeFiles/hawc_nn.dir/nn/pooling.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/CMakeFiles/hawc_nn.dir/nn/sequential.cpp.o" "gcc" "src/CMakeFiles/hawc_nn.dir/nn/sequential.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/CMakeFiles/hawc_nn.dir/nn/tensor.cpp.o" "gcc" "src/CMakeFiles/hawc_nn.dir/nn/tensor.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/CMakeFiles/hawc_nn.dir/nn/trainer.cpp.o" "gcc" "src/CMakeFiles/hawc_nn.dir/nn/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hawc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
