# Empty dependencies file for hawc_nn.
# This may be replaced when dependencies are built.
