file(REMOVE_RECURSE
  "CMakeFiles/hawc_nn.dir/nn/activations.cpp.o"
  "CMakeFiles/hawc_nn.dir/nn/activations.cpp.o.d"
  "CMakeFiles/hawc_nn.dir/nn/batch_norm.cpp.o"
  "CMakeFiles/hawc_nn.dir/nn/batch_norm.cpp.o.d"
  "CMakeFiles/hawc_nn.dir/nn/conv2d.cpp.o"
  "CMakeFiles/hawc_nn.dir/nn/conv2d.cpp.o.d"
  "CMakeFiles/hawc_nn.dir/nn/dense.cpp.o"
  "CMakeFiles/hawc_nn.dir/nn/dense.cpp.o.d"
  "CMakeFiles/hawc_nn.dir/nn/loss.cpp.o"
  "CMakeFiles/hawc_nn.dir/nn/loss.cpp.o.d"
  "CMakeFiles/hawc_nn.dir/nn/optimizer.cpp.o"
  "CMakeFiles/hawc_nn.dir/nn/optimizer.cpp.o.d"
  "CMakeFiles/hawc_nn.dir/nn/pooling.cpp.o"
  "CMakeFiles/hawc_nn.dir/nn/pooling.cpp.o.d"
  "CMakeFiles/hawc_nn.dir/nn/sequential.cpp.o"
  "CMakeFiles/hawc_nn.dir/nn/sequential.cpp.o.d"
  "CMakeFiles/hawc_nn.dir/nn/tensor.cpp.o"
  "CMakeFiles/hawc_nn.dir/nn/tensor.cpp.o.d"
  "CMakeFiles/hawc_nn.dir/nn/trainer.cpp.o"
  "CMakeFiles/hawc_nn.dir/nn/trainer.cpp.o.d"
  "libhawc_nn.a"
  "libhawc_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawc_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
