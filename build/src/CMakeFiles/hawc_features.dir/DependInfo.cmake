
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/height_features.cpp" "src/CMakeFiles/hawc_features.dir/features/height_features.cpp.o" "gcc" "src/CMakeFiles/hawc_features.dir/features/height_features.cpp.o.d"
  "/root/repo/src/features/pipeline.cpp" "src/CMakeFiles/hawc_features.dir/features/pipeline.cpp.o" "gcc" "src/CMakeFiles/hawc_features.dir/features/pipeline.cpp.o.d"
  "/root/repo/src/features/projection.cpp" "src/CMakeFiles/hawc_features.dir/features/projection.cpp.o" "gcc" "src/CMakeFiles/hawc_features.dir/features/projection.cpp.o.d"
  "/root/repo/src/features/slice_features.cpp" "src/CMakeFiles/hawc_features.dir/features/slice_features.cpp.o" "gcc" "src/CMakeFiles/hawc_features.dir/features/slice_features.cpp.o.d"
  "/root/repo/src/features/upsampling.cpp" "src/CMakeFiles/hawc_features.dir/features/upsampling.cpp.o" "gcc" "src/CMakeFiles/hawc_features.dir/features/upsampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hawc_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_pointcloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
