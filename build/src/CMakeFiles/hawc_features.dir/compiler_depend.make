# Empty compiler generated dependencies file for hawc_features.
# This may be replaced when dependencies are built.
