file(REMOVE_RECURSE
  "libhawc_features.a"
)
