file(REMOVE_RECURSE
  "CMakeFiles/hawc_features.dir/features/height_features.cpp.o"
  "CMakeFiles/hawc_features.dir/features/height_features.cpp.o.d"
  "CMakeFiles/hawc_features.dir/features/pipeline.cpp.o"
  "CMakeFiles/hawc_features.dir/features/pipeline.cpp.o.d"
  "CMakeFiles/hawc_features.dir/features/projection.cpp.o"
  "CMakeFiles/hawc_features.dir/features/projection.cpp.o.d"
  "CMakeFiles/hawc_features.dir/features/slice_features.cpp.o"
  "CMakeFiles/hawc_features.dir/features/slice_features.cpp.o.d"
  "CMakeFiles/hawc_features.dir/features/upsampling.cpp.o"
  "CMakeFiles/hawc_features.dir/features/upsampling.cpp.o.d"
  "libhawc_features.a"
  "libhawc_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawc_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
