file(REMOVE_RECURSE
  "CMakeFiles/hawc_clustering.dir/clustering/adaptive_eps.cpp.o"
  "CMakeFiles/hawc_clustering.dir/clustering/adaptive_eps.cpp.o.d"
  "CMakeFiles/hawc_clustering.dir/clustering/cluster_result.cpp.o"
  "CMakeFiles/hawc_clustering.dir/clustering/cluster_result.cpp.o.d"
  "CMakeFiles/hawc_clustering.dir/clustering/dbscan.cpp.o"
  "CMakeFiles/hawc_clustering.dir/clustering/dbscan.cpp.o.d"
  "CMakeFiles/hawc_clustering.dir/clustering/gmm.cpp.o"
  "CMakeFiles/hawc_clustering.dir/clustering/gmm.cpp.o.d"
  "CMakeFiles/hawc_clustering.dir/clustering/hierarchical.cpp.o"
  "CMakeFiles/hawc_clustering.dir/clustering/hierarchical.cpp.o.d"
  "CMakeFiles/hawc_clustering.dir/clustering/kmeans.cpp.o"
  "CMakeFiles/hawc_clustering.dir/clustering/kmeans.cpp.o.d"
  "libhawc_clustering.a"
  "libhawc_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawc_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
