# Empty dependencies file for hawc_clustering.
# This may be replaced when dependencies are built.
