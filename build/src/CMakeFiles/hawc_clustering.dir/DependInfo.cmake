
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clustering/adaptive_eps.cpp" "src/CMakeFiles/hawc_clustering.dir/clustering/adaptive_eps.cpp.o" "gcc" "src/CMakeFiles/hawc_clustering.dir/clustering/adaptive_eps.cpp.o.d"
  "/root/repo/src/clustering/cluster_result.cpp" "src/CMakeFiles/hawc_clustering.dir/clustering/cluster_result.cpp.o" "gcc" "src/CMakeFiles/hawc_clustering.dir/clustering/cluster_result.cpp.o.d"
  "/root/repo/src/clustering/dbscan.cpp" "src/CMakeFiles/hawc_clustering.dir/clustering/dbscan.cpp.o" "gcc" "src/CMakeFiles/hawc_clustering.dir/clustering/dbscan.cpp.o.d"
  "/root/repo/src/clustering/gmm.cpp" "src/CMakeFiles/hawc_clustering.dir/clustering/gmm.cpp.o" "gcc" "src/CMakeFiles/hawc_clustering.dir/clustering/gmm.cpp.o.d"
  "/root/repo/src/clustering/hierarchical.cpp" "src/CMakeFiles/hawc_clustering.dir/clustering/hierarchical.cpp.o" "gcc" "src/CMakeFiles/hawc_clustering.dir/clustering/hierarchical.cpp.o.d"
  "/root/repo/src/clustering/kmeans.cpp" "src/CMakeFiles/hawc_clustering.dir/clustering/kmeans.cpp.o" "gcc" "src/CMakeFiles/hawc_clustering.dir/clustering/kmeans.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hawc_pointcloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
