file(REMOVE_RECURSE
  "libhawc_clustering.a"
)
