file(REMOVE_RECURSE
  "CMakeFiles/hawc_dataset.dir/dataset/builders.cpp.o"
  "CMakeFiles/hawc_dataset.dir/dataset/builders.cpp.o.d"
  "CMakeFiles/hawc_dataset.dir/dataset/capture_pipeline.cpp.o"
  "CMakeFiles/hawc_dataset.dir/dataset/capture_pipeline.cpp.o.d"
  "libhawc_dataset.a"
  "libhawc_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawc_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
