# Empty dependencies file for hawc_dataset.
# This may be replaced when dependencies are built.
