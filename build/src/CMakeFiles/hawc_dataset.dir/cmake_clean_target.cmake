file(REMOVE_RECURSE
  "libhawc_dataset.a"
)
