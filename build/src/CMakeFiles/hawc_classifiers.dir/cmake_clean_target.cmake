file(REMOVE_RECURSE
  "libhawc_classifiers.a"
)
