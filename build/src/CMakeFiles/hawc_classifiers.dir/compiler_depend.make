# Empty compiler generated dependencies file for hawc_classifiers.
# This may be replaced when dependencies are built.
