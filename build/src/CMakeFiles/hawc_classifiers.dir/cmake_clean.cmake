file(REMOVE_RECURSE
  "CMakeFiles/hawc_classifiers.dir/classifiers/autoencoder_model.cpp.o"
  "CMakeFiles/hawc_classifiers.dir/classifiers/autoencoder_model.cpp.o.d"
  "CMakeFiles/hawc_classifiers.dir/classifiers/feature_scaler.cpp.o"
  "CMakeFiles/hawc_classifiers.dir/classifiers/feature_scaler.cpp.o.d"
  "CMakeFiles/hawc_classifiers.dir/classifiers/hawc_model.cpp.o"
  "CMakeFiles/hawc_classifiers.dir/classifiers/hawc_model.cpp.o.d"
  "CMakeFiles/hawc_classifiers.dir/classifiers/ocsvm_model.cpp.o"
  "CMakeFiles/hawc_classifiers.dir/classifiers/ocsvm_model.cpp.o.d"
  "CMakeFiles/hawc_classifiers.dir/classifiers/pointnet_model.cpp.o"
  "CMakeFiles/hawc_classifiers.dir/classifiers/pointnet_model.cpp.o.d"
  "libhawc_classifiers.a"
  "libhawc_classifiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawc_classifiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
