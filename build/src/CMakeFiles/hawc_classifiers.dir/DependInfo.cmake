
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classifiers/autoencoder_model.cpp" "src/CMakeFiles/hawc_classifiers.dir/classifiers/autoencoder_model.cpp.o" "gcc" "src/CMakeFiles/hawc_classifiers.dir/classifiers/autoencoder_model.cpp.o.d"
  "/root/repo/src/classifiers/feature_scaler.cpp" "src/CMakeFiles/hawc_classifiers.dir/classifiers/feature_scaler.cpp.o" "gcc" "src/CMakeFiles/hawc_classifiers.dir/classifiers/feature_scaler.cpp.o.d"
  "/root/repo/src/classifiers/hawc_model.cpp" "src/CMakeFiles/hawc_classifiers.dir/classifiers/hawc_model.cpp.o" "gcc" "src/CMakeFiles/hawc_classifiers.dir/classifiers/hawc_model.cpp.o.d"
  "/root/repo/src/classifiers/ocsvm_model.cpp" "src/CMakeFiles/hawc_classifiers.dir/classifiers/ocsvm_model.cpp.o" "gcc" "src/CMakeFiles/hawc_classifiers.dir/classifiers/ocsvm_model.cpp.o.d"
  "/root/repo/src/classifiers/pointnet_model.cpp" "src/CMakeFiles/hawc_classifiers.dir/classifiers/pointnet_model.cpp.o" "gcc" "src/CMakeFiles/hawc_classifiers.dir/classifiers/pointnet_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hawc_features.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_pointcloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hawc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
