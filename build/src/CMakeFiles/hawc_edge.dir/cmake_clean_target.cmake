file(REMOVE_RECURSE
  "libhawc_edge.a"
)
