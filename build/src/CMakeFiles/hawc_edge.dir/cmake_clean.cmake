file(REMOVE_RECURSE
  "CMakeFiles/hawc_edge.dir/edge/device_model.cpp.o"
  "CMakeFiles/hawc_edge.dir/edge/device_model.cpp.o.d"
  "CMakeFiles/hawc_edge.dir/edge/measure.cpp.o"
  "CMakeFiles/hawc_edge.dir/edge/measure.cpp.o.d"
  "libhawc_edge.a"
  "libhawc_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawc_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
