# Empty compiler generated dependencies file for hawc_edge.
# This may be replaced when dependencies are built.
