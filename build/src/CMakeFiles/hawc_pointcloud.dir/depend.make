# Empty dependencies file for hawc_pointcloud.
# This may be replaced when dependencies are built.
