file(REMOVE_RECURSE
  "CMakeFiles/hawc_pointcloud.dir/pointcloud/cloud_io.cpp.o"
  "CMakeFiles/hawc_pointcloud.dir/pointcloud/cloud_io.cpp.o.d"
  "CMakeFiles/hawc_pointcloud.dir/pointcloud/kd_tree.cpp.o"
  "CMakeFiles/hawc_pointcloud.dir/pointcloud/kd_tree.cpp.o.d"
  "CMakeFiles/hawc_pointcloud.dir/pointcloud/point_cloud.cpp.o"
  "CMakeFiles/hawc_pointcloud.dir/pointcloud/point_cloud.cpp.o.d"
  "libhawc_pointcloud.a"
  "libhawc_pointcloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawc_pointcloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
