file(REMOVE_RECURSE
  "libhawc_pointcloud.a"
)
