# Empty compiler generated dependencies file for hawc_deploy.
# This may be replaced when dependencies are built.
