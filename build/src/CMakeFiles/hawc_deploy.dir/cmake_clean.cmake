file(REMOVE_RECURSE
  "CMakeFiles/hawc_deploy.dir/deploy/thermal.cpp.o"
  "CMakeFiles/hawc_deploy.dir/deploy/thermal.cpp.o.d"
  "libhawc_deploy.a"
  "libhawc_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hawc_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
