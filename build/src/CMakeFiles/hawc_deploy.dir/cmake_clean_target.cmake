file(REMOVE_RECURSE
  "libhawc_deploy.a"
)
