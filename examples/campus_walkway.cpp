// Campus walkway monitoring: simulate a stretch of pedestrian traffic
// (Poisson arrivals crossing the walkway) and produce the time series a
// smart blue light pole would report — per-frame counts, a traffic
// histogram, and peak detection.
//
// This is the paper's motivating application: "popular routes, peak
// times, and common gathering areas" from privacy-preserving counts.

#include <iostream>

#include "classifiers/hawc_model.hpp"
#include "common/stats.hpp"
#include "counting/crowd_counter.hpp"
#include "sim/trajectory.hpp"

using namespace hawc;

int main() {
    // ---- Train a compact model (small dataset keeps the demo quick) ----
    std::cout << "Preparing the classifier...\n";
    single_person_dataset_config ds_cfg;
    ds_cfg.human_samples = 400;
    ds_cfg.object_samples = 400;
    ds_cfg.capture.min_cluster_points = 20;
    const single_person_dataset ds = build_single_person_dataset(ds_cfg);

    rng random{7};
    hawc_config model_cfg;
    model_cfg.features.upsample.target_points = ds.target_points;
    model_cfg.features.projection.target_points = ds.target_points;
    model_cfg.training.epochs = 15;
    model_cfg.training.lr_decay_factor = 0.3;
    model_cfg.training.lr_decay_period = 8;
    hawc_model model{model_cfg, ds.pool, random};
    model.train(ds.train, nullptr, random);

    // ---- Simulate 10 minutes of traffic with a mid-session rush ----
    std::cout << "Simulating walkway traffic (10 minutes, rush at 4-7 min)...\n";
    capture_config capture_cfg;
    capture_cfg.min_cluster_points = 20;
    const scanner sensor{capture_cfg.sensor};
    const crowd_counter counter{capture_cfg, model};

    rng traffic_rng{2025};
    const traffic_schedule calm{traffic_rng, 600.0, /*arrivals_per_minute=*/6.0};
    const traffic_schedule rush{traffic_rng, 180.0, /*arrivals_per_minute=*/30.0};

    running_stats count_error;
    histogram load_histogram{0.0, 12.0, 12};
    std::size_t peak_count = 0;
    double peak_time = 0.0;

    std::cout << "\n  time   truth  counted  bar\n";
    for (double t = 10.0; t < 600.0; t += 20.0) {
        // Superimpose the rush window onto the base traffic.
        scene frame = calm.scene_at(t, traffic_rng);
        std::size_t truth = calm.count_at(t);
        if (t >= 240.0 && t < 420.0) {
            const scene extra = rush.scene_at(t - 240.0, traffic_rng);
            for (const auto& e : extra.entities()) {
                if (e.kind == entity_kind::human) {
                    human_params p;
                    p.height_m = e.height_m;
                    frame.add_human(p, e.ground_position);
                    ++truth;
                }
            }
        }

        const scan_result scan_data =
            sensor.scan(frame.primitives(), traffic_rng, capture_cfg.scan);
        const std::size_t visible = visible_human_count(frame, scan_data, capture_cfg);
        const count_result result = counter.count(scan_data.to_cloud(), traffic_rng);

        count_error.add(static_cast<double>(result.count) - static_cast<double>(visible));
        load_histogram.add(static_cast<double>(result.count));
        if (result.count > peak_count) {
            peak_count = result.count;
            peak_time = t;
        }

        std::printf("  %5.0fs  %4zu   %5zu    %s\n", t, visible, result.count,
                    std::string(result.count, '#').c_str());
    }

    std::cout << "\nSummary\n";
    std::cout << "  mean count error vs visible truth: " << count_error.mean() << " (sd "
              << count_error.stddev() << ")\n";
    std::cout << "  peak load: " << peak_count << " people at t=" << peak_time
              << " s (rush window was 240-420 s)\n";
    std::cout << "  load distribution (people per frame):\n";
    for (const auto& row : load_histogram.ascii_rows(30)) std::cout << "    " << row << "\n";
    return 0;
}
