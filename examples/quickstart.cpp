// Quickstart: the full HAWC-CC pipeline in one file.
//
//   1. Build a synthetic single-person dataset (LiDAR simulator).
//   2. Train the HAWC classifier.
//   3. Scan a fresh crowd scene and count the people in it.
//
// Run time is dominated by training; pass --tiny for a fast demo.

#include <cstring>
#include <iostream>

#include "classifiers/hawc_model.hpp"
#include "counting/crowd_counter.hpp"

using namespace hawc;

int main(int argc, char** argv) {
    const bool tiny = argc > 1 && std::strcmp(argv[1], "--tiny") == 0;

    // ---- 1. Dataset ----
    std::cout << "Building the synthetic single-person dataset...\n";
    single_person_dataset_config ds_cfg;
    ds_cfg.human_samples = tiny ? 150 : 600;
    ds_cfg.object_samples = tiny ? 150 : 600;
    ds_cfg.capture.min_cluster_points = 20;
    const single_person_dataset ds = build_single_person_dataset(ds_cfg);
    std::cout << "  train=" << ds.train.size() << " test=" << ds.test.size()
              << " N'_max=" << ds.target_points << " points per cluster\n";

    // ---- 2. Train HAWC ----
    rng random{7};
    hawc_config model_cfg;
    model_cfg.features.upsample.target_points = ds.target_points;
    model_cfg.features.projection.target_points = ds.target_points;
    model_cfg.training.epochs = tiny ? 10 : 20;
    model_cfg.training.lr_decay_factor = 0.3;
    model_cfg.training.lr_decay_period = 8;

    hawc_model model{model_cfg, ds.pool, random};
    std::cout << "Training HAWC (" << model.parameter_count() << " parameters)...\n";
    const auto reports = model.train(ds.train, &ds.test, random);
    std::cout << "  final test accuracy: " << 100.0 * reports.back().test_accuracy << "%\n";

    // ---- 3. Count a crowd ----
    std::cout << "Scanning a fresh walkway scene...\n";
    capture_config capture_cfg;
    capture_cfg.min_cluster_points = 20;
    const scanner sensor{capture_cfg.sensor};

    rng scene_rng{2024};
    const scene walkway_scene = make_crowd_scene(scene_rng, /*human_count=*/4,
                                                 /*object_count=*/2);
    const scan_result scan_data =
        sensor.scan(walkway_scene.primitives(), scene_rng, capture_cfg.scan);
    const std::size_t visible =
        visible_human_count(walkway_scene, scan_data, capture_cfg);

    const crowd_counter counter{capture_cfg, model};
    const count_result result = counter.count(scan_data.to_cloud(), scene_rng);

    std::cout << "  scene contains " << walkway_scene.human_count() << " people ("
              << visible << " visible to the sensor)\n";
    std::cout << "  " << counter.name() << " counted " << result.count << " in "
              << result.times.total_ms() << " ms (" << result.cluster_count
              << " clusters examined)\n";
    return 0;
}
