// Dataset tooling: build the synthetic datasets, export clusters as
// plain-text XYZ files (interoperable with CloudCompare/Open3D/PCL
// viewers), print corpus statistics, and render an ASCII top view of a
// live capture — everything needed to eyeball what the simulator and
// pipeline actually produce.
//
// Usage: dataset_tools [output_dir]   (default: ./hawc_dataset_export)

#include <filesystem>
#include <iostream>

#include "common/stats.hpp"
#include "dataset/builders.hpp"
#include "pointcloud/cloud_io.hpp"

using namespace hawc;

namespace {

/// ASCII top view (x right, y up) of a cloud within the walkway ROI.
void render_top_view(const point_cloud& cloud, const scene& s) {
    constexpr int cols = 70;
    constexpr int rows = 18;
    char grid[rows][cols + 1];
    for (auto& row : grid) {
        std::fill(row, row + cols, ' ');
        row[cols] = '\0';
    }
    auto to_cell = [&](double x, double y, int& cx, int& cy) {
        cx = static_cast<int>((x - 12.0) / (35.0 - 12.0) * (cols - 1));
        cy = static_cast<int>((y + 2.5) / 5.0 * (rows - 1));
        return cx >= 0 && cx < cols && cy >= 0 && cy < rows;
    };
    int cx = 0;
    int cy = 0;
    for (const auto& p : cloud) {
        if (p.z < -2.6) continue;  // ground
        if (to_cell(p.x, p.y, cx, cy)) grid[rows - 1 - cy][cx] = '.';
    }
    for (const auto& e : s.entities()) {
        if (to_cell(e.ground_position.x, e.ground_position.y, cx, cy)) {
            grid[rows - 1 - cy][cx] = e.kind == entity_kind::human ? 'H' : 'O';
        }
    }
    std::cout << "  +" << std::string(cols, '-') << "+  (x: 12->35 m, y: +-2.5 m; "
              << "H = person, O = object, . = LiDAR return)\n";
    for (const auto& row : grid) std::cout << "  |" << row << "|\n";
    std::cout << "  +" << std::string(cols, '-') << "+\n";
}

}  // namespace

int main(int argc, char** argv) {
    const std::filesystem::path out_dir =
        argc > 1 ? argv[1] : "hawc_dataset_export";
    std::filesystem::create_directories(out_dir);

    // ---- Build and export a small corpus ----
    std::cout << "Building dataset...\n";
    single_person_dataset_config cfg;
    cfg.human_samples = 80;
    cfg.object_samples = 80;
    cfg.capture.min_cluster_points = 20;
    const single_person_dataset ds = build_single_person_dataset(cfg);

    std::size_t exported = 0;
    running_stats human_sizes;
    running_stats object_sizes;
    running_stats human_heights;
    for (std::size_t i = 0; i < ds.train.size(); ++i) {
        const bool is_human = ds.train.labels[i] == label_human;
        const auto& cluster = ds.train.clusters[i];
        (is_human ? human_sizes : object_sizes).add(static_cast<double>(cluster.size()));
        if (is_human) human_heights.add(cluster.bounds().size().z);
        if (exported < 20) {
            const auto name = std::string{is_human ? "human_" : "object_"} +
                              std::to_string(i) + ".xyz";
            write_xyz_file(out_dir / name, cluster);
            ++exported;
        }
    }
    std::cout << "  wrote " << exported << " example clusters to " << out_dir << "/\n";
    std::cout << "  human clusters:  " << human_sizes.count() << ", "
              << human_sizes.mean() << " points on average (min " << human_sizes.min()
              << ", max " << human_sizes.max() << ")\n";
    std::cout << "  object clusters: " << object_sizes.count() << ", "
              << object_sizes.mean() << " points on average\n";
    std::cout << "  visible human height above ground filter: mean "
              << human_heights.mean() << " m\n";

    // ---- Round-trip check through the XYZ format ----
    const auto probe = out_dir / "roundtrip_probe.xyz";
    write_xyz_file(probe, ds.train.clusters[0]);
    const point_cloud loaded = read_xyz_file(probe);
    std::cout << "  XYZ round trip: " << ds.train.clusters[0].size() << " -> "
              << loaded.size() << " points\n";

    // ---- Live capture preview ----
    std::cout << "\nLive capture preview (4 people, 2 objects):\n";
    rng r{77};
    const scene s = make_crowd_scene(r, 4, 2);
    const scanner sensor{cfg.capture.sensor};
    const auto scan_data = sensor.scan(s.primitives(), r, cfg.capture.scan);
    render_top_view(scan_data.to_cloud(), s);
    std::cout << "\n" << scan_data.returns.size() << " returns in the scan; "
              << visible_human_count(s, scan_data, cfg.capture)
              << " of 4 people visible with >= 5 returns.\n";
    return 0;
}
