// Edge deployment study: quantize a trained HAWC to int8, compare
// accuracy and latency of both precisions, project latencies onto the
// Jetson Nano and Coral Dev Board cost models, and check the thermal
// envelope of the pole enclosure over a simulated summer — everything a
// deployment engineer would ask before installing a pole.

#include <iostream>

#include "classifiers/hawc_model.hpp"
#include "classifiers/quantized_classifier.hpp"
#include "dataset/builders.hpp"
#include "common/table.hpp"
#include "deploy/thermal.hpp"
#include "edge/device_model.hpp"
#include "edge/measure.hpp"

using namespace hawc;

int main() {
    std::cout << "Training the fp32 reference model...\n";
    single_person_dataset_config ds_cfg;
    ds_cfg.human_samples = 400;
    ds_cfg.object_samples = 400;
    ds_cfg.capture.min_cluster_points = 20;
    const single_person_dataset ds = build_single_person_dataset(ds_cfg);

    rng random{7};
    hawc_config model_cfg;
    model_cfg.features.upsample.target_points = ds.target_points;
    model_cfg.features.projection.target_points = ds.target_points;
    model_cfg.training.epochs = 15;
    model_cfg.training.lr_decay_factor = 0.3;
    model_cfg.training.lr_decay_period = 8;
    hawc_model model{model_cfg, ds.pool, random};
    model.train(ds.train, nullptr, random);

    // ---- Post-training quantization (100 calibration samples) ----
    std::cout << "Applying int8 post-training quantization...\n";
    quantized_model q = model.quantize(ds.train, random, 100);
    const auto& extractor = model.extractor();
    const quantized_classifier int8{q,
                                    [&extractor](const point_cloud& c, rng& rr) {
                                        return extractor.extract(c, rr);
                                    },
                                    "HAWC-int8"};

    const auto fp_metrics = model.evaluate(ds.test, random);
    const auto q_metrics = int8.evaluate(ds.test, random);

    text_table accuracy{{"Precision", "Accuracy (%)", "F1"}};
    accuracy.add_row({"fp32", text_table::num(100.0 * fp_metrics.accuracy),
                      text_table::num(fp_metrics.f1)});
    accuracy.add_row({"int8", text_table::num(100.0 * q_metrics.accuracy),
                      text_table::num(q_metrics.f1)});
    std::cout << "\nAccuracy impact of quantization:\n";
    accuracy.print(std::cout);

    // ---- Latency: host measurement + device projections ----
    const auto shape = extractor.sample_shape();
    tensor sample{{1, shape[0], shape[1], shape[2]}};
    rng fill{3};
    for (std::size_t i = 0; i < sample.size(); ++i) {
        sample[i] = static_cast<float>(fill.normal(0.0, 0.5));
    }
    const auto host_fp32 = measure_fp32_latency(model.network(), sample, 30);
    const auto host_int8 = measure_int8_latency(q, sample, 30);

    const auto fp32_layers = model.network().summarize(shape);
    const auto int8_ops = q.op_infos(shape);

    text_table latency{{"Target", "FP32 (ms)", "Int8 (ms)", "Speedup"}};
    latency.add_row({"Host (measured)",
                     text_table::pm(host_fp32.mean_ms, host_fp32.stddev_ms),
                     text_table::pm(host_int8.mean_ms, host_int8.stddev_ms),
                     text_table::num(host_fp32.mean_ms / host_int8.mean_ms) + "x"});
    for (const auto& device :
         {device_profile::jetson_nano(), device_profile::coral_dev_board()}) {
        const double fp32 = predict_fp32_latency_ms(device, fp32_layers);
        const double int8_ms = predict_int8_latency_ms(device, int8_ops);
        latency.add_row({device.name + " (modelled)", text_table::num(fp32),
                         text_table::num(int8_ms),
                         text_table::num(fp32 / int8_ms) + "x"});
    }
    std::cout << "\nClassifier latency per cluster:\n";
    latency.print(std::cout);

    // Real-time budget check: a 60 fps sensor gives ~16 ms per frame.
    const double frame_budget_ms = 16.0;
    std::cout << "\nReal-time check: a frame budget of " << frame_budget_ms
              << " ms accommodates "
              << static_cast<int>(frame_budget_ms /
                                  predict_int8_latency_ms(
                                      device_profile::jetson_nano(), int8_ops))
              << " int8 classifications per frame on the Jetson model.\n";

    // ---- Thermal envelope ----
    const thermal_series thermal = simulate_pole_temperature();
    const auto pole = thermal.pole_stats();
    std::cout << "\nSummer thermal envelope of the pole compartment: min "
              << text_table::num(pole.min()) << ", mean " << text_table::num(pole.mean())
              << ", max " << text_table::num(pole.max()) << " degC; "
              << text_table::num(100.0 * thermal.fraction_above(50.0))
              << "% of samples above the Coral's 50 degC rating.\n";
    std::cout << "Deployment verdict: int8 HAWC fits the real-time budget with "
                 "negligible accuracy loss; plan for peak-heat throttling.\n";
    return 0;
}
