// Resilient counting service: the fault-tolerant runtime end to end.
// Trains a compact HAWC, quantizes it to int8 (the primary edge model,
// made sporadically flaky to stand in for dequantization faults), keeps
// the fp32 model as the per-cluster fallback, then streams ten minutes
// of walkway traffic through the frame supervisor while a sensor fault
// injector corrupts captures with every failure mode it knows. The
// service never crashes; it degrades, and the health counters printed at
// the end show exactly how.

#include <cstring>
#include <iostream>

#include "classifiers/hawc_model.hpp"
#include "classifiers/quantized_classifier.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/supervisor.hpp"
#include "sim/trajectory.hpp"

using namespace hawc;

int main(int argc, char** argv) {
    // --json: suppress the narrative log and emit the final health
    // counters as one JSON object on stdout (for scripted consumers).
    bool json_output = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0) json_output = true;
    }

    // ---- Train the fp32 reference and quantize the edge model ----
    if (!json_output)
        std::cout << "Preparing the classifiers (fp32 reference + int8 edge model)...\n";
    single_person_dataset_config ds_cfg;
    ds_cfg.human_samples = 400;
    ds_cfg.object_samples = 400;
    ds_cfg.capture.min_cluster_points = 20;
    const single_person_dataset ds = build_single_person_dataset(ds_cfg);

    rng random{7};
    hawc_config model_cfg;
    model_cfg.features.upsample.target_points = ds.target_points;
    model_cfg.features.projection.target_points = ds.target_points;
    model_cfg.training.epochs = 15;
    model_cfg.training.lr_decay_factor = 0.3;
    model_cfg.training.lr_decay_period = 8;
    hawc_model model{model_cfg, ds.pool, random};
    model.train(ds.train, nullptr, random);

    quantized_model q = model.quantize(ds.train, random, 100);
    const auto& extractor = model.extractor();
    const quantized_classifier int8{q,
                                    [&extractor](const point_cloud& c, rng& rr) {
                                        return extractor.extract(c, rr);
                                    },
                                    "HAWC-int8"};
    // Sporadic dequantization faults on the primary: roughly 1 in 50
    // cluster classifications throws, exercising the float-model rung.
    const flaky_classifier primary{int8, 0.02, 99};

    // ---- Supervisor: int8 primary, fp32 fallback ----
    supervisor_config sup_cfg;
    sup_cfg.capture.min_cluster_points = 20;
    // A healthy scan of this walkway returns ~20k points; calibrate the
    // truncation detector to that so partial frames (UDP loss keeps at
    // most 10%) are dropped and answered by the stale-count rung.
    sup_cfg.min_raw_points = 4000;
    frame_supervisor supervisor{sup_cfg, primary, &model};

    // ---- Stream fault-injected traffic ----
    if (!json_output)
        std::cout << "Streaming 10 minutes of walkway traffic through the supervisor\n"
                     "with sensor fault injection (dropout, jitter, NaN, truncation,\n"
                     "duplicates) at 10% per fault per frame...\n\n";
    const scanner sensor{sup_cfg.capture.sensor};
    fault_injection_config fi_cfg;
    fi_cfg.beam_dropout_prob = 0.1;
    fi_cfg.range_jitter_prob = 0.1;
    fi_cfg.non_finite_prob = 0.1;
    fi_cfg.truncated_frame_prob = 0.1;
    fi_cfg.duplicate_points_prob = 0.1;
    fault_injector injector{fi_cfg};

    rng traffic_rng{2025};
    const traffic_schedule traffic{traffic_rng, 600.0, /*arrivals_per_minute=*/12.0};

    if (!json_output) std::cout << "  time   status    count  notes\n";
    for (double t = 5.0; t < 600.0; t += 5.0) {
        const scene frame = traffic.scene_at(t, traffic_rng);
        const scan_result scan_data =
            sensor.scan(frame.primitives(), traffic_rng, sup_cfg.capture.scan);
        const point_cloud corrupted = injector.corrupt(scan_data.to_cloud(), traffic_rng);

        const frame_report report = supervisor.process(corrupted, traffic_rng);

        // One line every minute keeps the log readable; the counters
        // below cover every frame.
        if (!json_output && static_cast<int>(t) % 60 == 5) {
            std::string notes;
            if (report.used_fixed_eps) notes += " fixed-eps";
            if (report.used_float_fallback) notes += " float-fallback";
            if (report.served_stale) notes += " stale-count";
            for (const auto& f : report.failures) notes += " [" + f.describe() + "]";
            std::printf("  %5.0fs  %-8s  %5zu %s\n", t, to_string(report.status),
                        report.count, notes.c_str());
        }
    }

    if (json_output) {
        std::cout << supervisor.health().to_json() << "\n";
        return 0;
    }

    // ---- The service's health, as the bench harness would print it ----
    std::cout << "\nInjected faults: ";
    for (std::size_t k = 0; k < fault_kind_count; ++k) {
        std::cout << to_string(static_cast<fault_kind>(k)) << "="
                  << injector.injected(static_cast<fault_kind>(k))
                  << (k + 1 < fault_kind_count ? ", " : "\n");
    }
    std::cout << "Primary classifier faults raised: " << primary.faults_raised() << "\n";
    std::cout << "\n" << supervisor.health().summary();
    std::cout << "\nEvery frame accounted: "
              << (supervisor.health().accounted() ? "yes" : "NO") << "\n";
    return 0;
}
