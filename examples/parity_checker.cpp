// Golden-corpus parity checker: the record/replay differential harness's
// CLI. `record` regenerates the checked-in golden artifacts (two recorded
// frame corpora, the fp32 reference weights, the int8 edge model, and the
// featurizer's object pool) and immediately re-validates the files it
// wrote. `check` loads the artifacts and replays every implementation
// pair the harness knows — fp32 vs int8 through the full supervisor,
// per-cluster fp32 vs int8 logits, 1 vs N engine threads, adaptive vs
// fixed-eps clustering — exiting nonzero when a gating pair diverges.
//
//   parity_checker record <golden-dir>
//   parity_checker check  <golden-dir> [--metrics]
//
// Plus the corpus-container drill (replay/container.hpp): pack an
// envelope corpus or corpus set into a chunked compressed "HWCC"
// container, unpack one back to its envelope form, and verify a
// container by streaming every chunk (checksums + decode) — optionally
// frame-for-frame bit-exact against the golden envelope it was packed
// from:
//
//   parity_checker pack   <in.frames|in.hwfs> <out.hwcc> [--chunk N]
//   parity_checker unpack <in.hwcc> <out-file>
//   parity_checker verify <in.hwcc> [golden-file]
//
// Everything that defines the golden setup (sensor geometry, model
// architecture, seeds) is a constant below: `check` rebuilds the exact
// model skeleton before loading weights, so the artifacts carry no
// configuration of their own beyond the serialized tensors.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "classifiers/hawc_model.hpp"
#include "classifiers/quantized_classifier.hpp"
#include "replay/container.hpp"
#include "replay/corpus_set.hpp"
#include "replay/model_io.hpp"
#include "replay/parity_checker.hpp"
#include "replay/replay_driver.hpp"
#include "telemetry/export.hpp"

using namespace hawc;

namespace {

// ---- The golden configuration -------------------------------------------
// A deliberately small sensor (16 channels x 360 azimuth steps instead of
// the deployment 32 x 2048) keeps the checked-in corpora a few hundred
// kilobytes while still producing multi-cluster frames.

constexpr std::uint64_t dataset_seed = 404;
constexpr std::uint64_t model_seed = 11;
constexpr std::uint64_t clean_seed = 2024;
constexpr std::uint64_t degraded_seed = 6021;
constexpr std::size_t golden_target_points = 225;  // 15 x 15 projection grid

capture_config golden_capture() {
    capture_config config;
    config.sensor.channels = 24;
    config.sensor.azimuth_steps = 720;
    config.min_cluster_points = 10;
    return config;
}

hawc_config golden_model_config() {
    hawc_config config;
    config.features.upsample.target_points = golden_target_points;
    config.features.projection.target_points = golden_target_points;
    config.conv_channels[0] = 8;
    config.conv_channels[1] = 12;
    config.conv_channels[2] = 16;
    config.hidden_units = 32;
    config.training.epochs = 20;
    config.training.lr_decay_factor = 0.3;
    config.training.lr_decay_period = 6;
    return config;
}

supervisor_config golden_supervisor_config() {
    supervisor_config config;
    config.capture = golden_capture();
    return config;
}

struct golden_paths {
    std::filesystem::path clean;
    std::filesystem::path degraded;
    std::filesystem::path weights;
    std::filesystem::path qmodel;
    std::filesystem::path pool;

    explicit golden_paths(const std::filesystem::path& dir)
        : clean{dir / "clean.frames"},
          degraded{dir / "degraded.frames"},
          weights{dir / "hawc_fp32.weights"},
          qmodel{dir / "hawc_int8.qmodel"},
          pool{dir / "object.pool"} {}
};

// ---- The parity suite ----------------------------------------------------

struct loaded_golden {
    replay::frame_corpus clean;
    replay::frame_corpus degraded;
    hawc_model model;          // fp32 reference (weights loaded from disk)
    quantized_model int8;
};

loaded_golden load_golden(const golden_paths& paths) {
    object_pool pool = replay::load_object_pool_file(paths.pool);
    rng skeleton_rng{model_seed};  // init weights are overwritten by load
    loaded_golden golden{
        replay::load_corpus_file(paths.clean),
        replay::load_corpus_file(paths.degraded),
        hawc_model{golden_model_config(), std::move(pool), skeleton_rng},
        replay::load_quantized_file(paths.qmodel),
    };
    replay::load_weights_file(paths.weights, golden.model.network());
    return golden;
}

/// Run every pair over the golden artifacts. Returns false when a gating
/// pair diverged (fp32-vs-int8 and thread parity gate; the ladder pair is
/// reported but informational — its rungs are different estimators).
bool run_suite(loaded_golden& golden, telemetry::metrics_registry& metrics) {
    const supervisor_config sup = golden_supervisor_config();
    const auto& extractor = golden.model.extractor();
    const quantized_classifier int8{golden.int8,
                                    [&extractor](const point_cloud& c, rng& rr) {
                                        return extractor.extract(c, rr);
                                    },
                                    "HAWC-int8"};

    bool ok = true;
    auto gate = [&](const replay::parity_report& report) {
        std::cout << report.summary() << "\n";
        if (!report.passed()) ok = false;
    };

    for (const replay::frame_corpus* corpus : {&golden.clean, &golden.degraded}) {
        gate(replay::check_count_parity("fp32_vs_int8_counts_" + corpus->name, *corpus, sup,
                                        golden.model, int8, &metrics));
        gate(replay::check_thread_parity(*corpus, sup, int8, {}, &metrics));
    }
    gate(replay::check_logit_parity(golden.clean, sup.capture, extractor,
                                    golden.model.network(), golden.int8, {}, &metrics));

    // Informational: the ladder's rung-1 clusterer vs the adaptive stage.
    const replay::parity_report ladder = replay::check_ladder_divergence(
        golden.clean, sup.capture, golden.model, sup.fallback_eps, {}, &metrics);
    std::cout << ladder.summary() << " (informational)\n";
    return ok;
}

int run_record(const std::filesystem::path& dir) {
    std::filesystem::create_directories(dir);
    const golden_paths paths{dir};

    std::cout << "Training the golden fp32 model...\n";
    single_person_dataset_config ds_cfg;
    ds_cfg.human_samples = 300;
    ds_cfg.object_samples = 300;
    ds_cfg.seed = dataset_seed;
    ds_cfg.capture = golden_capture();
    const single_person_dataset ds = build_single_person_dataset(ds_cfg);

    rng random{model_seed};
    hawc_model model{golden_model_config(), ds.pool, random};
    model.train(ds.train, nullptr, random);
    const quantized_model q = model.quantize(ds.train, random, 80);

    std::cout << "Recording golden corpora...\n";
    replay::record_config clean_cfg;
    clean_cfg.name = "clean";
    clean_cfg.seed = clean_seed;
    clean_cfg.frames = 8;
    clean_cfg.capture = golden_capture();

    replay::record_config degraded_cfg = clean_cfg;
    degraded_cfg.name = "degraded";
    degraded_cfg.seed = degraded_seed;
    degraded_cfg.frames = 6;
    degraded_cfg.inject_faults = true;
    degraded_cfg.faults.beam_dropout_prob = 0.25;
    degraded_cfg.faults.range_jitter_prob = 0.25;
    degraded_cfg.faults.non_finite_prob = 0.25;
    degraded_cfg.faults.duplicate_points_prob = 0.25;

    const replay::frame_corpus clean = replay::record_corpus(clean_cfg);
    const replay::frame_corpus degraded = replay::record_corpus(degraded_cfg);

    replay::save_corpus_file(paths.clean, clean);
    replay::save_corpus_file(paths.degraded, degraded);
    replay::save_weights_file(paths.weights, model.network());
    replay::save_quantized_file(paths.qmodel, q);
    replay::save_object_pool_file(paths.pool, ds.pool);
    std::cout << "Wrote " << dir.string() << " (clean " << clean.total_points()
              << " pts / degraded " << degraded.total_points() << " pts)\n";

    // Validate the artifacts exactly as CI will consume them: reload from
    // disk and run the full suite on the loaded copies.
    std::cout << "\nValidating the written artifacts...\n";
    telemetry::metrics_registry metrics;
    loaded_golden golden = load_golden(paths);
    const bool ok = run_suite(golden, metrics);
    std::cout << (ok ? "\nGolden artifacts validated.\n"
                     : "\nRecorded artifacts FAIL their own parity suite; adjust the "
                       "golden seeds/config before checking them in.\n");
    return ok ? 0 : 1;
}

int run_check(const std::filesystem::path& dir, bool dump_metrics) {
    const golden_paths paths{dir};
    telemetry::metrics_registry metrics;
    bool ok = false;
    try {
        loaded_golden golden = load_golden(paths);
        ok = run_suite(golden, metrics);
    } catch (const std::exception& e) {
        std::cerr << "parity_checker: " << e.what() << "\n";
        return 2;
    }
    if (dump_metrics) std::cout << "\n" << telemetry::to_prometheus(metrics);
    std::cout << (ok ? "\nPARITY OK\n" : "\nPARITY REGRESSION\n");
    return ok ? 0 : 1;
}

// ---- corpus container pack / unpack / verify -----------------------------

std::uint32_t sniff_magic(const std::filesystem::path& path) {
    std::ifstream in{path, std::ios::binary};
    if (!in) throw io_error{"cannot open " + path.string()};
    std::uint32_t magic = 0;
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    if (!in) throw io_error{path.string() + ": too short to carry a magic"};
    return magic;
}

int run_pack(const std::filesystem::path& in, const std::filesystem::path& out,
             std::size_t chunk_frames) {
    replay::container_options options;
    if (chunk_frames > 0) options.frames_per_chunk = chunk_frames;

    const std::uint32_t magic = sniff_magic(in);
    std::size_t frames = 0;
    if (magic == replay::frame_corpus_magic) {
        const replay::frame_corpus corpus = replay::load_corpus_file(in);
        frames = corpus.size();
        replay::pack_corpus_file(out, corpus, options);
    } else if (magic == replay::corpus_set_magic) {
        const replay::pole_corpus_set set = replay::load_corpus_set_file(in);
        frames = set.total_frames();
        replay::pack_corpus_set_file(out, set, options);
    } else {
        std::cerr << "pack: " << in.string() << " is neither a frame corpus (HWFR) nor a "
                  << "pole corpus set (HWFS)\n";
        return 2;
    }

    const auto in_size = std::filesystem::file_size(in);
    const auto out_size = std::filesystem::file_size(out);
    std::cout << "packed " << in.string() << " (" << in_size << " B, " << frames
              << " frames) -> " << out.string() << " (" << out_size << " B, ratio "
              << (out_size > 0
                      ? static_cast<double>(in_size) / static_cast<double>(out_size)
                      : 0.0)
              << "x)\n";
    return 0;
}

int run_unpack(const std::filesystem::path& in, const std::filesystem::path& out) {
    replay::container_reader reader{in};
    if (reader.kind() == replay::container_kind::corpus) {
        replay::save_corpus_file(out, replay::unpack_corpus(reader));
    } else {
        replay::save_corpus_set_file(out, replay::unpack_corpus_set(reader));
    }
    std::cout << "unpacked " << in.string() << " -> " << out.string() << "\n";
    return 0;
}

int run_verify(const std::filesystem::path& container,
               const std::filesystem::path& golden) {
    replay::container_reader reader{container};

    // Stream every frame of every stream: each chunk is read, checksummed
    // and decoded exactly once, holding one chunk at a time.
    std::size_t frames = 0;
    std::size_t points = 0;
    for (std::uint32_t s = 0; s < reader.stream_count(); ++s) {
        for (std::uint64_t i = 0; i < reader.frame_count(s); ++i) {
            const replay::frame_record& frame = reader.frame(s, i);
            ++frames;
            points += frame.cloud.size();
        }
    }
    std::uint64_t stored = 0;
    std::uint64_t uncompressed = 0;
    for (const replay::chunk_entry& chunk : reader.chunks()) {
        stored += chunk.stored_size;
        uncompressed += chunk.uncompressed_size;
    }
    std::cout << "container OK: " << reader.stream_count() << " stream(s), " << frames
              << " frames, " << points << " points, " << reader.chunks().size()
              << " chunks, " << stored << " B stored / " << uncompressed
              << " B raw (ratio "
              << (stored > 0 ? static_cast<double>(uncompressed) / static_cast<double>(stored)
                             : 0.0)
              << "x), peak cache " << reader.cache_capacity() << " chunk(s)\n";

    if (golden.empty()) return 0;

    // Golden comparison: frame-for-frame bit-exact against the envelope
    // artifact the container was packed from.
    std::size_t divergent = 0;
    const std::uint32_t magic = sniff_magic(golden);
    if (magic == replay::frame_corpus_magic) {
        const replay::frame_corpus want = replay::load_corpus_file(golden);
        const replay::frame_corpus got = replay::unpack_corpus(reader);
        if (got.name != want.name || got.base_seed != want.base_seed ||
            got.size() != want.size()) {
            ++divergent;
        }
        for (std::size_t i = 0; i < want.size() && i < got.size(); ++i) {
            if (!(got.frames[i] == want.frames[i])) ++divergent;
        }
    } else if (magic == replay::corpus_set_magic) {
        const replay::pole_corpus_set want = replay::load_corpus_set_file(golden);
        const replay::pole_corpus_set got = replay::unpack_corpus_set(reader);
        if (!(got == want)) ++divergent;
    } else {
        std::cerr << "verify: unrecognized golden artifact " << golden.string() << "\n";
        return 2;
    }
    if (divergent != 0) {
        std::cerr << "verify: container DIVERGES from " << golden.string() << " ("
                  << divergent << " mismatch(es))\n";
        return 1;
    }
    std::cout << "container matches " << golden.string() << " bit-exactly\n";
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    bool dump_metrics = false;
    std::size_t chunk_frames = 0;
    std::string mode;
    std::vector<std::filesystem::path> paths;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--metrics") == 0) {
            dump_metrics = true;
        } else if (std::strcmp(argv[i], "--chunk") == 0 && i + 1 < argc) {
            chunk_frames = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
        } else if (mode.empty()) {
            mode = argv[i];
        } else {
            paths.emplace_back(argv[i]);
        }
    }

    try {
        if (mode == "record") {
            return run_record(paths.empty() ? "data/golden" : paths[0]);
        }
        if (mode == "check") {
            return run_check(paths.empty() ? "data/golden" : paths[0], dump_metrics);
        }
        if (mode == "pack" && paths.size() == 2) {
            return run_pack(paths[0], paths[1], chunk_frames);
        }
        if (mode == "unpack" && paths.size() == 2) return run_unpack(paths[0], paths[1]);
        if (mode == "verify" && !paths.empty()) {
            return run_verify(paths[0], paths.size() > 1 ? paths[1] : "");
        }
    } catch (const std::exception& e) {
        std::cerr << "parity_checker: " << e.what() << "\n";
        return 2;
    }
    std::cerr << "usage: parity_checker record|check [golden-dir] [--metrics]\n"
                 "       parity_checker pack <in.frames|in.hwfs> <out.hwcc> [--chunk N]\n"
                 "       parity_checker unpack <in.hwcc> <out-file>\n"
                 "       parity_checker verify <in.hwcc> [golden-file]\n";
    return 2;
}
