// Fleet occupancy service: campus-scale multi-pole supervision end to
// end. Six blue-light poles stream synthetic walkway frames through
// lossy pole links into their own supervised fault domains; two links
// drop/delay/corrupt traffic, one pole's classifier is flaky, and one
// pole goes completely dead mid-run. The fleet watchdog quarantines and
// restarts the sick poles with capped exponential backoff while the
// occupancy board keeps publishing a staleness-bounded aggregate — the
// whole campus never stops answering "how many people are out there?".
//
//   fleet_service [ticks]        (default 600)

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "fleet/fleet_manager.hpp"
#include "nn/kernels/kernels.hpp"
#include "obs/build_info.hpp"
#include "telemetry/export.hpp"

using namespace hawc;

namespace {

// Cheap deterministic stand-in for the trained HAWC model: humans are
// tall-ish compact clusters. Stateless, hence safe to share across the
// poles running in parallel.
class extent_classifier final : public human_classifier {
public:
    bool is_human(const point_cloud& cluster, rng&) const override {
        if (cluster.empty()) return false;
        const vec3 extent = cluster.bounds().size();
        return extent.z > 0.7 && std::max(extent.x, extent.y) < 2.5;
    }
    std::string name() const override { return "ExtentGate"; }
    bool thread_safe() const override { return true; }
};

// A synthetic pole capture: ground plane plus person-sized blobs.
point_cloud synth_frame(rng& r, std::size_t people) {
    point_cloud cloud;
    for (int i = 0; i < 400; ++i) {
        cloud.push_back({r.uniform(10.0, 36.0), r.uniform(-3.0, 3.0),
                         -3.0 + std::abs(r.normal(0.0, 0.05))});
    }
    for (std::size_t p = 0; p < people; ++p) {
        const double fx = r.uniform(14.0, 33.0);
        const double fy = r.uniform(-2.0, 2.0);
        const double height = r.uniform(1.5, 1.9);
        for (int i = 0; i < 120; ++i) {
            cloud.push_back({fx + r.normal(0.0, 0.12), fy + r.normal(0.0, 0.12),
                             -2.9 + r.uniform() * height});
        }
    }
    return cloud;
}

}  // namespace

int main(int argc, char** argv) {
    const std::uint64_t ticks = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 600;

    const extent_classifier classifier;

    std::vector<fleet::pole_setup> setups;
    for (std::size_t i = 0; i < 6; ++i) {
        fleet::pole_setup p;
        // Two appends: GCC 12's -Wrestrict false-positives on
        // operator+(const char*, std::string&&) at -O3.
        p.pole_id = "p";
        p.pole_id += std::to_string(i);
        p.seed = 9000 + i;
        p.primary = &classifier;
        p.watchdog.max_consecutive_dropped = 4;
        setups.push_back(std::move(p));
    }
    // Pole 2: a lossy, corrupting link.
    setups[2].link.drop_prob = 0.2;
    setups[2].link.delay_prob = 0.2;
    setups[2].link.corrupt_prob = 0.1;
    // Pole 3: heavy reordering and duplication.
    setups[3].link.reorder_prob = 0.3;
    setups[3].link.duplicate_prob = 0.3;
    // Pole 4 goes silent mid-run: the hung-pole watchdog quarantines it
    // and probes it back to life with capped exponential backoff.
    setups[4].watchdog.max_silent_ticks = 5;

    fleet::fleet_config cfg;
    fleet::fleet_manager campus{cfg, setups};

    std::cout << "Streaming " << ticks << " ticks across " << campus.pole_count()
              << " poles (pole 2 lossy+corrupting, pole 3 reordering, pole 4\n"
              << "goes dead for a stretch, pole 5 sends truncated frames)...\n\n";

    rng traffic{424242};
    for (std::uint64_t t = 0; t < ticks; ++t) {
        for (std::size_t i = 0; i < campus.pole_count(); ++i) {
            // Pole 4 dies for the middle third of the run: its watchdog
            // quarantines it and the ladder serves stale, then excludes.
            if (i == 4 && t > ticks / 3 && t < 2 * ticks / 3) continue;
            fleet::link_message msg;
            msg.frame_index = t;
            const auto people = static_cast<std::size_t>(
                1.5 + 1.5 * std::sin(0.05 * static_cast<double>(t) +
                                     static_cast<double>(i)));
            msg.cloud = synth_frame(traffic, people);
            // Pole 5's sensor truncates frames half the time: the
            // supervisor drops them and the stale-count rung answers.
            if (i == 5 && t % 2 == 0) {
                point_cloud stub;
                for (std::size_t k = 0; k < 8 && k < msg.cloud.size(); ++k) {
                    stub.push_back(msg.cloud[k]);
                }
                msg.cloud = stub;
            }
            campus.submit(i, std::move(msg));
        }
        campus.tick();

        if ((t + 1) % std::max<std::uint64_t>(1, ticks / 10) == 0) {
            const fleet::occupancy_snapshot snap = campus.snapshot();
            std::cout << "  tick " << snap.tick << ": aggregate=" << snap.aggregate
                      << " included=" << snap.included << "/" << snap.poles.size()
                      << " [";
            for (std::size_t i = 0; i < snap.poles.size(); ++i) {
                std::cout << (i > 0 ? " " : "") << to_string(snap.poles[i].rung)[0];
            }
            std::cout << "]\n";
        }
    }

    const fleet::occupancy_snapshot final_snap = campus.snapshot();
    std::cout << "\nFinal fleet state (tick " << final_snap.tick << "):\n";
    for (std::size_t i = 0; i < campus.pole_count(); ++i) {
        const fleet::pole_runtime& p = campus.pole(i);
        std::cout << "  " << p.id() << ": state=" << to_string(p.state())
                  << " rung=" << to_string(final_snap.poles[i].rung)
                  << " count=" << final_snap.poles[i].count
                  << " processed=" << p.stats().processed
                  << " restarts=" << p.stats().restarts
                  << " checksum_rejects=" << p.stats().checksum_failures << "\n";
    }
    std::cout << "\nStaleness bound (" << cfg.exclude_after_ticks << " ticks) holds: "
              << (final_snap.within_staleness(final_snap.tick, cfg.exclude_after_ticks)
                      ? "yes"
                      : "NO")
              << "\n";

    std::cout << "\nPer-pole metrics scrape (excerpt):\n";
    obs::register_build_info(campus.metrics());  // includes the ISA gauges
    const std::string prom = telemetry::to_prometheus(campus.metrics());
    std::size_t shown = 0;
    std::size_t pos = 0;
    while (shown < 16 && pos < prom.size()) {
        const std::size_t eol = prom.find('\n', pos);
        const std::string line = prom.substr(pos, eol - pos);
        pos = eol == std::string::npos ? prom.size() : eol + 1;
        if (line.find("hawc_pole_frames_total") != std::string::npos ||
            line.find("hawc_kernel_isa") != std::string::npos ||
            line.find("hawc_build_info") != std::string::npos ||
            line.find("hawc_fleet_aggregate") != std::string::npos) {
            std::cout << "  " << line << "\n";
            ++shown;
        }
    }
    return 0;
}
