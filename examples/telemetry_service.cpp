// Telemetry service: the observability subsystem end to end. Streams
// fault-injected walkway traffic through the frame supervisor with a
// trace sink installed, then shows every export surface:
//
//   * periodic Prometheus text scrapes of the supervisor registry
//     (frame/fallback counters, per-stage latency histograms, pool
//     utilization gauges),
//   * a JSON snapshot with estimated p50/p95/p99 per stage,
//   * a Chrome trace_event file (telemetry_trace.json) of the per-frame
//     span tree — load it in chrome://tracing or Perfetto.
//
// Run resilient_service for the fault-tolerance story; this example is
// about watching that story unfold in metrics and spans.

#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "classifiers/hawc_model.hpp"
#include "classifiers/quantized_classifier.hpp"
#include "common/thread_pool.hpp"
#include "nn/kernels/kernels.hpp"
#include "obs/build_info.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/supervisor.hpp"
#include "sim/trajectory.hpp"
#include "telemetry/telemetry.hpp"

using namespace hawc;

int main() {
    // ---- A compact classifier pair (int8 primary, fp32 fallback) ----
    std::cout << "Training a compact HAWC classifier...\n";
    single_person_dataset_config ds_cfg;
    ds_cfg.human_samples = 200;
    ds_cfg.object_samples = 200;
    ds_cfg.capture.min_cluster_points = 20;
    const single_person_dataset ds = build_single_person_dataset(ds_cfg);

    rng random{7};
    hawc_config model_cfg;
    model_cfg.features.upsample.target_points = ds.target_points;
    model_cfg.features.projection.target_points = ds.target_points;
    model_cfg.training.epochs = 10;
    hawc_model model{model_cfg, ds.pool, random};
    model.train(ds.train, nullptr, random);

    quantized_model q = model.quantize(ds.train, random, 100);
    const auto& extractor = model.extractor();
    const quantized_classifier int8{q,
                                    [&extractor](const point_cloud& c, rng& rr) {
                                        return extractor.extract(c, rr);
                                    },
                                    "HAWC-int8"};

    // ---- Supervisor with the full telemetry surface installed ----
    supervisor_config sup_cfg;
    sup_cfg.capture.min_cluster_points = 20;
    sup_cfg.min_raw_points = 4000;
    frame_supervisor supervisor{sup_cfg, int8, &model};

    telemetry::trace_sink sink{8192};
    supervisor.set_trace_sink(&sink);

    // Light fault injection so the trace shows degraded and dropped
    // frames, not just clean ones.
    const scanner sensor{sup_cfg.capture.sensor};
    fault_injection_config fi_cfg;
    fi_cfg.non_finite_prob = 0.1;
    fi_cfg.truncated_frame_prob = 0.1;
    fi_cfg.duplicate_points_prob = 0.1;
    fault_injector injector{fi_cfg};

    rng traffic_rng{2025};
    const traffic_schedule traffic{traffic_rng, 180.0, /*arrivals_per_minute=*/12.0};

    std::cout << "Streaming 3 minutes of fault-injected traffic "
                 "(scrape every 60 s)...\n";
    for (double t = 5.0; t < 180.0; t += 5.0) {
        const scene frame = traffic.scene_at(t, traffic_rng);
        const scan_result scan_data =
            sensor.scan(frame.primitives(), traffic_rng, sup_cfg.capture.scan);
        const point_cloud corrupted = injector.corrupt(scan_data.to_cloud(), traffic_rng);
        (void)supervisor.process(corrupted, traffic_rng);

        if (static_cast<int>(t) % 60 == 0) {
            // A scraper would GET this payload from the pole's /metrics
            // endpoint; here we print a few signal lines of it.
            telemetry::record_pool_gauges(supervisor.metrics(), global_pool());
            obs::register_build_info(supervisor.metrics());  // includes ISA gauges
            const std::string scrape = telemetry::to_prometheus(supervisor.metrics());
            std::cout << "\n-- Prometheus scrape @ " << t << "s (excerpt) --\n";
            for (std::size_t pos = 0; pos < scrape.size();) {
                std::size_t eol = scrape.find('\n', pos);
                if (eol == std::string::npos) eol = scrape.size();
                const std::string line = scrape.substr(pos, eol - pos);
                if (line.rfind("hawc_frames_", 0) == 0 ||
                    line.rfind("hawc_pool_utilization", 0) == 0 ||
                    line.rfind("hawc_kernel_isa", 0) == 0 ||
                    line.rfind("hawc_build_info", 0) == 0 ||
                    line.rfind("hawc_fallback_", 0) == 0) {
                    std::cout << "  " << line << "\n";
                }
                pos = eol + 1;
            }
        }
    }

    // ---- JSON snapshot: per-stage tail latency ----
    std::cout << "\n-- JSON snapshot --\n"
              << telemetry::to_json(supervisor.metrics()) << "\n";

    // ---- Span tree -> Chrome trace file ----
    const auto spans = sink.snapshot();
    std::map<std::string, std::size_t> by_name;
    for (const auto& s : spans) ++by_name[s.name];
    std::cout << "\nRecorded " << sink.recorded() << " spans ("
              << spans.size() << " retained in the ring):\n";
    for (const auto& [name, n] : by_name) {
        std::cout << "  " << name << " x" << n << "\n";
    }

    std::ofstream trace_file{"telemetry_trace.json"};
    trace_file << telemetry::to_chrome_trace(spans);
    std::cout << "\nWrote telemetry_trace.json — open it in chrome://tracing "
                 "or https://ui.perfetto.dev to see the per-frame span tree\n"
                 "(frame > ingest / eps_selection / dbscan / classify > "
                 "classify_cluster).\n";
    return 0;
}
