// Emergency crowding detection: the paper's safety scenario — detect
// unusual crowd density in real time so that incidents (evacuations,
// dangerous congestion) can be flagged immediately.
//
// The example trains HAWC-CC, then streams scenes whose density ramps
// from normal traffic to a dense gathering, and raises alerts when the
// counted density crosses Fruin's level-of-service thresholds.

#include <iostream>

#include "classifiers/hawc_model.hpp"
#include "counting/crowd_counter.hpp"

using namespace hawc;

namespace {

/// Fruin-style level of service from people per square metre.
const char* service_level(double people_per_m2) {
    if (people_per_m2 < 0.3) return "A (free flow)";
    if (people_per_m2 < 0.7) return "C (constrained)";
    if (people_per_m2 < 1.0) return "D (congested)";
    if (people_per_m2 < 2.0) return "E (critical)";
    return "F (jammed) - ALERT";
}

}  // namespace

int main() {
    std::cout << "Preparing the classifier...\n";
    single_person_dataset_config ds_cfg;
    ds_cfg.human_samples = 400;
    ds_cfg.object_samples = 400;
    ds_cfg.capture.min_cluster_points = 20;
    const single_person_dataset ds = build_single_person_dataset(ds_cfg);

    rng random{7};
    hawc_config model_cfg;
    model_cfg.features.upsample.target_points = ds.target_points;
    model_cfg.features.projection.target_points = ds.target_points;
    model_cfg.training.epochs = 15;
    model_cfg.training.lr_decay_factor = 0.3;
    model_cfg.training.lr_decay_period = 8;
    hawc_model model{model_cfg, ds.pool, random};
    model.train(ds.train, nullptr, random);

    // Donor clusters for composited density scenes.
    std::vector<point_cloud> humans;
    std::vector<point_cloud> objects;
    for (std::size_t i = 0; i < ds.train.size(); ++i) {
        (ds.train.labels[i] == label_human ? humans : objects)
            .push_back(ds.train.clusters[i]);
    }

    // Counting over the widened composited area (people at 7-40 m).
    capture_config count_cfg;
    count_cfg.min_cluster_points = 20;
    count_cfg.roi.x_min_m = 5.0;
    count_cfg.roi.x_max_m = 42.0;
    count_cfg.roi.y_min_m = -10.0;
    count_cfg.roi.y_max_m = 10.0;
    const crowd_counter counter{count_cfg, model};
    constexpr double monitored_area_m2 = 100.0;

    std::cout << "\nStreaming density ramp (monitored area " << monitored_area_m2
              << " m^2):\n";
    std::cout << "  frame  truth  counted  density  level\n";

    rng stream_rng{31};
    bool alert_raised = false;
    std::size_t frame = 0;
    for (const std::size_t people : {5, 10, 20, 40, 60, 90, 120, 160, 210, 250}) {
        density_scene_config cfg;
        cfg.pedestrians = people;
        const density_scene scene = build_density_scene(cfg, humans, objects, stream_rng);
        const count_result result = counter.count(scene.cloud, stream_rng);
        const double density = static_cast<double>(result.count) / monitored_area_m2;
        const char* level = service_level(density);

        std::printf("  %5zu  %5zu  %7zu  %7.2f  %s\n", frame++, scene.ground_truth,
                    result.count, density, level);
        if (!alert_raised && density >= 2.0) {
            std::cout << "  >>> EMERGENCY ALERT: density " << density
                      << " people/m^2 exceeds the safe threshold (2.0). Estimated "
                      << result.count << " people in the zone. <<<\n";
            alert_raised = true;
        }
    }

    std::cout << "\nThe alert fires from the LiDAR stream alone: no camera, no "
                 "personally identifiable information leaves the pole.\n";
    return alert_raised ? 0 : 1;
}
