// Flight-recorder drill: an eight-pole campus fleet with full
// observability — structured event log, per-pole black-box recorders,
// and SLO alerting — runs a chaos soak in which one pole's sensor dies
// mid-run. The watchdog quarantines it, the flight recorder dumps a
// checksummed postmortem bundle, and this program then does exactly what
// an on-call engineer would: saves the bundle, reloads it, and replays
// the recorded frames bit-exactly through the standard replay driver
// against a fresh supervisor. Meanwhile the SLO engine fires an
// exclusion alert during the incident and resolves it, with hysteresis,
// once the pole recovers.
//
//   pole_postmortem [ticks] [bundle-path]
//     (defaults: 240 ticks, bundle written to a temp file)

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "fleet/fleet_manager.hpp"
#include "obs/build_info.hpp"
#include "obs/event_log.hpp"
#include "obs/postmortem.hpp"
#include "replay/frame_format.hpp"

using namespace hawc;

namespace {

class extent_classifier final : public human_classifier {
public:
    bool is_human(const point_cloud& cluster, rng&) const override {
        if (cluster.empty()) return false;
        const vec3 extent = cluster.bounds().size();
        return extent.z > 0.7 && std::max(extent.x, extent.y) < 2.5;
    }
    std::string name() const override { return "ExtentGate"; }
    bool thread_safe() const override { return true; }
};

// Synthetic pole capture, pre-rounded to the recorded float32 precision:
// the flight recorder's bit-exactness contract requires the pole to have
// processed exactly the bytes the bundle stores.
point_cloud synth_frame(rng& r, std::size_t people) {
    point_cloud cloud;
    for (int i = 0; i < 300; ++i) {
        cloud.push_back({r.uniform(10.0, 36.0), r.uniform(-3.0, 3.0),
                         -3.0 + std::abs(r.normal(0.0, 0.05))});
    }
    for (std::size_t p = 0; p < people; ++p) {
        const double fx = r.uniform(14.0, 33.0);
        const double fy = r.uniform(-2.0, 2.0);
        const double height = r.uniform(1.5, 1.9);
        for (int i = 0; i < 110; ++i) {
            cloud.push_back({fx + r.normal(0.0, 0.12), fy + r.normal(0.0, 0.12),
                             -2.9 + r.uniform() * height});
        }
    }
    return replay::round_to_recorded(cloud);
}

}  // namespace

int main(int argc, char** argv) {
    const std::uint64_t ticks = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 240;
    const std::filesystem::path bundle_path =
        argc > 2 ? std::filesystem::path{argv[2]}
                 : std::filesystem::temp_directory_path() / "hawc_postmortem.hawcpm";

    const extent_classifier classifier;
    const std::size_t victim = 3;

    std::vector<fleet::pole_setup> setups;
    for (std::size_t i = 0; i < 8; ++i) {
        fleet::pole_setup p;
        // Two appends: GCC 12's -Wrestrict false-positives on
        // operator+(const char*, std::string&&) at -O3.
        p.pole_id = "pole-";
        p.pole_id += std::to_string(i);
        p.seed = 7000 + i;
        p.primary = &classifier;
        p.supervisor.eps_selection_deadline_ms = 0.0;
        p.supervisor.classification_deadline_ms = 0.0;
        p.supervisor.frame_deadline_ms = 0.0;
        p.supervisor.max_stale_frames = 2;
        p.watchdog.max_consecutive_dropped = 3;
        p.watchdog.backoff_base_ticks = 4;
        p.watchdog.backoff_cap_ticks = 16;
        p.watchdog.backoff_jitter_fraction = 0.0;
        p.watchdog.probation_recovery_streak = 2;
        setups.push_back(std::move(p));
    }
    // A little background chaos on two healthy poles, like a real campus.
    setups[1].link.delay_prob = 0.1;
    setups[6].link.duplicate_prob = 0.1;

    fleet::fleet_config cfg;
    cfg.stale_after_ticks = 3;
    cfg.exclude_after_ticks = 6;
    fleet::fleet_manager campus{cfg, setups};

    // Observability stack: shared event log (rate-limited, ring of 1024),
    // a flight recorder per pole, and drill-scale SLO rules.
    obs::event_log log{{.capacity = 1024, .tokens_per_tick = 16.0, .burst = 64.0}};
    log.bind_metrics(campus.metrics());
    campus.attach_observability(log);
    campus.enable_flight_recorders({.frame_capacity = 8});
    campus.install_slo(obs::parse_slo_rules(
        "alert poles_excluded if value(hawc_fleet_excluded_poles) > 0 "
        "for 2 resolve 4 severity error\n"
        "alert fleet_drop_burn if "
        "ratio(hawc_fleet_frames_dropped_total/hawc_fleet_frames_total) > 0.5 "
        "window 8/32 resolve 8 severity critical\n"));
    obs::register_build_info(campus.metrics(), &log);

    const obs::build_info build = obs::current_build_info();
    std::cout << "hawc " << build.version << " (" << build.compiler << ", isa "
              << build.isa << ", sanitizer " << build.sanitizer << ")\n"
              << "Streaming " << ticks << " ticks across 8 poles; pole-" << victim
              << "'s sensor dies for the middle third of the run.\n\n";

    rng traffic{90210};
    std::vector<obs::postmortem_bundle> bundles;
    bool fired = false;
    bool resolved_after_fire = false;
    for (std::uint64_t t = 0; t < ticks; ++t) {
        for (std::size_t i = 0; i < campus.pole_count(); ++i) {
            fleet::link_message msg;
            msg.frame_index = t;
            const auto people = static_cast<std::size_t>(
                1.5 + 1.5 * std::sin(0.07 * static_cast<double>(t) +
                                     static_cast<double>(i)));
            // The victim's sensor returns nothing mid-run: truncated
            // frames -> dropped -> watchdog quarantine -> recorder dump.
            if (i == victim && t > ticks / 3 && t < 2 * ticks / 3) {
                msg.cloud = {};
            } else {
                msg.cloud = synth_frame(traffic, people);
            }
            campus.submit(i, std::move(msg));
        }
        campus.tick();

        const obs::alert_state* excluded = campus.slo()->find("poles_excluded");
        fired = fired || excluded->firing;
        resolved_after_fire =
            resolved_after_fire ||
            (excluded->fired_count > 0 && excluded->resolved_count > 0 &&
             !excluded->firing);

        auto fresh = campus.collect_postmortems();
        for (auto& bundle : fresh) {
            std::cout << "  tick " << t << ": postmortem from " << bundle.pole_id
                      << " (" << to_string(bundle.trigger) << ", "
                      << bundle.frames.size() << " frames)\n";
            bundles.push_back(std::move(bundle));
        }
    }

    std::cout << "\nFleet health: " << campus.fleet_health().render() << "\n"
              << "Events recorded: " << log.published() << " (suppressed "
              << log.suppressed() << ")\n";
    std::cout << "Alert poles_excluded: "
              << (fired && resolved_after_fire ? "fired and resolved"
                                               : "DID NOT complete its cycle")
              << "\n";

    if (bundles.empty()) {
        std::cout << "FAIL: no postmortem bundle was produced\n";
        return 1;
    }

    // Save -> reload -> replay the first quarantine bundle, the exact
    // workflow a field postmortem uses. The reload proves the checksummed
    // envelope round-trips; the replay proves bit-exactness.
    const obs::postmortem_bundle& bundle = bundles.front();
    obs::save_postmortem_file(bundle_path, bundle);
    const obs::postmortem_bundle reloaded = obs::load_postmortem_file(bundle_path);
    std::cout << "\nBundle " << bundle_path.string() << ": "
              << std::filesystem::file_size(bundle_path) << " bytes, "
              << reloaded.frames.size() << " frames from " << reloaded.pole_id
              << ", trigger " << to_string(reloaded.trigger) << "\n";
    std::cout << "Last events before the dump (tail of the bundle's JSONL):\n";
    const std::string& jsonl = reloaded.events_jsonl;
    std::size_t shown = 0;
    for (std::size_t pos = jsonl.rfind('\n', jsonl.size() - 2);
         shown < 3 && pos != std::string::npos;
         pos = pos == 0 ? std::string::npos : jsonl.rfind('\n', pos - 1), ++shown) {
        std::cout << "  " << jsonl.substr(pos + 1, jsonl.find('\n', pos + 1) - pos - 1)
                  << "\n";
    }

    frame_supervisor fresh{setups[victim].supervisor, classifier, nullptr};
    const obs::postmortem_replay_result verdict = obs::replay_postmortem(reloaded, fresh);
    std::cout << "\npostmortem replay: "
              << (verdict.bit_exact ? "bit-exact" : "DIVERGED") << " ("
              << verdict.matches << "/" << verdict.frames << " frames match)\n";

    std::filesystem::remove(bundle_path);
    return verdict.bit_exact && fired && resolved_after_fire ? 0 : 1;
}
