#include "sim/human_model.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace hawc {

double height_distribution::sample(rng& random) const {
    return std::clamp(random.normal(mean_m, stddev_m), min_m, max_m);
}

human_params sample_human_params(rng& random, const height_distribution& heights) {
    human_params p;
    p.height_m = heights.sample(random);
    p.shoulder_width_m = 0.24 * p.height_m + random.normal(0.0, 0.015);
    p.stride_phase = random.uniform();
    p.heading_rad = random.uniform(0.0, 2.0 * std::numbers::pi);
    p.reflectivity = random.uniform(0.55, 0.9);
    return p;
}

std::vector<scene_primitive> make_human(const human_params& params, const vec3& feet,
                                        int entity_id) {
    const double h = params.height_m;
    // Anthropometric landmark heights as fractions of stature.
    const double hip_z = 0.53 * h;
    const double shoulder_z = 0.82 * h;
    const double head_center_z = 0.93 * h;
    const double head_radius = 0.065 * h;
    const double torso_radius = 0.5 * params.shoulder_width_m * 0.55;
    const double limb_radius = 0.045 * h;

    const double cos_h = std::cos(params.heading_rad);
    const double sin_h = std::sin(params.heading_rad);
    // Forward/back leg swing from the walking cycle.
    const double swing =
        0.18 * h * std::sin(2.0 * std::numbers::pi * params.stride_phase);
    const vec3 forward{cos_h, sin_h, 0.0};
    const vec3 side{-sin_h, cos_h, 0.0};
    const double hip_half = 0.09 * h;

    std::vector<scene_primitive> body;
    body.reserve(8);
    auto add = [&](shape geom) {
        body.push_back({std::move(geom), entity_id, params.reflectivity});
    };

    const vec3 up{0.0, 0.0, 1.0};
    const vec3 hip_center = feet + up * hip_z;
    const vec3 shoulder_center = feet + up * shoulder_z;

    // Legs: two capsules from feet (swung) to hips.
    add(capsule{feet + side * hip_half + forward * swing,
                hip_center + side * hip_half, limb_radius});
    add(capsule{feet - side * hip_half - forward * swing,
                hip_center - side * hip_half, limb_radius});

    // Torso: hip to shoulder, thicker.
    add(capsule{hip_center, shoulder_center, torso_radius});

    // Arms: hang from the shoulders with opposite swing to the legs.
    const double shoulder_half = 0.5 * params.shoulder_width_m;
    const double arm_drop = 0.30 * h;
    add(capsule{shoulder_center + side * shoulder_half,
                shoulder_center + side * shoulder_half - up * arm_drop - forward * (0.5 * swing),
                limb_radius * 0.85});
    add(capsule{shoulder_center - side * shoulder_half,
                shoulder_center - side * shoulder_half - up * arm_drop + forward * (0.5 * swing),
                limb_radius * 0.85});

    // Head.
    add(sphere{feet + up * head_center_z, head_radius});

    return body;
}

}  // namespace hawc
