#include "sim/trajectory.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hawc {

traffic_schedule::traffic_schedule(rng& random, double duration_s, double arrivals_per_minute,
                                   const walkway_config& walkway)
    : duration_s_{duration_s}, walkway_{walkway} {
    HAWC_REQUIRE(duration_s > 0.0, "schedule duration must be positive");
    HAWC_REQUIRE(arrivals_per_minute >= 0.0, "arrival rate must be non-negative");

    // Poisson arrivals: exponential inter-arrival gaps.
    const double rate_per_s = arrivals_per_minute / 60.0;
    double t = 0.0;
    while (rate_per_s > 0.0) {
        const double gap = -std::log(1.0 - random.uniform()) / rate_per_s;
        t += gap;
        if (t >= duration_s) break;

        walk_trajectory walk;
        walk.params = sample_human_params(random);
        const double speed = random.uniform(1.1, 1.7);
        const bool northbound = random.chance(0.5);
        const double x = random.uniform(walkway.x_min_m, walkway.x_max_m);
        const double y0 = northbound ? -walkway.y_half_width_m : walkway.y_half_width_m;
        walk.start = {x, y0, walkway.ground_z()};
        walk.velocity = {0.0, northbound ? speed : -speed, 0.0};
        walk.enter_time_s = t;
        walk.exit_time_s = t + 2.0 * walkway.y_half_width_m / speed;
        walk.params.heading_rad = northbound ? std::numbers::pi / 2 : -std::numbers::pi / 2;
        walks_.push_back(walk);
    }

    // Fixed installations along the walkway edges.
    const std::size_t clutter_count = 3;
    for (std::size_t i = 0; i < clutter_count; ++i) {
        fixed_object obj;
        obj.kind = sample_object_kind(random);
        obj.base = {random.uniform(walkway.x_min_m, walkway.x_max_m),
                    (random.chance(0.5) ? 1.0 : -1.0) * walkway.y_half_width_m * 1.1,
                    walkway.ground_z()};
        obj.seed = random();
        clutter_.push_back(obj);
    }
}

std::size_t traffic_schedule::count_at(double t) const {
    return static_cast<std::size_t>(std::count_if(
        walks_.begin(), walks_.end(), [&](const walk_trajectory& w) { return w.active_at(t); }));
}

scene traffic_schedule::scene_at(double t, rng& random) const {
    scene s;
    for (const auto& walk : walks_) {
        if (!walk.active_at(t)) continue;
        human_params params = walk.params;
        // Stride phase advances with distance walked (stride ~ 0.75 * height).
        const double walked = walk.velocity.norm() * (t - walk.enter_time_s);
        params.stride_phase = std::fmod(walked / (0.75 * params.height_m), 1.0);
        s.add_human(params, walk.position_at(t));
    }
    for (const auto& obj : clutter_) {
        rng geometry_rng{obj.seed};  // same geometry every frame
        s.add_object(obj.kind, obj.base, geometry_rng);
    }
    (void)random;
    return s;
}

}  // namespace hawc
