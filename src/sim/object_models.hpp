#pragma once

// Campus clutter objects: everything on a walkway that is *not* a person.
// These populate the "Object" class of the datasets and the noise pool
// used by HAWC's noise-controlled up-sampling.

#include <vector>

#include "common/rng.hpp"
#include "geom/vec3.hpp"
#include "lidar/primitives.hpp"

namespace hawc {

/// The object taxonomy found on the paper's walkways.
enum class object_kind {
    trash_bin,     // squat cylinder
    bush,          // blobby sphere cluster, can reach human height
    sign_pole,     // thin tall cylinder with a panel
    bench,         // low box
    bicycle,       // capsule frame + wheel spheres
    ground_clutter // pulley-like low boxes (the paper's ground-noise source)
};

inline constexpr object_kind all_object_kinds[] = {
    object_kind::trash_bin, object_kind::bush,    object_kind::sign_pole,
    object_kind::bench,     object_kind::bicycle, object_kind::ground_clutter};

const char* to_string(object_kind kind);

/// Build the primitives of one object standing at `base` (ground contact
/// point), with dimensions randomized within the kind's realistic range.
std::vector<scene_primitive> make_object(object_kind kind, const vec3& base, int entity_id,
                                         rng& random);

/// Sample a kind with campus-plausible frequencies (bushes and bins are
/// common; bicycles less so).
object_kind sample_object_kind(rng& random);

}  // namespace hawc
