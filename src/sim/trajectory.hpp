#pragma once

// Simple pedestrian trajectories so example applications can simulate
// traffic over time (streams of scans) rather than isolated captures.

#include <vector>

#include "common/rng.hpp"
#include "sim/scene.hpp"

namespace hawc {

/// Straight-line walk across the walkway at constant speed.
struct walk_trajectory {
    vec3 start;
    vec3 velocity;       // m/s in the xy plane
    double enter_time_s = 0.0;
    double exit_time_s = 0.0;
    human_params params;

    bool active_at(double t) const { return t >= enter_time_s && t <= exit_time_s; }
    vec3 position_at(double t) const { return start + velocity * (t - enter_time_s); }
};

/// A schedule of pedestrians crossing the walkway over a time window.
/// Arrival times follow a Poisson process with the given rate; each
/// pedestrian walks lengthwise (along y) at 1.1-1.7 m/s.
class traffic_schedule {
public:
    traffic_schedule(rng& random, double duration_s, double arrivals_per_minute,
                     const walkway_config& walkway = {});

    const std::vector<walk_trajectory>& walks() const { return walks_; }
    double duration_s() const { return duration_s_; }

    /// Number of pedestrians present at time t (scene ground truth).
    std::size_t count_at(double t) const;

    /// Materialize the scene at time t (active pedestrians only, plus the
    /// fixed clutter installed at construction).
    scene scene_at(double t, rng& random) const;

private:
    double duration_s_;
    walkway_config walkway_;
    std::vector<walk_trajectory> walks_;
    struct fixed_object {
        object_kind kind;
        vec3 base;
        std::uint64_t seed;  // deterministic per-object geometry
    };
    std::vector<fixed_object> clutter_;
};

}  // namespace hawc
