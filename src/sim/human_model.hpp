#pragma once

// Parametric articulated human body model. A person is composed of
// capsules and a sphere whose proportions follow standard anthropometric
// ratios of total height, so the LiDAR sees realistic silhouettes at all
// ranges. The paper's classifier leans on exactly this structure (its
// closing discussion notes the reliance on typical college-student
// heights), so height is the model's primary parameter.

#include <vector>

#include "common/rng.hpp"
#include "geom/vec3.hpp"
#include "lidar/primitives.hpp"

namespace hawc {

/// Pose and build of one simulated pedestrian.
struct human_params {
    double height_m = 1.72;       // total stature
    double shoulder_width_m = 0.42;
    double stride_phase = 0.0;    // 0..1, walking cycle position
    double heading_rad = 0.0;     // walking direction in the xy plane
    double reflectivity = 0.75;   // clothing-dependent
};

/// Distribution of statures to draw pedestrians from. Default matches a
/// young-adult campus population (mean 1.72 m, sd 0.09 m, clamped).
struct height_distribution {
    double mean_m = 1.72;
    double stddev_m = 0.09;
    double min_m = 1.45;
    double max_m = 2.05;

    double sample(rng& random) const;
};

/// Sample a full parameter set (height, stride phase, heading).
human_params sample_human_params(rng& random, const height_distribution& heights = {});

/// Build the body primitives for a person standing at `feet` (the ground
/// contact point, in the sensor frame where ground is z = -mount_height).
/// All primitives are tagged with `entity_id`.
std::vector<scene_primitive> make_human(const human_params& params, const vec3& feet,
                                        int entity_id);

}  // namespace hawc
