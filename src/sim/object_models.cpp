#include "sim/object_models.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hawc {

const char* to_string(object_kind kind) {
    switch (kind) {
        case object_kind::trash_bin: return "trash_bin";
        case object_kind::bush: return "bush";
        case object_kind::sign_pole: return "sign_pole";
        case object_kind::bench: return "bench";
        case object_kind::bicycle: return "bicycle";
        case object_kind::ground_clutter: return "ground_clutter";
    }
    return "unknown";
}

object_kind sample_object_kind(rng& random) {
    // Weighted draw: bushes/bins dominate campus walkway edges.
    const double u = random.uniform();
    if (u < 0.28) return object_kind::bush;
    if (u < 0.50) return object_kind::trash_bin;
    if (u < 0.65) return object_kind::sign_pole;
    if (u < 0.80) return object_kind::bench;
    if (u < 0.90) return object_kind::bicycle;
    return object_kind::ground_clutter;
}

std::vector<scene_primitive> make_object(object_kind kind, const vec3& base, int entity_id,
                                         rng& random) {
    std::vector<scene_primitive> prims;
    auto add = [&](shape geom, double reflectivity) {
        prims.push_back({std::move(geom), entity_id, reflectivity});
    };
    const vec3 up{0.0, 0.0, 1.0};

    switch (kind) {
        case object_kind::trash_bin: {
            const double height = random.uniform(0.8, 1.2);
            const double radius = random.uniform(0.25, 0.4);
            add(vertical_cylinder{base, height, radius}, 0.7);
            break;
        }
        case object_kind::bush: {
            // 2-4 overlapping foliage blobs; total height 0.6..1.9 m, so
            // tall bushes overlap the human height range — these are the
            // hard negatives for the classifier.
            const int blobs = 2 + static_cast<int>(random.uniform_index(3));
            const double total_height = random.uniform(0.6, 1.8);
            for (int i = 0; i < blobs; ++i) {
                const double frac = (static_cast<double>(i) + 0.5) / static_cast<double>(blobs);
                const double radius =
                    random.uniform(0.35, 0.6) * (1.0 - 0.25 * frac);
                vec3 center = base + up * (frac * total_height);
                center.x += random.normal(0.0, 0.08);
                center.y += random.normal(0.0, 0.08);
                add(sphere{center, radius}, random.uniform(0.35, 0.55));
            }
            break;
        }
        case object_kind::sign_pole: {
            const double height = random.uniform(2.2, 3.0);
            add(vertical_cylinder{base, height, 0.04}, 0.85);
            // Sign panel near the top.
            const double panel_w = random.uniform(0.3, 0.6);
            aabb panel{{base.x - 0.02, base.y - panel_w / 2, base.z + height - 0.7},
                       {base.x + 0.02, base.y + panel_w / 2, base.z + height - 0.1}};
            add(box{panel}, 0.9);
            break;
        }
        case object_kind::bench: {
            const double length = random.uniform(1.2, 1.8);
            aabb seat{{base.x - 0.25, base.y - length / 2, base.z + 0.35},
                      {base.x + 0.25, base.y + length / 2, base.z + 0.5}};
            add(box{seat}, 0.65);
            aabb back{{base.x + 0.18, base.y - length / 2, base.z + 0.5},
                      {base.x + 0.25, base.y + length / 2, base.z + 0.95}};
            add(box{back}, 0.65);
            break;
        }
        case object_kind::bicycle: {
            const double length = random.uniform(1.5, 1.8);
            const double wheel_r = 0.34;
            const vec3 front = base + vec3{length / 2, 0.0, wheel_r};
            const vec3 rear = base + vec3{-length / 2, 0.0, wheel_r};
            add(sphere{front, wheel_r}, 0.4);
            add(sphere{rear, wheel_r}, 0.4);
            add(capsule{rear + up * 0.2, front + up * 0.45, 0.05}, 0.6);  // frame
            add(capsule{base + vec3{0.1, 0.0, wheel_r}, base + vec3{0.1, 0.0, 1.0}, 0.04},
                0.6);  // seat post
            break;
        }
        case object_kind::ground_clutter: {
            // Pulley/debris boxes hugging the ground: the z-noise source
            // the paper's ground segmentation rule (z_min = -2.6) targets.
            const int pieces = 1 + static_cast<int>(random.uniform_index(3));
            for (int i = 0; i < pieces; ++i) {
                const double w = random.uniform(0.15, 0.45);
                const double h = random.uniform(0.1, 0.35);
                vec3 corner = base + vec3{random.normal(0.0, 0.3), random.normal(0.0, 0.3), 0.0};
                add(box{{corner, corner + vec3{w, w, h}}}, 0.5);
            }
            break;
        }
    }
    return prims;
}

}  // namespace hawc
