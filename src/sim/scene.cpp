#include "sim/scene.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hawc {

std::size_t scene::human_count() const {
    return static_cast<std::size_t>(
        std::count_if(entities_.begin(), entities_.end(),
                      [](const scene_entity& e) { return e.kind == entity_kind::human; }));
}

int scene::add_human(const human_params& params, const vec3& feet) {
    const int id = next_id_++;
    auto body = make_human(params, feet, id);
    primitives_.insert(primitives_.end(), body.begin(), body.end());
    entities_.push_back({id, entity_kind::human, feet, params.height_m, object_kind::trash_bin});
    return id;
}

int scene::add_object(object_kind kind, const vec3& base, rng& random) {
    const int id = next_id_++;
    auto prims = make_object(kind, base, id, random);
    aabb box;
    for (const auto& p : prims) box.expand(shape_bounds(p.geometry));
    primitives_.insert(primitives_.end(), prims.begin(), prims.end());
    entities_.push_back({id, entity_kind::object, base, box.size().z, kind});
    return id;
}

vec3 sample_walkway_position(rng& random, const walkway_config& walkway) {
    return {random.uniform(walkway.x_min_m, walkway.x_max_m),
            random.uniform(-walkway.y_half_width_m, walkway.y_half_width_m),
            walkway.ground_z()};
}

namespace {

/// Sample a position at least `min_separation` from all of `taken`;
/// falls back to the last candidate after a bounded number of attempts
/// so that very dense scenes still fill up.
vec3 sample_separated(rng& random, const walkway_config& walkway,
                      const std::vector<vec3>& taken, double min_separation) {
    vec3 candidate;
    for (int attempt = 0; attempt < 40; ++attempt) {
        candidate = sample_walkway_position(random, walkway);
        const bool clear =
            std::all_of(taken.begin(), taken.end(), [&](const vec3& p) {
                const double dx = p.x - candidate.x;
                const double dy = p.y - candidate.y;
                return dx * dx + dy * dy >= min_separation * min_separation;
            });
        if (clear) break;
    }
    return candidate;
}

}  // namespace

scene make_single_person_scene(rng& random, const walkway_config& walkway,
                               std::size_t clutter_objects) {
    scene s;
    s.add_human(sample_human_params(random), sample_walkway_position(random, walkway));
    for (std::size_t i = 0; i < clutter_objects; ++i) {
        // Edge clutter: push objects toward the walkway borders.
        vec3 base = sample_walkway_position(random, walkway);
        base.y = (base.y < 0.0 ? -1.0 : 1.0) * random.uniform(walkway.y_half_width_m * 0.7,
                                                              walkway.y_half_width_m * 1.3);
        s.add_object(sample_object_kind(random), base, random);
    }
    return s;
}

scene make_object_scene(rng& random, std::size_t object_count, const walkway_config& walkway) {
    HAWC_REQUIRE(object_count > 0, "object scene needs at least one object");
    scene s;
    std::vector<vec3> taken;
    for (std::size_t i = 0; i < object_count; ++i) {
        const vec3 base = sample_separated(random, walkway, taken, 1.0);
        taken.push_back(base);
        s.add_object(sample_object_kind(random), base, random);
    }
    return s;
}

scene make_crowd_scene(rng& random, std::size_t human_count, std::size_t object_count,
                       const walkway_config& walkway, double min_separation_m) {
    scene s;
    std::vector<vec3> taken;
    taken.reserve(human_count + object_count);
    for (std::size_t i = 0; i < human_count; ++i) {
        const vec3 feet = sample_separated(random, walkway, taken, min_separation_m);
        taken.push_back(feet);
        s.add_human(sample_human_params(random), feet);
    }
    for (std::size_t i = 0; i < object_count; ++i) {
        const vec3 base = sample_separated(random, walkway, taken, min_separation_m);
        taken.push_back(base);
        s.add_object(sample_object_kind(random), base, random);
    }
    return s;
}

}  // namespace hawc
