#pragma once

// Scene assembly: composes humans and objects into the primitive lists
// the scanner consumes, and records ground-truth entities.

#include <vector>

#include "common/rng.hpp"
#include "sim/human_model.hpp"
#include "sim/object_models.hpp"

namespace hawc {

/// Geometry of the deployment the paper describes: sensor atop a 3 m
/// pole, watching a 5 m-wide walkway that runs 12-35 m away in x.
struct walkway_config {
    double x_min_m = 12.0;
    double x_max_m = 35.0;
    double y_half_width_m = 2.5;
    double mount_height_m = 3.0;  // ground plane sits at z = -mount_height

    double ground_z() const { return -mount_height_m; }
};

/// What one scene entity is.
enum class entity_kind { human, object };

/// Ground-truth record for one placed entity.
struct scene_entity {
    int id = -1;
    entity_kind kind = entity_kind::object;
    vec3 ground_position;       // feet/base contact point
    double height_m = 0.0;      // humans: stature; objects: bounding height
    object_kind object_type = object_kind::trash_bin;  // objects only
};

/// A complete simulated scene: primitives plus its entity registry.
class scene {
public:
    const std::vector<scene_primitive>& primitives() const { return primitives_; }
    const std::vector<scene_entity>& entities() const { return entities_; }

    std::size_t human_count() const;
    std::size_t object_count() const { return entities_.size() - human_count(); }

    /// Place a sampled pedestrian at `feet`; returns its entity id.
    int add_human(const human_params& params, const vec3& feet);

    /// Place an object of the given kind at `base`; returns its entity id.
    int add_object(object_kind kind, const vec3& base, rng& random);

private:
    std::vector<scene_primitive> primitives_;
    std::vector<scene_entity> entities_;
    int next_id_ = 0;
};

/// Uniform random position on the walkway ground.
vec3 sample_walkway_position(rng& random, const walkway_config& walkway);

/// Scene containing exactly one pedestrian (plus optional edge clutter)
/// — the positive class of the single-person dataset.
scene make_single_person_scene(rng& random, const walkway_config& walkway = {},
                               std::size_t clutter_objects = 0);

/// Scene containing only objects — the negative class and the source of
/// the noise pool for noise-controlled up-sampling.
scene make_object_scene(rng& random, std::size_t object_count,
                        const walkway_config& walkway = {});

/// Scene with `human_count` pedestrians and `object_count` clutter
/// objects, all placed with at least `min_separation_m` spacing.
scene make_crowd_scene(rng& random, std::size_t human_count, std::size_t object_count,
                       const walkway_config& walkway = {}, double min_separation_m = 0.7);

}  // namespace hawc
