#include "edge/device_model.hpp"

namespace hawc {

device_profile device_profile::jetson_nano() {
    device_profile d;
    d.name = "Jetson Nano";
    // Maxwell GPU via cuDNN: moderate throughput, every op supported.
    d.conv_fp32 = {2.5e9, 0.04};
    d.conv_int8 = {4.0e9, 0.04};
    d.dense_fp32 = {2.0e9, 0.03};
    d.dense_int8 = {3.0e9, 0.03};
    d.elementwise_per_second = 8e9;
    d.per_inference_overhead_ms = 0.08;
    return d;
}

device_profile device_profile::coral_dev_board() {
    device_profile d;
    d.name = "Coral Dev Board";
    // fp32 has no accelerator: slow in-order CPU.
    d.conv_fp32 = {0.5e9, 0.02};
    d.dense_fp32 = {0.8e9, 0.01};
    // int8 conv/pool map onto the edge TPU; dense layers dispatch poorly
    // (high per-op cost, low effective throughput).
    d.conv_int8 = {4.0e11, 0.08};
    d.dense_int8 = {0.5e9, 0.15};
    d.elementwise_per_second = 1.5e9;
    d.per_inference_overhead_ms = 0.05;
    return d;
}

double predict_fp32_latency_ms(const device_profile& device,
                               std::span<const layer_info> layers) {
    double total_ms = device.per_inference_overhead_ms;
    for (const auto& layer : layers) {
        switch (layer.kind) {
            case op_kind::convolution:
                total_ms += device.conv_fp32.dispatch_overhead_ms +
                            1e3 * static_cast<double>(layer.macs_per_sample) /
                                device.conv_fp32.macs_per_second;
                break;
            case op_kind::dense:
                total_ms += device.dense_fp32.dispatch_overhead_ms +
                            1e3 * static_cast<double>(layer.macs_per_sample) /
                                device.dense_fp32.macs_per_second;
                break;
            case op_kind::normalization:
            case op_kind::activation:
            case op_kind::pooling:
                total_ms += 1e3 * static_cast<double>(layer.activations_per_sample) /
                            device.elementwise_per_second;
                break;
            case op_kind::reshape:
                break;
        }
    }
    return total_ms;
}

double predict_int8_latency_ms(const device_profile& device, std::span<const q_op_info> ops) {
    double total_ms = device.per_inference_overhead_ms;
    for (const auto& op : ops) {
        switch (op.kind) {
            case op_kind::convolution:
                total_ms += device.conv_int8.dispatch_overhead_ms +
                            1e3 * static_cast<double>(op.macs) / device.conv_int8.macs_per_second;
                break;
            case op_kind::dense:
                total_ms += device.dense_int8.dispatch_overhead_ms +
                            1e3 * static_cast<double>(op.macs) / device.dense_int8.macs_per_second;
                break;
            default:
                break;  // pooling/reshape: fused or negligible on-device
        }
    }
    return total_ms;
}

}  // namespace hawc
