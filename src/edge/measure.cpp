#include "edge/measure.hpp"

namespace hawc {

namespace {

// Prevent the optimizer from discarding forward passes.
volatile float sink_value = 0.0f;

}  // namespace

latency_summary measure_fp32_latency(sequential& model, const tensor& sample,
                                     std::size_t iterations, std::size_t warmup) {
    for (std::size_t i = 0; i < warmup; ++i) {
        sink_value = model.forward(sample, false)[0];
    }
    latency_recorder recorder;
    for (std::size_t i = 0; i < iterations; ++i) {
        recorder.measure([&] { sink_value = model.forward(sample, false)[0]; });
    }
    return {recorder.mean_ms(), recorder.stddev_ms(), iterations};
}

latency_summary measure_int8_latency(const quantized_model& model, const tensor& sample,
                                     std::size_t iterations, std::size_t warmup) {
    for (std::size_t i = 0; i < warmup; ++i) {
        sink_value = model.forward(sample)[0];
    }
    latency_recorder recorder;
    for (std::size_t i = 0; i < iterations; ++i) {
        recorder.measure([&] { sink_value = model.forward(sample)[0]; });
    }
    return {recorder.mean_ms(), recorder.stddev_ms(), iterations};
}

}  // namespace hawc
