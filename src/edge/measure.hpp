#pragma once

// Host wall-clock measurement of single-sample inference latency, used
// alongside the device cost models in the Table II bench to verify the
// *relative* ordering of our implementations.

#include "common/timer.hpp"
#include "nn/sequential.hpp"
#include "quant/q_model.hpp"

namespace hawc {

struct latency_summary {
    double mean_ms = 0.0;
    double stddev_ms = 0.0;
    std::size_t iterations = 0;
};

/// Time `iterations` single-sample fp32 forwards (after `warmup` runs).
latency_summary measure_fp32_latency(sequential& model, const tensor& sample,
                                     std::size_t iterations = 30, std::size_t warmup = 3);

/// Time `iterations` single-sample int8 forwards.
latency_summary measure_int8_latency(const quantized_model& model, const tensor& sample,
                                     std::size_t iterations = 30, std::size_t warmup = 3);

}  // namespace hawc
