#pragma once

// Analytic edge-device latency models (Table II substitution, see
// DESIGN.md). A device profile maps each operation class to an effective
// MAC throughput plus per-op dispatch overhead, separately for fp32 and
// int8. The two shipped profiles encode the architectural facts the
// paper's measurements hinge on:
//
//  * Jetson Nano: a general-purpose GPU (CUDA/cuDNN) runs every op in
//    both precisions; int8 gains are modest.
//  * Coral Dev Board: the edge TPU executes int8 conv/pool extremely
//    fast but dispatches dense layers inefficiently (the paper's
//    explanation for the int8 AutoEncoder being *slower* than fp32),
//    while fp32 falls back to the slow CPU entirely.
//
// Constants are calibrated to land in the regime of the paper's Table II;
// absolute milliseconds are model outputs, not measurements.

#include <span>
#include <string>

#include "nn/layer.hpp"
#include "quant/q_model.hpp"

namespace hawc {

struct op_cost {
    double macs_per_second = 1e9;
    double dispatch_overhead_ms = 0.01;
};

struct device_profile {
    std::string name;
    op_cost conv_fp32;
    op_cost conv_int8;
    op_cost dense_fp32;
    op_cost dense_int8;
    /// Elementwise work (activations, norm) in elements/second; fp32 path
    /// only — int8 fuses these into conv/dense.
    double elementwise_per_second = 5e9;
    double per_inference_overhead_ms = 0.1;

    static device_profile jetson_nano();
    static device_profile coral_dev_board();
};

/// Predicted fp32 latency for one sample from a model summary
/// (sequential::summarize output).
double predict_fp32_latency_ms(const device_profile& device,
                               std::span<const layer_info> layers);

/// Predicted int8 latency from quantized op infos.
double predict_int8_latency_ms(const device_profile& device, std::span<const q_op_info> ops);

}  // namespace hawc
