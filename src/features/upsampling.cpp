#include "features/upsampling.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hawc {

std::size_t next_perfect_square(std::size_t n) {
    const auto root = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
    return root * root;
}

void object_pool::add_cloud(const point_cloud& cloud) {
    points_.insert(points_.end(), cloud.begin(), cloud.end());
}

point_cloud object_pool::sample(std::size_t count, rng& random) const {
    HAWC_REQUIRE(!points_.empty(), "object pool is empty");
    point_cloud out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        out.push_back(points_[random.uniform_index(points_.size())]);
    }
    return out;
}

point_cloud upsample_cluster(const point_cloud& cluster, const upsample_config& config,
                             const object_pool& pool, rng& random) {
    HAWC_REQUIRE(config.target_points > 0, "target size must be positive");

    if (cluster.size() >= config.target_points) {
        // Random down-sample without replacement.
        std::vector<std::size_t> indices(cluster.size());
        for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
        for (std::size_t i = 0; i < config.target_points; ++i) {
            const std::size_t j = i + random.uniform_index(indices.size() - i);
            std::swap(indices[i], indices[j]);
        }
        indices.resize(config.target_points);
        return cluster.subset(indices);
    }

    point_cloud out = cluster;
    const std::size_t missing = config.target_points - cluster.size();
    if (config.method == sampling_method::object_data) {
        out.append(pool.sample(missing, random));
    } else {
        const vec3 center = cluster.empty() ? vec3{} : cluster.centroid();
        for (std::size_t i = 0; i < missing; ++i) {
            out.push_back(center + vec3{random.normal(0.0, config.gaussian_sigma),
                                        random.normal(0.0, config.gaussian_sigma),
                                        random.normal(0.0, config.gaussian_sigma)});
        }
    }
    return out;
}

std::size_t compute_target_points(std::span<const std::size_t> cluster_sizes) {
    HAWC_REQUIRE(!cluster_sizes.empty(), "need at least one cluster size");
    const std::size_t n_max = *std::max_element(cluster_sizes.begin(), cluster_sizes.end());
    return next_perfect_square(n_max);
}

}  // namespace hawc
