#pragma once

// The end-to-end cluster -> CNN-input feature pipeline used by HAWC (and,
// with a different projection method, by the Figure-9 ablations):
// noise-controlled up-sampling followed by projection.

#include "common/rng.hpp"
#include "features/projection.hpp"
#include "features/upsampling.hpp"

namespace hawc {

struct cnn_feature_config {
    upsample_config upsample{};
    projection_config projection{};
};

/// Owns the object pool so extraction is self-contained and copyable.
class cnn_feature_extractor {
public:
    cnn_feature_extractor(cnn_feature_config config, object_pool pool)
        : config_{std::move(config)}, pool_{std::move(pool)} {}

    const cnn_feature_config& config() const { return config_; }

    /// Cluster -> (1, D, D, C) tensor ready for the classifier.
    tensor extract(const point_cloud& cluster, rng& random) const;

    /// Input sample shape (D, D, C) for model construction.
    std::vector<std::size_t> sample_shape() const;

private:
    cnn_feature_config config_;
    object_pool pool_;
};

}  // namespace hawc
