#pragma once

// Labelled cluster dataset: the unit of classifier training/evaluation.
// Produced by the dataset builders, consumed by every classifier.

#include <cstdint>
#include <vector>

#include "pointcloud/point_cloud.hpp"

namespace hawc {

inline constexpr std::uint8_t label_object = 0;
inline constexpr std::uint8_t label_human = 1;

struct cluster_dataset {
    std::vector<point_cloud> clusters;
    std::vector<std::uint8_t> labels;  // label_object / label_human

    std::size_t size() const { return clusters.size(); }

    void add(point_cloud cluster, std::uint8_t label) {
        clusters.push_back(std::move(cluster));
        labels.push_back(label);
    }

    std::size_t count_label(std::uint8_t label) const {
        std::size_t n = 0;
        for (auto l : labels) {
            if (l == label) ++n;
        }
        return n;
    }
};

}  // namespace hawc
