#pragma once

// Noise-controlled up-sampling (paper Section V): CNNs need fixed-size
// inputs but clusters have variable point counts, so every cluster is
// padded to N'_max points. HAWC pads with points drawn from a pooled
// "Object" dataset (scenes without humans) rather than synthetic
// Gaussian noise — the Table III ablation compares both.

#include <span>

#include "common/rng.hpp"
#include "pointcloud/point_cloud.hpp"

namespace hawc {

/// N'_max = ceil(sqrt(n))^2 — the smallest perfect square >= n, so the
/// point list reshapes to a square D x D image.
std::size_t next_perfect_square(std::size_t n);

/// Pool of points harvested from "Object" (human-free) captures. All
/// object data is pooled together; up-sampling draws random points from
/// the pool (paper Figure 5).
class object_pool {
public:
    object_pool() = default;

    void add_cloud(const point_cloud& cloud);
    std::size_t size() const { return points_.size(); }
    bool empty() const { return points_.empty(); }

    /// Draw `count` points uniformly at random (with replacement).
    point_cloud sample(std::size_t count, rng& random) const;

    /// All pooled points, in insertion order (replay serialization needs
    /// to persist the pool so featurization replays bit-exactly).
    std::span<const vec3> points() const { return points_; }

private:
    std::vector<vec3> points_;
};

/// How padding points are generated.
enum class sampling_method { object_data, gaussian };

struct upsample_config {
    std::size_t target_points = 324;   // N'_max (perfect square)
    sampling_method method = sampling_method::object_data;
    double gaussian_sigma = 3.0;       // for sampling_method::gaussian
};

/// Pad `cluster` to config.target_points. Clusters larger than the
/// target are randomly down-sampled to it (rare: N'_max is computed from
/// the training maximum). Gaussian padding scatters synthetic points
/// around the cluster centroid with the configured sigma per axis.
point_cloud upsample_cluster(const point_cloud& cluster, const upsample_config& config,
                             const object_pool& pool, rng& random);

/// Compute N'_max from a training set of cluster sizes.
std::size_t compute_target_points(std::span<const std::size_t> cluster_sizes);

}  // namespace hawc
