#include "features/projection.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "features/height_features.hpp"

namespace hawc {

const char* to_string(projection_method method) {
    switch (method) {
        case projection_method::hap: return "HAP";
        case projection_method::three_view: return "TV";
        case projection_method::bev: return "BEV";
        case projection_method::range_view: return "RV";
        case projection_method::density_aware: return "DA";
    }
    return "unknown";
}

std::size_t projection_channels(projection_method method) {
    switch (method) {
        case projection_method::hap: return 7;
        case projection_method::three_view: return 6;
        case projection_method::bev: return 1;
        case projection_method::range_view: return 2;
        case projection_method::density_aware: return 2;
    }
    return 0;
}

namespace {

/// Reshape-based views (HAP and TV). Points carry normalized coords.
tensor project_views(const point_cloud& cloud, const vec3& anchor,
                     const projection_config& config, bool with_height_channel,
                     std::span<const double> sigma_in) {
    const auto d = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(config.target_points))));
    HAWC_REQUIRE(d * d == config.target_points, "target_points must be a perfect square");
    HAWC_REQUIRE(cloud.size() == config.target_points, "cluster must be up-sampled first");

    // Sort (point, sigma) jointly into the canonical anchor order.
    std::vector<std::size_t> order(cloud.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        const double ra = std::hypot(cloud[a].x - anchor.x, cloud[a].y - anchor.y);
        const double rb = std::hypot(cloud[b].x - anchor.x, cloud[b].y - anchor.y);
        if (ra != rb) return ra < rb;
        return cloud[a].z < cloud[b].z;
    });
    std::vector<vec3> points;
    points.reserve(cloud.size());
    for (auto i : order) points.push_back(cloud[i]);

    std::vector<double> sigma;
    if (sigma_in.empty()) {
        // Fall back: height variation over the whole up-sampled cloud.
        sigma = height_variation(point_cloud{points}, config.knn_k);
    } else {
        HAWC_REQUIRE(sigma_in.size() == cloud.size(), "sigma must align with the cloud");
        sigma.reserve(cloud.size());
        for (auto i : order) sigma.push_back(sigma_in[i]);
    }

    const std::size_t channels = with_height_channel ? 7 : 6;
    tensor out{{1, d, d, channels}};

    // Channel normalization: bring every view into roughly [-1, 1] so
    // the first conv layer sees comparable scales (and the int8 input
    // quantization wastes no range).
    const float xy_scale = static_cast<float>(1.0 / config.xy_clamp);
    constexpr float z_scale = 1.0f / 2.2f;      // max plausible stature
    constexpr float sigma_scale = 1.0f / 0.8f;  // typical height-variation cap

    for (std::size_t j = 0; j < points.size(); ++j) {
        const float x = static_cast<float>(std::clamp(points[j].x - anchor.x, -config.xy_clamp,
                                                      config.xy_clamp)) *
                        xy_scale;
        const float y = static_cast<float>(std::clamp(points[j].y - anchor.y, -config.xy_clamp,
                                                      config.xy_clamp)) *
                        xy_scale;
        const float z = static_cast<float>(points[j].z - config.ground_z) * z_scale;
        const std::size_t row = j / d;
        const std::size_t col = j % d;
        std::size_t c = 0;
        // Top view (xy plane), height-augmented for HAP.
        out.at(0, row, col, c++) = x;
        out.at(0, row, col, c++) = y;
        if (with_height_channel) {
            out.at(0, row, col, c++) = static_cast<float>(sigma[j]) * sigma_scale;
        }
        // Front view (yz plane).
        out.at(0, row, col, c++) = y;
        out.at(0, row, col, c++) = z;
        // Side view (xz plane).
        out.at(0, row, col, c++) = x;
        out.at(0, row, col, c++) = z;
    }
    return out;
}

struct grid_extent {
    double lo_a = 0.0, hi_a = 1.0, lo_b = 0.0, hi_b = 1.0;

    std::pair<std::size_t, std::size_t> cell(double a, double b, std::size_t d) const {
        const double fa = (a - lo_a) / std::max(hi_a - lo_a, 1e-9);
        const double fb = (b - lo_b) / std::max(hi_b - lo_b, 1e-9);
        const auto ia = std::min<std::size_t>(
            d - 1, static_cast<std::size_t>(std::max(0.0, fa * static_cast<double>(d))));
        const auto ib = std::min<std::size_t>(
            d - 1, static_cast<std::size_t>(std::max(0.0, fb * static_cast<double>(d))));
        return {ia, ib};
    }
};

/// Raster views (BEV, RV, DA): points binned on a D x D grid.
tensor project_raster(const point_cloud& cloud, const vec3& anchor,
                      const projection_config& config) {
    const auto d = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(config.target_points))));
    HAWC_REQUIRE(d * d == config.target_points, "target_points must be a perfect square");
    const std::size_t channels = projection_channels(config.method);
    tensor out{{1, d, d, channels}};

    // Fixed metric extents so cell size is consistent across clusters:
    // +-3 m around the anchor covers any human plus its padding context.
    constexpr double half_extent = 3.0;

    switch (config.method) {
        case projection_method::bev: {
            // Occupancy count over the xy plane — no vertical information,
            // the weakness the paper calls out.
            grid_extent g{-half_extent, half_extent, -half_extent, half_extent};
            for (const auto& p : cloud) {
                const auto [r, c] = g.cell(p.x - anchor.x, p.y - anchor.y, d);
                out.at(0, r, c, 0) += 1.0f;
            }
            break;
        }
        case projection_method::range_view: {
            // Spherical depth image: azimuth x elevation around the anchor
            // direction; channels = nearest range, occupancy.
            const double anchor_az = std::atan2(anchor.y, anchor.x);
            grid_extent g{-0.2, 0.2, -0.6, 0.3};  // radians around anchor
            for (const auto& p : cloud) {
                const double range = p.norm();
                if (range <= 0.0) continue;
                const double az = std::atan2(p.y, p.x) - anchor_az;
                const double el = std::asin(std::clamp(p.z / range, -1.0, 1.0));
                const auto [r, c] = g.cell(az, el, d);
                float& depth = out.at(0, r, c, 0);
                if (depth == 0.0f || range < static_cast<double>(depth)) {
                    depth = static_cast<float>(range);
                }
                out.at(0, r, c, 1) += 1.0f;
            }
            break;
        }
        case projection_method::density_aware: {
            // Density set-abstraction style: per-cell point density and
            // mean height — spatial detail inside a cell is lost.
            grid_extent g{-half_extent, half_extent, -half_extent, half_extent};
            tensor z_sum{{1, d, d, 1}};
            for (const auto& p : cloud) {
                const auto [r, c] = g.cell(p.x - anchor.x, p.y - anchor.y, d);
                out.at(0, r, c, 0) += 1.0f;
                z_sum.at(0, r, c, 0) += static_cast<float>(p.z - config.ground_z);
            }
            for (std::size_t r = 0; r < d; ++r) {
                for (std::size_t c = 0; c < d; ++c) {
                    const float count = out.at(0, r, c, 0);
                    out.at(0, r, c, 1) = count > 0.0f ? z_sum.at(0, r, c, 0) / count : 0.0f;
                }
            }
            break;
        }
        default:
            throw invalid_argument_error{"raster projection called with a view method"};
    }
    return out;
}

}  // namespace

tensor project_cluster(const point_cloud& upsampled, const vec3& anchor,
                       const projection_config& config, std::span<const double> sigma) {
    switch (config.method) {
        case projection_method::hap:
            return project_views(upsampled, anchor, config, /*with_height_channel=*/true, sigma);
        case projection_method::three_view:
            return project_views(upsampled, anchor, config, /*with_height_channel=*/false,
                                 sigma);
        default:
            return project_raster(upsampled, anchor, config);
    }
}

}  // namespace hawc
