#pragma once

// Projection of an up-sampled 3D cluster into a fixed-size 2D image for
// the CNN. Implements the paper's height-aware projection (HAP) and the
// four Figure-9 baselines: three-view (TV, HAP without the height
// channel), bird-eye-view (BEV), range-view (RV), and density-aware (DA).

#include <span>

#include "nn/tensor.hpp"
#include "pointcloud/point_cloud.hpp"

namespace hawc {

enum class projection_method { hap, three_view, bev, range_view, density_aware };

const char* to_string(projection_method method);

/// Image channels a method produces (the CNN input depth):
///   hap = 7 (top x,y,sigma + front y,z + side x,z)
///   three_view = 6, bev = 1, range_view = 2, density_aware = 2.
std::size_t projection_channels(projection_method method);

struct projection_config {
    projection_method method = projection_method::hap;
    std::size_t target_points = 324;  // must be a perfect square
    std::size_t knn_k = 8;            // neighbours for height variation
    double ground_z = -3.0;           // sensor frame ground level

    /// Centered x/y are clamped to +-xy_clamp metres: padding points
    /// drawn from the object pool can sit tens of metres from the
    /// cluster, and unbounded offsets would drown the sub-metre human
    /// structure the classifier needs.
    double xy_clamp = 3.0;
};

/// Project one up-sampled cluster to a (1, D, D, C) tensor, where
/// D = sqrt(target_points) and C = projection_channels(method).
///
/// `sigma` carries per-point height variation aligned with `upsampled`;
/// pass an empty span to have it computed internally over the whole
/// up-sampled cloud. The feature pipeline computes it on the original
/// cluster only and zero-fills the padding, so the channel marks genuine
/// structure rather than sampling noise.
///
/// `anchor` is the pre-up-sampling cluster centroid: x and y are
/// expressed relative to it (position invariance); z is expressed
/// relative to the ground plane (height is the discriminative feature
/// and must stay absolute).
///
/// For hap/three_view the point list is first sorted by distance from
/// the anchor (cluster points first, padding noise last, ties broken by
/// height) so the reshaped image has a stable spatial layout.
tensor project_cluster(const point_cloud& upsampled, const vec3& anchor,
                       const projection_config& config,
                       std::span<const double> sigma = {});

}  // namespace hawc
