#include "features/pipeline.hpp"

#include <cmath>

#include "features/height_features.hpp"

namespace hawc {

tensor cnn_feature_extractor::extract(const point_cloud& cluster, rng& random) const {
    const vec3 anchor = cluster.empty() ? vec3{} : cluster.centroid();
    const point_cloud padded = upsample_cluster(cluster, config_.upsample, pool_, random);

    // Height variation on genuine cluster structure only: up-sampling
    // appends padding after the original points (or down-samples, in
    // which case every point is genuine), so the first n_real entries of
    // `padded` are cluster points and the rest get sigma = 0.
    const std::size_t n_real = std::min(cluster.size(), padded.size());
    point_cloud real_points;
    real_points.reserve(n_real);
    for (std::size_t i = 0; i < n_real; ++i) real_points.push_back(padded[i]);
    std::vector<double> sigma =
        height_variation(real_points, cluster, config_.projection.knn_k);
    sigma.resize(padded.size(), 0.0);

    return project_cluster(padded, anchor, config_.projection, sigma);
}

std::vector<std::size_t> cnn_feature_extractor::sample_shape() const {
    const auto d = static_cast<std::size_t>(
        std::lround(std::sqrt(static_cast<double>(config_.projection.target_points))));
    return {d, d, projection_channels(config_.projection.method)};
}

}  // namespace hawc
