#include "features/height_features.hpp"

#include <cmath>

#include "common/thread_pool.hpp"
#include "pointcloud/kd_tree.hpp"

namespace hawc {

namespace {

std::vector<double> sigma_against_tree(const point_cloud& query, const point_cloud& reference,
                                       const kd_tree& tree, std::size_t k) {
    std::vector<double> sigmas(query.size(), 0.0);
    if (reference.size() < 2) return sigmas;
    // Per-point queries are independent; fan out over the pool with one
    // allocation-free scratch buffer per chunk. Each sigma depends only
    // on its own neighbourhood, so results are identical for any thread
    // count.
    global_pool().parallel_for(0, query.size(), 64, [&](std::size_t lo, std::size_t hi,
                                                        std::size_t /*slot*/) {
        std::vector<neighbor> neighbors;  // reused across the chunk's queries
        for (std::size_t i = lo; i < hi; ++i) {
            tree.nearest_into(query[i], k + 1, neighbors);  // may include self
            double mean = 0.0;
            for (const auto& nb : neighbors) mean += reference[nb.index].z;
            mean /= static_cast<double>(neighbors.size());
            double var = 0.0;
            for (const auto& nb : neighbors) {
                const double d = reference[nb.index].z - mean;
                var += d * d;
            }
            sigmas[i] = std::sqrt(var / static_cast<double>(neighbors.size()));
        }
    });
    return sigmas;
}

}  // namespace

std::vector<double> height_variation(const point_cloud& cloud, std::size_t k) {
    if (cloud.size() < 2) return std::vector<double>(cloud.size(), 0.0);
    const kd_tree tree{cloud};
    return sigma_against_tree(cloud, cloud, tree, k);
}

std::vector<double> height_variation(const point_cloud& query, const point_cloud& reference,
                                     std::size_t k) {
    if (reference.size() < 2) return std::vector<double>(query.size(), 0.0);
    const kd_tree tree{reference};
    return sigma_against_tree(query, reference, tree, k);
}

}  // namespace hawc
