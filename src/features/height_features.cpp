#include "features/height_features.hpp"

#include <cmath>

#include "pointcloud/kd_tree.hpp"

namespace hawc {

namespace {

std::vector<double> sigma_against_tree(const point_cloud& query, const point_cloud& reference,
                                       const kd_tree& tree, std::size_t k) {
    std::vector<double> sigmas(query.size(), 0.0);
    if (reference.size() < 2) return sigmas;
    for (std::size_t i = 0; i < query.size(); ++i) {
        const auto neighbors = tree.nearest(query[i], k + 1);  // may include self
        double mean = 0.0;
        for (const auto& nb : neighbors) mean += reference[nb.index].z;
        mean /= static_cast<double>(neighbors.size());
        double var = 0.0;
        for (const auto& nb : neighbors) {
            const double d = reference[nb.index].z - mean;
            var += d * d;
        }
        sigmas[i] = std::sqrt(var / static_cast<double>(neighbors.size()));
    }
    return sigmas;
}

}  // namespace

std::vector<double> height_variation(const point_cloud& cloud, std::size_t k) {
    if (cloud.size() < 2) return std::vector<double>(cloud.size(), 0.0);
    const kd_tree tree{cloud};
    return sigma_against_tree(cloud, cloud, tree, k);
}

std::vector<double> height_variation(const point_cloud& query, const point_cloud& reference,
                                     std::size_t k) {
    if (reference.size() < 2) return std::vector<double>(query.size(), 0.0);
    const kd_tree tree{reference};
    return sigma_against_tree(query, reference, tree, k);
}

}  // namespace hawc
