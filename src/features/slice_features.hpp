#pragma once

// Hand-crafted slice features for the non-CNN baselines (AutoEncoder-CC
// and OC-SVM-CC). Following the paper (after Leigh et al.), the cluster
// is cut into 0.2 m z-slices (about one human head length); each slice
// contributes shape statistics such as boundary regularity and
// circularity, plus a few whole-cluster aggregates.

#include "nn/tensor.hpp"
#include "pointcloud/point_cloud.hpp"

namespace hawc {

struct slice_feature_config {
    double slice_height_m = 0.2;
    double max_height_m = 2.2;     // slices cover [0, max_height) above ground
    double ground_z = -3.0;

    /// The paper's baselines extract per-slice statistics only (after
    /// Leigh et al.); whole-cluster aggregates (bounding height, total
    /// count, footprint) are an extension that materially strengthens
    /// the baselines, so they default to off.
    bool include_global_aggregates = false;

    std::size_t slice_count() const {
        return static_cast<std::size_t>(max_height_m / slice_height_m + 0.5);
    }
    /// 5 per-slice features, plus 4 global aggregates when enabled.
    std::size_t feature_count() const {
        return slice_count() * 5 + (include_global_aggregates ? 4 : 0);
    }
};

/// Per-slice features (count, x-extent, y-extent, boundary regularity,
/// circularity) stacked bottom-to-top, then global aggregates (total
/// count, bounding height, xy footprint radius, z centroid height).
/// Returns a (1, F) tensor.
tensor slice_features(const point_cloud& cluster, const slice_feature_config& config = {});

}  // namespace hawc
