#include "features/slice_features.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace hawc {

tensor slice_features(const point_cloud& cluster, const slice_feature_config& config) {
    const std::size_t slices = config.slice_count();
    tensor out{{1, config.feature_count()}};
    if (cluster.empty()) return out;

    const vec3 centroid = cluster.centroid();

    struct slice_accumulator {
        std::vector<vec3> points;
    };
    std::vector<slice_accumulator> acc(slices);

    double max_height = 0.0;
    double z_height_sum = 0.0;
    for (const auto& p : cluster) {
        const double height = p.z - config.ground_z;
        max_height = std::max(max_height, height);
        z_height_sum += height;
        if (height < 0.0 || height >= config.max_height_m) continue;
        const auto s = static_cast<std::size_t>(height / config.slice_height_m);
        acc[std::min(s, slices - 1)].points.push_back(p);
    }

    std::size_t f = 0;
    for (std::size_t s = 0; s < slices; ++s) {
        const auto& pts = acc[s].points;
        double x_lo = 0.0, x_hi = 0.0, y_lo = 0.0, y_hi = 0.0;
        double regularity = 0.0, circularity = 0.0;
        if (!pts.empty()) {
            x_lo = x_hi = pts[0].x;
            y_lo = y_hi = pts[0].y;
            double cx = 0.0, cy = 0.0;
            for (const auto& p : pts) {
                x_lo = std::min(x_lo, p.x);
                x_hi = std::max(x_hi, p.x);
                y_lo = std::min(y_lo, p.y);
                y_hi = std::max(y_hi, p.y);
                cx += p.x;
                cy += p.y;
            }
            cx /= static_cast<double>(pts.size());
            cy /= static_cast<double>(pts.size());

            // Boundary regularity: stddev of radial distance to the slice
            // centroid — small for smooth human torsos/heads.
            double r_mean = 0.0;
            std::vector<double> radii;
            radii.reserve(pts.size());
            for (const auto& p : pts) {
                radii.push_back(std::hypot(p.x - cx, p.y - cy));
                r_mean += radii.back();
            }
            r_mean /= static_cast<double>(pts.size());
            double r_var = 0.0;
            for (double r : radii) r_var += (r - r_mean) * (r - r_mean);
            regularity = std::sqrt(r_var / static_cast<double>(pts.size()));

            // Circularity: ratio of covariance eigenvalues in xy; 1 for a
            // circular cross-section, -> 0 for elongated ones.
            double sxx = 0.0, syy = 0.0, sxy = 0.0;
            for (const auto& p : pts) {
                const double dx = p.x - cx;
                const double dy = p.y - cy;
                sxx += dx * dx;
                syy += dy * dy;
                sxy += dx * dy;
            }
            const double tr = sxx + syy;
            const double det = sxx * syy - sxy * sxy;
            const double disc = std::sqrt(std::max(tr * tr / 4.0 - det, 0.0));
            const double l1 = tr / 2.0 + disc;
            const double l2 = tr / 2.0 - disc;
            circularity = l1 > 1e-12 ? std::max(l2, 0.0) / l1 : 0.0;
        }
        out.at(0, f++) = static_cast<float>(pts.size());
        out.at(0, f++) = static_cast<float>(x_hi - x_lo);
        out.at(0, f++) = static_cast<float>(y_hi - y_lo);
        out.at(0, f++) = static_cast<float>(regularity);
        out.at(0, f++) = static_cast<float>(circularity);
    }

    if (config.include_global_aggregates) {
        double footprint = 0.0;
        for (const auto& p : cluster) {
            footprint = std::max(footprint, std::hypot(p.x - centroid.x, p.y - centroid.y));
        }
        out.at(0, f++) = static_cast<float>(cluster.size());
        out.at(0, f++) = static_cast<float>(max_height);
        out.at(0, f++) = static_cast<float>(footprint);
        out.at(0, f++) =
            static_cast<float>(z_height_sum / static_cast<double>(cluster.size()));
    }
    return out;
}

}  // namespace hawc
