#pragma once

// Height-variation feature (paper Section V): for each point, the
// standard deviation of the z-coordinates of its k nearest neighbours.
// Humans produce characteristic vertical structure (head/torso/legs at
// distinct elevations); flat or blobby objects do not.

#include <vector>

#include "pointcloud/point_cloud.hpp"

namespace hawc {

/// Per-point sigma values, in the same order as `cloud`. Uses a KD-tree
/// for the neighbour queries (one query per point, as in the paper).
std::vector<double> height_variation(const point_cloud& cloud, std::size_t k = 8);

/// Sigma of each `query` point measured against neighbours drawn from
/// `reference` (e.g. cluster points against the original cluster, so
/// padding noise does not contaminate the statistic).
std::vector<double> height_variation(const point_cloud& query, const point_cloud& reference,
                                     std::size_t k = 8);

}  // namespace hawc
