#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace hawc {

double rng::normal() {
    // Box-Muller transform; discard the second variate to keep the
    // generator stateless beyond its 256-bit core state.
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace hawc
