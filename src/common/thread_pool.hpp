#pragma once

// Fixed-size worker pool with a deterministic parallel_for. The design
// goal is bit-identical results for any thread count: parallel_for splits
// [begin, end) into at most `max_slots()` contiguous chunks and hands the
// body (chunk_begin, chunk_end, slot). Chunk boundaries depend only on
// the range, the grain and the pool size, never on scheduling, and every
// index is processed exactly once — so any per-index computation that
// does not read its neighbours' output is reproducible by construction.
// Order-dependent reductions must merge per-slot partials sequentially
// by slot index (see DESIGN.md "Threading model").
//
// Nested parallel_for calls (a parallel region entered from inside a
// worker) run inline on the calling thread: the inner region sees one
// chunk, slot 0. This keeps per-cluster fan-out composable with the
// parallel kernels underneath it without deadlock or oversubscription.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace hawc {

class thread_pool {
public:
    /// A pool with `threads` execution lanes (the calling thread counts
    /// as lane 0; `threads - 1` workers are spawned). threads == 0 is
    /// treated as 1.
    explicit thread_pool(std::size_t threads);
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Total execution lanes (including the submitting thread).
    std::size_t thread_count() const { return lanes_; }

    /// Upper bound on the `slot` argument passed to a parallel_for body;
    /// size per-slot scratch arrays with this.
    std::size_t max_slots() const { return lanes_; }

    /// Body invoked as body(chunk_begin, chunk_end, slot). Chunks are
    /// contiguous, disjoint, ordered by slot, and cover [begin, end).
    using chunk_fn = std::function<void(std::size_t, std::size_t, std::size_t)>;

    /// Run `body` over [begin, end) split into at most thread_count()
    /// chunks of at least `grain` indices each (the last chunk may be
    /// smaller when the range is). Blocks until every chunk finished;
    /// the first exception thrown by any chunk is rethrown here.
    void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                      const chunk_fn& body);

    // Utilization telemetry (exported as gauges by
    // telemetry::record_pool_gauges); relaxed counters, safe to sample
    // from any thread.

    /// Cumulative parallel_for calls that fanned out across the workers.
    std::uint64_t jobs_dispatched() const { return jobs_.load(std::memory_order_relaxed); }
    /// Cumulative ranges run inline on the caller (single lane, range too
    /// small to split, or nested region).
    std::uint64_t inline_runs() const {
        return inline_runs_.load(std::memory_order_relaxed);
    }
    /// Lanes executing a chunk right now, including the submitting
    /// thread's; an instantaneous (racy-by-nature) sample.
    std::size_t active_lanes() const { return active_.load(std::memory_order_relaxed); }

    /// Cumulative top-level parallel_for calls that arrived while another
    /// caller already held lanes busy (they serialised on the job lock).
    /// A rising rate means independent pipelines are contending for the
    /// pool — the fleet layer's backpressure signal for load shedding.
    std::uint64_t contended_dispatches() const {
        return contended_.load(std::memory_order_relaxed);
    }

    /// active_lanes() / thread_count(): instantaneous fraction of lanes
    /// busy, in [0, 1]. Racy-by-nature, meant for gauges and shedding
    /// heuristics, not for synchronisation.
    double utilization() const {
        return static_cast<double>(active_lanes()) / static_cast<double>(lanes_);
    }

private:
    std::atomic<std::uint64_t> jobs_{0};
    std::atomic<std::uint64_t> inline_runs_{0};
    std::atomic<std::uint64_t> contended_{0};
    std::atomic<std::size_t> active_{0};
    struct impl;
    std::unique_ptr<impl> impl_;  // null when lanes_ == 1 (no workers spawned)
    std::size_t lanes_ = 1;
};

/// The process-wide pool used by the pipeline kernels. Sized on first use
/// from the HAWC_THREADS environment variable when set, otherwise from
/// std::thread::hardware_concurrency().
thread_pool& global_pool();

/// Replace the global pool with one of `threads` lanes. Not thread-safe
/// against concurrent parallel_for callers — call it between pipeline
/// runs (tests use it to sweep thread counts).
void set_global_thread_count(std::size_t threads);

/// Lanes in the current global pool (creates it on first call).
std::size_t global_thread_count();

}  // namespace hawc
