#include "common/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hawc {

namespace {

// True while the current thread executes a parallel_for chunk; nested
// regions run inline instead of re-entering the pool.
thread_local bool in_parallel_region = false;

// Saves and restores the previous value: a chunk body may run several
// nested (inline) regions in sequence, and the flag must stay set until
// the outermost chunk finishes, or the second nested call would try to
// re-enter the pool and self-deadlock on job_mutex.
struct region_guard {
    bool prev;
    region_guard() : prev{in_parallel_region} { in_parallel_region = true; }
    ~region_guard() { in_parallel_region = prev; }
};

// Marks a lane busy for the duration of a chunk (the active_lanes gauge).
// Pass nullptr for nested regions so a lane is only counted once.
struct active_guard {
    std::atomic<std::size_t>* active;
    explicit active_guard(std::atomic<std::size_t>* a) : active{a} {
        if (active != nullptr) active->fetch_add(1, std::memory_order_relaxed);
    }
    ~active_guard() {
        if (active != nullptr) active->fetch_sub(1, std::memory_order_relaxed);
    }
};

}  // namespace

struct thread_pool::impl {
    thread_pool* owner = nullptr;  // for the utilization counters

    std::mutex job_mutex;  // serialises independent parallel_for callers

    std::mutex state_mutex;
    std::condition_variable work_cv;
    std::condition_variable done_cv;

    std::uint64_t generation = 0;
    const chunk_fn* body = nullptr;
    std::size_t job_begin = 0;
    std::size_t job_end = 0;
    std::size_t chunk_count = 0;
    std::size_t lanes = 1;
    std::size_t remaining = 0;
    std::exception_ptr first_error;
    bool stopping = false;

    std::vector<std::thread> workers;

    void run_chunk(std::size_t slot) {
        const std::size_t n = job_end - job_begin;
        const std::size_t lo = job_begin + slot * n / chunk_count;
        const std::size_t hi = job_begin + (slot + 1) * n / chunk_count;
        if (lo >= hi) return;
        region_guard guard;
        active_guard busy{&owner->active_};
        (*body)(lo, hi, slot);
    }

    void worker_main(std::size_t lane) {
        std::uint64_t seen = 0;
        for (;;) {
            {
                std::unique_lock lock{state_mutex};
                work_cv.wait(lock, [&] { return stopping || generation != seen; });
                if (stopping) return;
                seen = generation;
            }
            if (lane < chunk_count) {
                try {
                    run_chunk(lane);
                } catch (...) {
                    std::lock_guard lock{state_mutex};
                    if (!first_error) first_error = std::current_exception();
                }
            }
            {
                std::lock_guard lock{state_mutex};
                --remaining;
            }
            done_cv.notify_one();
        }
    }
};

thread_pool::thread_pool(std::size_t threads) {
    lanes_ = threads == 0 ? 1 : threads;
    if (lanes_ == 1) return;
    impl_ = std::make_unique<impl>();
    impl_->owner = this;
    impl_->lanes = lanes_;
    impl_->workers.reserve(lanes_ - 1);
    for (std::size_t lane = 1; lane < lanes_; ++lane) {
        impl_->workers.emplace_back([this, lane] { impl_->worker_main(lane); });
    }
}

thread_pool::~thread_pool() {
    if (impl_ == nullptr) return;
    {
        std::lock_guard lock{impl_->state_mutex};
        impl_->stopping = true;
    }
    impl_->work_cv.notify_all();
    for (auto& w : impl_->workers) w.join();
}

void thread_pool::parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                               const chunk_fn& body) {
    if (begin >= end) return;
    const std::size_t n = end - begin;
    if (grain == 0) grain = 1;
    std::size_t chunks = (n + grain - 1) / grain;
    if (chunks > lanes_) chunks = lanes_;

    // Single lane, a range too small to split, or a nested region: run
    // the whole range inline as chunk 0.
    if (chunks <= 1 || impl_ == nullptr || in_parallel_region) {
        inline_runs_.fetch_add(1, std::memory_order_relaxed);
        active_guard busy{in_parallel_region ? nullptr : &active_};
        region_guard guard;
        body(begin, end, 0);
        return;
    }
    jobs_.fetch_add(1, std::memory_order_relaxed);
    if (active_.load(std::memory_order_relaxed) > 0) {
        contended_.fetch_add(1, std::memory_order_relaxed);
    }

    std::lock_guard job_lock{impl_->job_mutex};
    {
        std::lock_guard lock{impl_->state_mutex};
        impl_->body = &body;
        impl_->job_begin = begin;
        impl_->job_end = end;
        impl_->chunk_count = chunks;
        impl_->remaining = impl_->workers.size();
        impl_->first_error = nullptr;
        ++impl_->generation;
    }
    impl_->work_cv.notify_all();

    // The calling thread is lane 0 and always owns chunk 0.
    try {
        impl_->run_chunk(0);
    } catch (...) {
        std::lock_guard lock{impl_->state_mutex};
        if (!impl_->first_error) impl_->first_error = std::current_exception();
    }

    std::unique_lock lock{impl_->state_mutex};
    impl_->done_cv.wait(lock, [&] { return impl_->remaining == 0; });
    impl_->body = nullptr;
    if (impl_->first_error) {
        std::exception_ptr err = impl_->first_error;
        impl_->first_error = nullptr;
        lock.unlock();
        std::rethrow_exception(err);
    }
}

namespace {

std::size_t default_thread_count() {
    if (const char* env = std::getenv("HAWC_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed >= 1) return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::unique_ptr<thread_pool>& global_pool_slot() {
    static std::unique_ptr<thread_pool> pool;
    return pool;
}

}  // namespace

thread_pool& global_pool() {
    auto& slot = global_pool_slot();
    if (!slot) slot = std::make_unique<thread_pool>(default_thread_count());
    return *slot;
}

void set_global_thread_count(std::size_t threads) {
    global_pool_slot() = std::make_unique<thread_pool>(threads);
}

std::size_t global_thread_count() { return global_pool().thread_count(); }

}  // namespace hawc
