#pragma once

// Error handling: exceptions derived from hawc::error for recoverable
// failures, HAWC_REQUIRE for precondition checks at API boundaries.

#include <source_location>
#include <stdexcept>
#include <string>

namespace hawc {

/// Base class for all library exceptions.
class error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Thrown when an argument or configuration value is invalid.
class invalid_argument_error : public error {
public:
    using error::error;
};

/// Thrown when an I/O operation (dataset/model file) fails.
class io_error : public error {
public:
    using error::error;
};

/// Thrown when a model or pipeline is used before being trained/loaded.
class not_ready_error : public error {
public:
    using error::error;
};

/// Thrown when a supervised stage exceeds its deadline (see
/// runtime/supervisor.hpp for the cooperative watchdog that raises it).
class timeout_error : public error {
public:
    using error::error;
};

/// Thrown when data fails integrity validation: non-finite sensor
/// returns, corrupted model activations, impossible geometry. The
/// streaming runtime treats this as recoverable and degrades the frame.
class data_integrity_error : public error {
public:
    using error::error;
};

namespace detail {
[[noreturn]] void throw_requirement_failure(const char* expr, const std::string& message,
                                            const std::source_location& loc);
}  // namespace detail

/// Precondition check for public API boundaries. Throws invalid_argument_error
/// with file/line context when `expr` is false. Always evaluated (not an assert).
#define HAWC_REQUIRE(expr, message)                                                        \
    do {                                                                                   \
        if (!(expr)) {                                                                     \
            ::hawc::detail::throw_requirement_failure(#expr, (message),                    \
                                                      std::source_location::current());    \
        }                                                                                  \
    } while (false)

}  // namespace hawc
