#include "common/stats.hpp"

#include <limits>
#include <string>

#include "common/error.hpp"

namespace hawc {

void running_stats::merge(const running_stats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double total = n1 + n2;
    mean_ += delta * n2 / total;
    m2_ += other.m2_ + delta * delta * n1 * n2 / total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

histogram::histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, width_{(hi - lo) / static_cast<double>(bins)}, counts_(bins, 0) {
    HAWC_REQUIRE(hi > lo, "histogram range must be non-empty");
    HAWC_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void histogram::add(double x) {
    auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
    bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(bin)];
    ++total_;
}

std::size_t histogram::mode_bin() const {
    std::size_t best = 0;
    for (std::size_t i = 1; i < counts_.size(); ++i) {
        if (counts_[i] > counts_[best]) best = i;
    }
    return best;
}

std::vector<std::string> histogram::ascii_rows(std::size_t max_width) const {
    std::size_t peak = 1;
    for (auto c : counts_) peak = std::max(peak, c);
    std::vector<std::string> rows;
    rows.reserve(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar = counts_[i] * max_width / peak;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "[%8.3f,%8.3f) %6zu ", bin_lo(i), bin_hi(i), counts_[i]);
        rows.push_back(std::string{buf} + std::string(bar, '#'));
    }
    return rows;
}

double percentile(std::vector<double> values, double p) {
    HAWC_REQUIRE(!values.empty(), "percentile of empty sample");
    HAWC_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
    std::sort(values.begin(), values.end());
    const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace hawc
