#pragma once

// Streaming statistics accumulators shared by benchmarks and metrics code.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace hawc {

/// Welford online accumulator for mean/variance plus min/max.
class running_stats {
public:
    void add(double x) {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        sum_ += x;
    }

    std::size_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ > 0 ? mean_ : 0.0; }
    double variance() const { return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0; }
    double stddev() const { return std::sqrt(variance()); }
    double min() const { return count_ > 0 ? min_ : 0.0; }
    double max() const { return count_ > 0 ? max_ : 0.0; }

    void merge(const running_stats& other);

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram with fixed-width bins over [lo, hi); out-of-range samples clamp
/// to the edge bins. Used to regenerate the paper's distribution figures.
class histogram {
public:
    histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    void add(std::span<const double> xs) {
        for (double x : xs) add(x);
    }

    std::size_t bin_count() const { return counts_.size(); }
    std::size_t count(std::size_t bin) const { return counts_[bin]; }
    std::size_t total() const { return total_; }
    double bin_lo(std::size_t bin) const { return lo_ + width_ * static_cast<double>(bin); }
    double bin_hi(std::size_t bin) const { return bin_lo(bin) + width_; }
    double bin_center(std::size_t bin) const { return bin_lo(bin) + 0.5 * width_; }

    /// Index of the most populated bin.
    std::size_t mode_bin() const;

    /// Render a one-line-per-bin ASCII bar chart (for bench output).
    std::vector<std::string> ascii_rows(std::size_t max_width = 50) const;

private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

/// Percentile of a sample set (linear interpolation, p in [0,100]).
double percentile(std::vector<double> values, double p);

}  // namespace hawc
