#pragma once

// Deterministic random number generation for the whole framework.
//
// Every stochastic component (LiDAR noise, scene placement, NN init,
// sampling) takes an explicit `rng&` or seed so that experiments are
// reproducible run-to-run. The generator is xoshiro256++, seeded through
// splitmix64 as recommended by its authors.

#include <array>
#include <cstdint>
#include <limits>

namespace hawc {

/// Counter-based seed expander used to initialise xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/// xoshiro256++ generator. Satisfies std::uniform_random_bit_generator,
/// so it can be used with <random> distributions as well.
class rng {
public:
    using result_type = std::uint64_t;

    explicit rng(std::uint64_t seed = 0x5eed5eed5eed5eedull) { reseed(seed); }

    void reseed(std::uint64_t seed) {
        std::uint64_t sm = seed;
        for (auto& word : state_) word = splitmix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

    result_type operator()() {
        const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    double uniform() {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /// Uniform integer in [0, n). n must be > 0.
    std::uint64_t uniform_index(std::uint64_t n) {
        // Lemire's multiply-shift rejection method (unbiased).
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < n) {
            const std::uint64_t threshold = -n % n;
            while (lo < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
    double normal();

    /// Normal with given mean and standard deviation.
    double normal(double mean, double stddev) { return mean + stddev * normal(); }

    /// Bernoulli draw with probability p of returning true.
    bool chance(double p) { return uniform() < p; }

    /// Derive an independent child generator (for parallel substreams).
    rng fork() {
        std::uint64_t s = (*this)();
        return rng{s};
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

}  // namespace hawc
