#include "common/error.hpp"

#include <sstream>

namespace hawc::detail {

void throw_requirement_failure(const char* expr, const std::string& message,
                               const std::source_location& loc) {
    std::ostringstream out;
    out << "requirement failed: " << message << " [" << expr << "] at " << loc.file_name()
        << ':' << loc.line();
    throw invalid_argument_error{out.str()};
}

}  // namespace hawc::detail
