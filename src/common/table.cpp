#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace hawc {

text_table::text_table(std::vector<std::string> header) : header_{std::move(header)} {
    HAWC_REQUIRE(!header_.empty(), "table needs at least one column");
}

void text_table::add_row(std::vector<std::string> cells) {
    HAWC_REQUIRE(cells.size() == header_.size(), "row arity must match header");
    rows_.push_back(std::move(cells));
}

std::string text_table::num(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string text_table::pm(double mean, double stddev, int precision) {
    return num(mean, precision) + " +/- " + num(stddev, precision);
}

void text_table::print(std::ostream& out) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string>& row) {
        out << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
        }
        out << '\n';
    };

    print_row(header_);
    out << "|";
    for (auto w : widths) out << std::string(w + 2, '-') << "|";
    out << '\n';
    for (const auto& row : rows_) print_row(row);
}

}  // namespace hawc
