#pragma once

// Minimal fixed-column text table writer so every benchmark prints its
// paper table in a uniform, copy-pastable format.

#include <iosfwd>
#include <string>
#include <vector>

namespace hawc {

/// Accumulates rows of string cells and renders them with aligned columns.
class text_table {
public:
    explicit text_table(std::vector<std::string> header);

    /// Append a data row; must have the same arity as the header.
    void add_row(std::vector<std::string> cells);

    /// Helper to format a double with fixed precision.
    static std::string num(double value, int precision = 2);

    /// "mean ± stddev" cell, as the paper prints latency and count columns.
    static std::string pm(double mean, double stddev, int precision = 2);

    /// Render with column separators and a header rule.
    void print(std::ostream& out) const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace hawc
