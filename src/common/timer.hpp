#pragma once

// Wall-clock timing utilities used by the speed benchmarks.

#include <chrono>

#include "common/stats.hpp"

namespace hawc {

/// Monotonic stopwatch; reports elapsed milliseconds.
class stopwatch {
public:
    stopwatch() : start_{clock::now()} {}

    void reset() { start_ = clock::now(); }

    double elapsed_ms() const {
        return std::chrono::duration<double, std::milli>(clock::now() - start_).count();
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/// Cooperative deadline on the monotonic clock: long-running stages poll
/// expired() between work items and bail out early instead of blowing
/// their frame budget. A default-constructed deadline never expires.
class deadline {
public:
    deadline() = default;

    static deadline after_ms(double ms) {
        deadline d;
        d.due_ = clock::now() + std::chrono::duration_cast<clock::duration>(
                                    std::chrono::duration<double, std::milli>(ms));
        d.armed_ = true;
        return d;
    }

    bool armed() const { return armed_; }
    bool expired() const { return armed_ && clock::now() >= due_; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point due_{};
    bool armed_ = false;
};

/// Collects repeated latency measurements (mean ± stddev in ms), matching
/// how the paper reports inference time.
class latency_recorder {
public:
    /// Time one invocation of `fn` and record it.
    template <typename Fn>
    void measure(Fn&& fn) {
        stopwatch sw;
        fn();
        stats_.add(sw.elapsed_ms());
    }

    void add_ms(double ms) { stats_.add(ms); }

    double mean_ms() const { return stats_.mean(); }
    /// 0 below two samples (running_stats guards the n-1 divisor).
    double stddev_ms() const { return stats_.stddev(); }
    /// Extremes of the recorded samples (0 when empty), so summaries built
    /// from a recorder agree with the telemetry histograms' min/max.
    double min_ms() const { return stats_.min(); }
    double max_ms() const { return stats_.max(); }
    std::size_t count() const { return stats_.count(); }

private:
    running_stats stats_;
};

}  // namespace hawc
