#pragma once

// Pooling layers: 2x2 max pooling (HAWC's CNN) and global max pooling
// over the spatial grid (PointNet's permutation-invariant aggregation).

#include "nn/layer.hpp"

namespace hawc {

/// Max pooling with square window and stride equal to the window size.
/// Trailing rows/columns that do not fill a window are dropped (floor).
class max_pool2d final : public layer {
public:
    explicit max_pool2d(std::size_t window = 2);

    std::size_t window() const { return window_; }

    tensor forward(const tensor& input, bool training) override;
    tensor infer(const tensor& input) const override;
    tensor backward(const tensor& grad_output) override;
    layer_info info() const override;
    std::vector<std::size_t> output_shape(std::vector<std::size_t> input) const override;

private:
    tensor run(const tensor& input, std::vector<std::size_t>* argmax) const;

    std::size_t window_;
    std::vector<std::size_t> cached_argmax_;  // backward only; training forwards
    std::vector<std::size_t> cached_input_shape_;
    std::size_t cached_out_per_sample_ = 0;  // for info()
};

/// Global max over H and W: (N, H, W, C) -> (N, 1, 1, C).
class global_max_pool final : public layer {
public:
    tensor forward(const tensor& input, bool training) override;
    tensor infer(const tensor& input) const override;
    tensor backward(const tensor& grad_output) override;
    layer_info info() const override;
    std::vector<std::size_t> output_shape(std::vector<std::size_t> input) const override;

private:
    tensor run(const tensor& input, std::vector<std::size_t>* argmax) const;

    std::vector<std::size_t> cached_argmax_;  // backward only; training forwards
    std::vector<std::size_t> cached_input_shape_;
};

}  // namespace hawc
