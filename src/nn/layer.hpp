#pragma once

// Layer interface of the NN library. Layers implement explicit forward
// and backward passes (no autograd graph): forward caches whatever the
// backward pass needs, backward accumulates parameter gradients and
// returns the gradient w.r.t. the input.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace hawc {

/// A trainable parameter: value plus accumulated gradient.
struct parameter {
    tensor value;
    tensor grad;

    explicit parameter(const std::vector<std::size_t>& dims) : value{dims}, grad{dims} {}
    parameter() = default;
};

/// Broad operation class, used by the edge-device cost models to decide
/// which execution unit an op maps to (conv/pool run on accelerators,
/// large dense layers may not — the paper's Coral observation).
enum class op_kind { convolution, dense, normalization, activation, pooling, reshape };

/// Static description of one layer for reporting and cost modelling.
struct layer_info {
    std::string name;
    op_kind kind = op_kind::activation;
    std::size_t parameter_count = 0;
    std::size_t macs_per_sample = 0;       // multiply-accumulates, forward
    std::size_t activations_per_sample = 0;  // output elements
};

class layer {
public:
    virtual ~layer() = default;

    /// `training` toggles batch-stat collection (batch norm) and whether
    /// the activations backward needs are cached. forward(x, false) and
    /// infer(x) compute the same values; only forward updates the
    /// shape-tracking state that info() reports.
    virtual tensor forward(const tensor& input, bool training) = 0;

    /// Pure inference: const and free of side effects, so one model can
    /// serve concurrent threads. Never call backward after infer.
    virtual tensor infer(const tensor& input) const = 0;

    /// dL/dinput from dL/doutput; must be called after forward on the
    /// same input. Accumulates into parameter gradients.
    virtual tensor backward(const tensor& grad_output) = 0;

    /// Trainable parameters (empty for stateless layers).
    virtual std::vector<parameter*> parameters() { return {}; }

    /// Non-trainable state that must be serialized (e.g. BN running stats).
    virtual std::vector<tensor*> buffers() { return {}; }

    virtual layer_info info() const = 0;

    /// Output shape for a given input shape (batch dim preserved).
    virtual std::vector<std::size_t> output_shape(std::vector<std::size_t> input) const = 0;
};

using layer_ptr = std::unique_ptr<layer>;

}  // namespace hawc
