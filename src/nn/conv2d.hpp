#pragma once

// 2D convolution, NHWC, stride 1, 'same' or 'valid' padding. The paper's
// HAWC CNN uses 3x3 kernels with stride 1; PointNet's shared per-point
// MLPs are 1x1 convolutions over a (P, 1) spatial grid.

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace hawc {

enum class padding { same, valid };

class conv2d final : public layer {
public:
    /// He-normal initialised weights. kernel is square (k x k).
    conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel, padding pad,
           rng& random);

    tensor forward(const tensor& input, bool training) override;
    tensor infer(const tensor& input) const override;
    tensor backward(const tensor& grad_output) override;
    std::vector<parameter*> parameters() override { return {&weights_, &bias_}; }
    layer_info info() const override;
    std::vector<std::size_t> output_shape(std::vector<std::size_t> input) const override;

    std::size_t in_channels() const { return in_channels_; }
    std::size_t out_channels() const { return out_channels_; }
    std::size_t kernel() const { return kernel_; }
    padding pad() const { return pad_; }

    /// Weight tensor layout: (k, k, Cin, Cout).
    parameter& weights() { return weights_; }
    parameter& bias() { return bias_; }
    const parameter& weights() const { return weights_; }
    const parameter& bias() const { return bias_; }

private:
    std::size_t pad_amount() const { return pad_ == padding::same ? kernel_ / 2 : 0; }

    std::size_t in_channels_;
    std::size_t out_channels_;
    std::size_t kernel_;
    padding pad_;
    parameter weights_;
    parameter bias_;
    tensor cached_input_;  // populated only by forward(x, true)
    std::size_t last_hw_[2] = {0, 0};  // for info() MAC estimate
};

}  // namespace hawc
