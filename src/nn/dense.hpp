#pragma once

// Fully-connected layer and the flatten adapter in front of it.

#include "common/rng.hpp"
#include "nn/layer.hpp"

namespace hawc {

/// (N, ..., F_in) is flattened per sample to (N, F_in) upstream; dense
/// maps it to (N, F_out) with He-normal initialised weights.
class dense final : public layer {
public:
    dense(std::size_t in_features, std::size_t out_features, rng& random);

    tensor forward(const tensor& input, bool training) override;
    tensor infer(const tensor& input) const override;
    tensor backward(const tensor& grad_output) override;
    std::vector<parameter*> parameters() override { return {&weights_, &bias_}; }
    layer_info info() const override;
    std::vector<std::size_t> output_shape(std::vector<std::size_t> input) const override;

    std::size_t in_features() const { return in_features_; }
    std::size_t out_features() const { return out_features_; }
    parameter& weights() { return weights_; }
    parameter& bias() { return bias_; }
    const parameter& weights() const { return weights_; }
    const parameter& bias() const { return bias_; }

private:
    std::size_t in_features_;
    std::size_t out_features_;
    parameter weights_;  // (F_in, F_out)
    parameter bias_;     // (F_out)
    tensor cached_input_;  // populated only by forward(x, true)
};

/// (N, H, W, C) -> (N, H*W*C). A pure reshape.
class flatten final : public layer {
public:
    tensor forward(const tensor& input, bool training) override;
    tensor infer(const tensor& input) const override;
    tensor backward(const tensor& grad_output) override;
    layer_info info() const override;
    std::vector<std::size_t> output_shape(std::vector<std::size_t> input) const override;

private:
    std::vector<std::size_t> cached_input_shape_;
};

}  // namespace hawc
