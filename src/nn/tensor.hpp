#pragma once

// Dense float tensor in NHWC layout — the data type flowing through the
// neural-network library. Kept deliberately small: shape + contiguous
// storage + indexing; all math lives in the layers.

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace hawc {

/// Tensor shape: up to 4 dimensions; rank-2 tensors are (N, F), rank-4
/// are (N, H, W, C). Stored row-major (C fastest).
class tensor {
public:
    tensor() = default;
    explicit tensor(std::vector<std::size_t> shape);
    tensor(std::initializer_list<std::size_t> shape)
        : tensor(std::vector<std::size_t>{shape}) {}

    const std::vector<std::size_t>& shape() const { return shape_; }
    std::size_t rank() const { return shape_.size(); }
    std::size_t dim(std::size_t i) const { return shape_[i]; }
    std::size_t size() const { return data_.size(); }

    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }

    float& operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /// 4-D accessors (N, H, W, C).
    float& at(std::size_t n, std::size_t h, std::size_t w, std::size_t c) {
        return data_[((n * shape_[1] + h) * shape_[2] + w) * shape_[3] + c];
    }
    const float& at(std::size_t n, std::size_t h, std::size_t w, std::size_t c) const {
        return data_[((n * shape_[1] + h) * shape_[2] + w) * shape_[3] + c];
    }

    /// 2-D accessors (N, F).
    float& at(std::size_t n, std::size_t f) { return data_[n * shape_[1] + f]; }
    const float& at(std::size_t n, std::size_t f) const { return data_[n * shape_[1] + f]; }

    void fill(float value);
    void zero() { fill(0.0f); }

    /// Reinterpret with a new shape of identical element count.
    tensor reshaped(std::vector<std::size_t> new_shape) const;

    /// Elements per sample (product of non-batch dimensions).
    std::size_t sample_size() const;

    /// Batch dimension (first axis); 0 for an empty tensor.
    std::size_t batch() const { return shape_.empty() ? 0 : shape_[0]; }

    /// Copy a contiguous sample slice [i] into a rank-(r-1)... kept as a
    /// same-rank tensor with batch 1 for simplicity.
    tensor slice_sample(std::size_t n) const;

    /// Stack same-shaped single-sample tensors into one batch.
    static tensor stack(const std::vector<tensor>& samples);

    bool operator==(const tensor&) const = default;

private:
    std::vector<std::size_t> shape_;
    std::vector<float> data_;
};

}  // namespace hawc
