#include "nn/activations.hpp"

#include "common/error.hpp"

namespace hawc {

tensor relu::forward(const tensor& input, bool training) {
    if (training) {
        cached_input_ = input;
    } else {
        cached_input_ = tensor{};
    }
    cached_sample_size_ = input.batch() > 0 ? input.sample_size() : 0;
    return infer(input);
}

tensor relu::infer(const tensor& input) const {
    tensor out{input.shape()};
    for (std::size_t i = 0; i < input.size(); ++i) {
        out[i] = input[i] > 0.0f ? input[i] : 0.0f;
    }
    return out;
}

tensor relu::backward(const tensor& grad_output) {
    HAWC_REQUIRE(cached_input_.size() == grad_output.size(), "backward before forward");
    tensor grad_input{grad_output.shape()};
    for (std::size_t i = 0; i < grad_output.size(); ++i) {
        grad_input[i] = cached_input_[i] > 0.0f ? grad_output[i] : 0.0f;
    }
    return grad_input;
}

layer_info relu::info() const {
    layer_info li;
    li.name = "relu";
    li.kind = op_kind::activation;
    li.activations_per_sample = cached_sample_size_;
    return li;
}

}  // namespace hawc
