#include "nn/activations.hpp"

#include "common/error.hpp"

namespace hawc {

tensor relu::forward(const tensor& input, bool /*training*/) {
    cached_input_ = input;
    tensor out{input.shape()};
    for (std::size_t i = 0; i < input.size(); ++i) {
        out[i] = input[i] > 0.0f ? input[i] : 0.0f;
    }
    return out;
}

tensor relu::backward(const tensor& grad_output) {
    HAWC_REQUIRE(cached_input_.size() == grad_output.size(), "backward before forward");
    tensor grad_input{grad_output.shape()};
    for (std::size_t i = 0; i < grad_output.size(); ++i) {
        grad_input[i] = cached_input_[i] > 0.0f ? grad_output[i] : 0.0f;
    }
    return grad_input;
}

layer_info relu::info() const {
    layer_info li;
    li.name = "relu";
    li.kind = op_kind::activation;
    li.activations_per_sample =
        cached_input_.batch() > 0 ? cached_input_.sample_size() : 0;
    return li;
}

}  // namespace hawc
