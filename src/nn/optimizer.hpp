#pragma once

// Optimizers. The paper trains all networks with Adam (lr 0.001).

#include <vector>

#include "nn/layer.hpp"

namespace hawc {

class optimizer {
public:
    virtual ~optimizer() = default;

    /// Bind the parameters to optimize (once, before stepping).
    virtual void attach(std::vector<parameter*> params) = 0;

    /// Apply one update from the accumulated gradients, then zero them.
    virtual void step() = 0;

    /// Zero gradients without stepping.
    void zero_grad();

protected:
    std::vector<parameter*> params_;
};

struct adam_config {
    double learning_rate = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double epsilon = 1e-8;
};

class adam final : public optimizer {
public:
    explicit adam(const adam_config& config = {}) : config_{config} {}

    void attach(std::vector<parameter*> params) override;
    void step() override;

    double learning_rate() const { return config_.learning_rate; }
    void set_learning_rate(double lr) { config_.learning_rate = lr; }

private:
    adam_config config_;
    std::vector<std::vector<float>> m_;
    std::vector<std::vector<float>> v_;
    std::size_t t_ = 0;
};

struct sgd_config {
    double learning_rate = 1e-2;
    double momentum = 0.0;
};

class sgd final : public optimizer {
public:
    explicit sgd(const sgd_config& config = {}) : config_{config} {}

    void attach(std::vector<parameter*> params) override;
    void step() override;

private:
    sgd_config config_;
    std::vector<std::vector<float>> velocity_;
};

}  // namespace hawc
