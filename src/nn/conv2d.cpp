#include "nn/conv2d.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "nn/kernels/kernels.hpp"

namespace hawc {

conv2d::conv2d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               padding pad, rng& random)
    : in_channels_{in_channels},
      out_channels_{out_channels},
      kernel_{kernel},
      pad_{pad},
      weights_{{kernel, kernel, in_channels, out_channels}},
      bias_{{out_channels}} {
    HAWC_REQUIRE(kernel >= 1, "kernel must be at least 1");
    // He-normal init: std = sqrt(2 / fan_in).
    const double std_dev = std::sqrt(2.0 / static_cast<double>(kernel * kernel * in_channels));
    for (std::size_t i = 0; i < weights_.value.size(); ++i) {
        weights_.value[i] = static_cast<float>(random.normal(0.0, std_dev));
    }
}

std::vector<std::size_t> conv2d::output_shape(std::vector<std::size_t> input) const {
    HAWC_REQUIRE(input.size() == 4, "conv2d input must be rank 4");
    HAWC_REQUIRE(input[3] == in_channels_, "conv2d channel mismatch");
    const std::size_t p = pad_amount();
    input[1] = input[1] + 2 * p - kernel_ + 1;
    input[2] = input[2] + 2 * p - kernel_ + 1;
    input[3] = out_channels_;
    return input;
}

tensor conv2d::infer(const tensor& input) const {
    const auto out_shape = output_shape(input.shape());
    tensor out{out_shape};

    const std::size_t batch = input.dim(0);
    const std::size_t in_h = input.dim(1);
    const std::size_t in_w = input.dim(2);
    const std::size_t out_h = out_shape[1];
    const std::size_t out_w = out_shape[2];
    const std::size_t p = pad_amount();
    const std::size_t K = kernel_ * kernel_ * in_channels_;

    const float* w = weights_.value.data();
    const float* b = bias_.value.data();

    // im2col + GEMM, one output row at a time: the patch matrix for a row
    // is out_w x K floats (a few KB — it stays in L1), and its contiguous
    // layout turns the GEMM into branch-free streaming over the
    // (k, k, Cin, Cout) weight tensor. The dispatched sgemm accumulates k
    // ascending per output element with separate multiply and add, so
    // every ISA tier is bit-identical to the naive direct convolution
    // (padding cells hold exact zeros and contribute exact zero terms).
    // Rows are independent, so batch x out_h fans out across the pool
    // with one scratch buffer per chunk.
    const kernels::kernel_ops& kern = kernels::active_kernels();
    global_pool().parallel_for(0, batch * out_h, 4, [&](std::size_t lo, std::size_t hi,
                                                        std::size_t /*slot*/) {
        std::vector<float> col(out_w * K);
        for (std::size_t r = lo; r < hi; ++r) {
            const std::size_t n = r / out_h;
            const std::size_t oh = r % out_h;
            std::fill(col.begin(), col.end(), 0.0f);  // padding cells stay exact zero
            for (std::size_t ow = 0; ow < out_w; ++ow) {
                float* dst = col.data() + ow * K;
                for (std::size_t kh = 0; kh < kernel_; ++kh) {
                    const std::ptrdiff_t ih =
                        static_cast<std::ptrdiff_t>(oh + kh) - static_cast<std::ptrdiff_t>(p);
                    if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(in_h)) continue;
                    // In-bounds kw form one contiguous (kw, ic) run in NHWC
                    // input memory — one copy per (ow, kh).
                    const std::size_t kw_lo = p > ow ? p - ow : 0;
                    const std::size_t kw_hi = std::min(kernel_, in_w + p - ow);
                    if (kw_lo >= kw_hi) continue;
                    const float* src =
                        &input.at(n, static_cast<std::size_t>(ih), ow + kw_lo - p, 0);
                    std::copy_n(src, (kw_hi - kw_lo) * in_channels_,
                                dst + (kh * kernel_ + kw_lo) * in_channels_);
                }
            }
            float* out_row = &out.at(n, oh, 0, 0);
            for (std::size_t ow = 0; ow < out_w; ++ow) {
                std::copy_n(b, out_channels_, out_row + ow * out_channels_);
            }
            kern.sgemm(col.data(), K, w, out_channels_, out_row, out_w);
        }
    });
    return out;
}

tensor conv2d::forward(const tensor& input, bool training) {
    // Backward needs the input; caching it on the inference path would
    // deep-copy every activation map for nothing. Clearing on eval makes
    // a mispaired backward fail loudly instead of using stale data.
    if (training) {
        cached_input_ = input;
    } else {
        cached_input_ = tensor{};
    }
    last_hw_[0] = input.dim(1) + 2 * pad_amount() - kernel_ + 1;
    last_hw_[1] = input.dim(2) + 2 * pad_amount() - kernel_ + 1;
    return infer(input);
}

tensor conv2d::backward(const tensor& grad_output) {
    HAWC_REQUIRE(cached_input_.size() > 0, "backward before forward");
    const tensor& input = cached_input_;
    tensor grad_input{input.shape()};

    const std::size_t batch = input.dim(0);
    const std::size_t in_h = input.dim(1);
    const std::size_t in_w = input.dim(2);
    const std::size_t out_h = grad_output.dim(1);
    const std::size_t out_w = grad_output.dim(2);
    const std::size_t p = pad_amount();

    const float* w = weights_.value.data();
    float* dw = weights_.grad.data();
    float* db = bias_.grad.data();

    for (std::size_t n = 0; n < batch; ++n) {
        for (std::size_t oh = 0; oh < out_h; ++oh) {
            for (std::size_t ow = 0; ow < out_w; ++ow) {
                const float* g_px = &grad_output.at(n, oh, ow, 0);
                for (std::size_t oc = 0; oc < out_channels_; ++oc) db[oc] += g_px[oc];
                for (std::size_t kh = 0; kh < kernel_; ++kh) {
                    const std::ptrdiff_t ih =
                        static_cast<std::ptrdiff_t>(oh + kh) - static_cast<std::ptrdiff_t>(p);
                    if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(in_h)) continue;
                    for (std::size_t kw = 0; kw < kernel_; ++kw) {
                        const std::ptrdiff_t iw =
                            static_cast<std::ptrdiff_t>(ow + kw) - static_cast<std::ptrdiff_t>(p);
                        if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(in_w)) continue;
                        const float* in_px = &input.at(n, static_cast<std::size_t>(ih),
                                                       static_cast<std::size_t>(iw), 0);
                        float* gin_px = &grad_input.at(n, static_cast<std::size_t>(ih),
                                                       static_cast<std::size_t>(iw), 0);
                        const std::size_t w_base = (kh * kernel_ + kw) * in_channels_ * out_channels_;
                        for (std::size_t ic = 0; ic < in_channels_; ++ic) {
                            const float x = in_px[ic];
                            const float* w_row = &w[w_base + ic * out_channels_];
                            float* dw_row = &dw[w_base + ic * out_channels_];
                            float g_in = 0.0f;
                            for (std::size_t oc = 0; oc < out_channels_; ++oc) {
                                const float g = g_px[oc];
                                dw_row[oc] += x * g;
                                g_in += w_row[oc] * g;
                            }
                            gin_px[ic] += g_in;
                        }
                    }
                }
            }
        }
    }
    return grad_input;
}

layer_info conv2d::info() const {
    layer_info li;
    li.name = "conv2d(" + std::to_string(kernel_) + "x" + std::to_string(kernel_) + "," +
              std::to_string(in_channels_) + "->" + std::to_string(out_channels_) + ")";
    li.kind = op_kind::convolution;
    li.parameter_count = weights_.value.size() + bias_.value.size();
    const std::size_t out_hw = last_hw_[0] * last_hw_[1];
    li.macs_per_sample = out_hw * out_channels_ * kernel_ * kernel_ * in_channels_;
    li.activations_per_sample = out_hw * out_channels_;
    return li;
}

}  // namespace hawc
