#pragma once

// Batch normalization over the channel axis (NHWC): training mode uses
// batch statistics and updates running estimates; eval mode uses the
// running estimates. Works for rank-4 (per channel over N,H,W) and
// rank-2 (per feature over N) inputs.

#include "nn/layer.hpp"

namespace hawc {

class batch_norm final : public layer {
public:
    explicit batch_norm(std::size_t channels, double momentum = 0.9, double epsilon = 1e-5);

    tensor forward(const tensor& input, bool training) override;
    tensor infer(const tensor& input) const override;
    tensor backward(const tensor& grad_output) override;
    std::vector<parameter*> parameters() override { return {&gamma_, &beta_}; }
    std::vector<tensor*> buffers() override { return {&running_mean_, &running_var_}; }
    layer_info info() const override;
    std::vector<std::size_t> output_shape(std::vector<std::size_t> input) const override {
        return input;
    }

    std::size_t channels() const { return channels_; }
    const tensor& running_mean() const { return running_mean_; }
    const tensor& running_var() const { return running_var_; }
    const parameter& gamma() const { return gamma_; }
    const parameter& beta() const { return beta_; }

private:
    std::size_t channels_;
    double momentum_;
    double epsilon_;
    parameter gamma_;
    parameter beta_;
    tensor running_mean_;
    tensor running_var_;

    // Cached for backward; populated only by forward(x, true). The row
    // counts are kept on every forward for info().
    tensor cached_normalized_;
    std::vector<float> cached_inv_std_;
    std::size_t cached_rows_ = 0;
    std::size_t cached_batch_ = 1;
};

}  // namespace hawc
