#include "nn/batch_norm.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hawc {

batch_norm::batch_norm(std::size_t channels, double momentum, double epsilon)
    : channels_{channels},
      momentum_{momentum},
      epsilon_{epsilon},
      gamma_{{channels}},
      beta_{{channels}},
      running_mean_{{channels}},
      running_var_{{channels}} {
    gamma_.value.fill(1.0f);
    running_var_.fill(1.0f);
}

tensor batch_norm::forward(const tensor& input, bool training) {
    HAWC_REQUIRE(input.shape().back() == channels_, "batch_norm channel mismatch");
    const std::size_t rows = input.size() / channels_;  // N*H*W
    cached_rows_ = rows;
    cached_batch_ = std::max<std::size_t>(input.dim(0), 1);

    if (!training) {
        // Eval mode neither collects batch stats nor needs the backward
        // caches — drop them so a mispaired backward fails loudly.
        cached_normalized_ = tensor{};
        cached_inv_std_.clear();
        return infer(input);
    }

    std::vector<float> mean(channels_, 0.0f);
    std::vector<float> var(channels_, 0.0f);
    for (std::size_t r = 0; r < rows; ++r) {
        const float* px = input.data() + r * channels_;
        for (std::size_t c = 0; c < channels_; ++c) mean[c] += px[c];
    }
    for (std::size_t c = 0; c < channels_; ++c) mean[c] /= static_cast<float>(rows);
    for (std::size_t r = 0; r < rows; ++r) {
        const float* px = input.data() + r * channels_;
        for (std::size_t c = 0; c < channels_; ++c) {
            const float d = px[c] - mean[c];
            var[c] += d * d;
        }
    }
    for (std::size_t c = 0; c < channels_; ++c) var[c] /= static_cast<float>(rows);
    // Update running estimates.
    const auto m = static_cast<float>(momentum_);
    for (std::size_t c = 0; c < channels_; ++c) {
        running_mean_[c] = m * running_mean_[c] + (1.0f - m) * mean[c];
        running_var_[c] = m * running_var_[c] + (1.0f - m) * var[c];
    }

    cached_inv_std_.resize(channels_);
    for (std::size_t c = 0; c < channels_; ++c) {
        cached_inv_std_[c] = 1.0f / std::sqrt(var[c] + static_cast<float>(epsilon_));
    }

    tensor out{input.shape()};
    cached_normalized_ = tensor{input.shape()};
    for (std::size_t r = 0; r < rows; ++r) {
        const float* px = input.data() + r * channels_;
        float* norm_px = cached_normalized_.data() + r * channels_;
        float* out_px = out.data() + r * channels_;
        for (std::size_t c = 0; c < channels_; ++c) {
            const float normalized = (px[c] - mean[c]) * cached_inv_std_[c];
            norm_px[c] = normalized;
            out_px[c] = gamma_.value[c] * normalized + beta_.value[c];
        }
    }
    return out;
}

tensor batch_norm::infer(const tensor& input) const {
    HAWC_REQUIRE(input.shape().back() == channels_, "batch_norm channel mismatch");
    const std::size_t rows = input.size() / channels_;

    // Running stats only. The operation order matches the training-path
    // normalisation exactly, so eval outputs are bit-identical to the
    // pre-split implementation.
    std::vector<float> inv_std(channels_);
    for (std::size_t c = 0; c < channels_; ++c) {
        inv_std[c] = 1.0f / std::sqrt(running_var_[c] + static_cast<float>(epsilon_));
    }

    tensor out{input.shape()};
    for (std::size_t r = 0; r < rows; ++r) {
        const float* px = input.data() + r * channels_;
        float* out_px = out.data() + r * channels_;
        for (std::size_t c = 0; c < channels_; ++c) {
            const float normalized = (px[c] - running_mean_[c]) * inv_std[c];
            out_px[c] = gamma_.value[c] * normalized + beta_.value[c];
        }
    }
    return out;
}

tensor batch_norm::backward(const tensor& grad_output) {
    HAWC_REQUIRE(cached_rows_ > 0 && cached_normalized_.size() == grad_output.size(),
                 "backward before training forward");
    const std::size_t rows = cached_rows_;

    // Standard batch-norm backward using the cached normalized values.
    std::vector<float> sum_g(channels_, 0.0f);
    std::vector<float> sum_g_xhat(channels_, 0.0f);
    for (std::size_t r = 0; r < rows; ++r) {
        const float* g = grad_output.data() + r * channels_;
        const float* xhat = cached_normalized_.data() + r * channels_;
        for (std::size_t c = 0; c < channels_; ++c) {
            sum_g[c] += g[c];
            sum_g_xhat[c] += g[c] * xhat[c];
        }
    }
    for (std::size_t c = 0; c < channels_; ++c) {
        beta_.grad[c] += sum_g[c];
        gamma_.grad[c] += sum_g_xhat[c];
    }

    tensor grad_input{grad_output.shape()};
    const auto inv_rows = 1.0f / static_cast<float>(rows);
    for (std::size_t r = 0; r < rows; ++r) {
        const float* g = grad_output.data() + r * channels_;
        const float* xhat = cached_normalized_.data() + r * channels_;
        float* gi = grad_input.data() + r * channels_;
        for (std::size_t c = 0; c < channels_; ++c) {
            gi[c] = gamma_.value[c] * cached_inv_std_[c] *
                    (g[c] - inv_rows * sum_g[c] - inv_rows * xhat[c] * sum_g_xhat[c]);
        }
    }
    return grad_input;
}

layer_info batch_norm::info() const {
    layer_info li;
    li.name = "batch_norm(" + std::to_string(channels_) + ")";
    li.kind = op_kind::normalization;
    li.parameter_count = gamma_.value.size() + beta_.value.size();
    li.macs_per_sample =
        cached_rows_ > 0 ? (cached_rows_ / cached_batch_) * channels_ : channels_;
    li.activations_per_sample = li.macs_per_sample;
    return li;
}

}  // namespace hawc
