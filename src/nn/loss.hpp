#pragma once

// Softmax cross-entropy loss for classification heads.

#include <cstdint>
#include <span>

#include "nn/tensor.hpp"

namespace hawc {

struct loss_result {
    double loss = 0.0;       // mean over the batch
    tensor grad_logits;      // dL/dlogits, already divided by batch size
    std::size_t correct = 0; // argmax == label count
};

/// logits: (N, K); labels: N class indices in [0, K).
loss_result softmax_cross_entropy(const tensor& logits, std::span<const std::uint8_t> labels);

/// Softmax probabilities of a logits tensor (N, K) -> (N, K).
tensor softmax(const tensor& logits);

/// Mean squared error against targets of identical shape (autoencoder
/// reconstruction loss). grad is dL/dprediction, divided by batch size.
struct mse_result {
    double loss = 0.0;
    tensor grad;
};
mse_result mean_squared_error(const tensor& prediction, const tensor& target);

}  // namespace hawc
