#pragma once

// Internal seam between the dispatcher and the per-ISA translation units.
// Each tier TU defines its factory to return a static kernel_ops table
// when the tier is compiled in AND usable on the running CPU, nullptr
// otherwise (the scalar factory never returns nullptr).

#include <algorithm>
#include <cmath>

#include "nn/kernels/kernels.hpp"

namespace hawc::kernels {

const kernel_ops* scalar_kernels();
const kernel_ops* avx2_kernels();
const kernel_ops* neon_kernels();

/// The float -> int8 half of the requant contract (see requant_fn in
/// kernels.hpp), shared by the scalar tier and the SIMD tiers' remainder
/// lanes. Mirrors quant_params::quantize line for line — the quant layer
/// sits above nn, so this is a pinned replica, not a call.
inline std::int8_t requant_cast(float real, float out_scale, std::int32_t out_zp) {
    if (!std::isfinite(real)) {
        if (std::isnan(real)) {
            return static_cast<std::int8_t>(std::clamp(out_zp, -128, 127));
        }
        return real > 0.0f ? std::int8_t{127} : std::int8_t{-128};
    }
    const float rounded = std::round(real / out_scale + static_cast<float>(out_zp));
    return static_cast<std::int8_t>(std::clamp(rounded, -128.0f, 127.0f));
}

/// One element of the requant contract including the scale/bias/ReLU
/// front half; the tails of every tier funnel through this.
inline std::int8_t requant_one(std::int32_t acc, float in_scale, float weight_scale,
                               float bias, float out_scale, std::int32_t out_zp,
                               bool fused_relu) {
    float real = static_cast<float>(acc) * in_scale * weight_scale + bias;
    if (fused_relu && real < 0.0f) real = 0.0f;
    return requant_cast(real, out_scale, out_zp);
}

}  // namespace hawc::kernels
