// AVX2 tier. Compiled with -mavx2 -ffp-contract=off (see
// src/CMakeLists.txt) only where the toolchain supports it; everything
// here is additionally gated on __AVX2__ so an un-flagged build still
// compiles this TU to the nullptr factory. Registration further requires
// a runtime cpuid probe, so the binary stays safe on pre-AVX2 hardware.
//
// int8: one 256-bit load per packed k-pair block feeds madd_epi16 —
// 16 int16 products and 8 pairwise int32 adds per instruction — with the
// activation k-pair broadcast as a 32-bit lane. Exact integer math, so
// any blocking is bit-identical to the scalar reference.
//
// fp32: columns vectorize 8-wide with an explicit multiply then add per
// k (never fmadd), keeping per-element rounding identical to the scalar
// tier; see the contract in kernels.hpp.

#include "nn/kernels/kernels_impl.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

namespace hawc::kernels {

namespace {

/// The activation k-pair {a[2p], a[2p+1]} as the 32-bit lane madd_epi16
/// pairs against the packed weights (little-endian: a[2p] low).
inline std::int32_t load_pair(const std::int16_t* p) {
    std::int32_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

inline __m256i load_block(const std::int16_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

void qgemm_avx2(const std::int16_t* a, std::size_t a_stride, const packed_qweights& w,
                std::int32_t* acc, std::size_t m_rows) {
    const std::size_t kp = w.k_pairs();
    const std::size_t blocks = w.col_blocks();
    const std::size_t pn = w.padded_n();
    for (std::size_t b = 0; b < blocks; ++b) {
        const std::int16_t* block = w.data.data() + b * kp * 2 * q_block;
        std::size_t m = 0;
        for (; m + 4 <= m_rows; m += 4) {
            const std::int16_t* a0 = a + (m + 0) * a_stride;
            const std::int16_t* a1 = a + (m + 1) * a_stride;
            const std::int16_t* a2 = a + (m + 2) * a_stride;
            const std::int16_t* a3 = a + (m + 3) * a_stride;
            __m256i c0 = _mm256_setzero_si256();
            __m256i c1 = _mm256_setzero_si256();
            __m256i c2 = _mm256_setzero_si256();
            __m256i c3 = _mm256_setzero_si256();
            for (std::size_t p = 0; p < kp; ++p) {
                const __m256i wv = load_block(block + p * 2 * q_block);
                c0 = _mm256_add_epi32(
                    c0, _mm256_madd_epi16(_mm256_set1_epi32(load_pair(a0 + 2 * p)), wv));
                c1 = _mm256_add_epi32(
                    c1, _mm256_madd_epi16(_mm256_set1_epi32(load_pair(a1 + 2 * p)), wv));
                c2 = _mm256_add_epi32(
                    c2, _mm256_madd_epi16(_mm256_set1_epi32(load_pair(a2 + 2 * p)), wv));
                c3 = _mm256_add_epi32(
                    c3, _mm256_madd_epi16(_mm256_set1_epi32(load_pair(a3 + 2 * p)), wv));
            }
            for (std::size_t r = 0; r < 4; ++r) {
                std::int32_t* out = acc + (m + r) * pn + b * q_block;
                __m256i* dst = reinterpret_cast<__m256i*>(out);
                const __m256i sum = r == 0 ? c0 : r == 1 ? c1 : r == 2 ? c2 : c3;
                _mm256_storeu_si256(dst, _mm256_add_epi32(_mm256_loadu_si256(dst), sum));
            }
        }
        for (; m < m_rows; ++m) {
            const std::int16_t* am = a + m * a_stride;
            __m256i cm = _mm256_setzero_si256();
            for (std::size_t p = 0; p < kp; ++p) {
                const __m256i wv = load_block(block + p * 2 * q_block);
                cm = _mm256_add_epi32(
                    cm, _mm256_madd_epi16(_mm256_set1_epi32(load_pair(am + 2 * p)), wv));
            }
            std::int32_t* out = acc + m * pn + b * q_block;
            __m256i* dst = reinterpret_cast<__m256i*>(out);
            _mm256_storeu_si256(dst, _mm256_add_epi32(_mm256_loadu_si256(dst), cm));
        }
    }
}

void sgemm_avx2(const float* a, std::size_t K, const float* w, std::size_t n_cols,
                float* c, std::size_t m_rows) {
    std::size_t m = 0;
    for (; m + 4 <= m_rows; m += 4) {
        const float* a0 = a + (m + 0) * K;
        const float* a1 = a + (m + 1) * K;
        const float* a2 = a + (m + 2) * K;
        const float* a3 = a + (m + 3) * K;
        float* c0 = c + (m + 0) * n_cols;
        float* c1 = c + (m + 1) * n_cols;
        float* c2 = c + (m + 2) * n_cols;
        float* c3 = c + (m + 3) * n_cols;
        std::size_t j = 0;
        for (; j + 8 <= n_cols; j += 8) {
            __m256 s0 = _mm256_loadu_ps(c0 + j);
            __m256 s1 = _mm256_loadu_ps(c1 + j);
            __m256 s2 = _mm256_loadu_ps(c2 + j);
            __m256 s3 = _mm256_loadu_ps(c3 + j);
            for (std::size_t k = 0; k < K; ++k) {
                const __m256 wv = _mm256_loadu_ps(w + k * n_cols + j);
                s0 = _mm256_add_ps(s0, _mm256_mul_ps(_mm256_set1_ps(a0[k]), wv));
                s1 = _mm256_add_ps(s1, _mm256_mul_ps(_mm256_set1_ps(a1[k]), wv));
                s2 = _mm256_add_ps(s2, _mm256_mul_ps(_mm256_set1_ps(a2[k]), wv));
                s3 = _mm256_add_ps(s3, _mm256_mul_ps(_mm256_set1_ps(a3[k]), wv));
            }
            _mm256_storeu_ps(c0 + j, s0);
            _mm256_storeu_ps(c1 + j, s1);
            _mm256_storeu_ps(c2 + j, s2);
            _mm256_storeu_ps(c3 + j, s3);
        }
        for (; j < n_cols; ++j) {
            float s0 = c0[j];
            float s1 = c1[j];
            float s2 = c2[j];
            float s3 = c3[j];
            for (std::size_t k = 0; k < K; ++k) {
                const float wv = w[k * n_cols + j];
                s0 += a0[k] * wv;
                s1 += a1[k] * wv;
                s2 += a2[k] * wv;
                s3 += a3[k] * wv;
            }
            c0[j] = s0;
            c1[j] = s1;
            c2[j] = s2;
            c3[j] = s3;
        }
    }
    for (; m < m_rows; ++m) {
        const float* am = a + m * K;
        float* cm = c + m * n_cols;
        std::size_t j = 0;
        for (; j + 8 <= n_cols; j += 8) {
            __m256 s = _mm256_loadu_ps(cm + j);
            for (std::size_t k = 0; k < K; ++k) {
                s = _mm256_add_ps(
                    s, _mm256_mul_ps(_mm256_set1_ps(am[k]), _mm256_loadu_ps(w + k * n_cols + j)));
            }
            _mm256_storeu_ps(cm + j, s);
        }
        for (; j < n_cols; ++j) {
            float s = cm[j];
            for (std::size_t k = 0; k < K; ++k) s += am[k] * w[k * n_cols + j];
            cm[j] = s;
        }
    }
}

/// round() — half away from zero — has no direct AVX2 rounding mode
/// (_mm256_round_ps only offers nearest-even / down / up / truncate), so
/// emulate it exactly: t = trunc(x), frac = x - t (exact — the
/// fractional part of a float is always representable and the subtract
/// is lossless), bump t by copysign(1, x) when |frac| >= 0.5. Integral
/// and huge (|x| >= 2^23) inputs have frac == 0 and pass through;
/// Inf yields frac = NaN, the compare stays false, and Inf passes
/// through to the saturating clamp. Matches std::round bit for bit on
/// every finite input.
inline __m256 round_half_away(__m256 x) {
    const __m256 t = _mm256_round_ps(x, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
    const __m256 sign_bit = _mm256_set1_ps(-0.0f);
    const __m256 frac_abs = _mm256_andnot_ps(sign_bit, _mm256_sub_ps(x, t));
    const __m256 bump = _mm256_cmp_ps(frac_abs, _mm256_set1_ps(0.5f), _CMP_GE_OQ);
    const __m256 one = _mm256_or_ps(_mm256_set1_ps(1.0f), _mm256_and_ps(x, sign_bit));
    return _mm256_add_ps(t, _mm256_and_ps(bump, one));
}

void requant_avx2(const std::int32_t* acc, std::size_t n, float in_scale,
                  const float* weight_scales, const float* bias, float out_scale,
                  std::int32_t out_zp, bool fused_relu, std::int8_t* out) {
    const __m256 vin = _mm256_set1_ps(in_scale);
    const __m256 vscale = _mm256_set1_ps(out_scale);
    const __m256 vzp = _mm256_set1_ps(static_cast<float>(out_zp));
    const __m256 vzero = _mm256_setzero_ps();
    const __m256 vhi = _mm256_set1_ps(127.0f);
    const __m256 vlo = _mm256_set1_ps(-128.0f);
    // Lane-wide ReLU switch: AND the real<0 mask with all-ones/all-zero
    // instead of branching per lane.
    const __m256 relu_on = _mm256_castsi256_ps(_mm256_set1_epi32(fused_relu ? -1 : 0));
    const __m256i nan_code =
        _mm256_set1_epi32(std::clamp(out_zp, -128, 127));  // NaN -> zero-point code
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 a =
            _mm256_cvtepi32_ps(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j)));
        // (float(acc) * in_scale) * weight_scale + bias — the contract's
        // exact association, explicit mul then add (never fmadd).
        __m256 real = _mm256_add_ps(
            _mm256_mul_ps(_mm256_mul_ps(a, vin), _mm256_loadu_ps(weight_scales + j)),
            _mm256_loadu_ps(bias + j));
        const __m256 neg = _mm256_and_ps(_mm256_cmp_ps(real, vzero, _CMP_LT_OQ), relu_on);
        real = _mm256_blendv_ps(real, vzero, neg);
        const __m256 r = round_half_away(_mm256_add_ps(_mm256_div_ps(real, vscale), vzp));
        // max(min(r, 127), -128): minps/maxps pass their second operand
        // through on NaN, so NaN lanes land on an arbitrary in-range
        // value here — the unordered-compare blend below overrides them
        // with the zero-point code, matching requant_cast.
        const __m256 clamped = _mm256_max_ps(_mm256_min_ps(r, vhi), vlo);
        __m256i q = _mm256_cvttps_epi32(clamped);  // integral already; trunc is exact
        const __m256i is_nan =
            _mm256_castps_si256(_mm256_cmp_ps(real, real, _CMP_UNORD_Q));
        q = _mm256_blendv_epi8(q, nan_code, is_nan);
        // Narrow 8 x int32 -> 8 x int8; values are in [-128, 127] so the
        // saturating packs are exact.
        const __m128i w16 =
            _mm_packs_epi32(_mm256_castsi256_si128(q), _mm256_extracti128_si256(q, 1));
        const __m128i b8 = _mm_packs_epi16(w16, w16);
        _mm_storel_epi64(reinterpret_cast<__m128i*>(out + j), b8);
    }
    for (; j < n; ++j) {
        out[j] = requant_one(acc[j], in_scale, weight_scales[j], bias[j], out_scale, out_zp,
                             fused_relu);
    }
}

}  // namespace

const kernel_ops* avx2_kernels() {
    static const bool cpu_ok = __builtin_cpu_supports("avx2") != 0;
    if (!cpu_ok) return nullptr;
    static const kernel_ops ops{isa_tier::avx2, "avx2", &qgemm_avx2, &sgemm_avx2,
                                &requant_avx2};
    return &ops;
}

}  // namespace hawc::kernels

#else  // !__AVX2__

namespace hawc::kernels {

const kernel_ops* avx2_kernels() { return nullptr; }

}  // namespace hawc::kernels

#endif
