#pragma once

// Vectorized GEMM microkernel layer with runtime ISA dispatch. Every hot
// matrix product in the repo (fp32 im2col conv, fp32 dense, the int8
// inference path) funnels through the `kernel_ops` table selected once at
// startup: AVX2 on x86-64 when both the build and the CPU support it,
// NEON on aarch64, and a portable scalar fallback that is always
// registered. `HAWC_KERNEL_ISA` forces a tier by name for testing; an
// unavailable name throws instead of silently falling back, so a forced
// run always exercises what it claims to.
//
// Numeric contracts (pinned by tests/test_kernels.cpp):
//   int8  — int8*int8 -> int32 accumulation is exact integer arithmetic,
//           so every tier is bit-identical to the scalar reference for
//           any summation order. Worst case |a| * |w| * K = 255*128*K
//           stays far below INT32_MAX for any layer in these models.
//   fp32  — all tiers accumulate each output element over k ascending
//           with a separate multiply and add per term (no FMA
//           contraction; the kernels directory builds with
//           -ffp-contract=off), so results are bit-identical across
//           tiers and to the pre-kernel-layer scalar loops.
//
// Raw SIMD intrinsics are allowed only inside this directory — the
// `simd-outside-kernels` lint rule (scripts/lint.sh) enforces it.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "telemetry/metrics.hpp"

namespace hawc::kernels {

/// Known instruction-set tiers, worst to best.
enum class isa_tier : std::uint8_t { scalar = 0, neon = 1, avx2 = 2 };

const char* isa_name(isa_tier tier);

/// Columns per packed-weight block. 8 int32 accumulators fill one AVX2
/// register exactly and two NEON registers; the scalar tier just loops.
inline constexpr std::size_t q_block = 8;

/// Packed int8 weights, prepared once at model load
/// (quantized_model::add_op) and shared by every tier. Layout, from a
/// row-major (k x n) weight matrix W:
///
///   - columns are grouped into blocks of q_block (the last block is
///     zero-padded up to q_block columns);
///   - within a block, k runs in pairs: each k-pair contributes
///     2*q_block int16 values, interleaved per column as
///     { W[2p][j], W[2p+1][j] } for j = 0..q_block-1 (odd k pads the
///     missing W[k][j] with zeros).
///
/// The pair interleave is exactly what AVX2's madd_epi16 consumes (one
/// 256-bit load per k-pair per block) and what NEON de-interleaves with
/// one vld2q_s16; weights widen to int16 at pack time so the inner loops
/// have no sign-extension work.
struct packed_qweights {
    std::size_t k = 0;  // logical rows (patch length / input features)
    std::size_t n = 0;  // logical columns (output channels)
    std::vector<std::int16_t> data;

    std::size_t k_pairs() const { return (k + 1) / 2; }
    std::size_t col_blocks() const { return (n + q_block - 1) / q_block; }
    std::size_t padded_n() const { return col_blocks() * q_block; }
};

packed_qweights pack_qweights(const std::int8_t* w, std::size_t k, std::size_t n);

/// Row stride the int8 kernels require for the activation matrix: k
/// rounded up to even, so a k-pair never straddles two rows. The pad
/// column multiplies a zero weight, so its value is mathematically
/// irrelevant — but callers zero it anyway (tidy buffers diff cleanly).
inline std::size_t q_row_stride(std::size_t k) { return k + (k % 2); }

/// acc (m_rows x w.padded_n(), row stride w.padded_n(), caller-initialised)
/// += a (m_rows x w.k int16, row stride a_stride) * W. a_stride must be
/// even and >= w.k.
using qgemm_fn = void (*)(const std::int16_t* a, std::size_t a_stride,
                          const packed_qweights& w, std::int32_t* acc,
                          std::size_t m_rows);

/// c (m_rows x n_cols, preloaded with the bias) += a (m_rows x k) *
/// w (k x n_cols), all row-major. Accumulation per output element runs
/// over k ascending, multiply then add — see the fp32 contract above.
using sgemm_fn = void (*)(const float* a, std::size_t k, const float* w,
                          std::size_t n_cols, float* c, std::size_t m_rows);

/// Fused requantization: collapse one row of int32 GEMM accumulators
/// back to int8, per element j in [0, n):
///
///   real   = float(acc[j]) * in_scale * weight_scales[j] + bias[j]
///            (that exact association — no FMA, no precomputed combined
///            scale; both change float rounding)
///   real   = 0 when fused_relu and real < 0
///   out[j] = quantize(real) under the contract of
///            quant_params::quantize (quant/q_types.hpp): NaN -> the
///            clamped zero-point code, +/-Inf -> the saturation
///            endpoints, else round(real / out_scale + out_zp) half away
///            from zero, saturated to [-128, 127].
///
/// The quant layer sits above nn, so the tiers replicate that contract
/// instead of calling it; tests/test_kernels.cpp pins every tier
/// bit-exact against quant_params::quantize itself.
using requant_fn = void (*)(const std::int32_t* acc, std::size_t n, float in_scale,
                            const float* weight_scales, const float* bias,
                            float out_scale, std::int32_t out_zp, bool fused_relu,
                            std::int8_t* out);

/// One dispatchable implementation tier.
struct kernel_ops {
    isa_tier tier = isa_tier::scalar;
    const char* name = "scalar";
    qgemm_fn qgemm = nullptr;
    sgemm_fn sgemm = nullptr;
    requant_fn requant = nullptr;
};

/// Tiers compiled into this binary and supported by the running CPU,
/// best first. Never empty: scalar is always present (and always last).
const std::vector<const kernel_ops*>& registered_kernels();

/// Lookup by tier name ("avx2", "neon", "scalar"); nullptr when the tier
/// is not registered in this process.
const kernel_ops* find_kernels(std::string_view name);

/// The dispatched tier, chosen once on first call: the best registered
/// tier, unless HAWC_KERNEL_ISA names one explicitly ("auto" and the
/// empty string mean best-available; an unknown or unavailable name
/// throws invalid_argument_error).
const kernel_ops& active_kernels();

/// Test hook: force the dispatched tier (nullptr restores the normal
/// env/probe selection). Not thread-safe against concurrent kernel
/// callers — flip it between pipeline runs, like set_global_thread_count.
void set_active_kernels_for_testing(const kernel_ops* ops);

/// Export the dispatched tier as gauges: a labeled
/// `hawc_kernel_isa{isa="<name>"} 1` series plus the numeric
/// `hawc_kernel_isa_tier`, so fleet scrapes show what each pole runs.
void record_isa_gauges(telemetry::metrics_registry& reg);

/// Bit-exact scalar oracles for the parity suite: straightforward
/// row-major loops over the *unpacked* weights, independent of the packed
/// layout, so a packing bug cannot hide in both sides of a comparison.
namespace reference {

/// acc (m_rows x n, row stride acc_stride) += a (m_rows x k int16, row
/// stride a_stride) * w (k x n int8, row-major).
void qgemm(const std::int16_t* a, std::size_t a_stride, std::size_t k,
           const std::int8_t* w, std::size_t n, std::int32_t* acc,
           std::size_t acc_stride, std::size_t m_rows);

/// c (m_rows x n) += a (m_rows x k) * w (k x n), row-major, k ascending.
void sgemm(const float* a, std::size_t k, const float* w, std::size_t n,
           float* c, std::size_t m_rows);

}  // namespace reference

}  // namespace hawc::kernels
