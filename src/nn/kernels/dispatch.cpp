#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "nn/kernels/kernels_impl.hpp"

namespace hawc::kernels {

const char* isa_name(isa_tier tier) {
    switch (tier) {
        case isa_tier::avx2: return "avx2";
        case isa_tier::neon: return "neon";
        case isa_tier::scalar: break;
    }
    return "scalar";
}

namespace {

std::vector<const kernel_ops*> build_registry() {
    std::vector<const kernel_ops*> tiers;
    if (const kernel_ops* avx2 = avx2_kernels()) tiers.push_back(avx2);
    if (const kernel_ops* neon = neon_kernels()) tiers.push_back(neon);
    tiers.push_back(scalar_kernels());
    return tiers;
}

const kernel_ops& select_at_startup() {
    const char* env = std::getenv("HAWC_KERNEL_ISA");
    if (env != nullptr && *env != '\0' && std::string_view{env} != "auto") {
        const kernel_ops* forced = find_kernels(env);
        HAWC_REQUIRE(forced != nullptr,
                     "HAWC_KERNEL_ISA names a tier not registered in this process: " +
                         std::string{env});
        return *forced;
    }
    return *registered_kernels().front();
}

// Test-only override; read on the hot path with a relaxed-equivalent
// plain load (flipped only between pipeline runs, see the header).
const kernel_ops* g_forced = nullptr;

}  // namespace

const std::vector<const kernel_ops*>& registered_kernels() {
    static const std::vector<const kernel_ops*> tiers = build_registry();
    return tiers;
}

const kernel_ops* find_kernels(std::string_view name) {
    for (const kernel_ops* tier : registered_kernels()) {
        if (name == tier->name) return tier;
    }
    return nullptr;
}

const kernel_ops& active_kernels() {
    if (g_forced != nullptr) return *g_forced;
    static const kernel_ops& chosen = select_at_startup();
    return chosen;
}

void set_active_kernels_for_testing(const kernel_ops* ops) { g_forced = ops; }

void record_isa_gauges(telemetry::metrics_registry& reg) {
    const kernel_ops& active = active_kernels();
    reg.make_gauge(telemetry::labeled_name("hawc_kernel_isa", "isa", active.name),
                   "dispatched SIMD kernel tier (1 = active)")
        .set(1.0);
    reg.make_gauge("hawc_kernel_isa_tier",
                   "dispatched SIMD kernel tier as a number (0 scalar, 1 neon, 2 avx2)")
        .set(static_cast<double>(active.tier));
}

packed_qweights pack_qweights(const std::int8_t* w, std::size_t k, std::size_t n) {
    packed_qweights packed;
    packed.k = k;
    packed.n = n;
    const std::size_t kp = packed.k_pairs();
    packed.data.assign(packed.col_blocks() * kp * 2 * q_block, 0);
    for (std::size_t b = 0; b < packed.col_blocks(); ++b) {
        std::int16_t* block = packed.data.data() + b * kp * 2 * q_block;
        for (std::size_t p = 0; p < kp; ++p) {
            std::int16_t* pair = block + p * 2 * q_block;
            for (std::size_t j = 0; j < q_block; ++j) {
                const std::size_t col = b * q_block + j;
                if (col >= n) continue;  // padded columns stay zero
                pair[2 * j] = static_cast<std::int16_t>(w[(2 * p) * n + col]);
                if (2 * p + 1 < k) {
                    pair[2 * j + 1] = static_cast<std::int16_t>(w[(2 * p + 1) * n + col]);
                }
            }
        }
    }
    return packed;
}

namespace reference {

void qgemm(const std::int16_t* a, std::size_t a_stride, std::size_t k,
           const std::int8_t* w, std::size_t n, std::int32_t* acc,
           std::size_t acc_stride, std::size_t m_rows) {
    for (std::size_t m = 0; m < m_rows; ++m) {
        const std::int16_t* am = a + m * a_stride;
        std::int32_t* cm = acc + m * acc_stride;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const std::int32_t x = am[kk];
            const std::int8_t* w_row = w + kk * n;
            for (std::size_t j = 0; j < n; ++j) {
                cm[j] += x * static_cast<std::int32_t>(w_row[j]);
            }
        }
    }
}

void sgemm(const float* a, std::size_t k, const float* w, std::size_t n, float* c,
           std::size_t m_rows) {
    for (std::size_t m = 0; m < m_rows; ++m) {
        const float* am = a + m * k;
        float* cm = c + m * n;
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float x = am[kk];
            const float* w_row = w + kk * n;
            for (std::size_t j = 0; j < n; ++j) cm[j] += x * w_row[j];
        }
    }
}

}  // namespace reference

}  // namespace hawc::kernels
