// Scalar fallback tier: portable loops over the same packed layout the
// SIMD tiers consume, always registered, forced via
// HAWC_KERNEL_ISA=scalar. The fp32 kernel keeps the 4-row register
// blocking the pre-kernel-layer gemm_rows used (each loaded W row feeds
// four accumulator rows); the int8 kernel walks the packed k-pair blocks
// exactly as madd_epi16 would, so its accumulation is the layout's
// ground truth.

#include "nn/kernels/kernels_impl.hpp"

namespace hawc::kernels {

namespace {

void qgemm_scalar(const std::int16_t* a, std::size_t a_stride, const packed_qweights& w,
                  std::int32_t* acc, std::size_t m_rows) {
    const std::size_t kp = w.k_pairs();
    const std::size_t blocks = w.col_blocks();
    const std::size_t pn = w.padded_n();
    for (std::size_t m = 0; m < m_rows; ++m) {
        const std::int16_t* am = a + m * a_stride;
        std::int32_t* cm = acc + m * pn;
        for (std::size_t b = 0; b < blocks; ++b) {
            const std::int16_t* block = w.data.data() + b * kp * 2 * q_block;
            std::int32_t* cb = cm + b * q_block;
            for (std::size_t p = 0; p < kp; ++p) {
                const std::int32_t x0 = am[2 * p];
                const std::int32_t x1 = am[2 * p + 1];  // even-stride pad for odd k
                const std::int16_t* pair = block + p * 2 * q_block;
                for (std::size_t j = 0; j < q_block; ++j) {
                    cb[j] += x0 * pair[2 * j] + x1 * pair[2 * j + 1];
                }
            }
        }
    }
}

// C (m_rows x n_cols) += A (m_rows x K) * W (K x n_cols), row-major, C
// pre-initialised by the caller. Accumulation runs over k ascending per
// output element — the same (kh, kw, ic) order as a direct convolution,
// so results are bit-identical to the naive loop. Four A-rows are carried
// at once so each W row loaded from memory feeds four accumulator rows.
void sgemm_scalar(const float* __restrict__ a, std::size_t K, const float* __restrict__ w,
                  std::size_t n_cols, float* __restrict__ c, std::size_t m_rows) {
    std::size_t m = 0;
    for (; m + 4 <= m_rows; m += 4) {
        const float* __restrict__ a0 = a + (m + 0) * K;
        const float* __restrict__ a1 = a + (m + 1) * K;
        const float* __restrict__ a2 = a + (m + 2) * K;
        const float* __restrict__ a3 = a + (m + 3) * K;
        float* __restrict__ c0 = c + (m + 0) * n_cols;
        float* __restrict__ c1 = c + (m + 1) * n_cols;
        float* __restrict__ c2 = c + (m + 2) * n_cols;
        float* __restrict__ c3 = c + (m + 3) * n_cols;
        for (std::size_t k = 0; k < K; ++k) {
            const float* __restrict__ w_row = w + k * n_cols;
            const float x0 = a0[k];
            const float x1 = a1[k];
            const float x2 = a2[k];
            const float x3 = a3[k];
            for (std::size_t j = 0; j < n_cols; ++j) {
                const float wv = w_row[j];
                c0[j] += x0 * wv;
                c1[j] += x1 * wv;
                c2[j] += x2 * wv;
                c3[j] += x3 * wv;
            }
        }
    }
    for (; m < m_rows; ++m) {
        const float* __restrict__ am = a + m * K;
        float* __restrict__ cm = c + m * n_cols;
        for (std::size_t k = 0; k < K; ++k) {
            const float x = am[k];
            const float* __restrict__ w_row = w + k * n_cols;
            for (std::size_t j = 0; j < n_cols; ++j) cm[j] += x * w_row[j];
        }
    }
}

void requant_scalar(const std::int32_t* acc, std::size_t n, float in_scale,
                    const float* weight_scales, const float* bias, float out_scale,
                    std::int32_t out_zp, bool fused_relu, std::int8_t* out) {
    for (std::size_t j = 0; j < n; ++j) {
        out[j] = requant_one(acc[j], in_scale, weight_scales[j], bias[j], out_scale, out_zp,
                             fused_relu);
    }
}

}  // namespace

const kernel_ops* scalar_kernels() {
    static const kernel_ops ops{isa_tier::scalar, "scalar", &qgemm_scalar, &sgemm_scalar,
                                &requant_scalar};
    return &ops;
}

}  // namespace hawc::kernels
