// NEON tier (aarch64, where NEON is baseline — no extra compile flags;
// 32-bit ARM lacks the A64 vdivq_f32/vrndaq_f32 this tier uses and falls
// back to scalar). One vld2q_s16 de-interleaves a packed k-pair block
// into the k0 and k1 column vectors; vmlal_s16 widens int16 products
// straight into int32 accumulators, so the math is exact and
// bit-identical to the scalar reference. fp32 vectorizes columns 4-wide
// with explicit vmulq/vaddq (never vfmaq) per the cross-tier rounding
// contract in kernels.hpp; the kernels directory builds with
// -ffp-contract=off so the scalar remainders cannot be fused behind our
// back either.

#include "nn/kernels/kernels_impl.hpp"

#if defined(__aarch64__) && (defined(__ARM_NEON) || defined(__ARM_NEON__))

#include <arm_neon.h>

namespace hawc::kernels {

namespace {

void qgemm_neon(const std::int16_t* a, std::size_t a_stride, const packed_qweights& w,
                std::int32_t* acc, std::size_t m_rows) {
    const std::size_t kp = w.k_pairs();
    const std::size_t blocks = w.col_blocks();
    const std::size_t pn = w.padded_n();
    for (std::size_t b = 0; b < blocks; ++b) {
        const std::int16_t* block = w.data.data() + b * kp * 2 * q_block;
        std::size_t m = 0;
        for (; m + 2 <= m_rows; m += 2) {
            const std::int16_t* a0 = a + (m + 0) * a_stride;
            const std::int16_t* a1 = a + (m + 1) * a_stride;
            int32x4_t c0_lo = vdupq_n_s32(0);
            int32x4_t c0_hi = vdupq_n_s32(0);
            int32x4_t c1_lo = vdupq_n_s32(0);
            int32x4_t c1_hi = vdupq_n_s32(0);
            for (std::size_t p = 0; p < kp; ++p) {
                // wk.val[0] = W[2p][j0..7], wk.val[1] = W[2p+1][j0..7]
                const int16x8x2_t wk = vld2q_s16(block + p * 2 * q_block);
                const int16x4_t x00 = vdup_n_s16(a0[2 * p]);
                const int16x4_t x01 = vdup_n_s16(a0[2 * p + 1]);
                const int16x4_t x10 = vdup_n_s16(a1[2 * p]);
                const int16x4_t x11 = vdup_n_s16(a1[2 * p + 1]);
                c0_lo = vmlal_s16(c0_lo, vget_low_s16(wk.val[0]), x00);
                c0_lo = vmlal_s16(c0_lo, vget_low_s16(wk.val[1]), x01);
                c0_hi = vmlal_s16(c0_hi, vget_high_s16(wk.val[0]), x00);
                c0_hi = vmlal_s16(c0_hi, vget_high_s16(wk.val[1]), x01);
                c1_lo = vmlal_s16(c1_lo, vget_low_s16(wk.val[0]), x10);
                c1_lo = vmlal_s16(c1_lo, vget_low_s16(wk.val[1]), x11);
                c1_hi = vmlal_s16(c1_hi, vget_high_s16(wk.val[0]), x10);
                c1_hi = vmlal_s16(c1_hi, vget_high_s16(wk.val[1]), x11);
            }
            std::int32_t* o0 = acc + (m + 0) * pn + b * q_block;
            std::int32_t* o1 = acc + (m + 1) * pn + b * q_block;
            vst1q_s32(o0, vaddq_s32(vld1q_s32(o0), c0_lo));
            vst1q_s32(o0 + 4, vaddq_s32(vld1q_s32(o0 + 4), c0_hi));
            vst1q_s32(o1, vaddq_s32(vld1q_s32(o1), c1_lo));
            vst1q_s32(o1 + 4, vaddq_s32(vld1q_s32(o1 + 4), c1_hi));
        }
        for (; m < m_rows; ++m) {
            const std::int16_t* am = a + m * a_stride;
            int32x4_t c_lo = vdupq_n_s32(0);
            int32x4_t c_hi = vdupq_n_s32(0);
            for (std::size_t p = 0; p < kp; ++p) {
                const int16x8x2_t wk = vld2q_s16(block + p * 2 * q_block);
                const int16x4_t x0 = vdup_n_s16(am[2 * p]);
                const int16x4_t x1 = vdup_n_s16(am[2 * p + 1]);
                c_lo = vmlal_s16(c_lo, vget_low_s16(wk.val[0]), x0);
                c_lo = vmlal_s16(c_lo, vget_low_s16(wk.val[1]), x1);
                c_hi = vmlal_s16(c_hi, vget_high_s16(wk.val[0]), x0);
                c_hi = vmlal_s16(c_hi, vget_high_s16(wk.val[1]), x1);
            }
            std::int32_t* out = acc + m * pn + b * q_block;
            vst1q_s32(out, vaddq_s32(vld1q_s32(out), c_lo));
            vst1q_s32(out + 4, vaddq_s32(vld1q_s32(out + 4), c_hi));
        }
    }
}

void sgemm_neon(const float* a, std::size_t K, const float* w, std::size_t n_cols, float* c,
                std::size_t m_rows) {
    std::size_t m = 0;
    for (; m + 4 <= m_rows; m += 4) {
        const float* a0 = a + (m + 0) * K;
        const float* a1 = a + (m + 1) * K;
        const float* a2 = a + (m + 2) * K;
        const float* a3 = a + (m + 3) * K;
        float* c0 = c + (m + 0) * n_cols;
        float* c1 = c + (m + 1) * n_cols;
        float* c2 = c + (m + 2) * n_cols;
        float* c3 = c + (m + 3) * n_cols;
        std::size_t j = 0;
        for (; j + 4 <= n_cols; j += 4) {
            float32x4_t s0 = vld1q_f32(c0 + j);
            float32x4_t s1 = vld1q_f32(c1 + j);
            float32x4_t s2 = vld1q_f32(c2 + j);
            float32x4_t s3 = vld1q_f32(c3 + j);
            for (std::size_t k = 0; k < K; ++k) {
                const float32x4_t wv = vld1q_f32(w + k * n_cols + j);
                s0 = vaddq_f32(s0, vmulq_n_f32(wv, a0[k]));
                s1 = vaddq_f32(s1, vmulq_n_f32(wv, a1[k]));
                s2 = vaddq_f32(s2, vmulq_n_f32(wv, a2[k]));
                s3 = vaddq_f32(s3, vmulq_n_f32(wv, a3[k]));
            }
            vst1q_f32(c0 + j, s0);
            vst1q_f32(c1 + j, s1);
            vst1q_f32(c2 + j, s2);
            vst1q_f32(c3 + j, s3);
        }
        for (; j < n_cols; ++j) {
            float s0 = c0[j];
            float s1 = c1[j];
            float s2 = c2[j];
            float s3 = c3[j];
            for (std::size_t k = 0; k < K; ++k) {
                const float wv = w[k * n_cols + j];
                s0 += a0[k] * wv;
                s1 += a1[k] * wv;
                s2 += a2[k] * wv;
                s3 += a3[k] * wv;
            }
            c0[j] = s0;
            c1[j] = s1;
            c2[j] = s2;
            c3[j] = s3;
        }
    }
    for (; m < m_rows; ++m) {
        const float* am = a + m * K;
        float* cm = c + m * n_cols;
        std::size_t j = 0;
        for (; j + 4 <= n_cols; j += 4) {
            float32x4_t s = vld1q_f32(cm + j);
            for (std::size_t k = 0; k < K; ++k) {
                s = vaddq_f32(s, vmulq_n_f32(vld1q_f32(w + k * n_cols + j), am[k]));
            }
            vst1q_f32(cm + j, s);
        }
        for (; j < n_cols; ++j) {
            float s = cm[j];
            for (std::size_t k = 0; k < K; ++k) s += am[k] * w[k * n_cols + j];
            cm[j] = s;
        }
    }
}

void requant_neon(const std::int32_t* acc, std::size_t n, float in_scale,
                  const float* weight_scales, const float* bias, float out_scale,
                  std::int32_t out_zp, bool fused_relu, std::int8_t* out) {
    const float32x4_t vscale = vdupq_n_f32(out_scale);
    const float32x4_t vzp = vdupq_n_f32(static_cast<float>(out_zp));
    const float32x4_t vzero = vdupq_n_f32(0.0f);
    const float32x4_t vhi = vdupq_n_f32(127.0f);
    const float32x4_t vlo = vdupq_n_f32(-128.0f);
    const uint32x4_t relu_on = vdupq_n_u32(fused_relu ? ~0u : 0u);
    const int32x4_t nan_code = vdupq_n_s32(std::clamp(out_zp, -128, 127));
    // One 4-lane column group: the contract's exact association (mul,
    // mul, add — vfmaq is banned), branchless ReLU, A64 frinta
    // (vrndaq_f32) which *is* round-half-away-from-zero, then a
    // saturating clamp. NEON min/max propagate NaN, vcvtq maps NaN to 0 —
    // either way the unordered blend overrides NaN lanes with the
    // zero-point code, matching requant_cast.
    const auto lane4 = [&](std::size_t j) -> int32x4_t {
        const float32x4_t a = vcvtq_f32_s32(vld1q_s32(acc + j));
        float32x4_t real = vaddq_f32(
            vmulq_f32(vmulq_n_f32(a, in_scale), vld1q_f32(weight_scales + j)),
            vld1q_f32(bias + j));
        const uint32x4_t neg = vandq_u32(vcltq_f32(real, vzero), relu_on);
        real = vbslq_f32(neg, vzero, real);
        const float32x4_t r = vrndaq_f32(vaddq_f32(vdivq_f32(real, vscale), vzp));
        const float32x4_t clamped = vmaxq_f32(vminq_f32(r, vhi), vlo);
        int32x4_t q = vcvtq_s32_f32(clamped);
        const uint32x4_t is_nan = vmvnq_u32(vceqq_f32(real, real));
        return vbslq_s32(is_nan, nan_code, q);
    };
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const int16x8_t w16 = vcombine_s16(vqmovn_s32(lane4(j)), vqmovn_s32(lane4(j + 4)));
        vst1_s8(out + j, vqmovn_s16(w16));  // values in [-128,127]: packs exact
    }
    for (; j < n; ++j) {
        out[j] = requant_one(acc[j], in_scale, weight_scales[j], bias[j], out_scale, out_zp,
                             fused_relu);
    }
}

}  // namespace

const kernel_ops* neon_kernels() {
    static const kernel_ops ops{isa_tier::neon, "neon", &qgemm_neon, &sgemm_neon,
                                &requant_neon};
    return &ops;
}

}  // namespace hawc::kernels

#else  // !__ARM_NEON

namespace hawc::kernels {

const kernel_ops* neon_kernels() { return nullptr; }

}  // namespace hawc::kernels

#endif
