#pragma once

// Minibatch training loop for classification models, with per-epoch
// evaluation hooks (used to regenerate the paper's training curves).

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"

namespace hawc {

/// In-memory labelled dataset: one tensor per sample (batch dim 1).
struct labelled_dataset {
    std::vector<tensor> samples;
    std::vector<std::uint8_t> labels;

    std::size_t size() const { return samples.size(); }

    /// Deterministic stratified fraction of the dataset (keeps at least
    /// one sample per present class) — the Figure 8b limited-data sweep.
    labelled_dataset stratified_fraction(double fraction, rng& random) const;
};

struct train_config {
    std::size_t epochs = 10;
    std::size_t batch_size = 32;
    adam_config adam{};
    /// Step learning-rate decay: lr *= lr_decay_factor every
    /// lr_decay_period epochs (0 disables).
    double lr_decay_factor = 1.0;
    std::size_t lr_decay_period = 0;
};

struct epoch_report {
    std::size_t epoch = 0;
    double train_loss = 0.0;
    double train_accuracy = 0.0;
    double test_accuracy = 0.0;  // populated when a test set is supplied
};

/// Binary/zero-one evaluation metrics (Table I columns).
struct eval_metrics {
    double accuracy = 0.0;
    double precision = 0.0;
    double recall = 0.0;
    double f1 = 0.0;
    std::size_t true_positive = 0;
    std::size_t true_negative = 0;
    std::size_t false_positive = 0;
    std::size_t false_negative = 0;
};

/// Evaluate a classifier on a dataset (positive class = 1).
eval_metrics evaluate(sequential& model, const labelled_dataset& data,
                      std::size_t batch_size = 64);

/// Regenerates the training samples in place at the start of an epoch —
/// used by models whose featurization is stochastic (noise-controlled
/// up-sampling) so each epoch sees fresh noise draws (augmentation).
using epoch_refresh_fn = std::function<void(labelled_dataset&, rng&)>;

/// Train with Adam + softmax cross entropy. Returns one report per epoch;
/// when `test` is non-null its accuracy is evaluated every epoch.
std::vector<epoch_report> train_classifier(sequential& model, const labelled_dataset& train,
                                           const labelled_dataset* test,
                                           const train_config& config, rng& random,
                                           const epoch_refresh_fn& refresh = {});

}  // namespace hawc
