#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hawc {

tensor softmax(const tensor& logits) {
    HAWC_REQUIRE(logits.rank() == 2, "softmax expects (N, K) logits");
    const std::size_t batch = logits.dim(0);
    const std::size_t classes = logits.dim(1);
    tensor probs{logits.shape()};
    for (std::size_t n = 0; n < batch; ++n) {
        const float* row = logits.data() + n * classes;
        float* out = probs.data() + n * classes;
        const float m = *std::max_element(row, row + classes);
        float sum = 0.0f;
        for (std::size_t k = 0; k < classes; ++k) {
            out[k] = std::exp(row[k] - m);
            sum += out[k];
        }
        for (std::size_t k = 0; k < classes; ++k) out[k] /= sum;
    }
    return probs;
}

loss_result softmax_cross_entropy(const tensor& logits, std::span<const std::uint8_t> labels) {
    HAWC_REQUIRE(logits.rank() == 2, "loss expects (N, K) logits");
    HAWC_REQUIRE(labels.size() == logits.dim(0), "one label per sample required");
    const std::size_t batch = logits.dim(0);
    const std::size_t classes = logits.dim(1);

    loss_result result;
    result.grad_logits = softmax(logits);
    const float inv_batch = 1.0f / static_cast<float>(batch);

    for (std::size_t n = 0; n < batch; ++n) {
        const std::size_t label = labels[n];
        HAWC_REQUIRE(label < classes, "label out of range");
        float* row = result.grad_logits.data() + n * classes;

        const float p = std::max(row[label], 1e-12f);
        result.loss -= std::log(static_cast<double>(p));

        std::size_t argmax = 0;
        for (std::size_t k = 1; k < classes; ++k) {
            if (row[k] > row[argmax]) argmax = k;
        }
        if (argmax == label) ++result.correct;

        // dL/dlogit = (softmax - onehot) / N.
        row[label] -= 1.0f;
        for (std::size_t k = 0; k < classes; ++k) row[k] *= inv_batch;
    }
    result.loss /= static_cast<double>(batch);
    return result;
}

mse_result mean_squared_error(const tensor& prediction, const tensor& target) {
    HAWC_REQUIRE(prediction.shape() == target.shape(), "MSE shapes must match");
    mse_result result;
    result.grad = tensor{prediction.shape()};
    const std::size_t batch = std::max<std::size_t>(prediction.batch(), 1);
    const float scale = 2.0f / static_cast<float>(batch * prediction.sample_size());
    for (std::size_t i = 0; i < prediction.size(); ++i) {
        const float d = prediction[i] - target[i];
        result.loss += static_cast<double>(d) * static_cast<double>(d);
        result.grad[i] = scale * d;
    }
    result.loss /= static_cast<double>(prediction.size());
    return result;
}

}  // namespace hawc
