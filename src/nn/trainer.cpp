#include "nn/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "nn/loss.hpp"

namespace hawc {

labelled_dataset labelled_dataset::stratified_fraction(double fraction, rng& random) const {
    HAWC_REQUIRE(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
    // Group indices by class.
    std::vector<std::vector<std::size_t>> by_class;
    for (std::size_t i = 0; i < size(); ++i) {
        const std::size_t c = labels[i];
        if (c >= by_class.size()) by_class.resize(c + 1);
        by_class[c].push_back(i);
    }

    labelled_dataset out;
    for (auto& members : by_class) {
        if (members.empty()) continue;
        // Shuffle members deterministically, keep ceil(fraction * n), min 1.
        for (std::size_t i = members.size(); i > 1; --i) {
            std::swap(members[i - 1], members[random.uniform_index(i)]);
        }
        const auto keep = std::max<std::size_t>(
            1, static_cast<std::size_t>(fraction * static_cast<double>(members.size()) + 0.5));
        for (std::size_t i = 0; i < std::min(keep, members.size()); ++i) {
            out.samples.push_back(samples[members[i]]);
            out.labels.push_back(labels[members[i]]);
        }
    }
    return out;
}

namespace {

tensor make_batch(const labelled_dataset& data, std::span<const std::size_t> indices,
                  std::vector<std::uint8_t>& batch_labels) {
    std::vector<tensor> slice;
    slice.reserve(indices.size());
    batch_labels.clear();
    for (auto i : indices) {
        slice.push_back(data.samples[i]);
        batch_labels.push_back(data.labels[i]);
    }
    return tensor::stack(slice);
}

}  // namespace

eval_metrics evaluate(sequential& model, const labelled_dataset& data, std::size_t batch_size) {
    HAWC_REQUIRE(data.size() > 0, "cannot evaluate on an empty dataset");
    eval_metrics m;
    std::vector<std::size_t> indices(data.size());
    std::iota(indices.begin(), indices.end(), 0);
    std::vector<std::uint8_t> batch_labels;

    for (std::size_t begin = 0; begin < indices.size(); begin += batch_size) {
        const std::size_t end = std::min(begin + batch_size, indices.size());
        const std::span<const std::size_t> chunk{indices.data() + begin, end - begin};
        const tensor batch = make_batch(data, chunk, batch_labels);
        const tensor logits = model.forward(batch, /*training=*/false);
        for (std::size_t n = 0; n < logits.dim(0); ++n) {
            std::size_t argmax = 0;
            for (std::size_t k = 1; k < logits.dim(1); ++k) {
                if (logits.at(n, k) > logits.at(n, argmax)) argmax = k;
            }
            const bool predicted_positive = argmax == 1;
            const bool actually_positive = batch_labels[n] == 1;
            if (predicted_positive && actually_positive) ++m.true_positive;
            if (predicted_positive && !actually_positive) ++m.false_positive;
            if (!predicted_positive && actually_positive) ++m.false_negative;
            if (!predicted_positive && !actually_positive) ++m.true_negative;
        }
    }

    const double total = static_cast<double>(data.size());
    m.accuracy = static_cast<double>(m.true_positive + m.true_negative) / total;
    const double tp = static_cast<double>(m.true_positive);
    const double fp = static_cast<double>(m.false_positive);
    const double fn = static_cast<double>(m.false_negative);
    m.precision = tp + fp > 0.0 ? tp / (tp + fp) : 0.0;
    m.recall = tp + fn > 0.0 ? tp / (tp + fn) : 0.0;
    m.f1 = m.precision + m.recall > 0.0
               ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
               : 0.0;
    return m;
}

std::vector<epoch_report> train_classifier(sequential& model, const labelled_dataset& train_in,
                                           const labelled_dataset* test,
                                           const train_config& config, rng& random,
                                           const epoch_refresh_fn& refresh) {
    HAWC_REQUIRE(train_in.size() > 0, "cannot train on an empty dataset");
    labelled_dataset refreshed;  // working copy when refresh is active
    const labelled_dataset* train_ptr = &train_in;
    if (refresh) {
        refreshed = train_in;
        train_ptr = &refreshed;
    }

    adam opt{config.adam};
    opt.attach(model.parameters());

    std::vector<std::size_t> order(train_in.size());
    std::iota(order.begin(), order.end(), 0);
    std::vector<std::uint8_t> batch_labels;
    std::vector<epoch_report> reports;

    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
        if (refresh && epoch > 0) refresh(refreshed, random);
        if (config.lr_decay_period > 0 && epoch > 0 && epoch % config.lr_decay_period == 0) {
            opt.set_learning_rate(opt.learning_rate() * config.lr_decay_factor);
        }
        const labelled_dataset& train = *train_ptr;
        // Shuffle.
        for (std::size_t i = order.size(); i > 1; --i) {
            std::swap(order[i - 1], order[random.uniform_index(i)]);
        }

        double loss_sum = 0.0;
        std::size_t correct = 0;
        std::size_t batches = 0;
        for (std::size_t begin = 0; begin < order.size(); begin += config.batch_size) {
            const std::size_t end = std::min(begin + config.batch_size, order.size());
            const std::span<const std::size_t> chunk{order.data() + begin, end - begin};
            const tensor batch = make_batch(train, chunk, batch_labels);

            const tensor logits = model.forward(batch, /*training=*/true);
            auto loss = softmax_cross_entropy(logits, batch_labels);
            model.backward(loss.grad_logits);
            opt.step();

            loss_sum += loss.loss;
            correct += loss.correct;
            ++batches;
        }

        epoch_report report;
        report.epoch = epoch;
        report.train_loss = loss_sum / static_cast<double>(std::max<std::size_t>(batches, 1));
        report.train_accuracy = static_cast<double>(correct) / static_cast<double>(train.size());
        if (test != nullptr && test->size() > 0) {
            report.test_accuracy = evaluate(model, *test).accuracy;
        }
        reports.push_back(report);
    }
    return reports;
}

}  // namespace hawc
