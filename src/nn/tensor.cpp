#include "nn/tensor.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace hawc {

namespace {

std::size_t element_count(const std::vector<std::size_t>& shape) {
    return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                           std::multiplies<std::size_t>{});
}

}  // namespace

tensor::tensor(std::vector<std::size_t> shape) : shape_{std::move(shape)} {
    HAWC_REQUIRE(!shape_.empty() && shape_.size() <= 4, "tensor rank must be 1..4");
    data_.assign(element_count(shape_), 0.0f);
}

void tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

tensor tensor::reshaped(std::vector<std::size_t> new_shape) const {
    HAWC_REQUIRE(element_count(new_shape) == size(), "reshape must preserve element count");
    tensor out{std::move(new_shape)};
    std::copy(data_.begin(), data_.end(), out.data_.begin());
    return out;
}

std::size_t tensor::sample_size() const {
    if (shape_.empty()) return 0;
    return size() / shape_[0];
}

tensor tensor::slice_sample(std::size_t n) const {
    HAWC_REQUIRE(n < batch(), "sample index out of range");
    std::vector<std::size_t> shape = shape_;
    shape[0] = 1;
    tensor out{shape};
    const std::size_t stride = sample_size();
    std::copy(data_.begin() + static_cast<std::ptrdiff_t>(n * stride),
              data_.begin() + static_cast<std::ptrdiff_t>((n + 1) * stride), out.data_.begin());
    return out;
}

tensor tensor::stack(const std::vector<tensor>& samples) {
    HAWC_REQUIRE(!samples.empty(), "cannot stack zero tensors");
    std::vector<std::size_t> shape = samples.front().shape();
    HAWC_REQUIRE(shape[0] == 1, "stack expects batch-1 samples");
    shape[0] = samples.size();
    tensor out{shape};
    const std::size_t stride = samples.front().size();
    for (std::size_t i = 0; i < samples.size(); ++i) {
        HAWC_REQUIRE(samples[i].shape() == samples.front().shape(),
                     "all stacked samples must share a shape");
        std::copy(samples[i].data_.begin(), samples[i].data_.end(),
                  out.data_.begin() + static_cast<std::ptrdiff_t>(i * stride));
    }
    return out;
}

}  // namespace hawc
