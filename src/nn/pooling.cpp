#include "nn/pooling.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace hawc {

max_pool2d::max_pool2d(std::size_t window) : window_{window} {
    HAWC_REQUIRE(window >= 1, "pool window must be at least 1");
}

std::vector<std::size_t> max_pool2d::output_shape(std::vector<std::size_t> input) const {
    HAWC_REQUIRE(input.size() == 4, "max_pool2d input must be rank 4");
    input[1] /= window_;
    input[2] /= window_;
    return input;
}

tensor max_pool2d::forward(const tensor& input, bool training) {
    cached_input_shape_ = input.shape();
    const std::size_t batch = std::max<std::size_t>(input.dim(0), 1);
    if (!training) {
        cached_argmax_.clear();
        tensor out = run(input, nullptr);
        cached_out_per_sample_ = out.size() / batch;
        return out;
    }
    tensor out = run(input, &cached_argmax_);
    cached_out_per_sample_ = out.size() / batch;
    return out;
}

tensor max_pool2d::infer(const tensor& input) const { return run(input, nullptr); }

tensor max_pool2d::run(const tensor& input, std::vector<std::size_t>* argmax) const {
    const auto out_shape = output_shape(input.shape());
    tensor out{out_shape};
    if (argmax != nullptr) argmax->assign(out.size(), 0);

    const std::size_t channels = input.dim(3);
    for (std::size_t n = 0; n < input.dim(0); ++n) {
        for (std::size_t oh = 0; oh < out_shape[1]; ++oh) {
            for (std::size_t ow = 0; ow < out_shape[2]; ++ow) {
                for (std::size_t c = 0; c < channels; ++c) {
                    float best = -std::numeric_limits<float>::infinity();
                    std::size_t best_index = 0;
                    for (std::size_t kh = 0; kh < window_; ++kh) {
                        for (std::size_t kw = 0; kw < window_; ++kw) {
                            const std::size_t ih = oh * window_ + kh;
                            const std::size_t iw = ow * window_ + kw;
                            const std::size_t flat =
                                ((n * input.dim(1) + ih) * input.dim(2) + iw) * channels + c;
                            if (input[flat] > best) {
                                best = input[flat];
                                best_index = flat;
                            }
                        }
                    }
                    const std::size_t out_flat =
                        ((n * out_shape[1] + oh) * out_shape[2] + ow) * channels + c;
                    out[out_flat] = best;
                    if (argmax != nullptr) (*argmax)[out_flat] = best_index;
                }
            }
        }
    }
    return out;
}

tensor max_pool2d::backward(const tensor& grad_output) {
    HAWC_REQUIRE(cached_argmax_.size() == grad_output.size(), "backward before training forward");
    tensor grad_input{cached_input_shape_};
    for (std::size_t i = 0; i < grad_output.size(); ++i) {
        grad_input[cached_argmax_[i]] += grad_output[i];
    }
    return grad_input;
}

layer_info max_pool2d::info() const {
    layer_info li;
    li.name = "max_pool2d(" + std::to_string(window_) + ")";
    li.kind = op_kind::pooling;
    li.activations_per_sample = cached_out_per_sample_;
    return li;
}

std::vector<std::size_t> global_max_pool::output_shape(std::vector<std::size_t> input) const {
    HAWC_REQUIRE(input.size() == 4, "global_max_pool input must be rank 4");
    input[1] = 1;
    input[2] = 1;
    return input;
}

tensor global_max_pool::forward(const tensor& input, bool training) {
    cached_input_shape_ = input.shape();
    if (!training) {
        cached_argmax_.clear();
        return run(input, nullptr);
    }
    return run(input, &cached_argmax_);
}

tensor global_max_pool::infer(const tensor& input) const { return run(input, nullptr); }

tensor global_max_pool::run(const tensor& input, std::vector<std::size_t>* argmax) const {
    const auto out_shape = output_shape(input.shape());
    tensor out{out_shape};
    if (argmax != nullptr) argmax->assign(out.size(), 0);

    const std::size_t channels = input.dim(3);
    const std::size_t spatial = input.dim(1) * input.dim(2);
    for (std::size_t n = 0; n < input.dim(0); ++n) {
        for (std::size_t c = 0; c < channels; ++c) {
            float best = -std::numeric_limits<float>::infinity();
            std::size_t best_index = 0;
            for (std::size_t s = 0; s < spatial; ++s) {
                const std::size_t flat = (n * spatial + s) * channels + c;
                if (input[flat] > best) {
                    best = input[flat];
                    best_index = flat;
                }
            }
            out[n * channels + c] = best;
            if (argmax != nullptr) (*argmax)[n * channels + c] = best_index;
        }
    }
    return out;
}

tensor global_max_pool::backward(const tensor& grad_output) {
    HAWC_REQUIRE(cached_argmax_.size() == grad_output.size(), "backward before training forward");
    tensor grad_input{cached_input_shape_};
    for (std::size_t i = 0; i < grad_output.size(); ++i) {
        grad_input[cached_argmax_[i]] += grad_output[i];
    }
    return grad_input;
}

layer_info global_max_pool::info() const {
    layer_info li;
    li.name = "global_max_pool";
    li.kind = op_kind::pooling;
    li.activations_per_sample =
        cached_input_shape_.empty() ? 0 : cached_input_shape_.back();
    return li;
}

}  // namespace hawc
