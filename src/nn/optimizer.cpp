#include "nn/optimizer.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hawc {

void optimizer::zero_grad() {
    for (auto* p : params_) p->grad.zero();
}

void adam::attach(std::vector<parameter*> params) {
    params_ = std::move(params);
    m_.clear();
    v_.clear();
    for (auto* p : params_) {
        m_.emplace_back(p->value.size(), 0.0f);
        v_.emplace_back(p->value.size(), 0.0f);
    }
    t_ = 0;
}

void adam::step() {
    HAWC_REQUIRE(!params_.empty(), "optimizer not attached");
    ++t_;
    const double b1 = config_.beta1;
    const double b2 = config_.beta2;
    const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t_));
    const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t_));
    const double lr = config_.learning_rate;

    for (std::size_t pi = 0; pi < params_.size(); ++pi) {
        parameter& p = *params_[pi];
        auto& m = m_[pi];
        auto& v = v_[pi];
        for (std::size_t i = 0; i < p.value.size(); ++i) {
            const double g = static_cast<double>(p.grad[i]);
            m[i] = static_cast<float>(b1 * static_cast<double>(m[i]) + (1.0 - b1) * g);
            v[i] = static_cast<float>(b2 * static_cast<double>(v[i]) + (1.0 - b2) * g * g);
            const double m_hat = static_cast<double>(m[i]) / bias1;
            const double v_hat = static_cast<double>(v[i]) / bias2;
            p.value[i] -=
                static_cast<float>(lr * m_hat / (std::sqrt(v_hat) + config_.epsilon));
        }
        p.grad.zero();
    }
}

void sgd::attach(std::vector<parameter*> params) {
    params_ = std::move(params);
    velocity_.clear();
    for (auto* p : params_) velocity_.emplace_back(p->value.size(), 0.0f);
}

void sgd::step() {
    HAWC_REQUIRE(!params_.empty(), "optimizer not attached");
    for (std::size_t pi = 0; pi < params_.size(); ++pi) {
        parameter& p = *params_[pi];
        auto& vel = velocity_[pi];
        for (std::size_t i = 0; i < p.value.size(); ++i) {
            vel[i] = static_cast<float>(config_.momentum * static_cast<double>(vel[i]) -
                                        config_.learning_rate * static_cast<double>(p.grad[i]));
            p.value[i] += vel[i];
        }
        p.grad.zero();
    }
}

}  // namespace hawc
