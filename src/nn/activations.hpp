#pragma once

// Elementwise activations.

#include "nn/layer.hpp"

namespace hawc {

class relu final : public layer {
public:
    tensor forward(const tensor& input, bool training) override;
    tensor infer(const tensor& input) const override;
    tensor backward(const tensor& grad_output) override;
    layer_info info() const override;
    std::vector<std::size_t> output_shape(std::vector<std::size_t> input) const override {
        return input;
    }

private:
    tensor cached_input_;  // populated only by forward(x, true)
    std::size_t cached_sample_size_ = 0;  // for info()
};

}  // namespace hawc
