#include "nn/dense.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "nn/kernels/kernels.hpp"

namespace hawc {

dense::dense(std::size_t in_features, std::size_t out_features, rng& random)
    : in_features_{in_features},
      out_features_{out_features},
      weights_{{in_features, out_features}},
      bias_{{out_features}} {
    const double std_dev = std::sqrt(2.0 / static_cast<double>(in_features));
    for (std::size_t i = 0; i < weights_.value.size(); ++i) {
        weights_.value[i] = static_cast<float>(random.normal(0.0, std_dev));
    }
}

std::vector<std::size_t> dense::output_shape(std::vector<std::size_t> input) const {
    HAWC_REQUIRE(input.size() == 2, "dense input must be rank 2 (use flatten first)");
    HAWC_REQUIRE(input[1] == in_features_, "dense feature mismatch");
    return {input[0], out_features_};
}

tensor dense::forward(const tensor& input, bool training) {
    if (training) {
        cached_input_ = input;
    } else {
        cached_input_ = tensor{};
    }
    return infer(input);
}

tensor dense::infer(const tensor& input) const {
    const auto out_shape = output_shape(input.shape());
    tensor out{out_shape};
    const std::size_t batch = input.dim(0);
    const float* w = weights_.value.data();

    // Bias-initialise every output row, then hand the whole batch to the
    // dispatched sgemm as one (batch x in_features) * (in_features x
    // out_features) accumulation. Per-element sums still run k ascending
    // with separate multiply and add (kernels.hpp contract), matching the
    // old per-row loop term for term.
    for (std::size_t n = 0; n < batch; ++n) {
        float* out_row = out.data() + n * out_features_;
        for (std::size_t o = 0; o < out_features_; ++o) out_row[o] = bias_.value[o];
    }
    kernels::active_kernels().sgemm(input.data(), in_features_, w, out_features_, out.data(),
                                    batch);
    return out;
}

tensor dense::backward(const tensor& grad_output) {
    HAWC_REQUIRE(cached_input_.size() > 0, "backward before forward");
    const std::size_t batch = cached_input_.dim(0);
    tensor grad_input{cached_input_.shape()};
    const float* w = weights_.value.data();
    float* dw = weights_.grad.data();

    for (std::size_t n = 0; n < batch; ++n) {
        const float* in_row = cached_input_.data() + n * in_features_;
        const float* g_row = grad_output.data() + n * out_features_;
        float* gi_row = grad_input.data() + n * in_features_;
        for (std::size_t o = 0; o < out_features_; ++o) bias_.grad[o] += g_row[o];
        for (std::size_t i = 0; i < in_features_; ++i) {
            const float x = in_row[i];
            const float* w_row = &w[i * out_features_];
            float* dw_row = &dw[i * out_features_];
            float acc = 0.0f;
            for (std::size_t o = 0; o < out_features_; ++o) {
                acc += w_row[o] * g_row[o];
                dw_row[o] += x * g_row[o];
            }
            gi_row[i] = acc;
        }
    }
    return grad_input;
}

layer_info dense::info() const {
    layer_info li;
    li.name = "dense(" + std::to_string(in_features_) + "->" + std::to_string(out_features_) + ")";
    li.kind = op_kind::dense;
    li.parameter_count = weights_.value.size() + bias_.value.size();
    li.macs_per_sample = in_features_ * out_features_;
    li.activations_per_sample = out_features_;
    return li;
}

tensor flatten::forward(const tensor& input, bool /*training*/) {
    cached_input_shape_ = input.shape();
    return infer(input);
}

tensor flatten::infer(const tensor& input) const {
    return input.reshaped({input.dim(0), input.sample_size()});
}

tensor flatten::backward(const tensor& grad_output) {
    HAWC_REQUIRE(!cached_input_shape_.empty(), "backward before forward");
    return grad_output.reshaped(cached_input_shape_);
}

layer_info flatten::info() const {
    layer_info li;
    li.name = "flatten";
    li.kind = op_kind::reshape;
    return li;
}

std::vector<std::size_t> flatten::output_shape(std::vector<std::size_t> input) const {
    const std::size_t features = std::accumulate(input.begin() + 1, input.end(), std::size_t{1},
                                                 std::multiplies<std::size_t>{});
    return {input[0], features};
}

}  // namespace hawc
