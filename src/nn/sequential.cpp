#include "nn/sequential.hpp"

#include <cstdint>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"

namespace hawc {

sequential& sequential::add(layer_ptr l) {
    HAWC_REQUIRE(l != nullptr, "cannot add null layer");
    layers_.push_back(std::move(l));
    return *this;
}

tensor sequential::forward(const tensor& input, bool training) {
    tensor x = input;
    for (auto& l : layers_) x = l->forward(x, training);
    return x;
}

tensor sequential::infer(const tensor& input, const telemetry_handle& telem) const {
    telemetry::scoped_span span{telem, "nn_infer"};
    tensor x = input;
    for (const auto& l : layers_) x = l->infer(x);
    if (telem.metrics != nullptr) {
        telem.metrics
            ->make_counter("hawc_nn_inferences_total", "sequential::infer forward passes")
            .add(1);
    }
    return x;
}

tensor sequential::backward(const tensor& grad_output) {
    tensor g = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
    return g;
}

tensor sequential::forward_range(const tensor& input, std::size_t begin, std::size_t end,
                                 bool training) {
    HAWC_REQUIRE(begin <= end && end <= layers_.size(), "layer range out of bounds");
    tensor x = input;
    for (std::size_t i = begin; i < end; ++i) x = layers_[i]->forward(x, training);
    return x;
}

tensor sequential::backward_range(const tensor& grad_output, std::size_t begin, std::size_t end) {
    HAWC_REQUIRE(begin <= end && end <= layers_.size(), "layer range out of bounds");
    tensor g = grad_output;
    for (std::size_t i = end; i > begin; --i) g = layers_[i - 1]->backward(g);
    return g;
}

std::vector<parameter*> sequential::parameters_range(std::size_t begin, std::size_t end) {
    HAWC_REQUIRE(begin <= end && end <= layers_.size(), "layer range out of bounds");
    std::vector<parameter*> all;
    for (std::size_t i = begin; i < end; ++i) {
        for (auto* p : layers_[i]->parameters()) all.push_back(p);
    }
    return all;
}

std::vector<parameter*> sequential::parameters() {
    std::vector<parameter*> all;
    for (auto& l : layers_) {
        for (auto* p : l->parameters()) all.push_back(p);
    }
    return all;
}

std::size_t sequential::parameter_count() const {
    std::size_t total = 0;
    for (const auto& l : layers_) total += l->info().parameter_count;
    return total;
}

std::vector<layer_info> sequential::summarize(std::vector<std::size_t> sample_shape) {
    sample_shape.insert(sample_shape.begin(), 1);  // batch of one
    tensor probe{sample_shape};
    (void)forward(probe, /*training=*/false);
    std::vector<layer_info> infos;
    infos.reserve(layers_.size());
    for (const auto& l : layers_) infos.push_back(l->info());
    return infos;
}

std::size_t sequential::macs_per_sample(std::vector<std::size_t> sample_shape) {
    std::size_t total = 0;
    for (const auto& li : summarize(std::move(sample_shape))) total += li.macs_per_sample;
    return total;
}

namespace {

constexpr std::uint32_t magic = 0x48435741;  // "AWCH"

void write_tensor(std::ostream& out, const tensor& t) {
    const auto rank = static_cast<std::uint32_t>(t.rank());
    out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
    for (std::size_t d = 0; d < t.rank(); ++d) {
        const auto dim = static_cast<std::uint64_t>(t.dim(d));
        out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
    }
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.size() * sizeof(float)));
}

void read_tensor(std::istream& in, tensor& t) {
    std::uint32_t rank = 0;
    in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
    std::vector<std::size_t> shape(rank);
    for (auto& dim : shape) {
        std::uint64_t d = 0;
        in.read(reinterpret_cast<char*>(&d), sizeof(d));
        dim = static_cast<std::size_t>(d);
    }
    if (!in) throw io_error{"truncated model stream"};
    if (shape != t.shape()) throw io_error{"model architecture mismatch on load"};
    in.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
    if (!in) throw io_error{"truncated model stream"};
}

}  // namespace

void sequential::save(std::ostream& out) const {
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    const auto layer_count = static_cast<std::uint64_t>(layers_.size());
    out.write(reinterpret_cast<const char*>(&layer_count), sizeof(layer_count));
    for (const auto& l : layers_) {
        auto* mutable_layer = const_cast<layer*>(l.get());
        for (auto* p : mutable_layer->parameters()) write_tensor(out, p->value);
        for (auto* b : mutable_layer->buffers()) write_tensor(out, *b);
    }
    if (!out) throw io_error{"model write failed"};
}

void sequential::load(std::istream& in) {
    std::uint32_t file_magic = 0;
    in.read(reinterpret_cast<char*>(&file_magic), sizeof(file_magic));
    if (!in || file_magic != magic) throw io_error{"not a hawc model stream"};
    std::uint64_t layer_count = 0;
    in.read(reinterpret_cast<char*>(&layer_count), sizeof(layer_count));
    if (layer_count != layers_.size()) throw io_error{"model layer count mismatch"};
    for (auto& l : layers_) {
        for (auto* p : l->parameters()) read_tensor(in, p->value);
        for (auto* b : l->buffers()) read_tensor(in, *b);
    }
}

}  // namespace hawc
