#pragma once

// Sequential model container: an ordered stack of layers with whole-model
// forward/backward, parameter access, summaries, and save/load.

#include <iosfwd>

#include "nn/layer.hpp"
#include "telemetry/trace.hpp"

namespace hawc {

class sequential {
public:
    sequential() = default;

    /// Append a layer (builder style).
    sequential& add(layer_ptr l);

    template <typename L, typename... Args>
    sequential& emplace(Args&&... args) {
        return add(std::make_unique<L>(std::forward<Args>(args)...));
    }

    std::size_t layer_count() const { return layers_.size(); }
    layer& layer_at(std::size_t i) { return *layers_[i]; }
    const layer& layer_at(std::size_t i) const { return *layers_[i]; }

    tensor forward(const tensor& input, bool training);
    tensor backward(const tensor& grad_output);

    /// Pure inference pass (see layer::infer): const and side-effect
    /// free, so one trained model can serve concurrent threads. An
    /// optional telemetry handle emits an "nn_infer" span and bumps the
    /// hawc_nn_inferences_total counter; the default handle is inert.
    tensor infer(const tensor& input, const telemetry_handle& telem = {}) const;

    /// Run only layers [begin, end) — used for models that train a prefix
    /// against an auxiliary head (e.g. autoencoder pretraining).
    tensor forward_range(const tensor& input, std::size_t begin, std::size_t end, bool training);
    tensor backward_range(const tensor& grad_output, std::size_t begin, std::size_t end);

    std::vector<parameter*> parameters();
    std::vector<parameter*> parameters_range(std::size_t begin, std::size_t end);
    std::size_t parameter_count() const;

    /// Per-layer info for an input of the given single-sample shape.
    /// Runs one zero-filled sample through the network in eval mode so
    /// shape-dependent MAC counts are populated.
    std::vector<layer_info> summarize(std::vector<std::size_t> sample_shape);

    /// Total forward multiply-accumulates per sample.
    std::size_t macs_per_sample(std::vector<std::size_t> sample_shape);

    /// Binary serialization of parameters and buffers (architecture must
    /// match on load; a layout fingerprint is checked).
    void save(std::ostream& out) const;
    void load(std::istream& in);

private:
    std::vector<layer_ptr> layers_;
};

}  // namespace hawc
