#include "dataset/builders.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace hawc {

namespace {

/// Pick the cluster whose xy centroid is nearest to `target`; returns
/// nullptr when none is within `max_distance`.
const point_cloud* nearest_cluster(const std::vector<point_cloud>& clusters, const vec3& target,
                                   double max_distance) {
    const point_cloud* best = nullptr;
    double best_d = max_distance;
    for (const auto& cluster : clusters) {
        const vec3 c = cluster.centroid();
        const double d = std::hypot(c.x - target.x, c.y - target.y);
        if (d < best_d) {
            best_d = d;
            best = &cluster;
        }
    }
    return best;
}

/// Stratified 80:20 split of one class's clusters.
void split_class(std::vector<point_cloud>& clusters, std::uint8_t label, double test_fraction,
                 rng& random, cluster_dataset& train, cluster_dataset& test) {
    for (std::size_t i = clusters.size(); i > 1; --i) {
        std::swap(clusters[i - 1], clusters[random.uniform_index(i)]);
    }
    const auto test_count =
        static_cast<std::size_t>(test_fraction * static_cast<double>(clusters.size()));
    for (std::size_t i = 0; i < clusters.size(); ++i) {
        if (i < test_count) {
            test.add(std::move(clusters[i]), label);
        } else {
            train.add(std::move(clusters[i]), label);
        }
    }
}

}  // namespace

single_person_dataset build_single_person_dataset(const single_person_dataset_config& config) {
    rng random{config.seed};
    single_person_dataset out;

    // --- Human captures: one pedestrian per scene. ---
    std::vector<point_cloud> human_clusters;
    std::size_t attempts = 0;
    const std::size_t max_attempts = config.human_samples * 4;
    while (human_clusters.size() < config.human_samples && attempts++ < max_attempts) {
        const scene s = make_single_person_scene(random, config.capture.walkway);
        const capture cap = run_capture(s, config.capture, random);
        const vec3 person = s.entities().front().ground_position;
        if (const auto* cluster = nearest_cluster(cap.clusters, person, 1.5)) {
            human_clusters.push_back(*cluster);
        }
    }
    HAWC_REQUIRE(human_clusters.size() >= config.human_samples / 2,
                 "too few human captures survived the pipeline; check sensor config");

    // --- Object captures: human-free scenes, every cluster is a negative. ---
    std::vector<point_cloud> object_clusters;
    attempts = 0;
    while (object_clusters.size() < config.object_samples && attempts++ < max_attempts) {
        const std::size_t objects = 2 + random.uniform_index(3);
        const scene s = make_object_scene(random, objects, config.capture.walkway);
        const capture cap = run_capture(s, config.capture, random);
        for (const auto& cluster : cap.clusters) {
            if (object_clusters.size() >= config.object_samples) break;
            object_clusters.push_back(cluster);
        }
    }
    HAWC_REQUIRE(object_clusters.size() >= config.object_samples / 2,
                 "too few object captures survived the pipeline");

    split_class(human_clusters, label_human, config.test_fraction, random, out.train, out.test);
    split_class(object_clusters, label_object, config.test_fraction, random, out.train, out.test);

    // Shuffle the interleaved training order.
    for (std::size_t i = out.train.size(); i > 1; --i) {
        const std::size_t j = random.uniform_index(i);
        std::swap(out.train.clusters[i - 1], out.train.clusters[j]);
        std::swap(out.train.labels[i - 1], out.train.labels[j]);
    }

    // Object pool and N'_max from the training split only (no leakage).
    std::vector<std::size_t> sizes;
    sizes.reserve(out.train.size());
    for (std::size_t i = 0; i < out.train.size(); ++i) {
        sizes.push_back(out.train.clusters[i].size());
        if (out.train.labels[i] == label_object) {
            out.pool.add_cloud(out.train.clusters[i]);
        }
    }
    out.target_points = compute_target_points(sizes);
    return out;
}

std::vector<crowd_sample> build_crowd_dataset(const crowd_dataset_config& config) {
    rng random{config.seed};
    const scanner sensor{config.capture.sensor};
    std::vector<crowd_sample> samples;
    samples.reserve(config.scenes);

    for (std::size_t i = 0; i < config.scenes; ++i) {
        const std::size_t people = random.uniform_index(config.max_people + 1);
        const std::size_t objects = random.uniform_index(config.max_objects + 1);
        const scene s = make_crowd_scene(random, people, objects, config.capture.walkway);
        const scan_result scan_data = sensor.scan(s.primitives(), random, config.capture.scan);

        crowd_sample sample;
        sample.raw = scan_data.to_cloud();
        sample.ground_truth = visible_human_count(s, scan_data, config.capture);
        samples.push_back(std::move(sample));
    }
    return samples;
}

density_scene build_density_scene(const density_scene_config& config,
                                  std::span<const point_cloud> human_clusters,
                                  std::span<const point_cloud> object_clusters, rng& random) {
    HAWC_REQUIRE(!human_clusters.empty(), "need donor human clusters");
    HAWC_REQUIRE(!object_clusters.empty(), "need donor object clusters");

    density_scene out;
    out.ground_truth = config.pedestrians;

    // The paper applies random x/y offsets to the single-person clouds'
    // ORIGINAL coordinates (donors sit at 12-35 m), so the composited
    // crowd spans 7-40 m from the sensor rather than collapsing onto one
    // patch — which is what keeps clusters separable at high density.
    auto place = [&](const point_cloud& donor, bool record_offset) {
        const double dx = random.uniform(-config.offset_range_m, config.offset_range_m);
        const double dy = random.uniform(-config.offset_range_m, config.offset_range_m);
        out.cloud.append(donor.translated({dx, dy, 0.0}));
        if (record_offset) {
            out.x_offsets.push_back(dx);
            out.y_offsets.push_back(dy);
        }
    };

    for (std::size_t i = 0; i < config.pedestrians; ++i) {
        place(human_clusters[random.uniform_index(human_clusters.size())], true);
    }
    // Objects proportional to pedestrians (paper: 10 objects per 20 people).
    const std::size_t objects = config.pedestrians / 2;
    for (std::size_t i = 0; i < objects; ++i) {
        place(object_clusters[random.uniform_index(object_clusters.size())], false);
    }
    return out;
}

const char* density_level_name(std::size_t pedestrians) {
    if (pedestrians < 100) return "Low";
    if (pedestrians < 200) return "Moderate";
    return "High";
}

}  // namespace hawc
