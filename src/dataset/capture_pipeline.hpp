#pragma once

// The shared scene -> clusters capture path: scan a simulated scene,
// ingest (ROI + ground removal), and cluster adaptively. Dataset builders
// and the counting pipelines both run through this.

#include "clustering/adaptive_eps.hpp"
#include "lidar/scanner.hpp"
#include "preprocess/ingest.hpp"
#include "sim/scene.hpp"

namespace hawc {

/// Everything that defines the capture geometry and processing knobs.
struct capture_config {
    sensor_config sensor{};
    walkway_config walkway{};
    roi_config roi{};
    ground_filter_config ground{};
    adaptive_eps_config clustering{};
    scan_options scan{};
    std::size_t min_cluster_points = 8;  // clusters below this are dropped

    capture_config() { roi.z_min_m = -sensor.mount_height_m; }
};

/// One processed capture.
struct capture {
    point_cloud raw;       // full scan
    point_cloud ingested;  // after ROI + ground removal
    std::vector<point_cloud> clusters;
    double chosen_eps = 0.0;
};

/// Scan `s` and run the ingestion + adaptive clustering front half of
/// HAWC-CC. Clusters smaller than min_cluster_points are discarded.
capture run_capture(const scene& s, const capture_config& config, rng& random);

/// Ingest + adaptively cluster an existing cloud (for composited scenes).
capture process_cloud(const point_cloud& raw, const capture_config& config);

/// Ground-truth count for a scan: humans with at least `min_returns`
/// registered returns inside the ROI (the paper labels counts by what is
/// visible in the capture).
std::size_t visible_human_count(const scene& s, const scan_result& scan_data,
                                const capture_config& config, std::size_t min_returns = 5);

}  // namespace hawc
