#pragma once

// Dataset builders: the synthetic stand-ins for the paper's two curated
// 15,028-sample LiDAR datasets (see DESIGN.md, substitutions). Builders
// are deterministic given a seed.

#include "dataset/capture_pipeline.hpp"
#include "features/cluster_dataset.hpp"
#include "features/upsampling.hpp"

namespace hawc {

/// ---- Single-person detection dataset (paper dataset 1) ----

struct single_person_dataset_config {
    std::size_t human_samples = 600;
    std::size_t object_samples = 600;
    double test_fraction = 0.2;          // random 80:20 split, as in the paper
    std::uint64_t seed = 42;
    capture_config capture{};
};

struct single_person_dataset {
    cluster_dataset train;
    cluster_dataset test;
    object_pool pool;             // built from TRAINING object clusters only
    std::size_t target_points = 0;  // N'_max derived from the training split
};

single_person_dataset build_single_person_dataset(const single_person_dataset_config& config);

/// ---- Crowd counting dataset (paper dataset 2) ----

struct crowd_sample {
    point_cloud raw;          // full scan of the scene
    std::size_t ground_truth = 0;
};

struct crowd_dataset_config {
    std::size_t scenes = 150;
    std::size_t max_people = 8;          // people per scene drawn in [0, max]
    std::size_t max_objects = 4;
    std::uint64_t seed = 99;
    capture_config capture{};
};

std::vector<crowd_sample> build_crowd_dataset(const crowd_dataset_config& config);

/// ---- Scalability scenes (paper Table VI / Figure 11) ----
///
/// Built the way the paper describes: single-person cluster clouds are
/// given random x/y offsets in [-5, 5] m around positions in a
/// ~100 m^2 patch of the walkway, plus object clusters at a 1:2 ratio.

struct density_scene_config {
    std::size_t pedestrians = 20;
    double offset_range_m = 5.0;
    std::uint64_t seed = 7;
};

struct density_scene {
    point_cloud cloud;              // composited capture
    std::size_t ground_truth = 0;
    std::vector<double> x_offsets;  // for the Figure 11 distributions
    std::vector<double> y_offsets;
};

/// `human_clusters` / `object_clusters` are donor clusters (e.g. from the
/// single-person dataset). The paper's density levels: <=1 person/m^2 low,
/// <2 moderate, >=2 high over the ~100 m^2 patch.
density_scene build_density_scene(const density_scene_config& config,
                                  std::span<const point_cloud> human_clusters,
                                  std::span<const point_cloud> object_clusters, rng& random);

const char* density_level_name(std::size_t pedestrians);

}  // namespace hawc
