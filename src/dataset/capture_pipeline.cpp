#include "dataset/capture_pipeline.hpp"

namespace hawc {

namespace {

capture cluster_ingested(point_cloud raw, point_cloud ingested, const capture_config& config) {
    capture cap;
    cap.raw = std::move(raw);
    cap.ingested = std::move(ingested);
    if (cap.ingested.empty()) return cap;

    const auto result = adaptive_dbscan(cap.ingested, config.clustering);
    cap.chosen_eps = result.chosen_eps;
    for (auto& cluster : result.clusters.extract_clusters(cap.ingested)) {
        if (cluster.size() >= config.min_cluster_points) {
            cap.clusters.push_back(std::move(cluster));
        }
    }
    return cap;
}

}  // namespace

capture run_capture(const scene& s, const capture_config& config, rng& random) {
    const scanner sensor{config.sensor};
    const scan_result scan_data = sensor.scan(s.primitives(), random, config.scan);
    point_cloud raw = scan_data.to_cloud();
    point_cloud ingested = ingest(raw, config.roi, config.ground);
    return cluster_ingested(std::move(raw), std::move(ingested), config);
}

capture process_cloud(const point_cloud& raw, const capture_config& config) {
    return cluster_ingested(raw, ingest(raw, config.roi, config.ground), config);
}

std::size_t visible_human_count(const scene& s, const scan_result& scan_data,
                                const capture_config& config, std::size_t min_returns) {
    std::size_t count = 0;
    for (const auto& entity : s.entities()) {
        if (entity.kind != entity_kind::human) continue;
        std::size_t returns = 0;
        for (const auto& ret : scan_data.returns) {
            if (ret.entity_id != entity.id) continue;
            const auto& p = ret.position;
            if (p.x >= config.roi.x_min_m && p.x <= config.roi.x_max_m &&
                p.y >= config.roi.y_min_m && p.y <= config.roi.y_max_m &&
                p.z >= config.ground.z_min_m) {
                ++returns;
            }
        }
        if (returns >= min_returns) ++count;
    }
    return count;
}

}  // namespace hawc
