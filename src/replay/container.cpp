#include "replay/container.hpp"

#include <algorithm>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "replay/codec.hpp"
#include "replay/corpus_set.hpp"

namespace hawc::replay {

namespace {

constexpr std::uint64_t header_size = 8;   // magic + version + flags
constexpr std::uint64_t footer_size = 28;  // index offset + size + checksum + magic

void write_header(std::ostream& out) {
    const std::uint32_t magic = container_magic;
    const std::uint16_t version = container_version;
    const std::uint16_t flags = 0;
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.write(reinterpret_cast<const char*>(&flags), sizeof(flags));
    if (!out) throw io_error{"container: header write failed"};
}

}  // namespace

// ---- writer --------------------------------------------------------------

container_writer::container_writer(std::ostream& out, container_kind kind, std::string title,
                                   container_options options)
    : out_{out}, kind_{kind}, title_{std::move(title)}, options_{options} {
    HAWC_REQUIRE(options_.frames_per_chunk > 0, "frames_per_chunk must be positive");
    write_header(out_);
    offset_ = header_size;
}

std::uint32_t container_writer::add_stream(std::string pole_id, std::string name,
                                           std::uint64_t base_seed) {
    HAWC_REQUIRE(!finalized_, "container already finalized");
    container_stream_info info;
    info.pole_id = std::move(pole_id);
    info.name = std::move(name);
    info.base_seed = base_seed;
    streams_.push_back(std::move(info));
    open_.emplace_back();
    return static_cast<std::uint32_t>(streams_.size() - 1);
}

void container_writer::append(std::uint32_t stream, const frame_record& frame) {
    HAWC_REQUIRE(!finalized_, "container already finalized");
    HAWC_REQUIRE(stream < streams_.size(), "unknown container stream");
    open_chunk& chunk = open_[stream];
    write_frame_record(chunk.frames, frame);
    ++chunk.frame_count;
    ++streams_[stream].frame_count;
    ++frames_appended_;
    if (chunk.frame_count >= options_.frames_per_chunk ||
        chunk.frames.bytes().size() >= container_max_chunk_bytes / 2) {
        flush_chunk(stream);
    }
}

void container_writer::flush_chunk(std::uint32_t stream) {
    open_chunk& chunk = open_[stream];
    if (chunk.frame_count == 0) return;
    const std::vector<char>& raw = chunk.frames.bytes();

    chunk_entry entry;
    entry.stream = stream;
    entry.file_offset = offset_;
    entry.uncompressed_size = raw.size();
    entry.first_frame = chunk.first_frame;
    entry.frame_count = chunk.frame_count;

    const char* stored = raw.data();
    std::size_t stored_size = raw.size();
    if (options_.compress) {
        lz_compress_into(raw.data(), raw.size(), scratch_);
        if (scratch_.size() < raw.size()) {
            entry.codec = chunk_codec::lz;
            stored = scratch_.data();
            stored_size = scratch_.size();
        }
    }
    entry.stored_size = stored_size;
    entry.checksum = fnv1a64(stored, stored_size);
    out_.write(stored, static_cast<std::streamsize>(stored_size));
    if (!out_) throw io_error{"container: chunk write failed"};

    offset_ += stored_size;
    chunks_.push_back(entry);
    chunk.frames = byte_writer{};
    chunk.first_frame += chunk.frame_count;
    chunk.frame_count = 0;
}

std::uint64_t container_writer::bytes_buffered() const {
    std::uint64_t total = 0;
    for (const open_chunk& chunk : open_) total += chunk.frames.bytes().size();
    return total;
}

void container_writer::finalize() {
    HAWC_REQUIRE(!finalized_, "container already finalized");
    for (std::uint32_t s = 0; s < open_.size(); ++s) flush_chunk(s);

    byte_writer index;
    index.u8(static_cast<std::uint8_t>(kind_));
    index.str(title_);
    index.u32(static_cast<std::uint32_t>(options_.frames_per_chunk));
    index.u32(static_cast<std::uint32_t>(streams_.size()));
    for (const container_stream_info& info : streams_) {
        index.str(info.pole_id);
        index.str(info.name);
        index.u64(info.base_seed);
        index.u64(info.frame_count);
    }
    index.u32(static_cast<std::uint32_t>(chunks_.size()));
    for (const chunk_entry& entry : chunks_) {
        index.u32(entry.stream);
        index.u64(entry.file_offset);
        index.u64(entry.stored_size);
        index.u64(entry.uncompressed_size);
        index.u64(entry.first_frame);
        index.u32(entry.frame_count);
        index.u8(static_cast<std::uint8_t>(entry.codec));
        index.u64(entry.checksum);
    }

    const std::uint64_t index_offset = offset_;
    const auto index_size = static_cast<std::uint64_t>(index.bytes().size());
    const std::uint64_t index_checksum = fnv1a64(index.bytes().data(), index.bytes().size());
    const std::uint32_t magic = container_magic;
    out_.write(index.bytes().data(), static_cast<std::streamsize>(index.bytes().size()));
    out_.write(reinterpret_cast<const char*>(&index_offset), sizeof(index_offset));
    out_.write(reinterpret_cast<const char*>(&index_size), sizeof(index_size));
    out_.write(reinterpret_cast<const char*>(&index_checksum), sizeof(index_checksum));
    out_.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    if (!out_) throw io_error{"container: index write failed"};
    finalized_ = true;
}

// ---- reader --------------------------------------------------------------

container_reader::container_reader(std::istream& in, container_reader_options options)
    : in_{&in}, options_{options} {
    HAWC_REQUIRE(options_.cached_chunks > 0, "chunk cache needs at least one slot");
    open_and_validate();
}

container_reader::container_reader(const std::filesystem::path& path,
                                   container_reader_options options)
    : owned_{path, std::ios::binary}, in_{&owned_}, options_{options} {
    HAWC_REQUIRE(options_.cached_chunks > 0, "chunk cache needs at least one slot");
    if (!owned_) throw io_error{"cannot open " + path.string()};
    open_and_validate();
}

void container_reader::open_and_validate() {
    std::istream& in = *in_;
    in.clear();
    in.seekg(0, std::ios::end);
    const std::streamoff end = in.tellg();
    if (!in || end < 0) throw io_error{"container: not seekable"};
    const auto file_size = static_cast<std::uint64_t>(end);
    if (file_size < header_size + footer_size) {
        throw io_error{"container: file too small for header and footer"};
    }

    // Header.
    std::uint32_t magic = 0;
    std::uint16_t version = 0;
    std::uint16_t flags = 0;
    in.seekg(0, std::ios::beg);
    in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char*>(&version), sizeof(version));
    in.read(reinterpret_cast<char*>(&flags), sizeof(flags));
    if (!in) throw io_error{"container: truncated header"};
    if (magic != container_magic) throw io_error{"container: bad magic"};
    if (version == 0 || version > container_version) {
        throw io_error{"container: unsupported format version " + std::to_string(version)};
    }
    if (flags != 0) throw io_error{"container: unknown header flag bits"};

    // Footer.
    std::uint64_t index_offset = 0;
    std::uint64_t index_size = 0;
    std::uint64_t index_checksum = 0;
    std::uint32_t trailing_magic = 0;
    in.seekg(static_cast<std::streamoff>(file_size - footer_size), std::ios::beg);
    in.read(reinterpret_cast<char*>(&index_offset), sizeof(index_offset));
    in.read(reinterpret_cast<char*>(&index_size), sizeof(index_size));
    in.read(reinterpret_cast<char*>(&index_checksum), sizeof(index_checksum));
    in.read(reinterpret_cast<char*>(&trailing_magic), sizeof(trailing_magic));
    if (!in) throw io_error{"container: truncated footer"};
    if (trailing_magic != container_magic) throw io_error{"container: bad footer magic"};
    // The index must fill the gap between the chunk region and the footer
    // exactly — a tampered offset or size cannot pass this and the
    // checksum together.
    if (index_offset < header_size || index_size > file_size ||
        index_offset + index_size != file_size - footer_size) {
        throw io_error{"container: footer index bounds are inconsistent"};
    }

    std::vector<char> index_bytes(static_cast<std::size_t>(index_size));
    in.seekg(static_cast<std::streamoff>(index_offset), std::ios::beg);
    in.read(index_bytes.data(), static_cast<std::streamsize>(index_bytes.size()));
    if (!in || static_cast<std::uint64_t>(in.gcount()) != index_size) {
        throw io_error{"container: truncated index"};
    }
    if (fnv1a64(index_bytes.data(), index_bytes.size()) != index_checksum) {
        throw io_error{"container: index checksum mismatch"};
    }

    byte_reader index{index_bytes};
    const std::uint8_t kind = index.u8();
    if (kind > static_cast<std::uint8_t>(container_kind::corpus_set)) {
        throw io_error{"container: unknown container kind"};
    }
    kind_ = static_cast<container_kind>(kind);
    title_ = index.str();
    const std::uint32_t frames_per_chunk = index.u32();
    if (frames_per_chunk == 0) throw io_error{"container: zero frames_per_chunk"};

    const std::uint32_t stream_count = index.u32();
    if (stream_count > index_size) throw io_error{"container: implausible stream count"};
    streams_.clear();
    streams_.reserve(stream_count);
    for (std::uint32_t s = 0; s < stream_count; ++s) {
        container_stream_info info;
        info.pole_id = index.str();
        info.name = index.str();
        info.base_seed = index.u64();
        info.frame_count = index.u64();
        streams_.push_back(std::move(info));
    }

    const std::uint32_t chunk_count = index.u32();
    if (chunk_count > index_size) throw io_error{"container: implausible chunk count"};
    chunks_.clear();
    chunks_.reserve(chunk_count);
    stream_chunks_.assign(streams_.size(), {});
    // Chunks are validated structurally as they parse: offsets must lie in
    // the chunk region, sizes under the decode cap, and each stream's
    // chunks must tile [0, frame_count) contiguously in file order.
    std::vector<std::uint64_t> next_frame(streams_.size(), 0);
    for (std::uint32_t c = 0; c < chunk_count; ++c) {
        chunk_entry entry;
        entry.stream = index.u32();
        entry.file_offset = index.u64();
        entry.stored_size = index.u64();
        entry.uncompressed_size = index.u64();
        entry.first_frame = index.u64();
        entry.frame_count = index.u32();
        const std::uint8_t codec = index.u8();
        entry.checksum = index.u64();
        if (entry.stream >= streams_.size()) {
            throw io_error{"container: chunk references an unknown stream"};
        }
        if (codec > static_cast<std::uint8_t>(chunk_codec::lz)) {
            throw io_error{"container: unknown chunk codec"};
        }
        entry.codec = static_cast<chunk_codec>(codec);
        if (entry.file_offset < header_size || entry.stored_size > index_offset ||
            entry.file_offset + entry.stored_size > index_offset) {
            throw io_error{"container: chunk bytes outside the chunk region"};
        }
        if (entry.uncompressed_size > container_max_chunk_bytes ||
            entry.stored_size > container_max_chunk_bytes) {
            throw io_error{"container: chunk exceeds the decode cap"};
        }
        if (entry.codec == chunk_codec::raw &&
            entry.stored_size != entry.uncompressed_size) {
            throw io_error{"container: raw chunk with inconsistent sizes"};
        }
        if (entry.frame_count == 0) throw io_error{"container: empty chunk"};
        if (entry.first_frame != next_frame[entry.stream]) {
            throw io_error{"container: chunk frame ranges are not contiguous"};
        }
        next_frame[entry.stream] = entry.first_frame + entry.frame_count;
        stream_chunks_[entry.stream].push_back(chunks_.size());
        chunks_.push_back(entry);
    }
    for (std::size_t s = 0; s < streams_.size(); ++s) {
        if (next_frame[s] != streams_[s].frame_count) {
            throw io_error{"container: stream frame count disagrees with its chunks"};
        }
    }
    index.expect_exhausted("container index");
}

const container_stream_info& container_reader::stream(std::uint32_t s) const {
    HAWC_REQUIRE(s < streams_.size(), "unknown container stream");
    return streams_[s];
}

void container_reader::set_cache_capacity(std::size_t chunks) {
    HAWC_REQUIRE(chunks > 0, "chunk cache needs at least one slot");
    options_.cached_chunks = chunks;
    while (cache_.size() > options_.cached_chunks) cache_.pop_back();
}

const frame_record& container_reader::frame(std::uint32_t s, std::uint64_t index) {
    const container_stream_info& info = stream(s);
    if (index >= info.frame_count) {
        throw io_error{"container: frame " + std::to_string(index) + " out of range for '" +
                       info.name + "' (" + std::to_string(info.frame_count) + " frames)"};
    }
    // Binary search the stream's chunk list for the one covering `index`.
    const std::vector<std::size_t>& owned = stream_chunks_[s];
    auto it = std::upper_bound(owned.begin(), owned.end(), index,
                               [this](std::uint64_t frame_idx, std::size_t entry) {
                                   return frame_idx < chunks_[entry].first_frame;
                               });
    HAWC_REQUIRE(it != owned.begin(), "container index invariant violated");
    const std::size_t entry = *(it - 1);
    const cached_chunk& chunk = load_chunk(entry);
    return chunk.frames[static_cast<std::size_t>(index - chunks_[entry].first_frame)];
}

const container_reader::cached_chunk& container_reader::load_chunk(std::size_t entry) {
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
        if (it->entry == entry) {
            cache_.splice(cache_.begin(), cache_, it);  // mark most recent
            return cache_.front();
        }
    }
    const chunk_entry& meta = chunks_[entry];
    std::istream& in = *in_;
    in.clear();
    std::vector<char> stored(static_cast<std::size_t>(meta.stored_size));
    in.seekg(static_cast<std::streamoff>(meta.file_offset), std::ios::beg);
    in.read(stored.data(), static_cast<std::streamsize>(stored.size()));
    if (!in || static_cast<std::uint64_t>(in.gcount()) != meta.stored_size) {
        throw io_error{"container: truncated chunk"};
    }
    if (fnv1a64(stored.data(), stored.size()) != meta.checksum) {
        throw io_error{"container: chunk checksum mismatch (corrupted chunk)"};
    }

    std::vector<char> raw;
    if (meta.codec == chunk_codec::lz) {
        raw = lz_decompress(stored.data(), stored.size(),
                            static_cast<std::size_t>(meta.uncompressed_size));
    } else {
        raw = std::move(stored);
    }

    cached_chunk chunk;
    chunk.entry = entry;
    chunk.frames.reserve(meta.frame_count);
    byte_reader frames{raw};
    for (std::uint32_t f = 0; f < meta.frame_count; ++f) {
        chunk.frames.push_back(read_frame_record(frames));
    }
    frames.expect_exhausted("container chunk");
    ++chunks_decoded_;

    cache_.push_front(std::move(chunk));
    while (cache_.size() > options_.cached_chunks) cache_.pop_back();
    return cache_.front();
}

// ---- convenience wrappers ------------------------------------------------

void pack_corpus(std::ostream& out, const frame_corpus& corpus, container_options options) {
    container_writer writer{out, container_kind::corpus, corpus.name, options};
    const std::uint32_t stream = writer.add_stream("", corpus.name, corpus.base_seed);
    for (const frame_record& frame : corpus.frames) writer.append(stream, frame);
    writer.finalize();
}

void pack_corpus_file(const std::filesystem::path& path, const frame_corpus& corpus,
                      container_options options) {
    std::ofstream out{path, std::ios::binary};
    if (!out) throw io_error{"cannot open " + path.string() + " for writing"};
    pack_corpus(out, corpus, options);
    if (!out) throw io_error{"failed writing " + path.string()};
}

void pack_corpus_set(std::ostream& out, const pole_corpus_set& set,
                     container_options options) {
    container_writer writer{out, container_kind::corpus_set, set.name, options};
    for (const pole_corpus& pole : set.poles) {
        writer.add_stream(pole.pole_id, pole.corpus.name, pole.corpus.base_seed);
    }
    // Interleave pole frames in tick order — the layout a streaming fleet
    // replay reads — instead of pole-after-pole.
    std::size_t longest = 0;
    for (const pole_corpus& pole : set.poles) longest = std::max(longest, pole.corpus.size());
    for (std::size_t frame = 0; frame < longest; ++frame) {
        for (std::uint32_t s = 0; s < set.poles.size(); ++s) {
            const frame_corpus& corpus = set.poles[s].corpus;
            if (frame < corpus.size()) writer.append(s, corpus.frames[frame]);
        }
    }
    writer.finalize();
}

void pack_corpus_set_file(const std::filesystem::path& path, const pole_corpus_set& set,
                          container_options options) {
    std::ofstream out{path, std::ios::binary};
    if (!out) throw io_error{"cannot open " + path.string() + " for writing"};
    pack_corpus_set(out, set, options);
    if (!out) throw io_error{"failed writing " + path.string()};
}

frame_corpus unpack_corpus(container_reader& reader, std::uint32_t stream) {
    const container_stream_info& info = reader.stream(stream);
    frame_corpus corpus;
    corpus.name = info.name;
    corpus.base_seed = info.base_seed;
    corpus.frames.reserve(static_cast<std::size_t>(info.frame_count));
    for (std::uint64_t i = 0; i < info.frame_count; ++i) {
        corpus.frames.push_back(reader.frame(stream, i));
    }
    return corpus;
}

frame_corpus unpack_corpus_file(const std::filesystem::path& path) {
    container_reader reader{path};
    if (reader.kind() != container_kind::corpus) {
        throw io_error{path.string() + " is not a single-corpus container"};
    }
    return unpack_corpus(reader, 0);
}

pole_corpus_set unpack_corpus_set(container_reader& reader) {
    if (reader.kind() != container_kind::corpus_set) {
        throw io_error{"container is not a pole corpus set"};
    }
    pole_corpus_set set;
    set.name = reader.title();
    set.poles.reserve(reader.stream_count());
    for (std::uint32_t s = 0; s < reader.stream_count(); ++s) {
        pole_corpus pole;
        pole.pole_id = reader.stream(s).pole_id;
        pole.corpus = unpack_corpus(reader, s);
        set.poles.push_back(std::move(pole));
    }
    return set;
}

pole_corpus_set unpack_corpus_set_file(const std::filesystem::path& path) {
    container_reader reader{path};
    return unpack_corpus_set(reader);
}

}  // namespace hawc::replay
