#include "replay/frame_format.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "replay/binary_io.hpp"

namespace hawc::replay {

std::size_t frame_corpus::total_points() const {
    std::size_t total = 0;
    for (const auto& f : frames) total += f.cloud.size();
    return total;
}

point_cloud round_to_recorded(const point_cloud& cloud) {
    point_cloud rounded;
    rounded.reserve(cloud.size());
    for (const auto& p : cloud) {
        rounded.push_back({static_cast<double>(static_cast<float>(p.x)),
                           static_cast<double>(static_cast<float>(p.y)),
                           static_cast<double>(static_cast<float>(p.z))});
    }
    return rounded;
}

void write_frame_record(byte_writer& out, const frame_record& frame) {
    out.u32(frame.ground_truth);
    out.u64(static_cast<std::uint64_t>(frame.cloud.size()));
    for (const auto& p : frame.cloud) {
        out.f32(static_cast<float>(p.x));
        out.f32(static_cast<float>(p.y));
        out.f32(static_cast<float>(p.z));
    }
}

frame_record read_frame_record(byte_reader& in) {
    frame_record frame;
    frame.ground_truth = in.u32();
    const std::uint64_t point_count = in.u64();
    if (point_count > in.remaining() / 12) {  // 3 x f32 per point
        throw io_error{"frame record: implausible point count"};
    }
    frame.cloud.reserve(static_cast<std::size_t>(point_count));
    for (std::uint64_t i = 0; i < point_count; ++i) {
        const double x = in.f32();
        const double y = in.f32();
        const double z = in.f32();
        frame.cloud.push_back({x, y, z});
    }
    return frame;
}

void save_corpus(std::ostream& out, const frame_corpus& corpus) {
    byte_writer payload;
    payload.str(corpus.name);
    payload.u64(corpus.base_seed);
    payload.u64(static_cast<std::uint64_t>(corpus.frames.size()));
    for (const auto& frame : corpus.frames) write_frame_record(payload, frame);
    write_envelope(out, frame_corpus_magic, frame_corpus_version, payload);
}

frame_corpus load_corpus(std::istream& in) {
    const envelope env = read_envelope(in, frame_corpus_magic, frame_corpus_version,
                                       "frame corpus");
    byte_reader reader{env.payload};
    frame_corpus corpus;
    corpus.name = reader.str();
    corpus.base_seed = reader.u64();
    const std::uint64_t frame_count = reader.u64();
    // Each frame needs at least its 12-byte fixed header; anything larger
    // cannot fit in the checksummed payload we just validated.
    if (frame_count > env.payload.size()) {
        throw io_error{"frame corpus: implausible frame count"};
    }
    corpus.frames.reserve(static_cast<std::size_t>(frame_count));
    for (std::uint64_t f = 0; f < frame_count; ++f) {
        corpus.frames.push_back(read_frame_record(reader));
    }
    reader.expect_exhausted("frame corpus");
    return corpus;
}

void save_corpus_file(const std::filesystem::path& path, const frame_corpus& corpus) {
    std::ofstream out{path, std::ios::binary};
    if (!out) throw io_error{"cannot open " + path.string() + " for writing"};
    save_corpus(out, corpus);
}

frame_corpus load_corpus_file(const std::filesystem::path& path) {
    std::ifstream in{path, std::ios::binary};
    if (!in) throw io_error{"cannot open " + path.string()};
    return load_corpus(in);
}

}  // namespace hawc::replay
