#include "replay/parity_checker.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/thread_pool.hpp"
#include "dataset/capture_pipeline.hpp"
#include "replay/replay_driver.hpp"

namespace hawc::replay {

namespace {

const char* status_name(frame_status s) {
    switch (s) {
        case frame_status::ok: return "ok";
        case frame_status::degraded: return "degraded";
        case frame_status::dropped: return "dropped";
    }
    return "?";
}

/// Doubles compared as bit patterns: parity means the two sides computed
/// the very same value, not merely nearby ones.
bool bits_equal(double a, double b) {
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

/// Parity replays must be wall-clock-free: a deadline firing on one side
/// but not the other would read as divergence.
supervisor_config without_deadlines(supervisor_config config) {
    config.eps_selection_deadline_ms = 0.0;
    config.classification_deadline_ms = 0.0;
    config.frame_deadline_ms = 0.0;
    return config;
}

/// The per-frame outcome fields a deterministic pair must reproduce
/// bit-exactly (timings excluded, obviously).
struct frame_digest {
    std::size_t count;
    std::size_t cluster_count;
    frame_status status;
    bool used_fixed_eps;
    double chosen_eps;
};

frame_digest digest(const frame_report& report) {
    return {report.count, report.cluster_count, report.status, report.used_fixed_eps,
            report.chosen_eps};
}

void diff_digests(parity_report& out, std::size_t frame, const frame_digest& a,
                  const frame_digest& b) {
    auto add = [&](const char* stage, const std::string& detail) {
        out.divergences.push_back({frame, stage, detail});
    };
    if (a.count != b.count) {
        add("count", "count " + std::to_string(a.count) + " vs " + std::to_string(b.count));
    }
    if (a.cluster_count != b.cluster_count) {
        add("clusters", "cluster_count " + std::to_string(a.cluster_count) + " vs " +
                            std::to_string(b.cluster_count));
    }
    if (a.status != b.status) {
        add("status",
            std::string{"status "} + status_name(a.status) + " vs " + status_name(b.status));
    }
    if (a.used_fixed_eps != b.used_fixed_eps || !bits_equal(a.chosen_eps, b.chosen_eps)) {
        std::ostringstream detail;
        detail << "eps " << a.chosen_eps << (a.used_fixed_eps ? " (fixed)" : "") << " vs "
               << b.chosen_eps << (b.used_fixed_eps ? " (fixed)" : "");
        add("eps", detail.str());
    }
}

std::string metric_slug(const std::string& pair_name) {
    std::string slug = pair_name;
    for (char& c : slug) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        if (!ok) c = '_';
    }
    return slug;
}

/// Publish a finished report into the registry: aggregate counters for
/// scrapes plus a per-pair divergence counter so one regressing pair is
/// identifiable without log access.
void publish(telemetry::metrics_registry* metrics, const parity_report& report) {
    if (metrics == nullptr) return;
    metrics
        ->make_counter("hawc_parity_frames_compared_total",
                       "frames (or clusters) compared across all parity pairs")
        .add(report.comparisons);
    metrics
        ->make_counter("hawc_parity_divergences_total",
                       "implementation divergences across all parity pairs")
        .add(report.divergences.size());
    metrics
        ->make_counter("hawc_parity_" + metric_slug(report.pair_name) + "_divergences_total",
                       "divergences for pair " + report.pair_name)
        .add(report.divergences.size());
    if (report.max_logit_delta > 0.0) {
        metrics
            ->make_gauge("hawc_parity_" + metric_slug(report.pair_name) + "_max_logit_delta",
                         "largest |fp32 - int8| logit delta for pair " + report.pair_name)
            .set(report.max_logit_delta);
    }
}

std::vector<frame_digest> replay_digests(const frame_corpus& corpus,
                                         const supervisor_config& config,
                                         const human_classifier& classifier) {
    frame_supervisor supervisor{config, classifier};
    const replay_result run = replay_corpus(supervisor, corpus);
    std::vector<frame_digest> digests;
    digests.reserve(run.reports.size());
    for (const frame_report& report : run.reports) digests.push_back(digest(report));
    return digests;
}

}  // namespace

std::string parity_report::summary() const {
    std::ostringstream out;
    out << pair_name << ": " << comparisons << " comparisons over " << frames << " frames, "
        << divergences.size() << " divergence" << (divergences.size() == 1 ? "" : "s");
    if (max_logit_delta > 0.0) out << ", max logit delta " << max_logit_delta;
    if (near_tie_flips > 0) out << ", " << near_tie_flips << " near-tie label flips (excused)";
    if (!divergences.empty()) {
        constexpr std::size_t shown = 5;
        for (std::size_t i = 0; i < std::min(shown, divergences.size()); ++i) {
            out << "\n  frame " << divergences[i].frame << " [" << divergences[i].stage
                << "] " << divergences[i].detail;
        }
        if (divergences.size() > shown) {
            out << "\n  ... " << (divergences.size() - shown) << " more";
        }
    }
    return out.str();
}

parity_report check_count_parity(const std::string& pair_name, const frame_corpus& corpus,
                                 const supervisor_config& config,
                                 const human_classifier& reference,
                                 const human_classifier& candidate,
                                 telemetry::metrics_registry* metrics) {
    parity_report report;
    report.pair_name = pair_name;
    report.frames = corpus.size();
    report.comparisons = corpus.size();

    const supervisor_config timeless = without_deadlines(config);
    const std::vector<frame_digest> ref = replay_digests(corpus, timeless, reference);
    const std::vector<frame_digest> cand = replay_digests(corpus, timeless, candidate);
    for (std::size_t i = 0; i < corpus.size(); ++i) diff_digests(report, i, ref[i], cand[i]);
    publish(metrics, report);
    return report;
}

parity_report check_thread_parity(const frame_corpus& corpus, const supervisor_config& config,
                                  const human_classifier& classifier,
                                  const parity_config& parity,
                                  telemetry::metrics_registry* metrics) {
    parity_report report;
    report.pair_name = "threads";
    report.frames = corpus.size();

    const supervisor_config timeless = without_deadlines(config);
    const std::size_t previous = global_pool().thread_count();
    std::vector<frame_digest> reference;
    for (std::size_t ti = 0; ti < parity.thread_counts.size(); ++ti) {
        set_global_thread_count(parity.thread_counts[ti]);
        std::vector<frame_digest> digests = replay_digests(corpus, timeless, classifier);
        if (ti == 0) {
            report.pair_name = "threads_" + std::to_string(parity.thread_counts[0]) + "_ref";
            reference = std::move(digests);
            continue;
        }
        report.pair_name += "_vs_" + std::to_string(parity.thread_counts[ti]);
        report.comparisons += corpus.size();
        const std::size_t before = report.divergences.size();
        for (std::size_t i = 0; i < corpus.size(); ++i) {
            diff_digests(report, i, reference[i], digests[i]);
        }
        for (std::size_t d = before; d < report.divergences.size(); ++d) {
            report.divergences[d].detail +=
                " (at " + std::to_string(parity.thread_counts[ti]) + " threads)";
        }
    }
    set_global_thread_count(previous);
    publish(metrics, report);
    return report;
}

parity_report check_logit_parity(const frame_corpus& corpus, const capture_config& config,
                                 const cnn_feature_extractor& extractor,
                                 const sequential& fp32, const quantized_model& int8,
                                 const parity_config& parity,
                                 telemetry::metrics_registry* metrics) {
    parity_report report;
    report.pair_name = "fp32_vs_int8_logits";
    report.frames = corpus.size();

    for (std::size_t i = 0; i < corpus.size(); ++i) {
        const capture cap = process_cloud(corpus.frames[i].cloud, config);
        // One rng stream per frame, forked per cluster exactly as the
        // counting stage does, so both models featurize the very same
        // tensor for each cluster.
        rng frame_rng{frame_seed(corpus.base_seed, i)};
        for (const point_cloud& cluster : cap.clusters) {
            rng cluster_rng = frame_rng.fork();
            const tensor features = extractor.extract(cluster, cluster_rng);
            const tensor fp_logits = fp32.infer(features);
            const tensor q_logits = int8.forward(features);
            ++report.comparisons;

            if (fp_logits.size() != q_logits.size()) {
                report.divergences.push_back(
                    {i, "logit",
                     "logit count " + std::to_string(fp_logits.size()) + " vs " +
                         std::to_string(q_logits.size())});
                continue;
            }
            std::size_t fp_arg = 0;
            std::size_t q_arg = 0;
            for (std::size_t k = 1; k < fp_logits.size(); ++k) {
                if (fp_logits[k] > fp_logits[fp_arg]) fp_arg = k;
                if (q_logits[k] > q_logits[q_arg]) q_arg = k;
            }
            if (fp_arg != q_arg) {
                // fp32's decisiveness: winning logit minus the runner-up.
                double runner_up = -std::numeric_limits<double>::infinity();
                for (std::size_t k = 0; k < fp_logits.size(); ++k) {
                    if (k != fp_arg) runner_up = std::max(runner_up, double{fp_logits[k]});
                }
                const double margin = double{fp_logits[fp_arg]} - runner_up;
                if (margin <= parity.label_margin_tolerance) {
                    ++report.near_tie_flips;
                } else {
                    std::ostringstream detail;
                    detail << "label " << fp_arg << " vs " << q_arg << " (fp32 margin "
                           << margin << "; fp32 logits";
                    for (std::size_t k = 0; k < fp_logits.size(); ++k) {
                        detail << ' ' << fp_logits[k];
                    }
                    detail << "; int8 logits";
                    for (std::size_t k = 0; k < q_logits.size(); ++k) detail << ' ' << q_logits[k];
                    detail << ')';
                    report.divergences.push_back({i, "label", detail.str()});
                }
            }
            for (std::size_t k = 0; k < fp_logits.size(); ++k) {
                const double delta = std::abs(double{fp_logits[k]} - double{q_logits[k]});
                report.max_logit_delta = std::max(report.max_logit_delta, delta);
                const double budget = parity.logit_abs_tolerance +
                                      parity.logit_rel_tolerance * std::abs(double{fp_logits[k]});
                if (delta > budget) {
                    std::ostringstream detail;
                    detail << "logit[" << k << "] " << fp_logits[k] << " vs " << q_logits[k]
                           << " (delta " << delta << " > budget " << budget << ')';
                    report.divergences.push_back({i, "logit", detail.str()});
                }
            }
        }
    }
    publish(metrics, report);
    return report;
}

parity_report check_ladder_divergence(const frame_corpus& corpus, const capture_config& config,
                                      const human_classifier& classifier, double fixed_eps,
                                      const parity_config& parity,
                                      telemetry::metrics_registry* metrics) {
    parity_report report;
    report.pair_name = "adaptive_vs_fixed_eps";
    report.frames = corpus.size();
    report.comparisons = corpus.size();

    const crowd_counter adaptive{config, classifier};
    crowd_counter fixed{config, classifier};
    fixed.set_clusterer(make_fixed_eps_clusterer(fixed_eps, config));

    for (std::size_t i = 0; i < corpus.size(); ++i) {
        rng adaptive_rng{frame_seed(corpus.base_seed, i)};
        rng fixed_rng{frame_seed(corpus.base_seed, i)};
        const count_result a = adaptive.count(corpus.frames[i].cloud, adaptive_rng);
        const count_result f = fixed.count(corpus.frames[i].cloud, fixed_rng);
        const std::size_t delta = a.count > f.count ? a.count - f.count : f.count - a.count;
        if (delta > parity.ladder_max_count_delta) {
            report.divergences.push_back(
                {i, "ladder",
                 "adaptive count " + std::to_string(a.count) + " vs fixed-eps " +
                     std::to_string(f.count) + " (delta " + std::to_string(delta) +
                     " > budget " + std::to_string(parity.ladder_max_count_delta) + ")"});
        }
    }
    publish(metrics, report);
    return report;
}

}  // namespace hawc::replay
