#include "replay/corpus_set.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "replay/binary_io.hpp"

namespace hawc::replay {

std::size_t pole_corpus_set::total_frames() const {
    std::size_t total = 0;
    for (const auto& p : poles) total += p.corpus.size();
    return total;
}

void save_corpus_set(std::ostream& out, const pole_corpus_set& set) {
    // Each inner corpus is embedded as its own full envelope (magic,
    // version, checksum) inside the set payload, so a corpus extracted
    // from a set file is byte-identical to the same corpus saved alone,
    // and corruption localises to one pole's block.
    byte_writer payload;
    payload.str(set.name);
    payload.u64(static_cast<std::uint64_t>(set.poles.size()));
    for (const auto& pole : set.poles) {
        payload.str(pole.pole_id);
        std::ostringstream block;
        save_corpus(block, pole.corpus);
        const std::string bytes = block.str();
        payload.u64(static_cast<std::uint64_t>(bytes.size()));
        payload.raw(bytes.data(), bytes.size());
    }
    write_envelope(out, corpus_set_magic, corpus_set_version, payload);
}

pole_corpus_set load_corpus_set(std::istream& in) {
    const envelope env =
        read_envelope(in, corpus_set_magic, corpus_set_version, "pole corpus set");
    byte_reader reader{env.payload};
    pole_corpus_set set;
    set.name = reader.str();
    const std::uint64_t pole_count = reader.u64();
    if (pole_count > env.payload.size()) {
        throw io_error{"pole corpus set: implausible pole count"};
    }
    set.poles.reserve(static_cast<std::size_t>(pole_count));
    for (std::uint64_t p = 0; p < pole_count; ++p) {
        pole_corpus pole;
        pole.pole_id = reader.str();
        const std::uint64_t block_size = reader.u64();
        if (block_size > reader.remaining()) {
            throw io_error{"pole corpus set: truncated corpus block"};
        }
        std::string bytes(static_cast<std::size_t>(block_size), '\0');
        reader.raw(bytes.data(), bytes.size());
        std::istringstream block{bytes};
        pole.corpus = load_corpus(block);
        set.poles.push_back(std::move(pole));
    }
    reader.expect_exhausted("pole corpus set");
    return set;
}

void save_corpus_set_file(const std::filesystem::path& path, const pole_corpus_set& set) {
    std::ofstream out{path, std::ios::binary};
    if (!out) throw io_error{"cannot open " + path.string() + " for writing"};
    save_corpus_set(out, set);
}

pole_corpus_set load_corpus_set_file(const std::filesystem::path& path) {
    std::ifstream in{path, std::ios::binary};
    if (!in) throw io_error{"cannot open " + path.string()};
    return load_corpus_set(in);
}

pole_corpus_set record_corpus_set(const record_config& base,
                                  const std::vector<std::string>& pole_ids) {
    pole_corpus_set set;
    set.name = base.name;
    set.poles.reserve(pole_ids.size());
    for (std::size_t i = 0; i < pole_ids.size(); ++i) {
        record_config cfg = base;
        // A large odd offset keeps pole seed streams disjoint from the
        // per-frame streams frame_seed derives inside each corpus.
        cfg.seed = frame_seed(base.seed, 1000003 + i);
        cfg.name = base.name + "/p" + std::to_string(i);
        pole_corpus pole;
        pole.pole_id = pole_ids[i];
        pole.corpus = record_corpus(cfg);
        set.poles.push_back(std::move(pole));
    }
    return set;
}

}  // namespace hawc::replay
