#pragma once

// Checksummed serialization for the two classifier implementations the
// parity harness diffs — the fp32 `sequential` and the int8
// `quantized_model` — plus the object pool their shared featurizer draws
// padding points from. All three ride the replay binary envelope
// (magic, version, FNV-1a checksum; see binary_io.hpp), so a corrupted
// artifact fails loudly at load instead of silently skewing a parity run.
//
// fp32 weights wrap sequential's own save/load payload (which carries the
// architecture fingerprint); the target network must be constructed with
// the same architecture before loading. The quantized model is fully
// self-describing and needs no pre-built skeleton.

#include <cstdint>
#include <filesystem>
#include <iosfwd>

#include "features/upsampling.hpp"
#include "nn/sequential.hpp"
#include "quant/q_model.hpp"

namespace hawc::replay {

inline constexpr std::uint32_t weights_magic = 0x574D5748;   // "HWMW"
inline constexpr std::uint16_t weights_version = 1;
inline constexpr std::uint32_t qmodel_magic = 0x4D515748;    // "HWQM"
inline constexpr std::uint16_t qmodel_version = 1;
inline constexpr std::uint32_t pool_magic = 0x4F505748;      // "HWPO"
inline constexpr std::uint16_t pool_version = 1;

/// ---- fp32 sequential weights ----
void save_weights(std::ostream& out, const sequential& model);
void load_weights(std::istream& in, sequential& model);
void save_weights_file(const std::filesystem::path& path, const sequential& model);
void load_weights_file(const std::filesystem::path& path, sequential& model);

/// ---- int8 quantized model ----
void save_quantized(std::ostream& out, const quantized_model& model);
quantized_model load_quantized(std::istream& in);
void save_quantized_file(const std::filesystem::path& path, const quantized_model& model);
quantized_model load_quantized_file(const std::filesystem::path& path);

/// ---- object pool (featurizer padding state) ----
/// Points are stored as float64, so an in-memory pool round-trips
/// bit-exactly regardless of provenance.
void save_object_pool(std::ostream& out, const object_pool& pool);
object_pool load_object_pool(std::istream& in);
void save_object_pool_file(const std::filesystem::path& path, const object_pool& pool);
object_pool load_object_pool_file(const std::filesystem::path& path);

}  // namespace hawc::replay
