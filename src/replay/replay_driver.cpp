#include "replay/replay_driver.hpp"

#include <cstdlib>

#include "common/error.hpp"
#include "lidar/scanner.hpp"

namespace hawc::replay {

std::uint64_t frame_seed(std::uint64_t base_seed, std::size_t index) {
    // splitmix64 of (base ^ index-dependent odd constant): well-spread,
    // cheap, and independent of how many frames precede this one — frame
    // k replays identically whether the corpus is walked fully or sliced.
    std::uint64_t state = base_seed ^ (0x9e3779b97f4a7c15ull * (index + 1));
    return splitmix64(state);
}

frame_corpus record_corpus(const record_config& config) {
    frame_corpus corpus;
    corpus.name = config.name;
    corpus.base_seed = config.seed;
    corpus.frames.reserve(config.frames);

    const scanner sensor{config.capture.sensor};
    fault_injector injector{config.faults};

    for (std::size_t i = 0; i < config.frames; ++i) {
        rng random{frame_seed(config.seed, i)};
        const std::size_t people =
            config.min_people +
            random.uniform_index(config.max_people - config.min_people + 1);
        const std::size_t objects = random.uniform_index(config.max_objects + 1);
        const scene s = make_crowd_scene(random, people, objects, config.capture.walkway);
        const scan_result scan_data =
            sensor.scan(s.primitives(), random, config.capture.scan);

        frame_record frame;
        frame.ground_truth = static_cast<std::uint32_t>(
            visible_human_count(s, scan_data, config.capture));
        point_cloud cloud = scan_data.to_cloud();
        if (config.inject_faults) cloud = injector.corrupt(cloud, random);
        frame.cloud = round_to_recorded(cloud);
        corpus.frames.push_back(std::move(frame));
    }
    return corpus;
}

namespace {

void accumulate(replay_result& result, frame_report report, std::uint32_t ground_truth) {
    switch (report.status) {
        case frame_status::ok: ++result.frames_ok; break;
        case frame_status::degraded: ++result.frames_degraded; break;
        case frame_status::dropped: ++result.frames_dropped; break;
    }
    result.total_count += report.count;
    const auto truth = static_cast<std::size_t>(ground_truth);
    result.absolute_count_error +=
        report.count > truth ? report.count - truth : truth - report.count;
    result.reports.push_back(std::move(report));
}

replay_result replay_frames(frame_supervisor& supervisor, const frame_corpus& corpus,
                            const std::uint64_t* indices) {
    replay_result result;
    result.reports.reserve(corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        const std::size_t stream =
            indices != nullptr ? static_cast<std::size_t>(indices[i]) : i;
        rng random{frame_seed(corpus.base_seed, stream)};
        accumulate(result, supervisor.process(corpus.frames[i].cloud, random),
                   corpus.frames[i].ground_truth);
    }
    return result;
}

}  // namespace

replay_result replay_corpus(frame_supervisor& supervisor, const frame_corpus& corpus) {
    return replay_frames(supervisor, corpus, nullptr);
}

replay_result replay_corpus_indexed(frame_supervisor& supervisor, const frame_corpus& corpus,
                                    std::span<const std::uint64_t> indices) {
    HAWC_REQUIRE(indices.size() == corpus.size(),
                 "indexed replay needs one stream index per frame");
    return replay_frames(supervisor, corpus, indices.data());
}

replay_result replay_container(frame_supervisor& supervisor, container_reader& reader,
                               std::uint32_t stream) {
    const container_stream_info& info = reader.stream(stream);
    replay_result result;
    result.reports.reserve(static_cast<std::size_t>(info.frame_count));
    for (std::uint64_t i = 0; i < info.frame_count; ++i) {
        // The sequential walk serves each chunk from the one-chunk cache:
        // the whole corpus is never resident at once.
        const frame_record& frame = reader.frame(stream, i);
        rng random{frame_seed(info.base_seed, static_cast<std::size_t>(i))};
        accumulate(result, supervisor.process(frame.cloud, random), frame.ground_truth);
    }
    return result;
}

}  // namespace hawc::replay
