#include "replay/model_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "replay/binary_io.hpp"

namespace hawc::replay {

namespace {

template <typename Saver>
void save_to_file(const std::filesystem::path& path, Saver&& saver) {
    std::ofstream out{path, std::ios::binary};
    if (!out) throw io_error{"cannot open " + path.string() + " for writing"};
    saver(out);
}

std::ifstream open_input(const std::filesystem::path& path) {
    std::ifstream in{path, std::ios::binary};
    if (!in) throw io_error{"cannot open " + path.string()};
    return in;
}

void write_q_params(byte_writer& w, const quant_params& p) {
    w.f32(p.scale);
    w.i32(p.zero_point);
}

quant_params read_q_params(byte_reader& r) {
    quant_params p;
    p.scale = r.f32();
    p.zero_point = r.i32();
    return p;
}

void write_i8_vector(byte_writer& w, const std::vector<std::int8_t>& v) {
    w.u64(static_cast<std::uint64_t>(v.size()));
    w.raw(v.data(), v.size());
}

std::vector<std::int8_t> read_i8_vector(byte_reader& r) {
    const std::uint64_t count = r.u64();
    if (count > r.remaining()) throw io_error{"quantized model: implausible weight count"};
    std::vector<std::int8_t> v(static_cast<std::size_t>(count));
    r.raw(v.data(), v.size());
    return v;
}

void write_f32_vector(byte_writer& w, const std::vector<float>& v) {
    w.u64(static_cast<std::uint64_t>(v.size()));
    w.raw(v.data(), v.size() * sizeof(float));
}

std::vector<float> read_f32_vector(byte_reader& r) {
    const std::uint64_t count = r.u64();
    if (count > r.remaining() / sizeof(float)) {
        throw io_error{"quantized model: implausible vector length"};
    }
    std::vector<float> v(static_cast<std::size_t>(count));
    r.raw(v.data(), v.size() * sizeof(float));
    return v;
}

// Op tags in the serialized stream (stable across versions; append-only).
enum : std::uint8_t {
    tag_conv = 0,
    tag_dense = 1,
    tag_pool = 2,
    tag_global_pool = 3,
    tag_flatten = 4,
};

}  // namespace

void save_weights(std::ostream& out, const sequential& model) {
    // sequential::save already frames parameters with its own magic and
    // layout fingerprint; the envelope adds versioning and the checksum.
    std::ostringstream inner;
    model.save(inner);
    const std::string bytes = inner.str();
    byte_writer payload;
    payload.u64(static_cast<std::uint64_t>(bytes.size()));
    payload.raw(bytes.data(), bytes.size());
    write_envelope(out, weights_magic, weights_version, payload);
}

void load_weights(std::istream& in, sequential& model) {
    const envelope env = read_envelope(in, weights_magic, weights_version, "fp32 weights");
    byte_reader reader{env.payload};
    const std::uint64_t size = reader.u64();
    if (size != reader.remaining()) {
        throw io_error{"fp32 weights: inner payload length mismatch"};
    }
    std::string bytes(static_cast<std::size_t>(size), '\0');
    reader.raw(bytes.data(), bytes.size());
    std::istringstream inner{bytes};
    model.load(inner);
}

void save_weights_file(const std::filesystem::path& path, const sequential& model) {
    save_to_file(path, [&](std::ostream& out) { save_weights(out, model); });
}

void load_weights_file(const std::filesystem::path& path, sequential& model) {
    auto in = open_input(path);
    load_weights(in, model);
}

void save_quantized(std::ostream& out, const quantized_model& model) {
    byte_writer payload;
    write_q_params(payload, model.input_params());
    payload.u64(static_cast<std::uint64_t>(model.op_count()));
    for (std::size_t i = 0; i < model.op_count(); ++i) {
        std::visit(
            [&](const auto& op) {
                using T = std::decay_t<decltype(op)>;
                if constexpr (std::is_same_v<T, q_conv_op>) {
                    payload.u8(tag_conv);
                    payload.u64(op.kernel);
                    payload.u64(op.in_channels);
                    payload.u64(op.out_channels);
                    payload.u64(op.pad);
                    write_i8_vector(payload, op.weights);
                    write_f32_vector(payload, op.weight_scales);
                    write_f32_vector(payload, op.bias);
                    write_q_params(payload, op.in_q);
                    write_q_params(payload, op.out_q);
                    payload.u8(op.fused_relu ? 1 : 0);
                } else if constexpr (std::is_same_v<T, q_dense_op>) {
                    payload.u8(tag_dense);
                    payload.u64(op.in_features);
                    payload.u64(op.out_features);
                    write_i8_vector(payload, op.weights);
                    write_f32_vector(payload, op.weight_scales);
                    write_f32_vector(payload, op.bias);
                    write_q_params(payload, op.in_q);
                    write_q_params(payload, op.out_q);
                    payload.u8(op.fused_relu ? 1 : 0);
                } else if constexpr (std::is_same_v<T, q_pool_op>) {
                    payload.u8(tag_pool);
                    payload.u64(op.window);
                } else if constexpr (std::is_same_v<T, q_global_pool_op>) {
                    payload.u8(tag_global_pool);
                } else {
                    payload.u8(tag_flatten);
                }
            },
            model.op_at(i));
    }
    write_envelope(out, qmodel_magic, qmodel_version, payload);
}

quantized_model load_quantized(std::istream& in) {
    const envelope env = read_envelope(in, qmodel_magic, qmodel_version, "quantized model");
    byte_reader reader{env.payload};
    quantized_model model;
    model.set_input_params(read_q_params(reader));
    const std::uint64_t op_count = reader.u64();
    if (op_count > env.payload.size()) {
        throw io_error{"quantized model: implausible op count"};
    }
    for (std::uint64_t i = 0; i < op_count; ++i) {
        switch (reader.u8()) {
            case tag_conv: {
                q_conv_op op;
                op.kernel = static_cast<std::size_t>(reader.u64());
                op.in_channels = static_cast<std::size_t>(reader.u64());
                op.out_channels = static_cast<std::size_t>(reader.u64());
                op.pad = static_cast<std::size_t>(reader.u64());
                op.weights = read_i8_vector(reader);
                op.weight_scales = read_f32_vector(reader);
                op.bias = read_f32_vector(reader);
                op.in_q = read_q_params(reader);
                op.out_q = read_q_params(reader);
                op.fused_relu = reader.u8() != 0;
                if (op.weights.size() !=
                        op.kernel * op.kernel * op.in_channels * op.out_channels ||
                    op.weight_scales.size() != op.out_channels ||
                    op.bias.size() != op.out_channels) {
                    throw io_error{"quantized model: inconsistent conv op"};
                }
                model.add_op(std::move(op));
                break;
            }
            case tag_dense: {
                q_dense_op op;
                op.in_features = static_cast<std::size_t>(reader.u64());
                op.out_features = static_cast<std::size_t>(reader.u64());
                op.weights = read_i8_vector(reader);
                op.weight_scales = read_f32_vector(reader);
                op.bias = read_f32_vector(reader);
                op.in_q = read_q_params(reader);
                op.out_q = read_q_params(reader);
                op.fused_relu = reader.u8() != 0;
                if (op.weights.size() != op.in_features * op.out_features ||
                    op.weight_scales.size() != op.out_features ||
                    op.bias.size() != op.out_features) {
                    throw io_error{"quantized model: inconsistent dense op"};
                }
                model.add_op(std::move(op));
                break;
            }
            case tag_pool: {
                q_pool_op op;
                op.window = static_cast<std::size_t>(reader.u64());
                model.add_op(op);
                break;
            }
            case tag_global_pool:
                model.add_op(q_global_pool_op{});
                break;
            case tag_flatten:
                model.add_op(q_flatten_op{});
                break;
            default:
                throw io_error{"quantized model: unknown op tag"};
        }
    }
    reader.expect_exhausted("quantized model");
    return model;
}

void save_quantized_file(const std::filesystem::path& path, const quantized_model& model) {
    save_to_file(path, [&](std::ostream& out) { save_quantized(out, model); });
}

quantized_model load_quantized_file(const std::filesystem::path& path) {
    auto in = open_input(path);
    return load_quantized(in);
}

void save_object_pool(std::ostream& out, const object_pool& pool) {
    byte_writer payload;
    payload.u64(static_cast<std::uint64_t>(pool.points().size()));
    for (const auto& p : pool.points()) {
        payload.f64(p.x);
        payload.f64(p.y);
        payload.f64(p.z);
    }
    write_envelope(out, pool_magic, pool_version, payload);
}

object_pool load_object_pool(std::istream& in) {
    const envelope env = read_envelope(in, pool_magic, pool_version, "object pool");
    byte_reader reader{env.payload};
    const std::uint64_t count = reader.u64();
    if (count > reader.remaining() / 24) {  // 3 x f64 per point
        throw io_error{"object pool: implausible point count"};
    }
    point_cloud points;
    points.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
        const double x = reader.f64();
        const double y = reader.f64();
        const double z = reader.f64();
        points.push_back({x, y, z});
    }
    reader.expect_exhausted("object pool");
    object_pool pool;
    pool.add_cloud(points);
    return pool;
}

void save_object_pool_file(const std::filesystem::path& path, const object_pool& pool) {
    save_to_file(path, [&](std::ostream& out) { save_object_pool(out, pool); });
}

object_pool load_object_pool_file(const std::filesystem::path& path) {
    auto in = open_input(path);
    return load_object_pool(in);
}

}  // namespace hawc::replay
