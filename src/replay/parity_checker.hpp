#pragma once

// Differential parity checking over recorded corpora: run two
// implementations of the same pipeline stage on identical replayed
// inputs and report every divergence. The implementation pairs the
// harness ships:
//
//   fp32 vs int8      count parity through the full supervisor, plus
//                     per-cluster label (exact) and logit (tolerance)
//                     diffs between sequential::infer and
//                     quantized_model::forward on shared feature tensors
//   1 vs N threads    the engine's bit-identical-across-thread-counts
//                     contract, end to end through the supervisor
//   adaptive vs fixed eps   the degradation ladder's rung-1 clusterer,
//                     with a configurable per-frame count-delta budget
//
// Divergence counts flow into an optional telemetry registry
// (hawc_parity_* metrics); parity_report::passed() gates CI. Replays run
// with the supervisor's cooperative deadlines disabled — wall-clock must
// never decide which code path a parity frame takes (see DESIGN.md
// "Replay & parity", determinism contract).

#include <string>
#include <vector>

#include "counting/crowd_counter.hpp"
#include "features/pipeline.hpp"
#include "nn/sequential.hpp"
#include "quant/q_model.hpp"
#include "replay/frame_format.hpp"
#include "runtime/supervisor.hpp"
#include "telemetry/metrics.hpp"

namespace hawc::replay {

struct parity_config {
    /// Logit agreement: |int8 - fp32| <= abs + rel * |fp32|. The defaults
    /// bound the error of per-tensor int8 requantization on logits in the
    /// trained models' typical +-10 range; see DESIGN.md "Replay & parity".
    double logit_abs_tolerance = 0.25;
    double logit_rel_tolerance = 0.10;

    /// A label flip only counts as divergence when fp32 itself was
    /// decisive: its winning logit leads the runner-up by more than this.
    /// On a near-tie the fp32 answer is a coin flip, and requiring int8's
    /// argmax to land on the same side of the tie is not a meaningful
    /// quantization contract; such flips are tallied as near_tie_flips
    /// instead (and the logits still must agree within tolerance).
    double label_margin_tolerance = 0.02;

    /// Ladder pair: frames where adaptive-eps and fixed-eps counts differ
    /// by more than this diverge (the rungs are different estimators, so
    /// exact parity is not the contract — bounded drift is).
    std::size_t ladder_max_count_delta = 2;

    /// Thread-count sweep for check_thread_parity; the first entry is the
    /// reference.
    std::vector<std::size_t> thread_counts = {1, 4};
};

/// One observed implementation difference.
struct divergence {
    std::size_t frame = 0;
    std::string stage;   // "count", "clusters", "status", "eps", "label", "logit", "ladder"
    std::string detail;
};

struct parity_report {
    std::string pair_name;
    std::size_t frames = 0;
    std::size_t comparisons = 0;   // frames or clusters, pair-dependent
    double max_logit_delta = 0.0;  // logit pairs only
    std::size_t near_tie_flips = 0;  // label flips excused by the margin band
    std::vector<divergence> divergences;

    bool passed() const { return divergences.empty(); }
    std::string summary() const;
};

/// Full-pipeline count parity: replay the corpus through two supervisors
/// that differ only in the classifier, and diff every frame's count,
/// cluster count, status, and chosen eps (bit-exact).
parity_report check_count_parity(const std::string& pair_name, const frame_corpus& corpus,
                                 const supervisor_config& config,
                                 const human_classifier& reference,
                                 const human_classifier& candidate,
                                 telemetry::metrics_registry* metrics = nullptr);

/// Replay the corpus through one supervisor at each configured thread
/// count; every frame must be bit-identical to the reference count's.
parity_report check_thread_parity(const frame_corpus& corpus, const supervisor_config& config,
                                  const human_classifier& classifier,
                                  const parity_config& parity = {},
                                  telemetry::metrics_registry* metrics = nullptr);

/// Per-cluster classifier parity: cluster each frame once, featurize each
/// cluster once, and diff fp32 logits against the int8 model's — labels
/// exact, logits within tolerance.
parity_report check_logit_parity(const frame_corpus& corpus, const capture_config& config,
                                 const cnn_feature_extractor& extractor,
                                 const sequential& fp32, const quantized_model& int8,
                                 const parity_config& parity = {},
                                 telemetry::metrics_registry* metrics = nullptr);

/// Degradation-ladder drift: adaptive-eps counting vs the fixed-eps
/// rung-1 clusterer, with a per-frame count-delta budget.
parity_report check_ladder_divergence(const frame_corpus& corpus, const capture_config& config,
                                      const human_classifier& classifier, double fixed_eps,
                                      const parity_config& parity = {},
                                      telemetry::metrics_registry* metrics = nullptr);

}  // namespace hawc::replay
