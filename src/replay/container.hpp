#pragma once

// "HWCC" — the chunked, indexed, compressed corpus container: the
// fleet-scale storage format the one-artifact-per-file envelope
// (binary_io.hpp) cannot be. An envelope is slurped whole (capped at
// 2 GiB); a container streams — readers seek by frame number and
// decompress one chunk at a time, so a multi-hour multi-pole recording
// replays with memory bounded by a chunk, not the corpus.
//
// File layout:
//
//   [header  8B]  u32 magic "HWCC" | u16 version | u16 flags (must be 0)
//   [chunk bytes ...]          lz-compressed (codec.hpp) or raw frame runs
//   [index]                    byte_writer payload, see below
//   [footer 28B]  u64 index_offset | u64 index_size | u64 fnv1a64(index)
//                 | u32 magic again
//
// The index is trailing so writers stream chunks append-only and write
// the index exactly once at finalize(). It carries the container kind
// (single corpus vs pole corpus set), a title, the stream table (one
// entry per recorded pole: pole id, corpus name, base seed, frame
// count), and one entry per chunk: owning stream, file offset, stored /
// uncompressed sizes, first frame + frame count, codec id, and an
// fnv1a64 over the stored bytes. Every chunk is therefore independently
// checksummed: corruption localises to one chunk and surfaces as a clean
// io_error when (and only when) that chunk is read.
//
// Chunk payloads are runs of the shared frame wire layout
// (frame_format.hpp::write_frame_record), so a frame unpacked from a
// container is bit-identical to the same frame loaded from an envelope —
// the round_to_recorded round-trip contract carries over unchanged.
//
// Readers validate before trusting: header magic/version/flags, footer
// magic and offset/size consistency against the real file size, the
// index checksum, then structural invariants of the parsed index (chunk
// ranges contiguous per stream, offsets inside the chunk region, sizes
// under the decode cap). A flipped byte anywhere in header, index or
// footer — and any truncation — fails with io_error, never UB and never
// an unbounded allocation.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <list>
#include <string>
#include <vector>

#include "replay/binary_io.hpp"
#include "replay/frame_format.hpp"

namespace hawc::replay {

struct pole_corpus_set;  // corpus_set.hpp

inline constexpr std::uint32_t container_magic = 0x43435748;  // "HWCC"
inline constexpr std::uint16_t container_version = 1;

/// Largest uncompressed chunk a reader will decode (64 MiB). Writers stay
/// far below it; the cap bounds what a corrupt index can make a reader
/// allocate.
inline constexpr std::uint64_t container_max_chunk_bytes = std::uint64_t{64} << 20;

enum class container_kind : std::uint8_t {
    corpus = 0,      // one frame stream
    corpus_set = 1,  // one stream per pole
};

enum class chunk_codec : std::uint8_t {
    raw = 0,  // stored bytes == frame bytes (incompressible chunk)
    lz = 1,   // codec.hpp token stream
};

struct container_options {
    /// Frames buffered per chunk. Larger chunks compress better (more
    /// cross-frame redundancy in the match window) but raise the
    /// streaming reader's per-chunk memory bound.
    std::size_t frames_per_chunk = 64;

    /// When false every chunk is stored raw (for measuring codec gain).
    /// Even when true, a chunk whose compressed form is not smaller is
    /// stored raw — the codec can only ever shrink the file.
    bool compress = true;
};

struct container_stream_info {
    std::string pole_id;  // empty in a container_kind::corpus container
    std::string name;     // the corpus name
    std::uint64_t base_seed = 0;
    std::uint64_t frame_count = 0;
};

struct chunk_entry {
    std::uint32_t stream = 0;
    std::uint64_t file_offset = 0;
    std::uint64_t stored_size = 0;
    std::uint64_t uncompressed_size = 0;
    std::uint64_t first_frame = 0;  // within the owning stream
    std::uint32_t frame_count = 0;
    chunk_codec codec = chunk_codec::raw;
    std::uint64_t checksum = 0;  // fnv1a64 of the stored bytes
};

/// Append-only streaming writer. Declare streams, append frames in any
/// stream order, finalize once; chunks flush to the output as they fill,
/// so writer memory is bounded by one open chunk per stream.
class container_writer {
public:
    container_writer(std::ostream& out, container_kind kind, std::string title,
                     container_options options = {});

    /// Register a stream before appending to it. Returns its id.
    std::uint32_t add_stream(std::string pole_id, std::string name, std::uint64_t base_seed);

    /// Buffer one frame; flushes a compressed chunk when the buffer
    /// reaches frames_per_chunk.
    void append(std::uint32_t stream, const frame_record& frame);

    /// Flush every open chunk and write the index + footer. Must be
    /// called exactly once; append() is invalid afterwards.
    void finalize();

    bool finalized() const { return finalized_; }
    std::uint64_t frames_appended() const { return frames_appended_; }
    std::uint64_t chunks_written() const { return chunks_.size(); }
    std::uint64_t bytes_buffered() const;

private:
    struct open_chunk {
        byte_writer frames;
        std::uint64_t first_frame = 0;
        std::uint32_t frame_count = 0;
    };

    void flush_chunk(std::uint32_t stream);

    std::ostream& out_;
    container_kind kind_;
    std::string title_;
    container_options options_;
    std::vector<container_stream_info> streams_;
    std::vector<open_chunk> open_;
    std::vector<chunk_entry> chunks_;
    std::vector<char> scratch_;  // compressed-chunk staging, reused
    std::uint64_t offset_ = 0;   // next chunk's file offset
    std::uint64_t frames_appended_ = 0;
    bool finalized_ = false;
};

struct container_reader_options {
    /// Decompressed chunks kept hot (LRU). 1 is the streaming default —
    /// sequential replay then holds exactly one chunk; raise it to the
    /// pole count when round-robining streams (fleet replay).
    std::size_t cached_chunks = 1;
};

/// Index-validated random/sequential access over an open container.
/// frame(s, i) seeks the owning chunk through the index and serves it
/// from the LRU cache, so a sequential walk decodes each chunk exactly
/// once and holds cached_chunks of them.
class container_reader {
public:
    /// The stream must be seekable and outlive the reader.
    explicit container_reader(std::istream& in, container_reader_options options = {});
    /// Convenience: open and own a file stream.
    explicit container_reader(const std::filesystem::path& path,
                              container_reader_options options = {});

    container_kind kind() const { return kind_; }
    const std::string& title() const { return title_; }
    std::size_t stream_count() const { return streams_.size(); }
    const container_stream_info& stream(std::uint32_t s) const;
    std::uint64_t frame_count(std::uint32_t s) const { return stream(s).frame_count; }
    const std::vector<chunk_entry>& chunks() const { return chunks_; }

    /// Frame `index` of stream `s`. The reference stays valid until the
    /// owning chunk is evicted (any later frame() call may evict).
    const frame_record& frame(std::uint32_t s, std::uint64_t index);

    void set_cache_capacity(std::size_t chunks);
    std::size_t cache_capacity() const { return options_.cached_chunks; }
    std::size_t cached_chunk_count() const { return cache_.size(); }
    /// Chunks decoded so far — a sequential walk over the whole container
    /// ends with exactly chunks().size() of them (proof of streaming).
    std::uint64_t chunks_decoded() const { return chunks_decoded_; }

private:
    struct cached_chunk {
        std::size_t entry = 0;  // index into chunks_
        std::vector<frame_record> frames;
    };

    void open_and_validate();
    const cached_chunk& load_chunk(std::size_t entry);

    std::ifstream owned_;
    std::istream* in_;
    container_reader_options options_;
    container_kind kind_ = container_kind::corpus;
    std::string title_;
    std::vector<container_stream_info> streams_;
    std::vector<chunk_entry> chunks_;
    std::vector<std::vector<std::size_t>> stream_chunks_;  // per stream, by first_frame
    std::list<cached_chunk> cache_;                        // front = most recent
    std::uint64_t chunks_decoded_ = 0;
};

// ---- corpus / corpus-set convenience wrappers ----------------------------

void pack_corpus(std::ostream& out, const frame_corpus& corpus, container_options options = {});
void pack_corpus_file(const std::filesystem::path& path, const frame_corpus& corpus,
                      container_options options = {});
void pack_corpus_set(std::ostream& out, const pole_corpus_set& set,
                     container_options options = {});
void pack_corpus_set_file(const std::filesystem::path& path, const pole_corpus_set& set,
                          container_options options = {});

/// Materialize a whole stream / set back into memory (the non-streaming
/// convenience path; bit-exact inverse of pack_*).
frame_corpus unpack_corpus(container_reader& reader, std::uint32_t stream = 0);
frame_corpus unpack_corpus_file(const std::filesystem::path& path);
pole_corpus_set unpack_corpus_set(container_reader& reader);
pole_corpus_set unpack_corpus_set_file(const std::filesystem::path& path);

}  // namespace hawc::replay
