#include "replay/binary_io.hpp"

#include <istream>
#include <limits>
#include <ostream>

#include "common/error.hpp"
#include "replay/codec.hpp"

namespace hawc::replay {

std::uint64_t fnv1a64(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

void byte_writer::str(std::string_view s) {
    if (s.size() > std::numeric_limits<std::uint32_t>::max()) {
        throw io_error{"string of " + std::to_string(s.size()) +
                       " bytes cannot fit the u32 length prefix"};
    }
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
}

void byte_writer::raw(const void* data, std::size_t size) {
    const auto* src = static_cast<const char*>(data);
    bytes_.insert(bytes_.end(), src, src + size);
}

const char* byte_reader::cursor(std::size_t need, const char* what) {
    if (need > size_ - offset_) {
        throw io_error{std::string{what} + " extends past the end of the payload"};
    }
    const char* at = data_ + offset_;
    offset_ += need;
    return at;
}

std::uint8_t byte_reader::u8() {
    return static_cast<std::uint8_t>(*cursor(1, "u8 field"));
}

std::uint16_t byte_reader::u16() {
    std::uint16_t v;
    std::memcpy(&v, cursor(sizeof(v), "u16 field"), sizeof(v));
    return v;
}

std::uint32_t byte_reader::u32() {
    std::uint32_t v;
    std::memcpy(&v, cursor(sizeof(v), "u32 field"), sizeof(v));
    return v;
}

std::uint64_t byte_reader::u64() {
    std::uint64_t v;
    std::memcpy(&v, cursor(sizeof(v), "u64 field"), sizeof(v));
    return v;
}

std::int32_t byte_reader::i32() {
    std::int32_t v;
    std::memcpy(&v, cursor(sizeof(v), "i32 field"), sizeof(v));
    return v;
}

float byte_reader::f32() {
    float v;
    std::memcpy(&v, cursor(sizeof(v), "f32 field"), sizeof(v));
    return v;
}

double byte_reader::f64() {
    double v;
    std::memcpy(&v, cursor(sizeof(v), "f64 field"), sizeof(v));
    return v;
}

std::string byte_reader::str() {
    const std::uint32_t length = u32();
    // Validate the length against the remaining payload *before* any
    // allocation: a corrupt length field must fail the parse, not attempt
    // a multi-gigabyte std::string first.
    if (length > remaining()) {
        throw io_error{"string length " + std::to_string(length) +
                       " exceeds the remaining payload"};
    }
    const char* at = cursor(length, "string field");
    return std::string{at, length};
}

void byte_reader::raw(void* out, std::size_t size) {
    std::memcpy(out, cursor(size, "raw field"), size);
}

void byte_reader::expect_exhausted(const char* what) const {
    if (!exhausted()) {
        throw io_error{std::string{what} + " carries " + std::to_string(remaining()) +
                       " trailing bytes"};
    }
}

namespace {

void write_envelope_bytes(std::ostream& out, std::uint32_t magic, std::uint16_t version,
                          std::uint16_t flags, const char* payload, std::size_t size) {
    const auto payload_size = static_cast<std::uint64_t>(size);
    const std::uint64_t checksum = fnv1a64(payload, size);
    out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.write(reinterpret_cast<const char*>(&flags), sizeof(flags));
    out.write(reinterpret_cast<const char*>(&payload_size), sizeof(payload_size));
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    out.write(payload, static_cast<std::streamsize>(size));
    if (!out) throw io_error{"replay artifact write failed"};
}

}  // namespace

void write_envelope(std::ostream& out, std::uint32_t magic, std::uint16_t version,
                    const byte_writer& payload) {
    write_envelope_bytes(out, magic, version, /*flags=*/0, payload.bytes().data(),
                         payload.bytes().size());
}

void write_envelope_compressed(std::ostream& out, std::uint32_t magic, std::uint16_t version,
                               const byte_writer& payload) {
    byte_writer stored;
    stored.u64(static_cast<std::uint64_t>(payload.bytes().size()));
    const std::vector<char> compressed =
        lz_compress(payload.bytes().data(), payload.bytes().size());
    stored.raw(compressed.data(), compressed.size());
    write_envelope_bytes(out, magic, version, envelope_flag_compressed,
                         stored.bytes().data(), stored.bytes().size());
}

envelope read_envelope(std::istream& in, std::uint32_t magic, std::uint16_t max_version,
                       const char* what) {
    std::uint32_t file_magic = 0;
    std::uint16_t version = 0;
    std::uint16_t flags = 0;
    std::uint64_t payload_size = 0;
    std::uint64_t checksum = 0;
    in.read(reinterpret_cast<char*>(&file_magic), sizeof(file_magic));
    in.read(reinterpret_cast<char*>(&version), sizeof(version));
    in.read(reinterpret_cast<char*>(&flags), sizeof(flags));
    in.read(reinterpret_cast<char*>(&payload_size), sizeof(payload_size));
    in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
    if (!in) throw io_error{std::string{what} + ": truncated header"};
    if (file_magic != magic) throw io_error{std::string{what} + ": bad magic"};
    if (version == 0 || version > max_version) {
        throw io_error{std::string{what} + ": unsupported format version " +
                       std::to_string(version)};
    }
    // Flags this reader does not understand mean the payload encoding may
    // differ from what the parser below expects; refuse rather than
    // misparse (e.g. feeding compressed bytes to a plain-payload parser).
    if ((flags & ~envelope_known_flags) != 0) {
        throw io_error{std::string{what} + ": unknown envelope flag bits 0x" +
                       std::to_string(static_cast<unsigned>(flags & ~envelope_known_flags))};
    }
    // A corrupted size field must not become a multi-gigabyte allocation.
    constexpr std::uint64_t sanity_cap = 1ull << 31;
    if (payload_size > sanity_cap) {
        throw io_error{std::string{what} + ": implausible payload size"};
    }
    envelope env;
    env.version = version;
    env.payload.resize(static_cast<std::size_t>(payload_size));
    in.read(env.payload.data(), static_cast<std::streamsize>(payload_size));
    if (!in || static_cast<std::uint64_t>(in.gcount()) != payload_size) {
        throw io_error{std::string{what} + ": truncated payload"};
    }
    if (fnv1a64(env.payload.data(), env.payload.size()) != checksum) {
        throw io_error{std::string{what} + ": checksum mismatch (corrupted payload)"};
    }
    if ((flags & envelope_flag_compressed) != 0) {
        byte_reader framed{env.payload};
        const std::uint64_t raw_size = framed.u64();
        if (raw_size > sanity_cap) {
            throw io_error{std::string{what} + ": implausible uncompressed payload size"};
        }
        std::vector<char> raw(static_cast<std::size_t>(raw_size));
        try {
            lz_decompress_into(env.payload.data() + sizeof(std::uint64_t),
                               env.payload.size() - sizeof(std::uint64_t), raw.data(),
                               raw.size());
        } catch (const io_error& e) {
            throw io_error{std::string{what} + ": " + e.what()};
        }
        env.payload = std::move(raw);
    }
    return env;
}

}  // namespace hawc::replay
