#pragma once

// Multi-pole corpus sets: the fleet-scale extension of frame_corpus. A
// corpus set bundles one recorded frame sequence per pole, each tagged
// with its pole id, under a single checksummed envelope — so a whole
// campus chaos scenario checks in as one golden file. The per-pole
// corpora keep their own base seeds: the fleet replays pole p's frames
// with exactly the rng streams a solo frame_supervisor replay of that
// corpus would use, which is what makes healthy-pole bit-exactness
// testable (see fleet_manager.hpp::replay_corpus_set).

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "replay/frame_format.hpp"
#include "replay/replay_driver.hpp"

namespace hawc::replay {

inline constexpr std::uint32_t corpus_set_magic = 0x53465748;  // "HWFS"
inline constexpr std::uint16_t corpus_set_version = 1;

/// One pole's recorded sequence inside a set.
struct pole_corpus {
    std::string pole_id;
    frame_corpus corpus;

    bool operator==(const pole_corpus&) const = default;
};

struct pole_corpus_set {
    std::string name;
    std::vector<pole_corpus> poles;

    std::size_t pole_count() const { return poles.size(); }
    bool empty() const { return poles.empty(); }
    /// Frames summed over every pole.
    std::size_t total_frames() const;

    bool operator==(const pole_corpus_set&) const = default;
};

void save_corpus_set(std::ostream& out, const pole_corpus_set& set);
pole_corpus_set load_corpus_set(std::istream& in);

void save_corpus_set_file(const std::filesystem::path& path, const pole_corpus_set& set);
pole_corpus_set load_corpus_set_file(const std::filesystem::path& path);

/// Record one corpus per pole id. Each pole gets an independent seed
/// derived from `base.seed` via the frame_seed splitmix, and the corpus
/// name gains a "/p<i>" suffix — so two poles never share rng streams or
/// scene sequences, and the whole set is reproducible from the one base
/// config.
pole_corpus_set record_corpus_set(const record_config& base,
                                  const std::vector<std::string>& pole_ids);

}  // namespace hawc::replay
