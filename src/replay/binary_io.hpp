#pragma once

// The shared binary envelope for every replay artifact (frame corpora,
// fp32 weights, int8 models, object pools):
//
//   u32 magic | u16 version | u16 flags | u64 payload_size | u64 fnv1a64(payload) | payload
//
// Writers serialize the payload into a byte buffer first, so the checksum
// covers every payload byte. Readers validate magic, version, flags and
// checksum before parsing, and parse through a bounds-checked cursor — a
// corrupted or truncated file fails with a clean io_error, never with UB.
// All integers are little-endian native (the format targets the x86/ARM
// edge fleet, not archival interchange).
//
// Flags are feature bits, not free-form: a reader rejects any bit it does
// not understand, so a future format feature can never be silently
// misparsed by an old reader. The one defined bit, envelope_flag_compressed,
// marks an lz-compressed payload (codec.hpp): the stored payload is then
// `u64 uncompressed_size | compressed bytes`, the checksum still covers
// the stored (compressed) bytes, and read_envelope decompresses
// transparently — callers always receive the raw payload.

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace hawc::replay {

/// FNV-1a 64-bit over a byte range; the integrity checksum of every
/// replay artifact.
std::uint64_t fnv1a64(const void* data, std::size_t size);

/// Envelope flag bits a current reader understands. Any other set bit is
/// a format from the future and fails the load with io_error.
inline constexpr std::uint16_t envelope_flag_compressed = 0x0001;
inline constexpr std::uint16_t envelope_known_flags = envelope_flag_compressed;

/// Append-only payload builder.
class byte_writer {
public:
    void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
    void u16(std::uint16_t v) { raw(&v, sizeof(v)); }
    void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
    void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
    void i32(std::int32_t v) { raw(&v, sizeof(v)); }
    void f32(float v) { raw(&v, sizeof(v)); }
    void f64(double v) { raw(&v, sizeof(v)); }

    /// Length-prefixed UTF-8 string (u32 length). Throws io_error when
    /// the string cannot fit the u32 prefix — silently truncating the
    /// length while raw() writes every byte would produce a corrupt,
    /// self-inconsistent payload.
    void str(std::string_view s);

    /// Raw bytes, caller-framed.
    void raw(const void* data, std::size_t size);

    const std::vector<char>& bytes() const { return bytes_; }

private:
    std::vector<char> bytes_;
};

/// Bounds-checked payload cursor. Every read throws io_error on overrun,
/// so malformed interiors surface as clean parse errors.
class byte_reader {
public:
    byte_reader(const char* data, std::size_t size) : data_{data}, size_{size} {}
    explicit byte_reader(const std::vector<char>& bytes)
        : byte_reader(bytes.data(), bytes.size()) {}

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int32_t i32();
    float f32();
    double f64();
    std::string str();
    void raw(void* out, std::size_t size);

    std::size_t remaining() const { return size_ - offset_; }
    bool exhausted() const { return offset_ == size_; }

    /// Require that the whole payload was consumed (trailing garbage is a
    /// format error, not padding).
    void expect_exhausted(const char* what) const;

private:
    const char* cursor(std::size_t need, const char* what);

    const char* data_;
    std::size_t size_;
    std::size_t offset_ = 0;
};

/// Write `payload` to `out` under the envelope header (flags = 0).
void write_envelope(std::ostream& out, std::uint32_t magic, std::uint16_t version,
                    const byte_writer& payload);

/// Write `payload` lz-compressed under the envelope header with
/// envelope_flag_compressed set. read_envelope decompresses
/// transparently; readers predating the flag reject the artifact cleanly
/// instead of misparsing the compressed bytes.
void write_envelope_compressed(std::ostream& out, std::uint32_t magic, std::uint16_t version,
                               const byte_writer& payload);

/// Read and validate an envelope: magic must equal `magic`, version must
/// be <= `max_version` (and >= 1), flags must only carry known bits, and
/// the checksum must match. A compressed payload is decompressed before
/// returning. Returns the payload bytes and the stored version. Throws
/// io_error otherwise.
struct envelope {
    std::uint16_t version = 0;
    std::vector<char> payload;
};
envelope read_envelope(std::istream& in, std::uint32_t magic, std::uint16_t max_version,
                       const char* what);

}  // namespace hawc::replay
