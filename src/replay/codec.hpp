#pragma once

// In-repo LZ4-class byte-oriented codec for the corpus container
// (container.hpp). The format is a token stream of (literal run, back
// reference) sequences:
//
//   token: 1 byte — high nibble = literal length, low nibble = match
//          length - 4; a nibble of 15 extends with 255-continuation bytes
//   literals: `literal length` raw bytes
//   offset: 3 bytes little-endian (1 .. 2^24-1, must not reach before the
//           start of the output) — 3 bytes instead of LZ4's 2 so matches
//           can span whole multi-frame chunks, where most of a fleet
//           recording's redundancy lives
//   match-length extension bytes when the low nibble is 15
//
// The final sequence carries literals only (the decoder stops when the
// input is exhausted after a literal run). The encoder is a greedy
// hash-chain match finder: newest-first candidate chains per 4-byte hash,
// depth-limited, emitting a match only when it is long enough (>= 6) to
// beat the 3-byte offset it costs.
//
// The decoder is fully bounds-checked: every literal copy, extension
// byte, offset, and match copy is validated against both the source and
// the destination before any byte moves, so a corrupted or adversarial
// stream throws io_error and can never write past the destination buffer
// (the property the container's corruption sweep pins under ASan).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hawc::replay {

/// Largest input one compress/decompress call accepts (1 GiB). Chunked
/// callers never get near this; the cap keeps every internal position fit
/// for the 32-bit chain tables and bounds allocation on malformed sizes.
inline constexpr std::size_t lz_max_input_size = std::size_t{1} << 30;

/// Worst-case compressed size of `n` input bytes: incompressible data
/// expands only by the literal-run framing (1 token + one extension byte
/// per 255 literals).
std::size_t lz_max_compressed_size(std::size_t n);

/// Compress src[0, n) into `out` (replacing its contents). Returns the
/// compressed size (== out.size()).
std::size_t lz_compress_into(const void* src, std::size_t n, std::vector<char>& out);
std::vector<char> lz_compress(const void* src, std::size_t n);

/// Decompress src[0, n) into dst[0, dst_size). The stream must produce
/// exactly `dst_size` bytes; anything else — short output, overlong
/// output, truncated extensions, an offset before the start — throws
/// io_error without ever writing past dst + dst_size.
void lz_decompress_into(const void* src, std::size_t n, void* dst, std::size_t dst_size);
std::vector<char> lz_decompress(const void* src, std::size_t n, std::size_t dst_size);

}  // namespace hawc::replay
