#include "replay/codec.hpp"

#include <cstring>

#include "common/error.hpp"

namespace hawc::replay {

namespace {

constexpr std::size_t min_match = 4;   // smallest match the format encodes
constexpr std::size_t emit_match = 6;  // smallest match worth a 3-byte offset
constexpr std::size_t max_offset = (std::size_t{1} << 24) - 1;
constexpr unsigned hash_bits = 16;
constexpr int chain_depth = 32;

std::uint32_t read32(const unsigned char* p) {
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

std::uint32_t hash4(std::uint32_t v) {
    // Knuth multiplicative hash of the 4 bytes at the candidate position.
    return (v * 2654435761u) >> (32u - hash_bits);
}

}  // namespace

std::size_t lz_max_compressed_size(std::size_t n) {
    return n + n / 255 + 16;
}

std::size_t lz_compress_into(const void* src_v, std::size_t n, std::vector<char>& out) {
    HAWC_REQUIRE(n <= lz_max_input_size, "lz_compress input exceeds the 1 GiB cap");
    out.clear();
    if (n == 0) return 0;
    const auto* src = static_cast<const unsigned char*>(src_v);
    out.reserve(lz_max_compressed_size(n));

    const auto emit_extension = [&out](std::size_t extra) {
        while (extra >= 255) {
            out.push_back(static_cast<char>(255));
            extra -= 255;
        }
        out.push_back(static_cast<char>(extra));
    };
    // One sequence: the literals in [lit_start, lit_start + lit_len), then
    // — unless this is the terminal literal-only flush — a back reference.
    const auto emit_sequence = [&](std::size_t lit_start, std::size_t lit_len,
                                   std::size_t offset, std::size_t match_len) {
        const std::size_t lit_nibble = lit_len < 15 ? lit_len : 15;
        const std::size_t match_nibble =
            match_len == 0 ? 0 : (match_len - min_match < 15 ? match_len - min_match : 15);
        out.push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
        if (lit_nibble == 15) emit_extension(lit_len - 15);
        out.insert(out.end(), src + lit_start, src + lit_start + lit_len);
        if (match_len != 0) {
            out.push_back(static_cast<char>(offset & 0xff));
            out.push_back(static_cast<char>((offset >> 8) & 0xff));
            out.push_back(static_cast<char>((offset >> 16) & 0xff));
            if (match_nibble == 15) emit_extension(match_len - min_match - 15);
        }
    };

    // head[h] = newest position whose 4-byte hash is h; prev[p] = the
    // next-older position sharing p's hash — a classic hash chain.
    std::vector<std::int32_t> head(std::size_t{1} << hash_bits, -1);
    std::vector<std::int32_t> prev(n >= min_match ? n : 0, -1);

    std::size_t anchor = 0;
    std::size_t pos = 0;
    std::size_t miss_streak = 0;  // consecutive positions with no usable match
    while (pos + min_match <= n) {
        const std::uint32_t h = hash4(read32(src + pos));
        std::size_t best_len = 0;
        std::size_t best_offset = 0;
        std::int32_t candidate = head[h];
        for (int depth = 0; candidate >= 0 && depth < chain_depth; ++depth) {
            const auto cand = static_cast<std::size_t>(candidate);
            const std::size_t offset = pos - cand;
            if (offset > max_offset) break;  // chain only gets older
            const std::size_t max_len = n - pos;
            std::size_t len = 0;
            while (len < max_len && src[cand + len] == src[pos + len]) ++len;
            if (len > best_len) {
                best_len = len;
                best_offset = offset;
            }
            candidate = prev[cand];
        }
        if (best_len >= emit_match) {
            miss_streak = 0;
            emit_sequence(anchor, pos - anchor, best_offset, best_len);
            const std::size_t end = pos + best_len;
            while (pos < end && pos + min_match <= n) {
                const std::uint32_t hh = hash4(read32(src + pos));
                prev[pos] = head[hh];
                head[hh] = static_cast<std::int32_t>(pos);
                ++pos;
            }
            pos = end;
            anchor = end;
        } else {
            prev[pos] = head[h];
            head[h] = static_cast<std::int32_t>(pos);
            // Skip acceleration: on matchless stretches (float32 sensor
            // noise) the step widens every 64 misses, so incompressible
            // chunks are scanned, found hopeless, and stored raw at
            // hundreds of MB/s instead of crawling the hash chains.
            // Any match resets the streak, so redundant regions after a
            // noisy stretch still compress.
            ++miss_streak;
            pos += 1 + (miss_streak >> 6);
        }
    }
    emit_sequence(anchor, n - anchor, 0, 0);
    return out.size();
}

std::vector<char> lz_compress(const void* src, std::size_t n) {
    std::vector<char> out;
    lz_compress_into(src, n, out);
    return out;
}

void lz_decompress_into(const void* src_v, std::size_t n, void* dst_v, std::size_t dst_size) {
    HAWC_REQUIRE(dst_size <= lz_max_input_size, "lz_decompress output exceeds the 1 GiB cap");
    const auto* src = static_cast<const unsigned char*>(src_v);
    auto* dst = static_cast<char*>(dst_v);
    std::size_t ip = 0;
    std::size_t op = 0;

    const auto read_extension = [&](std::size_t base) {
        std::size_t length = base;
        while (true) {
            if (ip >= n) throw io_error{"lz stream: truncated length extension"};
            const unsigned char byte = src[ip++];
            length += byte;
            if (byte != 255) return length;
        }
    };

    while (ip < n) {
        const unsigned char token = src[ip++];
        std::size_t literal_len = token >> 4;
        if (literal_len == 15) literal_len = read_extension(literal_len);
        if (literal_len > n - ip) throw io_error{"lz stream: literal run past end of input"};
        if (literal_len > dst_size - op) {
            throw io_error{"lz stream: literal run past end of output"};
        }
        if (literal_len != 0) std::memcpy(dst + op, src + ip, literal_len);
        ip += literal_len;
        op += literal_len;
        if (ip == n) break;  // terminal sequence: literals only

        if (n - ip < 3) throw io_error{"lz stream: truncated match offset"};
        const std::size_t offset = static_cast<std::size_t>(src[ip]) |
                                   (static_cast<std::size_t>(src[ip + 1]) << 8) |
                                   (static_cast<std::size_t>(src[ip + 2]) << 16);
        ip += 3;
        if (offset == 0 || offset > op) {
            throw io_error{"lz stream: match offset outside the produced output"};
        }
        std::size_t match_len = (token & 0x0f) + min_match;
        if ((token & 0x0f) == 15) match_len = read_extension(match_len);
        if (match_len > dst_size - op) {
            throw io_error{"lz stream: match run past end of output"};
        }
        // Byte-wise so self-overlapping matches (offset < length, the RLE
        // case) replicate correctly.
        const char* match = dst + (op - offset);
        for (std::size_t i = 0; i < match_len; ++i) dst[op + i] = match[i];
        op += match_len;
    }
    if (op != dst_size) {
        throw io_error{"lz stream: decompressed size mismatch (got " + std::to_string(op) +
                       ", expected " + std::to_string(dst_size) + ")"};
    }
}

std::vector<char> lz_decompress(const void* src, std::size_t n, std::size_t dst_size) {
    HAWC_REQUIRE(dst_size <= lz_max_input_size, "lz_decompress output exceeds the 1 GiB cap");
    std::vector<char> out(dst_size);
    lz_decompress_into(src, n, out.data(), dst_size);
    return out;
}

}  // namespace hawc::replay
