#pragma once

// Versioned binary format for recorded point-cloud frame sequences — the
// "record" half of record/replay. A corpus is a named, seeded sequence of
// raw captures (plus per-frame ground truth) that can be checked in as a
// small golden file and replayed deterministically through the pipeline;
// see DESIGN.md "Replay & parity" for the format layout and the
// determinism contract.
//
// Point coordinates are stored as float32: golden corpora are recorded
// sensor data, and the recorder rounds its in-memory clouds to float
// before returning them (see round_to_recorded), so that a recorded
// corpus, its file, and every future load of that file are bit-identical.

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "pointcloud/point_cloud.hpp"

namespace hawc::replay {

inline constexpr std::uint32_t frame_corpus_magic = 0x52465748;  // "HWFR"
inline constexpr std::uint16_t frame_corpus_version = 1;

/// One recorded capture: the raw cloud as the sensor (or fault injector)
/// emitted it, plus the simulation ground truth for accuracy tracking.
struct frame_record {
    point_cloud cloud;
    std::uint32_t ground_truth = 0;

    bool operator==(const frame_record&) const = default;
};

/// A recorded frame sequence. `base_seed` seeds the deterministic
/// per-frame rng streams on replay (see replay_driver.hpp).
struct frame_corpus {
    std::string name;
    std::uint64_t base_seed = 0;
    std::vector<frame_record> frames;

    std::size_t size() const { return frames.size(); }
    bool empty() const { return frames.empty(); }
    std::size_t total_points() const;

    bool operator==(const frame_corpus&) const = default;
};

/// Round every coordinate to its float32 representation — what the
/// on-disk format preserves. Recorded corpora pass through this before
/// being returned so save/load round-trips bit-exactly.
point_cloud round_to_recorded(const point_cloud& cloud);

class byte_writer;
class byte_reader;

/// One frame in the shared wire layout (u32 ground truth, u64 point
/// count, f32 x/y/z per point) — the unit both the corpus envelope
/// payload and the container's chunk payloads (container.hpp) are built
/// from, so a frame read from either path is bit-identical.
void write_frame_record(byte_writer& out, const frame_record& frame);
frame_record read_frame_record(byte_reader& in);

void save_corpus(std::ostream& out, const frame_corpus& corpus);
frame_corpus load_corpus(std::istream& in);

void save_corpus_file(const std::filesystem::path& path, const frame_corpus& corpus);
frame_corpus load_corpus_file(const std::filesystem::path& path);

}  // namespace hawc::replay
