#pragma once

// Record/replay driver. Recording renders deterministic walkway scenes
// (src/sim) through the LiDAR scanner — optionally through the sensor
// fault injector — into a frame_corpus. Replaying feeds a corpus through
// the full frame_supervisor pipeline with a deterministic per-frame rng
// stream, so two replays of the same corpus (any implementation pair,
// any thread count) see byte-identical inputs and rng draws frame by
// frame. That seed discipline is what makes the parity checker's diffs
// meaningful: a divergence is an implementation difference, never replay
// noise.

#include <cstdint>
#include <span>

#include "dataset/capture_pipeline.hpp"
#include "replay/container.hpp"
#include "replay/frame_format.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/supervisor.hpp"

namespace hawc::replay {

/// Deterministic seed of frame `index` in a corpus: every consumer
/// (replay, parity pairs, logit diffs) must derive its per-frame rng from
/// this so the streams line up run-to-run and pair-to-pair.
std::uint64_t frame_seed(std::uint64_t base_seed, std::size_t index);

struct record_config {
    std::string name = "walkway";
    std::uint64_t seed = 2024;
    std::size_t frames = 6;

    /// Per-frame crowd composition: people drawn uniformly in
    /// [min_people, max_people], objects in [0, max_objects].
    std::size_t min_people = 0;
    std::size_t max_people = 6;
    std::size_t max_objects = 3;

    capture_config capture{};

    /// When set, every recorded frame passes through the sensor fault
    /// injector (for corpora that exercise the degradation ladder).
    bool inject_faults = false;
    fault_injection_config faults{};
};

/// Render `config.frames` scenes and return them as a corpus. Fully
/// deterministic: the same config yields the same corpus, bit for bit,
/// and the returned clouds are pre-rounded to the on-disk float32
/// precision (round_to_recorded), so saving and reloading the result is
/// an identity.
frame_corpus record_corpus(const record_config& config);

/// Outcome of replaying one corpus through a supervisor.
struct replay_result {
    std::vector<frame_report> reports;

    std::size_t frames_ok = 0;
    std::size_t frames_degraded = 0;
    std::size_t frames_dropped = 0;
    std::size_t total_count = 0;              // sum of per-frame counts
    std::size_t absolute_count_error = 0;     // sum |count - ground_truth|
};

/// Feed every frame of `corpus` through `supervisor` with the corpus's
/// deterministic per-frame rng streams.
replay_result replay_corpus(frame_supervisor& supervisor, const frame_corpus& corpus);

/// Like replay_corpus, but frame i's rng stream is seeded from
/// frame_seed(corpus.base_seed, indices[i]) instead of i. This is the
/// flight-recorder postmortem path (src/obs): a dumped bundle holds the
/// LAST N frames of a longer stream, so bit-exact re-execution must
/// reuse each frame's original stream index, not its ring position.
/// indices.size() must equal corpus.size().
replay_result replay_corpus_indexed(frame_supervisor& supervisor, const frame_corpus& corpus,
                                    std::span<const std::uint64_t> indices);

/// Stream-replay stream `stream` of an open container through
/// `supervisor` with the same deterministic per-frame rng streams as
/// replay_corpus — a packed corpus replays bit-identically to its
/// uncompressed original — decompressing one chunk at a time, so memory
/// stays bounded by the reader's chunk cache, not the corpus size.
replay_result replay_container(frame_supervisor& supervisor, container_reader& reader,
                               std::uint32_t stream = 0);

}  // namespace hawc::replay
