#pragma once

// Generic int8 classifier: a quantized model plus the featurizer of the
// fp32 model it was converted from. Works for HAWC, PointNet and the
// AutoEncoder head alike, so every *-CC pipeline has an int8 variant.

#include <cmath>
#include <functional>

#include "classifiers/classifier.hpp"
#include "common/error.hpp"
#include "nn/trainer.hpp"
#include "quant/calibrate.hpp"

namespace hawc {

class quantized_classifier final : public human_classifier {
public:
    /// Converts a cluster to the model's input tensor (batch 1).
    using featurizer_fn = std::function<tensor(const point_cloud&, rng&)>;

    quantized_classifier(quantized_model model, featurizer_fn featurize, std::string name)
        : model_{std::move(model)}, featurize_{std::move(featurize)}, name_{std::move(name)} {}

    bool is_human(const point_cloud& cluster, rng& random) const override {
        const tensor logits = model_.forward(featurize_(cluster, random));
        const float object_logit = logits.at(0, 0);
        const float human_logit = logits.at(0, 1);
        // Dequantization validation: corrupted scales or poisoned inputs
        // surface as non-finite logits. Raising data_integrity_error lets
        // the streaming runtime fall back to the fp32 model instead of
        // silently classifying on garbage (NaN comparisons are all false).
        if (!std::isfinite(object_logit) || !std::isfinite(human_logit)) {
            throw data_integrity_error{"quantized " + name_ +
                                       " produced non-finite logits"};
        }
        return human_logit > object_logit;
    }

    std::string name() const override { return name_; }
    // quantized_model::forward is const and stateless per call.
    bool thread_safe() const override { return true; }
    const quantized_model& model() const { return model_; }

    eval_metrics evaluate(const cluster_dataset& data, rng& random) const {
        labelled_dataset featurized;
        featurized.labels = data.labels;
        featurized.samples.reserve(data.size());
        for (const auto& cluster : data.clusters) {
            featurized.samples.push_back(featurize_(cluster, random));
        }
        return evaluate_quantized(model_, featurized);
    }

private:
    quantized_model model_;
    featurizer_fn featurize_;
    std::string name_;
};

}  // namespace hawc
