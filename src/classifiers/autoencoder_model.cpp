#include "classifiers/autoencoder_model.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "nn/activations.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

namespace hawc {

namespace {

struct built_nets {
    sequential classifier;
    sequential decoder;
    std::size_t encoder_layers = 0;
};

built_nets build(const autoencoder_config& config, rng& random) {
    HAWC_REQUIRE(!config.encoder_units.empty(), "encoder needs at least one layer");
    built_nets nets;
    const std::size_t input_features = config.features.feature_count();

    std::size_t in = input_features;
    for (std::size_t width : config.encoder_units) {
        nets.classifier.emplace<dense>(in, width, random);
        nets.classifier.emplace<relu>();
        in = width;
    }
    // Linear bottleneck: a ReLU here can die wholesale under
    // reconstruction pretraining, collapsing the code to zero.
    nets.classifier.emplace<dense>(in, config.bottleneck, random);
    nets.encoder_layers = nets.classifier.layer_count();

    // Classification output layer on the bottleneck.
    nets.classifier.emplace<dense>(config.bottleneck, 2, random);

    // Mirrored decoder.
    std::size_t dec_in = config.bottleneck;
    for (auto it = config.encoder_units.rbegin(); it != config.encoder_units.rend(); ++it) {
        nets.decoder.emplace<dense>(dec_in, *it, random);
        nets.decoder.emplace<relu>();
        dec_in = *it;
    }
    nets.decoder.emplace<dense>(dec_in, input_features, random);
    return nets;
}

}  // namespace

autoencoder_model::autoencoder_model(const autoencoder_config& config, rng& random)
    : config_{config} {
    auto nets = build(config, random);
    classifier_ = std::move(nets.classifier);
    decoder_ = std::move(nets.decoder);
    encoder_layer_count_ = nets.encoder_layers;
}

tensor autoencoder_model::featurize_cluster(const point_cloud& cluster) const {
    const tensor raw = slice_features(cluster, config_.features);
    HAWC_REQUIRE(scaler_.fitted(), "autoencoder must be trained before featurizing");
    return scaler_.transform(raw);
}

labelled_dataset autoencoder_model::featurize(const cluster_dataset& data) const {
    labelled_dataset out;
    out.labels = data.labels;
    out.samples.reserve(data.size());
    for (const auto& cluster : data.clusters) out.samples.push_back(featurize_cluster(cluster));
    return out;
}

std::vector<epoch_report> autoencoder_model::train(const cluster_dataset& train_set,
                                                   const cluster_dataset* test_set, rng& random) {
    HAWC_REQUIRE(train_set.size() > 0, "cannot train on an empty dataset");

    // Fit the scaler on raw training features.
    std::vector<tensor> raw;
    raw.reserve(train_set.size());
    for (const auto& cluster : train_set.clusters) {
        raw.push_back(slice_features(cluster, config_.features));
    }
    scaler_.fit(raw);

    const labelled_dataset train_data = featurize(train_set);

    // --- Phase 1: reconstruction pretraining (encoder + decoder). ---
    adam pretrain_opt{config_.adam};
    auto enc_params = classifier_.parameters_range(0, encoder_layer_count_);
    auto dec_params = decoder_.parameters();
    std::vector<parameter*> joint = enc_params;
    joint.insert(joint.end(), dec_params.begin(), dec_params.end());
    pretrain_opt.attach(std::move(joint));

    std::vector<std::size_t> order(train_data.size());
    std::iota(order.begin(), order.end(), 0);
    const std::size_t batch_size = config_.head_training.batch_size;

    for (std::size_t epoch = 0; epoch < config_.reconstruction_epochs; ++epoch) {
        for (std::size_t i = order.size(); i > 1; --i) {
            std::swap(order[i - 1], order[random.uniform_index(i)]);
        }
        for (std::size_t begin = 0; begin < order.size(); begin += batch_size) {
            const std::size_t end = std::min(begin + batch_size, order.size());
            std::vector<tensor> chunk;
            chunk.reserve(end - begin);
            for (std::size_t i = begin; i < end; ++i) chunk.push_back(train_data.samples[order[i]]);
            const tensor x = tensor::stack(chunk);

            const tensor z = classifier_.forward_range(x, 0, encoder_layer_count_, true);
            const tensor x_hat = decoder_.forward(z, true);
            const auto loss = mean_squared_error(x_hat, x);
            const tensor gz = decoder_.backward(loss.grad);
            classifier_.backward_range(gz, 0, encoder_layer_count_);
            pretrain_opt.step();
        }
    }

    // --- Phase 2: classification head on the frozen bottleneck. ---
    // Only the output layer trains (the paper's baseline follows Liou et
    // al.: the autoencoder representation is learned by reconstruction,
    // with a classification output layer on top).
    labelled_dataset test_data;
    if (test_set != nullptr) test_data = featurize(*test_set);

    adam head_opt{config_.head_training.adam};
    head_opt.attach(classifier_.parameters_range(encoder_layer_count_, classifier_.layer_count()));

    std::vector<epoch_report> reports;
    for (std::size_t epoch = 0; epoch < config_.head_training.epochs; ++epoch) {
        for (std::size_t i = order.size(); i > 1; --i) {
            std::swap(order[i - 1], order[random.uniform_index(i)]);
        }
        double loss_sum = 0.0;
        std::size_t correct = 0;
        std::size_t batches = 0;
        std::vector<std::uint8_t> batch_labels;
        for (std::size_t begin = 0; begin < order.size(); begin += batch_size) {
            const std::size_t end = std::min(begin + batch_size, order.size());
            std::vector<tensor> chunk;
            batch_labels.clear();
            for (std::size_t i = begin; i < end; ++i) {
                chunk.push_back(train_data.samples[order[i]]);
                batch_labels.push_back(train_data.labels[order[i]]);
            }
            const tensor x = tensor::stack(chunk);
            // training=true: backward_range below needs the layer caches.
            // The classifier is dense/relu only, so the flag changes no
            // numerics (no batch-stat layers).
            const tensor logits = classifier_.forward(x, /*training=*/true);
            auto loss = softmax_cross_entropy(logits, batch_labels);
            classifier_.backward_range(loss.grad_logits, encoder_layer_count_,
                                       classifier_.layer_count());
            head_opt.step();
            loss_sum += loss.loss;
            correct += loss.correct;
            ++batches;
        }
        epoch_report report;
        report.epoch = epoch;
        report.train_loss = loss_sum / static_cast<double>(std::max<std::size_t>(batches, 1));
        report.train_accuracy =
            static_cast<double>(correct) / static_cast<double>(train_data.size());
        if (test_set != nullptr && test_data.size() > 0) {
            report.test_accuracy = hawc::evaluate(classifier_, test_data).accuracy;
        }
        reports.push_back(report);
    }
    return reports;
}

eval_metrics autoencoder_model::evaluate(const cluster_dataset& data) {
    return hawc::evaluate(classifier_, featurize(data));
}

bool autoencoder_model::is_human(const point_cloud& cluster, rng& /*random*/) const {
    const tensor logits = classifier_.infer(featurize_cluster(cluster));
    return logits.at(0, 1) > logits.at(0, 0);
}

std::size_t autoencoder_model::parameter_count() const {
    return classifier_.parameter_count() + decoder_.parameter_count();
}

quantized_model autoencoder_model::quantize(const cluster_dataset& calibration, rng& random,
                                            std::size_t calibration_count) const {
    HAWC_REQUIRE(calibration.size() > 0, "need calibration clusters");
    std::vector<tensor> samples;
    const std::size_t count = std::min(calibration_count, calibration.size());
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t pick = random.uniform_index(calibration.size());
        samples.push_back(featurize_cluster(calibration.clusters[pick]));
    }
    return quantize_model(const_cast<sequential&>(classifier_), samples);
}

autoencoder_config autoencoder_model::grid_search(const cluster_dataset& train_set,
                                                  const cluster_dataset& validation_set,
                                                  rng& random,
                                                  const autoencoder_config& base) {
    // KerasTuner-style sweep of encoder widths (16..128 in powers of two),
    // keeping the mirrored decoder and bottleneck fixed.
    autoencoder_config best = base;
    double best_accuracy = -1.0;
    for (std::size_t w1 : {32, 64, 128}) {
        for (std::size_t w2 : {16, 32, 64}) {
            if (w2 > w1) continue;
            autoencoder_config candidate = base;
            candidate.encoder_units = {w1, (w1 + w2) / 2, w2};
            rng trial_rng = random.fork();
            autoencoder_model model{candidate, trial_rng};
            model.train(train_set, nullptr, trial_rng);
            const double accuracy = model.evaluate(validation_set).accuracy;
            if (accuracy > best_accuracy) {
                best_accuracy = accuracy;
                best = candidate;
            }
        }
    }
    return best;
}

}  // namespace hawc
