#pragma once

// Uniform human/object classifier interface. The counting pipelines are
// generic over this: HAWC, PointNet, AutoEncoder, and OC-SVM (in fp32 or
// int8) all plug into the same HAWC-CC machinery.

#include <string>

#include "common/rng.hpp"
#include "features/cluster_dataset.hpp"

namespace hawc {

class human_classifier {
public:
    virtual ~human_classifier() = default;

    /// True if the cluster is classified as a person. `random` feeds the
    /// stochastic up-sampling step where applicable.
    virtual bool is_human(const point_cloud& cluster, rng& random) const = 0;

    virtual std::string name() const = 0;

    /// True when is_human may run concurrently from several threads,
    /// each with its own rng. Classifiers with mutable per-call state
    /// keep the default false and the counting loops stay sequential.
    virtual bool thread_safe() const { return false; }
};

}  // namespace hawc
