#pragma once

// PointNet baseline (Qi et al.): per-point shared MLPs (1x1 convolutions
// over a P x 1 grid), a global max-pool for permutation invariance, and a
// fully-connected head. Like PointNet-CC in the paper, it reuses the
// noise-controlled up-sampling to satisfy its fixed-size input.
//
// Two presets: `scaled()` (default) is a width-reduced variant that is
// trainable on a laptop-class CPU; `paper_scale()` matches the original
// ~748k-parameter architecture and is used for op counting and latency
// measurement (its weights do not need training for either).

#include "classifiers/classifier.hpp"
#include "features/upsampling.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "quant/calibrate.hpp"

namespace hawc {

struct pointnet_config {
    upsample_config upsample{};
    std::vector<std::size_t> mlp_channels = {32, 64, 128};  // shared MLP widths
    std::vector<std::size_t> fc_units = {64};               // head widths before logits
    double ground_z = -3.0;
    double xy_clamp = 3.0;  // clamp centered x/y (padding noise can be far away)
    train_config training{};

    static pointnet_config scaled() { return {}; }

    /// Original PointNet classification network widths (~748k params).
    static pointnet_config paper_scale() {
        pointnet_config c;
        c.mlp_channels = {64, 64, 64, 128, 1024};
        c.fc_units = {512, 256};
        return c;
    }
};

class pointnet_model final : public human_classifier {
public:
    pointnet_model(const pointnet_config& config, object_pool pool, rng& random);

    /// Cluster -> (1, P, 1, 3) tensor of normalized point coordinates.
    tensor featurize_cluster(const point_cloud& cluster, rng& random) const;
    labelled_dataset featurize(const cluster_dataset& data, rng& random) const;

    std::vector<epoch_report> train(const cluster_dataset& train_set,
                                    const cluster_dataset* test_set, rng& random);
    eval_metrics evaluate(const cluster_dataset& data, rng& random);

    bool is_human(const point_cloud& cluster, rng& random) const override;
    std::string name() const override { return "PointNet"; }
    // is_human uses the const infer path and per-call rngs only.
    bool thread_safe() const override { return true; }

    sequential& network() { return network_; }
    std::size_t parameter_count() const { return network_.parameter_count(); }
    std::vector<std::size_t> sample_shape() const;

    quantized_model quantize(const cluster_dataset& calibration, rng& random,
                             std::size_t calibration_count = 100) const;

private:
    pointnet_config config_;
    object_pool pool_;
    mutable sequential network_;
};

}  // namespace hawc
