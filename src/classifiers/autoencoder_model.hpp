#pragma once

// AutoEncoder baseline (after Liou et al., as integrated in the paper's
// AutoEncoder-CC): hand-crafted slice features, standardized, fed to a
// three-layer encoder + bottleneck; a mirrored three-layer decoder
// pretrains the representation by reconstruction, then a classification
// output layer on the bottleneck is trained with cross entropy (the
// encoder fine-tunes jointly). Inference uses encoder + head only.

#include "classifiers/classifier.hpp"
#include "classifiers/feature_scaler.hpp"
#include "features/slice_features.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "quant/calibrate.hpp"

namespace hawc {

struct autoencoder_config {
    slice_feature_config features{};
    std::vector<std::size_t> encoder_units = {64, 48, 32};  // three-layer encoder
    std::size_t bottleneck = 16;
    std::size_t reconstruction_epochs = 20;
    train_config head_training{};  // cross-entropy phase
    adam_config adam{};
};

class autoencoder_model final : public human_classifier {
public:
    autoencoder_model(const autoencoder_config& config, rng& random);

    /// Slice-feature extraction + standardization. The scaler is fitted
    /// during train(); calling featurize before training throws.
    tensor featurize_cluster(const point_cloud& cluster) const;
    labelled_dataset featurize(const cluster_dataset& data) const;

    /// Two-phase training: reconstruction pretraining, then supervised
    /// head training. Returns the head-phase per-epoch reports.
    std::vector<epoch_report> train(const cluster_dataset& train_set,
                                    const cluster_dataset* test_set, rng& random);

    eval_metrics evaluate(const cluster_dataset& data);

    bool is_human(const point_cloud& cluster, rng& random) const override;
    std::string name() const override { return "AutoEncoder"; }
    // is_human uses the const infer path and per-call rngs only.
    bool thread_safe() const override { return true; }

    /// The encoder+head classification network (decoder excluded).
    sequential& network() { return classifier_; }
    std::size_t parameter_count() const;

    quantized_model quantize(const cluster_dataset& calibration, rng& random,
                             std::size_t calibration_count = 100) const;

    /// Grid-search encoder widths (KerasTuner-style, 16..128 per layer)
    /// by validation accuracy; returns the best config found.
    static autoencoder_config grid_search(const cluster_dataset& train_set,
                                          const cluster_dataset& validation_set, rng& random,
                                          const autoencoder_config& base = {});

private:
    autoencoder_config config_;
    feature_scaler scaler_;
    sequential classifier_;  // encoder layers + classification head
    sequential decoder_;     // reconstruction path from the bottleneck
    std::size_t encoder_layer_count_ = 0;  // prefix of classifier_ that is the encoder
};

}  // namespace hawc
