#include "classifiers/ocsvm_model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace hawc {

std::vector<float> ocsvm_model::featurize(const point_cloud& cluster) const {
    const tensor raw = slice_features(cluster, config_.features);
    const tensor scaled = scaler_.transform(raw);
    return {scaled.data(), scaled.data() + scaled.size()};
}

double ocsvm_model::kernel(const std::vector<float>& a, const std::vector<float>& b) const {
    double d_sq = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
        d_sq += d * d;
    }
    return std::exp(-gamma_ * d_sq);
}

void ocsvm_model::train(const cluster_dataset& train_set) {
    // Collect positives and fit the scaler on them.
    std::vector<tensor> raw;
    for (std::size_t i = 0; i < train_set.size(); ++i) {
        if (train_set.labels[i] == label_human) {
            raw.push_back(slice_features(train_set.clusters[i], config_.features));
        }
    }
    HAWC_REQUIRE(!raw.empty(), "OC-SVM needs at least one human training sample");
    scaler_.fit(raw);

    training_points_.clear();
    training_points_.reserve(raw.size());
    for (const auto& t : raw) {
        const tensor scaled = scaler_.transform(t);
        training_points_.emplace_back(scaled.data(), scaled.data() + scaled.size());
    }

    const std::size_t l = training_points_.size();
    gamma_ = config_.gamma > 0.0
                 ? config_.gamma
                 : 1.0 / static_cast<double>(training_points_.front().size());

    // Kernel matrix (training sets are modest; l^2 doubles fit easily).
    std::vector<double> k(l * l);
    for (std::size_t i = 0; i < l; ++i) {
        for (std::size_t j = i; j < l; ++j) {
            const double v = kernel(training_points_[i], training_points_[j]);
            k[i * l + j] = v;
            k[j * l + i] = v;
        }
    }

    // nu-one-class dual: min 1/2 a'Ka  s.t. 0 <= a_i <= 1/(nu*l), sum a = 1.
    // Initialise feasibly and optimize with pairwise (SMO-style) updates
    // that preserve the sum constraint.
    const double upper = 1.0 / (config_.nu * static_cast<double>(l));
    alphas_.assign(l, 1.0 / static_cast<double>(l));
    std::vector<double> gradient(l);  // (K a)_i
    for (std::size_t i = 0; i < l; ++i) {
        double g = 0.0;
        for (std::size_t j = 0; j < l; ++j) g += k[i * l + j] * alphas_[j];
        gradient[i] = g;
    }

    for (std::size_t sweep = 0; sweep < config_.max_sweeps; ++sweep) {
        // Most-violating pair: i with max gradient among a_i > 0, j with
        // min gradient among a_j < upper.
        std::size_t i_up = l, j_down = l;
        double g_max = -1e300, g_min = 1e300;
        for (std::size_t i = 0; i < l; ++i) {
            if (alphas_[i] > 1e-12 && gradient[i] > g_max) {
                g_max = gradient[i];
                i_up = i;
            }
            if (alphas_[i] < upper - 1e-12 && gradient[i] < g_min) {
                g_min = gradient[i];
                j_down = i;
            }
        }
        if (i_up == l || j_down == l || g_max - g_min < config_.tolerance) break;

        // Optimal step transferring mass from i_up to j_down.
        const double k_ii = k[i_up * l + i_up];
        const double k_jj = k[j_down * l + j_down];
        const double k_ij = k[i_up * l + j_down];
        const double curvature = std::max(k_ii + k_jj - 2.0 * k_ij, 1e-12);
        double step = (g_max - g_min) / curvature;
        step = std::min(step, alphas_[i_up]);
        step = std::min(step, upper - alphas_[j_down]);
        if (step <= 0.0) break;

        alphas_[i_up] -= step;
        alphas_[j_down] += step;
        for (std::size_t m = 0; m < l; ++m) {
            gradient[m] += step * (k[m * l + j_down] - k[m * l + i_up]);
        }
    }

    // rho: average decision value over margin support vectors
    // (0 < alpha < upper); fall back to all support vectors.
    double rho_sum = 0.0;
    std::size_t rho_count = 0;
    for (std::size_t i = 0; i < l; ++i) {
        if (alphas_[i] > 1e-9 && alphas_[i] < upper - 1e-9) {
            rho_sum += gradient[i];
            ++rho_count;
        }
    }
    if (rho_count == 0) {
        for (std::size_t i = 0; i < l; ++i) {
            if (alphas_[i] > 1e-9) {
                rho_sum += gradient[i];
                ++rho_count;
            }
        }
    }
    rho_ = rho_count > 0 ? rho_sum / static_cast<double>(rho_count) : 0.0;
}

double ocsvm_model::decision_value(const point_cloud& cluster) const {
    HAWC_REQUIRE(trained(), "OC-SVM not trained");
    const auto x = featurize(cluster);
    double f = 0.0;
    for (std::size_t i = 0; i < training_points_.size(); ++i) {
        if (alphas_[i] > 1e-12) f += alphas_[i] * kernel(training_points_[i], x);
    }
    return f - rho_;
}

bool ocsvm_model::is_human(const point_cloud& cluster, rng& /*random*/) const {
    return decision_value(cluster) >= 0.0;
}

std::size_t ocsvm_model::support_vector_count() const {
    return static_cast<std::size_t>(
        std::count_if(alphas_.begin(), alphas_.end(), [](double a) { return a > 1e-9; }));
}

ocsvm_model::metrics ocsvm_model::evaluate(const cluster_dataset& data) const {
    std::size_t tp = 0, tn = 0, fp = 0, fn = 0;
    rng dummy{0};
    for (std::size_t i = 0; i < data.size(); ++i) {
        const bool predicted = is_human(data.clusters[i], dummy);
        const bool actual = data.labels[i] == label_human;
        if (predicted && actual) ++tp;
        if (predicted && !actual) ++fp;
        if (!predicted && actual) ++fn;
        if (!predicted && !actual) ++tn;
    }
    metrics m;
    m.accuracy = static_cast<double>(tp + tn) / static_cast<double>(data.size());
    m.precision = tp + fp > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fp) : 0.0;
    m.recall = tp + fn > 0 ? static_cast<double>(tp) / static_cast<double>(tp + fn) : 0.0;
    m.f1 = m.precision + m.recall > 0.0
               ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
               : 0.0;
    return m;
}

}  // namespace hawc
