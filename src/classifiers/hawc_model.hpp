#pragma once

// HAWC: the paper's Height-Aware Human Classifier. Noise-controlled
// up-sampling + height-aware projection + a lightweight CNN of three
// 3x3 conv layers (batch norm + ReLU) and two fully-connected layers,
// ~62k parameters at the default widths.

#include <filesystem>
#include <memory>

#include "classifiers/classifier.hpp"
#include "features/pipeline.hpp"
#include "nn/sequential.hpp"
#include "nn/trainer.hpp"
#include "quant/calibrate.hpp"

namespace hawc {

struct hawc_config {
    cnn_feature_config features{};        // HAP over 324 points by default
    std::size_t conv_channels[3] = {16, 24, 32};
    std::size_t hidden_units = 98;        // tuned so the default is ~62k params
    train_config training{};
};

class hawc_model final : public human_classifier {
public:
    /// Builds the network; `pool` is the object-data pool for
    /// noise-controlled up-sampling.
    hawc_model(const hawc_config& config, object_pool pool, rng& random);

    /// Convert clusters to CNN inputs with this model's feature pipeline.
    labelled_dataset featurize(const cluster_dataset& data, rng& random) const;

    /// Train on clusters (featurized internally); per-epoch reports.
    std::vector<epoch_report> train(const cluster_dataset& train_set,
                                    const cluster_dataset* test_set, rng& random);

    eval_metrics evaluate(const cluster_dataset& data, rng& random);

    bool is_human(const point_cloud& cluster, rng& random) const override;
    std::string name() const override { return "HAWC"; }
    // is_human uses the const infer path and per-call rngs only.
    bool thread_safe() const override { return true; }

    sequential& network() { return network_; }
    const cnn_feature_extractor& extractor() const { return extractor_; }
    std::size_t parameter_count() const { return network_.parameter_count(); }

    /// Post-training int8 quantization using `calibration_count` random
    /// training clusters (the paper uses 100).
    quantized_model quantize(const cluster_dataset& calibration, rng& random,
                             std::size_t calibration_count = 100) const;

    void save(const std::filesystem::path& path) const;
    void load(const std::filesystem::path& path);

private:
    hawc_config config_;
    cnn_feature_extractor extractor_;
    mutable sequential network_;  // forward() mutates layer caches
};

}  // namespace hawc
