#include "classifiers/pointnet_model.hpp"

#include <algorithm>
#include <numbers>

#include "common/error.hpp"
#include "nn/activations.hpp"
#include "nn/batch_norm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pooling.hpp"

namespace hawc {

namespace {

sequential build_network(const pointnet_config& config, rng& random) {
    HAWC_REQUIRE(!config.mlp_channels.empty(), "PointNet needs at least one MLP layer");
    sequential net;
    std::size_t in_channels = 3;
    for (std::size_t width : config.mlp_channels) {
        net.emplace<conv2d>(in_channels, width, 1, padding::valid, random);
        net.emplace<batch_norm>(width);
        net.emplace<relu>();
        in_channels = width;
    }
    net.emplace<global_max_pool>();
    net.emplace<flatten>();
    std::size_t in_features = in_channels;
    for (std::size_t width : config.fc_units) {
        net.emplace<dense>(in_features, width, random);
        net.emplace<relu>();
        in_features = width;
    }
    net.emplace<dense>(in_features, 2, random);
    return net;
}

}  // namespace

pointnet_model::pointnet_model(const pointnet_config& config, object_pool pool, rng& random)
    : config_{config}, pool_{std::move(pool)}, network_{build_network(config, random)} {}

std::vector<std::size_t> pointnet_model::sample_shape() const {
    return {config_.upsample.target_points, 1, 3};
}

tensor pointnet_model::featurize_cluster(const point_cloud& cluster, rng& random) const {
    const vec3 anchor = cluster.empty() ? vec3{} : cluster.centroid();
    const point_cloud padded = upsample_cluster(cluster, config_.upsample, pool_, random);
    tensor out{{1, config_.upsample.target_points, 1, 3}};
    const double clamp = config_.xy_clamp;
    const float xy_scale = static_cast<float>(1.0 / clamp);
    constexpr float z_scale = 1.0f / 2.2f;
    for (std::size_t j = 0; j < padded.size(); ++j) {
        out.at(0, j, 0, 0) =
            static_cast<float>(std::clamp(padded[j].x - anchor.x, -clamp, clamp)) * xy_scale;
        out.at(0, j, 0, 1) =
            static_cast<float>(std::clamp(padded[j].y - anchor.y, -clamp, clamp)) * xy_scale;
        out.at(0, j, 0, 2) = static_cast<float>(padded[j].z - config_.ground_z) * z_scale;
    }
    return out;
}

labelled_dataset pointnet_model::featurize(const cluster_dataset& data, rng& random) const {
    labelled_dataset out;
    out.labels = data.labels;
    out.samples.reserve(data.size());
    for (const auto& cluster : data.clusters) {
        out.samples.push_back(featurize_cluster(cluster, random));
    }
    return out;
}

std::vector<epoch_report> pointnet_model::train(const cluster_dataset& train_set,
                                                const cluster_dataset* test_set, rng& random) {
    const labelled_dataset train_data = featurize(train_set, random);
    labelled_dataset test_data;
    if (test_set != nullptr) test_data = featurize(*test_set, random);
    const epoch_refresh_fn refresh = [this, &train_set](labelled_dataset& data, rng& r) {
        for (std::size_t i = 0; i < train_set.size(); ++i) {
            const auto& cluster = train_set.clusters[i];
            const point_cloud rotated =
                cluster.rotated_z(cluster.centroid(), r.uniform(0.0, 2.0 * std::numbers::pi));
            data.samples[i] = featurize_cluster(rotated, r);
        }
    };
    return train_classifier(network_, train_data, test_set != nullptr ? &test_data : nullptr,
                            config_.training, random, refresh);
}

eval_metrics pointnet_model::evaluate(const cluster_dataset& data, rng& random) {
    return hawc::evaluate(network_, featurize(data, random));
}

bool pointnet_model::is_human(const point_cloud& cluster, rng& random) const {
    const tensor logits = network_.infer(featurize_cluster(cluster, random));
    return logits.at(0, 1) > logits.at(0, 0);
}

quantized_model pointnet_model::quantize(const cluster_dataset& calibration, rng& random,
                                         std::size_t calibration_count) const {
    HAWC_REQUIRE(calibration.size() > 0, "need calibration clusters");
    std::vector<tensor> samples;
    const std::size_t count = std::min(calibration_count, calibration.size());
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t pick = random.uniform_index(calibration.size());
        samples.push_back(featurize_cluster(calibration.clusters[pick], random));
    }
    return quantize_model(network_, samples);
}

}  // namespace hawc
