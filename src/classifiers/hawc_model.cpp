#include "classifiers/hawc_model.hpp"

#include <fstream>
#include <numbers>

#include "common/error.hpp"
#include "nn/activations.hpp"
#include "nn/batch_norm.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pooling.hpp"

namespace hawc {

namespace {

sequential build_network(const hawc_config& config, const cnn_feature_extractor& extractor,
                         rng& random) {
    const auto shape = extractor.sample_shape();  // (D, D, C)
    const std::size_t d = shape[0];
    const std::size_t in_channels = shape[2];

    sequential net;
    // conv1 (same padding) + BN + ReLU + pool
    net.emplace<conv2d>(in_channels, config.conv_channels[0], 3, padding::same, random);
    net.emplace<batch_norm>(config.conv_channels[0]);
    net.emplace<relu>();
    net.emplace<max_pool2d>(2);
    // conv2 + BN + ReLU + pool
    net.emplace<conv2d>(config.conv_channels[0], config.conv_channels[1], 3, padding::same,
                        random);
    net.emplace<batch_norm>(config.conv_channels[1]);
    net.emplace<relu>();
    net.emplace<max_pool2d>(2);
    // conv3 + BN + ReLU
    net.emplace<conv2d>(config.conv_channels[1], config.conv_channels[2], 3, padding::same,
                        random);
    net.emplace<batch_norm>(config.conv_channels[2]);
    net.emplace<relu>();
    // FC head
    const std::size_t spatial = (d / 2) / 2;
    const std::size_t flat = spatial * spatial * config.conv_channels[2];
    net.emplace<flatten>();
    net.emplace<dense>(flat, config.hidden_units, random);
    net.emplace<relu>();
    net.emplace<dense>(config.hidden_units, 2, random);
    return net;
}

}  // namespace

hawc_model::hawc_model(const hawc_config& config, object_pool pool, rng& random)
    : config_{config},
      extractor_{config.features, std::move(pool)},
      network_{build_network(config, extractor_, random)} {}

labelled_dataset hawc_model::featurize(const cluster_dataset& data, rng& random) const {
    labelled_dataset out;
    out.samples.reserve(data.size());
    out.labels = data.labels;
    for (const auto& cluster : data.clusters) {
        out.samples.push_back(extractor_.extract(cluster, random));
    }
    return out;
}

std::vector<epoch_report> hawc_model::train(const cluster_dataset& train_set,
                                            const cluster_dataset* test_set, rng& random) {
    const labelled_dataset train_data = featurize(train_set, random);
    labelled_dataset test_data;
    if (test_set != nullptr) test_data = featurize(*test_set, random);
    // Per-epoch augmentation: re-draw the up-sampling noise (padding is
    // noise, not signal, and must not be memorizable) and apply a random
    // yaw rotation around the cluster centroid (pedestrian heading is
    // arbitrary in deployment).
    const epoch_refresh_fn refresh = [this, &train_set](labelled_dataset& data, rng& r) {
        for (std::size_t i = 0; i < train_set.size(); ++i) {
            const auto& cluster = train_set.clusters[i];
            const point_cloud rotated =
                cluster.rotated_z(cluster.centroid(), r.uniform(0.0, 2.0 * std::numbers::pi));
            data.samples[i] = extractor_.extract(rotated, r);
        }
    };
    return train_classifier(network_, train_data, test_set != nullptr ? &test_data : nullptr,
                            config_.training, random, refresh);
}

eval_metrics hawc_model::evaluate(const cluster_dataset& data, rng& random) {
    return hawc::evaluate(network_, featurize(data, random));
}

bool hawc_model::is_human(const point_cloud& cluster, rng& random) const {
    const tensor input = extractor_.extract(cluster, random);
    const tensor logits = network_.infer(input);
    return logits.at(0, 1) > logits.at(0, 0);
}

quantized_model hawc_model::quantize(const cluster_dataset& calibration, rng& random,
                                     std::size_t calibration_count) const {
    HAWC_REQUIRE(calibration.size() > 0, "need calibration clusters");
    std::vector<tensor> samples;
    const std::size_t count = std::min(calibration_count, calibration.size());
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t pick = random.uniform_index(calibration.size());
        samples.push_back(extractor_.extract(calibration.clusters[pick], random));
    }
    return quantize_model(network_, samples);
}

void hawc_model::save(const std::filesystem::path& path) const {
    std::ofstream out{path, std::ios::binary};
    if (!out) throw io_error{"cannot open for writing: " + path.string()};
    network_.save(out);
}

void hawc_model::load(const std::filesystem::path& path) {
    std::ifstream in{path, std::ios::binary};
    if (!in) throw io_error{"cannot open for reading: " + path.string()};
    network_.load(in);
}

}  // namespace hawc
