#include "classifiers/feature_scaler.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hawc {

void feature_scaler::fit(const std::vector<tensor>& features) {
    HAWC_REQUIRE(!features.empty(), "cannot fit scaler on empty feature set");
    const std::size_t f = features.front().size();
    mean_.assign(f, 0.0f);
    stddev_.assign(f, 0.0f);

    for (const auto& x : features) {
        HAWC_REQUIRE(x.size() == f, "inconsistent feature width");
        for (std::size_t i = 0; i < f; ++i) mean_[i] += x[i];
    }
    const auto n = static_cast<float>(features.size());
    for (auto& m : mean_) m /= n;

    for (const auto& x : features) {
        for (std::size_t i = 0; i < f; ++i) {
            const float d = x[i] - mean_[i];
            stddev_[i] += d * d;
        }
    }
    // Floor the deviation: near-constant features must not be amplified
    // into huge standardized values by a vanishing denominator.
    for (std::size_t i = 0; i < stddev_.size(); ++i) {
        const float floor = std::max(1e-3f, 1e-3f * std::abs(mean_[i]));
        stddev_[i] = std::max(std::sqrt(stddev_[i] / n), floor);
    }
}

tensor feature_scaler::transform(const tensor& features) const {
    HAWC_REQUIRE(fitted(), "scaler not fitted");
    HAWC_REQUIRE(features.size() == mean_.size(), "feature width mismatch");
    tensor out = features;
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = (out[i] - mean_[i]) / stddev_[i];
    }
    return out;
}

}  // namespace hawc
