#pragma once

// One-Class SVM baseline (Schölkopf et al., nu-formulation) over the
// same standardized slice features as the AutoEncoder. Trained on the
// "Human" class only; decision f(x) = sum_i alpha_i K(x_i, x) - rho,
// classified human when f(x) >= 0. RBF kernel with gamma = 1/n_features
// and nu = 0.01, matching the paper's setup.

#include "classifiers/classifier.hpp"
#include "classifiers/feature_scaler.hpp"
#include "features/slice_features.hpp"

namespace hawc {

struct ocsvm_config {
    slice_feature_config features{};
    double nu = 0.01;             // bounds both training error and SV fraction
    double gamma = 0.0;           // 0 = auto: 1 / feature_count
    std::size_t max_sweeps = 200; // SMO sweeps over all pairs
    double tolerance = 1e-5;
};

class ocsvm_model final : public human_classifier {
public:
    explicit ocsvm_model(const ocsvm_config& config = {}) : config_{config} {}

    /// Fit on the positive (human) clusters of the training set only —
    /// one-class training never sees negatives.
    void train(const cluster_dataset& train_set);

    /// Signed decision value (>= 0 means human).
    double decision_value(const point_cloud& cluster) const;

    bool is_human(const point_cloud& cluster, rng& random) const override;
    std::string name() const override { return "OC-SVM"; }
    // Decision evaluation is pure over the trained model state.
    bool thread_safe() const override { return true; }

    std::size_t support_vector_count() const;
    bool trained() const { return !alphas_.empty(); }

    /// Standard accuracy metrics against a labelled test set.
    struct metrics {
        double accuracy = 0.0;
        double precision = 0.0;
        double recall = 0.0;
        double f1 = 0.0;
    };
    metrics evaluate(const cluster_dataset& data) const;

private:
    std::vector<float> featurize(const point_cloud& cluster) const;
    double kernel(const std::vector<float>& a, const std::vector<float>& b) const;

    ocsvm_config config_;
    feature_scaler scaler_;
    std::vector<std::vector<float>> training_points_;
    std::vector<double> alphas_;
    double rho_ = 0.0;
    double gamma_ = 1.0;
};

}  // namespace hawc
