#pragma once

// Per-feature standardization (zero mean, unit variance) fitted on
// training features — both the AutoEncoder and OC-SVM baselines need it
// because the slice features mix counts, metres, and ratios.

#include <vector>

#include "nn/tensor.hpp"

namespace hawc {

class feature_scaler {
public:
    feature_scaler() = default;

    /// Fit on (1, F) feature tensors.
    void fit(const std::vector<tensor>& features);

    bool fitted() const { return !mean_.empty(); }
    std::size_t feature_count() const { return mean_.size(); }

    /// Standardize in place: x' = (x - mean) / std.
    tensor transform(const tensor& features) const;

    const std::vector<float>& mean() const { return mean_; }
    const std::vector<float>& stddev() const { return stddev_; }

private:
    std::vector<float> mean_;
    std::vector<float> stddev_;
};

}  // namespace hawc
