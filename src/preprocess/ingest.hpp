#pragma once

// Point cloud ingestion: the ROI crop and rule-based ground segmentation
// HAWC-CC applies to every raw capture before clustering (paper Sec. III).

#include "pointcloud/point_cloud.hpp"

namespace hawc {

/// Region-of-interest crop. Defaults are the paper's deployment: targets
/// between 12 m and 35 m from the sensor in x (closer points fall in the
/// pole's shadow, farther ones reflect too weakly) and the full 5 m-wide
/// walkway in y.
struct roi_config {
    double x_min_m = 12.0;
    double x_max_m = 35.0;
    double y_min_m = -2.5;
    double y_max_m = 2.5;
    double z_min_m = -3.0;   // sensor detection floor (ground level)
    double z_max_m = 0.5;
};

/// Keep only points inside the ROI box.
point_cloud crop_roi(const point_cloud& raw, const roi_config& roi = {});

/// Rule-based ground segmentation (paper Sec. III): ground noise extends
/// about 0.4 m above the ground plane at z = -3, so points with
/// z < z_min = -2.6 are discarded.
struct ground_filter_config {
    double z_min_m = -2.6;
};

point_cloud remove_ground(const point_cloud& cloud, const ground_filter_config& config = {});

/// Full ingestion: ROI crop then ground removal.
point_cloud ingest(const point_cloud& raw, const roi_config& roi = {},
                   const ground_filter_config& ground = {});

}  // namespace hawc
