#pragma once

// Point cloud ingestion: the ROI crop and rule-based ground segmentation
// HAWC-CC applies to every raw capture before clustering (paper Sec. III).

#include "pointcloud/point_cloud.hpp"

namespace hawc {

/// Region-of-interest crop. Defaults are the paper's deployment: targets
/// between 12 m and 35 m from the sensor in x (closer points fall in the
/// pole's shadow, farther ones reflect too weakly) and the full 5 m-wide
/// walkway in y.
struct roi_config {
    double x_min_m = 12.0;
    double x_max_m = 35.0;
    double y_min_m = -2.5;
    double y_max_m = 2.5;
    double z_min_m = -3.0;   // sensor detection floor (ground level)
    double z_max_m = 0.5;
};

/// Drop points with any non-finite coordinate. Real sensors emit NaN/Inf
/// returns under fault conditions (saturation, crosstalk, truncated UDP
/// packets); letting them through would poison kd-tree queries, centroid
/// and bounds geometry downstream, so ingestion guarantees finiteness
/// explicitly rather than relying on NaN comparison semantics.
point_cloud drop_non_finite(const point_cloud& cloud);

/// Keep only finite points inside the ROI box.
point_cloud crop_roi(const point_cloud& raw, const roi_config& roi = {});

/// Capture-health statistics gathered during ingestion, for callers
/// (like the streaming supervisor) that validate every frame. Collected
/// inside the crop pass so validation costs no extra sweep of the raw
/// cloud.
struct ingest_stats {
    std::size_t raw_points = 0;
    std::size_t non_finite = 0;   // NaN/Inf coordinates, always dropped
    std::size_t below_floor = 0;  // finite returns deeper than `floor_z`
};

/// Rule-based ground segmentation (paper Sec. III): ground noise extends
/// about 0.4 m above the ground plane at z = -3, so points with
/// z < z_min = -2.6 are discarded.
struct ground_filter_config {
    double z_min_m = -2.6;
};

point_cloud remove_ground(const point_cloud& cloud, const ground_filter_config& config = {});

/// Full ingestion: ROI crop then ground removal.
point_cloud ingest(const point_cloud& raw, const roi_config& roi = {},
                   const ground_filter_config& ground = {});

/// Validating ingestion: same result as ingest(), plus capture-health
/// counts taken in the same pass. `floor_z` is the plausibility floor
/// for below_floor (a pole-mounted sensor cannot see through the
/// walkway, so returns deeper than this indicate range noise).
point_cloud ingest(const point_cloud& raw, const roi_config& roi,
                   const ground_filter_config& ground, double floor_z,
                   ingest_stats& stats);

}  // namespace hawc
