#include "preprocess/ingest.hpp"

namespace hawc {

point_cloud crop_roi(const point_cloud& raw, const roi_config& roi) {
    return raw.filtered([&](const vec3& p) {
        return p.x >= roi.x_min_m && p.x <= roi.x_max_m && p.y >= roi.y_min_m &&
               p.y <= roi.y_max_m && p.z >= roi.z_min_m && p.z <= roi.z_max_m;
    });
}

point_cloud remove_ground(const point_cloud& cloud, const ground_filter_config& config) {
    return cloud.filtered([&](const vec3& p) { return p.z >= config.z_min_m; });
}

point_cloud ingest(const point_cloud& raw, const roi_config& roi,
                   const ground_filter_config& ground) {
    return remove_ground(crop_roi(raw, roi), ground);
}

}  // namespace hawc
