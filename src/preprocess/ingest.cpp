#include "preprocess/ingest.hpp"

#include <cmath>

namespace hawc {

namespace {

bool finite_point(const vec3& p) {
    return std::isfinite(p.x) && std::isfinite(p.y) && std::isfinite(p.z);
}

}  // namespace

point_cloud drop_non_finite(const point_cloud& cloud) {
    return cloud.filtered(finite_point);
}

point_cloud crop_roi(const point_cloud& raw, const roi_config& roi) {
    return raw.filtered([&](const vec3& p) {
        return finite_point(p) && p.x >= roi.x_min_m && p.x <= roi.x_max_m &&
               p.y >= roi.y_min_m && p.y <= roi.y_max_m && p.z >= roi.z_min_m &&
               p.z <= roi.z_max_m;
    });
}

point_cloud remove_ground(const point_cloud& cloud, const ground_filter_config& config) {
    return cloud.filtered([&](const vec3& p) { return p.z >= config.z_min_m; });
}

point_cloud ingest(const point_cloud& raw, const roi_config& roi,
                   const ground_filter_config& ground) {
    return remove_ground(crop_roi(raw, roi), ground);
}

point_cloud ingest(const point_cloud& raw, const roi_config& roi,
                   const ground_filter_config& ground, double floor_z,
                   ingest_stats& stats) {
    stats.raw_points = raw.size();
    stats.non_finite = 0;
    stats.below_floor = 0;
    // One fused pass: crop + ground threshold + health counts. The crop
    // visits every raw point anyway, so validation is free here, where a
    // separate sweep of a full outdoor scan is not.
    point_cloud out;
    for (const auto& p : raw) {
        if (!finite_point(p)) {
            ++stats.non_finite;
            continue;
        }
        if (p.z < floor_z) ++stats.below_floor;
        if (p.x >= roi.x_min_m && p.x <= roi.x_max_m && p.y >= roi.y_min_m &&
            p.y <= roi.y_max_m && p.z >= roi.z_min_m && p.z <= roi.z_max_m &&
            p.z >= ground.z_min_m) {
            out.push_back(p);
        }
    }
    return out;
}

}  // namespace hawc
