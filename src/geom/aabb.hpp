#pragma once

// Axis-aligned bounding box, used for ROI cropping and scene extents.

#include <limits>

#include "geom/vec3.hpp"

namespace hawc {

/// Closed axis-aligned box [lo, hi]. Default-constructed box is empty
/// (contains nothing) and can be grown with expand().
struct aabb {
    vec3 lo{std::numeric_limits<double>::infinity(), std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()};
    vec3 hi{-std::numeric_limits<double>::infinity(), -std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity()};

    aabb() = default;
    aabb(const vec3& lo_, const vec3& hi_) : lo{lo_}, hi{hi_} {}

    bool empty() const { return lo.x > hi.x || lo.y > hi.y || lo.z > hi.z; }

    bool contains(const vec3& p) const {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y && p.z >= lo.z &&
               p.z <= hi.z;
    }

    void expand(const vec3& p) {
        lo.x = std::min(lo.x, p.x);
        lo.y = std::min(lo.y, p.y);
        lo.z = std::min(lo.z, p.z);
        hi.x = std::max(hi.x, p.x);
        hi.y = std::max(hi.y, p.y);
        hi.z = std::max(hi.z, p.z);
    }

    void expand(const aabb& b) {
        if (b.empty()) return;
        expand(b.lo);
        expand(b.hi);
    }

    vec3 center() const { return (lo + hi) * 0.5; }
    vec3 size() const { return empty() ? vec3{} : hi - lo; }

    bool intersects(const aabb& b) const {
        return !empty() && !b.empty() && lo.x <= b.hi.x && hi.x >= b.lo.x && lo.y <= b.hi.y &&
               hi.y >= b.lo.y && lo.z <= b.hi.z && hi.z >= b.lo.z;
    }

    /// Squared distance from a point to the box (0 if inside).
    double distance_sq(const vec3& p) const {
        auto axis = [](double v, double lo_, double hi_) {
            if (v < lo_) return lo_ - v;
            if (v > hi_) return v - hi_;
            return 0.0;
        };
        const double dx = axis(p.x, lo.x, hi.x);
        const double dy = axis(p.y, lo.y, hi.y);
        const double dz = axis(p.z, lo.z, hi.z);
        return dx * dx + dy * dy + dz * dz;
    }
};

}  // namespace hawc
