#include "geom/vec3.hpp"

#include <ostream>

namespace hawc {

std::ostream& operator<<(std::ostream& out, const vec3& v) {
    return out << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace hawc
