#pragma once

// 3D vector type used for LiDAR points, directions, and scene geometry.

#include <cmath>
#include <iosfwd>

namespace hawc {

/// Plain value type: three doubles, full set of arithmetic operators.
struct vec3 {
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    constexpr vec3() = default;
    constexpr vec3(double x_, double y_, double z_) : x{x_}, y{y_}, z{z_} {}

    constexpr vec3 operator+(const vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
    constexpr vec3 operator-(const vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
    constexpr vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
    constexpr vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
    constexpr vec3 operator-() const { return {-x, -y, -z}; }

    vec3& operator+=(const vec3& o) {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }
    vec3& operator-=(const vec3& o) {
        x -= o.x;
        y -= o.y;
        z -= o.z;
        return *this;
    }
    vec3& operator*=(double s) {
        x *= s;
        y *= s;
        z *= s;
        return *this;
    }

    constexpr bool operator==(const vec3&) const = default;

    constexpr double dot(const vec3& o) const { return x * o.x + y * o.y + z * o.z; }
    constexpr vec3 cross(const vec3& o) const {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }
    constexpr double norm_sq() const { return dot(*this); }
    double norm() const { return std::sqrt(norm_sq()); }

    /// Unit vector in the same direction; returns zero vector unchanged.
    vec3 normalized() const {
        const double n = norm();
        return n > 0.0 ? *this / n : *this;
    }

    double distance_to(const vec3& o) const { return (*this - o).norm(); }
    constexpr double distance_sq_to(const vec3& o) const { return (*this - o).norm_sq(); }
};

constexpr vec3 operator*(double s, const vec3& v) { return v * s; }

std::ostream& operator<<(std::ostream& out, const vec3& v);

/// Linear interpolation between two points (t in [0,1] maps a to b).
constexpr vec3 lerp(const vec3& a, const vec3& b, double t) { return a + (b - a) * t; }

}  // namespace hawc
