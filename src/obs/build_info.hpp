#pragma once

// Build identity surfaced as metrics: the standard Prometheus pattern of
// a constant `hawc_build_info{...} 1` gauge whose labels carry the
// version, compiler, active kernel ISA, and sanitizer mode. Scraping it
// from every pole answers "which binary is that pole actually running?"
// without shelling into the device — mixed-version fleets show up as two
// distinct label sets on one dashboard.

#include <string>

#include "telemetry/event.hpp"
#include "telemetry/metrics.hpp"

namespace hawc::obs {

struct build_info {
    std::string version;    // HAWC_VERSION_STRING compile definition
    std::string compiler;   // e.g. "gcc-12.2.0"
    std::string isa;        // runtime-dispatched kernel tier (scalar/neon/avx2)
    std::string sanitizer;  // "none", "address", "thread", ...
};

/// The identity of this binary. The ISA field reflects the *runtime*
/// dispatch decision, not the compile flags.
build_info current_build_info();

/// Register `hawc_build_info{version=...,compiler=...,isa=...,sanitizer=...} 1`
/// in `reg`, and optionally announce the kernel dispatch decision as an
/// isa_dispatch event (services call this once at startup). Idempotent:
/// re-registering the same labels is a no-op set(1).
void register_build_info(telemetry::metrics_registry& reg,
                         telemetry::event_sink* events = nullptr);

}  // namespace hawc::obs
