#pragma once

// The black-box postmortem bundle: what a pole's flight recorder dumps
// when its watchdog quarantines it (or a deadline storm / manual trigger
// fires). A bundle is a self-contained forensics artifact:
//
//   * the last N frames the supervisor actually processed — clouds in
//     the round_to_recorded float32 precision, each with its original
//     stream index, observed (count, status) outcome, and the
//     supervisor's stale-rung carry state *before* the frame,
//   * the recent structured events and trace spans, pre-rendered as
//     JSONL / Chrome-trace JSON (human-readable without any tool),
//   * trigger, tick, pole id, and the pole's rng base seed.
//
// Because the carry state and per-frame stream indices are captured,
// replay_postmortem() re-executes the exact frames through a *fresh*
// supervisor via replay::replay_corpus_indexed and gets bit-identical
// (count, status) per frame — the property the flight-recorder drill
// asserts. On disk a bundle rides the standard checksummed replay
// envelope ("HWPM") with the compressed-payload flag set (clouds and the
// pre-rendered JSONL/trace text shrink well), so corruption fails with a
// clean io_error and uncompressed pre-flag bundles still load.

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "replay/frame_format.hpp"
#include "runtime/supervisor.hpp"

namespace hawc::obs {

inline constexpr std::uint32_t postmortem_magic = 0x4d505748;  // "HWPM"
inline constexpr std::uint16_t postmortem_version = 1;

enum class dump_trigger : std::uint8_t {
    manual = 0,
    quarantine = 1,
    deadline_storm = 2,
};

const char* to_string(dump_trigger trigger);

/// One frame as the flight recorder kept it.
struct recorded_frame {
    std::uint64_t frame_index = 0;  // original stream index (seeds the rng)
    std::uint32_t ground_truth = 0;
    point_cloud cloud;              // round_to_recorded precision
    supervisor_carry carry;         // supervisor state BEFORE this frame
    std::uint64_t count = 0;        // observed outcome
    frame_status status = frame_status::ok;

    bool operator==(const recorded_frame&) const = default;
};

struct postmortem_bundle {
    std::string pole_id;
    std::uint64_t base_seed = 0;
    dump_trigger trigger = dump_trigger::manual;
    std::uint64_t tick = 0;             // virtual time of the dump
    std::vector<recorded_frame> frames;  // oldest first
    std::string events_jsonl;           // recent events, one JSON object per line
    std::string trace_json;             // recent spans, Chrome trace_event format

    bool operator==(const postmortem_bundle&) const = default;
};

void save_postmortem(std::ostream& out, const postmortem_bundle& bundle);
postmortem_bundle load_postmortem(std::istream& in);

void save_postmortem_file(const std::filesystem::path& path, const postmortem_bundle& bundle);
postmortem_bundle load_postmortem_file(const std::filesystem::path& path);

/// Outcome of re-executing a bundle through a fresh supervisor.
struct postmortem_replay_result {
    std::size_t frames = 0;
    std::size_t matches = 0;  // frames whose (count, status) reproduced
    bool bit_exact = false;   // matches == frames
    std::vector<std::size_t> divergent;  // bundle indices that did not
};

/// Restore the bundle's carry state into `supervisor` and replay every
/// recorded frame through replay::replay_corpus_indexed with the
/// original stream indices, comparing (count, status) per frame. The
/// supervisor must be configured like the recorded one (same config and
/// classifiers) and freshly constructed or restarted — replay mutates
/// its carry state and health counters.
postmortem_replay_result replay_postmortem(const postmortem_bundle& bundle,
                                           frame_supervisor& supervisor);

}  // namespace hawc::obs
