#pragma once

// The black-box flight recorder one pole_runtime carries: a bounded ring
// of the last N frames the supervisor processed (the cloud as delivered,
// plus the supervisor's carry state before each frame and the observed
// outcome). On a trigger — quarantine, a deadline storm, or an explicit
// call — the ring is snapshotted into a postmortem_bundle, clouds
// rounded to the round_to_recorded float32 precision, together with the
// recent events and spans, ready to save and replay bit-exactly
// (postmortem.hpp). Recording is O(1) per frame: the cloud is moved in,
// and the rounding pass runs only at dump time.
//
// Threading: a recorder belongs to exactly one pole and is only touched
// by whichever thread runs that pole's tick (the pole_runtime contract),
// so it needs no locks. Dumps are produced in memory and drained by the
// single-threaded fleet loop via take_dumps(); file I/O never happens on
// a pool thread.

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/postmortem.hpp"
#include "telemetry/trace.hpp"

namespace hawc::obs {

struct flight_recorder_config {
    /// Frames retained (the "last N" of the black box).
    std::size_t frame_capacity = 16;

    /// Bundles held until take_dumps() drains them; further triggers are
    /// counted but dropped (a crash-looping pole must not hoard memory).
    std::size_t max_pending_dumps = 2;

    /// Consecutive frames carrying a frame-deadline overrun before the
    /// recorder auto-dumps with dump_trigger::deadline_storm; 0 disables.
    std::size_t deadline_storm_threshold = 0;

    /// Events / spans included in a bundle (newest first in time,
    /// rendered oldest-first).
    std::size_t max_bundle_events = 64;
    std::size_t max_bundle_spans = 256;
};

class flight_recorder {
public:
    flight_recorder(const flight_recorder_config& config, std::string pole_id,
                    std::uint64_t base_seed);

    /// Optional context snapshotted into bundles at dump time. The event
    /// log may be shared (its snapshot is thread-safe); the trace sink
    /// must be this pole's own.
    void attach_sources(const event_log* events, const telemetry::trace_sink* spans);

    /// Record one processed frame. Takes `cloud` by value — move in the
    /// already-owned message cloud and the hot path is O(1); rounding to
    /// the recorded precision is deferred to dump time, off the per-frame
    /// path. `before` is the supervisor's carry state captured BEFORE
    /// process() ran. Returns true when this record auto-triggered a
    /// deadline-storm dump.
    bool record(std::uint64_t frame_index, std::uint32_t ground_truth,
                point_cloud cloud, const supervisor_carry& before,
                const frame_report& report);

    /// Snapshot the ring into a pending bundle. Returns false when the
    /// ring is empty or the pending queue is full (counted in
    /// dumps_dropped()).
    bool trigger_dump(dump_trigger trigger, std::uint64_t tick);

    /// Drain pending bundles (oldest first). Call from the single
    /// thread that owns this pole between ticks.
    std::vector<postmortem_bundle> take_dumps();

    std::size_t pending_dumps() const { return pending_.size(); }
    std::uint64_t frames_recorded() const { return frames_recorded_; }
    std::uint64_t dumps_produced() const { return dumps_produced_; }
    std::uint64_t dumps_dropped() const { return dumps_dropped_; }
    std::size_t ring_size() const { return ring_.size(); }
    const std::string& pole_id() const { return pole_id_; }

    /// Forget recorded frames (keeping pending bundles). Called on a
    /// supervisor restart: a bundle's frames must share one supervisor
    /// epoch or the carry-based replay re-arming breaks.
    void reset_ring();

    void clear();

private:
    flight_recorder_config config_;
    std::string pole_id_;
    std::uint64_t base_seed_;

    const event_log* events_ = nullptr;
    const telemetry::trace_sink* spans_ = nullptr;

    std::deque<recorded_frame> ring_;
    std::vector<postmortem_bundle> pending_;
    std::size_t overrun_streak_ = 0;
    std::uint64_t frames_recorded_ = 0;
    std::uint64_t dumps_produced_ = 0;
    std::uint64_t dumps_dropped_ = 0;
};

}  // namespace hawc::obs
