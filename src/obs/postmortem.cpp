#include "obs/postmortem.hpp"

#include <fstream>

#include "common/error.hpp"
#include "replay/binary_io.hpp"
#include "replay/replay_driver.hpp"

namespace hawc::obs {

const char* to_string(dump_trigger trigger) {
    switch (trigger) {
        case dump_trigger::manual: return "manual";
        case dump_trigger::quarantine: return "quarantine";
        case dump_trigger::deadline_storm: return "deadline_storm";
    }
    return "unknown";
}

namespace {

void write_carry(replay::byte_writer& w, const supervisor_carry& carry) {
    w.u8(carry.has_last_good ? 1 : 0);
    w.u64(carry.last_good_count);
    w.u64(carry.stale_streak);
    w.u64(carry.good_streak);
}

supervisor_carry read_carry(replay::byte_reader& r) {
    supervisor_carry carry;
    carry.has_last_good = r.u8() != 0;
    carry.last_good_count = r.u64();
    carry.stale_streak = r.u64();
    carry.good_streak = r.u64();
    return carry;
}

}  // namespace

void save_postmortem(std::ostream& out, const postmortem_bundle& bundle) {
    replay::byte_writer payload;
    payload.str(bundle.pole_id);
    payload.u64(bundle.base_seed);
    payload.u8(static_cast<std::uint8_t>(bundle.trigger));
    payload.u64(bundle.tick);

    payload.u32(static_cast<std::uint32_t>(bundle.frames.size()));
    for (const recorded_frame& frame : bundle.frames) {
        payload.u64(frame.frame_index);
        payload.u32(frame.ground_truth);
        write_carry(payload, frame.carry);
        payload.u64(frame.count);
        payload.u8(static_cast<std::uint8_t>(frame.status));
        payload.u64(frame.cloud.size());
        for (const vec3& p : frame.cloud) {
            payload.f32(static_cast<float>(p.x));
            payload.f32(static_cast<float>(p.y));
            payload.f32(static_cast<float>(p.z));
        }
    }

    payload.str(bundle.events_jsonl);
    payload.str(bundle.trace_json);
    // Bundles carry dozens of float32 clouds plus JSONL/trace text — both
    // compress well, and quarantine storms can dump many of them. The
    // flag-gated envelope keeps old bundles loadable while new ones
    // shrink; a pre-flag reader rejects them cleanly instead of
    // misparsing (the flags bug this PR fixes).
    replay::write_envelope_compressed(out, postmortem_magic, postmortem_version, payload);
}

postmortem_bundle load_postmortem(std::istream& in) {
    const replay::envelope env =
        replay::read_envelope(in, postmortem_magic, postmortem_version, "postmortem bundle");
    replay::byte_reader r{env.payload};

    postmortem_bundle bundle;
    bundle.pole_id = r.str();
    bundle.base_seed = r.u64();
    const std::uint8_t trigger = r.u8();
    if (trigger > static_cast<std::uint8_t>(dump_trigger::deadline_storm)) {
        throw io_error{"postmortem bundle: unknown dump trigger"};
    }
    bundle.trigger = static_cast<dump_trigger>(trigger);
    bundle.tick = r.u64();

    const std::uint32_t frame_count = r.u32();
    // Each frame needs at least its fixed header; anything larger cannot
    // fit in the checksummed payload we just validated.
    if (frame_count > env.payload.size()) {
        throw io_error{"postmortem bundle: implausible frame count"};
    }
    bundle.frames.reserve(frame_count);
    for (std::uint32_t i = 0; i < frame_count; ++i) {
        recorded_frame frame;
        frame.frame_index = r.u64();
        frame.ground_truth = r.u32();
        frame.carry = read_carry(r);
        frame.count = r.u64();
        const std::uint8_t status = r.u8();
        if (status > static_cast<std::uint8_t>(frame_status::dropped)) {
            throw io_error{"postmortem bundle: unknown frame status"};
        }
        frame.status = static_cast<frame_status>(status);
        const std::uint64_t points = r.u64();
        if (points > r.remaining() / 12) {  // 3 x f32 per point
            throw io_error{"postmortem bundle: implausible point count"};
        }
        frame.cloud.reserve(static_cast<std::size_t>(points));
        for (std::uint64_t p = 0; p < points; ++p) {
            const double x = r.f32();
            const double y = r.f32();
            const double z = r.f32();
            frame.cloud.push_back({x, y, z});
        }
        bundle.frames.push_back(std::move(frame));
    }

    bundle.events_jsonl = r.str();
    bundle.trace_json = r.str();
    r.expect_exhausted("postmortem bundle");
    return bundle;
}

void save_postmortem_file(const std::filesystem::path& path, const postmortem_bundle& bundle) {
    std::ofstream out{path, std::ios::binary};
    if (!out) throw io_error{"cannot open " + path.string() + " for writing"};
    save_postmortem(out, bundle);
    if (!out) throw io_error{"failed writing " + path.string()};
}

postmortem_bundle load_postmortem_file(const std::filesystem::path& path) {
    std::ifstream in{path, std::ios::binary};
    if (!in) throw io_error{"cannot open " + path.string()};
    return load_postmortem(in);
}

postmortem_replay_result replay_postmortem(const postmortem_bundle& bundle,
                                           frame_supervisor& supervisor) {
    postmortem_replay_result result;
    result.frames = bundle.frames.size();
    if (bundle.frames.empty()) {
        result.bit_exact = true;
        return result;
    }

    // Arm the ladder exactly as it was before the oldest retained frame,
    // then drive the recorded frames through the standard replay driver
    // with their original stream indices.
    supervisor.restore_carry(bundle.frames.front().carry);

    replay::frame_corpus corpus;
    corpus.name = bundle.pole_id;
    corpus.base_seed = bundle.base_seed;
    corpus.frames.reserve(bundle.frames.size());
    std::vector<std::uint64_t> indices;
    indices.reserve(bundle.frames.size());
    for (const recorded_frame& frame : bundle.frames) {
        corpus.frames.push_back({frame.cloud, frame.ground_truth});
        indices.push_back(frame.frame_index);
    }

    const replay::replay_result replayed =
        replay::replay_corpus_indexed(supervisor, corpus, indices);
    for (std::size_t i = 0; i < bundle.frames.size(); ++i) {
        const frame_report& report = replayed.reports[i];
        if (report.count == bundle.frames[i].count &&
            report.status == bundle.frames[i].status) {
            ++result.matches;
        } else {
            result.divergent.push_back(i);
        }
    }
    result.bit_exact = result.matches == result.frames;
    return result;
}

}  // namespace hawc::obs
