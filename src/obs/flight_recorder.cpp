#include "obs/flight_recorder.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/export.hpp"

namespace hawc::obs {

flight_recorder::flight_recorder(const flight_recorder_config& config, std::string pole_id,
                                 std::uint64_t base_seed)
    : config_{config}, pole_id_{std::move(pole_id)}, base_seed_{base_seed} {
    HAWC_REQUIRE(config_.frame_capacity > 0, "flight recorder needs a positive capacity");
}

void flight_recorder::attach_sources(const event_log* events,
                                     const telemetry::trace_sink* spans) {
    events_ = events;
    spans_ = spans;
}

bool flight_recorder::record(std::uint64_t frame_index, std::uint32_t ground_truth,
                             point_cloud cloud, const supervisor_carry& before,
                             const frame_report& report) {
    recorded_frame frame;
    frame.frame_index = frame_index;
    frame.ground_truth = ground_truth;
    // Stored as delivered; rounded to the recorded precision only when a
    // dump snapshots the ring (clean frames must not pay the conversion).
    frame.cloud = std::move(cloud);
    frame.carry = before;
    frame.count = report.count;
    frame.status = report.status;

    if (ring_.size() >= config_.frame_capacity) ring_.pop_front();
    ring_.push_back(std::move(frame));
    ++frames_recorded_;

    // Deadline-storm detection: consecutive frames that blew the
    // whole-frame budget mean the pole is systematically too slow, not
    // unlucky once — worth a postmortem even though no rung dropped it.
    bool overrun = false;
    for (const failure_event& failure : report.failures) {
        if (failure.kind == failure_kind::stage_deadline &&
            failure.stage == pipeline_stage::frame) {
            overrun = true;
            break;
        }
    }
    if (!overrun) {
        overrun_streak_ = 0;
        return false;
    }
    ++overrun_streak_;
    if (config_.deadline_storm_threshold == 0 ||
        overrun_streak_ < config_.deadline_storm_threshold) {
        return false;
    }
    overrun_streak_ = 0;
    return trigger_dump(dump_trigger::deadline_storm, 0);
}

bool flight_recorder::trigger_dump(dump_trigger trigger, std::uint64_t tick) {
    if (ring_.empty()) return false;
    if (pending_.size() >= config_.max_pending_dumps) {
        ++dumps_dropped_;
        return false;
    }

    postmortem_bundle bundle;
    bundle.pole_id = pole_id_;
    bundle.base_seed = base_seed_;
    bundle.trigger = trigger;
    bundle.tick = tick;
    bundle.frames.assign(ring_.begin(), ring_.end());
    for (recorded_frame& frame : bundle.frames) {
        frame.cloud = replay::round_to_recorded(frame.cloud);
    }

    if (events_ != nullptr) {
        bundle.events_jsonl = to_json_lines(events_->tail(config_.max_bundle_events));
    }
    if (spans_ != nullptr) {
        std::vector<telemetry::span_record> spans = spans_->snapshot();
        if (spans.size() > config_.max_bundle_spans) {
            spans.erase(spans.begin(),
                        spans.end() - static_cast<std::ptrdiff_t>(config_.max_bundle_spans));
        }
        bundle.trace_json = telemetry::to_chrome_trace(spans);
    }

    pending_.push_back(std::move(bundle));
    ++dumps_produced_;
    return true;
}

std::vector<postmortem_bundle> flight_recorder::take_dumps() {
    std::vector<postmortem_bundle> out;
    out.swap(pending_);
    return out;
}

void flight_recorder::reset_ring() {
    ring_.clear();
    overrun_streak_ = 0;
}

void flight_recorder::clear() {
    ring_.clear();
    pending_.clear();
    overrun_streak_ = 0;
}

}  // namespace hawc::obs
