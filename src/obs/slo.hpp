#pragma once

// Declarative SLO alerting over a metrics_registry. Rules are evaluated
// periodically (in virtual tick time — deterministic, replayable) and
// carry burn-rate windows plus firing/resolve hysteresis, so a single
// bad scrape neither fires nor clears an alert.
//
// Rule grammar (one rule per line; '#' starts a comment):
//
//   alert NAME if SIGNAL CMP THRESHOLD [window S/L] [for N] [resolve M]
//         [severity LEVEL]
//
//   SIGNAL := p50(metric) | p95(metric) | p99(metric)   histogram quantile
//           | value(metric)                             gauge value
//           | rate(metric)                              counter delta/eval
//           | ratio(num/den)                            counter burn ratio
//   CMP    := > | <
//   LEVEL  := debug | info | warning | error | critical
//
// Semantics: quantile/value signals compare the instantaneous sample.
// rate/ratio signals compare burn rates over BOTH windows (short and
// long, in evaluations) — the classic multi-window burn-rate pattern:
// the short window reacts fast, the long window stops flapping. A rule
// breaches only when both windows breach. `for N` requires N consecutive
// breaching evaluations before firing; `resolve M` requires M clean
// evaluations before a firing alert resolves. Defaults: window 1/1,
// for 1, resolve 1, severity warning.
//
// Firing/resolved transitions surface three ways: alert_firing /
// alert_resolved events into an event_sink, 0/1 gauges
// (hawc_alert_firing{alert=...}) plus fired/resolved counters in the
// output registry, and the health_summary() rollup fleet_manager exposes.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/event.hpp"
#include "telemetry/metrics.hpp"

namespace hawc::obs {

enum class slo_signal : std::uint8_t { quantile, value, rate, ratio };
enum class slo_comparison : std::uint8_t { above, below };

struct slo_rule {
    std::string name;
    slo_signal signal = slo_signal::value;
    std::string metric;       // histogram / gauge / counter (rate, ratio numerator)
    std::string denominator;  // ratio only
    double quantile = 0.99;   // quantile signal only
    slo_comparison cmp = slo_comparison::above;
    double threshold = 0.0;
    std::size_t short_window = 1;  // evaluations
    std::size_t long_window = 1;   // evaluations, >= short_window
    std::size_t fire_after = 1;    // consecutive breaches before firing
    std::size_t resolve_after = 1;  // consecutive clears before resolving
    telemetry::event_severity severity = telemetry::event_severity::warning;
};

/// Parse the grammar above; throws hawc::error with a line number on
/// malformed input. Blank lines and comments are skipped.
std::vector<slo_rule> parse_slo_rules(std::string_view text);

/// Render a rule back to its grammar line (canonical form).
std::string to_string(const slo_rule& rule);

/// Live state of one rule inside the engine.
struct alert_state {
    slo_rule rule;
    bool firing = false;
    double last_value = 0.0;      // most recent signal sample (short burn)
    bool last_breach = false;
    std::uint64_t since_tick = 0;  // when the current firing began
    std::uint64_t fired_count = 0;
    std::uint64_t resolved_count = 0;
    std::size_t breach_streak = 0;
    std::size_t clear_streak = 0;
};

/// Fleet-wide rollup.
struct health_summary {
    std::size_t rules = 0;
    std::size_t firing = 0;
    telemetry::event_severity worst = telemetry::event_severity::debug;  // among firing
    std::vector<std::string> firing_names;

    bool healthy() const { return firing == 0; }
    std::string render() const;  // "healthy (4 rules)" / "2/4 firing (worst error): a, b"
};

class slo_engine {
public:
    /// Evaluates `rules` against `source`, writing alert gauges/counters
    /// into `output` (commonly the same registry) and transition events
    /// into `events` (may be null). Both registries must outlive the
    /// engine; rule names must be unique and metric-name safe.
    slo_engine(const telemetry::metrics_registry& source,
               telemetry::metrics_registry& output, std::vector<slo_rule> rules,
               telemetry::event_sink* events = nullptr);

    /// One evaluation pass at virtual time `tick`. Single-threaded.
    void evaluate(std::uint64_t tick);

    std::uint64_t evaluations() const { return evaluations_; }
    const std::vector<alert_state>& alerts() const { return alerts_; }
    const alert_state* find(std::string_view name) const;
    health_summary summary() const;

private:
    struct rule_runtime {
        // Ring of the last long_window+1 cumulative samples (rate/ratio).
        std::vector<double> numerator;
        std::vector<double> denominator;
        std::size_t filled = 0;
        std::size_t next = 0;
        telemetry::gauge* firing_gauge = nullptr;
        telemetry::gauge* value_gauge = nullptr;
        telemetry::counter* fired_counter = nullptr;
        telemetry::counter* resolved_counter = nullptr;
    };

    bool sample_breach(std::size_t i, double& value_out);
    void push_sample(rule_runtime& rt, double num, double den);
    bool burn_over(const rule_runtime& rt, std::size_t window, slo_comparison cmp,
                   double threshold, bool is_ratio, double& burn_out) const;

    const telemetry::metrics_registry* source_;
    telemetry::metrics_registry* output_;
    telemetry::event_sink* events_;
    std::vector<alert_state> alerts_;
    std::vector<rule_runtime> runtimes_;
    telemetry::gauge* firing_total_gauge_ = nullptr;
    telemetry::gauge* worst_severity_gauge_ = nullptr;
    std::uint64_t evaluations_ = 0;
};

}  // namespace hawc::obs
