#pragma once

// The structured event log: a lock-light, preallocated ring of
// telemetry::event records shared by every pole in a fleet.
//
//   * Admission is cheap and concurrent: the severity floor and the
//     per-kind token buckets are relaxed/CAS atomics, so a suppressed
//     event (the storm case) never takes a lock at all. An admitted
//     event takes one short critical section to copy ~120 bytes into
//     the ring — the same discipline as telemetry::trace_sink.
//   * Rate limiting runs in virtual tick time: advance_tick() refills
//     the buckets, so accept/suppress decisions replay deterministically
//     (no wall clocks anywhere; a single-threaded schedule of publishes
//     and ticks always yields the same decisions).
//   * Conservation: published() + suppressed() always equals the number
//     of publish() attempts above the severity floor — nothing is lost
//     unaccounted, which is what the TSan soak asserts.
//
// Exporters: to_json_lines() renders events as JSONL for operators and
// postmortem bundles; bind_metrics() mirrors per-kind accepted/
// suppressed counts into a metrics_registry as Prometheus counters.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "telemetry/event.hpp"
#include "telemetry/metrics.hpp"

namespace hawc::obs {

struct event_log_config {
    /// Ring capacity (events retained); older events are overwritten.
    std::size_t capacity = 1024;

    /// Token bucket per event kind: each kind may publish up to `burst`
    /// events instantly, refilled at `tokens_per_tick` per advance_tick().
    /// A non-positive burst disables rate limiting entirely.
    double tokens_per_tick = 4.0;
    double burst = 16.0;

    /// Events below this severity are dropped before the rate limiter
    /// (and are not counted as suppressed — they were never admitted).
    telemetry::event_severity min_severity = telemetry::event_severity::debug;
};

class event_log final : public telemetry::event_sink {
public:
    explicit event_log(const event_log_config& config = {});

    /// Mirror per-kind accepted/suppressed counts and per-severity
    /// accepted counts into `registry` as Prometheus counters
    /// (hawc_events_total@kind=..., hawc_events_suppressed_total@kind=...,
    /// hawc_events_severity_total@severity=...). Call once, before
    /// concurrent publishing starts.
    void bind_metrics(telemetry::metrics_registry& registry);

    /// Thread-safe. Returns false when the event was filtered (severity
    /// floor) or suppressed (rate limit).
    bool publish(const telemetry::event& ev) override;

    /// Refill the token buckets for one elapsed virtual tick. Call from
    /// exactly one thread (the fleet tick loop), not concurrently with
    /// itself; concurrent publish() calls are fine.
    void advance_tick(std::uint64_t tick);

    /// Events currently retained, oldest first.
    std::vector<telemetry::event> snapshot() const;
    /// The newest `n` retained events, oldest first.
    std::vector<telemetry::event> tail(std::size_t n) const;

    std::uint64_t published() const { return published_.load(std::memory_order_relaxed); }
    std::uint64_t suppressed() const;
    std::uint64_t suppressed_of(telemetry::event_kind kind) const;
    std::size_t capacity() const { return config_.capacity; }
    std::uint64_t last_tick() const { return last_tick_.load(std::memory_order_relaxed); }

    void clear();

private:
    struct kind_state {
        std::atomic<std::int64_t> milli_tokens{0};
        std::atomic<std::uint64_t> suppressed{0};
        telemetry::counter* accepted_counter = nullptr;
        telemetry::counter* suppressed_counter = nullptr;
    };

    event_log_config config_;

    // Guards only the ring; admission control never touches it.
    mutable std::mutex mutex_;
    std::vector<telemetry::event> ring_;
    std::size_t next_ = 0;
    std::size_t size_ = 0;

    std::atomic<std::uint64_t> published_{0};
    std::atomic<std::uint64_t> last_tick_{0};
    std::array<kind_state, telemetry::event_kind_count> kinds_;
    std::array<telemetry::counter*, telemetry::event_severity_count> severity_counters_{};
};

/// One event rendered as a single-line JSON object (no trailing newline).
std::string to_json_line(const telemetry::event& ev);

/// JSONL rendering: one object per line, trailing newline per line.
std::string to_json_lines(std::span<const telemetry::event> events);

}  // namespace hawc::obs
