#include "obs/slo.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"

namespace hawc::obs {

namespace {

[[noreturn]] void parse_fail(std::size_t line, const std::string& why) {
    throw error{"slo rules line " + std::to_string(line) + ": " + why};
}

bool parse_severity(std::string_view s, telemetry::event_severity& out) {
    for (std::size_t i = 0; i < telemetry::event_severity_count; ++i) {
        const auto sev = static_cast<telemetry::event_severity>(i);
        if (s == to_string(sev)) {
            out = sev;
            return true;
        }
    }
    return false;
}

std::string format_number(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

}  // namespace

std::vector<slo_rule> parse_slo_rules(std::string_view text) {
    std::vector<slo_rule> rules;
    std::istringstream lines{std::string{text}};
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(lines, line)) {
        ++line_no;
        if (const auto hash = line.find('#'); hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream words{line};
        std::vector<std::string> tok;
        for (std::string w; words >> w;) tok.push_back(std::move(w));
        if (tok.empty()) continue;

        if (tok.size() < 6 || tok[0] != "alert" || tok[2] != "if") {
            parse_fail(line_no, "expected 'alert NAME if SIGNAL CMP THRESHOLD ...'");
        }
        slo_rule rule;
        rule.name = tok[1];
        if (rule.name.find('@') != std::string::npos ||
            rule.name.find('=') != std::string::npos) {
            parse_fail(line_no, "alert name must not contain '@' or '='");
        }

        // SIGNAL := kind(metric) with ratio taking num/den.
        const std::string& sig = tok[3];
        const auto open = sig.find('(');
        if (open == std::string::npos || sig.back() != ')' || open + 2 > sig.size()) {
            parse_fail(line_no, "malformed signal '" + sig + "'");
        }
        const std::string kind = sig.substr(0, open);
        const std::string inner = sig.substr(open + 1, sig.size() - open - 2);
        if (inner.empty()) parse_fail(line_no, "signal '" + sig + "' names no metric");
        if (kind == "p50" || kind == "p95" || kind == "p99") {
            rule.signal = slo_signal::quantile;
            rule.quantile = kind == "p50" ? 0.50 : kind == "p95" ? 0.95 : 0.99;
            rule.metric = inner;
        } else if (kind == "value") {
            rule.signal = slo_signal::value;
            rule.metric = inner;
        } else if (kind == "rate") {
            rule.signal = slo_signal::rate;
            rule.metric = inner;
        } else if (kind == "ratio") {
            rule.signal = slo_signal::ratio;
            const auto slash = inner.find('/');
            if (slash == std::string::npos || slash == 0 || slash + 1 == inner.size()) {
                parse_fail(line_no, "ratio needs 'ratio(numerator/denominator)'");
            }
            rule.metric = inner.substr(0, slash);
            rule.denominator = inner.substr(slash + 1);
        } else {
            parse_fail(line_no, "unknown signal kind '" + kind + "'");
        }

        if (tok[4] == ">") {
            rule.cmp = slo_comparison::above;
        } else if (tok[4] == "<") {
            rule.cmp = slo_comparison::below;
        } else {
            parse_fail(line_no, "comparison must be '>' or '<', got '" + tok[4] + "'");
        }
        try {
            std::size_t used = 0;
            rule.threshold = std::stod(tok[5], &used);
            if (used != tok[5].size()) throw std::invalid_argument{tok[5]};
        } catch (const std::exception&) {
            parse_fail(line_no, "threshold '" + tok[5] + "' is not a number");
        }

        for (std::size_t i = 6; i < tok.size(); i += 2) {
            if (i + 1 >= tok.size()) {
                parse_fail(line_no, "option '" + tok[i] + "' is missing its value");
            }
            const std::string& key = tok[i];
            const std::string& val = tok[i + 1];
            const auto parse_count = [&](const char* what) {
                const long long n = std::atoll(val.c_str());
                if (n <= 0) {
                    parse_fail(line_no,
                               std::string{what} + " '" + val + "' must be a positive integer");
                }
                return static_cast<std::size_t>(n);
            };
            if (key == "window") {
                const auto slash = val.find('/');
                if (slash == std::string::npos) {
                    parse_fail(line_no, "window needs 'short/long', got '" + val + "'");
                }
                const long long s = std::atoll(val.substr(0, slash).c_str());
                const long long l = std::atoll(val.substr(slash + 1).c_str());
                if (s <= 0 || l < s) {
                    parse_fail(line_no, "window needs 0 < short <= long, got '" + val + "'");
                }
                rule.short_window = static_cast<std::size_t>(s);
                rule.long_window = static_cast<std::size_t>(l);
            } else if (key == "for") {
                rule.fire_after = parse_count("for");
            } else if (key == "resolve") {
                rule.resolve_after = parse_count("resolve");
            } else if (key == "severity") {
                if (!parse_severity(val, rule.severity)) {
                    parse_fail(line_no, "unknown severity '" + val + "'");
                }
            } else {
                parse_fail(line_no, "unknown option '" + key + "'");
            }
        }
        rules.push_back(std::move(rule));
    }
    return rules;
}

std::string to_string(const slo_rule& rule) {
    std::string signal;
    switch (rule.signal) {
        case slo_signal::quantile:
            signal = rule.quantile == 0.50 ? "p50" : rule.quantile == 0.95 ? "p95" : "p99";
            signal += "(" + rule.metric + ")";
            break;
        case slo_signal::value: signal = "value(" + rule.metric + ")"; break;
        case slo_signal::rate: signal = "rate(" + rule.metric + ")"; break;
        case slo_signal::ratio:
            signal = "ratio(" + rule.metric + "/" + rule.denominator + ")";
            break;
    }
    std::string out = "alert " + rule.name + " if " + signal + " " +
                      (rule.cmp == slo_comparison::above ? ">" : "<") + " " +
                      format_number(rule.threshold);
    out += " window " + std::to_string(rule.short_window) + "/" +
           std::to_string(rule.long_window);
    out += " for " + std::to_string(rule.fire_after);
    out += " resolve " + std::to_string(rule.resolve_after);
    out += " severity ";
    out += to_string(rule.severity);
    return out;
}

std::string health_summary::render() const {
    if (firing == 0) return "healthy (" + std::to_string(rules) + " rules)";
    std::string out = std::to_string(firing) + "/" + std::to_string(rules) +
                      " firing (worst ";
    out += to_string(worst);
    out += "):";
    for (std::size_t i = 0; i < firing_names.size(); ++i) {
        out += i == 0 ? " " : ", ";
        out += firing_names[i];
    }
    return out;
}

slo_engine::slo_engine(const telemetry::metrics_registry& source,
                       telemetry::metrics_registry& output, std::vector<slo_rule> rules,
                       telemetry::event_sink* events)
    : source_{&source}, output_{&output}, events_{events} {
    alerts_.reserve(rules.size());
    runtimes_.reserve(rules.size());
    for (auto& rule : rules) {
        for (const auto& existing : alerts_) {
            HAWC_REQUIRE(existing.rule.name != rule.name, "duplicate SLO rule name");
        }
        rule_runtime rt;
        if (rule.signal == slo_signal::rate || rule.signal == slo_signal::ratio) {
            rt.numerator.assign(rule.long_window + 1, 0.0);
            rt.denominator.assign(rule.long_window + 1, 0.0);
        }
        using telemetry::labeled_name;
        rt.firing_gauge = &output_->make_gauge(
            labeled_name("hawc_alert_firing", "alert", rule.name),
            "1 while this SLO alert is firing");
        rt.value_gauge = &output_->make_gauge(
            labeled_name("hawc_alert_value", "alert", rule.name),
            "Last evaluated signal value for this alert");
        rt.fired_counter = &output_->make_counter(
            labeled_name("hawc_alerts_fired_total", "alert", rule.name),
            "Times this alert transitioned to firing");
        rt.resolved_counter = &output_->make_counter(
            labeled_name("hawc_alerts_resolved_total", "alert", rule.name),
            "Times this alert resolved");
        runtimes_.push_back(std::move(rt));

        alert_state state;
        state.rule = std::move(rule);
        alerts_.push_back(std::move(state));
    }
    firing_total_gauge_ = &output_->make_gauge("hawc_alerts_firing",
                                               "SLO alerts currently firing");
    worst_severity_gauge_ = &output_->make_gauge(
        "hawc_alerts_worst_severity", "Worst severity among firing alerts (0 debug..4 critical)");
}

void slo_engine::push_sample(rule_runtime& rt, double num, double den) {
    rt.numerator[rt.next] = num;
    rt.denominator[rt.next] = den;
    rt.next = (rt.next + 1) % rt.numerator.size();
    rt.filled = std::min(rt.filled + 1, rt.numerator.size());
}

bool slo_engine::burn_over(const rule_runtime& rt, std::size_t window, slo_comparison cmp,
                           double threshold, bool is_ratio, double& burn_out) const {
    // Needs window+1 samples: warm-up evaluations never breach, so an
    // engine started mid-incident ramps in rather than firing on its
    // first partial delta.
    if (rt.filled < window + 1) {
        burn_out = 0.0;
        return false;
    }
    const std::size_t size = rt.numerator.size();
    const std::size_t newest = (rt.next + size - 1) % size;
    const std::size_t oldest = (rt.next + size - 1 - window) % size;
    const double dnum = rt.numerator[newest] - rt.numerator[oldest];
    if (is_ratio) {
        const double dden = rt.denominator[newest] - rt.denominator[oldest];
        burn_out = dden > 0.0 ? dnum / dden : 0.0;
    } else {
        burn_out = dnum / static_cast<double>(window);
    }
    return cmp == slo_comparison::above ? burn_out > threshold : burn_out < threshold;
}

bool slo_engine::sample_breach(std::size_t i, double& value_out) {
    const slo_rule& rule = alerts_[i].rule;
    rule_runtime& rt = runtimes_[i];
    value_out = 0.0;
    switch (rule.signal) {
        case slo_signal::quantile: {
            const auto* hist = source_->find_histogram(rule.metric);
            if (hist == nullptr || hist->count() == 0) return false;
            value_out = hist->quantile(rule.quantile);
            break;
        }
        case slo_signal::value: {
            const auto* g = source_->find_gauge(rule.metric);
            if (g == nullptr) return false;
            value_out = g->value();
            break;
        }
        case slo_signal::rate: {
            const auto* c = source_->find_counter(rule.metric);
            if (c == nullptr) return false;
            push_sample(rt, static_cast<double>(c->value()), 0.0);
            double short_burn = 0.0;
            double long_burn = 0.0;
            const bool s = burn_over(rt, rule.short_window, rule.cmp, rule.threshold,
                                     false, short_burn);
            const bool l = burn_over(rt, rule.long_window, rule.cmp, rule.threshold,
                                     false, long_burn);
            value_out = short_burn;
            return s && l;
        }
        case slo_signal::ratio: {
            const auto* num = source_->find_counter(rule.metric);
            const auto* den = source_->find_counter(rule.denominator);
            if (num == nullptr || den == nullptr) return false;
            push_sample(rt, static_cast<double>(num->value()),
                        static_cast<double>(den->value()));
            double short_burn = 0.0;
            double long_burn = 0.0;
            const bool s = burn_over(rt, rule.short_window, rule.cmp, rule.threshold,
                                     true, short_burn);
            const bool l = burn_over(rt, rule.long_window, rule.cmp, rule.threshold,
                                     true, long_burn);
            value_out = short_burn;
            return s && l;
        }
    }
    return rule.cmp == slo_comparison::above ? value_out > rule.threshold
                                             : value_out < rule.threshold;
}

void slo_engine::evaluate(std::uint64_t tick) {
    ++evaluations_;
    for (std::size_t i = 0; i < alerts_.size(); ++i) {
        alert_state& state = alerts_[i];
        rule_runtime& rt = runtimes_[i];

        double value = 0.0;
        const bool breach = sample_breach(i, value);
        state.last_value = value;
        state.last_breach = breach;
        rt.value_gauge->set(value);

        if (breach) {
            ++state.breach_streak;
            state.clear_streak = 0;
        } else {
            ++state.clear_streak;
            state.breach_streak = 0;
        }

        if (!state.firing && breach && state.breach_streak >= state.rule.fire_after) {
            state.firing = true;
            state.since_tick = tick;
            ++state.fired_count;
            rt.firing_gauge->set(1.0);
            rt.fired_counter->add(1);
            if (events_ != nullptr) {
                telemetry::event ev = telemetry::make_event(
                    telemetry::event_kind::alert_firing, state.rule.severity,
                    state.rule.name);
                ev.tick = tick;
                ev.add_field("value", value);
                ev.add_field("threshold", state.rule.threshold);
                events_->publish(ev);
            }
        } else if (state.firing && !breach && state.clear_streak >= state.rule.resolve_after) {
            state.firing = false;
            ++state.resolved_count;
            rt.firing_gauge->set(0.0);
            rt.resolved_counter->add(1);
            if (events_ != nullptr) {
                telemetry::event ev = telemetry::make_event(
                    telemetry::event_kind::alert_resolved, telemetry::event_severity::info,
                    state.rule.name);
                ev.tick = tick;
                ev.add_field("value", value);
                ev.add_field("firing_ticks", static_cast<double>(tick - state.since_tick));
                events_->publish(ev);
            }
        }
    }

    const health_summary sum = summary();
    firing_total_gauge_->set(static_cast<double>(sum.firing));
    worst_severity_gauge_->set(sum.firing > 0
                                   ? static_cast<double>(static_cast<int>(sum.worst))
                                   : 0.0);
}

const alert_state* slo_engine::find(std::string_view name) const {
    for (const auto& state : alerts_) {
        if (state.rule.name == name) return &state;
    }
    return nullptr;
}

health_summary slo_engine::summary() const {
    health_summary out;
    out.rules = alerts_.size();
    for (const auto& state : alerts_) {
        if (!state.firing) continue;
        ++out.firing;
        out.firing_names.push_back(state.rule.name);
        if (out.firing == 1 || state.rule.severity > out.worst) out.worst = state.rule.severity;
    }
    return out;
}

}  // namespace hawc::obs
