#include "obs/event_log.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"

namespace hawc::obs {

namespace {

constexpr std::int64_t milli = 1000;

std::int64_t to_milli_tokens(double tokens) {
    return static_cast<std::int64_t>(tokens * static_cast<double>(milli));
}

}  // namespace

event_log::event_log(const event_log_config& config) : config_{config} {
    HAWC_REQUIRE(config_.capacity > 0, "event log needs a positive capacity");
    ring_.resize(config_.capacity);
    for (auto& ks : kinds_) {
        ks.milli_tokens.store(to_milli_tokens(config_.burst), std::memory_order_relaxed);
    }
}

void event_log::bind_metrics(telemetry::metrics_registry& registry) {
    using telemetry::labeled_name;
    for (std::size_t k = 0; k < telemetry::event_kind_count; ++k) {
        const auto kind = static_cast<telemetry::event_kind>(k);
        kinds_[k].accepted_counter = &registry.make_counter(
            labeled_name("hawc_events_total", "kind", to_string(kind)),
            "Events admitted to the structured log");
        kinds_[k].suppressed_counter = &registry.make_counter(
            labeled_name("hawc_events_suppressed_total", "kind", to_string(kind)),
            "Events dropped by the per-kind rate limiter");
    }
    for (std::size_t s = 0; s < telemetry::event_severity_count; ++s) {
        const auto severity = static_cast<telemetry::event_severity>(s);
        severity_counters_[s] = &registry.make_counter(
            labeled_name("hawc_events_severity_total", "severity", to_string(severity)),
            "Admitted events by severity");
    }
}

bool event_log::publish(const telemetry::event& ev) {
    if (ev.severity < config_.min_severity) return false;

    const auto k = static_cast<std::size_t>(ev.kind);
    kind_state& ks = kinds_[k];
    if (config_.burst > 0.0) {
        // Claim one token; a failed claim refunds and suppresses. The
        // transient negative between claim and refund is fine — other
        // claimants just see an empty bucket a little early.
        const std::int64_t before = ks.milli_tokens.fetch_sub(milli, std::memory_order_relaxed);
        if (before < milli) {
            ks.milli_tokens.fetch_add(milli, std::memory_order_relaxed);
            ks.suppressed.fetch_add(1, std::memory_order_relaxed);
            if (ks.suppressed_counter != nullptr) ks.suppressed_counter->add(1);
            return false;
        }
    }

    published_.fetch_add(1, std::memory_order_relaxed);
    if (ks.accepted_counter != nullptr) ks.accepted_counter->add(1);
    if (auto* sc = severity_counters_[static_cast<std::size_t>(ev.severity)]; sc != nullptr) {
        sc->add(1);
    }

    {
        std::lock_guard lock{mutex_};
        ring_[next_] = ev;
        next_ = (next_ + 1) % ring_.size();
        size_ = std::min(size_ + 1, ring_.size());
    }
    return true;
}

void event_log::advance_tick(std::uint64_t tick) {
    last_tick_.store(tick, std::memory_order_relaxed);
    if (config_.burst <= 0.0) return;
    const std::int64_t refill = to_milli_tokens(config_.tokens_per_tick);
    const std::int64_t cap = to_milli_tokens(config_.burst);
    for (auto& ks : kinds_) {
        std::int64_t cur = ks.milli_tokens.load(std::memory_order_relaxed);
        std::int64_t want = std::min(cap, cur + refill);
        while (want > cur &&
               !ks.milli_tokens.compare_exchange_weak(cur, want, std::memory_order_relaxed)) {
            want = std::min(cap, cur + refill);
        }
    }
}

std::vector<telemetry::event> event_log::snapshot() const {
    std::lock_guard lock{mutex_};
    std::vector<telemetry::event> out;
    out.reserve(size_);
    const std::size_t start = (next_ + ring_.size() - size_) % ring_.size();
    for (std::size_t i = 0; i < size_; ++i) {
        out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
}

std::vector<telemetry::event> event_log::tail(std::size_t n) const {
    std::vector<telemetry::event> all = snapshot();
    if (all.size() <= n) return all;
    return {all.end() - static_cast<std::ptrdiff_t>(n), all.end()};
}

std::uint64_t event_log::suppressed() const {
    std::uint64_t total = 0;
    for (const auto& ks : kinds_) total += ks.suppressed.load(std::memory_order_relaxed);
    return total;
}

std::uint64_t event_log::suppressed_of(telemetry::event_kind kind) const {
    return kinds_[static_cast<std::size_t>(kind)].suppressed.load(std::memory_order_relaxed);
}

void event_log::clear() {
    std::lock_guard lock{mutex_};
    next_ = 0;
    size_ = 0;
}

namespace {

void append_json_escaped(std::string& out, std::string_view s) {
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += c;
        }
    }
}

std::string json_num(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

}  // namespace

std::string to_json_line(const telemetry::event& ev) {
    std::string out = "{\"tick\":" + std::to_string(ev.tick) +
                      ",\"frame\":" + std::to_string(ev.frame) + ",\"kind\":\"";
    append_json_escaped(out, to_string(ev.kind));
    out += "\",\"severity\":\"";
    append_json_escaped(out, to_string(ev.severity));
    out += "\"";
    if (!ev.pole_view().empty()) {
        out += ",\"pole\":\"";
        append_json_escaped(out, ev.pole_view());
        out += "\"";
    }
    if (!ev.what_view().empty()) {
        out += ",\"what\":\"";
        append_json_escaped(out, ev.what_view());
        out += "\"";
    }
    if (ev.field_count > 0) {
        out += ",\"fields\":{";
        for (std::size_t i = 0; i < ev.field_count; ++i) {
            if (i > 0) out += ",";
            out += "\"";
            append_json_escaped(out, ev.fields[i].key != nullptr ? ev.fields[i].key : "");
            out += "\":" + json_num(ev.fields[i].value);
        }
        out += "}";
    }
    out += "}";
    return out;
}

std::string to_json_lines(std::span<const telemetry::event> events) {
    std::string out;
    for (const auto& ev : events) {
        out += to_json_line(ev);
        out += '\n';
    }
    return out;
}

}  // namespace hawc::obs
