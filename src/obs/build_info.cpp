#include "obs/build_info.hpp"

#include <array>

#include "nn/kernels/kernels.hpp"

#ifndef HAWC_VERSION_STRING
#define HAWC_VERSION_STRING "0.0.0-dev"
#endif

#if defined(__has_feature)
#if __has_feature(address_sanitizer) && !defined(__SANITIZE_ADDRESS__)
#define __SANITIZE_ADDRESS__ 1
#endif
#if __has_feature(thread_sanitizer) && !defined(__SANITIZE_THREAD__)
#define __SANITIZE_THREAD__ 1
#endif
#endif

namespace hawc::obs {

namespace {

std::string compiler_id() {
#if defined(__clang__)
    return "clang-" + std::to_string(__clang_major__) + "." +
           std::to_string(__clang_minor__) + "." + std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
    return "gcc-" + std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__) +
           "." + std::to_string(__GNUC_PATCHLEVEL__);
#else
    return "unknown";
#endif
}

std::string sanitizer_id() {
#if defined(__SANITIZE_THREAD__)
    return "thread";
#elif defined(__SANITIZE_ADDRESS__)
    return "address";
#else
    return "none";
#endif
}

}  // namespace

build_info current_build_info() {
    build_info info;
    info.version = HAWC_VERSION_STRING;
    info.compiler = compiler_id();
    info.isa = kernels::isa_name(kernels::active_kernels().tier);
    info.sanitizer = sanitizer_id();
    return info;
}

void register_build_info(telemetry::metrics_registry& reg, telemetry::event_sink* events) {
    const build_info info = current_build_info();
    const std::array<telemetry::metric_label, 4> labels{{
        {"version", info.version},
        {"compiler", info.compiler},
        {"isa", info.isa},
        {"sanitizer", info.sanitizer},
    }};
    reg.make_gauge(telemetry::labeled_name("hawc_build_info", labels),
                   "Build identity (constant 1; labels carry the payload)")
        .set(1.0);
    kernels::record_isa_gauges(reg);

    if (events != nullptr) {
        telemetry::event ev = telemetry::make_event(
            telemetry::event_kind::isa_dispatch, telemetry::event_severity::info,
            info.isa.c_str());
        ev.add_field("tier", static_cast<double>(
                                 static_cast<int>(kernels::active_kernels().tier)));
        events->publish(ev);
    }
}

}  // namespace hawc::obs
