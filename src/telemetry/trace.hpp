#pragma once

// Per-frame trace spans: nested, steady-clock-timestamped intervals
// (frame -> ingest -> eps_selection -> dbscan -> per-cluster classify)
// recorded into a bounded ring buffer. The RAII scoped_span helper costs a
// null check on construction and one on destruction when no sink is
// installed, so instrumented code paths stay on their latency budget with
// tracing disabled; with a sink installed, finishing a span takes one
// short critical section on the ring.
//
// Parenting is explicit (span ids are passed down the call tree through
// telemetry_handle) rather than thread-local, because classification fans
// out across the worker pool: a worker's span must attach to the frame
// that spawned it, not to whatever the worker ran last.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace hawc::telemetry {

class metrics_registry;  // metrics.hpp; telemetry_handle carries a pointer

using span_id = std::uint32_t;
inline constexpr span_id no_span = 0;

/// One finished span. `name` must point at a string literal (or other
/// static-lifetime storage); records carry it by pointer so pushing a span
/// never allocates.
struct span_record {
    span_id id = no_span;
    span_id parent = no_span;
    const char* name = "";
    std::uint64_t frame = 0;     // supervisor frame sequence number, 0 = none
    std::uint64_t start_ns = 0;  // steady-clock, epoch-relative
    std::uint64_t end_ns = 0;
    std::uint32_t tid = 0;   // hashed recording thread id (Chrome trace lane)
    std::uint8_t code = 0;   // span-specific annotation (frame_status for "frame")
};

/// Steady-clock nanoseconds (matches the stopwatch/deadline clock).
inline std::uint64_t steady_now_ns() {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now().time_since_epoch())
                                          .count());
}

/// Bounded ring buffer of finished spans; the newest capacity() records
/// survive, older ones are overwritten. push() is safe from any thread.
class trace_sink {
public:
    explicit trace_sink(std::size_t capacity = 4096);

    void push(const span_record& rec);

    /// Retained records, oldest first.
    std::vector<span_record> snapshot() const;

    /// Total spans ever pushed (including overwritten ones).
    std::uint64_t recorded() const;
    std::size_t capacity() const { return ring_.size(); }
    void clear();

private:
    mutable std::mutex mutex_;
    std::vector<span_record> ring_;
    std::size_t next_ = 0;          // ring insertion cursor
    std::size_t size_ = 0;          // valid records
    std::uint64_t recorded_ = 0;
};

/// Hands out span ids and labels spans with the current frame number.
/// A tracer with no sink is disabled: scoped_spans through it are inert.
class tracer {
public:
    tracer() = default;
    explicit tracer(trace_sink* sink) : sink_{sink} {}

    void set_sink(trace_sink* sink) { sink_ = sink; }
    trace_sink* sink() const { return sink_; }
    bool enabled() const { return sink_ != nullptr; }

    span_id next_id() { return next_id_.fetch_add(1, std::memory_order_relaxed) + 1; }

    /// Stamp subsequent spans with this frame sequence number.
    void begin_frame(std::uint64_t frame) { frame_.store(frame, std::memory_order_relaxed); }
    std::uint64_t current_frame() const { return frame_.load(std::memory_order_relaxed); }

private:
    trace_sink* sink_ = nullptr;
    std::atomic<std::uint32_t> next_id_{0};
    std::atomic<std::uint64_t> frame_{0};
};

}  // namespace hawc::telemetry

namespace hawc {

/// Optional instrumentation handle threaded through the pipeline stages.
/// Default-constructed it is fully inert; stages record metrics only when
/// `metrics` is set and emit spans only when `trace` has a sink. `parent`
/// is the ambient span the stage should attach its own spans under.
struct telemetry_handle {
    telemetry::metrics_registry* metrics = nullptr;
    telemetry::tracer* trace = nullptr;
    telemetry::span_id parent = telemetry::no_span;

    bool tracing() const { return trace != nullptr && trace->enabled(); }

    /// The same handle re-parented under `new_parent`.
    telemetry_handle under(telemetry::span_id new_parent) const {
        return {metrics, trace, new_parent};
    }
};

}  // namespace hawc

namespace hawc::telemetry {

/// RAII span: opens on construction, records on destruction (or finish()).
/// Inert when the tracer is null or has no sink.
class scoped_span {
public:
    scoped_span() = default;
    scoped_span(tracer* t, const char* name, span_id parent = no_span) {
        if (t != nullptr && t->enabled()) open(*t, name, parent);
    }
    scoped_span(const telemetry_handle& telem, const char* name) {
        if (telem.tracing()) open(*telem.trace, name, telem.parent);
    }
    ~scoped_span() { finish(); }

    scoped_span(const scoped_span&) = delete;
    scoped_span& operator=(const scoped_span&) = delete;

    bool active() const { return tracer_ != nullptr; }
    span_id id() const { return rec_.id; }

    /// Annotate the span (e.g. the frame's terminal status).
    void set_code(std::uint8_t code) { rec_.code = code; }

    /// Close and record the span now (idempotent).
    void finish() {
        if (tracer_ == nullptr) return;
        rec_.end_ns = steady_now_ns();
        tracer_->sink()->push(rec_);
        tracer_ = nullptr;
    }

private:
    void open(tracer& t, const char* name, span_id parent) {
        tracer_ = &t;
        rec_.id = t.next_id();
        rec_.parent = parent;
        rec_.name = name;
        rec_.frame = t.current_frame();
        rec_.tid = static_cast<std::uint32_t>(
            std::hash<std::thread::id>{}(std::this_thread::get_id()));
        rec_.start_ns = steady_now_ns();
    }

    tracer* tracer_ = nullptr;
    span_record rec_{};
};

}  // namespace hawc::telemetry
