#include "telemetry/metrics.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace hawc::telemetry {

namespace {

void atomic_add(std::atomic<double>& target, double d) {
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
}

void atomic_min(std::atomic<double>& target, double x) {
    double cur = target.load(std::memory_order_relaxed);
    while (x < cur && !target.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
    }
}

void atomic_max(std::atomic<double>& target, double x) {
    double cur = target.load(std::memory_order_relaxed);
    while (x > cur && !target.compare_exchange_weak(cur, x, std::memory_order_relaxed)) {
    }
}

}  // namespace

std::string labeled_name(std::string_view base, std::string_view key,
                         std::string_view value) {
    HAWC_REQUIRE(!base.empty() && !key.empty(), "labeled_name needs a base and a key");
    HAWC_REQUIRE(base.find('@') == std::string_view::npos &&
                     base.find('=') == std::string_view::npos,
                 "labeled_name base must be a plain metric name");
    HAWC_REQUIRE(key.find('@') == std::string_view::npos &&
                     key.find('=') == std::string_view::npos,
                 "labeled_name key must be a plain label name");
    HAWC_REQUIRE(value.find('@') == std::string_view::npos,
                 "labeled_name values must not contain '@'");
    std::string out;
    out.reserve(base.size() + key.size() + value.size() + 2);
    out.append(base);
    out.push_back('@');
    out.append(key);
    out.push_back('=');
    out.append(value);
    return out;
}

std::string labeled_name(std::string_view base, std::span<const metric_label> labels) {
    if (labels.empty()) {
        HAWC_REQUIRE(!base.empty() && base.find('@') == std::string_view::npos &&
                         base.find('=') == std::string_view::npos,
                     "labeled_name base must be a plain metric name");
        return std::string{base};
    }
    std::string out = labeled_name(base, labels[0].key, labels[0].value);
    for (std::size_t i = 1; i < labels.size(); ++i) {
        HAWC_REQUIRE(!labels[i].key.empty() &&
                         labels[i].key.find('@') == std::string_view::npos &&
                         labels[i].key.find('=') == std::string_view::npos,
                     "labeled_name key must be a plain label name");
        HAWC_REQUIRE(labels[i].value.find('@') == std::string_view::npos,
                     "labeled_name values must not contain '@'");
        out.push_back('@');
        out.append(labels[i].key);
        out.push_back('=');
        out.append(labels[i].value);
    }
    return out;
}

latency_histogram::latency_histogram(std::vector<double> upper_bounds_ms)
    : bounds_{std::move(upper_bounds_ms)}, buckets_(bounds_.size() + 1) {
    HAWC_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
    HAWC_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must be ascending");
    HAWC_REQUIRE(bounds_.front() > 0.0, "histogram bounds must be positive");
}

std::vector<double> latency_histogram::default_latency_bounds_ms() {
    return {0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0};
}

void latency_histogram::record(double ms) {
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), ms);
    const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomic_min(min_, ms);
    atomic_max(max_, ms);
    atomic_add(sum_, ms);
}

double latency_histogram::mean() const {
    const std::uint64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double latency_histogram::min() const {
    return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double latency_histogram::max() const {
    return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

double latency_histogram::quantile(double q) const {
    HAWC_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
    // Snapshot the buckets once; a concurrent writer shifts the estimate by
    // at most its own samples.
    std::vector<std::uint64_t> counts(buckets_.size());
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
        total += counts[i];
    }
    if (total == 0) return 0.0;
    const double lo_seen = min();
    const double hi_seen = max();

    const double rank = std::max(1.0, q * static_cast<double>(total));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0) continue;
        cum += counts[i];
        if (static_cast<double>(cum) < rank) continue;
        const double lo = i == 0 ? lo_seen : bounds_[i - 1];
        const double hi = i < bounds_.size() ? bounds_[i] : hi_seen;
        const double within =
            (rank - static_cast<double>(cum - counts[i])) / static_cast<double>(counts[i]);
        return std::clamp(lo + (hi - lo) * within, lo_seen, hi_seen);
    }
    return hi_seen;
}

void latency_histogram::reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
    max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

bool metrics_registry::name_taken_locked(std::string_view name) const {
    const auto in = [&](const auto& entries) {
        for (const auto& e : entries) {
            if (e.name == name) return true;
        }
        return false;
    };
    return in(counters_) || in(gauges_) || in(histograms_);
}

counter& metrics_registry::make_counter(std::string_view name, std::string_view help) {
    std::lock_guard lock{mutex_};
    for (const auto& e : counters_) {
        if (e.name == name) return *e.metric;
    }
    HAWC_REQUIRE(!name_taken_locked(name),
                 "metric name already registered with a different type");
    counters_.push_back({std::string{name}, std::string{help}, std::make_unique<counter>()});
    return *counters_.back().metric;
}

gauge& metrics_registry::make_gauge(std::string_view name, std::string_view help) {
    std::lock_guard lock{mutex_};
    for (const auto& e : gauges_) {
        if (e.name == name) return *e.metric;
    }
    HAWC_REQUIRE(!name_taken_locked(name),
                 "metric name already registered with a different type");
    gauges_.push_back({std::string{name}, std::string{help}, std::make_unique<gauge>()});
    return *gauges_.back().metric;
}

latency_histogram& metrics_registry::make_histogram(std::string_view name,
                                                    std::vector<double> upper_bounds_ms,
                                                    std::string_view help) {
    std::lock_guard lock{mutex_};
    for (const auto& e : histograms_) {
        if (e.name == name) return *e.metric;
    }
    HAWC_REQUIRE(!name_taken_locked(name),
                 "metric name already registered with a different type");
    histograms_.push_back({std::string{name}, std::string{help},
                           std::make_unique<latency_histogram>(std::move(upper_bounds_ms))});
    return *histograms_.back().metric;
}

counter* metrics_registry::find_counter(std::string_view name) const {
    std::lock_guard lock{mutex_};
    for (const auto& e : counters_) {
        if (e.name == name) return e.metric.get();
    }
    return nullptr;
}

gauge* metrics_registry::find_gauge(std::string_view name) const {
    std::lock_guard lock{mutex_};
    for (const auto& e : gauges_) {
        if (e.name == name) return e.metric.get();
    }
    return nullptr;
}

latency_histogram* metrics_registry::find_histogram(std::string_view name) const {
    std::lock_guard lock{mutex_};
    for (const auto& e : histograms_) {
        if (e.name == name) return e.metric.get();
    }
    return nullptr;
}

std::vector<metrics_registry::counter_sample> metrics_registry::counter_samples() const {
    std::lock_guard lock{mutex_};
    std::vector<counter_sample> out;
    out.reserve(counters_.size());
    for (const auto& e : counters_) out.push_back({e.name, e.help, e.metric->value()});
    return out;
}

std::vector<metrics_registry::gauge_sample> metrics_registry::gauge_samples() const {
    std::lock_guard lock{mutex_};
    std::vector<gauge_sample> out;
    out.reserve(gauges_.size());
    for (const auto& e : gauges_) out.push_back({e.name, e.help, e.metric->value()});
    return out;
}

std::vector<metrics_registry::histogram_sample> metrics_registry::histogram_samples() const {
    std::lock_guard lock{mutex_};
    std::vector<histogram_sample> out;
    out.reserve(histograms_.size());
    for (const auto& e : histograms_) {
        const latency_histogram& h = *e.metric;
        histogram_sample s;
        s.name = e.name;
        s.help = e.help;
        s.bounds.assign(h.bounds().begin(), h.bounds().end());
        s.cumulative.resize(h.bucket_total());
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < h.bucket_total(); ++i) {
            cum += h.bucket_count(i);
            s.cumulative[i] = cum;
        }
        s.count = h.count();
        s.sum = h.sum();
        s.min = h.min();
        s.max = h.max();
        s.p50 = h.quantile(0.50);
        s.p95 = h.quantile(0.95);
        s.p99 = h.quantile(0.99);
        out.push_back(std::move(s));
    }
    return out;
}

void metrics_registry::reset() {
    std::lock_guard lock{mutex_};
    for (auto& e : counters_) e.metric->reset();
    for (auto& e : gauges_) e.metric->reset();
    for (auto& e : histograms_) e.metric->reset();
}

std::size_t metrics_registry::metric_count() const {
    std::lock_guard lock{mutex_};
    return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace hawc::telemetry
