#include "telemetry/export.hpp"

#include <algorithm>
#include <cstdio>

#include "common/thread_pool.hpp"

namespace hawc::telemetry {

namespace {

std::string num(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

std::string num(std::uint64_t v) { return std::to_string(v); }

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += c;
        }
    }
    return out;
}

// Prometheus label-value escaping: backslash, double quote, and newline
// are the three characters the exposition format requires escaping.
std::string prom_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '"': out += "\\\""; break;
            case '\n': out += "\\n"; break;
            default: out += c;
        }
    }
    return out;
}

// HELP text escaping: the exposition format allows help to span one
// line only, with `\\` and `\n` as the two escape sequences. Anything
// else passes through verbatim.
std::string prom_escape_help(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            default: out += c;
        }
    }
    return out;
}

// One registry name decomposed per the labeled_name() convention
// (`base@k1=v1@k2=v2@...`). Names without a well-formed suffix (every
// segment needs a non-empty key before '=') keep the whole string as the
// base and carry no labels, which preserves the byte-exact output for
// every pre-existing flat metric.
struct series_parts {
    std::string base;
    std::vector<std::string> keys;    // empty <=> unlabeled
    std::vector<std::string> values;  // raw (unescaped), parallel to keys
    bool labeled() const { return !keys.empty(); }
};

series_parts split_series(const std::string& name) {
    const auto at = name.find('@');
    if (at == std::string::npos || at == 0) return {name, {}, {}};
    series_parts parts;
    parts.base = name.substr(0, at);
    std::size_t pos = at + 1;
    while (pos <= name.size()) {
        std::size_t end = name.find('@', pos);
        if (end == std::string::npos) end = name.size();
        const std::size_t eq = name.find('=', pos);
        if (eq == std::string::npos || eq == pos || eq >= end) return {name, {}, {}};
        parts.keys.push_back(name.substr(pos, eq - pos));
        parts.values.push_back(name.substr(eq + 1, end - eq - 1));
        if (end == name.size()) break;
        pos = end + 1;
    }
    return parts;
}

// Renders `{k1="v1",k2="v2"}`, optionally with extra pre-rendered label
// pairs (used for histogram `le`) appended inside the braces.
std::string prom_labels(const series_parts& p, const std::string& extra = "") {
    if (!p.labeled()) return extra.empty() ? "" : "{" + extra + "}";
    std::string out = "{";
    for (std::size_t i = 0; i < p.keys.size(); ++i) {
        if (i > 0) out += ",";
        out += p.keys[i] + "=\"" + prom_escape(p.values[i]) + "\"";
    }
    if (!extra.empty()) out += "," + extra;
    out += "}";
    return out;
}

}  // namespace

std::string to_prometheus(const metrics_registry& reg) {
    // HELP/TYPE are per *family* (base name): the first series of a
    // labeled family announces them, later series of the same family emit
    // samples only — Prometheus rejects duplicate TYPE lines.
    std::string out;
    std::vector<std::string> announced;
    const auto announce = [&](const std::string& base, const std::string& help,
                              const char* type) {
        if (std::find(announced.begin(), announced.end(), base) != announced.end()) return;
        announced.push_back(base);
        if (!help.empty()) out += "# HELP " + base + " " + prom_escape_help(help) + "\n";
        out += "# TYPE " + base + " " + std::string{type} + "\n";
    };

    for (const auto& c : reg.counter_samples()) {
        const series_parts p = split_series(c.name);
        announce(p.base, c.help, "counter");
        out += p.base + prom_labels(p) + " " + num(c.value) + "\n";
    }
    announced.clear();
    for (const auto& g : reg.gauge_samples()) {
        const series_parts p = split_series(g.name);
        announce(p.base, g.help, "gauge");
        out += p.base + prom_labels(p) + " " + num(g.value) + "\n";
    }
    announced.clear();
    for (const auto& h : reg.histogram_samples()) {
        const series_parts p = split_series(h.name);
        announce(p.base, h.help, "histogram");
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            out += p.base + "_bucket" + prom_labels(p, "le=\"" + num(h.bounds[i]) + "\"") +
                   " " + num(h.cumulative[i]) + "\n";
        }
        out += p.base + "_bucket" + prom_labels(p, "le=\"+Inf\"") + " " +
               num(h.cumulative.back()) + "\n";
        out += p.base + "_sum" + prom_labels(p) + " " + num(h.sum) + "\n";
        out += p.base + "_count" + prom_labels(p) + " " + num(h.count) + "\n";
    }
    return out;
}

std::string to_json(const metrics_registry& reg) {
    std::string out = "{\n  \"counters\": {";
    bool first = true;
    for (const auto& c : reg.counter_samples()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + json_escape(c.name) + "\": " + num(c.value);
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    first = true;
    for (const auto& g : reg.gauge_samples()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + json_escape(g.name) + "\": " + num(g.value);
    }
    out += first ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    first = true;
    for (const auto& h : reg.histogram_samples()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    \"" + json_escape(h.name) + "\": {\"count\": " + num(h.count) +
               ", \"sum\": " + num(h.sum) + ", \"min\": " + num(h.min) +
               ", \"max\": " + num(h.max) + ", \"p50\": " + num(h.p50) +
               ", \"p95\": " + num(h.p95) + ", \"p99\": " + num(h.p99) + ", \"buckets\": [";
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            if (i > 0) out += ", ";
            out += "{\"le\": " + num(h.bounds[i]) + ", \"count\": " + num(h.cumulative[i]) + "}";
        }
        if (!h.bounds.empty()) out += ", ";
        out += "{\"le\": \"+Inf\", \"count\": " + num(h.cumulative.back()) + "}]}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

std::string to_chrome_trace(std::span<const span_record> spans) {
    // Normalize to the earliest start so the timeline begins at t=0;
    // Chrome trace timestamps are microseconds.
    std::uint64_t t0 = 0;
    bool have_t0 = false;
    for (const auto& s : spans) {
        if (!have_t0 || s.start_ns < t0) {
            t0 = s.start_ns;
            have_t0 = true;
        }
    }

    std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    for (const auto& s : spans) {
        out += first ? "\n" : ",\n";
        first = false;
        const double ts_us = static_cast<double>(s.start_ns - t0) / 1000.0;
        const double dur_us =
            static_cast<double>(s.end_ns >= s.start_ns ? s.end_ns - s.start_ns : 0) / 1000.0;
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "  {\"name\": \"%s\", \"cat\": \"pipeline\", \"ph\": \"X\", "
                      "\"pid\": 1, \"tid\": %u, \"ts\": %.3f, \"dur\": %.3f, "
                      "\"args\": {\"span\": %u, \"parent\": %u, \"frame\": %llu, "
                      "\"code\": %u}}",
                      s.name, s.tid, ts_us, dur_us, s.id, s.parent,
                      static_cast<unsigned long long>(s.frame), s.code);
        out += buf;
    }
    out += first ? "]}\n" : "\n]}\n";
    return out;
}

void record_pool_gauges(metrics_registry& reg, const thread_pool& pool) {
    reg.make_gauge("hawc_pool_lanes", "Execution lanes in the worker pool")
        .set(static_cast<double>(pool.thread_count()));
    reg.make_gauge("hawc_pool_active_lanes", "Lanes executing a chunk at sample time")
        .set(static_cast<double>(pool.active_lanes()));
    reg.make_gauge("hawc_pool_utilization", "active_lanes / lanes at sample time")
        .set(static_cast<double>(pool.active_lanes()) /
             static_cast<double>(pool.thread_count()));
    reg.make_gauge("hawc_pool_jobs_dispatched", "Cumulative parallel_for fan-outs")
        .set(static_cast<double>(pool.jobs_dispatched()));
    reg.make_gauge("hawc_pool_inline_runs", "Cumulative inline (non-fanned) region runs")
        .set(static_cast<double>(pool.inline_runs()));
    reg.make_gauge("hawc_pool_contended_dispatches",
                   "Cumulative fan-outs that arrived while lanes were busy")
        .set(static_cast<double>(pool.contended_dispatches()));
}

}  // namespace hawc::telemetry
