#include "telemetry/event.hpp"

#include <algorithm>
#include <cstring>

namespace hawc::telemetry {

std::string_view to_string(event_severity severity) {
    switch (severity) {
        case event_severity::debug: return "debug";
        case event_severity::info: return "info";
        case event_severity::warning: return "warning";
        case event_severity::error: return "error";
        case event_severity::critical: return "critical";
    }
    return "unknown";
}

std::string_view to_string(event_kind kind) {
    switch (kind) {
        case event_kind::stage_failure: return "stage_failure";
        case event_kind::frame_dropped: return "frame_dropped";
        case event_kind::ladder_fixed_eps: return "ladder_fixed_eps";
        case event_kind::ladder_float_model: return "ladder_float_model";
        case event_kind::ladder_stale_count: return "ladder_stale_count";
        case event_kind::stale_cap_exhausted: return "stale_cap_exhausted";
        case event_kind::link_corruption: return "link_corruption";
        case event_kind::pole_quarantined: return "pole_quarantined";
        case event_kind::pole_restarted: return "pole_restarted";
        case event_kind::pole_recovered: return "pole_recovered";
        case event_kind::isa_dispatch: return "isa_dispatch";
        case event_kind::alert_firing: return "alert_firing";
        case event_kind::alert_resolved: return "alert_resolved";
        case event_kind::recorder_dump: return "recorder_dump";
    }
    return "unknown";
}

namespace {

template <std::size_t N>
void copy_truncated(std::array<char, N>& dst, std::string_view src) {
    const std::size_t n = std::min(src.size(), N - 1);
    std::memcpy(dst.data(), src.data(), n);
    dst[n] = '\0';
}

}  // namespace

void event::set_pole(std::string_view id) { copy_truncated(pole, id); }

void event::set_what(std::string_view detail) { copy_truncated(what, detail); }

void event::add_field(const char* key, double value) {
    if (field_count >= event_max_fields) return;
    fields[field_count] = {key, value};
    ++field_count;
}

double event::field_or(std::string_view key, double fallback) const {
    for (std::size_t i = 0; i < field_count; ++i) {
        if (fields[i].key != nullptr && key == fields[i].key) return fields[i].value;
    }
    return fallback;
}

event make_event(event_kind kind, event_severity severity, std::string_view what) {
    event ev;
    ev.kind = kind;
    ev.severity = severity;
    if (!what.empty()) ev.set_what(what);
    return ev;
}

bool tagging_event_sink::publish(const event& ev) {
    if (target_ == nullptr) return false;
    event tagged = ev;
    tagged.tick = tick_;
    if (tagged.pole[0] == '\0') tagged.pole = pole_;
    return target_->publish(tagged);
}

void tagging_event_sink::set_pole(std::string_view id) {
    const std::size_t n = std::min(id.size(), pole_.size() - 1);
    std::memcpy(pole_.data(), id.data(), n);
    pole_[n] = '\0';
}

}  // namespace hawc::telemetry
