#pragma once

// Structured events: the third observability pillar next to metrics
// (metrics.hpp) and spans (trace.hpp). An event is one discrete thing
// that happened — a stage failure, a ladder transition, a quarantine, an
// alert flip — as a fixed-size value type: no allocation to build one,
// no allocation to publish one, so emission sites can sit on the frame
// hot path behind a null check.
//
// Only the vocabulary lives here (kinds, severities, the event struct,
// the abstract sink); the concrete ring buffer, rate limiting, and
// exporters live in src/obs (event_log.hpp), above the replay layer.
// That split lets the frame supervisor — far below obs — emit events
// without a dependency cycle: runtime talks to an event_sink*, obs
// provides one.

#include <array>
#include <cstdint>
#include <string_view>

namespace hawc::telemetry {

enum class event_severity : std::uint8_t {
    debug = 0,
    info = 1,
    warning = 2,
    error = 3,
    critical = 4,
};

inline constexpr std::size_t event_severity_count = 5;

/// The closed vocabulary of things the system reports. Closed on
/// purpose: per-kind rate limiting and per-kind counters need a dense
/// index, and a forensics reader grepping a postmortem needs stable
/// names, not free-form strings.
enum class event_kind : std::uint8_t {
    stage_failure = 0,      // a pipeline stage failed (detail in `what`)
    frame_dropped = 1,      // a frame was unrecoverable
    ladder_fixed_eps = 2,   // degradation rung 1: fixed-eps DBSCAN
    ladder_float_model = 3,  // degradation rung 2: fp32 classifier rescue
    ladder_stale_count = 4,  // degradation rung 3: stale count served
    stale_cap_exhausted = 5,  // rung 3 budget spent, zero admitted
    link_corruption = 6,    // pole link delivered a corrupted message
    pole_quarantined = 7,   // watchdog parked a pole
    pole_restarted = 8,     // backoff expired, supervisor restarted
    pole_recovered = 9,     // probation streak complete, pole live again
    isa_dispatch = 10,      // kernel ISA tier selected at startup
    alert_firing = 11,      // an SLO rule crossed into firing
    alert_resolved = 12,    // a firing SLO rule cleared
    recorder_dump = 13,     // flight recorder produced a postmortem
};

inline constexpr std::size_t event_kind_count = 14;

std::string_view to_string(event_severity severity);
std::string_view to_string(event_kind kind);

/// One key/value annotation. Keys are static-lifetime literals (same
/// contract as span names); values are doubles — counts, indices, and
/// enum codes all fit, and it keeps the event trivially copyable.
struct event_field {
    const char* key = nullptr;
    double value = 0.0;
};

inline constexpr std::size_t event_max_fields = 4;
inline constexpr std::size_t event_pole_capacity = 12;  // incl. NUL
inline constexpr std::size_t event_what_capacity = 32;  // incl. NUL

/// One structured event. Fixed-size and trivially copyable: the obs
/// ring stores them preallocated, and the flight recorder serializes
/// them into postmortem bundles. The short `what` buffer holds a
/// human-readable detail (truncated if longer); dynamic context belongs
/// in fields, not in strings.
struct event {
    event_kind kind = event_kind::stage_failure;
    event_severity severity = event_severity::info;
    std::uint64_t frame = 0;  // supervisor frame seq / corpus frame index
    std::uint64_t tick = 0;   // fleet virtual time (0 outside a fleet)
    std::array<char, event_pole_capacity> pole{};  // NUL-terminated id
    std::array<char, event_what_capacity> what{};  // NUL-terminated detail
    std::array<event_field, event_max_fields> fields{};
    std::uint8_t field_count = 0;

    std::string_view pole_view() const { return {pole.data()}; }
    std::string_view what_view() const { return {what.data()}; }

    /// Copy (and truncate) into the fixed buffers.
    void set_pole(std::string_view id);
    void set_what(std::string_view detail);

    /// Append a field; silently drops past event_max_fields (an event
    /// with clipped annotations beats an allocation or a throw mid-frame).
    void add_field(const char* key, double value);

    /// The field's value, or `fallback` when the key is absent.
    double field_or(std::string_view key, double fallback) const;
};

/// Convenience builder for emission sites.
event make_event(event_kind kind, event_severity severity, std::string_view what = {});

/// Where events go. Implementations must be safe to call from multiple
/// threads (poles tick in parallel). Returns false when the event was
/// suppressed (rate limit, severity floor) rather than recorded.
class event_sink {
public:
    virtual ~event_sink() = default;
    virtual bool publish(const event& ev) = 0;
};

/// Decorating sink that stamps a pole id and the current virtual tick
/// onto every event before forwarding. Each pole_runtime owns one and
/// hands it to its supervisor, so events emitted deep in the frame
/// pipeline arrive at the shared log already attributed. Not itself
/// thread-safe across set_* calls: a pole's tagger is only touched by
/// whichever thread runs that pole's tick (the pole_runtime contract).
class tagging_event_sink final : public event_sink {
public:
    void set_target(event_sink* target) { target_ = target; }
    event_sink* target() const { return target_; }
    void set_pole(std::string_view id);
    void set_tick(std::uint64_t tick) { tick_ = tick; }

    bool publish(const event& ev) override;

private:
    event_sink* target_ = nullptr;
    std::array<char, event_pole_capacity> pole_{};
    std::uint64_t tick_ = 0;
};

}  // namespace hawc::telemetry
