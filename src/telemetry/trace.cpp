#include "telemetry/trace.hpp"

#include "common/error.hpp"

namespace hawc::telemetry {

trace_sink::trace_sink(std::size_t capacity) : ring_(capacity) {
    HAWC_REQUIRE(capacity > 0, "trace ring needs a positive capacity");
}

void trace_sink::push(const span_record& rec) {
    std::lock_guard lock{mutex_};
    ring_[next_] = rec;
    next_ = (next_ + 1) % ring_.size();
    if (size_ < ring_.size()) ++size_;
    ++recorded_;
}

std::vector<span_record> trace_sink::snapshot() const {
    std::lock_guard lock{mutex_};
    std::vector<span_record> out;
    out.reserve(size_);
    // Oldest record sits at next_ once the ring has wrapped, else at 0.
    const std::size_t first = size_ == ring_.size() ? next_ : 0;
    for (std::size_t i = 0; i < size_; ++i) {
        out.push_back(ring_[(first + i) % ring_.size()]);
    }
    return out;
}

std::uint64_t trace_sink::recorded() const {
    std::lock_guard lock{mutex_};
    return recorded_;
}

void trace_sink::clear() {
    std::lock_guard lock{mutex_};
    next_ = 0;
    size_ = 0;
    recorded_ = 0;
}

}  // namespace hawc::telemetry
