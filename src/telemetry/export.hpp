#pragma once

// Machine-readable exports of the telemetry state:
//
//   to_prometheus     Prometheus text exposition format 0.0.4 (counters,
//                     gauges, histograms with cumulative le-buckets) —
//                     what a fleet scraper ingests.
//   to_json           JSON snapshot of the same registry, with estimated
//                     p50/p95/p99 per histogram — for dashboards and for
//                     diffing in tests.
//   to_chrome_trace   span records as Chrome trace_event complete events
//                     ("X" phase) — load in chrome://tracing or Perfetto
//                     for a per-frame span timeline.

#include <span>
#include <string>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace hawc {
class thread_pool;
}

namespace hawc::telemetry {

std::string to_prometheus(const metrics_registry& reg);

std::string to_json(const metrics_registry& reg);

std::string to_chrome_trace(std::span<const span_record> spans);

/// Sample the pool's instantaneous state into gauges (lanes, active lanes,
/// utilization, cumulative fan-out/inline dispatch totals). Call before a
/// scrape; gauges are registered on first use.
void record_pool_gauges(metrics_registry& reg, const thread_pool& pool);

}  // namespace hawc::telemetry
