#pragma once

// Umbrella header for the pipeline telemetry subsystem: the lock-free
// metrics registry (metrics.hpp), per-frame trace spans with the
// telemetry_handle threaded through pipeline stages (trace.hpp), and the
// Prometheus / JSON / Chrome-trace exporters (export.hpp). See DESIGN.md
// "Telemetry" for the design and the overhead budget.

#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
