#pragma once

// Thread-safe metrics registry for the streaming pipeline: named counters,
// gauges, and fixed-boundary latency histograms with percentile estimation.
// Registration (make_*) takes a mutex and allocates; recording (add / set /
// record) is lock-free on preallocated std::atomic storage, so the hot path
// of a supervised frame never allocates and never blocks a scrape. Exporters
// (see export.hpp) read consistent-enough snapshots via the *_samples()
// accessors; individual metric reads are relaxed-atomic and may lag a
// concurrent writer by a few operations, which is fine for monitoring.

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hawc::telemetry {

/// Monotonically increasing event count.
class counter {
public:
    void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, utilization, chosen eps).
class gauge {
public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    void add(double d) {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
        }
    }
    double value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

private:
    std::atomic<double> value_{0.0};
};

/// Fixed-boundary latency histogram (milliseconds). Bucket boundaries are
/// upper bounds, ascending; samples above the last bound land in an implicit
/// overflow bucket. record() is a handful of relaxed atomic updates — no
/// locks, no allocation — so it can sit on the per-frame hot path.
/// Percentiles are estimated by linear interpolation inside the bucket that
/// crosses the target rank, clamped to the observed min/max so the estimate
/// agrees with the legacy running_stats summary at the extremes.
class latency_histogram {
public:
    explicit latency_histogram(std::vector<double> upper_bounds_ms);

    void record(double ms);

    std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    double sum() const { return sum_.load(std::memory_order_relaxed); }
    double mean() const;
    double min() const;  // 0 when empty
    double max() const;  // 0 when empty

    /// Estimated quantile, q in [0, 1] (0.5 = p50, 0.99 = p99).
    double quantile(double q) const;

    std::span<const double> bounds() const { return bounds_; }
    /// Per-bucket (non-cumulative) count; index bounds().size() is overflow.
    std::uint64_t bucket_count(std::size_t i) const {
        return buckets_[i].load(std::memory_order_relaxed);
    }
    std::size_t bucket_total() const { return buckets_.size(); }

    void reset();

    /// Log-ish spaced defaults covering 50 µs .. 1 s frame-stage latencies.
    static std::vector<double> default_latency_bounds_ms();

private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
    std::atomic<double> min_{std::numeric_limits<double>::infinity()};
    std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// Label-suffix convention for per-series metrics: compose the registry
/// name as `base@key=value` (e.g. `hawc_pole_frames_total@pole=p3`). The
/// registry stores it as a flat string — dedupe, lookup, and the hot path
/// are untouched — and the exporters parse the suffix back out, rendering
/// `base{key="value"}` in Prometheus and the composed series string as a
/// JSON key. Names without '@' are exported exactly as before, so the
/// convention is strictly additive. The base and key must be plain
/// Prometheus identifiers; the value may be any string without '@' (the
/// segment delimiter) and is escaped at export time.
std::string labeled_name(std::string_view base, std::string_view key,
                         std::string_view value);

/// One label of a multi-label series.
struct metric_label {
    std::string_view key;
    std::string_view value;
};

/// Multi-label variant of the convention above: `base@k1=v1@k2=v2@...`.
/// The exporters parse every `@key=value` segment back out and render
/// `base{k1="v1",k2="v2"}`. Values must not contain '@' (keys already
/// cannot) — the flat encoding needs an unambiguous segment delimiter;
/// everything else is escaped at export time as usual.
std::string labeled_name(std::string_view base, std::span<const metric_label> labels);

/// Name -> metric registry. Names follow Prometheus conventions
/// ([a-zA-Z_][a-zA-Z0-9_]*); registering the same name twice with the same
/// type returns the existing metric, a cross-type collision throws.
/// Metric references stay valid for the registry's lifetime.
class metrics_registry {
public:
    metrics_registry() = default;
    metrics_registry(const metrics_registry&) = delete;
    metrics_registry& operator=(const metrics_registry&) = delete;

    counter& make_counter(std::string_view name, std::string_view help = "");
    gauge& make_gauge(std::string_view name, std::string_view help = "");
    latency_histogram& make_histogram(std::string_view name,
                                      std::vector<double> upper_bounds_ms,
                                      std::string_view help = "");

    /// Lookup by name; nullptr when absent (or registered as another type).
    counter* find_counter(std::string_view name) const;
    gauge* find_gauge(std::string_view name) const;
    latency_histogram* find_histogram(std::string_view name) const;

    /// Value snapshots in registration order, for the exporters and tests.
    struct counter_sample {
        std::string name, help;
        std::uint64_t value = 0;
    };
    struct gauge_sample {
        std::string name, help;
        double value = 0.0;
    };
    struct histogram_sample {
        std::string name, help;
        std::vector<double> bounds;           // upper bounds (ms)
        std::vector<std::uint64_t> cumulative;  // bounds.size() + 1, last = total
        std::uint64_t count = 0;
        double sum = 0.0, min = 0.0, max = 0.0;
        double p50 = 0.0, p95 = 0.0, p99 = 0.0;
    };
    std::vector<counter_sample> counter_samples() const;
    std::vector<gauge_sample> gauge_samples() const;
    std::vector<histogram_sample> histogram_samples() const;

    /// Zero every metric; registrations (and references) survive.
    void reset();

    std::size_t metric_count() const;

private:
    template <typename M>
    struct entry {
        std::string name, help;
        std::unique_ptr<M> metric;
    };
    bool name_taken_locked(std::string_view name) const;

    // Guards the entry vectors (registration path), not metric values; the
    // lock-free claim above covers only add/set/record on atomic storage.
    mutable std::mutex mutex_;  // lint:allow(mutex-in-lockfree): registration-only lock
    std::vector<entry<counter>> counters_;
    std::vector<entry<gauge>> gauges_;
    std::vector<entry<latency_histogram>> histograms_;
};

}  // namespace hawc::telemetry
