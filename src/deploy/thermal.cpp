#include "deploy/thermal.hpp"

#include <cmath>
#include <numbers>

namespace hawc {

namespace {

/// Smooth daily solar intensity in [0, 1], peaking at `peak_hour`.
double solar_intensity(double hour_of_day, double peak_hour) {
    const double phase = 2.0 * std::numbers::pi * (hour_of_day - peak_hour) / 24.0;
    return std::max(0.0, std::cos(phase));
}

}  // namespace

thermal_series simulate_pole_temperature(const thermal_config& config) {
    rng random{config.seed};
    thermal_series series;

    const double total_hours = config.days * 24.0;
    const double step_hours = config.sample_interval_min / 60.0;
    series.samples.reserve(static_cast<std::size_t>(total_hours / step_hours) + 1);

    // Day-to-day weather drift: a slowly varying mean per day.
    std::vector<double> day_offset(static_cast<std::size_t>(config.days) + 2, 0.0);
    double drift = 0.0;
    for (auto& offset : day_offset) {
        drift = 0.7 * drift + random.normal(0.0, config.weather_day_to_day_sigma_c);
        offset = drift;
    }

    double pole_c = config.weather_mean_c;  // start in equilibrium
    const double lag_alpha =
        1.0 - std::exp(-step_hours / std::max(config.thermal_lag_hours, 1e-3));

    for (double t = 0.0; t <= total_hours; t += step_hours) {
        const double hour_of_day = std::fmod(t, 24.0);
        const auto day = static_cast<std::size_t>(t / 24.0);

        const double phase = 2.0 * std::numbers::pi * (hour_of_day - config.peak_hour) / 24.0;
        const double weather = config.weather_mean_c + day_offset[day] +
                               config.weather_daily_amplitude_c * std::cos(phase) +
                               random.normal(0.0, config.weather_noise_sigma_c);

        const double target = weather + config.night_offset_c +
                              config.solar_gain_peak_c *
                                  solar_intensity(hour_of_day, config.peak_hour - 0.5);
        pole_c += lag_alpha * (target - pole_c);

        series.samples.push_back({t, weather, pole_c});
    }
    return series;
}

running_stats thermal_series::pole_stats() const {
    running_stats s;
    for (const auto& sample : samples) s.add(sample.pole_c);
    return s;
}

running_stats thermal_series::weather_stats() const {
    running_stats s;
    for (const auto& sample : samples) s.add(sample.weather_c);
    return s;
}

double thermal_series::mean_peak_offset_c() const {
    running_stats s;
    for (const auto& sample : samples) {
        const double hour = std::fmod(sample.time_hours, 24.0);
        if (hour >= 13.0 && hour <= 18.0) s.add(sample.pole_c - sample.weather_c);
    }
    return s.mean();
}

double thermal_series::mean_night_offset_c() const {
    running_stats s;
    for (const auto& sample : samples) {
        const double hour = std::fmod(sample.time_hours, 24.0);
        if (hour >= 1.0 && hour <= 5.0) s.add(sample.pole_c - sample.weather_c);
    }
    return s.mean();
}

double thermal_series::fraction_above(double limit_c) const {
    if (samples.empty()) return 0.0;
    std::size_t above = 0;
    for (const auto& sample : samples) {
        if (sample.pole_c > limit_c) ++above;
    }
    return static_cast<double>(above) / static_cast<double>(samples.size());
}

}  // namespace hawc
