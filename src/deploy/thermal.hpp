#pragma once

// Thermal simulation of the pole enclosure (Figure 10 substitution).
// A diurnal desert-summer weather model plus a first-order enclosure
// model: solar gain pushes the compartment ~10 degC above ambient at
// peak heat and under 5 degC at night, with thermal lag.

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace hawc {

struct thermal_config {
    double days = 18.0;                 // 2023-06-24 .. 2023-07-11
    double sample_interval_min = 1.7;   // paper: ~2500 samples/day
    // Phoenix summer ambient.
    double weather_mean_c = 35.0;
    double weather_daily_amplitude_c = 9.5;
    double weather_day_to_day_sigma_c = 1.6;
    double weather_noise_sigma_c = 0.35;
    double peak_hour = 16.0;            // hottest time of day
    // Enclosure behaviour.
    double solar_gain_peak_c = 9.5;     // extra heating at peak sun
    double night_offset_c = 2.2;        // residual electronics heat
    double thermal_lag_hours = 0.8;
    std::uint64_t seed = 20230624;
};

struct thermal_sample {
    double time_hours = 0.0;   // since the start of the window
    double weather_c = 0.0;
    double pole_c = 0.0;
};

struct thermal_series {
    std::vector<thermal_sample> samples;

    running_stats pole_stats() const;
    running_stats weather_stats() const;

    /// Mean (pole - weather) offset during the hottest hours of each day
    /// (13:00-18:00) and the coolest (01:00-05:00).
    double mean_peak_offset_c() const;
    double mean_night_offset_c() const;

    /// Fraction of samples above the Coral Dev Board's recommended
    /// operational maximum (50 degC per its datasheet).
    double fraction_above(double limit_c) const;
};

/// Run the simulation over the configured window.
thermal_series simulate_pole_temperature(const thermal_config& config = {});

}  // namespace hawc
