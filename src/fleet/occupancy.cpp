#include "fleet/occupancy.hpp"

#include "common/error.hpp"

namespace hawc::fleet {

const char* to_string(pole_rung rung) {
    switch (rung) {
        case pole_rung::live: return "live";
        case pole_rung::stale_count: return "stale_count";
        case pole_rung::excluded: return "excluded";
    }
    return "unknown";
}

bool occupancy_snapshot::within_staleness(std::uint64_t now_tick,
                                          std::uint64_t max_age_ticks) const {
    for (const auto& p : poles) {
        if (p.rung == pole_rung::excluded) continue;
        if (p.updated_tick > now_tick) return false;  // from the future: bogus
        if (now_tick - p.updated_tick > max_age_ticks) return false;
    }
    return true;
}

occupancy_board::occupancy_board(std::size_t capacity) : slots_(capacity) {
    HAWC_REQUIRE(capacity > 0, "occupancy board needs at least one slot");
}

void occupancy_board::publish(const occupancy_snapshot& snap) {
    HAWC_REQUIRE(snap.poles.size() <= slots_.size(),
                 "snapshot exceeds occupancy board capacity");
    const std::uint64_t seq = seq_.load(std::memory_order_relaxed);
    seq_.store(seq + 1, std::memory_order_relaxed);  // odd: publish in flight
    std::atomic_thread_fence(std::memory_order_seq_cst);

    tick_.store(snap.tick, std::memory_order_relaxed);
    aggregate_.store(snap.aggregate, std::memory_order_relaxed);
    included_.store(snap.included, std::memory_order_relaxed);
    pole_count_.store(static_cast<std::uint32_t>(snap.poles.size()),
                      std::memory_order_relaxed);
    for (std::size_t i = 0; i < snap.poles.size(); ++i) {
        slots_[i].count.store(snap.poles[i].count, std::memory_order_relaxed);
        slots_[i].epoch.store(snap.poles[i].epoch, std::memory_order_relaxed);
        slots_[i].updated_tick.store(snap.poles[i].updated_tick,
                                     std::memory_order_relaxed);
        slots_[i].rung.store(static_cast<std::uint32_t>(snap.poles[i].rung),
                             std::memory_order_relaxed);
    }

    std::atomic_thread_fence(std::memory_order_seq_cst);
    seq_.store(seq + 2, std::memory_order_release);  // even: consistent
}

occupancy_snapshot occupancy_board::read() const {
    for (;;) {
        const std::uint64_t s1 = seq_.load(std::memory_order_acquire);
        if ((s1 & 1ull) != 0) continue;  // publish in flight
        std::atomic_thread_fence(std::memory_order_seq_cst);

        occupancy_snapshot snap;
        snap.tick = tick_.load(std::memory_order_relaxed);
        snap.version = s1 / 2;
        snap.aggregate = aggregate_.load(std::memory_order_relaxed);
        snap.included = included_.load(std::memory_order_relaxed);
        const std::uint32_t n = pole_count_.load(std::memory_order_relaxed);
        snap.poles.resize(n);
        for (std::uint32_t i = 0; i < n; ++i) {
            snap.poles[i].count = slots_[i].count.load(std::memory_order_relaxed);
            snap.poles[i].epoch = slots_[i].epoch.load(std::memory_order_relaxed);
            snap.poles[i].updated_tick =
                slots_[i].updated_tick.load(std::memory_order_relaxed);
            snap.poles[i].rung = static_cast<pole_rung>(
                slots_[i].rung.load(std::memory_order_relaxed));
        }

        std::atomic_thread_fence(std::memory_order_seq_cst);
        const std::uint64_t s2 = seq_.load(std::memory_order_acquire);
        if (s1 == s2) return snap;  // no publish overlapped the reads
    }
}

const occupancy_snapshot& occupancy_reader::snapshot() {
    const std::uint64_t version = board_->version();
    if (have_cached_ && cached_.version == version) {
        ++hits_;
        return cached_;
    }
    cached_ = board_->read();
    have_cached_ = true;
    ++refreshes_;
    return cached_;
}

}  // namespace hawc::fleet
