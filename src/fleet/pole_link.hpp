#pragma once

// Deterministic in-process pole-link transport. A pole_link models the
// lossy network hop between a blue-light pole's sensor head and the edge
// box running its supervisor: frames are posted with send(), age in an
// in-flight queue measured in fleet ticks (virtual time — no wall clocks,
// no sleeps), and come out of receive() subject to seeded fault
// injection: drop, delay, reorder, duplicate, and payload corruption.
// Corruption is applied *after* the checksum is stamped, so a corrupted
// message is internally inconsistent exactly like a real bit-flip on the
// wire — the receiver catches it with verify_checksum (the PR4 fnv1a64
// envelope discipline applied per message) and never feeds the pipeline
// a silently wrong cloud. Identically-seeded links with identical send
// sequences misbehave identically, which is what lets the chaos soak
// assert exact fault schedules.

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "pointcloud/point_cloud.hpp"

namespace hawc::fleet {

/// Per-message fault probabilities; all default to a clean link.
struct link_fault_config {
    double drop_prob = 0.0;       // message vanishes
    double delay_prob = 0.0;      // message held for 1..delay_ticks_max ticks
    std::size_t delay_ticks_max = 3;
    double reorder_prob = 0.0;    // message jumps ahead of the queue head
    double duplicate_prob = 0.0;  // message delivered twice
    double corrupt_prob = 0.0;    // one payload bit flipped after checksum
};

/// One frame in flight from a pole's sensor to its supervisor.
struct link_message {
    std::uint64_t frame_index = 0;  // position in the pole's recorded stream
    std::uint32_t ground_truth = 0;
    point_cloud cloud;
    std::uint64_t checksum = 0;  // message_checksum() over the fields above
};

/// fnv1a64 over the message's logical bytes (frame_index, ground_truth,
/// point count, f64 coordinates) — the per-message analogue of the replay
/// envelope checksum.
std::uint64_t message_checksum(const link_message& msg);

/// True when the stamped checksum matches the payload.
bool verify_checksum(const link_message& msg);

/// What the link did, cumulatively. `sent`+injected faults reconcile with
/// `delivered`+`dropped`+`pending` so soak tests can audit conservation.
struct link_stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t delayed = 0;
    std::uint64_t reordered = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t corrupted = 0;
};

class pole_link {
public:
    pole_link(const link_fault_config& config, std::uint64_t seed)
        : config_{config}, chaos_{seed} {}

    /// Post one frame toward the pole. Stamps the checksum, then rolls
    /// each fault independently against the link's seeded rng.
    void send(link_message msg);

    /// Advance one tick and return every message whose delay expired, in
    /// queue order. Call exactly once per fleet tick.
    std::vector<link_message> receive();

    std::size_t pending() const { return queue_.size(); }
    const link_stats& stats() const { return stats_; }

private:
    struct in_flight {
        link_message msg;
        std::size_t due_in = 0;  // ticks until deliverable
    };

    link_fault_config config_;
    rng chaos_;
    std::deque<in_flight> queue_;
    link_stats stats_;
};

}  // namespace hawc::fleet
