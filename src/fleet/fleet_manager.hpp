#pragma once

// The fleet runtime: N pole fault domains multiplexed over the global
// thread_pool, one deterministic tick at a time. Each tick the manager
//
//   1. samples backpressure (pool utilization by default, injectable for
//      tests) and halves the per-pole frame budget when saturated,
//   2. runs every pole's run_tick in parallel — poles touch only their
//      own state, so results are bit-identical for any thread count,
//   3. walks the fleet degradation ladder per pole
//        live        fresh count within stale_after_ticks
//        stale_count last good count within exclude_after_ticks
//        excluded    nothing recent enough to serve
//      mirroring the per-frame ladder inside each supervisor,
//   4. publishes the aggregate + per-pole occupancy through the seqlock
//      board, and mirrors per-pole labeled metrics (`@pole=<id>`) into
//      the fleet registry for the Prometheus/JSON exporters.
//
// Time is the tick counter — no wall clocks and no sleeps anywhere on
// this path (enforced by the sleep-in-fleet lint rule), which is what
// makes chaos soaks replayable bit for bit.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fleet/occupancy.hpp"
#include "fleet/pole_runtime.hpp"
#include "obs/event_log.hpp"
#include "obs/slo.hpp"
#include "replay/container.hpp"
#include "replay/corpus_set.hpp"
#include "telemetry/metrics.hpp"

namespace hawc::fleet {

/// Everything one pole needs. The classifier pointers follow
/// frame_supervisor's lifetime rules (must outlive the fleet); give each
/// pole its own wrapper when the classifier is not thread_safe() —
/// poles run concurrently.
struct pole_setup {
    std::string pole_id;
    std::uint64_t seed = 1;  // frame-stream base seed (= corpus base_seed)
    supervisor_config supervisor{};
    link_fault_config link{};
    watchdog_config watchdog{};
    const human_classifier* primary = nullptr;
    const human_classifier* fallback = nullptr;
};

struct fleet_config {
    /// Ladder bounds, in ticks since a pole's last good count: live up
    /// to stale_after_ticks, stale-count up to exclude_after_ticks,
    /// excluded beyond. The published snapshot always satisfies
    /// within_staleness(tick, exclude_after_ticks).
    std::uint64_t stale_after_ticks = 3;
    std::uint64_t exclude_after_ticks = 10;

    /// Buffered frames per pole; overflow sheds the oldest.
    std::size_t max_inbox = 8;
    /// Frames each pole may process per tick.
    std::size_t frames_per_tick = 4;
    /// Load shedding: when the backpressure probe reports utilization at
    /// or above this fraction at the start of a tick, the frame budget is
    /// halved for that tick. > 1 disables.
    double shed_at_utilization = 1.1;
};

class fleet_manager {
public:
    fleet_manager(const fleet_config& config, const std::vector<pole_setup>& poles);

    fleet_manager(const fleet_manager&) = delete;
    fleet_manager& operator=(const fleet_manager&) = delete;

    /// Post one frame toward pole `pole` (it travels the pole's link).
    void submit(std::size_t pole, link_message msg);

    /// Advance the whole fleet one tick and publish a fresh snapshot.
    void tick();

    std::uint64_t current_tick() const { return tick_; }
    std::size_t pole_count() const { return poles_.size(); }
    pole_runtime& pole(std::size_t i) { return *poles_[i]; }
    const pole_runtime& pole(std::size_t i) const { return *poles_[i]; }

    /// The rung the ladder assigned to pole `i` at the last tick().
    pole_rung rung(std::size_t i) const { return rungs_[i]; }

    const occupancy_board& board() const { return board_; }
    occupancy_snapshot snapshot() const { return board_.read(); }

    const fleet_config& config() const { return config_; }
    std::uint64_t shed_ticks() const { return shed_ticks_; }

    telemetry::metrics_registry& metrics() { return metrics_; }
    const telemetry::metrics_registry& metrics() const { return metrics_; }

    /// Replace the backpressure probe (defaults to the global pool's
    /// utilization()). Tests inject constants to pin shedding behaviour.
    void set_backpressure_probe(std::function<double()> probe) {
        probe_ = std::move(probe);
    }

    /// Route every pole's events into `log` (which must outlive the
    /// fleet) and advance its rate-limiter buckets once per tick.
    void attach_observability(obs::event_log& log);

    /// Arm a black-box flight recorder on every pole. Bundles snapshot
    /// the attached event log (if any) at dump time.
    void enable_flight_recorders(const obs::flight_recorder_config& config);

    /// Install SLO rules evaluated over this fleet's metrics registry
    /// every `period` ticks. Alert transitions flow into the attached
    /// event log; attach_observability first if events are wanted.
    void install_slo(std::vector<obs::slo_rule> rules, std::uint64_t period = 1);

    /// Drain every pole's pending postmortem bundles (single-threaded;
    /// call between ticks).
    std::vector<obs::postmortem_bundle> collect_postmortems();

    /// The SLO rollup, or an empty (healthy, zero-rule) summary when no
    /// rules are installed.
    obs::health_summary fleet_health() const;

    obs::slo_engine* slo() { return slo_ ? &*slo_ : nullptr; }
    const obs::slo_engine* slo() const { return slo_ ? &*slo_ : nullptr; }
    obs::event_log* events() { return event_log_; }

private:
    struct pole_metrics {
        telemetry::counter* frames = nullptr;
        telemetry::counter* restarts = nullptr;
        telemetry::counter* quarantines = nullptr;
        telemetry::counter* checksum_failures = nullptr;
        telemetry::gauge* state = nullptr;
        telemetry::gauge* rung = nullptr;
        telemetry::gauge* count = nullptr;
        // Last published counter values, for delta mirroring.
        std::uint64_t frames_seen = 0;
        std::uint64_t restarts_seen = 0;
        std::uint64_t quarantines_seen = 0;
        std::uint64_t checksums_seen = 0;
    };

    void publish_tick();

    fleet_config config_;
    std::vector<std::unique_ptr<pole_runtime>> poles_;
    std::vector<pole_rung> rungs_;
    occupancy_board board_;
    std::uint64_t tick_ = 0;
    std::uint64_t shed_ticks_ = 0;
    std::function<double()> probe_;

    telemetry::metrics_registry metrics_;
    std::vector<pole_metrics> pole_metrics_;
    telemetry::gauge* aggregate_gauge_ = nullptr;
    telemetry::gauge* included_gauge_ = nullptr;
    telemetry::counter* ticks_counter_ = nullptr;
    telemetry::counter* shed_ticks_counter_ = nullptr;
    telemetry::counter* frames_shed_counter_ = nullptr;
    std::uint64_t frames_shed_seen_ = 0;

    // Fleet-level rollups (sums over poles, published as deltas).
    telemetry::counter* fleet_frames_counter_ = nullptr;
    telemetry::counter* fleet_dropped_counter_ = nullptr;
    telemetry::counter* fleet_quarantines_counter_ = nullptr;
    telemetry::gauge* excluded_gauge_ = nullptr;
    telemetry::gauge* max_staleness_gauge_ = nullptr;
    std::uint64_t fleet_frames_seen_ = 0;
    std::uint64_t fleet_dropped_seen_ = 0;
    std::uint64_t fleet_quarantines_seen_ = 0;

    obs::event_log* event_log_ = nullptr;
    std::optional<obs::slo_engine> slo_;
    std::uint64_t slo_period_ = 1;
};

/// A starter rule set for the metrics every fleet_manager publishes:
/// occupancy staleness, excluded poles, drop ratio, quarantine rate.
/// Callers append rules for their own service-level metrics.
std::vector<obs::slo_rule> default_fleet_slo_rules();

/// Replay a recorded multi-pole corpus set through a fleet: tick t
/// submits frame t of every pole (poles beyond their corpus length idle),
/// then `drain_ticks` empty ticks let delayed messages and backlogs
/// flush. Requires one pole per corpus, in order, with matching stream
/// seeds — the precondition for bit-exact parity with solo replays.
struct fleet_replay_result {
    std::uint64_t ticks = 0;
    std::uint64_t frames_submitted = 0;
};

fleet_replay_result replay_corpus_set(fleet_manager& fleet,
                                      const replay::pole_corpus_set& set,
                                      std::uint64_t drain_ticks = 8);

/// Streaming variant: replay a packed corpus-set container ("HWCC",
/// replay::container.hpp) without materializing it. Tick t reads frame t
/// of every stream straight from the container; the reader's chunk cache
/// is widened to one chunk per pole so the round-robin read order stays
/// chunk-at-a-time — memory is bounded by pole_count chunks however long
/// the recording is. Preconditions match replay_corpus_set (one stream
/// per pole, in order, matching seeds).
fleet_replay_result replay_container_set(fleet_manager& fleet,
                                         replay::container_reader& reader,
                                         std::uint64_t drain_ticks = 8);

}  // namespace hawc::fleet
